// Queuealloc: data-parallel queue allocation with the fetch-and-add
// extension of the scatter-add unit (paper §3.3: "a return path for the
// original data before the addition is performed ... can be used to perform
// parallel queue allocation on SIMD vector and stream systems").
//
// A thousand parallel producers each claim a slot in one of four output
// queues with a single FetchAddI64 on the queue's tail counter; the
// combining store serializes the counter updates in the memory system, so
// every producer receives a unique slot with no locks and no retries.
//
// Run with:
//
//	go run ./examples/queuealloc
package main

import (
	"fmt"

	"scatteradd"
)

func main() {
	m := scatteradd.New()

	const queues = 4
	const producers = 1000
	tails := scatteradd.Addr(0) // queue tail counters live at [0, queues)

	// Each producer picks a queue (hash of its id) and requests one slot.
	addrs := make([]scatteradd.Addr, producers)
	queueOf := make([]int, producers)
	for i := range addrs {
		q := (i * 2654435761) % queues
		queueOf[i] = q
		addrs[i] = tails + scatteradd.Addr(q)
	}

	// One data-parallel fetch-and-add; responses carry each producer's slot.
	slots := make([]int64, producers)
	op := scatteradd.ScatterAdd("alloc", scatteradd.FetchAddI64, addrs,
		[]scatteradd.Word{scatteradd.I64(1)})
	op.OnResp = func(r scatteradd.Response) {
		slots[r.ID] = scatteradd.AsI64(r.Val) // pre-update value = my slot
	}
	res := m.RunOp(op)

	// Verify: within each queue the slots are exactly 0..count-1, no
	// duplicates, no gaps.
	counts := make([]int64, queues)
	seen := make([]map[int64]bool, queues)
	for q := range seen {
		seen[q] = map[int64]bool{}
	}
	for i := 0; i < producers; i++ {
		q := queueOf[i]
		if seen[q][slots[i]] {
			panic(fmt.Sprintf("queue %d: slot %d allocated twice", q, slots[i]))
		}
		seen[q][slots[i]] = true
		counts[q]++
	}
	m.FlushCaches()
	for q := 0; q < queues; q++ {
		tail := m.Store().LoadI64(tails + scatteradd.Addr(q))
		if tail != counts[q] {
			panic(fmt.Sprintf("queue %d: tail %d != %d producers", q, tail, counts[q]))
		}
		for s := int64(0); s < counts[q]; s++ {
			if !seen[q][s] {
				panic(fmt.Sprintf("queue %d: slot %d never allocated", q, s))
			}
		}
	}

	fmt.Printf("%d producers allocated unique slots across %d queues\n", producers, queues)
	for q := 0; q < queues; q++ {
		fmt.Printf("  queue %d: %d slots (dense, no duplicates)\n", q, counts[q])
	}
	fmt.Printf("in %d simulated cycles (%.2f allocations/cycle), lock-free\n",
		res.Cycles, float64(producers)/float64(res.Cycles))
}
