// SpMV: sparse matrix-vector multiply on a finite-element matrix, comparing
// the gather-based CSR algorithm against the element-by-element (EBE)
// algorithm that only becomes viable with hardware scatter-add (paper §4.3,
// Figure 9).
//
// Run with:
//
//	go run ./examples/spmv
package main

import (
	"fmt"

	"scatteradd"
)

func main() {
	// A synthetic cubic-Lagrange tetrahedral mesh: 6x6x4 box = 864 elements,
	// a few thousand degrees of freedom (use 8x8x5 for the paper's full
	// 1,920-element scale).
	s := scatteradd.NewSpMV(6, 6, 4, 1)
	fmt.Printf("finite-element matrix: %d x %d, %d non-zeros (%.1f per row), %d elements\n\n",
		s.Mesh.NumNodes, s.Mesh.NumNodes, s.CSR.NNZ(), s.CSR.NNZPerRow(), len(s.Mesh.Elems))

	type variant struct {
		name string
		run  func() scatteradd.Result
	}
	variants := []variant{
		{"CSR (gather, no scatter-add)", func() scatteradd.Result {
			m := scatteradd.New()
			r := s.RunCSR(m)
			check(s.Verify(m))
			return r
		}},
		{"EBE + software scatter-add", func() scatteradd.Result {
			m := scatteradd.New()
			r := s.RunEBESW(m, 0)
			check(s.Verify(m))
			return r
		}},
		{"EBE + hardware scatter-add", func() scatteradd.Result {
			m := scatteradd.New()
			r := s.RunEBEHW(m)
			check(s.Verify(m))
			return r
		}},
	}

	fmt.Printf("%-30s  %10s  %10s  %10s\n", "variant", "cycles", "fp ops", "mem refs")
	var csrCycles uint64
	for i, v := range variants {
		r := v.run()
		if i == 0 {
			csrCycles = r.Cycles
		}
		fmt.Printf("%-30s  %10d  %10d  %10d   (%.2fx vs CSR)\n",
			v.name, r.Cycles, r.FPOps, r.MemRefs, float64(csrCycles)/float64(r.Cycles))
	}
	fmt.Println("\nevery variant's y vector was verified against the sequential reference")
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
