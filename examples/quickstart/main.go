// Quickstart: compute a histogram with the hardware scatter-add.
//
// This is the paper's introductory example (§1): binning a dataset in
// parallel causes memory collisions; the scatter-add unit resolves them
// atomically inside the memory system:
//
//	scatterAdd(histogram, data, 1);
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"scatteradd"
)

func main() {
	// A Table 1 machine: 16 clusters, 8 cache banks with one scatter-add
	// unit each, 16 DRAM channels at 1 GHz.
	m := scatteradd.New()

	// A synthetic dataset: 100,000 samples in [0, 256).
	const bins = 256
	data := make([]int, 100_000)
	seed := uint64(42)
	for i := range data {
		seed = seed*6364136223846793005 + 1442695040888963407
		data[i] = int((seed >> 33) % bins)
	}

	// One call: the machine streams the indices through its scatter-add
	// units and the bins accumulate in simulated memory.
	counts, res := scatteradd.HistogramI64(m, data, bins)

	total := int64(0)
	for _, c := range counts {
		total += c
	}
	fmt.Printf("histogram of %d samples into %d bins\n", len(data), bins)
	fmt.Printf("  bin[0..7] = %v\n", counts[:8])
	fmt.Printf("  total counted = %d (must equal the sample count)\n", total)
	fmt.Printf("  simulated cycles = %d (%.1f us at 1 GHz)\n", res.Cycles, float64(res.Cycles)/1000)
	fmt.Printf("  memory references = %d\n", res.MemRefs)
	fmt.Printf("  throughput = %.2f updates/cycle\n", float64(len(data))/float64(res.Cycles))

	// The same machine can run the software alternative for comparison.
	m2 := scatteradd.New()
	addrs := make([]scatteradd.Addr, len(data))
	for i, x := range data {
		addrs[i] = scatteradd.Addr(x)
	}
	sw := scatteradd.SortScan(m2, scatteradd.AddI64, addrs, []scatteradd.Word{scatteradd.I64(1)}, 0)
	fmt.Printf("\nsoftware sort+segmented-scan: %d cycles (%.1fx slower)\n",
		sw.Cycles, float64(sw.Cycles)/float64(res.Cycles))

	// Fault injection is an option, not a different machine: under the
	// default chaos mix (DRAM stalls and outages, combining-store scrubs,
	// transient FU errors) the run costs extra cycles but the result is
	// bit-exact — faults cost time, never correctness.
	m3 := scatteradd.New(scatteradd.WithFaults(scatteradd.DefaultChaosFaults()))
	chaosCounts, chaosRes := scatteradd.HistogramI64(m3, data, bins)
	for i := range counts {
		if chaosCounts[i] != counts[i] {
			panic(fmt.Sprintf("bin %d diverged under faults: %d != %d", i, chaosCounts[i], counts[i]))
		}
	}
	fmt.Printf("\nunder chaos fault injection: %d cycles (%+.1f%%), histogram bit-identical\n",
		chaosRes.Cycles, 100*(float64(chaosRes.Cycles)/float64(res.Cycles)-1))
}
