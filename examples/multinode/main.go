// Multinode: scatter-add scaling across 1-8 nodes connected by an
// input-queued crossbar (paper §4.5, Figure 13), showing the effect of
// network bandwidth and of the cache-combining + sum-back optimization on
// a high-locality ("narrow") histogram trace.
//
// Run with:
//
//	go run ./examples/multinode
package main

import (
	"fmt"

	"scatteradd"
)

func main() {
	// The narrow trace: 64K increments over 256 bins — so much locality
	// that local combining pays off handsomely.
	const rangeSize = 256
	const n = 65536
	refs := make([]scatteradd.MultiNodeRef, n)
	seed := uint64(13)
	for i := range refs {
		seed = seed*6364136223846793005 + 1442695040888963407
		refs[i] = scatteradd.MultiNodeRef{
			Addr: scatteradd.Addr((seed >> 33) % rangeSize),
			Val:  scatteradd.I64(1),
		}
	}

	configs := []struct {
		label     string
		bandwidth int
		combining bool
	}{
		{"high-bandwidth network (8 w/cyc)", 8, false},
		{"low-bandwidth network (1 w/cyc)", 1, false},
		{"low-bandwidth + cache combining", 1, true},
	}

	fmt.Printf("narrow histogram trace: %d scatter-adds over %d bins\n\n", n, rangeSize)
	fmt.Printf("%-36s  %8s  %8s  %8s  %8s\n", "configuration (GB/s)", "1 node", "2 nodes", "4 nodes", "8 nodes")
	for _, c := range configs {
		fmt.Printf("%-36s", c.label)
		for _, nodes := range []int{1, 2, 4, 8} {
			span := scatteradd.Addr((rangeSize/nodes + 8) &^ 7)
			cfg := scatteradd.DefaultMultiNodeConfig(nodes, c.bandwidth, span)
			cfg.Combining = c.combining
			s := scatteradd.NewMultiNode(cfg, scatteradd.AddI64)
			res := s.RunTrace(refs)
			fmt.Printf("  %8.1f", res.GBps())
			// Verify the distributed result on the largest configuration.
			if nodes == 8 {
				verify(s, refs, rangeSize)
			}
		}
		fmt.Println()
	}
	fmt.Println("\n(the paper's Figure 13: combining lets even the slow network scale on narrow data)")

	// The same system under chaos faults: packets dropped and duplicated on
	// the crossbar, DRAM stalls and outage windows, combining-store scrubs.
	// The reliable link layer (sequence numbers, acks, retransmission)
	// recovers everything — the sums stay exact, only the cycles change.
	fmt.Println("\nresilience demo: low-bandwidth + combining, 8 nodes, chaos faults on")
	span := scatteradd.Addr((rangeSize/8 + 8) &^ 7)
	cfg := scatteradd.DefaultMultiNodeConfig(8, 1, span)
	cfg.Combining = true
	cfg.Faults = scatteradd.DefaultChaosFaults()
	s := scatteradd.NewMultiNode(cfg, scatteradd.AddI64)
	res := s.RunTrace(refs)
	verify(s, refs, rangeSize)
	fmt.Printf("  %.1f GB/s, %d frames retransmitted, %d duplicates dropped — sums exact\n",
		res.GBps(), res.Retransmits, res.DupsDropped)
}

func verify(s *scatteradd.MultiNode, refs []scatteradd.MultiNodeRef, rangeSize int) {
	want := make(map[scatteradd.Addr]int64)
	for _, r := range refs {
		want[r.Addr] += scatteradd.AsI64(r.Val)
	}
	addrs := make([]scatteradd.Addr, rangeSize)
	for i := range addrs {
		addrs[i] = scatteradd.Addr(i)
	}
	got := s.ReadResult(addrs)
	for i, a := range addrs {
		if scatteradd.AsI64(got[i]) != want[a] {
			panic(fmt.Sprintf("bin %d: got %d want %d", a, scatteradd.AsI64(got[i]), want[a]))
		}
	}
}
