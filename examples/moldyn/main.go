// MolDyn: the GROMACS-like water non-bonded force kernel in its three
// algorithmic variants (paper §4.3, Figure 10):
//
//   - no scatter-add: duplicate every interaction so each molecule's forces
//     accumulate privately (2x the computation);
//   - software scatter-add: exploit Newton's third law, resolve force-array
//     collisions with sort + segmented scan;
//   - hardware scatter-add: exploit Newton's third law, let the memory
//     system accumulate.
//
// Run with:
//
//	go run ./examples/moldyn
package main

import (
	"fmt"

	"scatteradd"
)

func main() {
	// 216 water molecules with a 6.0 cutoff keeps this example snappy; the
	// paper's configuration is 903 molecules (see cmd/scatteradd fig10).
	md := scatteradd.NewMolDyn(216, 6.0, 7)
	fmt.Printf("water box: %d molecules, %d neighbor pairs, %d scatter-add references\n\n",
		md.W.NumMol, len(md.Pairs), md.NumSARefs())

	run := func(name string, f func(*scatteradd.Machine) scatteradd.Result) scatteradd.Result {
		m := scatteradd.New()
		r := f(m)
		if err := md.Verify(m); err != nil {
			panic(err)
		}
		fmt.Printf("%-24s  %9d cycles  %9d fp ops  %9d mem refs\n", name, r.Cycles, r.FPOps, r.MemRefs)
		return r
	}

	no := run("no scatter-add (2x work)", md.RunNoSA)
	sw := run("software scatter-add", func(m *scatteradd.Machine) scatteradd.Result {
		return md.RunSWSA(m, 0)
	})
	hw := run("hardware scatter-add", md.RunHWSA)

	fmt.Printf("\nhardware scatter-add speedup over best software variant: %.2fx\n",
		float64(min(no.Cycles, sw.Cycles))/float64(hw.Cycles))
	fmt.Println("all three variants produced the same forces (verified against the sequential reference)")
}

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
