package workload

import (
	"fmt"
	"sort"
)

// The paper's SpMV dataset is a 1,916-tetrahedra finite-element model with
// C0 continuous cubic Lagrange elements (20 degrees of freedom per
// element), giving a 9,978 x 9,978 matrix with 44.26 non-zeros per row.
// That exact mesh is not published, so this generator builds the closest
// synthetic equivalent: a box of cubes, each split into six conforming
// tetrahedra (Kuhn decomposition), carrying cubic Lagrange nodes — 4 vertex
// nodes, 2 nodes per edge, and 1 node per face, 20 per element — shared
// between adjacent elements. An 8 x 8 x 5 box yields 1,920 elements and a
// matrix of comparable size and density to the paper's.

// ElemNodes is the number of degrees of freedom per cubic tetrahedron.
const ElemNodes = 20

// FEMMesh is a synthetic tetrahedral mesh with cubic Lagrange nodes.
type FEMMesh struct {
	NumNodes int
	Elems    [][ElemNodes]int32 // global node ids per element
}

// kuhnPerms are the six vertex-step permutations splitting a cube into
// conforming tetrahedra sharing the main diagonal.
var kuhnPerms = [6][3]int{
	{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
}

// tetEdges lists the 6 vertex pairs of a tetrahedron.
var tetEdges = [6][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}

// tetFaces lists the 4 vertex triples of a tetrahedron.
var tetFaces = [4][3]int{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}}

// NewFEMMesh builds an nx x ny x nz box of cubes (6 tetrahedra each) with
// cubic Lagrange nodes deduplicated across elements.
func NewFEMMesh(nx, ny, nz int) *FEMMesh {
	if nx < 1 || ny < 1 || nz < 1 {
		panic(fmt.Sprintf("workload: invalid mesh dims %dx%dx%d", nx, ny, nz))
	}
	m := &FEMMesh{}
	ids := make(map[[3]int32]int32)
	// node returns the id of the node at scaled (x3) coordinates.
	node := func(c [3]int32) int32 {
		if id, ok := ids[c]; ok {
			return id
		}
		id := int32(len(ids))
		ids[c] = id
		return id
	}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				base := [3]int32{int32(3 * x), int32(3 * y), int32(3 * z)}
				for _, p := range kuhnPerms {
					// Vertex coordinates (scaled x3) of this tetrahedron.
					var v [4][3]int32
					v[0] = base
					cur := base
					for s := 0; s < 3; s++ {
						cur[p[s]] += 3
						v[s+1] = cur
					}
					var elem [ElemNodes]int32
					k := 0
					for _, vc := range v {
						elem[k] = node(vc)
						k++
					}
					for _, e := range tetEdges {
						a, b := v[e[0]], v[e[1]]
						p1 := [3]int32{(2*a[0] + b[0]) / 3, (2*a[1] + b[1]) / 3, (2*a[2] + b[2]) / 3}
						p2 := [3]int32{(a[0] + 2*b[0]) / 3, (a[1] + 2*b[1]) / 3, (a[2] + 2*b[2]) / 3}
						elem[k] = node(p1)
						k++
						elem[k] = node(p2)
						k++
					}
					for _, f := range tetFaces {
						a, b, c := v[f[0]], v[f[1]], v[f[2]]
						ctr := [3]int32{(a[0] + b[0] + c[0]) / 3, (a[1] + b[1] + c[1]) / 3, (a[2] + b[2] + c[2]) / 3}
						elem[k] = node(ctr)
						k++
					}
					m.Elems = append(m.Elems, elem)
				}
			}
		}
	}
	m.NumNodes = len(ids)
	return m
}

// ElementMatrix returns the synthetic dense 20x20 element matrix of element
// e: symmetric and diagonally dominant, with deterministic pseudo-random
// couplings, standing in for the stiffness matrix of the paper's model.
func (m *FEMMesh) ElementMatrix(e int) [ElemNodes][ElemNodes]float64 {
	var k [ElemNodes][ElemNodes]float64
	elem := &m.Elems[e]
	for i := 0; i < ElemNodes; i++ {
		for j := i + 1; j < ElemNodes; j++ {
			h := uint64(elem[i])*2654435761 ^ uint64(elem[j])*40503 ^ uint64(e)*97
			h = (h ^ (h >> 29)) * 0xbf58476d1ce4e5b9
			val := -(float64(h%1000)/1000.0 + 0.05)
			k[i][j] = val
			k[j][i] = val
		}
	}
	for i := 0; i < ElemNodes; i++ {
		sum := 0.0
		for j := 0; j < ElemNodes; j++ {
			if j != i {
				sum += k[i][j]
			}
		}
		k[i][i] = -sum + 1.0 // strictly diagonally dominant
	}
	return k
}

// CSRMatrix is a compressed-sparse-row matrix (§4.1: "all matrix elements
// are stored in a dense array, and additional information is kept on the
// position of each element in a row and where each row begins").
type CSRMatrix struct {
	N      int
	RowPtr []int32
	Col    []int32
	Val    []float64
}

// NNZ returns the number of stored non-zeros.
func (c *CSRMatrix) NNZ() int { return len(c.Val) }

// NNZPerRow returns the average non-zeros per row.
func (c *CSRMatrix) NNZPerRow() float64 { return float64(c.NNZ()) / float64(c.N) }

// MulVec computes y = A x sequentially (the reference for both simulated
// algorithms).
func (c *CSRMatrix) MulVec(x []float64) []float64 {
	if len(x) != c.N {
		panic(fmt.Sprintf("workload: MulVec dimension %d != %d", len(x), c.N))
	}
	y := make([]float64, c.N)
	for i := 0; i < c.N; i++ {
		sum := 0.0
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			sum += c.Val[k] * x[c.Col[k]]
		}
		y[i] = sum
	}
	return y
}

// AssembleCSR assembles the global sparse matrix from all element matrices.
func (m *FEMMesh) AssembleCSR() *CSRMatrix {
	rows := make([]map[int32]float64, m.NumNodes)
	for i := range rows {
		rows[i] = make(map[int32]float64, 48)
	}
	for e := range m.Elems {
		k := m.ElementMatrix(e)
		elem := &m.Elems[e]
		for i := 0; i < ElemNodes; i++ {
			gi := elem[i]
			for j := 0; j < ElemNodes; j++ {
				rows[gi][elem[j]] += k[i][j]
			}
		}
	}
	c := &CSRMatrix{N: m.NumNodes, RowPtr: make([]int32, m.NumNodes+1)}
	for i := range rows {
		cols := make([]int32, 0, len(rows[i]))
		for col := range rows[i] {
			cols = append(cols, col)
		}
		sort.Slice(cols, func(a, b int) bool { return cols[a] < cols[b] })
		for _, col := range cols {
			c.Col = append(c.Col, col)
			c.Val = append(c.Val, rows[i][col])
		}
		c.RowPtr[i+1] = int32(len(c.Col))
	}
	return c
}

// EBEMulVec computes y = A x element by element, accumulating element
// contributions with a sequential scatter-add — the reference for the EBE
// algorithms (§4.1: "instead of performing the multiplication on one large
// sparse-matrix, the calculation is performed by computing many small dense
// matrix multiplications").
func (m *FEMMesh) EBEMulVec(x []float64) []float64 {
	y := make([]float64, m.NumNodes)
	for e := range m.Elems {
		k := m.ElementMatrix(e)
		elem := &m.Elems[e]
		var xe [ElemNodes]float64
		for i := 0; i < ElemNodes; i++ {
			xe[i] = x[elem[i]]
		}
		for i := 0; i < ElemNodes; i++ {
			sum := 0.0
			for j := 0; j < ElemNodes; j++ {
				sum += k[i][j] * xe[j]
			}
			y[elem[i]] += sum
		}
	}
	return y
}
