package workload

import "scatteradd/internal/mem"

// UniformIndices returns n indices drawn uniformly from [0, rangeSize) —
// the histogram input of §4.1: "a set of random integers chosen uniformly
// from a certain range".
func UniformIndices(n, rangeSize int, seed uint64) []int {
	r := NewRNG(seed)
	out := make([]int, n)
	for i := range out {
		out[i] = r.Intn(rangeSize)
	}
	return out
}

// IndicesToAddrs converts indices to word addresses offset by base.
func IndicesToAddrs(idx []int, base mem.Addr) []mem.Addr {
	out := make([]mem.Addr, len(idx))
	for i, x := range idx {
		out[i] = base + mem.Addr(x)
	}
	return out
}

// HistogramReference computes the sequential histogram of idx over
// rangeSize bins.
func HistogramReference(idx []int, rangeSize int) []int64 {
	h := make([]int64, rangeSize)
	for _, x := range idx {
		h[x]++
	}
	return h
}
