package workload

import (
	"math"
	"testing"
	"testing/quick"

	"scatteradd/internal/mem"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
		if n := r.Normalish(); n <= -3 || n >= 3 {
			t.Fatalf("Normalish out of range: %g", n)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestUniformIndices(t *testing.T) {
	idx := UniformIndices(10000, 128, 5)
	if len(idx) != 10000 {
		t.Fatalf("len = %d", len(idx))
	}
	counts := HistogramReference(idx, 128)
	var total int64
	for b, c := range counts {
		total += c
		if c == 0 {
			t.Fatalf("bin %d empty — distribution suspicious", b)
		}
		// Uniform expectation ~78; allow wide slack.
		if c < 20 || c > 200 {
			t.Fatalf("bin %d count %d implausible for uniform", b, c)
		}
	}
	if total != 10000 {
		t.Fatalf("total = %d", total)
	}
}

func TestIndicesToAddrs(t *testing.T) {
	a := IndicesToAddrs([]int{0, 5, 2}, 100)
	if a[0] != 100 || a[1] != 105 || a[2] != 102 {
		t.Fatalf("addrs = %v", a)
	}
	var _ []mem.Addr = a
}

func TestFEMMeshStructure(t *testing.T) {
	m := NewFEMMesh(2, 2, 2)
	if len(m.Elems) != 8*6 {
		t.Fatalf("elements = %d want 48", len(m.Elems))
	}
	// Node ids in range and 20 distinct nodes per element.
	for e, elem := range m.Elems {
		seen := map[int32]bool{}
		for _, n := range elem {
			if n < 0 || int(n) >= m.NumNodes {
				t.Fatalf("element %d: node %d out of range", e, n)
			}
			if seen[n] {
				t.Fatalf("element %d: duplicate node %d", e, n)
			}
			seen[n] = true
		}
	}
}

func TestFEMMeshSharing(t *testing.T) {
	// Conforming mesh: adjacent elements must share nodes, so the total is
	// far fewer than 20 per element.
	m := NewFEMMesh(3, 3, 3)
	if m.NumNodes >= len(m.Elems)*ElemNodes/2 {
		t.Fatalf("no node sharing: %d nodes for %d elements", m.NumNodes, len(m.Elems))
	}
}

func TestFEMPaperScaleMesh(t *testing.T) {
	// The Figure 9 configuration: ~1916 elements, ~9978 DOF, ~44 nnz/row.
	m := NewFEMMesh(8, 8, 5)
	if len(m.Elems) != 1920 {
		t.Fatalf("elements = %d want 1920", len(m.Elems))
	}
	if m.NumNodes < 8000 || m.NumNodes > 13000 {
		t.Fatalf("nodes = %d, want near the paper's 9978", m.NumNodes)
	}
	csr := m.AssembleCSR()
	if perRow := csr.NNZPerRow(); perRow < 25 || perRow > 70 {
		t.Fatalf("nnz/row = %.2f, want near the paper's 44.26", perRow)
	}
}

func TestElementMatrixSymmetricDominant(t *testing.T) {
	m := NewFEMMesh(2, 1, 1)
	k := m.ElementMatrix(3)
	for i := 0; i < ElemNodes; i++ {
		off := 0.0
		for j := 0; j < ElemNodes; j++ {
			if k[i][j] != k[j][i] {
				t.Fatalf("asymmetric at %d,%d", i, j)
			}
			if j != i {
				off += math.Abs(k[i][j])
			}
		}
		if k[i][i] <= off {
			t.Fatalf("row %d not diagonally dominant", i)
		}
	}
}

func TestCSRAgainstEBE(t *testing.T) {
	m := NewFEMMesh(3, 2, 2)
	csr := m.AssembleCSR()
	r := NewRNG(9)
	x := make([]float64, m.NumNodes)
	for i := range x {
		x[i] = r.Float64()*2 - 1
	}
	yCSR := csr.MulVec(x)
	yEBE := m.EBEMulVec(x)
	for i := range yCSR {
		if math.Abs(yCSR[i]-yEBE[i]) > 1e-9*math.Max(1, math.Abs(yCSR[i])) {
			t.Fatalf("row %d: CSR %g vs EBE %g", i, yCSR[i], yEBE[i])
		}
	}
}

// Property: CSR assembly and EBE agree for random meshes and vectors.
func TestCSREBEEquivalenceProperty(t *testing.T) {
	f := func(dims [3]uint8, seed uint64) bool {
		nx, ny, nz := int(dims[0]%3)+1, int(dims[1]%3)+1, int(dims[2]%2)+1
		m := NewFEMMesh(nx, ny, nz)
		r := NewRNG(seed)
		x := make([]float64, m.NumNodes)
		for i := range x {
			x[i] = r.Float64()
		}
		a := m.AssembleCSR().MulVec(x)
		b := m.EBEMulVec(x)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-9*math.Max(1, math.Abs(a[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestCSRMulVecDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := NewFEMMesh(1, 1, 1)
	m.AssembleCSR().MulVec(make([]float64, 3))
}

func TestWaterBoxGeometry(t *testing.T) {
	w := NewWaterBox(64, 3.1, 11)
	if w.NumMol != 64 || len(w.Pos) != 64*AtomsPerMol {
		t.Fatalf("box: %d mol, %d atoms", w.NumMol, len(w.Pos))
	}
	// O-H bond lengths ~1.0.
	for m := 0; m < w.NumMol; m++ {
		o := m * AtomsPerMol
		for h := 1; h <= 2; h++ {
			d := math.Sqrt(w.Dist2(o, o+h))
			if d < 0.9 || d > 1.1 {
				t.Fatalf("molecule %d: O-H%d distance %g", m, h, d)
			}
		}
	}
}

func TestHalfNeighborPairsSymmetricCutoff(t *testing.T) {
	w := NewWaterBox(125, 3.1, 13)
	cutoff := 6.0
	pairs := w.HalfNeighborPairs(cutoff)
	if len(pairs) == 0 {
		t.Fatal("no pairs at 6.0 cutoff")
	}
	seen := map[[2]int32]bool{}
	for _, p := range pairs {
		if p[0] >= p[1] {
			t.Fatalf("pair not ordered: %v", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
		if d := math.Sqrt(w.Dist2(int(p[0])*AtomsPerMol, int(p[1])*AtomsPerMol)); d > cutoff+1e-9 {
			t.Fatalf("pair %v at distance %g beyond cutoff", p, d)
		}
	}
	// Completeness: brute-force check on this small box.
	brute := 0
	for i := 0; i < w.NumMol; i++ {
		for j := i + 1; j < w.NumMol; j++ {
			if w.Dist2(i*AtomsPerMol, j*AtomsPerMol) <= cutoff*cutoff {
				brute++
			}
		}
	}
	if brute != len(pairs) {
		t.Fatalf("cell list found %d pairs, brute force %d", len(pairs), brute)
	}
}

func TestFullNeighborListDoublesHalf(t *testing.T) {
	w := NewWaterBox(64, 3.1, 17)
	half := w.HalfNeighborPairs(5.0)
	full := w.FullNeighborList(5.0)
	total := 0
	for _, l := range full {
		total += len(l)
	}
	if total != 2*len(half) {
		t.Fatalf("full list %d entries, half %d pairs", total, len(half))
	}
}

func TestPaperScaleWaterBox(t *testing.T) {
	// The Figure 10 configuration: 903 molecules; force-array index space
	// 903*3 atoms * 3 components = 8127 ≈ the paper's 8192 unique indices.
	w := NewWaterBox(903, 3.1, 1)
	if w.NumMol != 903 {
		t.Fatalf("mol = %d", w.NumMol)
	}
	pairs := w.HalfNeighborPairs(9.0)
	perMol := float64(2*len(pairs)) / float64(w.NumMol)
	if perMol < 30 || perMol > 200 {
		t.Fatalf("neighbors per molecule = %.1f, implausible for liquid water", perMol)
	}
}

func TestMinImage(t *testing.T) {
	if d := minImage(9, 10); d != -1 {
		t.Fatalf("minImage(9,10) = %g", d)
	}
	if d := minImage(-9, 10); d != 1 {
		t.Fatalf("minImage(-9,10) = %g", d)
	}
	if d := minImage(3, 10); d != 3 {
		t.Fatalf("minImage(3,10) = %g", d)
	}
}
