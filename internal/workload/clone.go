package workload

// Clone methods for the generated datasets. Workloads are treated as
// immutable once constructed, but the experiment runner hands each
// concurrent (workload, machine) run its own deep copy so no two
// simulations can ever race on a shared slice — see internal/exp/runner.go
// and the mutation-detecting checksums in internal/apps.

// Clone returns a deep copy of the mesh.
func (m *FEMMesh) Clone() *FEMMesh {
	return &FEMMesh{
		NumNodes: m.NumNodes,
		Elems:    append([][ElemNodes]int32(nil), m.Elems...),
	}
}

// Clone returns a deep copy of the matrix.
func (c *CSRMatrix) Clone() *CSRMatrix {
	return &CSRMatrix{
		N:      c.N,
		RowPtr: append([]int32(nil), c.RowPtr...),
		Col:    append([]int32(nil), c.Col...),
		Val:    append([]float64(nil), c.Val...),
	}
}

// Clone returns a deep copy of the water box.
func (w *WaterBox) Clone() *WaterBox {
	return &WaterBox{
		NumMol: w.NumMol,
		Box:    w.Box,
		Pos:    append([][3]float64(nil), w.Pos...),
	}
}
