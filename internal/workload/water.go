package workload

import (
	"fmt"
	"math"
)

// The paper's molecular-dynamics kernel is GROMACS's water-water non-bonded
// force loop over 903 water molecules for one timestep. The proprietary
// input is replaced by a synthetic box: 903 rigid 3-site (SPC-like) water
// molecules placed on a jittered lattice at liquid density, with a Verlet
// neighbor list built at a cutoff chosen to give a realistic pair count.

// AtomsPerMol is the number of interaction sites per water molecule.
const AtomsPerMol = 3

// Site charges for an SPC-like water model (arbitrary consistent units).
var waterCharges = [AtomsPerMol]float64{-0.82, 0.41, 0.41}

// WaterBox is a periodic box of water molecules.
type WaterBox struct {
	NumMol int
	Box    float64      // box edge length
	Pos    [][3]float64 // AtomsPerMol*NumMol atom positions, molecule-major
}

// Charges returns the per-site charges of the water model.
func Charges() [AtomsPerMol]float64 { return waterCharges }

// NewWaterBox places nMol water molecules on a jittered cubic lattice with
// the given lattice spacing (≈3.1 length units reproduces liquid water
// density for SPC-like models).
func NewWaterBox(nMol int, spacing float64, seed uint64) *WaterBox {
	if nMol < 1 || spacing <= 0 {
		panic(fmt.Sprintf("workload: invalid water box nMol=%d spacing=%g", nMol, spacing))
	}
	side := int(math.Ceil(math.Cbrt(float64(nMol))))
	w := &WaterBox{NumMol: nMol, Box: float64(side) * spacing}
	r := NewRNG(seed)
	// Rigid geometry: O at the lattice site, H's offset ~1.0 at the water
	// bond angle, randomly oriented per molecule.
	const bond = 1.0
	placed := 0
	for z := 0; z < side && placed < nMol; z++ {
		for y := 0; y < side && placed < nMol; y++ {
			for x := 0; x < side && placed < nMol; x++ {
				o := [3]float64{
					(float64(x) + 0.5 + 0.1*r.Normalish()) * spacing,
					(float64(y) + 0.5 + 0.1*r.Normalish()) * spacing,
					(float64(z) + 0.5 + 0.1*r.Normalish()) * spacing,
				}
				// Random orientation via two random unit-ish vectors.
				theta := 2 * math.Pi * r.Float64()
				phi := math.Acos(2*r.Float64() - 1)
				d1 := [3]float64{math.Sin(phi) * math.Cos(theta), math.Sin(phi) * math.Sin(theta), math.Cos(phi)}
				theta2 := theta + 1.91 // ~109.5 degrees
				d2 := [3]float64{math.Sin(phi) * math.Cos(theta2), math.Sin(phi) * math.Sin(theta2), -math.Cos(phi)}
				h1 := [3]float64{o[0] + bond*d1[0], o[1] + bond*d1[1], o[2] + bond*d1[2]}
				h2 := [3]float64{o[0] + bond*d2[0], o[1] + bond*d2[1], o[2] + bond*d2[2]}
				w.Pos = append(w.Pos, o, h1, h2)
				placed++
			}
		}
	}
	return w
}

// minImage returns the minimum-image displacement component in a periodic
// box of length l.
func minImage(d, l float64) float64 {
	for d > l/2 {
		d -= l
	}
	for d < -l/2 {
		d += l
	}
	return d
}

// Dist2 returns the squared minimum-image distance between atoms a and b.
func (w *WaterBox) Dist2(a, b int) float64 {
	dx := minImage(w.Pos[a][0]-w.Pos[b][0], w.Box)
	dy := minImage(w.Pos[a][1]-w.Pos[b][1], w.Box)
	dz := minImage(w.Pos[a][2]-w.Pos[b][2], w.Box)
	return dx*dx + dy*dy + dz*dz
}

// Disp returns the minimum-image displacement vector from atom b to atom a.
func (w *WaterBox) Disp(a, b int) [3]float64 {
	return [3]float64{
		minImage(w.Pos[a][0]-w.Pos[b][0], w.Box),
		minImage(w.Pos[a][1]-w.Pos[b][1], w.Box),
		minImage(w.Pos[a][2]-w.Pos[b][2], w.Box),
	}
}

// HalfNeighborPairs returns molecule pairs (i < j) whose oxygen-oxygen
// distance is within cutoff — the Newton's-third-law neighbor list used by
// the scatter-add variants.
func (w *WaterBox) HalfNeighborPairs(cutoff float64) [][2]int32 {
	// Cell list for O(n) construction.
	cells := int(w.Box / cutoff)
	if cells < 1 {
		cells = 1
	}
	cellOf := func(m int) [3]int {
		o := w.Pos[m*AtomsPerMol]
		c := [3]int{}
		for d := 0; d < 3; d++ {
			x := math.Mod(o[d], w.Box)
			if x < 0 {
				x += w.Box
			}
			c[d] = int(x / w.Box * float64(cells))
			if c[d] >= cells {
				c[d] = cells - 1
			}
		}
		return c
	}
	bucket := make(map[[3]int][]int32)
	for m := 0; m < w.NumMol; m++ {
		c := cellOf(m)
		bucket[c] = append(bucket[c], int32(m))
	}
	cut2 := cutoff * cutoff
	var pairs [][2]int32
	for m := 0; m < w.NumMol; m++ {
		c := cellOf(m)
		// With few cells the wrapped 27-neighborhood revisits cells; dedup.
		visited := map[[3]int]bool{}
		for dz := -1; dz <= 1; dz++ {
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nc := [3]int{
						((c[0]+dx)%cells + cells) % cells,
						((c[1]+dy)%cells + cells) % cells,
						((c[2]+dz)%cells + cells) % cells,
					}
					if visited[nc] {
						continue
					}
					visited[nc] = true
					for _, other := range bucket[nc] {
						j := int(other)
						if j <= m {
							continue
						}
						if w.Dist2(m*AtomsPerMol, j*AtomsPerMol) <= cut2 {
							pairs = append(pairs, [2]int32{int32(m), int32(j)})
						}
					}
				}
			}
		}
	}
	return pairs
}

// FullNeighborList returns, per molecule, all neighbors within cutoff (both
// directions) — the duplicated-computation variant's list (§4.3: "doubling
// the amount of computation, and not taking advantage of [Newton's third
// law]").
func (w *WaterBox) FullNeighborList(cutoff float64) [][]int32 {
	out := make([][]int32, w.NumMol)
	for _, p := range w.HalfNeighborPairs(cutoff) {
		out[p[0]] = append(out[p[0]], p[1])
		out[p[1]] = append(out[p[1]], p[0])
	}
	return out
}
