// Package workload generates the deterministic synthetic datasets used by
// the evaluation applications: uniform random index streams (histogram,
// §4.1), a cubic-Lagrange tetrahedral finite-element mesh and its assembled
// sparse matrix (SpMV, §4.1), and a water box with Verlet neighbor lists
// (molecular dynamics, §4.1). All generators are seeded and reproducible.
package workload

// RNG is a small deterministic generator (splitmix64) used for all
// synthetic data, so experiments are exactly reproducible across runs and
// platforms without math/rand version concerns.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Normalish returns a cheap approximately normal value in (-3, 3) (sum of
// uniforms), sufficient for jittering synthetic geometry.
func (r *RNG) Normalish() float64 {
	return (r.Float64()+r.Float64()+r.Float64())*2 - 3
}
