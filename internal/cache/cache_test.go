package cache

import (
	"testing"
	"testing/quick"

	"scatteradd/internal/dram"
	"scatteradd/internal/mem"
	"scatteradd/internal/port"
)

var _ port.Word = (*Bank)(nil)

func testConfig() Config {
	return Config{
		Banks:      2,
		TotalLines: 64, // 32 lines per bank
		Ways:       4,  // 8 sets per bank
		HitLatency: 2,
		MSHRs:      4,
		PortWidth:  1,
		InQDepth:   8,
		RespQDepth: 16,
		WBQDepth:   8,
	}
}

// harness drives a set of banks plus a DRAM, routing fills.
type harness struct {
	banks   []*Bank
	d       *dram.DRAM
	now     uint64
	evicted []EvictedLine // partial lines popped during step()
}

func newHarness(cfg Config, mode Mode) *harness {
	d := dram.New(dram.DefaultConfig())
	h := &harness{d: d}
	for i := 0; i < cfg.Banks; i++ {
		var backing *dram.DRAM
		if mode == Normal {
			backing = d
		}
		h.banks = append(h.banks, NewBank(cfg, i, backing, mode))
	}
	return h
}

func (h *harness) bankFor(a mem.Addr) *Bank {
	return h.banks[BankOf(a.Line(), len(h.banks))]
}

func (h *harness) step() {
	for _, b := range h.banks {
		b.Tick(h.now)
		for {
			ev, ok := b.PopEvict()
			if !ok {
				break
			}
			h.evicted = append(h.evicted, ev)
		}
	}
	h.d.Tick(h.now)
	for {
		r, ok := h.d.PopResponse(h.now)
		if !ok {
			break
		}
		h.bankFor(r.Line).Fill(h.now, r.Line, r.Data)
	}
	h.now++
}

// do submits a request (retrying on back-pressure) and, when a response is
// expected, runs until it arrives.
func (h *harness) do(t *testing.T, r mem.Request) *mem.Response {
	t.Helper()
	b := h.bankFor(r.Addr)
	for !b.Accept(h.now, r) {
		h.step()
		if h.now > 1_000_000 {
			t.Fatal("accept timeout")
		}
	}
	needsResp := r.Kind == mem.Read || r.Kind.IsFetch()
	for {
		h.step()
		if resp, ok := b.PopResponse(h.now); ok {
			return &resp
		}
		if !needsResp && !b.Busy() {
			return nil
		}
		if h.now > 1_000_000 {
			t.Fatal("response timeout")
		}
	}
}

func (h *harness) drain(t *testing.T) {
	t.Helper()
	for {
		busy := h.d.Busy()
		for _, b := range h.banks {
			busy = busy || b.Busy()
		}
		if !busy {
			return
		}
		h.step()
		if h.now > 1_000_000 {
			t.Fatal("drain timeout")
		}
	}
}

func TestMissThenHit(t *testing.T) {
	h := newHarness(testConfig(), Normal)
	h.d.Store().StoreWord(10, 1234)
	r := h.do(t, mem.Request{ID: 1, Kind: mem.Read, Addr: 10})
	if r.Val != 1234 {
		t.Fatalf("read = %d", r.Val)
	}
	b := h.bankFor(10)
	if b.Stats().Misses != 1 || b.Stats().Hits != 0 {
		t.Fatalf("stats after miss: %+v", b.Stats())
	}
	start := h.now
	r2 := h.do(t, mem.Request{ID: 2, Kind: mem.Read, Addr: 11})
	if r2.Val != 0 {
		t.Fatalf("read = %d", r2.Val)
	}
	if b.Stats().Hits != 1 {
		t.Fatalf("second access should hit: %+v", b.Stats())
	}
	// A hit must be much faster than the DRAM round trip.
	if h.now-start > 10 {
		t.Fatalf("hit took %d cycles", h.now-start)
	}
}

func TestWriteAllocateAndWriteBack(t *testing.T) {
	cfg := testConfig()
	h := newHarness(cfg, Normal)
	b := h.bankFor(0)
	h.do(t, mem.Request{ID: 1, Kind: mem.Write, Addr: 3, Val: 55})
	h.drain(t)
	if b.Stats().Misses != 1 {
		t.Fatalf("write miss not allocated: %+v", b.Stats())
	}
	// Read back through the cache.
	r := h.do(t, mem.Request{ID: 2, Kind: mem.Read, Addr: 3})
	if r.Val != 55 {
		t.Fatalf("read after write = %d", r.Val)
	}
	// Functional flush makes DRAM authoritative.
	b.FlushFunctional()
	if h.d.Store().Load(3) != 55 {
		t.Fatal("FlushFunctional did not reach DRAM store")
	}
}

func TestEvictionWritesBack(t *testing.T) {
	cfg := testConfig()
	h := newHarness(cfg, Normal)
	b := h.banks[0]
	// Bank 0, set 0: lines whose local index ≡ 0 mod sets(8). Global line
	// stride between same-set lines of bank 0 = Banks*Sets lines = 16 lines.
	setStride := mem.Addr(cfg.Banks * 8 * mem.LineWords)
	// Fill all 4 ways of set 0 with dirty lines, then touch a 5th.
	for i := 0; i < 5; i++ {
		h.do(t, mem.Request{ID: uint64(i), Kind: mem.Write, Addr: setStride * mem.Addr(i), Val: mem.Word(i + 100)})
		h.drain(t)
	}
	st := b.Stats()
	if st.Evictions == 0 || st.WriteBacks == 0 {
		t.Fatalf("expected eviction + write-back: %+v", st)
	}
	// The evicted line's data must be in DRAM (line 0 was LRU).
	if h.d.Store().Load(0) != 100 {
		t.Fatalf("evicted data not written back: %d", h.d.Store().Load(0))
	}
	// And re-reading it must return the written value.
	r := h.do(t, mem.Request{ID: 9, Kind: mem.Read, Addr: 0})
	if r.Val != 100 {
		t.Fatalf("read after eviction = %d", r.Val)
	}
}

func TestMSHRMerging(t *testing.T) {
	h := newHarness(testConfig(), Normal)
	h.d.Store().StoreWord(16, 7)
	h.d.Store().StoreWord(17, 8)
	b := h.bankFor(16)
	// Two reads to the same line back-to-back: second merges.
	if !b.Accept(h.now, mem.Request{ID: 1, Kind: mem.Read, Addr: 16}) {
		t.Fatal("accept 1")
	}
	if !b.Accept(h.now, mem.Request{ID: 2, Kind: mem.Read, Addr: 17}) {
		t.Fatal("accept 2")
	}
	got := map[uint64]mem.Word{}
	for len(got) < 2 {
		h.step()
		if r, ok := b.PopResponse(h.now); ok {
			got[r.ID] = r.Val
		}
		if h.now > 100000 {
			t.Fatal("timeout")
		}
	}
	if got[1] != 7 || got[2] != 8 {
		t.Fatalf("responses = %v", got)
	}
	st := b.Stats()
	if st.Misses != 1 || st.MergedMiss != 1 {
		t.Fatalf("MSHR merge stats: %+v", st)
	}
	if h.d.Stats().Reads != 1 {
		t.Fatalf("DRAM reads = %d, want 1 (merged)", h.d.Stats().Reads)
	}
}

func TestBankOfPartitioning(t *testing.T) {
	// Successive lines map to successive banks.
	for i := 0; i < 32; i++ {
		a := mem.Addr(i * mem.LineWords)
		if BankOf(a, 8) != i%8 {
			t.Fatalf("line %d -> bank %d", i, BankOf(a, 8))
		}
	}
}

func TestWrongBankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h := newHarness(testConfig(), Normal)
	// Address in bank 1 submitted to bank 0.
	h.banks[0].Accept(0, mem.Request{Kind: mem.Read, Addr: mem.LineWords})
}

func TestCombineLocalZeroAllocate(t *testing.T) {
	cfg := testConfig()
	h := newHarness(cfg, CombineLocal)
	b := h.banks[0]
	b.SetZeroKind(mem.AddF64)
	// Scatter-adds into a cold line: must not touch DRAM, must accumulate.
	for i := 0; i < 3; i++ {
		h.do(t, mem.Request{ID: uint64(i), Kind: mem.AddF64, Addr: 0, Val: mem.F64(1.5)})
	}
	h.drain(t)
	if h.d.Stats().Reads != 0 {
		t.Fatalf("CombineLocal fetched from DRAM: %+v", h.d.Stats())
	}
	parts := b.ResidentPartialLines()
	if len(parts) != 1 {
		t.Fatalf("resident partial lines = %d", len(parts))
	}
	if got := mem.AsF64(parts[0].Data[0]); got != 4.5 {
		t.Fatalf("partial sum = %g want 4.5", got)
	}
}

func TestCombineLocalEvictSurfacesPartial(t *testing.T) {
	cfg := testConfig()
	h := newHarness(cfg, CombineLocal)
	b := h.banks[0]
	b.SetZeroKind(mem.AddI64)
	// Fill set 0 beyond associativity with scatter-adds to distinct lines.
	setStride := mem.Addr(cfg.Banks * 8 * mem.LineWords)
	for i := 0; i < 5; i++ {
		h.do(t, mem.Request{ID: uint64(i), Kind: mem.AddI64, Addr: setStride * mem.Addr(i), Val: mem.I64(int64(i + 1))})
		h.drain(t)
	}
	if len(h.evicted) != 1 {
		t.Fatalf("evicted %d partial lines, want 1", len(h.evicted))
	}
	ev := h.evicted[0]
	if ev.Line != 0 || mem.AsI64(ev.Data[0]) != 1 {
		t.Fatalf("evicted = %+v", ev)
	}
	if b.Stats().SumBacks != 1 {
		t.Fatalf("sum-backs = %d", b.Stats().SumBacks)
	}
}

func TestFlushWalksAllLines(t *testing.T) {
	cfg := testConfig()
	h := newHarness(cfg, CombineLocal)
	b := h.banks[0]
	b.SetZeroKind(mem.AddI64)
	// Dirty three distinct lines.
	for i := 0; i < 3; i++ {
		h.do(t, mem.Request{ID: uint64(i), Kind: mem.AddI64,
			Addr: mem.Addr(i * cfg.Banks * mem.LineWords), Val: mem.I64(10)})
	}
	h.drain(t)
	b.StartFlush()
	for b.Flushing() || b.Busy() {
		h.step()
		if h.now > 100000 {
			t.Fatal("flush timeout")
		}
	}
	if len(h.evicted) != 3 {
		t.Fatalf("flush surfaced %d lines, want 3", len(h.evicted))
	}
	if len(b.ResidentPartialLines()) != 0 {
		t.Fatal("partial lines remain after flush")
	}
}

func TestFetchAddInCombineLocal(t *testing.T) {
	h := newHarness(testConfig(), CombineLocal)
	b := h.banks[0]
	b.SetZeroKind(mem.FetchAddI64)
	r1 := h.do(t, mem.Request{ID: 1, Kind: mem.FetchAddI64, Addr: 0, Val: mem.I64(5)})
	r2 := h.do(t, mem.Request{ID: 2, Kind: mem.FetchAddI64, Addr: 0, Val: mem.I64(3)})
	if mem.AsI64(r1.Val) != 0 || mem.AsI64(r2.Val) != 5 {
		t.Fatalf("fetch-add returned %d then %d, want 0 then 5", mem.AsI64(r1.Val), mem.AsI64(r2.Val))
	}
}

// Property: a random sequence of word writes followed by reads through the
// cache returns exactly what a flat map would (functional equivalence).
func TestCacheFunctionalEquivalence(t *testing.T) {
	f := func(ops []struct {
		A uint8
		V uint16
	}) bool {
		cfg := testConfig()
		h := newHarness(cfg, Normal)
		ref := map[mem.Addr]mem.Word{}
		for i, op := range ops {
			a := mem.Addr(op.A)
			b := h.bankFor(a)
			req := mem.Request{ID: uint64(i), Kind: mem.Write, Addr: a, Val: mem.Word(op.V)}
			for !b.Accept(h.now, req) {
				h.step()
			}
			ref[a] = mem.Word(op.V)
			h.step()
		}
		// Drain all pending work.
		for {
			busy := h.d.Busy()
			for _, b := range h.banks {
				busy = busy || b.Busy()
			}
			if !busy {
				break
			}
			h.step()
		}
		for a, want := range ref {
			b := h.bankFor(a)
			req := mem.Request{ID: 999, Kind: mem.Read, Addr: a}
			for !b.Accept(h.now, req) {
				h.step()
			}
			var got *mem.Response
			for got == nil {
				h.step()
				if r, ok := b.PopResponse(h.now); ok {
					got = &r
				}
				if h.now > 2_000_000 {
					return false
				}
			}
			if got.Val != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(){
		func() {
			cfg := testConfig()
			cfg.TotalLines = 63
			NewBank(cfg, 0, dram.New(dram.DefaultConfig()), Normal)
		},
		func() {
			cfg := testConfig()
			cfg.Ways = 5
			NewBank(cfg, 0, dram.New(dram.DefaultConfig()), Normal)
		},
		func() { NewBank(testConfig(), 0, nil, Normal) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
