package cache

import (
	"testing"
	"testing/quick"

	"scatteradd/internal/mem"
)

func wcbConfig() Config {
	cfg := testConfig()
	cfg.WriteNoAllocate = true
	cfg.WCBEntries = 4
	return cfg
}

func TestWCBFullLineAvoidsFill(t *testing.T) {
	h := newHarness(wcbConfig(), Normal)
	b := h.banks[0]
	// Write a whole line (bank 0 owns lines 0, 2, 4...: words 0..7).
	for w := 0; w < mem.LineWords; w++ {
		h.do(t, mem.Request{ID: uint64(w), Kind: mem.Write, Addr: mem.Addr(w), Val: mem.Word(w + 10)})
	}
	h.drain(t)
	if h.d.Stats().Reads != 0 {
		t.Fatalf("full-line write caused %d DRAM reads", h.d.Stats().Reads)
	}
	if h.d.Stats().Writes != 1 {
		t.Fatalf("DRAM writes = %d want 1", h.d.Stats().Writes)
	}
	if b.Stats().WCBFullLines != 1 {
		t.Fatalf("stats: %+v", b.Stats())
	}
	for w := 0; w < mem.LineWords; w++ {
		if got := h.d.Store().Load(mem.Addr(w)); got != mem.Word(w+10) {
			t.Fatalf("word %d = %d", w, got)
		}
	}
}

func TestWCBPartialSpillsViaFetchMerge(t *testing.T) {
	h := newHarness(wcbConfig(), Normal)
	b := h.banks[0]
	h.d.Store().StoreWord(3, 999) // pre-existing word that must survive
	// Write only words 0 and 1 of line 0, then read word 3: the partial
	// entry spills via fetch-and-merge before the read is serviced.
	h.do(t, mem.Request{ID: 1, Kind: mem.Write, Addr: 0, Val: 100})
	h.do(t, mem.Request{ID: 2, Kind: mem.Write, Addr: 1, Val: 101})
	r := h.do(t, mem.Request{ID: 3, Kind: mem.Read, Addr: 3})
	if r.Val != 999 {
		t.Fatalf("read after partial write = %d want 999", r.Val)
	}
	if b.Stats().WCBSpills != 1 {
		t.Fatalf("stats: %+v", b.Stats())
	}
	// The merged line must hold both the old and new words.
	r0 := h.do(t, mem.Request{ID: 4, Kind: mem.Read, Addr: 0})
	if r0.Val != 100 {
		t.Fatalf("merged word 0 = %d", r0.Val)
	}
}

func TestWCBCapacityEviction(t *testing.T) {
	h := newHarness(wcbConfig(), Normal)
	b := h.banks[0]
	// Touch 5 distinct lines with partial writes: the LRU entry spills.
	for i := 0; i < 5; i++ {
		a := mem.Addr(i * 2 * mem.LineWords) // bank 0 lines
		h.do(t, mem.Request{ID: uint64(i), Kind: mem.Write, Addr: a, Val: mem.Word(i)})
	}
	h.drain(t)
	if b.Stats().WCBSpills == 0 {
		t.Fatalf("no spill with 5 lines in a 4-entry WCB: %+v", b.Stats())
	}
}

func TestWCBFlushFunctional(t *testing.T) {
	h := newHarness(wcbConfig(), Normal)
	h.do(t, mem.Request{ID: 1, Kind: mem.Write, Addr: 5, Val: 55})
	h.drain(t)
	h.banks[0].FlushFunctional()
	if got := h.d.Store().Load(5); got != 55 {
		t.Fatalf("flushed word = %d", got)
	}
}

func TestWCBReducesTrafficForStreamWrites(t *testing.T) {
	// Sequential full-region writes: write-allocate fetches every line,
	// write-no-allocate fetches none.
	run := func(noAlloc bool) uint64 {
		cfg := testConfig()
		cfg.WriteNoAllocate = noAlloc
		h := newHarness(cfg, Normal)
		for i := 0; i < 128; i++ {
			a := mem.Addr(i)
			bk := h.bankFor(a)
			req := mem.Request{ID: uint64(i), Kind: mem.Write, Addr: a, Val: mem.Word(i)}
			for !bk.Accept(h.now, req) {
				h.step()
			}
			h.step()
		}
		h.drain(t)
		return h.d.Stats().Reads
	}
	alloc, noAlloc := run(false), run(true)
	if noAlloc != 0 {
		t.Fatalf("write-no-allocate caused %d fills", noAlloc)
	}
	if alloc == 0 {
		t.Fatal("write-allocate baseline fetched nothing — test is vacuous")
	}
}

// Property: with write-no-allocate, arbitrary interleavings of writes and
// reads still behave like a flat memory.
func TestWCBFunctionalEquivalenceProperty(t *testing.T) {
	f := func(ops []struct {
		A     uint8
		V     uint16
		Write bool
	}) bool {
		h := newHarness(wcbConfig(), Normal)
		ref := map[mem.Addr]mem.Word{}
		for i, op := range ops {
			a := mem.Addr(op.A % 64)
			bk := h.bankFor(a)
			if op.Write {
				req := mem.Request{ID: uint64(i), Kind: mem.Write, Addr: a, Val: mem.Word(op.V)}
				for !bk.Accept(h.now, req) {
					h.step()
				}
				ref[a] = mem.Word(op.V)
				h.step()
				// Writes are not synchronized individually; drain before a
				// subsequent read of the same address below.
			} else {
				// Drain so the read observes all earlier writes.
				for {
					busy := h.d.Busy()
					for _, b := range h.banks {
						busy = busy || b.Busy()
					}
					if !busy {
						break
					}
					h.step()
				}
				req := mem.Request{ID: uint64(i), Kind: mem.Read, Addr: a}
				for !bk.Accept(h.now, req) {
					h.step()
				}
				var got *mem.Response
				for got == nil {
					h.step()
					if r, ok := bk.PopResponse(h.now); ok {
						got = &r
					}
					if h.now > 2_000_000 {
						return false
					}
				}
				if got.Val != ref[a] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
