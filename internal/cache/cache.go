// Package cache models the address-partitioned banked stream cache of the
// simulated node (paper §4.2: 1 MB, 8 banks, 64 GB/s, "an address
// partitioned on-chip data cache serves as a bandwidth amplifier for
// memory"). Each Bank is a set-associative write-back, write-allocate cache
// slice with MSHRs and a write-back queue, fronted by a word-granular port
// (port.Word) and backed by the line-granular DRAM model.
//
// Banks also implement the multi-node cache-combining optimization of §3.2:
// in CombineLocal mode a miss allocates the line filled with the combining
// identity instead of fetching it from the (remote) owner, and evicted lines
// are surfaced through PopEvict for the node to convert into sum-back
// scatter-add requests. StartFlush begins the paper's flush-with-sum-back
// synchronization step.
package cache

import (
	"fmt"

	"scatteradd/internal/dram"
	"scatteradd/internal/fault"
	"scatteradd/internal/mem"
	"scatteradd/internal/sim"
	"scatteradd/internal/span"
	"scatteradd/internal/stats"
)

// Mode selects how a Bank handles misses and evictions.
type Mode uint8

const (
	// Normal: misses fetch from DRAM; dirty evictions write back to DRAM.
	Normal Mode = iota
	// CombineLocal: misses allocate an identity-filled line locally (no
	// fetch); dirty evictions are surfaced via PopEvict as partial sums.
	CombineLocal
)

// Config holds per-cache parameters. Values describe the whole cache; each
// bank models 1/Banks of the lines.
type Config struct {
	Banks      int // number of banks (address partitioned by line)
	TotalLines int // lines across all banks (1 MB / 64 B = 16384)
	Ways       int // set associativity
	HitLatency int // cycles from accept to response on a hit
	MSHRs      int // outstanding misses per bank
	PortWidth  int // word requests consumed per bank per cycle
	InQDepth   int // front-side input queue entries per bank
	RespQDepth int // front-side response queue entries per bank
	WBQDepth   int // write-back queue entries per bank

	// WriteNoAllocate sends word-write misses to a small per-bank
	// write-combining buffer instead of fetching the line: a fully written
	// line goes straight to DRAM with no fill traffic (ideal for the
	// sequential result streams of the scatter phase, §3.1); partially
	// written lines spill through a fetch-and-merge. Off by default (the
	// baseline machine write-allocates).
	WriteNoAllocate bool
	WCBEntries      int // write-combining buffer entries per bank (default 8)
}

// DefaultConfig returns the Table 1 stream cache: 1 MB, 8 banks, 64 GB/s
// (one word per bank per cycle at 1 GHz).
func DefaultConfig() Config {
	return Config{
		Banks:      8,
		TotalLines: (1 << 20) / mem.LineBytes,
		Ways:       4,
		HitLatency: 2,
		MSHRs:      8,
		PortWidth:  1,
		InQDepth:   8,
		RespQDepth: 16,
		WBQDepth:   8,
	}
}

// Stats aggregates cache activity.
type Stats struct {
	Hits       uint64
	Misses     uint64 // demand misses that allocated an MSHR
	MergedMiss uint64 // requests merged into an existing MSHR
	Evictions  uint64
	WriteBacks uint64 // dirty lines written to DRAM
	SumBacks   uint64 // partial lines surfaced in CombineLocal mode
	Stalls     uint64 // cycles the bank head request could not proceed

	WCBMerges    uint64 // writes absorbed by the write-combining buffer
	WCBFullLines uint64 // fully written lines sent to DRAM without a fill
	WCBSpills    uint64 // partial lines spilled via fetch-and-merge

	PartialScrubs uint64 // evicted partial lines that needed a parity scrub
}

type line struct {
	valid    bool
	dirty    bool
	partial  bool // CombineLocal: holds partial sums, not authoritative data
	tag      uint64
	lastUsed uint64
	kind     mem.Kind // combine kind for partial lines
	data     [mem.LineWords]mem.Word
}

type mshr struct {
	valid       bool
	line        mem.Addr // line-aligned address
	issued      bool     // fill request accepted by DRAM
	filled      bool     // line is resident; pending drains as respQ allows
	pending     []mem.Request
	pendingFill *[mem.LineWords]mem.Word // fill data staged while eviction is blocked
	alloc       uint64                   // allocation cycle, for miss spans
}

// EvictedLine is a partial-sum line surfaced by a CombineLocal bank.
type EvictedLine struct {
	Line mem.Addr
	Kind mem.Kind
	Data [mem.LineWords]mem.Word
}

// wcbEntry is one write-combining buffer slot.
type wcbEntry struct {
	valid    bool
	line     mem.Addr
	mask     uint8 // bit i set = word i written
	lastUsed uint64
	data     [mem.LineWords]mem.Word
}

const fullMask = uint8(1<<mem.LineWords - 1)

// wcbReplayID marks the internal word writes replayed from a spilled
// write-combining entry, so they can never alias a traced upstream ID.
const wcbReplayID = uint64(1) << 63

// partialScrubCycles is the fixed cost of a parity scrub on an evicted
// partial-sum line: the line is re-read from the data array and re-checked
// before it may leave the bank as a sum-back.
const partialScrubCycles = 16

// metrics are the bank's performance counters: the contention and occupancy
// events behind the paper's hot-bank effect (§4.3, Figure 7).
type metrics struct {
	group         *stats.Group
	conflicts     *stats.Counter   // cycles with more queued requests than the port width
	mshrOccupancy *stats.Histogram // valid MSHRs, sampled every cycle
	wcbOccupancy  *stats.Histogram // valid write-combining entries, sampled every cycle
	hits          *stats.Counter
	misses        *stats.Counter
	evictions     *stats.Counter
	writeBacks    *stats.Counter
	stallCycles   *stats.Counter // cycles the head request could not proceed

	// Fault counters (zero unless injection is configured).
	faultScrubs *stats.Counter // evicted partial lines held for a parity scrub
}

func newMetrics(mshrs, wcbEntries int) metrics {
	g := stats.NewGroup("cache")
	if wcbEntries < 1 {
		wcbEntries = 1
	}
	return metrics{
		group:         g,
		conflicts:     g.Counter("bank_conflict_cycles"),
		mshrOccupancy: g.Histogram("mshr_occupancy", mshrs+1),
		wcbOccupancy:  g.Histogram("wcb_occupancy", wcbEntries+1),
		hits:          g.Counter("hits"),
		misses:        g.Counter("misses"),
		evictions:     g.Counter("evictions"),
		writeBacks:    g.Counter("write_backs"),
		stallCycles:   g.Counter("stall_cycles"),

		faultScrubs: g.Counter("fault_partial_scrubs"),
	}
}

// Bank is one slice of the stream cache.
type Bank struct {
	cfg      Config
	mode     Mode
	index    int // this bank's number (for set mapping)
	sets     int
	lines    []line // sets*ways, row-major by set
	mshrs    []mshr
	mshrUsed int // valid MSHRs (occupancy)
	dram     *dram.DRAM
	inQ      *sim.Queue[mem.Request]
	respQ    *sim.Delay[mem.Response]
	wbQ      *sim.Queue[dram.LineReq]
	evictQ   *sim.Queue[EvictedLine]
	wcb      []wcbEntry
	wcbUsed  int // valid write-combining entries (occupancy)
	stats    Stats
	met      metrics

	flushing bool
	flushPos int // next line index to examine during flush

	zeroKind mem.Kind // combine kind for zero-allocation in CombineLocal

	tr    *span.Tracer
	track string

	// Fault injection (nil when disabled): evicted partial-sum lines whose
	// parity check fires pass through scrubQ (a fixed re-check delay) before
	// surfacing in evictQ.
	partialInj *fault.Injector
	scrubQ     *sim.Delay[EvictedLine]
}

// NewBank constructs bank index of a cache described by cfg, backed by d.
// d may be nil only in CombineLocal mode, where misses never fetch.
func NewBank(cfg Config, index int, d *dram.DRAM, mode Mode) *Bank {
	if cfg.Banks <= 0 || cfg.TotalLines%cfg.Banks != 0 {
		panic(fmt.Sprintf("cache: TotalLines %d not divisible by Banks %d", cfg.TotalLines, cfg.Banks))
	}
	perBank := cfg.TotalLines / cfg.Banks
	if cfg.Ways <= 0 || perBank%cfg.Ways != 0 {
		panic(fmt.Sprintf("cache: lines per bank %d not divisible by ways %d", perBank, cfg.Ways))
	}
	if mode == Normal && d == nil {
		panic("cache: Normal mode requires a DRAM backend")
	}
	wcbEntries := cfg.WCBEntries
	if wcbEntries <= 0 {
		wcbEntries = 8
	}
	b := &Bank{
		cfg:      cfg,
		mode:     mode,
		index:    index,
		sets:     perBank / cfg.Ways,
		lines:    make([]line, perBank),
		mshrs:    make([]mshr, cfg.MSHRs),
		dram:     d,
		inQ:      sim.NewQueue[mem.Request](cfg.InQDepth),
		respQ:    sim.NewDelay[mem.Response](cfg.HitLatency, cfg.RespQDepth),
		wbQ:      sim.NewQueue[dram.LineReq](cfg.WBQDepth),
		evictQ:   sim.NewQueue[EvictedLine](cfg.WBQDepth),
		met:      newMetrics(cfg.MSHRs, wcbEntries),
		zeroKind: mem.AddF64,
	}
	if cfg.WriteNoAllocate {
		b.wcb = make([]wcbEntry, wcbEntries)
	}
	return b
}

// SetZeroKind configures the combining identity used for zero-allocated
// lines in CombineLocal mode.
func (b *Bank) SetZeroKind(k mem.Kind) { b.zeroKind = k }

// Stats returns a copy of the activity counters.
func (b *Bank) Stats() Stats { return b.stats }

// StatsGroup returns the bank's performance-counter group, for adoption into
// a machine-level registry.
func (b *Bank) StatsGroup() *stats.Group { return b.met.group }

// SetSpanTracer installs a request-lifecycle tracer; track names the bank
// in exported traces (e.g. "cache[3]"). A nil tracer disables tracing.
func (b *Bank) SetSpanTracer(tr *span.Tracer, track string) {
	b.tr = tr
	b.track = track
}

// SetFaults installs fault injection. inst salts the injector stream so
// every bank draws its own schedule. The one cache fault class is a parity
// fault on an evicted partial-sum line (CombineLocal mode): the line is held
// in a scrub pipe for partialScrubCycles and re-checked before it may leave
// as a sum-back — detected and recovered, never silently corrupting. One
// draw per evicted partial line keeps legacy and fast-forward stepping on
// identical schedules.
func (b *Bank) SetFaults(fc fault.Config, inst string) {
	b.partialInj = fault.NewInjector(fc.Seed, inst+".cache.partial", fc.CSCorruptRate)
	if b.partialInj != nil {
		b.scrubQ = sim.NewDelay[EvictedLine](partialScrubCycles, b.cfg.WBQDepth)
	}
}

// FaultCount returns the number of parity scrubs this bank has performed —
// the signal the node watches against its degradation threshold.
func (b *Bank) FaultCount() uint64 { return b.stats.PartialScrubs }

// BankOf maps a line-aligned address to its bank number. Successive lines
// map to successive banks; a narrow index range therefore concentrates on
// few banks — the paper's "hot bank effect" (§4.3, Figure 7).
func BankOf(a mem.Addr, banks int) int {
	return int((uint64(a) / mem.LineWords) % uint64(banks))
}

// setTag computes the set index and tag of a line-aligned address for this
// bank.
func (b *Bank) setTag(a mem.Addr) (int, uint64) {
	local := (uint64(a) / mem.LineWords) / uint64(b.cfg.Banks)
	return int(local % uint64(b.sets)), local / uint64(b.sets)
}

// lookup returns the way holding the line, or -1.
func (b *Bank) lookup(set int, tag uint64) int {
	base := set * b.cfg.Ways
	for w := 0; w < b.cfg.Ways; w++ {
		ln := &b.lines[base+w]
		if ln.valid && ln.tag == tag {
			return w
		}
	}
	return -1
}

// victim returns the way to replace in set (invalid first, else LRU among
// unpinned lines), or -1 when every way is pinned by a draining MSHR.
func (b *Bank) victim(set int) int {
	base := set * b.cfg.Ways
	best, bestUsed := -1, ^uint64(0)
	for w := 0; w < b.cfg.Ways; w++ {
		ln := &b.lines[base+w]
		if !ln.valid {
			return w
		}
		if ln.lastUsed < bestUsed && !b.pinnedLine(set, w) {
			best, bestUsed = w, ln.lastUsed
		}
	}
	return best
}

// lineAddrOf reconstructs the line-aligned global address of a cached line.
func (b *Bank) lineAddrOf(set int, tag uint64) mem.Addr {
	local := tag*uint64(b.sets) + uint64(set)
	return mem.Addr((local*uint64(b.cfg.Banks) + uint64(b.index)) * mem.LineWords)
}

// evict removes the line at (set, way), queueing any write-back or sum-back.
// It reports whether eviction was possible (queues had room).
func (b *Bank) evict(now uint64, set, way int) bool {
	ln := &b.lines[set*b.cfg.Ways+way]
	if !ln.valid {
		return true
	}
	addr := b.lineAddrOf(set, ln.tag)
	if ln.dirty {
		if ln.partial {
			if b.evictQ.Full() || (b.scrubQ != nil && b.scrubQ.Full()) {
				return false
			}
			ev := EvictedLine{Line: addr, Kind: ln.kind, Data: ln.data}
			if b.partialInj.Fire() {
				// Injected parity fault: the line re-checks through the
				// scrub pipe before it may leave as a sum-back. One draw
				// per evicted partial line.
				b.scrubQ.Push(now, ev)
				b.stats.PartialScrubs++
				b.met.faultScrubs.Inc()
			} else {
				b.evictQ.MustPush(ev)
			}
			b.stats.SumBacks++
		} else {
			if b.wbQ.Full() {
				return false
			}
			b.wbQ.MustPush(dram.LineReq{Line: addr, Write: true, Data: ln.data})
			b.stats.WriteBacks++
			b.met.writeBacks.Inc()
		}
	}
	ln.valid = false
	b.stats.Evictions++
	b.met.evictions.Inc()
	return true
}

// install places data into the cache for the given line, evicting as needed.
// Reports false when the victim could not be evicted this cycle.
func (b *Bank) install(now uint64, a mem.Addr, data [mem.LineWords]mem.Word, partial bool) bool {
	set, tag := b.setTag(a)
	way := b.victim(set)
	if way < 0 || !b.evict(now, set, way) {
		return false
	}
	ln := &b.lines[set*b.cfg.Ways+way]
	*ln = line{valid: true, tag: tag, lastUsed: now, data: data, partial: partial, kind: b.zeroKind}
	return true
}

// apply performs a word operation on a resident line and, when a response is
// due, pushes it. The caller has verified respQ capacity.
func (b *Bank) apply(now uint64, ln *line, r mem.Request) {
	if b.tr != nil {
		// Sampled ops that get a response move to the reply path; all
		// others (stores, local combines) complete here.
		if r.Kind == mem.Read || r.Kind.IsFetch() {
			b.tr.OpStage(r.Node, r.ID, span.StageReply, now)
		} else {
			b.tr.OpEnd(r.Node, r.ID, now)
		}
	}
	ln.lastUsed = now
	off := r.Addr.LineOffset()
	switch r.Kind {
	case mem.Read:
		b.respQ.Push(now, mem.Response{ID: r.ID, Kind: mem.Read, Addr: r.Addr, Val: ln.data[off], Node: r.Node})
	case mem.Write:
		ln.data[off] = r.Val
		ln.dirty = true
	default:
		// Scatter-add kinds reach the bank directly only in CombineLocal
		// mode, where the bank itself merges into the partial line. (In the
		// full machine the scatter-add unit splits RMWs into Read+Write
		// before they reach the cache.)
		old := ln.data[off]
		ln.data[off] = mem.Combine(r.Kind, old, r.Val)
		ln.dirty = true
		ln.kind = r.Kind
		if r.Kind.IsFetch() {
			b.respQ.Push(now, mem.Response{ID: r.ID, Kind: r.Kind, Addr: r.Addr, Val: old, Node: r.Node})
		}
	}
}

// CanAccept reports whether the input queue has room.
func (b *Bank) CanAccept(now uint64) bool { return !b.inQ.Full() }

// Accept submits a word request to the bank.
func (b *Bank) Accept(now uint64, r mem.Request) bool {
	if BankOf(r.Addr.Line(), b.cfg.Banks) != b.index {
		panic(fmt.Sprintf("cache: address %d routed to wrong bank %d", r.Addr, b.index))
	}
	return b.inQ.Push(r)
}

// PopResponse returns one completed response, if ready.
func (b *Bank) PopResponse(now uint64) (mem.Response, bool) {
	return b.respQ.Pop(now)
}

// PopEvict returns one evicted partial-sum line (CombineLocal mode).
func (b *Bank) PopEvict() (EvictedLine, bool) { return b.evictQ.Pop() }

// mshrFor returns the MSHR tracking the line, or nil.
func (b *Bank) mshrFor(a mem.Addr) *mshr {
	for i := range b.mshrs {
		if b.mshrs[i].valid && b.mshrs[i].line == a {
			return &b.mshrs[i]
		}
	}
	return nil
}

// freeMSHR returns an unused MSHR, or nil.
func (b *Bank) freeMSHR() *mshr {
	for i := range b.mshrs {
		if !b.mshrs[i].valid {
			return &b.mshrs[i]
		}
	}
	return nil
}

// Fill delivers a DRAM read completion for a line owned by this bank.
func (b *Bank) Fill(now uint64, a mem.Addr, data [mem.LineWords]mem.Word) {
	m := b.mshrFor(a)
	if m == nil {
		panic(fmt.Sprintf("cache: fill for line %d with no MSHR", a))
	}
	if !b.install(now, a, data, false) {
		// Victim eviction blocked on a full write-back queue: stage the data
		// in the MSHR's holding register and retry on the next Tick.
		m.pendingFill = &data
		return
	}
	b.completeMSHR(now, m)
}

// completeMSHR marks the line resident and drains as many pending requests
// as the response queue allows; the rest drain on subsequent Ticks while
// the line stays pinned (see victim).
func (b *Bank) completeMSHR(now uint64, m *mshr) {
	m.filled = true
	b.drainMSHR(now, m)
}

// drainMSHR services pending requests of a filled MSHR against the resident
// line, respecting response-queue capacity, and frees the MSHR when empty.
func (b *Bank) drainMSHR(now uint64, m *mshr) {
	set, tag := b.setTag(m.line)
	way := b.lookup(set, tag)
	if way < 0 {
		panic(fmt.Sprintf("cache: filled MSHR for line %d but line not resident", m.line))
	}
	ln := &b.lines[set*b.cfg.Ways+way]
	for len(m.pending) > 0 {
		r := m.pending[0]
		needsResp := r.Kind == mem.Read || r.Kind.IsFetch()
		if needsResp && b.respQ.Full() {
			return
		}
		b.apply(now, ln, r)
		m.pending = m.pending[1:]
	}
	if b.tr != nil {
		b.tr.SpanAsync(b.track, fmt.Sprintf("miss line=%d", m.line), m.alloc, now)
	}
	*m = mshr{}
	b.mshrUsed--
}

// pinnedLine reports whether a filled MSHR still references the line at
// (set, way); such lines must not be evicted until the MSHR drains.
func (b *Bank) pinnedLine(set, way int) bool {
	ln := &b.lines[set*b.cfg.Ways+way]
	if !ln.valid {
		return false
	}
	addr := b.lineAddrOf(set, ln.tag)
	for i := range b.mshrs {
		m := &b.mshrs[i]
		if m.valid && m.filled && m.line == addr {
			return true
		}
	}
	return false
}

// Tick processes queued requests, retries blocked fills, and drains the
// write-back queue to DRAM.
func (b *Bank) Tick(now uint64) {
	b.met.mshrOccupancy.Observe(b.mshrUsed)
	b.met.wcbOccupancy.Observe(b.wcbUsed)
	if b.inQ.Len() > b.cfg.PortWidth {
		// More word requests queued than the bank port can serve this cycle:
		// the bank-conflict serialization of §4.3.
		b.met.conflicts.Inc()
	}

	// Drain filled MSHRs and retry fills blocked on eviction.
	for i := range b.mshrs {
		m := &b.mshrs[i]
		if !m.valid {
			continue
		}
		if m.filled {
			b.drainMSHR(now, m)
			continue
		}
		if m.pendingFill != nil {
			if b.install(now, m.line, *m.pendingFill, false) {
				m.pendingFill = nil
				b.completeMSHR(now, m)
			}
		}
	}

	// Issue MSHR fetches that have not reached DRAM yet.
	if b.mode == Normal {
		for i := range b.mshrs {
			m := &b.mshrs[i]
			if m.valid && !m.issued && m.pendingFill == nil {
				if b.dram.CanAccept(m.line) && b.dram.Accept(now, dram.LineReq{Line: m.line}) {
					m.issued = true
				}
			}
		}
	}

	// Front-side request processing.
	for k := 0; k < b.cfg.PortWidth; k++ {
		if !b.processOne(now) {
			break
		}
	}

	// Flush walk: evict up to one line per cycle.
	if b.flushing {
		b.stepFlush(now)
	}

	// Surface scrubbed partial lines whose re-check has completed.
	for b.scrubQ != nil && !b.evictQ.Full() {
		ev, ok := b.scrubQ.Pop(now)
		if !ok {
			break
		}
		b.evictQ.MustPush(ev)
	}

	// Drain write-backs to DRAM.
	for b.dram != nil {
		wb, ok := b.wbQ.Peek()
		if !ok {
			break
		}
		if !b.dram.CanAccept(wb.Line) || !b.dram.Accept(now, wb) {
			break
		}
		b.wbQ.Pop()
	}
}

// NextEvent reports the earliest cycle at which the bank can do work (see
// sim.FastForwarder). Queued input, pending write-backs or evictions, an
// active flush walk, and any MSHR that still has local work (unissued fetch,
// staged fill, or a filled line draining) are work in the current cycle.
// MSHRs waiting on DRAM are woken by the DRAM model's own NextEvent; the
// only self-timed state is the hit-latency response pipe, whose head-ready
// cycle is reported so the engine never jumps past a deliverable response.
// Write-combining entries hold no timer: they drain only in reaction to new
// requests or spills.
func (b *Bank) NextEvent(now uint64) uint64 {
	if !b.inQ.Empty() || !b.wbQ.Empty() || !b.evictQ.Empty() || b.flushing {
		return now
	}
	for i := range b.mshrs {
		m := &b.mshrs[i]
		if m.valid && (m.filled || m.pendingFill != nil || !m.issued) {
			return now
		}
	}
	ev := b.respQ.NextReady()
	if b.scrubQ != nil {
		if t := b.scrubQ.NextReady(); t < ev {
			ev = t
		}
	}
	return ev
}

// Skip applies the per-cycle occupancy samples of cycles skipped idle Ticks.
// Bank-conflict and stall counters only move when the input queue is
// non-empty, which NextEvent reports as work, so no other counter can accrue
// during a skip.
func (b *Bank) Skip(now, cycles uint64) {
	b.met.mshrOccupancy.ObserveN(b.mshrUsed, cycles)
	b.met.wcbOccupancy.ObserveN(b.wcbUsed, cycles)
}

// wcbFind returns the write-combining entry for a line, or -1.
func (b *Bank) wcbFind(line mem.Addr) int {
	for i := range b.wcb {
		if b.wcb[i].valid && b.wcb[i].line == line {
			return i
		}
	}
	return -1
}

// wcbVictim returns a free or LRU write-combining entry.
func (b *Bank) wcbVictim() int {
	best, bestUsed := 0, ^uint64(0)
	for i := range b.wcb {
		if !b.wcb[i].valid {
			return i
		}
		if b.wcb[i].lastUsed < bestUsed {
			best, bestUsed = i, b.wcb[i].lastUsed
		}
	}
	return best
}

// spillWCB empties entry i: a fully written line goes straight to the
// write-back queue (no fill); a partial line converts into an MSHR
// fetch-and-merge whose pending list replays the buffered word writes.
// It reports false when the needed queue or MSHR was unavailable.
func (b *Bank) spillWCB(now uint64, i int) bool {
	e := &b.wcb[i]
	if e.mask == fullMask {
		if b.wbQ.Full() {
			return false
		}
		b.wbQ.MustPush(dram.LineReq{Line: e.line, Write: true, Data: e.data})
		b.stats.WCBFullLines++
		b.met.writeBacks.Inc()
		e.valid = false
		b.wcbUsed--
		return true
	}
	m := b.mshrFor(e.line)
	if m == nil {
		m = b.freeMSHR()
		if m == nil {
			return false
		}
		*m = mshr{valid: true, line: e.line}
		b.mshrUsed++
		if b.tr != nil {
			m.alloc = now
		}
		b.stats.Misses++
		b.met.misses.Inc()
	}
	for w := 0; w < mem.LineWords; w++ {
		if e.mask&(1<<w) != 0 {
			m.pending = append(m.pending, mem.Request{ID: wcbReplayID, Kind: mem.Write, Addr: e.line + mem.Addr(w), Val: e.data[w]})
		}
	}
	b.stats.WCBSpills++
	e.valid = false
	b.wcbUsed--
	return true
}

// wcbWrite absorbs a write miss into the combining buffer; reports whether
// it made progress.
func (b *Bank) wcbWrite(now uint64, r mem.Request) bool {
	line := r.Addr.Line()
	i := b.wcbFind(line)
	if i < 0 {
		i = b.wcbVictim()
		if b.wcb[i].valid && !b.spillWCB(now, i) {
			b.stats.Stalls++
			b.met.stallCycles.Inc()
			return false
		}
		b.wcb[i] = wcbEntry{valid: true, line: line}
		b.wcbUsed++
	}
	e := &b.wcb[i]
	e.data[r.Addr.LineOffset()] = r.Val
	e.mask |= 1 << r.Addr.LineOffset()
	e.lastUsed = now
	if b.tr != nil {
		// A sampled store completes once the combining buffer owns it.
		b.tr.OpEnd(r.Node, r.ID, now)
	}
	b.stats.WCBMerges++
	if e.mask == fullMask && !b.wbQ.Full() {
		b.wbQ.MustPush(dram.LineReq{Line: e.line, Write: true, Data: e.data})
		b.stats.WCBFullLines++
		b.met.writeBacks.Inc()
		e.valid = false
		b.wcbUsed--
	}
	return true
}

// processOne handles the head input request; reports whether it made
// progress (so the caller can consume up to PortWidth per cycle).
func (b *Bank) processOne(now uint64) bool {
	r, ok := b.inQ.Peek()
	if !ok {
		return false
	}
	needsResp := r.Kind == mem.Read || r.Kind.IsFetch()
	if needsResp && b.respQ.Full() {
		b.stats.Stalls++
		b.met.stallCycles.Inc()
		return false
	}
	lineAddr := r.Addr.Line()
	set, tag := b.setTag(lineAddr)
	if b.cfg.WriteNoAllocate {
		resident := b.lookup(set, tag) >= 0
		if r.Kind == mem.Write && !resident && b.mshrFor(lineAddr) == nil {
			if !b.wcbWrite(now, r) {
				return false
			}
			b.inQ.Pop()
			return true
		}
		// Any other access to a combining-buffer line spills it first, so
		// the subsequent fill merges the buffered writes before this
		// request is serviced.
		if i := b.wcbFind(lineAddr); i >= 0 {
			if !b.spillWCB(now, i) {
				b.stats.Stalls++
				b.met.stallCycles.Inc()
				return false
			}
		}
	}
	if way := b.lookup(set, tag); way >= 0 {
		b.stats.Hits++
		b.met.hits.Inc()
		b.apply(now, &b.lines[set*b.cfg.Ways+way], r)
		b.inQ.Pop()
		return true
	}
	// Miss.
	if b.mode == CombineLocal {
		// Zero-allocate with the combining identity (paper §3.2: "it is
		// simply allocated with a value of 0 instead of being read").
		var data [mem.LineWords]mem.Word
		id := mem.Identity(b.zeroKind)
		for i := range data {
			data[i] = id
		}
		if !b.install(now, lineAddr, data, true) {
			b.stats.Stalls++
			b.met.stallCycles.Inc()
			return false
		}
		way := b.lookup(set, tag)
		b.stats.Misses++
		b.met.misses.Inc()
		b.apply(now, &b.lines[set*b.cfg.Ways+way], r)
		b.inQ.Pop()
		return true
	}
	if m := b.mshrFor(lineAddr); m != nil {
		m.pending = append(m.pending, r)
		if b.tr != nil {
			b.tr.OpStage(r.Node, r.ID, span.StageDRAM, now)
		}
		b.stats.MergedMiss++
		b.inQ.Pop()
		return true
	}
	m := b.freeMSHR()
	if m == nil {
		b.stats.Stalls++
		b.met.stallCycles.Inc()
		return false
	}
	*m = mshr{valid: true, line: lineAddr, pending: []mem.Request{r}}
	b.mshrUsed++
	if b.tr != nil {
		m.alloc = now
		b.tr.OpStage(r.Node, r.ID, span.StageDRAM, now)
	}
	b.stats.Misses++
	b.met.misses.Inc()
	b.inQ.Pop()
	return true
}

// StartFlush begins evicting every valid line (used for the multi-node
// flush-with-sum-back synchronization and for end-of-phase write-back).
func (b *Bank) StartFlush() {
	b.flushing = true
	b.flushPos = 0
}

// stepFlush evicts the next valid line, one per cycle.
func (b *Bank) stepFlush(now uint64) {
	for b.flushPos < len(b.lines) {
		i := b.flushPos
		if b.lines[i].valid {
			set, way := i/b.cfg.Ways, i%b.cfg.Ways
			if !b.evict(now, set, way) {
				return // queue full; retry next cycle
			}
			b.flushPos++
			return
		}
		b.flushPos++
	}
	b.flushing = false
}

// Flushing reports whether a flush walk is still in progress.
func (b *Bank) Flushing() bool { return b.flushing }

// Busy reports whether the bank still holds unfinished work (excluding
// clean/dirty resident lines, which persist across phases).
func (b *Bank) Busy() bool {
	if !b.inQ.Empty() || b.respQ.Len() > 0 || !b.wbQ.Empty() || !b.evictQ.Empty() || b.flushing {
		return true
	}
	if b.scrubQ != nil && b.scrubQ.Len() > 0 {
		return true
	}
	for i := range b.mshrs {
		if b.mshrs[i].valid {
			return true
		}
	}
	return false
}

// FlushFunctional writes every dirty non-partial line into the DRAM store
// in zero simulated time. Call it after a run completes, before reading
// results back from the store.
func (b *Bank) FlushFunctional() {
	if b.dram == nil {
		return
	}
	for i := range b.lines {
		ln := &b.lines[i]
		if ln.valid && ln.dirty && !ln.partial {
			set := i / b.cfg.Ways
			addr := b.lineAddrOf(set, ln.tag)
			b.dram.Store().StoreLine(addr, &ln.data)
			ln.dirty = false
		}
	}
	for i := range b.wcb {
		e := &b.wcb[i]
		if !e.valid {
			continue
		}
		for w := 0; w < mem.LineWords; w++ {
			if e.mask&(1<<w) != 0 {
				b.dram.Store().StoreWord(e.line+mem.Addr(w), e.data[w])
			}
		}
		e.valid = false
		b.wcbUsed--
	}
}

// ResidentPartialLines returns the partial lines still resident (testing and
// final-drain support in CombineLocal mode).
func (b *Bank) ResidentPartialLines() []EvictedLine {
	var out []EvictedLine
	for i := range b.lines {
		ln := &b.lines[i]
		if ln.valid && ln.partial && ln.dirty {
			set := i / b.cfg.Ways
			out = append(out, EvictedLine{Line: b.lineAddrOf(set, ln.tag), Kind: ln.kind, Data: ln.data})
		}
	}
	return out
}
