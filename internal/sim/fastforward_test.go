package sim

import (
	"reflect"
	"testing"
)

// pulse is a minimal fast-forwardable component: it does observable work
// every period cycles (phase-aligned to cycle 0) and is quiescent in
// between. Skip accumulates the skipped-cycle count like a busy counter.
type pulse struct {
	period  uint64
	work    int    // Ticks that performed work
	idle    uint64 // idle cycles, whether ticked or skipped
	ticks   int
	skips   int
	skipped uint64
}

func (p *pulse) Tick(now uint64) {
	p.ticks++
	if now%p.period == 0 {
		p.work++
	} else {
		p.idle++
	}
}

func (p *pulse) NextEvent(now uint64) uint64 {
	if now%p.period == 0 {
		return now
	}
	return (now/p.period + 1) * p.period
}

func (p *pulse) Skip(now, cycles uint64) {
	p.skips++
	p.skipped += cycles
	p.idle += cycles
}

// runPulses drives a fresh engine over pulse components with the given
// periods for limit cycles and returns the components.
func runPulses(ff bool, limit uint64, sampleEvery uint64, periods ...uint64) ([]*pulse, []uint64) {
	e := NewEngine()
	ps := make([]*pulse, len(periods))
	for i, period := range periods {
		ps[i] = &pulse{period: period}
		e.Add(ps[i])
	}
	var sampled []uint64
	if sampleEvery > 0 {
		e.SetSampler(sampleEvery, func(now uint64) { sampled = append(sampled, now) })
	}
	e.SetFastForward(ff)
	e.RunUntil(func() bool { return false }, limit)
	return ps, sampled
}

// TestEngineFastForwardMatchesPerCycle is the unit-level cycle-exactness
// check: a fast-forward run must see exactly the same work cycles and idle
// totals as per-cycle stepping, with strictly fewer Ticks.
func TestEngineFastForwardMatchesPerCycle(t *testing.T) {
	const limit = 1000
	fast, _ := runPulses(true, limit, 0, 7, 13)
	slow, _ := runPulses(false, limit, 0, 7, 13)
	for i := range fast {
		if fast[i].work != slow[i].work {
			t.Errorf("pulse %d: work %d under fast-forward, %d per-cycle", i, fast[i].work, slow[i].work)
		}
		if fast[i].idle != slow[i].idle {
			t.Errorf("pulse %d: idle %d under fast-forward, %d per-cycle", i, fast[i].idle, slow[i].idle)
		}
		if fast[i].ticks+int(fast[i].skipped) != slow[i].ticks {
			t.Errorf("pulse %d: ticks %d + skipped %d != per-cycle ticks %d",
				i, fast[i].ticks, fast[i].skipped, slow[i].ticks)
		}
		if fast[i].skips == 0 {
			t.Errorf("pulse %d: fast-forward run never jumped", i)
		}
	}
}

// TestEngineFastForwardStopsAtEveryEvent checks the engine ticks (not
// skips) every cycle in which any component reports work: with periods 3
// and 5, work cycles are the union of both multiples.
func TestEngineFastForwardStopsAtEveryEvent(t *testing.T) {
	const limit = 90
	ps, _ := runPulses(true, limit, 0, 3, 5)
	want := 0
	for c := uint64(0); c < limit; c++ {
		if c%3 == 0 || c%5 == 0 {
			want++
		}
	}
	for i, p := range ps {
		if p.ticks != want {
			t.Errorf("pulse %d ticked %d times, want %d (union of work cycles)", i, p.ticks, want)
		}
	}
}

// TestEngineSamplerSequenceUnderFastForward is the sampler regression: with
// every=N the sampler must observe exactly the same now sequence under
// fast-forward as under per-cycle stepping, including when a component's
// quiescent stretch spans several multiples of N (period 64 >> every 5
// forces jumps that would cross multiple sample points if not capped).
func TestEngineSamplerSequenceUnderFastForward(t *testing.T) {
	const limit, every = 640, 5
	_, fast := runPulses(true, limit, every, 64)
	_, slow := runPulses(false, limit, every, 64)
	if len(fast) == 0 {
		t.Fatal("sampler never fired under fast-forward")
	}
	if !reflect.DeepEqual(fast, slow) {
		t.Fatalf("sampler now sequence differs:\nfast-forward: %v\nper-cycle:    %v", fast, slow)
	}
	for i, now := range fast {
		if want := uint64((i + 1) * every); now != want {
			t.Fatalf("sample %d fired at %d, want %d", i, now, want)
		}
	}
}

// TestEngineFastForwardRequiresAllComponents checks a single Ticker that
// does not implement FastForwarder disables jumping entirely.
func TestEngineFastForwardRequiresAllComponents(t *testing.T) {
	e := NewEngine()
	p := &pulse{period: 50}
	ticks := 0
	e.Add(p)
	e.Add(TickFunc(func(uint64) { ticks++ }))
	e.RunUntil(func() bool { return false }, 200)
	if ticks != 200 || p.ticks != 200 {
		t.Fatalf("ticks=%d pulse.ticks=%d, want 200 each (no jumps with a plain Ticker)", ticks, p.ticks)
	}
	if p.skips != 0 {
		t.Fatalf("Skip called %d times despite a non-fast-forwardable Ticker", p.skips)
	}
}

// TestEngineFastForwardHonorsLimit checks jumps never overshoot RunUntil's
// limit even when the next event lies far beyond it.
func TestEngineFastForwardHonorsLimit(t *testing.T) {
	e := NewEngine()
	p := &pulse{period: 1 << 40}
	e.Add(p)
	now, ok := e.RunUntil(func() bool { return false }, 123)
	if ok || now != 123 || e.Now() != 123 {
		t.Fatalf("now=%d ok=%v, want exactly the 123-cycle limit", now, ok)
	}
}

// TestEngineFastForwardDoneAtEvent checks done() is re-evaluated at every
// event cycle: the run must stop at the first work cycle satisfying it, not
// at the horizon beyond.
func TestEngineFastForwardDoneAtEvent(t *testing.T) {
	e := NewEngine()
	p := &pulse{period: 17}
	e.Add(p)
	now, ok := e.RunUntil(func() bool { return p.work >= 3 }, 1000)
	if !ok || now != 2*17+1 {
		t.Fatalf("now=%d ok=%v, want stop right after the third work pulse at cycle %d", now, ok, 2*17)
	}
}

// TestEngineFastForwardDrained checks an all-Never machine jumps straight
// to the limit without ticking.
func TestEngineFastForwardDrained(t *testing.T) {
	e := NewEngine()
	nb := &neverBusy{}
	e.Add(nb)
	now, ok := e.RunUntil(func() bool { return false }, 1_000_000)
	if ok || now != 1_000_000 {
		t.Fatalf("now=%d ok=%v, want a single jump to the limit", now, ok)
	}
	if nb.ticks != 0 || nb.skipped != 1_000_000 {
		t.Fatalf("ticks=%d skipped=%d, want 0 ticks and the full range skipped", nb.ticks, nb.skipped)
	}
}

// neverBusy is a fully drained component.
type neverBusy struct {
	ticks   int
	skipped uint64
}

func (n *neverBusy) Tick(uint64)             { n.ticks++ }
func (n *neverBusy) NextEvent(uint64) uint64 { return Never }
func (n *neverBusy) Skip(now, cycles uint64) { n.skipped += cycles }

// rrTicker arbitrates a RoundRobin over sparse want sets: requester i wants
// service only in cycles where now%periods[i] == 0. Grants are recorded so
// fast-forward and per-cycle runs can be compared; the arbiter pointer must
// not advance during skipped cycles (nobody was granted).
type rrTicker struct {
	rr      *RoundRobin
	periods []uint64
	grants  []int
}

func (r *rrTicker) Tick(now uint64) {
	if g := r.rr.Pick(func(i int) bool { return now%r.periods[i] == 0 }); g >= 0 {
		r.grants = append(r.grants, g)
	}
}

func (r *rrTicker) NextEvent(now uint64) uint64 {
	ev := Never
	for _, p := range r.periods {
		next := now
		if now%p != 0 {
			next = (now/p + 1) * p
		}
		if next < ev {
			ev = next
		}
	}
	return ev
}

func (r *rrTicker) Skip(now, cycles uint64) {}

// TestRoundRobinFairnessAcrossFastForward checks the arbiter grant sequence
// over sparse, interleaved want sets is identical whether the dead cycles
// between requests are ticked through or skipped.
func TestRoundRobinFairnessAcrossFastForward(t *testing.T) {
	run := func(ff bool) []int {
		e := NewEngine()
		r := &rrTicker{rr: NewRoundRobin(3), periods: []uint64{6, 10, 15}}
		e.Add(r)
		e.SetFastForward(ff)
		e.RunUntil(func() bool { return false }, 300)
		return r.grants
	}
	fast, slow := run(true), run(false)
	if len(fast) == 0 {
		t.Fatal("no grants recorded")
	}
	if !reflect.DeepEqual(fast, slow) {
		t.Fatalf("grant sequence differs:\nfast-forward: %v\nper-cycle:    %v", fast, slow)
	}
}

// TestQueueCapacityRounding checks NewQueue preserves the requested logical
// capacity while the backing buffer rounds up to a power of two.
func TestQueueCapacityRounding(t *testing.T) {
	for _, c := range []int{1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 33, 100} {
		q := NewQueue[int](c)
		if q.Cap() != c {
			t.Errorf("NewQueue(%d).Cap() = %d", c, q.Cap())
		}
		if n := len(q.buf); n&(n-1) != 0 || n < c {
			t.Errorf("NewQueue(%d) buffer length %d: want power of two >= capacity", c, n)
		}
		for i := 0; i < c; i++ {
			if !q.Push(i) {
				t.Fatalf("NewQueue(%d): push %d refused below capacity", c, i)
			}
		}
		if q.Push(-1) {
			t.Errorf("NewQueue(%d): push accepted at logical capacity", c)
		}
		if !q.Full() {
			t.Errorf("NewQueue(%d): Full() false at capacity", c)
		}
	}
}

// TestQueueNonPow2WrapAround exercises mask-indexed wrap with a capacity
// below the rounded buffer size, where head can sweep through slots Push
// never fills at steady state.
func TestQueueNonPow2WrapAround(t *testing.T) {
	q := NewQueue[int](5) // buffer 8
	next, out := 0, 0
	for round := 0; round < 20; round++ {
		for q.Push(next) {
			next++
		}
		for i := 0; i < 3; i++ {
			v, ok := q.Pop()
			if !ok || v != out {
				t.Fatalf("round %d: got %d,%v want %d", round, v, ok, out)
			}
			out++
		}
	}
}

// TestHotPathAllocationFree pins the zero-allocation property of the
// steady-state simulation hot path: queue and delay traffic and the
// fast-forward engine loop itself must not allocate per operation.
func TestHotPathAllocationFree(t *testing.T) {
	q := NewQueue[int](6)
	if n := testing.AllocsPerRun(100, func() {
		q.Push(1)
		q.Push(2)
		q.Pop()
		q.Pop()
	}); n != 0 {
		t.Errorf("Queue push/pop allocates %v per op", n)
	}

	d := NewDelay[int](3, 6)
	now := uint64(0)
	if n := testing.AllocsPerRun(100, func() {
		d.Push(now, int(now))
		d.Pop(now)
		now++
	}); n != 0 {
		t.Errorf("Delay push/pop allocates %v per op", n)
	}

	e := NewEngine()
	e.Add(&pulse{period: 64})
	done := func() bool { return false }
	limit := uint64(0)
	if n := testing.AllocsPerRun(100, func() {
		limit += 1024
		e.RunUntil(done, limit)
	}); n != 0 {
		t.Errorf("fast-forward RunUntil allocates %v per 1024-cycle window", n)
	}
}
