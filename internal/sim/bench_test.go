package sim

import "testing"

// BenchmarkEngineStep measures the bare per-cycle dispatch cost of the
// engine over a representative set of queue-shuffling components, including
// the (inactive) sampler check. The full-machine hot path is covered by
// BenchmarkEngineTick in internal/machine.
func BenchmarkEngineStep(b *testing.B) {
	e := NewEngine()
	const stages = 8
	qs := make([]*Queue[int], stages+1)
	for i := range qs {
		qs[i] = NewQueue[int](16)
	}
	for s := 0; s < stages; s++ {
		in, out := qs[s], qs[s+1]
		e.Add(TickFunc(func(uint64) {
			if v, ok := in.Peek(); ok && out.Push(v) {
				in.Pop()
			}
		}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qs[0].Push(i)
		qs[stages].Pop()
		e.Step()
	}
}

func BenchmarkQueuePushPop(b *testing.B) {
	q := NewQueue[int](64)
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.Pop()
	}
}

func BenchmarkDelayPushPop(b *testing.B) {
	d := NewDelay[int](4, 64)
	now := uint64(0)
	for i := 0; i < b.N; i++ {
		d.Push(now, i)
		d.Pop(now)
		now++
	}
}

func BenchmarkRoundRobinPick(b *testing.B) {
	rr := NewRoundRobin(8)
	want := func(i int) bool { return i&1 == 0 }
	for i := 0; i < b.N; i++ {
		rr.Pick(want)
	}
}
