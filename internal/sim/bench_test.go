package sim

import (
	"fmt"
	"testing"
)

// BenchmarkEngineStep measures the bare per-cycle dispatch cost of the
// engine over a representative set of queue-shuffling components, including
// the (inactive) sampler check. The full-machine hot path is covered by
// BenchmarkEngineTick in internal/machine.
func BenchmarkEngineStep(b *testing.B) {
	e := NewEngine()
	const stages = 8
	qs := make([]*Queue[int], stages+1)
	for i := range qs {
		qs[i] = NewQueue[int](16)
	}
	for s := 0; s < stages; s++ {
		in, out := qs[s], qs[s+1]
		e.Add(TickFunc(func(uint64) {
			if v, ok := in.Peek(); ok && out.Push(v) {
				in.Pop()
			}
		}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qs[0].Push(i)
		qs[stages].Pop()
		e.Step()
	}
}

// BenchmarkEngineFastForward measures the quiescence jump loop: a machine
// of mostly-idle components (period-64 pulses, out of phase) advanced 1024
// cycles per iteration. Steady state must be allocation free — the engine,
// horizon scan, and Skip fan-out all run on preallocated state — which the
// CI bench run checks via the reported allocs/op.
func BenchmarkEngineFastForward(b *testing.B) {
	e := NewEngine()
	ps := make([]*ffPulse, 8)
	for i := range ps {
		ps[i] = &ffPulse{period: 64, phase: uint64(i * 8)}
		e.Add(ps[i])
	}
	done := func() bool { return false }
	limit := uint64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		limit += 1024
		e.RunUntil(done, limit)
	}
	b.StopTimer()
	for _, p := range ps {
		if p.work != limit/p.period || p.idleSkipped == 0 {
			b.Fatalf("pulse accounting broken: work=%d skipped=%d limit=%d", p.work, p.idleSkipped, limit)
		}
	}
}

// ffPulse does work every period cycles at the given phase offset and is
// quiescent otherwise (benchmark twin of the pulse in fastforward_test.go).
type ffPulse struct {
	period, phase uint64
	work          uint64
	idleSkipped   uint64
}

func (p *ffPulse) Tick(now uint64) {
	if (now+p.phase)%p.period == 0 {
		p.work++
	}
}

func (p *ffPulse) NextEvent(now uint64) uint64 {
	n := now + p.phase
	if n%p.period == 0 {
		return now
	}
	return (n/p.period+1)*p.period - p.phase
}

func (p *ffPulse) Skip(now, cycles uint64) { p.idleSkipped += cycles }

// BenchmarkEngineSharded measures the two-phase shard step at the sim layer:
// a sequential exchange phase followed by a ShardPool compute phase over
// per-shard component groups, the same structure the multinode system uses.
// Sub-benchmarks vary the pool width so benchgate can compare the sharded
// medians against the 1-shard twin on multi-core runners.
func BenchmarkEngineSharded(b *testing.B) {
	const groups = 4
	const workPerGroup = 2048
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			p := NewShardPool(shards)
			defer p.Close()
			ranges := ShardRanges(groups, p.Shards())
			state := make([][workPerGroup]uint64, groups)
			var exchanged uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				exchanged++ // sequential exchange phase stand-in
				p.Run(func(s int) {
					r := ranges[s]
					for g := r[0]; g < r[1]; g++ {
						st := &state[g]
						for j := range st {
							st[j] += exchanged
						}
					}
				})
			}
			b.StopTimer()
			// Each pass adds the running exchange counter, so every word
			// must hold the triangular sum 1+2+...+N.
			want := exchanged * (exchanged + 1) / 2
			for g := range state {
				if state[g][0] != want {
					b.Fatalf("group %d advanced to %d, want %d", g, state[g][0], want)
				}
			}
		})
	}
}

func BenchmarkQueuePushPop(b *testing.B) {
	q := NewQueue[int](64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.Pop()
	}
}

func BenchmarkDelayPushPop(b *testing.B) {
	d := NewDelay[int](4, 64)
	now := uint64(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Push(now, i)
		d.Pop(now)
		now++
	}
}

func BenchmarkRoundRobinPick(b *testing.B) {
	rr := NewRoundRobin(8)
	want := func(i int) bool { return i&1 == 0 }
	for i := 0; i < b.N; i++ {
		rr.Pick(want)
	}
}
