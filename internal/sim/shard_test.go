package sim

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestShardPoolRunsEveryShard(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		p := NewShardPool(n)
		if p.Shards() != n {
			t.Fatalf("Shards() = %d, want %d", p.Shards(), n)
		}
		hits := make([]int32, n)
		for round := 0; round < 50; round++ {
			p.Run(func(s int) { atomic.AddInt32(&hits[s], 1) })
		}
		p.Close()
		for s, h := range hits {
			if h != 50 {
				t.Fatalf("n=%d shard %d ran %d times, want 50", n, s, h)
			}
		}
	}
}

func TestShardPoolClampsWidth(t *testing.T) {
	for _, n := range []int{-3, 0} {
		p := NewShardPool(n)
		if p.Shards() != 1 {
			t.Fatalf("NewShardPool(%d).Shards() = %d, want 1", n, p.Shards())
		}
		p.Close()
	}
}

func TestShardPoolRunIsABarrier(t *testing.T) {
	p := NewShardPool(4)
	defer p.Close()
	var phase atomic.Int32
	for round := int32(1); round <= 20; round++ {
		p.Run(func(s int) {
			// Every shard must observe the phase value of the current round:
			// if Run returned before all shards of the previous round
			// finished, a straggler would read a later phase.
			if got := phase.Load(); got != round-1 {
				t.Errorf("round %d shard %d saw phase %d", round, s, got)
			}
		})
		phase.Store(round)
	}
}

func TestShardPoolInlineWhenSingle(t *testing.T) {
	p := NewShardPool(1)
	defer p.Close()
	marker := 0
	p.Run(func(s int) {
		if s != 0 {
			t.Fatalf("inline shard index = %d, want 0", s)
		}
		marker = 1
	})
	if marker != 1 {
		t.Fatal("inline Run did not execute fn")
	}
	// Inline pools must not require goroutines: this would deadlock on a
	// worker pool of size 1 if Run dispatched through a channel with no
	// reader (Close already called below would close a nil channel).
	p.Close() // idempotent
	p.Close()
}

func TestShardPoolPanicLowestShardWins(t *testing.T) {
	// All shards panic; Run must re-raise shard 0's panic regardless of
	// which worker got scheduled first, so failures reproduce identically
	// at any worker count.
	for trial := 0; trial < 10; trial++ {
		p := NewShardPool(4)
		var recovered any
		func() {
			defer func() { recovered = recover() }()
			p.Run(func(s int) {
				panic(fmt.Sprintf("boom-%d", s))
			})
		}()
		p.Close()
		msg, ok := recovered.(string)
		if !ok {
			t.Fatalf("recovered %T, want string", recovered)
		}
		if !strings.Contains(msg, "shard 0: boom-0") {
			t.Fatalf("panic = %q, want lowest shard (0)", msg)
		}
		if !strings.Contains(msg, "shard stack:") {
			t.Fatalf("panic %q carries no captured stack", msg)
		}
	}
}

func TestShardPoolPanicDoesNotPoisonPool(t *testing.T) {
	p := NewShardPool(2)
	defer p.Close()
	func() {
		defer func() { recover() }()
		p.Run(func(s int) {
			if s == 1 {
				panic("transient")
			}
		})
	}()
	// The pool must stay usable after a recovered shard panic.
	var ran atomic.Int32
	p.Run(func(int) { ran.Add(1) })
	if ran.Load() != 2 {
		t.Fatalf("post-panic Run executed %d shards, want 2", ran.Load())
	}
}

func TestShardPoolInlinePanicPassesThrough(t *testing.T) {
	p := NewShardPool(1)
	defer p.Close()
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		p.Run(func(int) { panic("inline") })
	}()
	if recovered != "inline" {
		t.Fatalf("inline pool wrapped the panic: %v", recovered)
	}
}

func TestShardPoolRunAfterClosePanics(t *testing.T) {
	p := NewShardPool(2)
	p.Close()
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		p.Run(func(int) {})
	}()
	if recovered == nil {
		t.Fatal("Run after Close did not panic")
	}
}

func TestSpinShardPoolRunsEveryShard(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		p := NewSpinShardPool(n)
		if p.Shards() != n {
			t.Fatalf("Shards() = %d, want %d", p.Shards(), n)
		}
		hits := make([]int32, n)
		for round := 0; round < 50; round++ {
			p.Run(func(s int) { atomic.AddInt32(&hits[s], 1) })
		}
		p.Close()
		for s, h := range hits {
			if h != 50 {
				t.Fatalf("n=%d shard %d ran %d times, want 50", n, s, h)
			}
		}
	}
}

func TestSpinShardPoolClampsWidth(t *testing.T) {
	for _, n := range []int{-3, 0} {
		p := NewSpinShardPool(n)
		if p.Shards() != 1 {
			t.Fatalf("NewSpinShardPool(%d).Shards() = %d, want 1", n, p.Shards())
		}
		p.Close()
	}
}

func TestSpinShardPoolRunIsABarrier(t *testing.T) {
	p := NewSpinShardPool(4)
	defer p.Close()
	var phase atomic.Int32
	for round := int32(1); round <= 20; round++ {
		p.Run(func(s int) {
			if got := phase.Load(); got != round-1 {
				t.Errorf("round %d shard %d saw phase %d", round, s, got)
			}
		})
		phase.Store(round)
	}
}

func TestSpinShardPoolShardZeroOnCaller(t *testing.T) {
	// Spin mode exists so the phase dispatch is one atomic bump; shard 0 must
	// run inline on the calling goroutine, which a goroutine-local marker can
	// observe without any synchronization.
	p := NewSpinShardPool(4)
	defer p.Close()
	marker := 0
	p.Run(func(s int) {
		if s == 0 {
			marker = 1 // inline on this goroutine, no race
		}
	})
	if marker != 1 {
		t.Fatal("shard 0 did not run on the calling goroutine")
	}
}

func TestSpinShardPoolParksAndResumes(t *testing.T) {
	// Let the workers exhaust their spin budget and park, then verify the
	// next Run still executes every shard (the unpark path).
	p := NewSpinShardPool(4)
	defer p.Close()
	for round := 0; round < 5; round++ {
		var ran atomic.Int32
		p.Run(func(int) { ran.Add(1) })
		if ran.Load() != 4 {
			t.Fatalf("round %d ran %d shards, want 4", round, ran.Load())
		}
		time.Sleep(2 * time.Millisecond) // far beyond the spin budget
	}
}

func TestSpinShardPoolPanicLowestShardWins(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		p := NewSpinShardPool(4)
		var recovered any
		func() {
			defer func() { recovered = recover() }()
			p.Run(func(s int) {
				panic(fmt.Sprintf("boom-%d", s))
			})
		}()
		p.Close()
		msg, ok := recovered.(string)
		if !ok {
			t.Fatalf("recovered %T, want string", recovered)
		}
		if !strings.Contains(msg, "shard 0: boom-0") {
			t.Fatalf("panic = %q, want lowest shard (0)", msg)
		}
		if !strings.Contains(msg, "shard stack:") {
			t.Fatalf("panic %q carries no captured stack", msg)
		}
	}
}

func TestSpinShardPoolPanicDoesNotPoisonPool(t *testing.T) {
	p := NewSpinShardPool(2)
	defer p.Close()
	func() {
		defer func() { recover() }()
		p.Run(func(s int) {
			if s == 1 {
				panic("transient")
			}
		})
	}()
	var ran atomic.Int32
	p.Run(func(int) { ran.Add(1) })
	if ran.Load() != 2 {
		t.Fatalf("post-panic Run executed %d shards, want 2", ran.Load())
	}
}

func TestSpinShardPoolRunAfterClosePanics(t *testing.T) {
	p := NewSpinShardPool(2)
	p.Close()
	p.Close() // idempotent
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		p.Run(func(int) {})
	}()
	if recovered == nil {
		t.Fatal("Run after Close did not panic")
	}
}

func TestShardRanges(t *testing.T) {
	cases := []struct {
		n, k int
		want [][2]int
	}{
		{8, 4, [][2]int{{0, 2}, {2, 4}, {4, 6}, {6, 8}}},
		{7, 4, [][2]int{{0, 2}, {2, 4}, {4, 6}, {6, 7}}},
		{5, 2, [][2]int{{0, 3}, {3, 5}}},
		{4, 1, [][2]int{{0, 4}}},
		{2, 4, [][2]int{{0, 1}, {1, 2}}}, // k clamped to n
		{3, 0, [][2]int{{0, 3}}},         // k clamped to 1
		{0, 4, nil},                      // nothing to shard: no ranges at all
		{0, 0, nil},
		{-2, 3, nil},
		{1, 1, [][2]int{{0, 1}}},
		{1, 8, [][2]int{{0, 1}}},                         // one group, many shards: one range
		{9, 4, [][2]int{{0, 3}, {3, 5}, {5, 7}, {7, 9}}}, // odd split: remainder spread from shard 0
		{5, 3, [][2]int{{0, 2}, {2, 4}, {4, 5}}},
	}
	for _, c := range cases {
		got := ShardRanges(c.n, c.k)
		if len(got) != len(c.want) {
			t.Fatalf("ShardRanges(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ShardRanges(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
			}
		}
		// Contiguity, coverage, and non-emptiness invariants, independent of
		// the table: an empty range would spawn a barrier participant with
		// nothing to do.
		prev := 0
		for _, r := range got {
			if r[0] != prev || r[1] <= r[0] {
				t.Fatalf("ShardRanges(%d,%d) has an empty or non-contiguous range: %v", c.n, c.k, got)
			}
			prev = r[1]
		}
		want := c.n
		if want < 0 {
			want = 0
		}
		if prev != want {
			t.Fatalf("ShardRanges(%d,%d) covers %d of %d", c.n, c.k, prev, want)
		}
	}
}
