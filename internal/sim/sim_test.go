package sim

import (
	"testing"
	"testing/quick"
)

func TestQueueFIFOOrder(t *testing.T) {
	q := NewQueue[int](4)
	for i := 0; i < 4; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.Push(99) {
		t.Fatal("push succeeded on full queue")
	}
	for i := 0; i < 4; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: got %d ok=%v", i, v, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop succeeded on empty queue")
	}
}

func TestQueueWrapAround(t *testing.T) {
	q := NewQueue[int](3)
	next := 0
	// Interleave pushes and pops so head wraps several times.
	for round := 0; round < 10; round++ {
		q.MustPush(round * 2)
		q.MustPush(round*2 + 1)
		for i := 0; i < 2; i++ {
			v, ok := q.Pop()
			if !ok || v != next {
				t.Fatalf("round %d: got %d want %d", round, v, next)
			}
			next++
		}
	}
	if !q.Empty() {
		t.Fatal("queue should be empty")
	}
}

func TestQueueAt(t *testing.T) {
	q := NewQueue[string](4)
	q.MustPush("a")
	q.MustPush("b")
	q.Pop()
	q.MustPush("c")
	q.MustPush("d")
	want := []string{"b", "c", "d"}
	for i, w := range want {
		if got := q.At(i); got != w {
			t.Errorf("At(%d) = %q want %q", i, got, w)
		}
	}
}

func TestQueueAtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	q := NewQueue[int](2)
	q.MustPush(1)
	q.At(1)
}

func TestQueueZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQueue[int](0)
}

// Property: any interleaving of pushes and pops preserves FIFO order and
// never exceeds capacity.
func TestQueueFIFOProperty(t *testing.T) {
	f := func(ops []bool) bool {
		q := NewQueue[int](8)
		var ref []int
		next := 0
		for _, push := range ops {
			if push {
				if q.Push(next) {
					ref = append(ref, next)
				} else if len(ref) != 8 {
					return false // refused push while not full
				}
				next++
			} else {
				v, ok := q.Pop()
				if ok {
					if len(ref) == 0 || v != ref[0] {
						return false
					}
					ref = ref[1:]
				} else if len(ref) != 0 {
					return false // refused pop while not empty
				}
			}
			if q.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDelayLatency(t *testing.T) {
	d := NewDelay[int](3, 8)
	if !d.Push(10, 42) {
		t.Fatal("push failed")
	}
	for now := uint64(10); now < 13; now++ {
		if d.Ready(now) {
			t.Fatalf("item ready too early at cycle %d", now)
		}
		if _, ok := d.Pop(now); ok {
			t.Fatalf("pop succeeded too early at cycle %d", now)
		}
	}
	v, ok := d.Pop(13)
	if !ok || v != 42 {
		t.Fatalf("pop at 13: got %d ok=%v", v, ok)
	}
}

func TestDelayZeroLatency(t *testing.T) {
	d := NewDelay[int](0, 2)
	d.Push(5, 7)
	if v, ok := d.Pop(5); !ok || v != 7 {
		t.Fatalf("zero-latency pop: got %d ok=%v", v, ok)
	}
}

func TestDelayPipelining(t *testing.T) {
	// Items pushed on consecutive cycles exit on consecutive cycles.
	d := NewDelay[int](4, 16)
	for c := uint64(0); c < 5; c++ {
		d.Push(c, int(c))
	}
	for c := uint64(4); c < 9; c++ {
		v, ok := d.Pop(c)
		if !ok || v != int(c-4) {
			t.Fatalf("cycle %d: got %d ok=%v", c, v, ok)
		}
		// Only one item should exit per cycle here.
		if d.Ready(c) && c < 8 {
			// next item was pushed one cycle later, so it must not be ready
			t.Fatalf("cycle %d: second item ready in same cycle", c)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("delay not drained: %d left", d.Len())
	}
}

func TestDelayBackpressure(t *testing.T) {
	d := NewDelay[int](100, 2)
	if !d.Push(0, 1) || !d.Push(0, 2) {
		t.Fatal("initial pushes failed")
	}
	if d.Push(0, 3) {
		t.Fatal("push succeeded on full delay")
	}
	if !d.Full() {
		t.Fatal("Full() should be true")
	}
}

func TestRoundRobinFairness(t *testing.T) {
	rr := NewRoundRobin(3)
	all := func(int) bool { return true }
	got := []int{rr.Pick(all), rr.Pick(all), rr.Pick(all), rr.Pick(all)}
	want := []int{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pick sequence %v, want %v", got, want)
		}
	}
}

// TestRoundRobinStartGrant proves the Start/Grant pair tracks Pick exactly:
// a caller selecting the cyclically-first ready index from Start and then
// Granting it leaves the arbiter in the same state as Pick over the same
// ready set — the contract the crossbar's fast arbitration path relies on.
func TestRoundRobinStartGrant(t *testing.T) {
	byPick, byGrant := NewRoundRobin(5), NewRoundRobin(5)
	rng := uint64(1)
	for step := 0; step < 200; step++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		ready := rng % 32 // bitmask of ready requesters
		want := func(i int) bool { return ready&(1<<i) != 0 }
		picked := byPick.Pick(want)

		start := byGrant.Start()
		best, bestKey := -1, 5
		for i := 0; i < 5; i++ {
			if !want(i) {
				continue
			}
			k := i - start
			if k < 0 {
				k += 5
			}
			if k < bestKey {
				best, bestKey = i, k
			}
		}
		if best >= 0 {
			byGrant.Grant(best)
		}
		if picked != best || byPick.Start() != byGrant.Start() {
			t.Fatalf("step %d ready=%05b: Pick=%d Start/Grant=%d (pointers %d vs %d)",
				step, ready, picked, best, byPick.Start(), byGrant.Start())
		}
	}
}

func TestRoundRobinGrantOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRoundRobin(3).Grant(3)
}

func TestRoundRobinSkipsIdle(t *testing.T) {
	rr := NewRoundRobin(4)
	only2 := func(i int) bool { return i == 2 }
	for k := 0; k < 3; k++ {
		if got := rr.Pick(only2); got != 2 {
			t.Fatalf("pick = %d want 2", got)
		}
	}
	none := func(int) bool { return false }
	if got := rr.Pick(none); got != -1 {
		t.Fatalf("pick with no requesters = %d want -1", got)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Add(TickFunc(func(uint64) { count++ }))
	cyc, ok := e.RunUntil(func() bool { return count >= 10 }, 100)
	if !ok || cyc != 10 || count != 10 {
		t.Fatalf("cyc=%d ok=%v count=%d", cyc, ok, count)
	}
}

func TestEngineLimit(t *testing.T) {
	e := NewEngine()
	e.Add(TickFunc(func(uint64) {}))
	cyc, ok := e.RunUntil(func() bool { return false }, 50)
	if ok || cyc != 50 {
		t.Fatalf("cyc=%d ok=%v", cyc, ok)
	}
}

func TestEngineTickOrderAndNow(t *testing.T) {
	e := NewEngine()
	var order []int
	var nows []uint64
	e.Add(TickFunc(func(now uint64) { order = append(order, 1); nows = append(nows, now) }))
	e.Add(TickFunc(func(uint64) { order = append(order, 2) }))
	e.Step()
	e.Step()
	if len(order) != 4 || order[0] != 1 || order[1] != 2 || order[2] != 1 {
		t.Fatalf("order = %v", order)
	}
	if nows[0] != 0 || nows[1] != 1 {
		t.Fatalf("nows = %v", nows)
	}
	if e.Now() != 2 {
		t.Fatalf("Now() = %d", e.Now())
	}
}
