// Package sim provides the cycle-driven simulation primitives shared by all
// hardware models in this repository: a clock/engine, bounded queues with
// back-pressure, fixed-latency delay pipes, and a round-robin arbiter.
//
// The simulator is cycle driven rather than event driven: every hardware
// component implements Ticker and is advanced once per cycle by an Engine.
// Components communicate through bounded Queues; a full queue exerts
// back-pressure by refusing Push, exactly like a full hardware FIFO.
package sim

import "fmt"

// Ticker is a hardware component that advances by one clock cycle per call.
type Ticker interface {
	// Tick advances the component by one cycle. now is the cycle number
	// about to be executed (starting at 0).
	Tick(now uint64)
}

// TickFunc adapts a function to the Ticker interface.
type TickFunc func(now uint64)

// Tick calls f(now).
func (f TickFunc) Tick(now uint64) { f(now) }

// Never is the NextEvent answer of a component that is fully drained: no
// future cycle exists at which it can do work on its own.
const Never = ^uint64(0)

// FastForwarder is the optional quiescence interface a Ticker may implement
// to let the engine skip dead cycles. The contract:
//
//   - NextEvent(now) returns the earliest cycle >= now at which the
//     component might do observable work (change state, move an item, touch
//     a counter other than pure occupancy sampling). A component with work
//     pending in the current cycle returns now; a fully drained component
//     returns Never. The answer must be conservative: returning a cycle
//     earlier than the true next event is always safe, later is not.
//   - Skip(now, cycles) informs the component that cycles consecutive Ticks
//     starting at now were skipped because every component in the engine was
//     quiescent. The component must apply the batch effect of those idle
//     Ticks (typically per-cycle occupancy histogram observations) so that
//     counters match per-cycle stepping exactly.
//
// The engine only jumps when every registered Ticker implements
// FastForwarder and none reports an event at the current cycle, so a
// component may rely on the rest of the machine being frozen during Skip.
type FastForwarder interface {
	NextEvent(now uint64) uint64
	Skip(now, cycles uint64)
}

// Engine owns the simulated clock and the set of components it drives.
// Components are ticked in registration order, which callers should arrange
// from consumer to producer so that a value pushed in cycle t is visible to
// its consumer no earlier than cycle t+1 (standard reverse-pipeline order).
type Engine struct {
	now     uint64
	tickers []Ticker

	// Fast-forward bookkeeping: ffs mirrors tickers for components that
	// implement FastForwarder; allFF records whether every registered
	// ticker does (jumping is sound only then), and ffOn is the runtime
	// toggle (on by default, cleared for legacy per-cycle stepping).
	ffs   []FastForwarder
	allFF bool
	ffOn  bool

	sampleEvery uint64
	sample      func(now uint64)
}

// NewEngine returns an Engine at cycle 0 with no components.
func NewEngine() *Engine { return &Engine{allFF: true, ffOn: true} }

// Add registers components to be ticked each cycle, in the given order.
func (e *Engine) Add(ts ...Ticker) {
	e.tickers = append(e.tickers, ts...)
	for _, t := range ts {
		if ff, ok := t.(FastForwarder); ok {
			e.ffs = append(e.ffs, ff)
		} else {
			e.allFF = false
		}
	}
}

// SetFastForward enables or disables quiescence jumps in RunUntil. Jumps are
// on by default; disabling forces per-cycle stepping (the legacy behaviour,
// kept for differential testing). Jumps additionally require every
// registered Ticker to implement FastForwarder.
func (e *Engine) SetFastForward(on bool) { e.ffOn = on }

// Now reports the number of cycles executed so far.
func (e *Engine) Now() uint64 { return e.now }

// SetSampler installs a hook invoked after every cycle whose completed count
// is a multiple of every (cycles every, 2*every, ...). Runs use it to record
// performance-counter snapshots at a fixed cycle interval. A zero interval
// or nil fn removes the hook; with no hook installed Step pays only a nil
// check.
func (e *Engine) SetSampler(every uint64, fn func(now uint64)) {
	if every == 0 || fn == nil {
		e.sampleEvery, e.sample = 0, nil
		return
	}
	e.sampleEvery, e.sample = every, fn
}

// Step advances the simulation by one cycle.
func (e *Engine) Step() {
	for _, t := range e.tickers {
		t.Tick(e.now)
	}
	e.now++
	if e.sample != nil && e.now%e.sampleEvery == 0 {
		e.sample(e.now)
	}
}

// RunUntil steps until done() reports true or limit cycles have elapsed. It
// returns the cycle count at exit and whether done() was satisfied.
//
// When fast-forwarding is possible (see SetFastForward) and every component
// reports its next event strictly in the future, RunUntil jumps the clock to
// the earliest such event instead of ticking through the dead cycles. Jumps
// never cross a sampler multiple (the sampler fires at exactly the same now
// values as per-cycle stepping) and never overshoot limit. done() must
// depend only on component state, which cannot change during skipped
// cycles; it is re-evaluated at every event cycle.
func (e *Engine) RunUntil(done func() bool, limit uint64) (uint64, bool) {
	ff := e.ffOn && e.allFF && len(e.tickers) > 0
	for e.now < limit {
		if done() {
			return e.now, true
		}
		if ff {
			if h := e.horizon(limit); h > e.now {
				e.jump(h)
				continue
			}
		}
		e.Step()
	}
	return e.now, done()
}

// horizon returns the earliest cycle at which any component can do work,
// capped at the next sampler multiple and at limit. A return of e.now means
// some component has work in the current cycle and no jump is possible.
func (e *Engine) horizon(limit uint64) uint64 {
	h := limit
	for _, f := range e.ffs {
		ev := f.NextEvent(e.now)
		if ev <= e.now {
			return e.now
		}
		if ev < h {
			h = ev
		}
	}
	if e.sample != nil {
		if next := (e.now/e.sampleEvery + 1) * e.sampleEvery; next < h {
			h = next
		}
	}
	return h
}

// jump advances the clock straight to cycle h, fanning the skipped-cycle
// count out to every component and firing the sampler if h is a multiple of
// its interval (horizon guarantees no multiple lies strictly inside the
// skipped range).
func (e *Engine) jump(h uint64) {
	n := h - e.now
	for _, f := range e.ffs {
		f.Skip(e.now, n)
	}
	e.now = h
	if e.sample != nil && e.now%e.sampleEvery == 0 {
		e.sample(e.now)
	}
}

// Queue is a bounded FIFO with hardware-like flow control. The zero value is
// not usable; construct with NewQueue.
//
// The backing buffer is sized to the next power of two so index wrap uses a
// mask instead of a modulo; Cap, Full, and Push enforce the requested
// logical capacity, so flow-control semantics are unchanged.
type Queue[T any] struct {
	buf        []T // len(buf) is a power of two >= capacity
	mask       int
	capacity   int // logical capacity enforced by Push
	head, size int
}

// NewQueue returns an empty queue with the given capacity.
func NewQueue[T any](capacity int) *Queue[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: queue capacity must be positive, got %d", capacity))
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Queue[T]{buf: make([]T, n), mask: n - 1, capacity: capacity}
}

// Cap reports the queue capacity.
func (q *Queue[T]) Cap() int { return q.capacity }

// Len reports the number of buffered items.
func (q *Queue[T]) Len() int { return q.size }

// Empty reports whether the queue holds no items.
func (q *Queue[T]) Empty() bool { return q.size == 0 }

// Full reports whether a Push would fail.
func (q *Queue[T]) Full() bool { return q.size == q.capacity }

// Push appends v and reports whether there was room.
func (q *Queue[T]) Push(v T) bool {
	if q.Full() {
		return false
	}
	q.buf[(q.head+q.size)&q.mask] = v
	q.size++
	return true
}

// MustPush appends v and panics if the queue is full. Use it only where the
// surrounding flow control guarantees space.
func (q *Queue[T]) MustPush(v T) {
	if !q.Push(v) {
		panic("sim: MustPush on full queue")
	}
}

// Peek returns the oldest item without removing it. ok is false when empty.
func (q *Queue[T]) Peek() (v T, ok bool) {
	if q.size == 0 {
		return v, false
	}
	return q.buf[q.head], true
}

// Pop removes and returns the oldest item. ok is false when empty.
func (q *Queue[T]) Pop() (v T, ok bool) {
	if q.size == 0 {
		return v, false
	}
	v = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head = (q.head + 1) & q.mask
	q.size--
	return v, true
}

// At returns the i-th oldest buffered item (0 == next to pop). It panics if
// i is out of range; use it for CAM-style scans over in-flight entries.
func (q *Queue[T]) At(i int) T {
	if i < 0 || i >= q.size {
		panic(fmt.Sprintf("sim: Queue.At(%d) with size %d", i, q.size))
	}
	return q.buf[(q.head+i)&q.mask]
}

// delayItem is an in-flight item in a Delay pipe.
type delayItem[T any] struct {
	v     T
	ready uint64 // cycle at which the item may exit
}

// Delay models a fixed-latency, fully pipelined path (for example a wire or
// an SRAM access): an item pushed in cycle t becomes poppable in cycle
// t+latency. Throughput is limited only by the configured capacity.
type Delay[T any] struct {
	latency uint64
	q       *Queue[delayItem[T]]
}

// NewDelay returns a delay pipe with the given latency in cycles (latency 0
// makes an item available in the same cycle it was pushed) and buffer
// capacity.
func NewDelay[T any](latency int, capacity int) *Delay[T] {
	if latency < 0 {
		panic(fmt.Sprintf("sim: negative delay latency %d", latency))
	}
	return &Delay[T]{latency: uint64(latency), q: NewQueue[delayItem[T]](capacity)}
}

// Len reports the number of in-flight items.
func (d *Delay[T]) Len() int { return d.q.Len() }

// Full reports whether a Push would fail.
func (d *Delay[T]) Full() bool { return d.q.Full() }

// Push inserts v at cycle now; it becomes available at now+latency.
func (d *Delay[T]) Push(now uint64, v T) bool {
	return d.q.Push(delayItem[T]{v: v, ready: now + d.latency})
}

// Ready reports whether the head item has completed its latency by cycle now.
func (d *Delay[T]) Ready(now uint64) bool {
	it, ok := d.q.Peek()
	return ok && it.ready <= now
}

// NextReady returns the cycle at which the head in-flight item becomes
// poppable, or Never when the pipe is empty. The head is the earliest:
// latency is fixed, so ready times are FIFO-ordered.
func (d *Delay[T]) NextReady() uint64 {
	it, ok := d.q.Peek()
	if !ok {
		return Never
	}
	return it.ready
}

// Pop removes the head item if it is ready at cycle now.
func (d *Delay[T]) Pop(now uint64) (v T, ok bool) {
	it, ok := d.q.Peek()
	if !ok || it.ready > now {
		var zero T
		return zero, false
	}
	d.q.Pop()
	return it.v, true
}

// RoundRobin is a fair arbiter over n requesters.
type RoundRobin struct {
	n    int
	next int
}

// NewRoundRobin returns an arbiter over n requesters.
func NewRoundRobin(n int) *RoundRobin {
	if n <= 0 {
		panic(fmt.Sprintf("sim: round-robin size must be positive, got %d", n))
	}
	return &RoundRobin{n: n}
}

// Pick returns the first index at or after the rotating priority pointer for
// which want(i) is true, advancing the pointer past the grant. It returns -1
// when no requester is ready.
func (r *RoundRobin) Pick(want func(i int) bool) int {
	for k := 0; k < r.n; k++ {
		i := (r.next + k) % r.n
		if want(i) {
			r.next = (i + 1) % r.n
			return i
		}
	}
	return -1
}

// Start returns the current priority pointer: the index Pick would test
// first. Together with Grant it lets a caller that already knows the ready
// set reproduce Pick's choice without probing every requester — the wide
// crossbars use this to arbitrate in O(ready) instead of O(n).
func (r *RoundRobin) Start() int { return r.next }

// Grant advances the priority pointer past requester i, exactly as a
// successful Pick of i would. A caller that selects from a known ready set
// must call Grant for the arbiter to stay fair (and to match Pick's state
// transitions bit-for-bit).
func (r *RoundRobin) Grant(i int) {
	if i < 0 || i >= r.n {
		panic(fmt.Sprintf("sim: round-robin grant %d outside %d requesters", i, r.n))
	}
	r.next = (i + 1) % r.n
}
