package sim

import "testing"

func TestEngineSampler(t *testing.T) {
	e := NewEngine()
	e.Add(TickFunc(func(uint64) {}))
	var samples []uint64
	e.SetSampler(3, func(now uint64) { samples = append(samples, now) })
	for i := 0; i < 10; i++ {
		e.Step()
	}
	want := []uint64{3, 6, 9}
	if len(samples) != len(want) {
		t.Fatalf("samples = %v, want %v", samples, want)
	}
	for i := range want {
		if samples[i] != want[i] {
			t.Fatalf("samples = %v, want %v", samples, want)
		}
	}
}

func TestEngineSamplerRemove(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.SetSampler(1, func(uint64) { fired++ })
	e.Step()
	e.SetSampler(0, nil)
	e.Step()
	e.Step()
	if fired != 1 {
		t.Fatalf("sampler fired %d times after removal, want 1", fired)
	}
}

// TestDelayRingWraparound drives a small Delay far past its capacity so the
// internal ring buffer wraps many times, checking order and exit timing of
// every item. Delay is on the critical path of every FU, wire, and cache
// response in the simulator, and its wraparound behavior was previously only
// exercised indirectly.
func TestDelayRingWraparound(t *testing.T) {
	const latency, capacity, items = 2, 3, 100
	d := NewDelay[int](latency, capacity)
	now := uint64(0)
	popped := 0
	pushed := 0
	for popped < items {
		if pushed < items && d.Push(now, pushed) {
			pushed++
		}
		if v, ok := d.Pop(now); ok {
			if v != popped {
				t.Fatalf("cycle %d: popped %d, want %d (FIFO violated after wrap)", now, v, popped)
			}
			popped++
		}
		now++
		if now > items*10 {
			t.Fatalf("stuck: pushed %d popped %d", pushed, popped)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("delay not empty: %d", d.Len())
	}
}

// TestDelayRespectsLatencyAfterWrap verifies an item pushed after the ring
// has wrapped still waits its full latency.
func TestDelayRespectsLatencyAfterWrap(t *testing.T) {
	d := NewDelay[int](5, 2)
	now := uint64(0)
	// Cycle the ring a few times.
	for i := 0; i < 6; i++ {
		if !d.Push(now, i) {
			t.Fatalf("push %d refused", i)
		}
		now += 5
		if v, ok := d.Pop(now); !ok || v != i {
			t.Fatalf("pop %d: got %d ok=%v", i, v, ok)
		}
	}
	// After wrapping, a fresh item must still be invisible before latency.
	d.Push(now, 99)
	for dt := uint64(0); dt < 5; dt++ {
		if d.Ready(now + dt) {
			t.Fatalf("item ready %d cycles early after wrap", 5-dt)
		}
	}
	if v, ok := d.Pop(now + 5); !ok || v != 99 {
		t.Fatalf("final pop: got %d ok=%v", v, ok)
	}
}

// TestRoundRobinSparseFairness checks grant distribution when requesters are
// only intermittently ready: every ready requester must be granted before
// any requester is granted twice (within one rotation), and long-run grant
// counts must match each requester's duty cycle.
func TestRoundRobinSparseFairness(t *testing.T) {
	const n = 4
	rr := NewRoundRobin(n)
	grants := make([]int, n)
	// Requester i is ready on cycles where cycle%(i+1) == 0: requester 0
	// always, requester 3 a quarter of the time.
	for cycle := 0; cycle < 1200; cycle++ {
		ready := func(i int) bool { return cycle%(i+1) == 0 }
		if g := rr.Pick(ready); g >= 0 {
			grants[g]++
			if !ready(g) {
				t.Fatalf("cycle %d: granted idle requester %d", cycle, g)
			}
		}
	}
	// Requester 0 is always ready, so it must never starve; sparse
	// requesters must still win a share when they are ready alongside it.
	if grants[0] == 0 {
		t.Fatal("always-ready requester starved")
	}
	for i := 1; i < n; i++ {
		if grants[i] == 0 {
			t.Fatalf("sparse requester %d starved entirely: grants %v", i, grants)
		}
	}
	// The rotating pointer must prevent requester 0 from monopolizing
	// cycles where others are ready: on multiples of 12 all four are ready,
	// and round-robin hands those around — requester 0's share stays well
	// below the all-to-one extreme.
	total := 0
	for _, g := range grants {
		total += g
	}
	if grants[0] == total {
		t.Fatalf("requester 0 monopolized all %d grants", total)
	}
}

// TestRoundRobinRotationUnderContention verifies that with all requesters
// always ready, 4k grants split exactly k/k/k/k — the strict fairness bound.
func TestRoundRobinRotationUnderContention(t *testing.T) {
	const n, rounds = 4, 25
	rr := NewRoundRobin(n)
	grants := make([]int, n)
	for k := 0; k < n*rounds; k++ {
		g := rr.Pick(func(int) bool { return true })
		grants[g]++
	}
	for i, g := range grants {
		if g != rounds {
			t.Fatalf("requester %d got %d grants, want %d: %v", i, g, rounds, grants)
		}
	}
}

// TestRoundRobinPointerAdvancesPastGrant verifies the priority pointer moves
// past the granted index, so a newly ready lower-priority requester is not
// skipped on the next pick.
func TestRoundRobinPointerAdvancesPastGrant(t *testing.T) {
	rr := NewRoundRobin(3)
	if g := rr.Pick(func(i int) bool { return i == 0 }); g != 0 {
		t.Fatalf("first pick = %d", g)
	}
	// 0 and 1 both ready: pointer sits at 1, so 1 must win.
	if g := rr.Pick(func(i int) bool { return i == 0 || i == 1 }); g != 1 {
		t.Fatalf("second pick = %d, want 1 (pointer failed to advance)", g)
	}
	// 0 and 2 ready: pointer at 2, so 2 wins before wrapping to 0.
	if g := rr.Pick(func(i int) bool { return i == 0 || i == 2 }); g != 2 {
		t.Fatalf("third pick = %d, want 2", g)
	}
}
