package sim

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// ShardPool is the intra-simulation shard scheduler: a fixed set of
// persistent workers that execute one phase function per shard and barrier
// before returning. It exists so a single large simulation can partition its
// component groups (the multinode system partitions per-node engines) across
// cores *between* deterministic exchange points: the caller runs the
// communication phase of a cycle sequentially, then fans the compute phase
// out with Run, and the barrier guarantees no shard can observe another
// shard's next cycle.
//
// Determinism is the caller's contract: phase functions handed to Run must
// confine their writes to shard-private state (Run provides no ordering
// between shards within a phase). Under that contract the pool adds no
// observable behavior — output is byte-identical to calling fn(0..n-1) in a
// loop, which is exactly what a 1-shard pool does.
//
// A pool with n <= 1 starts no goroutines and Run calls fn(0) inline, so the
// sequential path pays nothing. Close releases the workers; a pool is meant
// to live for one simulation run (construct, Run per cycle, Close).
type ShardPool struct {
	n       int
	work    chan func(int)
	wg      sync.WaitGroup // in-flight phase calls of the current Run
	workers sync.WaitGroup // live worker goroutines, for Close
	closed  bool

	mu     sync.Mutex
	panics []shardPanic // captured phase panics, re-raised by Run
}

// shardPanic is one captured phase panic, tagged with its shard so Run can
// re-raise the lowest-numbered one regardless of scheduling.
type shardPanic struct {
	shard int
	val   any
	stack []byte
}

// NewShardPool returns a pool of n shards. n <= 1 yields an inline pool with
// no goroutines; otherwise n persistent workers start immediately.
func NewShardPool(n int) *ShardPool {
	if n < 1 {
		n = 1
	}
	p := &ShardPool{n: n}
	if n == 1 {
		return p
	}
	p.work = make(chan func(int), n)
	p.workers.Add(n)
	for w := 0; w < n; w++ {
		go func() {
			defer p.workers.Done()
			for fn := range p.work {
				fn(0) // shard index is bound into the closure; arg unused
			}
		}()
	}
	return p
}

// Shards reports the pool width.
func (p *ShardPool) Shards() int { return p.n }

// Run executes fn(shard) for every shard in [0, n) and returns when all
// completed (the barrier). With one shard it is exactly fn(0) on the calling
// goroutine. If any shard panics, Run re-raises the panic of the
// lowest-numbered panicking shard (with its captured stack) after the
// barrier, so a failure reproduces identically at any worker count.
func (p *ShardPool) Run(fn func(shard int)) {
	if p.n == 1 {
		fn(0)
		return
	}
	if p.closed {
		panic("sim: ShardPool.Run after Close")
	}
	p.wg.Add(p.n)
	for s := 0; s < p.n; s++ {
		s := s
		p.work <- func(int) {
			defer p.wg.Done()
			defer func() {
				if r := recover(); r != nil {
					p.mu.Lock()
					p.panics = append(p.panics, shardPanic{shard: s, val: r, stack: debug.Stack()})
					p.mu.Unlock()
				}
			}()
			fn(s)
		}
	}
	p.wg.Wait()
	if len(p.panics) > 0 {
		first := p.panics[0]
		for _, sp := range p.panics[1:] {
			if sp.shard < first.shard {
				first = sp
			}
		}
		p.panics = nil
		panic(fmt.Sprintf("sim: shard %d: %v\n\nshard stack:\n%s", first.shard, first.val, first.stack))
	}
}

// Close stops the workers. The pool must not be mid-Run; Run panics after
// Close. Closing an inline (1-shard) pool is a no-op. Close is idempotent.
func (p *ShardPool) Close() {
	if p.n == 1 || p.closed {
		p.closed = true
		return
	}
	p.closed = true
	close(p.work)
	p.workers.Wait()
}

// ShardRanges partitions n items into k contiguous [start, end) ranges with
// sizes differing by at most one (the canonical node->shard assignment: the
// partition is a pure function of (n, k), so every run shards identically).
func ShardRanges(n, k int) [][2]int {
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	ranges := make([][2]int, 0, k)
	for s, start := 0, 0; s < k; s++ {
		size := n / k
		if s < n%k {
			size++
		}
		ranges = append(ranges, [2]int{start, start + size})
		start += size
	}
	return ranges
}
