package sim

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ShardPool is the intra-simulation shard scheduler: a fixed set of
// persistent workers that execute one phase function per shard and barrier
// before returning. It exists so a single large simulation can partition its
// component groups (the multinode system partitions per-node engines) across
// cores *between* deterministic exchange points: the caller runs the
// communication phase of a cycle sequentially, then fans the compute phase
// out with Run, and the barrier guarantees no shard can observe another
// shard's next cycle.
//
// Determinism is the caller's contract: phase functions handed to Run must
// confine their writes to shard-private state (Run provides no ordering
// between shards within a phase). Under that contract the pool adds no
// observable behavior — output is byte-identical to calling fn(0..n-1) in a
// loop, which is exactly what a 1-shard pool does.
//
// A pool with n <= 1 starts no goroutines and Run calls fn(0) inline, so the
// sequential path pays nothing. Close releases the workers; a pool is meant
// to live for one simulation run (construct, Run per cycle, Close).
type ShardPool struct {
	n       int
	work    chan func(int)
	wg      sync.WaitGroup // in-flight phase calls of the current Run
	workers sync.WaitGroup // live worker goroutines, for Close
	closed  bool

	mu     sync.Mutex
	panics []shardPanic // captured phase panics, re-raised by Run

	// Spin-barrier mode (NewSpinShardPool). The caller publishes each phase
	// by bumping epoch; workers busy-poll it between phases — parking on
	// their wake channel when the caller goes quiet — and report completion
	// through done. The caller itself executes shard 0.
	spin    bool
	fn      func(int)       // current phase function, written before epoch
	epoch   atomic.Uint64   // phase sequence number
	done    atomic.Int64    // workers finished with the current phase
	stopped atomic.Bool     // Close requested
	wake    []chan struct{} // per-worker 1-buffered unpark tokens
	parked  []atomic.Bool   // worker w is (about to be) blocked on wake[w]
}

// shardPanic is one captured phase panic, tagged with its shard so Run can
// re-raise the lowest-numbered one regardless of scheduling.
type shardPanic struct {
	shard int
	val   any
	stack []byte
}

// NewShardPool returns a pool of n shards. n <= 1 yields an inline pool with
// no goroutines; otherwise n persistent workers start immediately.
func NewShardPool(n int) *ShardPool {
	if n < 1 {
		n = 1
	}
	p := &ShardPool{n: n}
	if n == 1 {
		return p
	}
	p.work = make(chan func(int), n)
	p.workers.Add(n)
	for w := 0; w < n; w++ {
		go func() {
			defer p.workers.Done()
			for fn := range p.work {
				fn(0) // shard index is bound into the closure; arg unused
			}
		}()
	}
	return p
}

// NewSpinShardPool returns a pool of n shards whose barrier busy-waits
// instead of handing work through channels. Channel handoff costs on the
// order of a microsecond per Run — fine for the multinode step, whose phases
// run whole per-node engines, but it would swamp a single-machine cycle
// (a few microseconds total). In spin mode the calling goroutine executes
// shard 0 itself and workers 1..n-1 poll an epoch counter, so a phase
// dispatch is one atomic increment.
//
// Workers do not spin forever: after a bounded number of yielding polls with
// no new phase (a fast-forward jump, the caller off in sequential code, an
// idle pool) they park on a channel and cost nothing until the next Run.
// Semantics are otherwise identical to NewShardPool: Run is a barrier,
// panics re-raise lowest-shard-first, Close releases the workers.
func NewSpinShardPool(n int) *ShardPool {
	if n < 1 {
		n = 1
	}
	p := &ShardPool{n: n, spin: true}
	if n == 1 {
		return p
	}
	p.wake = make([]chan struct{}, n)
	p.parked = make([]atomic.Bool, n)
	p.workers.Add(n - 1)
	for w := 1; w < n; w++ {
		p.wake[w] = make(chan struct{}, 1)
		go p.spinWorker(w)
	}
	return p
}

// spinPolls bounds how many yielding polls a spin worker makes before
// parking: enough to cover the caller's sequential phases between
// consecutive cycles (sub-microsecond), few enough that an idle pool stops
// burning its core within tens of microseconds.
const spinPolls = 256

func (p *ShardPool) spinWorker(w int) {
	defer p.workers.Done()
	seen := uint64(0)
	for {
		e := p.epoch.Load()
		if p.stopped.Load() {
			return
		}
		if e == seen {
			p.spinIdle(w, seen)
			continue
		}
		seen = e
		p.runShard(p.fn, w)
		p.done.Add(1)
	}
}

// spinIdle polls for the next epoch, yielding between polls, then parks on
// the worker's wake channel when the caller stays quiet. The park protocol
// (set parked, re-check epoch/stopped, block) closes the race with a caller
// that bumps the epoch between our last poll and the channel receive; a
// stale wake token left over from that race costs one spurious loop
// iteration, never a lost phase.
func (p *ShardPool) spinIdle(w int, seen uint64) {
	for i := 0; i < spinPolls; i++ {
		if p.epoch.Load() != seen || p.stopped.Load() {
			return
		}
		runtime.Gosched()
	}
	p.parked[w].Store(true)
	if p.epoch.Load() != seen || p.stopped.Load() {
		p.parked[w].Store(false)
		return
	}
	<-p.wake[w]
	p.parked[w].Store(false)
}

// runShard runs one shard's phase call, capturing a panic for later re-raise.
func (p *ShardPool) runShard(fn func(int), s int) {
	defer func() {
		if r := recover(); r != nil {
			p.mu.Lock()
			p.panics = append(p.panics, shardPanic{shard: s, val: r, stack: debug.Stack()})
			p.mu.Unlock()
		}
	}()
	fn(s)
}

// runSpin is Run for spin-mode pools: publish the phase, unpark sleepers,
// execute shard 0 on the calling goroutine, then spin until the workers
// report in.
func (p *ShardPool) runSpin(fn func(int)) {
	p.fn = fn
	p.done.Store(0)
	p.epoch.Add(1)
	for w := 1; w < p.n; w++ {
		if p.parked[w].Load() {
			select {
			case p.wake[w] <- struct{}{}:
			default:
			}
		}
	}
	p.runShard(fn, 0)
	for p.done.Load() < int64(p.n-1) {
		runtime.Gosched()
	}
	p.raise()
}

// raise re-raises the lowest-shard captured panic, if any. Callers reach it
// only after the barrier, so p.panics needs no lock here.
func (p *ShardPool) raise() {
	if len(p.panics) == 0 {
		return
	}
	first := p.panics[0]
	for _, sp := range p.panics[1:] {
		if sp.shard < first.shard {
			first = sp
		}
	}
	p.panics = nil
	panic(fmt.Sprintf("sim: shard %d: %v\n\nshard stack:\n%s", first.shard, first.val, first.stack))
}

// Shards reports the pool width.
func (p *ShardPool) Shards() int { return p.n }

// Run executes fn(shard) for every shard in [0, n) and returns when all
// completed (the barrier). With one shard it is exactly fn(0) on the calling
// goroutine. If any shard panics, Run re-raises the panic of the
// lowest-numbered panicking shard (with its captured stack) after the
// barrier, so a failure reproduces identically at any worker count.
func (p *ShardPool) Run(fn func(shard int)) {
	if p.n == 1 {
		fn(0)
		return
	}
	if p.closed {
		panic("sim: ShardPool.Run after Close")
	}
	if p.spin {
		p.runSpin(fn)
		return
	}
	p.wg.Add(p.n)
	for s := 0; s < p.n; s++ {
		s := s
		p.work <- func(int) {
			defer p.wg.Done()
			p.runShard(fn, s)
		}
	}
	p.wg.Wait()
	p.raise()
}

// Close stops the workers. The pool must not be mid-Run; Run panics after
// Close. Closing an inline (1-shard) pool is a no-op. Close is idempotent.
func (p *ShardPool) Close() {
	if p.n == 1 || p.closed {
		p.closed = true
		return
	}
	p.closed = true
	if p.spin {
		p.stopped.Store(true)
		for w := 1; w < p.n; w++ {
			select {
			case p.wake[w] <- struct{}{}:
			default:
			}
		}
		p.workers.Wait()
		return
	}
	close(p.work)
	p.workers.Wait()
}

// ShardRanges partitions n items into k contiguous [start, end) ranges with
// sizes differing by at most one (the canonical group->shard assignment: the
// partition is a pure function of (n, k), so every run shards identically).
//
// The returned slice never contains an empty range: k is clamped to [1, n],
// so fewer groups than shards yields fewer (single-group) ranges rather than
// empty trailing ones — callers size their barrier pool by len(ranges), and
// an empty range must not spawn a barrier participant with nothing to do.
// n <= 0 returns nil (nothing to shard, no pool).
func ShardRanges(n, k int) [][2]int {
	if n <= 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	ranges := make([][2]int, 0, k)
	for s, start := 0, 0; s < k; s++ {
		size := n / k
		if s < n%k {
			size++
		}
		ranges = append(ranges, [2]int{start, start + size})
		start += size
	}
	return ranges
}
