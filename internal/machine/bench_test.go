package machine

import (
	"testing"

	"scatteradd/internal/mem"
)

// BenchmarkEngineTick measures the full-machine per-cycle cost — address
// generation, 8 scatter-add units, 8 cache banks, and 16 DRAM channels —
// while a scatter-add stream is in flight. This is the CI gate benchmark:
// the performance-counter layer increments plain fields on this path, and a
// regression here beyond noise means the counters are no longer free.
func BenchmarkEngineTick(b *testing.B) {
	m := New(DefaultConfig())
	const n = 1 << 16
	addrs := make([]mem.Addr, n)
	for i := range addrs {
		addrs[i] = mem.Addr((i * 61) % 8192)
	}
	op := ScatterAdd("bench", mem.AddI64, addrs, []mem.Word{mem.I64(1)})
	op.Async = true
	m.RunOp(op)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(m.active) == 0 {
			b.StopTimer()
			m.RunOp(op)
			b.StartTimer()
		}
		m.tick()
	}
}

// BenchmarkEngineTickSampled measures the same path with a 1k-cycle
// timeline sampler attached, bounding the cost of `-stats` timelines.
func BenchmarkEngineTickSampled(b *testing.B) {
	m := New(DefaultConfig())
	const n = 1 << 16
	addrs := make([]mem.Addr, n)
	for i := range addrs {
		addrs[i] = mem.Addr((i * 61) % 8192)
	}
	op := ScatterAdd("bench", mem.AddI64, addrs, []mem.Word{mem.I64(1)})
	op.Async = true
	m.RunOp(op)
	tl := m.StartTimeline(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(m.active) == 0 {
			b.StopTimer()
			m.RunOp(op)
			b.StartTimer()
		}
		m.tick()
	}
	b.StopTimer()
	m.StopTimeline()
	_ = tl
}
