// Package machine models a single node of the simulated stream processor
// (the paper's Table 1 configuration, patterned on Merrimac): 16 data
// parallel clusters executing kernels out of a stream register file, two
// address generators feeding an address-partitioned stream cache of 8 banks
// with one scatter-add unit per bank, and 16 DRAM channels behind the cache.
//
// Programs are sequences of stream operations (kernel executions and
// memory-stream transfers), mirroring the gather/compute/scatter phase
// structure of §3.1. Kernels are modeled by a throughput cost (peak FP rate
// and SRF bandwidth bound, plus a startup overhead that models priming the
// stream pipeline); memory operations are simulated cycle by cycle through
// the scatter-add units, cache banks, and DRAM.
//
// The machine also supports the cache-less "uniform memory" configuration
// of the sensitivity study (§4.4): one scatter-add unit in front of a
// fixed-latency, fixed-interval word memory.
package machine

import (
	"fmt"

	"scatteradd/internal/cache"
	"scatteradd/internal/dram"
	"scatteradd/internal/fault"
	"scatteradd/internal/mem"
	"scatteradd/internal/saunit"
	"scatteradd/internal/sim"
	"scatteradd/internal/span"
	"scatteradd/internal/stats"
)

// UniformMemConfig selects the cache-less sensitivity-study memory system.
type UniformMemConfig struct {
	Latency  int // cycles from issue to data
	Interval int // minimum cycles between successive word accesses
}

// Config describes one node.
type Config struct {
	// Compute model (Table 1).
	Clusters         int     // 16
	MaddsPerCluster  int     // 4 multiply-adds per cycle per cluster
	SRFWordsPerCycle float64 // SRF bandwidth in words/cycle (512 GB/s -> 64)
	KernelStartup    int     // cycles to launch a kernel
	MemOpStartup     int     // cycles to prime a memory stream operation

	// Address generators.
	AGs     int // concurrent memory stream operations supported
	AGWidth int // requests issued per cycle per active stream

	Cache cache.Config
	SA    saunit.Config
	DRAM  dram.Config

	// UniformMem, when non-nil, replaces the cache and DRAM with a single
	// scatter-add unit in front of a uniform word memory (§4.4).
	UniformMem *UniformMemConfig

	// Faults configures deterministic fault injection across the memory
	// system (DRAM stalls and outage windows, combining-store parity scrubs,
	// scatter-add FU retries). The zero value injects nothing and leaves the
	// machine byte-identical to an unconfigured one. The uniform memory of
	// the sensitivity study has no fault hooks; its runs are unaffected.
	Faults fault.Config

	// LegacyStepping forces per-cycle engine stepping, disabling the
	// quiescence fast-forward path. Results are cycle-exact either way (the
	// differential harness in internal/differ enforces it); the flag exists
	// for that comparison and as an escape hatch.
	LegacyStepping bool

	// Shards partitions the banked memory system — scatter-add units, cache
	// banks, and the DRAM channels those banks own — across parallel workers
	// inside one simulation, following the three-phase discipline of the
	// multinode engine: sequential address-generator issue in canonical
	// order, parallel per-shard unit/bank/channel ticks, sequential response
	// routing and stream retirement. Results are byte-identical for any
	// value (internal/differ enforces it). 0 or 1 runs sequentially; values
	// above the bank count clamp to it; the uniform-memory configuration
	// ignores it. Like LegacyStepping, it changes how the simulation is
	// executed, never what it computes.
	Shards int
}

// shardCount resolves Shards to the effective partition width. Sharding
// needs the banked memory system (uniform mode stays sequential) and a
// channel count that is a multiple of the bank count — channel c is owned by
// bank c mod Banks, and a non-multiple would strand channels whose fills
// target a bank in a different shard.
func (c Config) shardCount() int {
	if c.Shards <= 1 || c.UniformMem != nil {
		return 1
	}
	if c.Cache.Banks < 1 || c.DRAM.Channels%c.Cache.Banks != 0 {
		return 1
	}
	s := c.Shards
	if s > c.Cache.Banks {
		s = c.Cache.Banks
	}
	return s
}

// DefaultConfig returns the paper's Table 1 machine.
func DefaultConfig() Config {
	return Config{
		Clusters:         16,
		MaddsPerCluster:  4,
		SRFWordsPerCycle: 64,
		KernelStartup:    64,
		MemOpStartup:     24,
		AGs:              2,
		AGWidth:          8,
		Cache:            cache.DefaultConfig(),
		SA:               saunit.DefaultConfig(),
		DRAM:             dram.DefaultConfig(),
	}
}

// PeakFlopsPerCycle returns the peak FP operations per cycle (Table 1: 128,
// counting each multiply-add as two operations).
func (c Config) PeakFlopsPerCycle() float64 {
	return float64(c.Clusters * c.MaddsPerCluster * 2)
}

// OpKind distinguishes stream operations.
type OpKind uint8

const (
	// OpMem is a memory stream transfer (load/store/gather/scatter/
	// scatter-add), simulated through the memory system.
	OpMem OpKind = iota
	// OpKernel is a compute kernel, modeled by its cost bound.
	OpKernel
	// OpFence waits for every outstanding memory stream (including
	// asynchronous ones) to complete and the memory system to drain.
	OpFence
)

// Op is one stream operation. Construct ops with the helper constructors.
type Op struct {
	Name string
	Kind OpKind

	// Memory operations.
	MemKind mem.Kind
	Addrs   []mem.Addr // explicit addresses; nil means Base..Base+N-1
	Base    mem.Addr
	N       int
	Vals    []mem.Word         // write/scatter-add data; len 1 broadcasts
	OnResp  func(mem.Response) // optional read/fetch response sink

	// Async starts the memory stream on a free address generator and
	// returns immediately, letting later kernels (and further streams, up
	// to the AG count) execute concurrently — the paper's observation that
	// "the processor's main execution unit can continue running the
	// program, while the sums are being updated in memory". Synchronize
	// with Fence.
	Async bool

	// Kernel operations.
	Flops  float64 // total FP operations
	IntOps float64 // non-FP operations (comparisons, index math); cost
	// like Flops but excluded from the FP Operations metric
	SRFWords float64 // total SRF words moved
}

// addr returns the i-th address of a memory op.
func (o *Op) addr(i int) mem.Addr {
	if o.Addrs != nil {
		return o.Addrs[i]
	}
	return o.Base + mem.Addr(i)
}

// val returns the i-th data value of a memory op.
func (o *Op) val(i int) mem.Word {
	if len(o.Vals) == 0 {
		return 0
	}
	if len(o.Vals) == 1 {
		return o.Vals[0]
	}
	return o.Vals[i]
}

// count returns the number of requests the op issues.
func (o *Op) count() int {
	if o.Addrs != nil {
		return len(o.Addrs)
	}
	return o.N
}

// LoadStream reads n consecutive words starting at base (a stream load).
func LoadStream(name string, base mem.Addr, n int) Op {
	return Op{Name: name, Kind: OpMem, MemKind: mem.Read, Base: base, N: n}
}

// StoreStream writes vals to consecutive words starting at base.
func StoreStream(name string, base mem.Addr, vals []mem.Word) Op {
	return Op{Name: name, Kind: OpMem, MemKind: mem.Write, Base: base, N: len(vals), Vals: vals}
}

// Gather reads the given addresses (an indexed load).
func Gather(name string, addrs []mem.Addr) Op {
	return Op{Name: name, Kind: OpMem, MemKind: mem.Read, Addrs: addrs}
}

// Scatter writes vals[i] to addrs[i] (an indexed store).
func Scatter(name string, addrs []mem.Addr, vals []mem.Word) Op {
	if len(addrs) != len(vals) {
		panic(fmt.Sprintf("machine: scatter with %d addrs, %d vals", len(addrs), len(vals)))
	}
	return Op{Name: name, Kind: OpMem, MemKind: mem.Write, Addrs: addrs, Vals: vals}
}

// ScatterAdd atomically combines vals[i] into addrs[i] with the given RMW
// kind. vals of length 1 broadcasts a scalar (the paper's second form).
func ScatterAdd(name string, kind mem.Kind, addrs []mem.Addr, vals []mem.Word) Op {
	if !kind.IsScatterAdd() {
		panic(fmt.Sprintf("machine: ScatterAdd with non-RMW kind %v", kind))
	}
	if len(vals) != 1 && len(vals) != len(addrs) {
		panic(fmt.Sprintf("machine: scatter-add with %d addrs, %d vals", len(addrs), len(vals)))
	}
	return Op{Name: name, Kind: OpMem, MemKind: kind, Addrs: addrs, Vals: vals}
}

// Fence waits for all outstanding memory streams to complete.
func Fence() Op {
	return Op{Name: "fence", Kind: OpFence}
}

// Kernel models a compute kernel with the given total FP-operation count and
// SRF word traffic.
func Kernel(name string, flops, srfWords float64) Op {
	return Op{Name: name, Kind: OpKernel, Flops: flops, SRFWords: srfWords}
}

// IntKernel models a compute kernel of non-FP operations (comparisons,
// index arithmetic): it costs execution time like Kernel but does not count
// toward the FP Operations metric.
func IntKernel(name string, intOps, srfWords float64) Op {
	return Op{Name: name, Kind: OpKernel, IntOps: intOps, SRFWords: srfWords}
}

// Result accumulates the paper's three reported metrics plus component
// detail.
type Result struct {
	Cycles  uint64 // execution cycles
	FPOps   uint64 // kernel flops + scatter-add FU operations
	MemRefs uint64 // processor-issued word memory references

	SAStats    saunit.Stats
	CacheStats cache.Stats
	DRAMStats  dram.Stats
}

// Add accumulates other into r.
func (r *Result) Add(other Result) {
	r.Cycles += other.Cycles
	r.FPOps += other.FPOps
	r.MemRefs += other.MemRefs
}

// memStream is one in-flight memory stream operation bound to an address
// generator. Streams live in the machine's fixed slab (one entry per AG) and
// are recycled in place, so the op hot path allocates nothing per stream.
type memStream struct {
	inUse       bool // slab entry claimed (set by runMemOp, cleared at retire)
	op          Op
	tag         uint64 // request-ID tag (ID = tag<<32 | index)
	n           int
	issued      int
	responses   int
	needResp    bool
	startupLeft int    // cycles of AG/pipeline priming before first issue
	lane        int    // address-generator lane (span tracing only)
	start       uint64 // cycle the stream claimed its AG (span tracing only)
}

// done reports whether the stream has issued everything and received every
// expected response (writes and scatter-adds complete at issue; their drain
// is covered by the memory system's Busy state).
func (s *memStream) done() bool {
	return s.issued == s.n && (!s.needResp || s.responses == s.n)
}

// metrics are the address-generator performance counters.
type metrics struct {
	group    *stats.Group
	agIssued *stats.Counter   // word requests issued by the address generators
	agStalls *stats.Counter   // cycles some primed stream could not issue at all
	agActive *stats.Histogram // active streams, sampled every cycle
}

func newMetrics(g *stats.Group, ags int) metrics {
	return metrics{
		group:    g,
		agIssued: g.Counter("ag_issued"),
		agStalls: g.Counter("ag_stall_cycles"),
		agActive: g.Histogram("ag_active", ags+1),
	}
}

// machineShard is one bank-cluster partition of the memory system: a
// contiguous range of scatter-add unit / cache bank indices plus the DRAM
// channels those banks own. Channel c is owned by bank c mod Banks, so the
// partition is closed: every line a shard's banks fetch lives on the shard's
// own channels, and every fill those channels produce lands back in one of
// the shard's banks.
type machineShard struct {
	lo, hi int   // unit/bank index range [lo, hi)
	chans  []int // DRAM channels owned by banks [lo, hi), bank-major
	// tr receives the shard's component spans during parallel ticks: the
	// master tracer when the machine runs unsharded, a shard-private tracer
	// (absorbed at op boundaries) when it does not.
	tr *span.Tracer
}

// Machine is one simulated node. All components are driven by a sim.Engine
// in consumer-before-producer order; the machine's own phases (address
// generation, memory-system tick, response routing, stream retirement) are
// engine tickers too. With Config.Shards > 1 the memory-system phase fans
// its bank clusters out over a spin-barrier sim.ShardPool; everything else
// stays sequential, so outputs are byte-identical at any shard count.
type Machine struct {
	cfg     Config
	eng     *sim.Engine
	dram    *dram.DRAM
	uniform *dram.Uniform
	banks   []*cache.Bank
	sas     []*saunit.Unit
	reg     *stats.Registry
	met     metrics

	shards    []machineShard
	bankShard []int          // bank index -> owning shard index
	pool      *sim.ShardPool // lazy; lives while async streams are in flight
	tickNow   uint64         // cycle being fanned out (set before pool.Run)

	active  []*memStream
	nextTag uint64
	tracer  func(cycle uint64, req mem.Request)

	tr       *span.Tracer
	unitTr   []*span.Tracer // per-unit tracer: the owning shard's (master when unsharded)
	laneBusy []bool         // AG lane occupancy (span tracing only)

	// Prebound closures and the stream slab keep RunOp allocation-free.
	streamSlab []memStream // one entry per AG, recycled in place
	curStream  *memStream  // stream the current synchronous op waits on
	opDoneFn   func() bool
	agFreeFn   func() bool
	drainedFn  func() bool
	shardRunFn func(int)
	fillFn     func(dram.LineResp)

	kernelFlops uint64
	memRefs     uint64
}

// SetTracer installs a hook observing every memory request the address
// generators issue (nil disables tracing).
func (m *Machine) SetTracer(fn func(cycle uint64, req mem.Request)) { m.tracer = fn }

// SetSpanTracer installs a request-lifecycle tracer on the machine and
// every memory-system component, so sampled operations record their stage
// transitions from address-generator issue to reply. Install it before
// running ops; a nil tracer disables tracing everywhere.
//
// When the machine is sharded, each shard gets a private tracer so parallel
// ticks never share the span state; a shard's components write to it, and
// completed lifecycles are folded into the master at op boundaries (see
// absorbShardSpans). Sampling decisions stay on the master tracer, made in
// canonical issue order, so the sampled population is identical at any shard
// count; and because an op's whole lifecycle — issue, bank, DRAM, reply — is
// confined to the bank cluster its address maps to, no lifecycle ever spans
// two shard tracers.
func (m *Machine) SetSpanTracer(tr *span.Tracer) {
	m.tr = tr
	m.laneBusy = nil
	m.unitTr = nil
	for i := range m.shards {
		m.shards[i].tr = tr
	}
	if tr != nil {
		m.laneBusy = make([]bool, m.cfg.AGs)
		m.unitTr = make([]*span.Tracer, len(m.sas))
		if len(m.shards) > 1 {
			for i := range m.shards {
				m.shards[i].tr = span.New(tr.Rate())
			}
		}
		for i := range m.sas {
			m.unitTr[i] = tr
			if len(m.bankShard) > 0 {
				m.unitTr[i] = m.shards[m.bankShard[i]].tr
			}
		}
	}
	for i, sa := range m.sas {
		var utr *span.Tracer
		if m.unitTr != nil {
			utr = m.unitTr[i]
		}
		sa.SetSpanTracer(utr, fmt.Sprintf("saunit[%d]", i))
		if m.uniform != nil {
			// No cache below the unit: bypasses go straight to memory.
			sa.SetSpanDownstream(span.StageDRAM)
		}
	}
	for i, b := range m.banks {
		var utr *span.Tracer
		if m.unitTr != nil {
			utr = m.unitTr[i]
		}
		b.SetSpanTracer(utr, fmt.Sprintf("cache[%d]", i))
	}
	if m.dram != nil {
		// The DRAM records its track name here; the per-cycle spans go to
		// whichever tracer the ticking shard passes to TickChannels.
		m.dram.SetSpanTracer(tr, "dram")
	}
	if m.uniform != nil {
		m.uniform.SetSpanTracer(tr, "uniform")
	}
}

// absorbShardSpans folds each shard tracer's completed op lifecycles and
// component spans into the master tracer, in shard order. Called at op
// boundaries (sequential points). Live ops stay on their shard tracer, where
// the shard's components keep reporting stage transitions for in-flight
// asynchronous streams.
func (m *Machine) absorbShardSpans() {
	if m.tr == nil || len(m.shards) <= 1 {
		return
	}
	for i := range m.shards {
		m.tr.AbsorbCompleted(m.shards[i].tr)
	}
}

// SpanTracer returns the installed request-lifecycle tracer (nil if none).
func (m *Machine) SpanTracer() *span.Tracer { return m.tr }

// New constructs a machine.
func New(cfg Config) *Machine {
	if cfg.Clusters < 1 || cfg.AGs < 1 || cfg.AGWidth < 1 || cfg.SRFWordsPerCycle <= 0 {
		panic(fmt.Sprintf("machine: invalid config %+v", cfg))
	}
	m := &Machine{cfg: cfg, eng: sim.NewEngine(), reg: stats.NewRegistry()}
	m.met = newMetrics(m.reg.Group("machine"), cfg.AGs)
	injecting := cfg.Faults.Enabled()
	flt := cfg.Faults
	if injecting {
		flt = flt.WithDefaults()
	}
	if cfg.UniformMem != nil {
		m.uniform = dram.NewUniform(cfg.UniformMem.Latency, cfg.UniformMem.Interval, 64)
		m.sas = []*saunit.Unit{saunit.New(cfg.SA, m.uniform)}
		if injecting {
			m.sas[0].SetFaults(flt, "m.b0")
		}
	} else {
		m.dram = dram.New(cfg.DRAM)
		m.dram.SetPartitioned()
		if injecting {
			m.dram.SetFaults(flt, "m")
		}
		for i := 0; i < cfg.Cache.Banks; i++ {
			b := cache.NewBank(cfg.Cache, i, m.dram, cache.Normal)
			m.banks = append(m.banks, b)
			m.sas = append(m.sas, saunit.New(cfg.SA, b))
			if injecting {
				b.SetFaults(flt, fmt.Sprintf("m.b%d", i))
				m.sas[i].SetFaults(flt, fmt.Sprintf("m.b%d", i))
			}
		}
		// Partition the bank clusters (and the channels they own) into
		// shards. A 1-shard machine uses the same partitioned tick path with
		// a single all-covering shard, so shard counts share one code path
		// and one canonical ordering of effects.
		m.bankShard = make([]int, cfg.Cache.Banks)
		for si, r := range sim.ShardRanges(cfg.Cache.Banks, cfg.shardCount()) {
			sh := machineShard{lo: r[0], hi: r[1]}
			for b := r[0]; b < r[1]; b++ {
				m.bankShard[b] = si
				for c := b; c < cfg.DRAM.Channels; c += cfg.Cache.Banks {
					sh.chans = append(sh.chans, c)
				}
			}
			m.shards = append(m.shards, sh)
		}
		m.fillFn = func(r dram.LineResp) {
			m.banks[cache.BankOf(r.Line, len(m.banks))].Fill(m.eng.Now(), r.Line, r.Data)
		}
		m.shardRunFn = func(s int) { m.shardTick(m.tickNow, s) }
	}
	for i, sa := range m.sas {
		m.reg.Adopt(fmt.Sprintf("saunit[%d]", i), sa.StatsGroup())
	}
	for i, b := range m.banks {
		m.reg.Adopt(fmt.Sprintf("cache[%d]", i), b.StatsGroup())
	}
	if m.dram != nil {
		m.reg.Adopt("dram", m.dram.StatsGroup())
	}

	// Engine order mirrors the machine pipeline: issue, memory system
	// (scatter-add units, cache banks, DRAM + fill delivery — one composite
	// phase so it can fan out over shards), response routing, stream retire.
	// The machine's own phases are named types rather than closures so they
	// can implement sim.FastForwarder alongside sim.Ticker (and so phase
	// registration captures nothing per tick).
	m.eng.Add(issuePhase{m})
	if m.dram != nil {
		m.eng.Add(memPhase{m})
	} else {
		for _, sa := range m.sas {
			m.eng.Add(sa)
		}
		m.eng.Add(m.uniform)
	}
	m.eng.Add(responsePhase{m})
	m.eng.Add(retirePhase{m})
	if cfg.LegacyStepping {
		m.eng.SetFastForward(false)
	}
	// Prebound predicates for the RunUntil calls on the op hot path.
	m.streamSlab = make([]memStream, cfg.AGs)
	m.agFreeFn = func() bool { return len(m.active) < m.cfg.AGs }
	m.drainedFn = m.drained
	m.opDoneFn = func() bool {
		s := m.curStream
		return s.done() && (s.needResp || !m.memSystemBusy())
	}
	return m
}

// Close releases the intra-run shard worker pool, if one is live. RunOp
// releases it automatically whenever no streams remain active at an op
// boundary, so Close only matters for a machine abandoned mid-flight with
// asynchronous streams outstanding. The machine stays usable after Close: a
// later sharded tick simply starts a fresh pool.
func (m *Machine) Close() {
	if m.pool != nil {
		m.pool.Close()
		m.pool = nil
	}
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Store returns the functional memory image for zero-time initialization and
// result readback. Call FlushCaches before reading results written through
// the timed path.
func (m *Machine) Store() *mem.Store {
	if m.uniform != nil {
		return m.uniform.Store()
	}
	return m.dram.Store()
}

// FlushCaches functionally writes all dirty cache lines into the DRAM store
// (zero simulated time). Use it between a timed run and result readback.
func (m *Machine) FlushCaches() {
	for _, b := range m.banks {
		b.FlushFunctional()
	}
}

// Now returns the machine's absolute cycle count.
func (m *Machine) Now() uint64 { return m.eng.Now() }

// StatsRegistry returns the machine's performance-counter registry.
func (m *Machine) StatsRegistry() *stats.Registry { return m.reg }

// StatsSnapshot returns the current values of every performance counter.
// DRAM counters accumulate per channel on the partitioned tick path and are
// folded into the registry here (the fold is delta-based and
// order-insensitive, so snapshots are identical at any shard count).
func (m *Machine) StatsSnapshot() stats.Snapshot {
	if m.dram != nil {
		m.dram.FoldMetrics()
	}
	return m.reg.Snapshot()
}

// StartTimeline begins recording a registry snapshot every interval cycles
// and returns the timeline being filled. Sampling (the only per-cycle cost
// of the counter layer beyond plain field increments) continues until
// StopTimeline is called.
func (m *Machine) StartTimeline(interval uint64) *stats.Timeline {
	tl := &stats.Timeline{Interval: interval}
	m.eng.SetSampler(interval, func(now uint64) {
		tl.Record(now, m.StatsSnapshot())
	})
	return tl
}

// StopTimeline detaches the sampler installed by StartTimeline.
func (m *Machine) StopTimeline() { m.eng.SetSampler(0, nil) }

// SetSampler installs a raw periodic callback on the machine's engine,
// invoked every interval cycles (including across fast-forwarded stretches).
// It shares the engine's single sampler slot with StartTimeline; interval 0
// or a nil fn detaches it.
func (m *Machine) SetSampler(interval uint64, fn func(now uint64)) {
	m.eng.SetSampler(interval, fn)
}

// unitIndex routes an address to its scatter-add unit index (one per cache
// bank; a single unit in uniform-memory mode).
func (m *Machine) unitIndex(a mem.Addr) int {
	if len(m.sas) == 1 {
		return 0
	}
	return cache.BankOf(a.Line(), len(m.banks))
}

// tick advances the whole machine one cycle through the engine.
func (m *Machine) tick() { m.eng.Step() }

// issuePhase drives the address generators (see issueTick). Its quiescence
// contract: a primed stream with requests left is work now; a stream still
// priming wakes when its startup counter expires; fully issued streams wait
// on the memory system, which reports its own events.
type issuePhase struct{ m *Machine }

func (p issuePhase) Tick(now uint64) { p.m.issueTick(now) }

func (p issuePhase) NextEvent(now uint64) uint64 {
	ev := sim.Never
	for _, s := range p.m.active {
		if s.startupLeft > 0 {
			if t := now + uint64(s.startupLeft); t < ev {
				ev = t
			}
			continue
		}
		if s.issued < s.n {
			return now
		}
	}
	return ev
}

// Skip applies the per-cycle effects of skipped idle issue Ticks: the
// active-stream occupancy sample and the startup countdown (the engine
// never jumps past a startup expiry, so the subtraction cannot underflow).
// Streams in startup never count as AG stalls, so that counter is unmoved.
func (p issuePhase) Skip(now, cycles uint64) {
	m := p.m
	m.met.agActive.ObserveN(len(m.active), cycles)
	for _, s := range m.active {
		if s.startupLeft > 0 {
			s.startupLeft -= int(cycles)
		}
	}
}

// memPhase is the composite memory-system ticker of a banked machine: the
// scatter-add units, cache banks, DRAM channels, and fill delivery, grouped
// into one phase so a sharded machine can fan the cycle out over its bank
// clusters. The fast-forward contract is the union of the members': the next
// event is the minimum over every unit, bank, and channel, and Skip fans out
// to all of them — both computed sequentially (they are pure reads and
// per-component idle accounting; with at most a few dozen components there
// is nothing to win by parallelizing them).
type memPhase struct{ m *Machine }

func (p memPhase) Tick(now uint64) {
	m := p.m
	if len(m.shards) == 1 {
		m.shardTick(now, 0)
		return
	}
	if m.pool == nil {
		m.pool = sim.NewSpinShardPool(len(m.shards))
	}
	m.tickNow = now
	m.pool.Run(m.shardRunFn)
}

func (p memPhase) NextEvent(now uint64) uint64 {
	m := p.m
	ev := sim.Never
	for _, sa := range m.sas {
		if e := sa.NextEvent(now); e < ev {
			if e <= now {
				return e
			}
			ev = e
		}
	}
	for _, b := range m.banks {
		if e := b.NextEvent(now); e < ev {
			if e <= now {
				return e
			}
			ev = e
		}
	}
	if e := m.dram.NextEvent(now); e < ev {
		ev = e
	}
	return ev
}

func (p memPhase) Skip(now, cycles uint64) {
	m := p.m
	for _, sa := range m.sas {
		sa.Skip(now, cycles)
	}
	for _, b := range m.banks {
		b.Skip(now, cycles)
	}
	m.dram.Skip(now, cycles)
}

// shardTick runs one cycle of shard si's slice of the memory system: its
// scatter-add units, their cache banks, the DRAM channels those banks own,
// and delivery of completed line reads back into the shard's banks. Within
// the shard, components tick in the same consumer-before-producer order the
// sequential engine uses, and every interaction stays inside the shard by
// construction — unit i feeds bank i, bank i's misses go to channels
// congruent to i mod Banks, and those channels' fills land back in bank i —
// so parallel shards share no mutable state beyond the lock-protected
// functional store.
func (m *Machine) shardTick(now uint64, si int) {
	sh := &m.shards[si]
	for i := sh.lo; i < sh.hi; i++ {
		m.sas[i].Tick(now)
	}
	for i := sh.lo; i < sh.hi; i++ {
		m.banks[i].Tick(now)
	}
	m.dram.TickChannels(now, sh.chans, sh.tr)
	m.dram.DrainResponses(sh.chans, m.fillFn)
}

// responsePhase routes scatter-add unit responses back to their streams. It
// is purely reactive: a deliverable response is reported as work by the
// unit's own NextEvent (non-empty upstream queue), so it never wakes the
// engine itself.
type responsePhase struct{ m *Machine }

func (p responsePhase) Tick(now uint64)             { p.m.responseTick(now) }
func (p responsePhase) NextEvent(now uint64) uint64 { return sim.Never }
func (p responsePhase) Skip(now, cycles uint64)     {}

// retirePhase removes completed streams. A completed-but-unretired stream is
// work now (retirement frees its address generator next cycle, exactly as
// under per-cycle stepping); anything else waits on responses, which the
// memory system reports.
type retirePhase struct{ m *Machine }

func (p retirePhase) Tick(now uint64) { p.m.retireTick(now) }

func (p retirePhase) NextEvent(now uint64) uint64 {
	for _, s := range p.m.active {
		if s.done() {
			return now
		}
	}
	return sim.Never
}

func (p retirePhase) Skip(now, cycles uint64) {}

// issueTick: each active stream owns one address generator and may issue up
// to AGWidth requests per cycle, in order (head-of-line blocking on a busy
// bank models the hot-bank effect of Figure 7).
func (m *Machine) issueTick(now uint64) {
	m.met.agActive.Observe(len(m.active))
	stalled := false
	for _, s := range m.active {
		if s.startupLeft > 0 {
			s.startupLeft--
			continue
		}
		issuedBefore := s.issued
		for w := 0; w < m.cfg.AGWidth && s.issued < s.n; w++ {
			a := s.op.addr(s.issued)
			ui := m.unitIndex(a)
			u := m.sas[ui]
			if !u.CanAccept(now) {
				break
			}
			req := mem.Request{
				ID:   s.tag<<32 | uint64(s.issued),
				Kind: s.op.MemKind, Addr: a, Val: s.op.val(s.issued),
			}
			if !u.Accept(now, req) {
				break
			}
			if m.tracer != nil {
				m.tracer(now, req)
			}
			// The sampling decision runs on the master tracer, in canonical
			// issue order (identical at any shard count); the lifecycle is
			// opened on the owning unit's tracer, where the unit's bank
			// cluster will report its stage transitions.
			if m.tr != nil && m.tr.SampleNext() {
				m.unitTr[ui].OpBegin(0, req.ID, req.Kind, req.Addr, now)
			}
			s.issued++
			m.met.agIssued.Inc()
		}
		if s.issued == issuedBefore && s.issued < s.n {
			stalled = true
		}
	}
	if stalled {
		m.met.agStalls.Inc()
	}
}

// responseTick routes scatter-add unit responses back to their streams by
// ID tag, then samples the DRAM queue-depth gauge (the per-transaction gauge
// update is suppressed on the partitioned tick path; end-of-cycle totals are
// identical for any shard count and any stepping mode, since skipped cycles
// leave the queues untouched).
func (m *Machine) responseTick(now uint64) {
	for i, sa := range m.sas {
		for {
			r, ok := sa.PopResponse(now)
			if !ok {
				break
			}
			if s := m.streamByTag(r.ID >> 32); s != nil {
				s.responses++
				if m.tr != nil {
					m.unitTr[i].OpEnd(0, r.ID, now)
				}
				if s.op.OnResp != nil {
					r.ID &= (1 << 32) - 1 // restore the caller's index
					s.op.OnResp(r)
				}
			}
		}
	}
	if m.dram != nil {
		m.dram.SyncQueueDepth()
	}
}

// retireTick removes completed streams, freeing their address generators and
// returning their slab entries for reuse.
func (m *Machine) retireTick(now uint64) {
	live := m.active[:0]
	for _, s := range m.active {
		if !s.done() {
			live = append(live, s)
			continue
		}
		if m.tr != nil && s.lane < len(m.laneBusy) {
			// One serialized activity span per AG lane per stream.
			m.tr.Span(fmt.Sprintf("ag[%d]", s.lane),
				fmt.Sprintf("%s n=%d", s.op.Name, s.n), s.start, now)
			m.laneBusy[s.lane] = false
		}
		s.inUse = false
	}
	m.active = live
}

// streamByTag finds the active stream with the given request tag.
func (m *Machine) streamByTag(tag uint64) *memStream {
	for _, s := range m.active {
		if s.tag == tag {
			return s
		}
	}
	return nil
}

// memSystemBusy reports whether any memory-system component holds work.
func (m *Machine) memSystemBusy() bool {
	for _, sa := range m.sas {
		if sa.Busy() {
			return true
		}
	}
	// saunit.Busy covers its downstream bank/uniform; DRAM covered via banks'
	// MSHRs? Not entirely: a write-back accepted by DRAM leaves bank idle.
	if m.dram != nil && m.dram.Busy() {
		return true
	}
	if m.uniform != nil && m.uniform.Busy() {
		return true
	}
	return false
}

// neverDone is the RunUntil predicate for fixed-length advances; a
// package-level func keeps the idle hot path allocation-free.
func neverDone() bool { return false }

// idle advances cycles without starting new work (kernel execution time);
// outstanding asynchronous streams keep issuing underneath. It runs through
// the engine's RunUntil so dead stretches (no active streams, memory system
// drained or waiting on a timer) fast-forward instead of ticking.
func (m *Machine) idle(cycles uint64) {
	m.eng.RunUntil(neverDone, m.eng.Now()+cycles)
}

// RunOp executes one stream operation and returns its metrics. Memory
// operations with Async set return as soon as an address generator is
// claimed; everything else runs to completion.
func (m *Machine) RunOp(op Op) Result {
	start := m.eng.Now()
	memRefsBefore := m.memRefs
	saBefore := m.saStats()
	switch op.Kind {
	case OpKernel:
		flopCyc := (op.Flops + op.IntOps) / m.cfg.PeakFlopsPerCycle()
		srfCyc := op.SRFWords / m.cfg.SRFWordsPerCycle
		cyc := uint64(m.cfg.KernelStartup)
		if flopCyc > srfCyc {
			cyc += uint64(flopCyc + 0.999999)
		} else {
			cyc += uint64(srfCyc + 0.999999)
		}
		m.idle(cyc)
		m.kernelFlops += uint64(op.Flops)
	case OpMem:
		m.runMemOp(op)
	case OpFence:
		m.fence()
	default:
		panic(fmt.Sprintf("machine: unknown op kind %d", op.Kind))
	}
	saAfter := m.saStats()
	// Op boundaries are sequential points: fold shard span state into the
	// master tracer, and release the shard worker pool once nothing is in
	// flight (the next sharded tick lazily starts a fresh one).
	m.absorbShardSpans()
	if m.pool != nil && len(m.active) == 0 {
		m.pool.Close()
		m.pool = nil
	}
	return Result{
		Cycles:  m.eng.Now() - start,
		FPOps:   uint64(op.Flops) + fpDelta(saBefore, saAfter),
		MemRefs: m.memRefs - memRefsBefore,
	}
}

// fence runs until every stream has completed and the memory system has
// drained. The predicate reads only component state, which cannot change
// across skipped cycles, so it is safe under fast-forward.
func (m *Machine) fence() {
	limit := m.eng.Now() + opDeadlockCycles
	if _, ok := m.eng.RunUntil(m.drainedFn, limit); !ok {
		panic("machine: fence did not drain; likely deadlock")
	}
}

// drained reports fence completion: no active streams and an idle memory
// system.
func (m *Machine) drained() bool {
	return len(m.active) == 0 && !m.memSystemBusy()
}

// fpDelta counts floating-point FU operations performed between two stat
// snapshots. Integer scatter-adds use the same datapath but do not count
// toward the paper's "FP Operations" metric.
func fpDelta(before, after saunit.Stats) uint64 {
	return after.FUOpsFP - before.FUOpsFP
}

func (m *Machine) saStats() saunit.Stats {
	var s saunit.Stats
	for _, sa := range m.sas {
		st := sa.Stats()
		s.SARequests += st.SARequests
		s.Bypassed += st.Bypassed
		s.MemReads += st.MemReads
		s.MemWrites += st.MemWrites
		s.FUOps += st.FUOps
		s.FUOpsFP += st.FUOpsFP
		s.Combined += st.Combined
		s.StallFull += st.StallFull
		s.EagerOps += st.EagerOps
	}
	return s
}

// runMemOp claims an address generator for the stream, then (for
// synchronous ops) runs it to completion plus a drain of the memory system.
func (m *Machine) runMemOp(op Op) {
	n := op.count()
	m.memRefs += uint64(n)
	opStart := m.eng.Now()
	// Claim an address generator (Table 1: 2), waiting if all are busy.
	if len(m.active) >= m.cfg.AGs {
		if _, ok := m.eng.RunUntil(m.agFreeFn, opStart+opDeadlockCycles); !ok {
			panic(fmt.Sprintf("machine: op %q waited %d cycles for an AG; likely deadlock", op.Name, m.eng.Now()-opStart))
		}
	}
	m.nextTag++
	s := m.claimStream()
	*s = memStream{
		inUse: true,
		op:    op, tag: m.nextTag, n: n,
		needResp:    op.MemKind == mem.Read || op.MemKind.IsFetch(),
		startupLeft: m.cfg.MemOpStartup,
	}
	if m.tr != nil {
		s.start = m.eng.Now()
		for i, busy := range m.laneBusy {
			if !busy {
				s.lane, m.laneBusy[i] = i, true
				break
			}
		}
	}
	m.active = append(m.active, s)
	if op.Async {
		return
	}
	// Synchronous semantics: reads are complete when every response has
	// arrived; writes and scatter-adds additionally wait for the memory
	// system to drain so their data is globally visible when RunOp returns.
	m.curStream = s
	if _, ok := m.eng.RunUntil(m.opDoneFn, opStart+opDeadlockCycles); !ok {
		panic(fmt.Sprintf("machine: op %q has run %d cycles; likely deadlock", op.Name, m.eng.Now()-opStart))
	}
}

// claimStream takes a free entry from the fixed stream slab (one per address
// generator; the AG-claim wait above guarantees one is free).
func (m *Machine) claimStream() *memStream {
	for i := range m.streamSlab {
		if !m.streamSlab[i].inUse {
			return &m.streamSlab[i]
		}
	}
	panic("machine: no free stream slab entry; AG accounting broken")
}

// opDeadlockCycles guards against flow-control deadlock: single ops in this
// repository complete in well under this many cycles.
const opDeadlockCycles = uint64(500_000_000)

// Run executes a program sequentially and returns aggregate metrics.
func (m *Machine) Run(prog []Op) Result {
	start := m.eng.Now()
	memRefsBefore := m.memRefs
	flopsBefore := m.kernelFlops
	saBefore := m.saStats()
	for _, op := range prog {
		m.RunOp(op)
	}
	saAfter := m.saStats()
	return Result{
		Cycles:     m.eng.Now() - start,
		FPOps:      (m.kernelFlops - flopsBefore) + fpDelta(saBefore, saAfter),
		MemRefs:    m.memRefs - memRefsBefore,
		SAStats:    saAfter,
		CacheStats: m.cacheStats(),
		DRAMStats:  m.dramStats(),
	}
}

// ComponentStats returns cumulative scatter-add unit, cache, and DRAM
// counters for the machine's lifetime (useful after driving the machine
// through RunOp rather than Run).
func (m *Machine) ComponentStats() (saunit.Stats, cache.Stats, dram.Stats) {
	return m.saStats(), m.cacheStats(), m.dramStats()
}

func (m *Machine) cacheStats() cache.Stats {
	var s cache.Stats
	for _, b := range m.banks {
		st := b.Stats()
		s.Hits += st.Hits
		s.Misses += st.Misses
		s.MergedMiss += st.MergedMiss
		s.Evictions += st.Evictions
		s.WriteBacks += st.WriteBacks
		s.SumBacks += st.SumBacks
		s.Stalls += st.Stalls
	}
	return s
}

func (m *Machine) dramStats() dram.Stats {
	if m.dram == nil {
		return dram.Stats{}
	}
	return m.dram.Stats()
}
