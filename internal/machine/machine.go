// Package machine models a single node of the simulated stream processor
// (the paper's Table 1 configuration, patterned on Merrimac): 16 data
// parallel clusters executing kernels out of a stream register file, two
// address generators feeding an address-partitioned stream cache of 8 banks
// with one scatter-add unit per bank, and 16 DRAM channels behind the cache.
//
// Programs are sequences of stream operations (kernel executions and
// memory-stream transfers), mirroring the gather/compute/scatter phase
// structure of §3.1. Kernels are modeled by a throughput cost (peak FP rate
// and SRF bandwidth bound, plus a startup overhead that models priming the
// stream pipeline); memory operations are simulated cycle by cycle through
// the scatter-add units, cache banks, and DRAM.
//
// The machine also supports the cache-less "uniform memory" configuration
// of the sensitivity study (§4.4): one scatter-add unit in front of a
// fixed-latency, fixed-interval word memory.
package machine

import (
	"fmt"

	"scatteradd/internal/cache"
	"scatteradd/internal/dram"
	"scatteradd/internal/fault"
	"scatteradd/internal/mem"
	"scatteradd/internal/saunit"
	"scatteradd/internal/sim"
	"scatteradd/internal/span"
	"scatteradd/internal/stats"
)

// UniformMemConfig selects the cache-less sensitivity-study memory system.
type UniformMemConfig struct {
	Latency  int // cycles from issue to data
	Interval int // minimum cycles between successive word accesses
}

// Config describes one node.
type Config struct {
	// Compute model (Table 1).
	Clusters         int     // 16
	MaddsPerCluster  int     // 4 multiply-adds per cycle per cluster
	SRFWordsPerCycle float64 // SRF bandwidth in words/cycle (512 GB/s -> 64)
	KernelStartup    int     // cycles to launch a kernel
	MemOpStartup     int     // cycles to prime a memory stream operation

	// Address generators.
	AGs     int // concurrent memory stream operations supported
	AGWidth int // requests issued per cycle per active stream

	Cache cache.Config
	SA    saunit.Config
	DRAM  dram.Config

	// UniformMem, when non-nil, replaces the cache and DRAM with a single
	// scatter-add unit in front of a uniform word memory (§4.4).
	UniformMem *UniformMemConfig

	// Faults configures deterministic fault injection across the memory
	// system (DRAM stalls and outage windows, combining-store parity scrubs,
	// scatter-add FU retries). The zero value injects nothing and leaves the
	// machine byte-identical to an unconfigured one. The uniform memory of
	// the sensitivity study has no fault hooks; its runs are unaffected.
	Faults fault.Config

	// LegacyStepping forces per-cycle engine stepping, disabling the
	// quiescence fast-forward path. Results are cycle-exact either way (the
	// differential harness in internal/differ enforces it); the flag exists
	// for that comparison and as an escape hatch.
	LegacyStepping bool
}

// DefaultConfig returns the paper's Table 1 machine.
func DefaultConfig() Config {
	return Config{
		Clusters:         16,
		MaddsPerCluster:  4,
		SRFWordsPerCycle: 64,
		KernelStartup:    64,
		MemOpStartup:     24,
		AGs:              2,
		AGWidth:          8,
		Cache:            cache.DefaultConfig(),
		SA:               saunit.DefaultConfig(),
		DRAM:             dram.DefaultConfig(),
	}
}

// PeakFlopsPerCycle returns the peak FP operations per cycle (Table 1: 128,
// counting each multiply-add as two operations).
func (c Config) PeakFlopsPerCycle() float64 {
	return float64(c.Clusters * c.MaddsPerCluster * 2)
}

// OpKind distinguishes stream operations.
type OpKind uint8

const (
	// OpMem is a memory stream transfer (load/store/gather/scatter/
	// scatter-add), simulated through the memory system.
	OpMem OpKind = iota
	// OpKernel is a compute kernel, modeled by its cost bound.
	OpKernel
	// OpFence waits for every outstanding memory stream (including
	// asynchronous ones) to complete and the memory system to drain.
	OpFence
)

// Op is one stream operation. Construct ops with the helper constructors.
type Op struct {
	Name string
	Kind OpKind

	// Memory operations.
	MemKind mem.Kind
	Addrs   []mem.Addr // explicit addresses; nil means Base..Base+N-1
	Base    mem.Addr
	N       int
	Vals    []mem.Word         // write/scatter-add data; len 1 broadcasts
	OnResp  func(mem.Response) // optional read/fetch response sink

	// Async starts the memory stream on a free address generator and
	// returns immediately, letting later kernels (and further streams, up
	// to the AG count) execute concurrently — the paper's observation that
	// "the processor's main execution unit can continue running the
	// program, while the sums are being updated in memory". Synchronize
	// with Fence.
	Async bool

	// Kernel operations.
	Flops  float64 // total FP operations
	IntOps float64 // non-FP operations (comparisons, index math); cost
	// like Flops but excluded from the FP Operations metric
	SRFWords float64 // total SRF words moved
}

// addr returns the i-th address of a memory op.
func (o *Op) addr(i int) mem.Addr {
	if o.Addrs != nil {
		return o.Addrs[i]
	}
	return o.Base + mem.Addr(i)
}

// val returns the i-th data value of a memory op.
func (o *Op) val(i int) mem.Word {
	if len(o.Vals) == 0 {
		return 0
	}
	if len(o.Vals) == 1 {
		return o.Vals[0]
	}
	return o.Vals[i]
}

// count returns the number of requests the op issues.
func (o *Op) count() int {
	if o.Addrs != nil {
		return len(o.Addrs)
	}
	return o.N
}

// LoadStream reads n consecutive words starting at base (a stream load).
func LoadStream(name string, base mem.Addr, n int) Op {
	return Op{Name: name, Kind: OpMem, MemKind: mem.Read, Base: base, N: n}
}

// StoreStream writes vals to consecutive words starting at base.
func StoreStream(name string, base mem.Addr, vals []mem.Word) Op {
	return Op{Name: name, Kind: OpMem, MemKind: mem.Write, Base: base, N: len(vals), Vals: vals}
}

// Gather reads the given addresses (an indexed load).
func Gather(name string, addrs []mem.Addr) Op {
	return Op{Name: name, Kind: OpMem, MemKind: mem.Read, Addrs: addrs}
}

// Scatter writes vals[i] to addrs[i] (an indexed store).
func Scatter(name string, addrs []mem.Addr, vals []mem.Word) Op {
	if len(addrs) != len(vals) {
		panic(fmt.Sprintf("machine: scatter with %d addrs, %d vals", len(addrs), len(vals)))
	}
	return Op{Name: name, Kind: OpMem, MemKind: mem.Write, Addrs: addrs, Vals: vals}
}

// ScatterAdd atomically combines vals[i] into addrs[i] with the given RMW
// kind. vals of length 1 broadcasts a scalar (the paper's second form).
func ScatterAdd(name string, kind mem.Kind, addrs []mem.Addr, vals []mem.Word) Op {
	if !kind.IsScatterAdd() {
		panic(fmt.Sprintf("machine: ScatterAdd with non-RMW kind %v", kind))
	}
	if len(vals) != 1 && len(vals) != len(addrs) {
		panic(fmt.Sprintf("machine: scatter-add with %d addrs, %d vals", len(addrs), len(vals)))
	}
	return Op{Name: name, Kind: OpMem, MemKind: kind, Addrs: addrs, Vals: vals}
}

// Fence waits for all outstanding memory streams to complete.
func Fence() Op {
	return Op{Name: "fence", Kind: OpFence}
}

// Kernel models a compute kernel with the given total FP-operation count and
// SRF word traffic.
func Kernel(name string, flops, srfWords float64) Op {
	return Op{Name: name, Kind: OpKernel, Flops: flops, SRFWords: srfWords}
}

// IntKernel models a compute kernel of non-FP operations (comparisons,
// index arithmetic): it costs execution time like Kernel but does not count
// toward the FP Operations metric.
func IntKernel(name string, intOps, srfWords float64) Op {
	return Op{Name: name, Kind: OpKernel, IntOps: intOps, SRFWords: srfWords}
}

// Result accumulates the paper's three reported metrics plus component
// detail.
type Result struct {
	Cycles  uint64 // execution cycles
	FPOps   uint64 // kernel flops + scatter-add FU operations
	MemRefs uint64 // processor-issued word memory references

	SAStats    saunit.Stats
	CacheStats cache.Stats
	DRAMStats  dram.Stats
}

// Add accumulates other into r.
func (r *Result) Add(other Result) {
	r.Cycles += other.Cycles
	r.FPOps += other.FPOps
	r.MemRefs += other.MemRefs
}

// memStream is one in-flight memory stream operation bound to an address
// generator.
type memStream struct {
	op          Op
	tag         uint64 // request-ID tag (ID = tag<<32 | index)
	n           int
	issued      int
	responses   int
	needResp    bool
	startupLeft int    // cycles of AG/pipeline priming before first issue
	lane        int    // address-generator lane (span tracing only)
	start       uint64 // cycle the stream claimed its AG (span tracing only)
}

// done reports whether the stream has issued everything and received every
// expected response (writes and scatter-adds complete at issue; their drain
// is covered by the memory system's Busy state).
func (s *memStream) done() bool {
	return s.issued == s.n && (!s.needResp || s.responses == s.n)
}

// metrics are the address-generator performance counters.
type metrics struct {
	group    *stats.Group
	agIssued *stats.Counter   // word requests issued by the address generators
	agStalls *stats.Counter   // cycles some primed stream could not issue at all
	agActive *stats.Histogram // active streams, sampled every cycle
}

func newMetrics(g *stats.Group, ags int) metrics {
	return metrics{
		group:    g,
		agIssued: g.Counter("ag_issued"),
		agStalls: g.Counter("ag_stall_cycles"),
		agActive: g.Histogram("ag_active", ags+1),
	}
}

// Machine is one simulated node. All components are driven by a sim.Engine
// in consumer-before-producer order; the machine's own phases (address
// generation, response routing, stream retirement) are engine tickers too.
type Machine struct {
	cfg     Config
	eng     *sim.Engine
	dram    *dram.DRAM
	uniform *dram.Uniform
	banks   []*cache.Bank
	sas     []*saunit.Unit
	reg     *stats.Registry
	met     metrics

	active  []*memStream
	nextTag uint64
	tracer  func(cycle uint64, req mem.Request)

	tr       *span.Tracer
	laneBusy []bool // AG lane occupancy (span tracing only)

	kernelFlops uint64
	memRefs     uint64
}

// SetTracer installs a hook observing every memory request the address
// generators issue (nil disables tracing).
func (m *Machine) SetTracer(fn func(cycle uint64, req mem.Request)) { m.tracer = fn }

// SetSpanTracer installs a request-lifecycle tracer on the machine and
// every memory-system component, so sampled operations record their stage
// transitions from address-generator issue to reply. Install it before
// running ops; a nil tracer disables tracing everywhere.
func (m *Machine) SetSpanTracer(tr *span.Tracer) {
	m.tr = tr
	m.laneBusy = nil
	if tr != nil {
		m.laneBusy = make([]bool, m.cfg.AGs)
	}
	for i, sa := range m.sas {
		sa.SetSpanTracer(tr, fmt.Sprintf("saunit[%d]", i))
		if m.uniform != nil {
			// No cache below the unit: bypasses go straight to memory.
			sa.SetSpanDownstream(span.StageDRAM)
		}
	}
	for i, b := range m.banks {
		b.SetSpanTracer(tr, fmt.Sprintf("cache[%d]", i))
	}
	if m.dram != nil {
		m.dram.SetSpanTracer(tr, "dram")
	}
	if m.uniform != nil {
		m.uniform.SetSpanTracer(tr, "uniform")
	}
}

// SpanTracer returns the installed request-lifecycle tracer (nil if none).
func (m *Machine) SpanTracer() *span.Tracer { return m.tr }

// New constructs a machine.
func New(cfg Config) *Machine {
	if cfg.Clusters < 1 || cfg.AGWidth < 1 || cfg.SRFWordsPerCycle <= 0 {
		panic(fmt.Sprintf("machine: invalid config %+v", cfg))
	}
	m := &Machine{cfg: cfg, eng: sim.NewEngine(), reg: stats.NewRegistry()}
	m.met = newMetrics(m.reg.Group("machine"), cfg.AGs)
	injecting := cfg.Faults.Enabled()
	flt := cfg.Faults
	if injecting {
		flt = flt.WithDefaults()
	}
	if cfg.UniformMem != nil {
		m.uniform = dram.NewUniform(cfg.UniformMem.Latency, cfg.UniformMem.Interval, 64)
		m.sas = []*saunit.Unit{saunit.New(cfg.SA, m.uniform)}
		if injecting {
			m.sas[0].SetFaults(flt, "m.b0")
		}
	} else {
		m.dram = dram.New(cfg.DRAM)
		if injecting {
			m.dram.SetFaults(flt, "m")
		}
		for i := 0; i < cfg.Cache.Banks; i++ {
			b := cache.NewBank(cfg.Cache, i, m.dram, cache.Normal)
			m.banks = append(m.banks, b)
			m.sas = append(m.sas, saunit.New(cfg.SA, b))
			if injecting {
				b.SetFaults(flt, fmt.Sprintf("m.b%d", i))
				m.sas[i].SetFaults(flt, fmt.Sprintf("m.b%d", i))
			}
		}
	}
	for i, sa := range m.sas {
		m.reg.Adopt(fmt.Sprintf("saunit[%d]", i), sa.StatsGroup())
	}
	for i, b := range m.banks {
		m.reg.Adopt(fmt.Sprintf("cache[%d]", i), b.StatsGroup())
	}
	if m.dram != nil {
		m.reg.Adopt("dram", m.dram.StatsGroup())
	}

	// Engine order mirrors the machine pipeline: issue, scatter-add units,
	// cache banks, DRAM (+fill delivery), response routing, stream retire.
	// The machine's own phases are named types rather than closures so they
	// can implement sim.FastForwarder alongside sim.Ticker (and so phase
	// registration captures nothing per tick).
	m.eng.Add(issuePhase{m})
	for _, sa := range m.sas {
		m.eng.Add(sa)
	}
	for _, b := range m.banks {
		m.eng.Add(b)
	}
	if m.dram != nil {
		m.eng.Add(dramPhase{m})
	}
	if m.uniform != nil {
		m.eng.Add(m.uniform)
	}
	m.eng.Add(responsePhase{m})
	m.eng.Add(retirePhase{m})
	if cfg.LegacyStepping {
		m.eng.SetFastForward(false)
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Store returns the functional memory image for zero-time initialization and
// result readback. Call FlushCaches before reading results written through
// the timed path.
func (m *Machine) Store() *mem.Store {
	if m.uniform != nil {
		return m.uniform.Store()
	}
	return m.dram.Store()
}

// FlushCaches functionally writes all dirty cache lines into the DRAM store
// (zero simulated time). Use it between a timed run and result readback.
func (m *Machine) FlushCaches() {
	for _, b := range m.banks {
		b.FlushFunctional()
	}
}

// Now returns the machine's absolute cycle count.
func (m *Machine) Now() uint64 { return m.eng.Now() }

// StatsRegistry returns the machine's performance-counter registry.
func (m *Machine) StatsRegistry() *stats.Registry { return m.reg }

// StatsSnapshot returns the current values of every performance counter.
func (m *Machine) StatsSnapshot() stats.Snapshot { return m.reg.Snapshot() }

// StartTimeline begins recording a registry snapshot every interval cycles
// and returns the timeline being filled. Sampling (the only per-cycle cost
// of the counter layer beyond plain field increments) continues until
// StopTimeline is called.
func (m *Machine) StartTimeline(interval uint64) *stats.Timeline {
	tl := &stats.Timeline{Interval: interval}
	m.eng.SetSampler(interval, func(now uint64) {
		tl.Record(now, m.reg.Snapshot())
	})
	return tl
}

// StopTimeline detaches the sampler installed by StartTimeline.
func (m *Machine) StopTimeline() { m.eng.SetSampler(0, nil) }

// SetSampler installs a raw periodic callback on the machine's engine,
// invoked every interval cycles (including across fast-forwarded stretches).
// It shares the engine's single sampler slot with StartTimeline; interval 0
// or a nil fn detaches it.
func (m *Machine) SetSampler(interval uint64, fn func(now uint64)) {
	m.eng.SetSampler(interval, fn)
}

// unitFor routes an address to its scatter-add unit (one per cache bank; a
// single unit in uniform-memory mode).
func (m *Machine) unitFor(a mem.Addr) *saunit.Unit {
	if len(m.sas) == 1 {
		return m.sas[0]
	}
	return m.sas[cache.BankOf(a.Line(), len(m.banks))]
}

// tick advances the whole machine one cycle through the engine.
func (m *Machine) tick() { m.eng.Step() }

// issuePhase drives the address generators (see issueTick). Its quiescence
// contract: a primed stream with requests left is work now; a stream still
// priming wakes when its startup counter expires; fully issued streams wait
// on the memory system, which reports its own events.
type issuePhase struct{ m *Machine }

func (p issuePhase) Tick(now uint64) { p.m.issueTick(now) }

func (p issuePhase) NextEvent(now uint64) uint64 {
	ev := sim.Never
	for _, s := range p.m.active {
		if s.startupLeft > 0 {
			if t := now + uint64(s.startupLeft); t < ev {
				ev = t
			}
			continue
		}
		if s.issued < s.n {
			return now
		}
	}
	return ev
}

// Skip applies the per-cycle effects of skipped idle issue Ticks: the
// active-stream occupancy sample and the startup countdown (the engine
// never jumps past a startup expiry, so the subtraction cannot underflow).
// Streams in startup never count as AG stalls, so that counter is unmoved.
func (p issuePhase) Skip(now, cycles uint64) {
	m := p.m
	m.met.agActive.ObserveN(len(m.active), cycles)
	for _, s := range m.active {
		if s.startupLeft > 0 {
			s.startupLeft -= int(cycles)
		}
	}
}

// dramPhase advances DRAM and delivers completed line reads to their banks.
type dramPhase struct{ m *Machine }

func (p dramPhase) Tick(now uint64)             { p.m.dramTick(now) }
func (p dramPhase) NextEvent(now uint64) uint64 { return p.m.dram.NextEvent(now) }
func (p dramPhase) Skip(now, cycles uint64)     { p.m.dram.Skip(now, cycles) }

// responsePhase routes scatter-add unit responses back to their streams. It
// is purely reactive: a deliverable response is reported as work by the
// unit's own NextEvent (non-empty upstream queue), so it never wakes the
// engine itself.
type responsePhase struct{ m *Machine }

func (p responsePhase) Tick(now uint64)             { p.m.responseTick(now) }
func (p responsePhase) NextEvent(now uint64) uint64 { return sim.Never }
func (p responsePhase) Skip(now, cycles uint64)     {}

// retirePhase removes completed streams. A completed-but-unretired stream is
// work now (retirement frees its address generator next cycle, exactly as
// under per-cycle stepping); anything else waits on responses, which the
// memory system reports.
type retirePhase struct{ m *Machine }

func (p retirePhase) Tick(now uint64) { p.m.retireTick(now) }

func (p retirePhase) NextEvent(now uint64) uint64 {
	for _, s := range p.m.active {
		if s.done() {
			return now
		}
	}
	return sim.Never
}

func (p retirePhase) Skip(now, cycles uint64) {}

// issueTick: each active stream owns one address generator and may issue up
// to AGWidth requests per cycle, in order (head-of-line blocking on a busy
// bank models the hot-bank effect of Figure 7).
func (m *Machine) issueTick(now uint64) {
	m.met.agActive.Observe(len(m.active))
	stalled := false
	for _, s := range m.active {
		if s.startupLeft > 0 {
			s.startupLeft--
			continue
		}
		issuedBefore := s.issued
		for w := 0; w < m.cfg.AGWidth && s.issued < s.n; w++ {
			a := s.op.addr(s.issued)
			u := m.unitFor(a)
			if !u.CanAccept(now) {
				break
			}
			req := mem.Request{
				ID:   s.tag<<32 | uint64(s.issued),
				Kind: s.op.MemKind, Addr: a, Val: s.op.val(s.issued),
			}
			if !u.Accept(now, req) {
				break
			}
			if m.tracer != nil {
				m.tracer(now, req)
			}
			if m.tr != nil && m.tr.SampleNext() {
				m.tr.OpBegin(0, req.ID, req.Kind, req.Addr, now)
			}
			s.issued++
			m.met.agIssued.Inc()
		}
		if s.issued == issuedBefore && s.issued < s.n {
			stalled = true
		}
	}
	if stalled {
		m.met.agStalls.Inc()
	}
}

// dramTick advances DRAM and delivers completed line reads to their banks.
func (m *Machine) dramTick(now uint64) {
	m.dram.Tick(now)
	for {
		r, ok := m.dram.PopResponse(now)
		if !ok {
			break
		}
		m.banks[cache.BankOf(r.Line, len(m.banks))].Fill(now, r.Line, r.Data)
	}
}

// responseTick routes scatter-add unit responses back to their streams by
// ID tag.
func (m *Machine) responseTick(now uint64) {
	for _, sa := range m.sas {
		for {
			r, ok := sa.PopResponse(now)
			if !ok {
				break
			}
			if s := m.streamByTag(r.ID >> 32); s != nil {
				s.responses++
				if m.tr != nil {
					m.tr.OpEnd(0, r.ID, now)
				}
				if s.op.OnResp != nil {
					r.ID &= (1 << 32) - 1 // restore the caller's index
					s.op.OnResp(r)
				}
			}
		}
	}
}

// retireTick removes completed streams, freeing their address generators.
func (m *Machine) retireTick(now uint64) {
	live := m.active[:0]
	for _, s := range m.active {
		if !s.done() {
			live = append(live, s)
			continue
		}
		if m.tr != nil && s.lane < len(m.laneBusy) {
			// One serialized activity span per AG lane per stream.
			m.tr.Span(fmt.Sprintf("ag[%d]", s.lane),
				fmt.Sprintf("%s n=%d", s.op.Name, s.n), s.start, now)
			m.laneBusy[s.lane] = false
		}
	}
	m.active = live
}

// streamByTag finds the active stream with the given request tag.
func (m *Machine) streamByTag(tag uint64) *memStream {
	for _, s := range m.active {
		if s.tag == tag {
			return s
		}
	}
	return nil
}

// memSystemBusy reports whether any memory-system component holds work.
func (m *Machine) memSystemBusy() bool {
	for _, sa := range m.sas {
		if sa.Busy() {
			return true
		}
	}
	// saunit.Busy covers its downstream bank/uniform; DRAM covered via banks'
	// MSHRs? Not entirely: a write-back accepted by DRAM leaves bank idle.
	if m.dram != nil && m.dram.Busy() {
		return true
	}
	if m.uniform != nil && m.uniform.Busy() {
		return true
	}
	return false
}

// neverDone is the RunUntil predicate for fixed-length advances; a
// package-level func keeps the idle hot path allocation-free.
func neverDone() bool { return false }

// idle advances cycles without starting new work (kernel execution time);
// outstanding asynchronous streams keep issuing underneath. It runs through
// the engine's RunUntil so dead stretches (no active streams, memory system
// drained or waiting on a timer) fast-forward instead of ticking.
func (m *Machine) idle(cycles uint64) {
	m.eng.RunUntil(neverDone, m.eng.Now()+cycles)
}

// RunOp executes one stream operation and returns its metrics. Memory
// operations with Async set return as soon as an address generator is
// claimed; everything else runs to completion.
func (m *Machine) RunOp(op Op) Result {
	start := m.eng.Now()
	memRefsBefore := m.memRefs
	saBefore := m.saStats()
	switch op.Kind {
	case OpKernel:
		flopCyc := (op.Flops + op.IntOps) / m.cfg.PeakFlopsPerCycle()
		srfCyc := op.SRFWords / m.cfg.SRFWordsPerCycle
		cyc := uint64(m.cfg.KernelStartup)
		if flopCyc > srfCyc {
			cyc += uint64(flopCyc + 0.999999)
		} else {
			cyc += uint64(srfCyc + 0.999999)
		}
		m.idle(cyc)
		m.kernelFlops += uint64(op.Flops)
	case OpMem:
		m.runMemOp(op)
	case OpFence:
		m.fence()
	default:
		panic(fmt.Sprintf("machine: unknown op kind %d", op.Kind))
	}
	saAfter := m.saStats()
	return Result{
		Cycles:  m.eng.Now() - start,
		FPOps:   uint64(op.Flops) + fpDelta(saBefore, saAfter),
		MemRefs: m.memRefs - memRefsBefore,
	}
}

// fence runs until every stream has completed and the memory system has
// drained. The predicate reads only component state, which cannot change
// across skipped cycles, so it is safe under fast-forward.
func (m *Machine) fence() {
	limit := m.eng.Now() + opDeadlockCycles
	if _, ok := m.eng.RunUntil(m.drained, limit); !ok {
		panic("machine: fence did not drain; likely deadlock")
	}
}

// drained reports fence completion: no active streams and an idle memory
// system.
func (m *Machine) drained() bool {
	return len(m.active) == 0 && !m.memSystemBusy()
}

// fpDelta counts floating-point FU operations performed between two stat
// snapshots. Integer scatter-adds use the same datapath but do not count
// toward the paper's "FP Operations" metric.
func fpDelta(before, after saunit.Stats) uint64 {
	return after.FUOpsFP - before.FUOpsFP
}

func (m *Machine) saStats() saunit.Stats {
	var s saunit.Stats
	for _, sa := range m.sas {
		st := sa.Stats()
		s.SARequests += st.SARequests
		s.Bypassed += st.Bypassed
		s.MemReads += st.MemReads
		s.MemWrites += st.MemWrites
		s.FUOps += st.FUOps
		s.FUOpsFP += st.FUOpsFP
		s.Combined += st.Combined
		s.StallFull += st.StallFull
		s.EagerOps += st.EagerOps
	}
	return s
}

// runMemOp claims an address generator for the stream, then (for
// synchronous ops) runs it to completion plus a drain of the memory system.
func (m *Machine) runMemOp(op Op) {
	n := op.count()
	m.memRefs += uint64(n)
	opStart := m.eng.Now()
	// Claim an address generator (Table 1: 2), waiting if all are busy.
	if len(m.active) >= m.cfg.AGs {
		agFree := func() bool { return len(m.active) < m.cfg.AGs }
		if _, ok := m.eng.RunUntil(agFree, opStart+opDeadlockCycles); !ok {
			panic(fmt.Sprintf("machine: op %q waited %d cycles for an AG; likely deadlock", op.Name, m.eng.Now()-opStart))
		}
	}
	m.nextTag++
	s := &memStream{
		op: op, tag: m.nextTag, n: n,
		needResp:    op.MemKind == mem.Read || op.MemKind.IsFetch(),
		startupLeft: m.cfg.MemOpStartup,
	}
	if m.tr != nil {
		s.start = m.eng.Now()
		for i, busy := range m.laneBusy {
			if !busy {
				s.lane, m.laneBusy[i] = i, true
				break
			}
		}
	}
	m.active = append(m.active, s)
	if op.Async {
		return
	}
	// Synchronous semantics: reads are complete when every response has
	// arrived; writes and scatter-adds additionally wait for the memory
	// system to drain so their data is globally visible when RunOp returns.
	opDone := func() bool { return s.done() && (s.needResp || !m.memSystemBusy()) }
	if _, ok := m.eng.RunUntil(opDone, opStart+opDeadlockCycles); !ok {
		panic(fmt.Sprintf("machine: op %q has run %d cycles; likely deadlock", op.Name, m.eng.Now()-opStart))
	}
}

// opDeadlockCycles guards against flow-control deadlock: single ops in this
// repository complete in well under this many cycles.
const opDeadlockCycles = uint64(500_000_000)

// Run executes a program sequentially and returns aggregate metrics.
func (m *Machine) Run(prog []Op) Result {
	start := m.eng.Now()
	memRefsBefore := m.memRefs
	flopsBefore := m.kernelFlops
	saBefore := m.saStats()
	for _, op := range prog {
		m.RunOp(op)
	}
	saAfter := m.saStats()
	return Result{
		Cycles:     m.eng.Now() - start,
		FPOps:      (m.kernelFlops - flopsBefore) + fpDelta(saBefore, saAfter),
		MemRefs:    m.memRefs - memRefsBefore,
		SAStats:    saAfter,
		CacheStats: m.cacheStats(),
		DRAMStats:  m.dramStats(),
	}
}

// ComponentStats returns cumulative scatter-add unit, cache, and DRAM
// counters for the machine's lifetime (useful after driving the machine
// through RunOp rather than Run).
func (m *Machine) ComponentStats() (saunit.Stats, cache.Stats, dram.Stats) {
	return m.saStats(), m.cacheStats(), m.dramStats()
}

func (m *Machine) cacheStats() cache.Stats {
	var s cache.Stats
	for _, b := range m.banks {
		st := b.Stats()
		s.Hits += st.Hits
		s.Misses += st.Misses
		s.MergedMiss += st.MergedMiss
		s.Evictions += st.Evictions
		s.WriteBacks += st.WriteBacks
		s.SumBacks += st.SumBacks
		s.Stalls += st.Stalls
	}
	return s
}

func (m *Machine) dramStats() dram.Stats {
	if m.dram == nil {
		return dram.Stats{}
	}
	return m.dram.Stats()
}
