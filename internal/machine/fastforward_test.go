package machine

import (
	"testing"

	"scatteradd/internal/mem"
)

// ffProgram is a mixed workload exercising every engine advance path: idle
// (kernels), AG-claim waits, sync completion waits, async overlap, and
// fence drain.
func ffProgram() []Op {
	const n = 600
	addrs := make([]mem.Addr, n)
	vals := make([]mem.Word, n)
	seed := uint64(99)
	for i := range addrs {
		seed = seed*6364136223846793005 + 1442695040888963407
		addrs[i] = mem.Addr(seed % 512)
		vals[i] = mem.I64(1)
	}
	sa := ScatterAdd("sa", mem.AddI64, addrs, vals)
	saAsync := sa
	saAsync.Name = "sa-async"
	saAsync.Async = true
	st := make([]mem.Word, 256)
	for i := range st {
		st[i] = mem.F64(float64(i))
	}
	return []Op{
		Kernel("warmup", 50000, 0),
		sa,
		StoreStream("store", 4096, st),
		saAsync,
		Kernel("overlap", 100000, 0),
		Fence(),
		LoadStream("load", 4096, len(st)),
		Kernel("tail", 3000, 128),
	}
}

// ffTrace runs the program op by op on a fresh machine and records the
// engine clock after every op plus the op results.
func ffTrace(cfg Config) (*Machine, []uint64, []Result) {
	m := New(cfg)
	var nows []uint64
	var results []Result
	for _, op := range ffProgram() {
		results = append(results, m.RunOp(op))
		nows = append(nows, m.Now())
	}
	m.FlushCaches()
	nows = append(nows, m.Now())
	return m, nows, results
}

// TestMachineFastForwardMatchesLegacy is the machine-level cycle-exactness
// check: the same program on the same configuration must leave the clock at
// the same cycle after every op, return identical per-op results, produce
// identical memory contents, and identical performance counters whether the
// engine fast-forwards dead stretches or ticks through them.
func TestMachineFastForwardMatchesLegacy(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"cached", smallConfig()},
		{"uniform", uniformConfig(64, 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fastCfg, slowCfg := tc.cfg, tc.cfg
			slowCfg.LegacyStepping = true
			fm, fNows, fRes := ffTrace(fastCfg)
			sm, sNows, sRes := ffTrace(slowCfg)
			for i := range fNows {
				if fNows[i] != sNows[i] {
					t.Fatalf("clock diverges after op %d: fast-forward %d, legacy %d", i, fNows[i], sNows[i])
				}
			}
			for i := range fRes {
				if fRes[i] != sRes[i] {
					t.Errorf("result of op %d differs: fast-forward %+v, legacy %+v", i, fRes[i], sRes[i])
				}
			}
			fGot := fm.Store().ReadI64Slice(0, 512)
			sGot := sm.Store().ReadI64Slice(0, 512)
			for b := range fGot {
				if fGot[b] != sGot[b] {
					t.Fatalf("memory word %d differs: %d vs %d", b, fGot[b], sGot[b])
				}
			}
			fSnap, sSnap := fm.StatsSnapshot(), sm.StatsSnapshot()
			if len(fSnap.Entries) != len(sSnap.Entries) {
				t.Fatalf("snapshot sizes differ: %d vs %d", len(fSnap.Entries), len(sSnap.Entries))
			}
			for i := range fSnap.Entries {
				if fSnap.Entries[i] != sSnap.Entries[i] {
					t.Errorf("counter %q differs: fast-forward %d, legacy %d",
						fSnap.Entries[i].Key, fSnap.Entries[i].Val, sSnap.Entries[i].Val)
				}
			}
		})
	}
}

// TestIdleFastForwardExactCycles checks the rewritten idle path (kernels
// run through RunUntil) advances exactly the kernel's cycle cost on an
// otherwise-quiet machine, fast-forwarded or not.
func TestIdleFastForwardExactCycles(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		cfg := smallConfig()
		cfg.LegacyStepping = legacy
		m := New(cfg)
		before := m.Now()
		res := m.RunOp(Kernel("k", 100000, 0))
		if got := m.Now() - before; got != res.Cycles {
			t.Fatalf("legacy=%v: clock advanced %d, result says %d", legacy, got, res.Cycles)
		}
		if res.Cycles == 0 {
			t.Fatalf("legacy=%v: kernel charged no cycles", legacy)
		}
	}
}
