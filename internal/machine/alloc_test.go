package machine

import (
	"testing"

	"scatteradd/internal/mem"
)

// TestTickSteadyStateAllocationFree pins the data-layout contract of the
// simulation hot path: with a scatter-add stream in flight, a machine tick
// allocates nothing once scratch buffers are warm. The scatter-add unit's
// chain scratch and slice-backed active set exist for this property —
// before that pass, every tick with a pending chain allocated a fresh
// slice. Benchmarks report the same number, but only under -bench; this
// keeps the guard in every `go test` run.
func TestTickSteadyStateAllocationFree(t *testing.T) {
	m := New(DefaultConfig())
	const n = 1 << 14
	addrs := make([]mem.Addr, n)
	for i := range addrs {
		addrs[i] = mem.Addr((i * 61) % 8192)
	}
	op := ScatterAdd("alloc", mem.AddI64, addrs, []mem.Word{mem.I64(1)})
	op.Async = true
	m.RunOp(op)
	// Warm every queue, chain buffer, and scratch slice to capacity.
	for i := 0; i < 4096; i++ {
		m.tick()
	}
	avg := testing.AllocsPerRun(2048, func() {
		if len(m.active) == 0 {
			m.RunOp(op)
		}
		m.tick()
	})
	// RunOp refills allocate; ticks must not. Refills are rare (one per
	// ~n issued requests), so anything above a sliver of an alloc per
	// tick means the hot path regressed.
	if avg > 0.01 {
		t.Fatalf("steady-state tick allocates %.3f allocs/op, want ~0", avg)
	}
}

// TestShardedTickSteadyStateAllocationFree is the same hot-path pin for the
// sharded engine: once the spin pool and every per-shard scratch buffer are
// warm, fanning a cycle out over 4 bank-cluster shards must allocate nothing
// (the phase dispatch is an atomic bump, the shard closure is prebound, and
// DRAM responses drain through head-indexed slabs).
func TestShardedTickSteadyStateAllocationFree(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 4
	m := New(cfg)
	const n = 1 << 14
	addrs := make([]mem.Addr, n)
	for i := range addrs {
		addrs[i] = mem.Addr((i * 61) % 8192)
	}
	op := ScatterAdd("alloc", mem.AddI64, addrs, []mem.Word{mem.I64(1)})
	op.Async = true
	m.RunOp(op)
	for i := 0; i < 4096; i++ {
		m.tick()
	}
	avg := testing.AllocsPerRun(2048, func() {
		if len(m.active) == 0 {
			m.RunOp(op)
		}
		m.tick()
	})
	if avg > 0.01 {
		t.Fatalf("sharded steady-state tick allocates %.3f allocs/op, want ~0", avg)
	}
	m.Close()
}

// TestRunOpSteadyStateAllocationFree pins the op-grain arena contract
// (ROADMAP: "arena-allocate requests"): once the stream slab, the prebound
// RunUntil predicates, and every component scratch buffer are warm, a whole
// synchronous scatter-add RunOp — thousands of requests through issue,
// banks, DRAM, and drain — performs no per-stream or per-wait allocation.
func TestRunOpSteadyStateAllocationFree(t *testing.T) {
	m := New(DefaultConfig())
	const n = 2048
	addrs := make([]mem.Addr, n)
	for i := range addrs {
		addrs[i] = mem.Addr((i * 61) % 4096)
	}
	op := ScatterAdd("arena", mem.AddI64, addrs, []mem.Word{mem.I64(1)})
	for i := 0; i < 3; i++ {
		m.RunOp(op) // warm slabs, queues, MSHR maps, page map
	}
	avg := testing.AllocsPerRun(32, func() { m.RunOp(op) })
	if avg > 0.01 {
		t.Fatalf("steady-state RunOp allocates %.3f allocs/op, want ~0", avg)
	}
}
