package machine

import (
	"testing"

	"scatteradd/internal/mem"
)

// asyncAddrs builds a scatter-add address pattern over a range.
func asyncAddrs(n, rng int) []mem.Addr {
	addrs := make([]mem.Addr, n)
	seed := uint64(77)
	for i := range addrs {
		seed = seed*6364136223846793005 + 1442695040888963407
		addrs[i] = mem.Addr(seed % uint64(rng))
	}
	return addrs
}

func TestAsyncOverlapFasterThanSync(t *testing.T) {
	// scatter-add followed by an independent kernel: issuing the scatter-add
	// asynchronously should overlap it with the kernel (§1: "the processor's
	// main execution unit can continue running the program, while the sums
	// are being updated in memory").
	addrs := asyncAddrs(4096, 1024)
	one := []mem.Word{mem.I64(1)}
	kernel := Kernel("work", 200000, 0) // ~1563 cycles of compute

	sync := New(smallConfig())
	sa := ScatterAdd("sa", mem.AddI64, addrs, one)
	rSync := sync.Run([]Op{sa, kernel})

	async := New(smallConfig())
	saAsync := sa
	saAsync.Async = true
	rAsync := async.Run([]Op{saAsync, kernel, Fence()})

	if rAsync.Cycles >= rSync.Cycles {
		t.Fatalf("async %d cycles not faster than sync %d", rAsync.Cycles, rSync.Cycles)
	}
	// Both orders must produce the same sums.
	sync.FlushCaches()
	async.FlushCaches()
	for i := 0; i < 1024; i++ {
		a, b := sync.Store().LoadI64(mem.Addr(i)), async.Store().LoadI64(mem.Addr(i))
		if a != b {
			t.Fatalf("bin %d: sync %d vs async %d", i, a, b)
		}
	}
}

func TestFenceAloneIsCheap(t *testing.T) {
	m := New(smallConfig())
	res := m.RunOp(Fence())
	if res.Cycles != 0 {
		t.Fatalf("empty fence took %d cycles", res.Cycles)
	}
}

func TestAsyncRespectsAGLimit(t *testing.T) {
	cfg := smallConfig()
	cfg.AGs = 2
	m := New(cfg)
	mk := func(base mem.Addr) Op {
		op := ScatterAdd("sa", mem.AddI64, []mem.Addr{base, base + 1, base + 2, base + 3}, []mem.Word{mem.I64(1)})
		op.Async = true
		return op
	}
	r1 := m.RunOp(mk(0))
	r2 := m.RunOp(mk(100))
	if r1.Cycles != 0 || r2.Cycles != 0 {
		t.Fatalf("async starts should be immediate with free AGs: %d, %d", r1.Cycles, r2.Cycles)
	}
	r3 := m.RunOp(mk(200)) // must wait for an AG
	if r3.Cycles == 0 {
		t.Fatal("third async op should have waited for an address generator")
	}
	m.RunOp(Fence())
	m.FlushCaches()
	for _, base := range []mem.Addr{0, 100, 200} {
		for i := mem.Addr(0); i < 4; i++ {
			if got := m.Store().LoadI64(base + i); got != 1 {
				t.Fatalf("addr %d = %d", base+i, got)
			}
		}
	}
}

func TestAsyncGatherDeliversAllResponses(t *testing.T) {
	m := New(smallConfig())
	m.Store().WriteI64Slice(0, []int64{10, 11, 12, 13, 14, 15, 16, 17})
	var got []int64
	op := Gather("g", []mem.Addr{7, 0, 3, 3})
	op.Async = true
	op.OnResp = func(r mem.Response) { got = append(got, mem.AsI64(r.Val)) }
	m.RunOp(op)
	m.RunOp(Fence())
	if len(got) != 4 {
		t.Fatalf("got %d responses", len(got))
	}
	sum := int64(0)
	for _, v := range got {
		sum += v
	}
	if sum != 17+10+13+13 {
		t.Fatalf("response values wrong: %v", got)
	}
}

func TestTwoConcurrentStreamsInterleave(t *testing.T) {
	// Two async streams to disjoint regions should finish in less time than
	// the sum of running them back-to-back... at minimum, both must land.
	m := New(smallConfig())
	a := StoreStream("s1", 0, make([]mem.Word, 512))
	b := StoreStream("s2", 4096, make([]mem.Word, 512))
	a.Async, b.Async = true, true
	for i := range a.Vals {
		a.Vals[i] = mem.I64(int64(i))
		b.Vals[i] = mem.I64(int64(-i))
	}
	m.RunOp(a)
	m.RunOp(b)
	m.RunOp(Fence())
	m.FlushCaches()
	if m.Store().LoadI64(100) != 100 || m.Store().LoadI64(4096+100) != -100 {
		t.Fatal("concurrent streams corrupted data")
	}
}
