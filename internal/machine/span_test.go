package machine

import (
	"bytes"
	"testing"

	"scatteradd/internal/mem"
	"scatteradd/internal/span"
)

// saProgram builds a deterministic scatter-add workload.
func saProgram(n, rng int) []Op {
	addrs := make([]mem.Addr, n)
	for i := range addrs {
		addrs[i] = mem.Addr((i * 17) % rng)
	}
	return []Op{ScatterAdd("spans", mem.AddI64, addrs, []mem.Word{mem.I64(1)})}
}

// TestSpanTracerObservesLifecycles checks the wiring end to end on the full
// Table 1 machine: sampled ops complete, visit the expected stages, and
// their timestamps are consistent.
func TestSpanTracerObservesLifecycles(t *testing.T) {
	m := New(DefaultConfig())
	tr := span.New(4)
	m.SetSpanTracer(tr)
	m.Run(saProgram(512, 128))
	ops := tr.Ops()
	if len(ops) == 0 {
		t.Fatal("no ops sampled")
	}
	if live := tr.Live(); live != 0 {
		t.Fatalf("%d sampled ops never completed", live)
	}
	for i, op := range ops {
		if op.End < op.Start {
			t.Fatalf("op %d: End %d < Start %d", i, op.End, op.Start)
		}
		if len(op.Trans) == 0 || op.Trans[0].Stage != span.StageBankQ {
			t.Fatalf("op %d: lifecycle does not start in the bank queue: %+v", i, op.Trans)
		}
		for j := 1; j < len(op.Trans); j++ {
			if op.Trans[j].Cycle < op.Trans[j-1].Cycle {
				t.Fatalf("op %d: transitions not monotone: %+v", i, op.Trans)
			}
		}
	}
	rep := span.Aggregate(ops)
	if rep.Ops != len(ops) || rep.Mean <= 0 {
		t.Fatalf("report: %+v", rep)
	}
	// A scatter-add must pass through the combining store and the FPU.
	seen := map[span.Stage]bool{}
	for _, st := range rep.Stages {
		seen[st.Stage] = true
	}
	if !seen[span.StageCS] || !seen[span.StageFU] {
		t.Fatalf("stages missing combining-store/fpu: %+v", rep.Stages)
	}
	// Component tracks must have produced activity spans too.
	if len(tr.Events()) == 0 {
		t.Fatal("no component track events recorded")
	}
}

// TestSpanTracerDoesNotPerturbTiming runs the same workload bare, with the
// stats sampler, with the span tracer, and with both, and requires the
// identical cycle count: observability must never change simulated time.
func TestSpanTracerDoesNotPerturbTiming(t *testing.T) {
	run := func(sampler bool, rate int) (uint64, *span.Tracer) {
		m := New(DefaultConfig())
		var tr *span.Tracer
		if rate > 0 {
			tr = span.New(rate)
			m.SetSpanTracer(tr)
		}
		if sampler {
			m.StartTimeline(64)
			defer m.StopTimeline()
		}
		res := m.Run(saProgram(512, 128))
		return res.Cycles, tr
	}
	bare, _ := run(false, 0)
	withSampler, _ := run(true, 0)
	withTracer, tr1 := run(false, 2)
	withBoth, tr2 := run(true, 2)
	if withSampler != bare {
		t.Fatalf("stats sampler changed cycles: %d != %d", withSampler, bare)
	}
	if withTracer != bare {
		t.Fatalf("span tracer changed cycles: %d != %d", withTracer, bare)
	}
	if withBoth != bare {
		t.Fatalf("sampler+tracer changed cycles: %d != %d", withBoth, bare)
	}
	// The attribution report must not depend on whether the sampler ran.
	r1, r2 := span.Aggregate(tr1.Ops()), span.Aggregate(tr2.Ops())
	if r1.Format("") != r2.Format("") {
		t.Fatalf("report differs with sampler:\n%s\nvs\n%s", r1.Format(""), r2.Format(""))
	}
}

// TestSpanReportDeterminism requires byte-identical reports and Perfetto
// exports across repeated runs of the same configuration.
func TestSpanReportDeterminism(t *testing.T) {
	export := func() (string, []byte) {
		m := New(DefaultConfig())
		tr := span.New(8)
		m.SetSpanTracer(tr)
		m.Run(saProgram(256, 64))
		var buf bytes.Buffer
		if err := span.WriteTraceEvents(&buf, []span.Process{tr.Process(0, "machine")}); err != nil {
			t.Fatal(err)
		}
		return span.Aggregate(tr.Ops()).Format("  "), buf.Bytes()
	}
	rep1, json1 := export()
	rep2, json2 := export()
	if rep1 != rep2 {
		t.Fatalf("reports differ:\n%s\nvs\n%s", rep1, rep2)
	}
	if !bytes.Equal(json1, json2) {
		t.Fatal("perfetto exports differ between identical runs")
	}
	if _, err := span.ValidateTraceJSON(json1); err != nil {
		t.Fatalf("export does not validate: %v", err)
	}
}

// TestSpanTracerDisabledIsFree checks the nil-tracer path stays inert: no
// ops, no events, no panics, and SetSpanTracer(nil) detaches cleanly.
func TestSpanTracerDisabledIsFree(t *testing.T) {
	m := New(DefaultConfig())
	tr := span.New(1)
	m.SetSpanTracer(tr)
	m.SetSpanTracer(nil)
	m.Run(saProgram(64, 16))
	if len(tr.Ops()) != 0 || len(tr.Events()) != 0 {
		t.Fatal("detached tracer still observed activity")
	}
	if m.SpanTracer() != nil {
		t.Fatal("SpanTracer not cleared")
	}
}
