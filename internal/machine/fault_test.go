package machine

import (
	"reflect"
	"strings"
	"testing"

	"scatteradd/internal/fault"
	"scatteradd/internal/mem"
)

// chaosMachine returns a Table 1 machine with every single-node injector
// cranked high enough that a short run exercises stalls, windows, scrubs,
// and FU retries.
func chaosMachine(legacy bool) *Machine {
	cfg := DefaultConfig()
	fc := fault.DefaultChaos()
	fc.DRAMStallRate = 0.05
	fc.DRAMWindowEvery = 2_000
	fc.DRAMWindowSpan = 100
	fc.CSCorruptRate = 0.01
	fc.FUErrorRate = 0.01
	cfg.Faults = fc
	cfg.LegacyStepping = legacy
	return New(cfg)
}

// chaosOp builds a scatter-add over a hot address range (collisions force
// combining-store residency, so corruption scrubs have something to hit).
func chaosOp(n, rng int) Op {
	addrs := make([]mem.Addr, n)
	vals := make([]mem.Word, n)
	state := uint64(0xC0FFEE)
	for i := range addrs {
		state = state*6364136223846793005 + 1442695040888963407
		addrs[i] = mem.Addr(state % uint64(rng))
		vals[i] = mem.I64(int64(i%7 + 1))
	}
	return ScatterAdd("chaos", mem.AddI64, addrs, vals)
}

// TestChaosMachineExact: with every injector firing, the machine's reduction
// is still bit-exact — detected faults cost cycles, never sums.
func TestChaosMachineExact(t *testing.T) {
	const n, rng = 4096, 512
	op := chaosOp(n, rng)
	want := make(map[mem.Addr]int64)
	for i := 0; i < n; i++ {
		want[op.Addrs[i]] += mem.AsI64(op.Vals[i])
	}

	m := chaosMachine(false)
	m.RunOp(op)
	m.FlushCaches()
	for a, w := range want {
		if got := m.Store().LoadI64(a); got != w {
			t.Fatalf("addr %d: got %d, want %d", a, got, w)
		}
	}

	// The run must actually have been perturbed: at these rates a 4096-op
	// trace fires every injector class.
	fired := map[string]bool{}
	for _, e := range m.StatsSnapshot().Entries {
		if strings.Contains(e.Key, "fault_") && e.Val > 0 {
			fired[e.Key[strings.LastIndex(e.Key, "/")+1:]] = true
		}
	}
	for _, key := range []string{"fault_stalls", "fault_fu_retries"} {
		if !fired[key] {
			t.Errorf("injector %s never fired (fired: %v)", key, fired)
		}
	}
}

// TestChaosMachineFFMatchesLegacy: fault draws happen only at event grain,
// so fast-forward and per-cycle stepping consume identical streams and land
// on identical counters.
func TestChaosMachineFFMatchesLegacy(t *testing.T) {
	run := func(legacy bool) (uint64, interface{}) {
		m := chaosMachine(legacy)
		m.RunOp(chaosOp(2048, 256))
		return m.Now(), m.StatsSnapshot()
	}
	ffCyc, ffSnap := run(false)
	lgCyc, lgSnap := run(true)
	if ffCyc != lgCyc {
		t.Fatalf("fast-forward ran %d cycles, per-cycle %d", ffCyc, lgCyc)
	}
	if !reflect.DeepEqual(ffSnap, lgSnap) {
		t.Fatal("counter snapshots diverge between stepping modes under faults")
	}
}

// TestZeroFaultConfigIdentical: an explicit zero fault.Config is
// indistinguishable from no fault configuration at all.
func TestZeroFaultConfigIdentical(t *testing.T) {
	run := func(withZero bool) (uint64, interface{}) {
		cfg := DefaultConfig()
		if withZero {
			cfg.Faults = fault.Config{}
		}
		m := New(cfg)
		m.RunOp(chaosOp(1024, 128))
		return m.Now(), m.StatsSnapshot()
	}
	bc, bs := run(false)
	zc, zs := run(true)
	if bc != zc || !reflect.DeepEqual(bs, zs) {
		t.Fatal("zero fault config perturbed the machine")
	}
}
