package machine

import (
	"testing"
	"testing/quick"

	"scatteradd/internal/dram"
	"scatteradd/internal/mem"
)

// The simulator's defining meta-property: timing parameters (cache size,
// bank count, combining-store size, FU latency, DRAM model, write policy)
// must never change functional results — only cycle counts. These tests
// sweep configurations and demand bit-identical integer scatter-add output.

// configVariants returns a spread of legal machine configurations.
func configVariants() []Config {
	var out []Config
	base := DefaultConfig()
	base.KernelStartup = 4
	base.MemOpStartup = 2

	small := base
	small.Cache.TotalLines = 128
	small.Cache.Ways = 2

	oneBank := base
	oneBank.Cache.Banks = 1
	oneBank.Cache.PortWidth = 8
	oneBank.SA.PortWidth = 8

	tinyCS := base
	tinyCS.SA.Entries = 2
	tinyCS.SA.InQDepth = 2

	slowFU := base
	slowFU.SA.FULatency = 13

	fifo := base
	fifo.DRAM.Policy = dram.FIFO

	noAlloc := base
	noAlloc.Cache.WriteNoAllocate = true
	noAlloc.Cache.WCBEntries = 2

	ordered := base
	ordered.SA.OrderedChains = true

	eager := base
	eager.SA.EagerCombine = true

	uniform := base
	uniform.UniformMem = &UniformMemConfig{Latency: 37, Interval: 3}

	narrowAG := base
	narrowAG.AGWidth = 1

	return append(out, base, small, oneBank, tinyCS, slowFU, fifo, noAlloc, ordered, eager, uniform, narrowAG)
}

func TestScatterAddInvariantAcrossConfigs(t *testing.T) {
	const rng = 300
	addrs := asyncAddrs(3000, rng)
	vals := make([]mem.Word, len(addrs))
	for i := range vals {
		vals[i] = mem.I64(int64(i%17 - 8))
	}
	ref := map[mem.Addr]int64{}
	for i, a := range addrs {
		ref[a] += mem.AsI64(vals[i])
	}
	for ci, cfg := range configVariants() {
		m := New(cfg)
		m.Run([]Op{ScatterAdd("x", mem.AddI64, addrs, vals)})
		m.FlushCaches()
		for a, want := range ref {
			if got := m.Store().LoadI64(a); got != want {
				t.Fatalf("config %d: addr %d = %d want %d", ci, a, got, want)
			}
		}
	}
}

func TestMixedProgramInvariantAcrossConfigs(t *testing.T) {
	// A program with writes, gathers, kernels, and scatter-adds.
	writeVals := make([]mem.Word, 200)
	for i := range writeVals {
		writeVals[i] = mem.F64(float64(i) / 3)
	}
	saAddrs := asyncAddrs(800, 64)
	for ci, cfg := range configVariants() {
		m := New(cfg)
		gatherSum := 0.0
		g := Gather("g", seqAddrsTest(1024, 200))
		g.OnResp = func(r mem.Response) { gatherSum += mem.AsF64(r.Val) }
		m.Run([]Op{
			StoreStream("w", 1024, writeVals),
			g,
			Kernel("k", 1000, 500),
			ScatterAdd("sa", mem.AddF64, saAddrs, []mem.Word{mem.F64(0.25)}),
		})
		m.FlushCaches()
		wantSum := 0.0
		for i := range writeVals {
			wantSum += float64(i) / 3
		}
		if gatherSum < wantSum-1e-9 || gatherSum > wantSum+1e-9 {
			t.Fatalf("config %d: gather sum %g want %g", ci, gatherSum, wantSum)
		}
		total := 0.0
		for i := 0; i < 64; i++ {
			total += m.Store().LoadF64(mem.Addr(i))
		}
		if want := 800 * 0.25; total < want-1e-9 || total > want+1e-9 {
			t.Fatalf("config %d: scatter-add total %g want %g", ci, total, want)
		}
	}
}

// Property: for arbitrary small inputs, a random pair of configurations
// agrees exactly.
func TestConfigPairEquivalenceProperty(t *testing.T) {
	variants := configVariants()
	f := func(idx []uint8, c1, c2 uint8) bool {
		if len(idx) == 0 {
			return true
		}
		cfgA := variants[int(c1)%len(variants)]
		cfgB := variants[int(c2)%len(variants)]
		addrs := make([]mem.Addr, len(idx))
		vals := make([]mem.Word, len(idx))
		for i, x := range idx {
			addrs[i] = mem.Addr(x % 100)
			vals[i] = mem.I64(int64(x))
		}
		run := func(cfg Config) map[mem.Addr]int64 {
			m := New(cfg)
			m.Run([]Op{ScatterAdd("p", mem.AddI64, addrs, vals)})
			m.FlushCaches()
			out := map[mem.Addr]int64{}
			for _, a := range addrs {
				out[a] = m.Store().LoadI64(a)
			}
			return out
		}
		ra, rb := run(cfgA), run(cfgB)
		for a, v := range ra {
			if rb[a] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// seqAddrsTest returns base..base+n-1 (test-local helper).
func seqAddrsTest(base mem.Addr, n int) []mem.Addr {
	out := make([]mem.Addr, n)
	for i := range out {
		out[i] = base + mem.Addr(i)
	}
	return out
}
