package machine

// ClockGHz is the simulated core clock frequency (Table 1: the Merrimac-like
// node runs at 1 GHz). Every cycles→wall-time conversion in the repo must go
// through CyclesToMicros so a future clock-sensitivity sweep changes them all
// together.
const ClockGHz = 1.0

// CyclesToMicros converts core cycles to microseconds at ClockGHz (the
// paper's time axis).
func CyclesToMicros(cycles uint64) float64 {
	return float64(cycles) / (ClockGHz * 1e3)
}
