package machine

import "testing"

func TestCyclesToMicros(t *testing.T) {
	// At 1 GHz, 1000 cycles is one microsecond.
	if got := CyclesToMicros(1000); got != 1.0 {
		t.Fatalf("CyclesToMicros(1000) = %g, want 1", got)
	}
	if got := CyclesToMicros(0); got != 0 {
		t.Fatalf("CyclesToMicros(0) = %g, want 0", got)
	}
	if got := CyclesToMicros(2_500_000); got != 2500 {
		t.Fatalf("CyclesToMicros(2.5M) = %g, want 2500", got)
	}
}
