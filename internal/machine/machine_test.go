package machine

import (
	"math"
	"testing"
	"testing/quick"

	"scatteradd/internal/mem"
)

// smallConfig shrinks the machine for fast tests while keeping all
// structures (multiple banks, SA units, DRAM channels).
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Cache.TotalLines = 256 // 16 KB cache
	cfg.KernelStartup = 8
	cfg.MemOpStartup = 4
	return cfg
}

func uniformConfig(lat, interval int) Config {
	cfg := DefaultConfig()
	cfg.KernelStartup = 8
	cfg.MemOpStartup = 4
	cfg.UniformMem = &UniformMemConfig{Latency: lat, Interval: interval}
	return cfg
}

func TestScatterAddHistogramCorrect(t *testing.T) {
	m := New(smallConfig())
	const bins = 64
	const n = 1000
	binBase := mem.Addr(0)
	// Deterministic pseudo-random data.
	addrs := make([]mem.Addr, n)
	ref := make([]int64, bins)
	seed := uint64(12345)
	for i := range addrs {
		seed = seed*6364136223846793005 + 1442695040888963407
		b := seed % bins
		addrs[i] = binBase + mem.Addr(b)
		ref[b]++
	}
	res := m.Run([]Op{ScatterAdd("hist", mem.AddI64, addrs, []mem.Word{mem.I64(1)})})
	m.FlushCaches()
	got := m.Store().ReadI64Slice(binBase, bins)
	for b := range ref {
		if got[b] != ref[b] {
			t.Fatalf("bin %d = %d want %d", b, got[b], ref[b])
		}
	}
	if res.MemRefs != n {
		t.Fatalf("mem refs = %d want %d", res.MemRefs, n)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles charged")
	}
	if res.FPOps != 0 {
		t.Fatalf("integer scatter-add counted %d FP ops", res.FPOps)
	}
}

func TestScatterAddFloatCountsFPOps(t *testing.T) {
	m := New(smallConfig())
	addrs := []mem.Addr{0, 1, 0, 2, 1, 0}
	vals := []mem.Word{mem.F64(1), mem.F64(2), mem.F64(3), mem.F64(4), mem.F64(5), mem.F64(6)}
	res := m.Run([]Op{ScatterAdd("fsa", mem.AddF64, addrs, vals)})
	m.FlushCaches()
	if got := m.Store().LoadF64(0); got != 10 {
		t.Fatalf("addr0 = %g", got)
	}
	if got := m.Store().LoadF64(1); got != 7 {
		t.Fatalf("addr1 = %g", got)
	}
	if got := m.Store().LoadF64(2); got != 4 {
		t.Fatalf("addr2 = %g", got)
	}
	if res.FPOps != 6 {
		t.Fatalf("FP ops = %d want 6", res.FPOps)
	}
}

func TestStoreThenLoadStream(t *testing.T) {
	m := New(smallConfig())
	vals := make([]mem.Word, 100)
	for i := range vals {
		vals[i] = mem.F64(float64(i) * 0.5)
	}
	var got []float64
	prog := []Op{
		StoreStream("store", 1000, vals),
		LoadStream("load", 1000, len(vals)),
	}
	prog[1].OnResp = func(r mem.Response) { got = append(got, mem.AsF64(r.Val)) }
	m.Run(prog)
	if len(got) != len(vals) {
		t.Fatalf("got %d responses", len(got))
	}
	// Responses can arrive out of order across banks; check as a set via sum.
	var sum, want float64
	for i := range vals {
		sum += got[i]
		want += float64(i) * 0.5
	}
	if math.Abs(sum-want) > 1e-9 {
		t.Fatalf("loaded sum %g want %g", sum, want)
	}
}

func TestGatherScatter(t *testing.T) {
	m := New(smallConfig())
	m.Store().WriteF64Slice(0, []float64{10, 20, 30, 40})
	addrs := []mem.Addr{3, 1, 2, 0}
	var got []float64
	g := Gather("g", addrs)
	g.OnResp = func(r mem.Response) { got = append(got, mem.AsF64(r.Val)) }
	m.Run([]Op{g})
	if len(got) != 4 {
		t.Fatalf("gather returned %d values", len(got))
	}
	m.Run([]Op{Scatter("s", []mem.Addr{100, 101}, []mem.Word{mem.F64(7), mem.F64(8)})})
	m.FlushCaches()
	if m.Store().LoadF64(100) != 7 || m.Store().LoadF64(101) != 8 {
		t.Fatal("scatter data wrong")
	}
}

func TestKernelCostModel(t *testing.T) {
	cfg := smallConfig()
	m := New(cfg)
	// Compute bound: 12800 flops at 128/cycle = 100 cycles + startup.
	res := m.RunOp(Kernel("k", 12800, 0))
	want := uint64(cfg.KernelStartup) + 100
	if res.Cycles != want {
		t.Fatalf("compute-bound kernel: %d cycles want %d", res.Cycles, want)
	}
	// SRF bound: 6400 words at 64/cycle = 100 cycles.
	res = m.RunOp(Kernel("k2", 100, 6400))
	if res.Cycles != want {
		t.Fatalf("SRF-bound kernel: %d cycles want %d", res.Cycles, want)
	}
	if res.FPOps != 100 {
		t.Fatalf("kernel FP ops = %d", res.FPOps)
	}
}

func TestHotBankEffect(t *testing.T) {
	// Scatter-adds into a tiny index range (one line -> one bank) must be
	// slower than the same count spread over many banks (Figure 7).
	n := 2048
	narrow := New(smallConfig())
	addrsNarrow := make([]mem.Addr, n)
	for i := range addrsNarrow {
		addrsNarrow[i] = mem.Addr(i % 4) // one line, one bank
	}
	resNarrow := narrow.Run([]Op{ScatterAdd("narrow", mem.AddI64, addrsNarrow, []mem.Word{mem.I64(1)})})

	wide := New(smallConfig())
	addrsWide := make([]mem.Addr, n)
	for i := range addrsWide {
		addrsWide[i] = mem.Addr(i % 512) // 64 lines across all 8 banks
	}
	resWide := wide.Run([]Op{ScatterAdd("wide", mem.AddI64, addrsWide, []mem.Word{mem.I64(1)})})

	if resNarrow.Cycles <= resWide.Cycles {
		t.Fatalf("hot bank: narrow %d cycles, wide %d cycles", resNarrow.Cycles, resWide.Cycles)
	}
}

func TestCombiningReducesDRAMTraffic(t *testing.T) {
	// Few distinct addresses: the combining store should absorb most reads.
	n := 4096
	m := New(smallConfig())
	addrs := make([]mem.Addr, n)
	for i := range addrs {
		addrs[i] = mem.Addr(i % 8)
	}
	res := m.Run([]Op{ScatterAdd("c", mem.AddI64, addrs, []mem.Word{mem.I64(1)})})
	if res.SAStats.Combined == 0 {
		t.Fatal("no combining occurred")
	}
	if res.SAStats.MemReads >= uint64(n)/2 {
		t.Fatalf("combining ineffective: %d memory reads for %d requests", res.SAStats.MemReads, n)
	}
	m.FlushCaches()
	for i := 0; i < 8; i++ {
		if got := m.Store().LoadI64(mem.Addr(i)); got != int64(n/8) {
			t.Fatalf("bin %d = %d want %d", i, got, n/8)
		}
	}
}

func TestUniformMemoryMode(t *testing.T) {
	m := New(uniformConfig(16, 2))
	addrs := make([]mem.Addr, 256)
	for i := range addrs {
		addrs[i] = mem.Addr(i % 32)
	}
	m.Run([]Op{ScatterAdd("u", mem.AddI64, addrs, []mem.Word{mem.I64(1)})})
	for i := 0; i < 32; i++ {
		if got := m.Store().LoadI64(mem.Addr(i)); got != 8 {
			t.Fatalf("bin %d = %d want 8", i, got)
		}
	}
}

func TestUniformLatencySensitivity(t *testing.T) {
	// With a small combining store, higher memory latency must hurt; with a
	// large store the unit should tolerate it (Figure 11's main result).
	run := func(entries, latency int) uint64 {
		cfg := uniformConfig(latency, 2)
		cfg.SA.Entries = entries
		cfg.SA.InQDepth = 8
		m := New(cfg)
		addrs := make([]mem.Addr, 512)
		seed := uint64(99)
		for i := range addrs {
			seed = seed*6364136223846793005 + 1442695040888963407
			addrs[i] = mem.Addr(seed % 65536)
		}
		res := m.Run([]Op{ScatterAdd("s", mem.AddI64, addrs, []mem.Word{mem.I64(1)})})
		return res.Cycles
	}
	smallFast := run(2, 8)
	smallSlow := run(2, 256)
	bigFast := run(64, 8)
	bigSlow := run(64, 256)
	if smallSlow <= smallFast {
		t.Fatalf("2-entry store insensitive to latency: %d vs %d", smallFast, smallSlow)
	}
	ratioSmall := float64(smallSlow) / float64(smallFast)
	ratioBig := float64(bigSlow) / float64(bigFast)
	if ratioBig >= ratioSmall/2 {
		t.Fatalf("64-entry store does not tolerate latency: small ratio %.2f, big ratio %.2f",
			ratioSmall, ratioBig)
	}
}

// Property: scatter-add through the full machine (cache + DRAM + 8 SA units)
// equals the sequential reference for arbitrary index patterns.
func TestMachineScatterAddProperty(t *testing.T) {
	f := func(idx []uint16) bool {
		if len(idx) == 0 {
			return true
		}
		m := New(smallConfig())
		ref := map[mem.Addr]int64{}
		addrs := make([]mem.Addr, len(idx))
		vals := make([]mem.Word, len(idx))
		for i, x := range idx {
			a := mem.Addr(x % 2048)
			addrs[i] = a
			vals[i] = mem.I64(int64(i + 1))
			ref[a] += int64(i + 1)
		}
		m.Run([]Op{ScatterAdd("p", mem.AddI64, addrs, vals)})
		m.FlushCaches()
		for a, want := range ref {
			if m.Store().LoadI64(a) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestFetchAddThroughMachine(t *testing.T) {
	// Parallel queue allocation (§3.3): n fetch-adds of 1 to a counter
	// return a permutation of 0..n-1.
	m := New(smallConfig())
	n := 64
	addrs := make([]mem.Addr, n)
	var got []int64
	op := ScatterAdd("alloc", mem.FetchAddI64, addrs, []mem.Word{mem.I64(1)})
	op.OnResp = func(r mem.Response) { got = append(got, mem.AsI64(r.Val)) }
	m.Run([]Op{op})
	if len(got) != n {
		t.Fatalf("got %d fetch responses", len(got))
	}
	seen := map[int64]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate ticket %d", v)
		}
		seen[v] = true
	}
	for v := int64(0); v < int64(n); v++ {
		if !seen[v] {
			t.Fatalf("missing ticket %d", v)
		}
	}
}

func TestResultAdd(t *testing.T) {
	a := Result{Cycles: 10, FPOps: 5, MemRefs: 3}
	a.Add(Result{Cycles: 1, FPOps: 2, MemRefs: 4})
	if a.Cycles != 11 || a.FPOps != 7 || a.MemRefs != 7 {
		t.Fatalf("Add: %+v", a)
	}
}

func TestOpConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { Scatter("x", []mem.Addr{1}, nil) },
		func() { ScatterAdd("x", mem.Read, []mem.Addr{1}, []mem.Word{0}) },
		func() { ScatterAdd("x", mem.AddI64, []mem.Addr{1, 2}, []mem.Word{0, 0, 0}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPeakFlops(t *testing.T) {
	if got := DefaultConfig().PeakFlopsPerCycle(); got != 128 {
		t.Fatalf("peak flops = %g want 128 (Table 1)", got)
	}
}

func TestBroadcastScalar(t *testing.T) {
	m := New(smallConfig())
	addrs := []mem.Addr{5, 5, 5, 9}
	m.Run([]Op{ScatterAdd("b", mem.AddF64, addrs, []mem.Word{mem.F64(2.5)})})
	m.FlushCaches()
	if m.Store().LoadF64(5) != 7.5 || m.Store().LoadF64(9) != 2.5 {
		t.Fatalf("broadcast: %g %g", m.Store().LoadF64(5), m.Store().LoadF64(9))
	}
}
