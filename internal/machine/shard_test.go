package machine

import (
	"fmt"
	"reflect"
	"testing"

	"scatteradd/internal/fault"
	"scatteradd/internal/mem"
	"scatteradd/internal/span"
	"scatteradd/internal/stats"
)

// fig6Program is a histogram-shaped workload (figure 6): one large
// scatter-add over a hot bin range, bracketed by a load of the input and a
// readback of the bins. Collisions force combining-store residency.
func fig6Program(n, bins int) []Op {
	addrs := make([]mem.Addr, n)
	vals := make([]mem.Word, n)
	state := uint64(0xF166)
	for i := range addrs {
		state = state*6364136223846793005 + 1442695040888963407
		addrs[i] = mem.Addr(state % uint64(bins))
		vals[i] = mem.I64(int64(i%5 + 1))
	}
	return []Op{
		LoadStream("load-data", 1<<16, n),
		ScatterAdd("histogram", mem.AddI64, addrs, vals),
		Fence(),
	}
}

// fig10Program is a molecular-dynamics-shaped workload (figure 10): gather
// positions, compute forces in a kernel, scatter-add them back
// asynchronously under the next kernel, then fence — the async overlap is
// what exercises streams in flight across op (and shard-absorb) boundaries.
func fig10Program(n, sites int) []Op {
	gAddrs := make([]mem.Addr, n)
	sAddrs := make([]mem.Addr, n)
	vals := make([]mem.Word, n)
	state := uint64(0xF1010)
	for i := range gAddrs {
		state = state*6364136223846793005 + 1442695040888963407
		gAddrs[i] = mem.Addr(state % uint64(sites))
		state = state*6364136223846793005 + 1442695040888963407
		sAddrs[i] = mem.Addr(state % uint64(sites))
		vals[i] = mem.F64(float64(i%13) * 0.5)
	}
	sa := ScatterAdd("forces", mem.AddF64, sAddrs, vals)
	sa.Async = true
	return []Op{
		Gather("positions", gAddrs),
		Kernel("interactions", 80_000, 4096),
		sa,
		Kernel("next-block", 60_000, 4096),
		Fence(),
	}
}

// shardTrace runs prog on a fresh machine and captures everything sharding
// must not change: the clock after every op, per-op results, the final
// counter snapshot, the span report, and the functional memory image.
func shardTrace(cfg Config, prog []Op, words int) (nows []uint64, results []Result, snap stats.Snapshot, rep span.Report, image []int64) {
	m := New(cfg)
	tr := span.New(4)
	m.SetSpanTracer(tr)
	for _, op := range prog {
		results = append(results, m.RunOp(op))
		nows = append(nows, m.Now())
	}
	m.FlushCaches()
	return nows, results, m.StatsSnapshot(), span.Aggregate(tr.Ops()), m.Store().ReadI64Slice(0, words)
}

// TestShardedChaosExact is the machine-level sharded equivalence matrix,
// mirroring multinode's TestSharded* coverage: figure-6- and
// figure-10-shaped workloads, fault injection on, both stepping modes, with
// shard counts 1 vs 3 (odd split) and 4. Everything observable — clocks,
// per-op results, counters, span reports, memory — must be byte-identical.
func TestShardedChaosExact(t *testing.T) {
	progs := []struct {
		name  string
		prog  []Op
		words int
	}{
		{"fig6-histogram", fig6Program(6_000, 512), 512},
		{"fig10-moldyn", fig10Program(4_000, 768), 768},
	}
	fc := fault.DefaultChaos()
	fc.DRAMStallRate = 0.05
	fc.DRAMWindowEvery = 2_000
	fc.DRAMWindowSpan = 100
	fc.CSCorruptRate = 0.01
	fc.FUErrorRate = 0.01
	for _, p := range progs {
		for _, legacy := range []bool{false, true} {
			for _, faults := range []bool{true, false} {
				name := fmt.Sprintf("%s/legacy=%v/faults=%v", p.name, legacy, faults)
				t.Run(name, func(t *testing.T) {
					cfg := DefaultConfig()
					cfg.Cache.TotalLines = 256
					cfg.KernelStartup = 8
					cfg.MemOpStartup = 4
					cfg.LegacyStepping = legacy
					if faults {
						cfg.Faults = fc
					}
					cfg.Shards = 1
					baseNows, baseRes, baseSnap, baseRep, baseMem := shardTrace(cfg, p.prog, p.words)
					for _, shards := range []int{3, 4} {
						cfg.Shards = shards
						nows, res, snap, rep, img := shardTrace(cfg, p.prog, p.words)
						if !reflect.DeepEqual(nows, baseNows) {
							t.Fatalf("shards=%d: per-op clocks diverge\n  1: %v\n  %d: %v", shards, baseNows, shards, nows)
						}
						if !reflect.DeepEqual(res, baseRes) {
							t.Fatalf("shards=%d: per-op results diverge", shards)
						}
						if !reflect.DeepEqual(snap, baseSnap) {
							for i := range snap.Entries {
								if i < len(baseSnap.Entries) && snap.Entries[i] != baseSnap.Entries[i] {
									t.Errorf("shards=%d: counter %q: %d vs %d", shards,
										snap.Entries[i].Key, snap.Entries[i].Val, baseSnap.Entries[i].Val)
								}
							}
							t.Fatalf("shards=%d: counter snapshots diverge", shards)
						}
						if !reflect.DeepEqual(rep, baseRep) {
							t.Fatalf("shards=%d: span reports diverge:\n%+v\nvs\n%+v", shards, rep, baseRep)
						}
						if !reflect.DeepEqual(img, baseMem) {
							t.Fatalf("shards=%d: memory images diverge", shards)
						}
					}
				})
			}
		}
	}
}

// TestShardCountResolution pins the Shards -> effective-partition rules:
// clamping to the bank count, sequential fallbacks for uniform memory and
// non-multiple channel counts.
func TestShardCountResolution(t *testing.T) {
	base := DefaultConfig() // 8 banks, 16 channels
	cases := []struct {
		name string
		mut  func(*Config)
		want int
	}{
		{"zero", func(c *Config) { c.Shards = 0 }, 1},
		{"one", func(c *Config) { c.Shards = 1 }, 1},
		{"four", func(c *Config) { c.Shards = 4 }, 4},
		{"clamped-to-banks", func(c *Config) { c.Shards = 64 }, 8},
		{"uniform-ignores", func(c *Config) {
			c.Shards = 4
			c.UniformMem = &UniformMemConfig{Latency: 64, Interval: 2}
		}, 1},
		{"channels-not-multiple", func(c *Config) {
			c.Shards = 4
			c.DRAM.Channels = 12 // 12 % 8 != 0: ownership would straddle shards
		}, 1},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if got := cfg.shardCount(); got != tc.want {
			t.Errorf("%s: shardCount() = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestShardedMachinePoolLifecycle checks the worker pool is released at op
// boundaries once nothing is in flight, and that Close is a safe no-op
// anywhere else.
func TestShardedMachinePoolLifecycle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemOpStartup = 4
	cfg.Shards = 4
	m := New(cfg)
	op := chaosOp(2048, 256)
	m.RunOp(op)
	if m.pool != nil {
		t.Fatal("pool still live after a synchronous op drained")
	}
	async := op
	async.Async = true
	m.RunOp(async)
	// The async stream is still issuing: if any parallel tick ran, the pool
	// must stay alive for the next one.
	m.RunOp(Fence())
	if m.pool != nil {
		t.Fatal("pool still live after fence drained the machine")
	}
	m.RunOp(async)
	m.Close() // abandoned mid-flight: Close reaps whatever pool exists
	if m.pool != nil {
		t.Fatal("Close left a live pool")
	}
	m.RunOp(Fence()) // machine stays usable after Close
}
