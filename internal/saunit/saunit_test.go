package saunit

import (
	"math"
	"testing"
	"testing/quick"

	"scatteradd/internal/dram"
	"scatteradd/internal/mem"
	"scatteradd/internal/port"
)

var _ port.Word = (*Unit)(nil)

// rig couples a Unit to a Uniform memory and pumps cycles.
type rig struct {
	u     *Unit
	m     *dram.Uniform
	now   uint64
	resps []mem.Response
}

func newRig(cfg Config, latency, interval int) *rig {
	m := dram.NewUniform(latency, interval, 16)
	return &rig{u: New(cfg, m), m: m}
}

func (r *rig) step() {
	r.u.Tick(r.now)
	r.m.Tick(r.now)
	for {
		resp, ok := r.u.PopResponse(r.now)
		if !ok {
			break
		}
		r.resps = append(r.resps, resp)
	}
	r.now++
}

// run submits all requests (respecting back-pressure) and drains the unit.
func (r *rig) run(t *testing.T, reqs []mem.Request) {
	t.Helper()
	for _, req := range reqs {
		for !r.u.Accept(r.now, req) {
			r.step()
			if r.now > 5_000_000 {
				t.Fatal("accept timeout")
			}
		}
	}
	for r.u.Busy() {
		r.step()
		if r.now > 5_000_000 {
			t.Fatal("drain timeout")
		}
	}
}

func TestSingleScatterAdd(t *testing.T) {
	r := newRig(DefaultConfig(), 10, 1)
	r.m.Store().StoreF64(100, 1.5)
	r.run(t, []mem.Request{{ID: 1, Kind: mem.AddF64, Addr: 100, Val: mem.F64(2.25)}})
	if got := r.m.Store().LoadF64(100); got != 3.75 {
		t.Fatalf("memory = %g want 3.75", got)
	}
	st := r.u.Stats()
	if st.MemReads != 1 || st.MemWrites != 1 || st.FUOps != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCombiningSameAddress(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Entries = 8
	r := newRig(cfg, 50, 1) // long latency so all requests buffer before data returns
	var reqs []mem.Request
	for i := 0; i < 8; i++ {
		reqs = append(reqs, mem.Request{ID: uint64(i), Kind: mem.AddI64, Addr: 7, Val: mem.I64(1)})
	}
	r.run(t, reqs)
	if got := r.m.Store().LoadI64(7); got != 8 {
		t.Fatalf("sum = %d want 8", got)
	}
	st := r.u.Stats()
	if st.MemReads != 1 {
		t.Fatalf("combining failed: %d memory reads", st.MemReads)
	}
	if st.MemWrites != 1 {
		t.Fatalf("combining failed: %d memory writes", st.MemWrites)
	}
	if st.Combined != 7 {
		t.Fatalf("combined = %d want 7", st.Combined)
	}
	if st.FUOps != 8 {
		t.Fatalf("FU ops = %d want 8", st.FUOps)
	}
}

func TestDistinctAddressesNoCombining(t *testing.T) {
	r := newRig(DefaultConfig(), 5, 1)
	var reqs []mem.Request
	for i := 0; i < 16; i++ {
		reqs = append(reqs, mem.Request{ID: uint64(i), Kind: mem.AddI64, Addr: mem.Addr(i), Val: mem.I64(int64(i))})
	}
	r.run(t, reqs)
	for i := 0; i < 16; i++ {
		if got := r.m.Store().LoadI64(mem.Addr(i)); got != int64(i) {
			t.Fatalf("addr %d = %d", i, got)
		}
	}
	st := r.u.Stats()
	if st.MemReads != 16 || st.MemWrites != 16 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStallOnFullStoreStillCorrect(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Entries = 2
	cfg.InQDepth = 2
	r := newRig(cfg, 30, 2)
	var reqs []mem.Request
	for i := 0; i < 50; i++ {
		reqs = append(reqs, mem.Request{ID: uint64(i), Kind: mem.AddI64, Addr: mem.Addr(i % 3), Val: mem.I64(1)})
	}
	r.run(t, reqs)
	want := []int64{17, 17, 16}
	for a, w := range want {
		if got := r.m.Store().LoadI64(mem.Addr(a)); got != w {
			t.Fatalf("addr %d = %d want %d", a, got, w)
		}
	}
	if r.u.Stats().StallFull == 0 {
		t.Fatal("expected stalls with 2-entry store")
	}
}

func TestBypassReadWrite(t *testing.T) {
	r := newRig(DefaultConfig(), 4, 1)
	r.run(t, []mem.Request{{ID: 5, Kind: mem.Write, Addr: 9, Val: 1234}})
	r.run(t, []mem.Request{{ID: 6, Kind: mem.Read, Addr: 9}})
	if len(r.resps) != 1 || r.resps[0].ID != 6 || r.resps[0].Val != 1234 {
		t.Fatalf("bypass responses = %+v", r.resps)
	}
	if r.u.Stats().Bypassed != 2 {
		t.Fatalf("bypassed = %d", r.u.Stats().Bypassed)
	}
}

func TestFetchAddReturnsPreUpdateValues(t *testing.T) {
	r := newRig(DefaultConfig(), 20, 1)
	var reqs []mem.Request
	for i := 0; i < 6; i++ {
		reqs = append(reqs, mem.Request{ID: uint64(i), Kind: mem.FetchAddI64, Addr: 3, Val: mem.I64(1)})
	}
	r.run(t, reqs)
	if got := r.m.Store().LoadI64(3); got != 6 {
		t.Fatalf("final = %d", got)
	}
	if len(r.resps) != 6 {
		t.Fatalf("got %d fetch responses", len(r.resps))
	}
	// The pre-update values must be a permutation of 0..5 (queue allocation,
	// in some hardware order).
	seen := map[int64]bool{}
	for _, resp := range r.resps {
		seen[mem.AsI64(resp.Val)] = true
	}
	for v := int64(0); v < 6; v++ {
		if !seen[v] {
			t.Fatalf("pre-update values %v missing %d", seen, v)
		}
	}
}

func TestExtensionOps(t *testing.T) {
	r := newRig(DefaultConfig(), 8, 1)
	r.m.Store().StoreF64(1, 10)
	r.m.Store().StoreF64(2, 10)
	r.m.Store().StoreF64(3, 2)
	r.run(t, []mem.Request{
		{ID: 1, Kind: mem.MinF64, Addr: 1, Val: mem.F64(-3)},
		{ID: 2, Kind: mem.MaxF64, Addr: 2, Val: mem.F64(30)},
		{ID: 3, Kind: mem.MulF64, Addr: 3, Val: mem.F64(4)},
	})
	if r.m.Store().LoadF64(1) != -3 || r.m.Store().LoadF64(2) != 30 || r.m.Store().LoadF64(3) != 8 {
		t.Fatalf("extension results: %g %g %g",
			r.m.Store().LoadF64(1), r.m.Store().LoadF64(2), r.m.Store().LoadF64(3))
	}
}

func TestReuseAddressAcrossChains(t *testing.T) {
	// Scatter-adds to the same address separated by full drains: the second
	// chain must read the first chain's sum (write-read ordering).
	cfg := DefaultConfig()
	cfg.WBQDepth = 1
	r := newRig(cfg, 12, 3)
	for round := 0; round < 5; round++ {
		r.run(t, []mem.Request{{ID: uint64(round), Kind: mem.AddI64, Addr: 0, Val: mem.I64(10)}})
	}
	if got := r.m.Store().LoadI64(0); got != 50 {
		t.Fatalf("sum = %d want 50", got)
	}
}

func TestImmediateReuseWithoutDrain(t *testing.T) {
	// Issue a request to the same address every cycle without waiting: write
	// backs and new reads interleave; the total must still be exact.
	cfg := DefaultConfig()
	cfg.Entries = 2
	r := newRig(cfg, 6, 1)
	n := 200
	sent := 0
	for sent < n || r.u.Busy() {
		if sent < n && r.u.Accept(r.now, mem.Request{ID: uint64(sent), Kind: mem.AddI64, Addr: 5, Val: mem.I64(1)}) {
			sent++
		}
		r.step()
		if r.now > 1_000_000 {
			t.Fatal("timeout")
		}
	}
	if got := r.m.Store().LoadI64(5); got != int64(n) {
		t.Fatalf("sum = %d want %d", got, n)
	}
}

// Property: for arbitrary (addr, val) integer scatter-add sequences the
// final memory image equals the sequential reference, regardless of store
// size, FU latency, and memory timing.
func TestScatterAddEquivalenceProperty(t *testing.T) {
	f := func(pairs []struct {
		A uint8
		V int16
	}, entries, fulat, lat uint8) bool {
		cfg := DefaultConfig()
		cfg.Entries = int(entries%15) + 1
		cfg.FULatency = int(fulat%7) + 1
		r := newRig(cfg, int(lat%60), 1)
		ref := map[mem.Addr]int64{}
		var reqs []mem.Request
		for i, p := range pairs {
			a := mem.Addr(p.A % 32)
			ref[a] += int64(p.V)
			reqs = append(reqs, mem.Request{ID: uint64(i), Kind: mem.AddI64, Addr: a, Val: mem.I64(int64(p.V))})
		}
		r.run(t, reqs)
		for a, want := range ref {
			if r.m.Store().LoadI64(a) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: floating-point scatter-add matches the reference within rounding
// reordering tolerance.
func TestScatterAddFloatProperty(t *testing.T) {
	f := func(pairs []struct {
		A uint8
		V int8
	}) bool {
		r := newRig(DefaultConfig(), 16, 2)
		ref := map[mem.Addr]float64{}
		var reqs []mem.Request
		for i, p := range pairs {
			a := mem.Addr(p.A % 16)
			v := float64(p.V) / 4
			ref[a] += v
			reqs = append(reqs, mem.Request{ID: uint64(i), Kind: mem.AddF64, Addr: a, Val: mem.F64(v)})
		}
		r.run(t, reqs)
		for a, want := range ref {
			got := r.m.Store().LoadF64(a)
			if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEagerCombineCorrectAndCounted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EagerCombine = true
	r := newRig(cfg, 80, 4) // slow memory: operands pile up
	var reqs []mem.Request
	for i := 0; i < 8; i++ {
		reqs = append(reqs, mem.Request{ID: uint64(i), Kind: mem.AddI64, Addr: 1, Val: mem.I64(1)})
	}
	r.run(t, reqs)
	if got := r.m.Store().LoadI64(1); got != 8 {
		t.Fatalf("sum = %d", got)
	}
	if r.u.Stats().EagerOps == 0 {
		t.Fatal("eager combining never fired")
	}
}

func TestIDTagCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r := newRig(DefaultConfig(), 1, 1)
	r.u.Accept(0, mem.Request{ID: saIDTag | 5, Kind: mem.Read, Addr: 0})
}

func TestInvalidConfigPanics(t *testing.T) {
	for i, cfg := range []Config{
		{Entries: 0, FULatency: 1, FUIssueWidth: 1, InQDepth: 1, WBQDepth: 1},
		{Entries: 1, FULatency: 0, FUIssueWidth: 1, InQDepth: 1, WBQDepth: 1},
		{Entries: 1, FULatency: 1, FUIssueWidth: 1, InQDepth: 0, WBQDepth: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d: expected panic", i)
				}
			}()
			New(cfg, dram.NewUniform(1, 1, 4))
		}()
	}
}

func TestMixedKindsDifferentAddresses(t *testing.T) {
	r := newRig(DefaultConfig(), 10, 1)
	r.run(t, []mem.Request{
		{ID: 1, Kind: mem.AddF64, Addr: 0, Val: mem.F64(1.5)},
		{ID: 2, Kind: mem.AddI64, Addr: 8, Val: mem.I64(7)},
		{ID: 3, Kind: mem.AddF64, Addr: 0, Val: mem.F64(2.5)},
	})
	if r.m.Store().LoadF64(0) != 4.0 || r.m.Store().LoadI64(8) != 7 {
		t.Fatalf("mixed results: %g %d", r.m.Store().LoadF64(0), r.m.Store().LoadI64(8))
	}
}

func TestThroughputOneSumPerLatency(t *testing.T) {
	// With combining, n adds to one address need n dependent FU ops: the
	// drain time after the memory value returns is at least n*FULatency.
	cfg := DefaultConfig()
	cfg.Entries = 16
	cfg.FULatency = 4
	r := newRig(cfg, 100, 1)
	var reqs []mem.Request
	n := 10
	for i := 0; i < n; i++ {
		reqs = append(reqs, mem.Request{ID: uint64(i), Kind: mem.AddI64, Addr: 0, Val: mem.I64(1)})
	}
	r.run(t, reqs)
	if r.now < uint64(100+n*cfg.FULatency) {
		t.Fatalf("completed in %d cycles, faster than dependent-add bound %d",
			r.now, 100+n*cfg.FULatency)
	}
}
