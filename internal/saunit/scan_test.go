package saunit

import (
	"testing"
	"testing/quick"

	"scatteradd/internal/mem"
)

func orderedConfig() Config {
	cfg := DefaultConfig()
	cfg.Entries = 16
	cfg.OrderedChains = true
	return cfg
}

func TestOrderedFetchAddIsExclusiveScan(t *testing.T) {
	// n ordered fetch-adds to one address return exact exclusive prefix
	// sums — the hardware scan of the paper's §5 future work.
	r := newRig(orderedConfig(), 25, 1)
	vals := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	var reqs []mem.Request
	for i, v := range vals {
		reqs = append(reqs, mem.Request{ID: uint64(i), Kind: mem.FetchAddI64, Addr: 0, Val: mem.I64(v)})
	}
	r.run(t, reqs)
	// Exclusive prefix: response for request i is sum of vals[0..i-1].
	prefix := make([]int64, len(vals))
	sum := int64(0)
	for i, v := range vals {
		prefix[i] = sum
		sum += v
	}
	if len(r.resps) != len(vals) {
		t.Fatalf("got %d responses", len(r.resps))
	}
	for _, resp := range r.resps {
		if got := mem.AsI64(resp.Val); got != prefix[resp.ID] {
			t.Fatalf("request %d: prefix %d want %d", resp.ID, got, prefix[resp.ID])
		}
	}
	if got := r.m.Store().LoadI64(0); got != sum {
		t.Fatalf("total = %d want %d", got, sum)
	}
}

func TestUnorderedFetchAddMayReorder(t *testing.T) {
	// Sanity for the default mode: values are a permutation of the prefix
	// multiset but not necessarily in program order; totals still exact.
	cfg := DefaultConfig()
	cfg.Entries = 16
	r := newRig(cfg, 25, 1)
	var reqs []mem.Request
	for i := 0; i < 10; i++ {
		reqs = append(reqs, mem.Request{ID: uint64(i), Kind: mem.FetchAddI64, Addr: 0, Val: mem.I64(1)})
	}
	r.run(t, reqs)
	if got := r.m.Store().LoadI64(0); got != 10 {
		t.Fatalf("total = %d", got)
	}
}

// Property: ordered fetch-add returns exact exclusive prefixes for arbitrary
// operand sequences, even across multiple drain/refill rounds of a tiny
// combining store.
func TestOrderedScanProperty(t *testing.T) {
	f := func(raw []int8, entries uint8) bool {
		if len(raw) == 0 {
			return true
		}
		cfg := orderedConfig()
		cfg.Entries = int(entries%6) + 2
		r := newRig(cfg, 10, 2)
		var reqs []mem.Request
		prefix := make([]int64, len(raw))
		sum := int64(0)
		for i, v := range raw {
			prefix[i] = sum
			sum += int64(v)
			reqs = append(reqs, mem.Request{ID: uint64(i), Kind: mem.FetchAddI64, Addr: 7, Val: mem.I64(int64(v))})
		}
		r.run(t, reqs)
		if len(r.resps) != len(raw) {
			return false
		}
		for _, resp := range r.resps {
			if mem.AsI64(resp.Val) != prefix[resp.ID] {
				return false
			}
		}
		return r.m.Store().LoadI64(7) == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOrderedChainsStillCombineCorrectly(t *testing.T) {
	// Plain scatter-adds under OrderedChains: results identical to default.
	cfg := orderedConfig()
	r := newRig(cfg, 30, 1)
	var reqs []mem.Request
	for i := 0; i < 40; i++ {
		reqs = append(reqs, mem.Request{ID: uint64(i), Kind: mem.AddI64, Addr: mem.Addr(i % 3), Val: mem.I64(int64(i))})
	}
	r.run(t, reqs)
	want := []int64{273, 247, 260}
	for a, w := range want {
		if got := r.m.Store().LoadI64(mem.Addr(a)); got != w {
			t.Fatalf("addr %d = %d want %d", a, got, w)
		}
	}
}

func TestOrderedEagerIncompatible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.OrderedChains = true
	cfg.EagerCombine = true
	newRig(cfg, 1, 1)
}
