package saunit

import (
	"testing"

	"scatteradd/internal/mem"
)

// BenchmarkSAUnitTick measures the scatter-add unit's per-cycle cost under
// a steady stream of combining scatter-adds over a 64-entry index range —
// the CAM scan, FU pipeline, and counter increments of the hot path.
func BenchmarkSAUnitTick(b *testing.B) {
	r := newRig(DefaultConfig(), 4, 1)
	for i := 0; i < b.N; i++ {
		req := mem.Request{ID: uint64(i), Kind: mem.AddI64, Addr: mem.Addr((i * 7) % 64), Val: mem.I64(1)}
		if r.u.CanAccept(r.now) {
			r.u.Accept(r.now, req)
		}
		r.step()
	}
}
