package saunit

// Area model from the paper (§3.2): in 90 nm standard-cell technology a
// 64-bit floating-point functional unit occupies about 0.3 mm²; a complete
// scatter-add unit — controller, multiplexing, combining store, and the
// functional unit pipelined at four 1 ns cycles — occupies about 0.2 mm²
// (the paper's figure is for the unit as estimated from the Imagine ALU
// implementation). Eight units fit in under 2% of a 10 mm × 10 mm die.
const (
	// FPUAreaMM2 is the area of a standalone 64-bit FPU in 90 nm.
	FPUAreaMM2 = 0.3
	// UnitAreaMM2 is the area of one scatter-add unit (controller +
	// combining store + FU) in 90 nm, per the paper's estimate.
	UnitAreaMM2 = 0.2
	// RefDieMM2 is the reference die used for overhead fractions.
	RefDieMM2 = 10.0 * 10.0
	// csEntryAreaMM2 approximates the incremental area of one combining
	// store entry beyond the baseline 8 (CAM cell + 64-bit operand + tag).
	csEntryAreaMM2 = 0.004
)

// AreaEstimate returns the total area in mm² of units scatter-add units with
// entries combining-store entries each, and the fraction of a 10 mm × 10 mm
// die that represents. With the Table 1 configuration (8 units, 8 entries)
// the fraction is just under 2%, matching the paper's claim.
func AreaEstimate(units, entries int) (mm2, dieFraction float64) {
	per := UnitAreaMM2
	if entries > 8 {
		per += float64(entries-8) * csEntryAreaMM2
	}
	mm2 = float64(units) * per
	return mm2, mm2 / RefDieMM2
}
