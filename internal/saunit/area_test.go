package saunit

import "testing"

func TestAreaEstimateMatchesPaper(t *testing.T) {
	mm2, frac := AreaEstimate(8, 8)
	if mm2 != 8*UnitAreaMM2 {
		t.Fatalf("area = %g mm²", mm2)
	}
	// Paper: 8 units require only 2% of a 10mm x 10mm die.
	if frac <= 0 || frac > 0.02 {
		t.Fatalf("die fraction = %g, want <= 2%%", frac)
	}
}

func TestAreaGrowsWithEntries(t *testing.T) {
	small, _ := AreaEstimate(8, 8)
	big, _ := AreaEstimate(8, 64)
	if big <= small {
		t.Fatalf("64-entry store (%g) not larger than 8-entry (%g)", big, small)
	}
	same, _ := AreaEstimate(8, 2)
	if same != small {
		t.Fatalf("entries below baseline should not shrink the estimate")
	}
}
