// Package saunit implements the paper's core contribution: the hardware
// scatter-add unit (§3.2, Figures 4 and 5). One unit sits in front of each
// stream-cache bank (or directly in front of the memory interface in the
// cache-less sensitivity configuration) and turns atomic read-modify-write
// requests into plain reads and writes while guaranteeing atomicity through
// its combining store.
//
// The combining store is a small CAM-indexed buffer. Every scatter-add
// request occupies one entry; if no entry is free the unit stalls its input
// (paper: "if no such entry exists, the scatter-add operation stalls until
// an entry is freed"). The first request to an address issues a read of the
// current memory value; subsequent requests to the same address merely
// buffer their operand and issue no memory traffic — this is the combining
// that reduces memory traffic for narrow index ranges (Figure 12). When the
// memory value returns, a chain of dependent additions through the
// pipelined functional unit consumes the buffered operands one by one; when
// the chain finds no more matching operands, the sum is written back.
//
// Ordinary reads and writes bypass the unit (Figure 4a, path 2-3).
package saunit

import (
	"fmt"

	"scatteradd/internal/fault"
	"scatteradd/internal/mem"
	"scatteradd/internal/port"
	"scatteradd/internal/sim"
	"scatteradd/internal/span"
	"scatteradd/internal/stats"
)

// saIDTag marks downstream request IDs that belong to the unit itself (reads
// of current memory values and write-backs of computed sums) rather than to
// bypassed upstream traffic.
const saIDTag = uint64(1) << 63

// scrubCycles is the fixed cost of a parity scrub: a combining-store entry
// whose parity check fails on allocation is re-latched from the input
// register and unavailable to chains (or to read issue) for this long.
const scrubCycles = 8

// Config holds the unit's microarchitectural parameters.
type Config struct {
	Entries      int  // combining store entries (Table 1: 8)
	FULatency    int  // add latency in cycles (Table 1: 4)
	FUIssueWidth int  // FU operations issued per cycle (1 = single pipelined FU)
	InQDepth     int  // input queue entries
	WBQDepth     int  // write-back queue entries
	PortWidth    int  // input requests consumed per cycle (1 = bank port rate)
	EagerCombine bool // ablation: pre-combine buffered operand pairs while
	// the memory value is still outstanding (not in the paper)

	// OrderedChains makes each chain consume buffered operands in arrival
	// order instead of combining-store scan order. With Fetch* kinds this
	// turns the unit into the scan (parallel-prefix) engine the paper
	// proposes as future work (§5): n ordered fetch-adds to one address
	// return the exact exclusive prefix sums of their operands. It is
	// incompatible with EagerCombine, which reassociates operands.
	OrderedChains bool
}

// DefaultConfig matches Table 1: 8 combining-store entries, 4-cycle FU, one
// request per cycle (the rate of the cache-bank port behind the unit).
func DefaultConfig() Config {
	return Config{Entries: 8, FULatency: 4, FUIssueWidth: 1, InQDepth: 8, WBQDepth: 8, PortWidth: 1}
}

// Stats aggregates unit activity.
type Stats struct {
	SARequests uint64 // scatter-add requests accepted
	Bypassed   uint64 // ordinary requests passed through
	MemReads   uint64 // current-value reads issued downstream
	MemWrites  uint64 // sum write-backs issued downstream
	FUOps      uint64 // additions performed (each is one FP/int op)
	FUOpsFP    uint64 // the subset of FUOps on floating-point kinds
	Combined   uint64 // requests satisfied without their own memory read
	StallFull  uint64 // cycles the head request stalled on a full store
	EagerOps   uint64 // pre-combines performed in EagerCombine mode
}

// entry is one combining-store slot, holding a single buffered request.
type entry struct {
	valid   bool
	addr    mem.Addr
	kind    mem.Kind
	val     mem.Word // operand carried by the request
	reader  bool     // this entry must issue the current-value memory read
	sent    bool     // the memory read was accepted downstream
	inFU    bool     // operand currently being consumed by the FU
	fetchID uint64   // upstream ID+1 to answer for Fetch* kinds (0 = none)
	node    int      // issuing node, echoed in fetch responses
	seq     uint64   // arrival order, for OrderedChains
	sid     uint64   // upstream ID+1 of a sampled span op (0 = untraced)
	alloc   uint64   // allocation cycle, for combining-store residency spans

	// scrubUntil makes the entry invisible to chains and to read issue
	// until the given cycle: an injected parity fault detected when the
	// operand was latched, repaired by re-latching from the input register.
	scrubUntil uint64
}

// chain is the running value for one address: a returned memory value or a
// partially accumulated sum looking for more operands to consume.
type chain struct {
	addr mem.Addr
	kind mem.Kind
	val  mem.Word
}

// fuOp is an addition in flight through the functional unit.
type fuOp struct {
	entryIdx int      // combining-store entry being consumed
	ch       chain    // accumulated value before this add
	result   mem.Word // value after this add
}

// metrics are the unit's performance counters (§4.3's microarchitecture
// events): combining-store behavior, occupancy, and FU utilization. They are
// allocated once at construction and updated with plain increments.
type metrics struct {
	group       *stats.Group
	csHits      *stats.Counter   // requests combined into a live address
	csMisses    *stats.Counter   // requests that allocated a fresh reader
	csEvictions *stats.Counter   // combining-store entries freed
	csOccupancy *stats.Histogram // valid entries, sampled every cycle
	fuBusy      *stats.Counter   // cycles with >= 1 op in the FU pipeline
	stallFull   *stats.Counter   // cycles the head request stalled on a full store
	memReads    *stats.Counter   // current-value reads issued downstream
	memWrites   *stats.Counter   // sum write-backs issued downstream
	bypassed    *stats.Counter   // ordinary requests passed through
	wbQDepth    *stats.Gauge     // write-back queue high-water mark

	// Fault counters (zero unless injection is configured).
	faultFURetry *stats.Counter // FU ops rejected by the residue check and reissued
	faultCSScrub *stats.Counter // combining-store entries that needed a parity scrub
}

func newMetrics(entries int) metrics {
	g := stats.NewGroup("saunit")
	return metrics{
		group:       g,
		csHits:      g.Counter("cs_hits"),
		csMisses:    g.Counter("cs_misses"),
		csEvictions: g.Counter("cs_evictions"),
		csOccupancy: g.Histogram("cs_occupancy", entries+1),
		fuBusy:      g.Counter("fu_busy_cycles"),
		stallFull:   g.Counter("stall_full_cycles"),
		memReads:    g.Counter("mem_reads"),
		memWrites:   g.Counter("mem_writes"),
		bypassed:    g.Counter("bypassed"),
		wbQDepth:    g.Gauge("wbq_depth"),

		faultFURetry: g.Counter("fault_fu_retries"),
		faultCSScrub: g.Counter("fault_cs_scrubs"),
	}
}

// Unit is one scatter-add unit.
type Unit struct {
	cfg    Config
	down   port.Word
	inQ    *sim.Queue[mem.Request]
	upQ    *sim.Queue[mem.Response] // responses to deliver upstream
	wbQ    *sim.Queue[mem.Request]  // sum write-backs awaiting downstream
	cs     []entry
	csUsed int     // valid combining-store entries (occupancy)
	ready  []chain // values ready to combine or write back
	still  []chain // issueFU scratch, swapped with ready each call
	fu     *sim.Delay[fuOp]
	// active holds the addresses with a live chain (ready, FU, or wbQ). At
	// most one chain exists per address and chains are bounded by the
	// combining-store size, so a linearly scanned slice stays resident in
	// the same cache lines the CAM walk already touches — the map this
	// replaces cost a hash plus a pointer chase per CAM lookup on the
	// unit's hottest path (one membership test per accepted scatter-add).
	active    []mem.Addr
	nextSeq   uint64
	stats     Stats
	met       metrics
	tr        *span.Tracer
	track     string
	downStage span.Stage

	// Fault injection (nil when disabled).
	fuInj *fault.Injector // FU transient errors: residue check fails, op reissues
	csInj *fault.Injector // combining-store parity faults: entry scrubbed on alloc
}

// New returns a unit in front of downstream memory down.
func New(cfg Config, down port.Word) *Unit {
	if cfg.Entries < 1 || cfg.FULatency < 1 || cfg.FUIssueWidth < 1 {
		panic(fmt.Sprintf("saunit: invalid config %+v", cfg))
	}
	if cfg.InQDepth < 1 || cfg.WBQDepth < 1 || cfg.PortWidth < 1 {
		panic(fmt.Sprintf("saunit: invalid queue depths %+v", cfg))
	}
	if cfg.OrderedChains && cfg.EagerCombine {
		panic("saunit: OrderedChains is incompatible with EagerCombine")
	}
	return &Unit{
		cfg:    cfg,
		down:   down,
		inQ:    sim.NewQueue[mem.Request](cfg.InQDepth),
		upQ:    sim.NewQueue[mem.Response](cfg.InQDepth + cfg.Entries),
		wbQ:    sim.NewQueue[mem.Request](cfg.WBQDepth),
		cs:     make([]entry, cfg.Entries),
		fu:     sim.NewDelay[fuOp](cfg.FULatency, cfg.FULatency*cfg.FUIssueWidth+1),
		active: make([]mem.Addr, 0, cfg.Entries),
		met:    newMetrics(cfg.Entries),
	}
}

// Stats returns a copy of the activity counters.
func (u *Unit) Stats() Stats { return u.stats }

// StatsGroup returns the unit's performance-counter group, for adoption
// into a machine-level stats.Registry.
func (u *Unit) StatsGroup() *stats.Group { return u.met.group }

// Config returns the unit's configuration.
func (u *Unit) Config() Config { return u.cfg }

// SetSpanTracer installs a request-lifecycle tracer; track names the unit
// in exported traces (e.g. "saunit[3]"). A nil tracer disables tracing.
// Bypassed (non-scatter-add) requests are attributed to the cache stage;
// use SetSpanDownstream when the unit sits directly on a memory with no
// cache in between (the §4.4 uniform configuration).
func (u *Unit) SetSpanTracer(tr *span.Tracer, track string) {
	u.tr = tr
	u.track = track
	u.downStage = span.StageCache
}

// SetSpanDownstream overrides the stage charged when a request leaves the
// unit for the downstream port.
func (u *Unit) SetSpanDownstream(st span.Stage) { u.downStage = st }

// SetFaults installs fault injection. inst salts the injector streams so
// every unit (one per cache bank, per node) draws its own schedule. Both
// fault classes are detected-and-recovered: an FU transient error fails the
// residue check and the operation reissues through the pipeline; a
// combining-store parity fault is scrubbed by re-latching the operand, which
// hides the entry from chains for scrubCycles. Draws happen at event grain
// (one per retired FU op, one per allocated entry), so legacy and
// fast-forward stepping consume the streams identically and sums stay
// bit-exact.
func (u *Unit) SetFaults(fc fault.Config, inst string) {
	u.fuInj = fault.NewInjector(fc.Seed, inst+".saunit.fu", fc.FUErrorRate)
	u.csInj = fault.NewInjector(fc.Seed, inst+".saunit.cs", fc.CSCorruptRate)
}

// CanAccept reports whether the input queue has room.
func (u *Unit) CanAccept(now uint64) bool { return !u.inQ.Full() }

// Accept submits a request (scatter-add or bypass).
func (u *Unit) Accept(now uint64, r mem.Request) bool {
	if r.ID&saIDTag != 0 {
		panic("saunit: upstream request ID collides with internal tag")
	}
	return u.inQ.Push(r)
}

// PopResponse returns one upstream response: a bypassed read completion or a
// Fetch* pre-update value.
func (u *Unit) PopResponse(now uint64) (mem.Response, bool) { return u.upQ.Pop() }

// Busy reports whether the unit or its downstream holds unfinished work.
func (u *Unit) Busy() bool {
	if !u.inQ.Empty() || !u.upQ.Empty() || !u.wbQ.Empty() || u.fu.Len() > 0 || len(u.ready) > 0 {
		return true
	}
	for i := range u.cs {
		if u.cs[i].valid {
			return true
		}
	}
	return u.down.Busy()
}

// NextEvent reports the earliest cycle at which the unit can do work (see
// sim.FastForwarder). Anything queued — input, upstream responses, ready
// chains, pending write-backs, an unsent current-value read, or an eager
// pre-combine opportunity — is work in the current cycle; otherwise the only
// self-timed activity is the functional-unit pipeline. Reader entries whose
// read is in flight are woken by the downstream component's own NextEvent.
func (u *Unit) NextEvent(now uint64) uint64 {
	if !u.inQ.Empty() || !u.upQ.Empty() || !u.wbQ.Empty() || len(u.ready) > 0 {
		return now
	}
	if u.cfg.EagerCombine && u.csUsed >= 2 {
		return now
	}
	for i := range u.cs {
		if e := &u.cs[i]; e.valid && e.reader && !e.sent {
			return now
		}
	}
	return u.fu.NextReady()
}

// Skip applies the per-cycle counter effects of cycles skipped idle Ticks:
// the occupancy sample and the FU-busy count (an in-flight op still inside
// its latency keeps the pipeline busy across a jump).
func (u *Unit) Skip(now, cycles uint64) {
	u.met.csOccupancy.ObserveN(u.csUsed, cycles)
	if u.fu.Len() > 0 {
		u.met.fuBusy.Add(cycles)
	}
}

// csFind returns the index of a valid entry matching addr for which pred
// holds, or -1. This is the CAM search of Figure 4b.
func (u *Unit) csFind(addr mem.Addr, pred func(*entry) bool) int {
	for i := range u.cs {
		e := &u.cs[i]
		if e.valid && e.addr == addr && pred(e) {
			return i
		}
	}
	return -1
}

// activeHas reports whether a live chain exists for addr.
func (u *Unit) activeHas(addr mem.Addr) bool {
	for _, a := range u.active {
		if a == addr {
			return true
		}
	}
	return false
}

// activeAdd records a live chain for addr (no-op if already recorded).
func (u *Unit) activeAdd(addr mem.Addr) {
	if !u.activeHas(addr) {
		u.active = append(u.active, addr)
	}
}

// activeDel forgets addr's chain. Swap-delete is fine: the set answers only
// membership queries, so element order is unobservable.
func (u *Unit) activeDel(addr mem.Addr) {
	for i, a := range u.active {
		if a == addr {
			last := len(u.active) - 1
			u.active[i] = u.active[last]
			u.active = u.active[:last]
			return
		}
	}
}

// csFree returns a free entry index or -1.
func (u *Unit) csFree() int {
	for i := range u.cs {
		if !u.cs[i].valid {
			return i
		}
	}
	return -1
}

// Tick advances the unit one cycle. Write-backs drain before reads issue so
// that a read for an address never overtakes the write-back of its previous
// sum in the downstream FIFO.
func (u *Unit) Tick(now uint64) {
	u.met.csOccupancy.Observe(u.csUsed)
	if u.fu.Len() > 0 {
		u.met.fuBusy.Inc()
	}
	u.drainDownstream(now)
	u.completeFU(now)
	u.issueFU(now)
	u.drainWriteBacks(now)
	u.issueReads(now)
	u.acceptInput(now)
	if u.cfg.EagerCombine {
		u.eagerCombine(now)
	}
}

// drainDownstream pops downstream responses: internal current-value reads
// become ready chains; everything else is forwarded upstream.
func (u *Unit) drainDownstream(now uint64) {
	for !u.upQ.Full() {
		resp, ok := u.down.PopResponse(now)
		if !ok {
			return
		}
		if resp.ID&saIDTag == 0 {
			u.upQ.MustPush(resp)
			continue
		}
		// Current value returned from memory (Figure 4b step c): find the
		// reader entry to learn the combine kind, then start a chain.
		i := u.csFind(resp.Addr, func(e *entry) bool { return e.reader })
		if i < 0 {
			panic(fmt.Sprintf("saunit: memory value for addr %d with no reader entry", resp.Addr))
		}
		u.cs[i].reader = false // now a plain buffered operand for the chain
		if u.tr != nil && u.cs[i].sid != 0 {
			// The sampled op that fetched the current value goes back
			// to waiting in the combining store for the FU chain.
			u.tr.OpStage(u.cs[i].node, u.cs[i].sid-1, span.StageCS, now)
		}
		u.activeAdd(resp.Addr)
		u.ready = append(u.ready, chain{addr: resp.Addr, kind: u.cs[i].kind, val: resp.Val})
	}
}

// completeFU retires finished additions: the consumed entry is freed, any
// fetch response is delivered, and the new sum re-enters the ready list.
func (u *Unit) completeFU(now uint64) {
	for {
		op, ok := u.fu.Pop(now)
		if !ok {
			return
		}
		if u.fuInj.Fire() {
			// Injected transient error: the residue check rejects the
			// result and the addition reissues through the pipeline. The
			// consumed entry stays latched (inFU), so the replay computes
			// the identical sum. One draw per retired op.
			u.met.faultFURetry.Inc()
			if !u.fu.Push(now, op) {
				panic("saunit: FU retry push failed after pop")
			}
			u.stats.FUOps++
			if op.ch.kind.IsFP() {
				u.stats.FUOpsFP++
			}
			continue
		}
		e := &u.cs[op.entryIdx]
		if e.fetchID != 0 {
			// Fetch&Op extension (§3.3): return the pre-update value.
			u.upQ.MustPush(mem.Response{
				ID: e.fetchID - 1, Kind: e.kind, Addr: e.addr, Val: op.ch.val, Node: e.node,
			})
		}
		if u.tr != nil {
			if e.sid != 0 {
				if e.fetchID != 0 {
					u.tr.OpStage(e.node, e.sid-1, span.StageReply, now)
				} else {
					u.tr.OpEnd(e.node, e.sid-1, now)
				}
			}
			u.tr.SpanAsync(u.track, fmt.Sprintf("cs %v a=%d", e.kind, e.addr), e.alloc, now)
		}
		*e = entry{}
		u.csUsed--
		u.met.csEvictions.Inc()
		u.ready = append(u.ready, chain{addr: op.ch.addr, kind: op.ch.kind, val: op.result})
	}
}

// issueFU walks the ready chains: each either finds a buffered operand to
// consume (one FU issue, Figure 4b step d) or, with no operand left, becomes
// a write-back (step 7).
func (u *Unit) issueFU(now uint64) {
	issued := 0
	still := u.still[:0] // reuse last call's buffer; swapped below
	for k := range u.ready {
		ch := u.ready[k]
		if issued >= u.cfg.FUIssueWidth || u.fu.Full() {
			still = append(still, u.ready[k:]...)
			break
		}
		i := u.nextOperand(now, ch.addr)
		if i < 0 {
			if u.scrubPending(now, ch.addr) {
				// A matching operand is mid-parity-scrub: the chain must
				// wait for it rather than write back and strand its value.
				still = append(still, ch)
				continue
			}
			// Chain drained: write the sum back to memory.
			if u.wbQ.Push(mem.Request{ID: saIDTag, Kind: mem.Write, Addr: ch.addr, Val: ch.val}) {
				u.stats.MemWrites++
				u.met.memWrites.Inc()
				u.met.wbQDepth.Set(int64(u.wbQ.Len()))
				u.activeDel(ch.addr)
			} else {
				still = append(still, ch)
			}
			continue
		}
		e := &u.cs[i]
		e.inFU = true
		if u.tr != nil && e.sid != 0 {
			u.tr.OpStage(e.node, e.sid-1, span.StageFU, now)
		}
		u.fu.Push(now, fuOp{
			entryIdx: i,
			ch:       ch,
			result:   mem.Combine(e.kind, ch.val, e.val),
		})
		u.stats.FUOps++
		if e.kind.IsFP() {
			u.stats.FUOpsFP++
		}
		issued++
	}
	// Swap buffers: the surviving chains become ready, the drained ready
	// slice becomes next call's scratch. The two never alias.
	u.ready, u.still = still, u.ready[:0]
}

// nextOperand selects the combining-store entry a chain consumes next: the
// first match in scan order, or — with OrderedChains — the oldest arrival,
// which preserves program order for scan (parallel prefix) semantics.
func (u *Unit) nextOperand(now uint64, addr mem.Addr) int {
	consumable := func(e *entry) bool { return !e.inFU && !e.reader && e.scrubUntil <= now }
	if !u.cfg.OrderedChains {
		return u.csFind(addr, consumable)
	}
	best, bestSeq := -1, ^uint64(0)
	for i := range u.cs {
		e := &u.cs[i]
		if e.valid && e.addr == addr && consumable(e) && e.seq < bestSeq {
			best, bestSeq = i, e.seq
		}
	}
	return best
}

// scrubPending reports whether a buffered operand for addr is still inside
// its parity scrub (invisible to nextOperand but owed to the chain).
func (u *Unit) scrubPending(now uint64, addr mem.Addr) bool {
	return u.csFind(addr, func(e *entry) bool {
		return !e.inFU && !e.reader && e.scrubUntil > now
	}) >= 0
}

// wbQHolds reports whether a write-back for addr is still queued (not yet
// accepted downstream).
func (u *Unit) wbQHolds(addr mem.Addr) bool {
	for i := 0; i < u.wbQ.Len(); i++ {
		if u.wbQ.At(i).Addr == addr {
			return true
		}
	}
	return false
}

// issueReads sends current-value reads for reader entries that have not yet
// reached memory. A read is held while a write-back to the same address is
// still queued, preserving read-after-write order downstream.
func (u *Unit) issueReads(now uint64) {
	for i := range u.cs {
		e := &u.cs[i]
		if e.valid && e.reader && !e.sent {
			if e.scrubUntil > now {
				continue // parity scrub in progress: the read waits
			}
			if u.wbQHolds(e.addr) {
				continue
			}
			if !u.down.CanAccept(now) {
				return
			}
			if !u.down.Accept(now, mem.Request{ID: saIDTag | uint64(i), Kind: mem.Read, Addr: e.addr}) {
				return
			}
			e.sent = true
			if u.tr != nil && e.sid != 0 {
				u.tr.OpStage(e.node, e.sid-1, span.StageDRAM, now)
			}
			u.stats.MemReads++
			u.met.memReads.Inc()
		}
	}
}

// acceptInput processes head-of-queue requests: bypass ordinary traffic,
// allocate combining-store entries for scatter-adds (Figure 4b step a).
func (u *Unit) acceptInput(now uint64) {
	for taken := 0; taken < u.cfg.PortWidth; taken++ {
		r, ok := u.inQ.Peek()
		if !ok {
			return
		}
		if !r.Kind.IsScatterAdd() {
			if !u.down.CanAccept(now) || !u.down.Accept(now, r) {
				return
			}
			if u.tr != nil {
				u.tr.OpStage(r.Node, r.ID, u.downStage, now)
			}
			u.stats.Bypassed++
			u.met.bypassed.Inc()
			u.inQ.Pop()
			continue
		}
		i := u.csFree()
		if i < 0 {
			u.stats.StallFull++
			u.met.stallFull.Inc()
			return
		}
		// CAM: is this address already covered by a buffered entry or a
		// live chain? If so this request only buffers its operand.
		exists := u.activeHas(r.Addr) || u.csFind(r.Addr, func(*entry) bool { return true }) >= 0
		e := &u.cs[i]
		u.nextSeq++
		*e = entry{valid: true, addr: r.Addr, kind: r.Kind, val: r.Val, node: r.Node, seq: u.nextSeq}
		u.csUsed++
		if u.csInj.Fire() {
			// Injected parity fault on the latch: scrub by re-latching from
			// the input register. One draw per allocated entry.
			e.scrubUntil = now + scrubCycles
			u.met.faultCSScrub.Inc()
		}
		if u.tr != nil {
			e.alloc = now
			if u.tr.Sampled(r.Node, r.ID) {
				e.sid = r.ID + 1
				u.tr.OpStage(r.Node, r.ID, span.StageCS, now)
			}
		}
		if r.Kind.IsFetch() {
			e.fetchID = r.ID + 1
		}
		if exists {
			u.stats.Combined++
			u.met.csHits.Inc()
		} else {
			e.reader = true
			u.met.csMisses.Inc()
		}
		u.stats.SARequests++
		u.inQ.Pop()
	}
}

// drainWriteBacks pushes computed sums to memory.
func (u *Unit) drainWriteBacks(now uint64) {
	for {
		wb, ok := u.wbQ.Peek()
		if !ok {
			return
		}
		if !u.down.CanAccept(now) || !u.down.Accept(now, wb) {
			return
		}
		u.wbQ.Pop()
	}
}

// eagerCombine (ablation, not in the paper) merges one pair of buffered
// operands for the same address while the memory value is still in flight.
// It models an extra combining ALU cycle; fetch entries are excluded since
// they need an observable serialization point.
func (u *Unit) eagerCombine(now uint64) {
	for i := range u.cs {
		a := &u.cs[i]
		if !a.valid || a.inFU || a.reader || a.fetchID != 0 || a.scrubUntil > now {
			continue
		}
		for j := i + 1; j < len(u.cs); j++ {
			b := &u.cs[j]
			if !b.valid || b.inFU || b.reader || b.fetchID != 0 || b.addr != a.addr || b.kind != a.kind || b.scrubUntil > now {
				continue
			}
			a.val = mem.Combine(a.kind, a.val, b.val)
			if u.tr != nil {
				if b.sid != 0 {
					// The merged op's lifetime ends at the pre-combine;
					// its value rides entry a from here on.
					u.tr.OpEnd(b.node, b.sid-1, now)
				}
				u.tr.SpanAsync(u.track, fmt.Sprintf("cs %v a=%d", b.kind, b.addr), b.alloc, now)
			}
			*b = entry{}
			u.csUsed--
			u.met.csEvictions.Inc()
			u.stats.EagerOps++
			u.stats.FUOps++
			if a.kind.IsFP() {
				u.stats.FUOpsFP++
			}
			return
		}
	}
}
