// Package differ is the cycle-exactness gate for the quiescence
// fast-forward engine: it runs a figure's full simulation suite twice —
// once on the fast-forward path (the default) and once with legacy
// per-cycle stepping — and requires the two runs to be indistinguishable:
// byte-identical rendered tables, identical raw performance-counter
// snapshots (every bucket of every histogram, so skipped-cycle occupancy
// accounting is exact), and identical span reports (every sampled request
// lifecycle hits the same cycles).
//
// Any divergence means a component's NextEvent contract is wrong: it
// reported quiescence over a cycle in which it would have done observable
// work, or its Skip failed to apply a per-cycle counter effect.
//
// The same machinery gates the intra-run shard scheduler (DiffSharded):
// a figure generated with every multi-node simulation's compute phase
// fanned across worker shards must be indistinguishable from the
// sequential run — in both stepping modes and under fault injection. There
// a divergence means the two-phase step let a compute-phase write escape
// its shard (shared state that belonged in an exchange phase).
package differ

import (
	"fmt"

	"scatteradd/internal/exp"
	"scatteradd/internal/stats"
)

// Figures lists every figure the harness can diff.
var Figures = []int{6, 7, 8, 9, 10, 11, 12, 13, 14}

// Run regenerates figure fig with the given options. Options.Legacy selects
// the stepping mode.
func Run(fig int, o exp.Options) (exp.Table, error) {
	switch fig {
	case 6:
		return exp.Fig6(o), nil
	case 7:
		return exp.Fig7(o), nil
	case 8:
		return exp.Fig8(o), nil
	case 9:
		return exp.Fig9(o), nil
	case 10:
		return exp.Fig10(o), nil
	case 11:
		return exp.Fig11(o), nil
	case 12:
		return exp.Fig12(o), nil
	case 13:
		return exp.Fig13(o), nil
	case 14:
		return exp.Fig14(o), nil
	}
	return exp.Table{}, fmt.Errorf("differ: no figure %d", fig)
}

// Diff runs figure fig in both stepping modes with full stats and span
// collection and returns an error describing the first divergence, or nil
// when the runs are indistinguishable.
func Diff(fig int, o exp.Options) error {
	o.CollectStats = true
	o.CollectSpans = true
	o.Legacy = false
	ff, err := Run(fig, o)
	if err != nil {
		return err
	}
	o.Legacy = true
	legacy, err := Run(fig, o)
	if err != nil {
		return err
	}
	if err := Compare(ff, legacy); err != nil {
		return fmt.Errorf("fig %d: fast-forward diverges from per-cycle stepping: %w", fig, err)
	}
	return nil
}

// DiffSharded runs figure fig with intra-run sharding (shards worker
// shards per simulation) and sequentially, with full stats and span
// collection, in the stepping mode selected by o.Legacy, and returns an
// error describing the first divergence. It is the safety net of the
// epoch-parallel engine: any difference means a compute-phase write leaked
// across a shard boundary (state the two-phase step should have confined
// to the exchange phases).
func DiffSharded(fig, shards int, o exp.Options) error {
	o.CollectStats = true
	o.CollectSpans = true
	o.Shards = shards
	sharded, err := Run(fig, o)
	if err != nil {
		return err
	}
	o.Shards = 1
	sequential, err := Run(fig, o)
	if err != nil {
		return err
	}
	if err := Compare(sharded, sequential); err != nil {
		return fmt.Errorf("fig %d: %d-shard run diverges from sequential: %w", fig, shards, err)
	}
	return nil
}

// Compare reports the first observable difference between a fast-forward
// and a legacy run of the same figure, or nil.
func Compare(ff, legacy exp.Table) error {
	if err := compareSnapshots(ff.Counters, legacy.Counters); err != nil {
		return err
	}
	if err := compareSpans(ff.Spans, legacy.Spans); err != nil {
		return err
	}
	// The rendered table (rows, counter appendix, span appendix) last: the
	// raw comparisons above pinpoint divergences that collapsing or
	// formatting could mask.
	if a, b := ff.String(), legacy.String(); a != b {
		return fmt.Errorf("rendered tables differ\n--- fast-forward ---\n%s--- per-cycle ---\n%s", a, b)
	}
	return nil
}

// compareSnapshots compares raw (uncollapsed) counter snapshots entry by
// entry: every counter, gauge high-water mark, and histogram bucket.
func compareSnapshots(a, b stats.Snapshot) error {
	if len(a.Entries) != len(b.Entries) {
		return fmt.Errorf("stats snapshots have %d vs %d entries", len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		ea, eb := a.Entries[i], b.Entries[i]
		if ea != eb {
			return fmt.Errorf("stats entry %d differs: fast-forward %s=%d, per-cycle %s=%d",
				i, ea.Key, ea.Val, eb.Key, eb.Val)
		}
	}
	return nil
}

// compareSpans compares per-run span reports: same labels, same op counts,
// same latency statistics, same per-stage cycle attribution.
func compareSpans(a, b []exp.SpanRow) error {
	if len(a) != len(b) {
		return fmt.Errorf("span appendix has %d vs %d rows", len(a), len(b))
	}
	for i := range a {
		ra, rb := a[i], b[i]
		if ra.Label != rb.Label {
			return fmt.Errorf("span row %d label differs: %q vs %q", i, ra.Label, rb.Label)
		}
		if ra.Report.Ops != rb.Report.Ops || ra.Report.Mean != rb.Report.Mean ||
			ra.Report.P50 != rb.Report.P50 || ra.Report.P99 != rb.Report.P99 {
			return fmt.Errorf("span row %d (%q) stats differ: %+v vs %+v", i, ra.Label, ra.Report, rb.Report)
		}
		if len(ra.Report.Stages) != len(rb.Report.Stages) {
			return fmt.Errorf("span row %d (%q) has %d vs %d stages", i, ra.Label,
				len(ra.Report.Stages), len(rb.Report.Stages))
		}
		for s := range ra.Report.Stages {
			if ra.Report.Stages[s] != rb.Report.Stages[s] {
				return fmt.Errorf("span row %d (%q) stage %d differs: %+v vs %+v",
					i, ra.Label, s, ra.Report.Stages[s], rb.Report.Stages[s])
			}
		}
	}
	return nil
}
