package differ

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"scatteradd/internal/exp"
	"scatteradd/internal/fault"
)

// figsUnderTest returns the figure set to diff: FFDIFF_FIGS narrows it for
// targeted CI jobs (comma-separated figure numbers), otherwise every figure.
func figsUnderTest(t *testing.T) []int {
	env := os.Getenv("FFDIFF_FIGS")
	if env == "" {
		return Figures
	}
	var figs []int
	for _, f := range strings.Split(env, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			t.Fatalf("FFDIFF_FIGS=%q: %v", env, err)
		}
		figs = append(figs, n)
	}
	return figs
}

// scaleUnderTest returns the dataset scale divisor: FFDIFF_SCALE overrides
// the default of 8 (small enough to diff every figure in one test run,
// large enough that every component — caches, DRAM, network, combining
// stores — sees real traffic).
func scaleUnderTest(t *testing.T) int {
	env := os.Getenv("FFDIFF_SCALE")
	if env == "" {
		return 8
	}
	n, err := strconv.Atoi(env)
	if err != nil {
		t.Fatalf("FFDIFF_SCALE=%q: %v", env, err)
	}
	return n
}

// figScale bumps the dataset divisor for the kilo-node scale-out figure:
// the equivalence gates are scale-independent, and Fig. 14's 16-1024-node
// fabrics are an order of magnitude more simulation per reference than the
// paper-scale figures.
func figScale(fig, scale int) int {
	if fig == 14 {
		return scale * 8
	}
	return scale
}

// TestFastForwardEquivalence is the differential gate: every figure must
// produce byte-identical output — rendered table, raw counter snapshot,
// span reports — under quiescence fast-forward and legacy per-cycle
// stepping.
func TestFastForwardEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("differential gate runs full figure suites")
	}
	scale := scaleUnderTest(t)
	for _, fig := range figsUnderTest(t) {
		fig := fig
		t.Run(fmt.Sprintf("fig%d", fig), func(t *testing.T) {
			t.Parallel()
			// Jobs: 1 inside each run — the figures under test already run
			// in parallel with each other here, and single-worker runs keep
			// any divergence deterministic to rerun.
			if err := Diff(fig, exp.Options{Scale: figScale(fig, scale), Jobs: 1}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFastForwardJobsInvariance checks the fast-forward path composes with
// the parallel experiment runner: a multi-worker fast-forward run must be
// indistinguishable from a single-worker legacy run.
func TestFastForwardJobsInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("differential gate runs full figure suites")
	}
	scale := scaleUnderTest(t)
	o := exp.Options{Scale: scale, CollectStats: true, CollectSpans: true}
	o.Legacy, o.Jobs = false, 4
	ff, err := Run(6, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Legacy, o.Jobs = true, 1
	legacy, err := Run(6, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := Compare(ff, legacy); err != nil {
		t.Fatalf("fig 6 at jobs=4 (fast-forward) vs jobs=1 (per-cycle): %v", err)
	}
}

// TestFastForwardEquivalenceWithFaults extends the differential gate to
// fault-injected runs: with every injector firing at the default chaos rate,
// fast-forward and per-cycle stepping must still be indistinguishable. This
// is the strongest form of the injectors' event-grain determinism contract —
// fault draws happen only at granted/issued/retired events, which both
// stepping modes execute identically. Fig. 6 covers the single-node memory
// system (DRAM stalls and windows, partial scrubs, FU retries); Fig. 13
// covers the multi-node link layer (drops, duplications, retries, dedup)
// and combining-store degradation; Fig. 14 covers the multi-hop fabrics'
// per-hop retransmit/dedup and in-switch combining under loss.
func TestFastForwardEquivalenceWithFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("differential gate runs full figure suites")
	}
	scale := scaleUnderTest(t) * 2 // chaos runs are slower; shrink the data
	for _, fig := range []int{6, 13, 14} {
		fig := fig
		t.Run(fmt.Sprintf("fig%d", fig), func(t *testing.T) {
			t.Parallel()
			o := exp.Options{Scale: scale, Jobs: 1, Faults: fault.DefaultChaos()}
			if err := Diff(fig, o); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// shardedFigsUnderTest returns the figure set for the sharded gates.
// Under the race detector (with no explicit FFDIFF_FIGS) it narrows to
// Fig. 6 and Fig. 13 — one single-machine figure exercising the bank-cluster
// spin pool and the multi-node figure exercising the per-node worker pool:
// race instrumentation makes the full-figure sweeps ~10x slower, and the
// remaining single-machine figures run the same sharded machine code path
// Fig. 6 does. The full matrix runs un-instrumented in the regular test job
// and the sharded-equivalence CI job.
func shardedFigsUnderTest(t *testing.T) []int {
	if raceEnabled && os.Getenv("FFDIFF_FIGS") == "" {
		return []int{6, 13}
	}
	return figsUnderTest(t)
}

// shardedScaleUnderTest shrinks the sharded gates' dataset under the race
// detector (unless FFDIFF_SCALE pins one): the shard pool crosses two
// channel hops per simulated cycle, which race instrumentation makes an
// order of magnitude slower. Byte-equivalence is scale-independent — the
// full-size sweep runs un-instrumented.
func shardedScaleUnderTest(t *testing.T) int {
	if raceEnabled && os.Getenv("FFDIFF_SCALE") == "" {
		return 32
	}
	return scaleUnderTest(t)
}

// TestShardedEquivalence is the shard scheduler's differential gate: every
// figure must produce byte-identical output — rendered table, raw counter
// snapshot, span reports — whether each simulation runs sequentially or
// fanned across 2 or 4 worker shards. Multi-node figures shard their
// per-node engines; single-machine figures (6-12) shard the machine's bank
// clusters, so the whole evaluation now exercises a parallel tick path that
// this gate pins against its sequential twin.
func TestShardedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("differential gate runs full figure suites")
	}
	scale := shardedScaleUnderTest(t)
	for _, fig := range shardedFigsUnderTest(t) {
		for _, shards := range []int{2, 4} {
			fig, shards := fig, shards
			t.Run(fmt.Sprintf("fig%d/shards%d", fig, shards), func(t *testing.T) {
				t.Parallel()
				if err := DiffSharded(fig, shards, exp.Options{Scale: scale, Jobs: 1}); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestShardedEquivalenceLegacyStepping covers the other stepping mode: the
// sharded step wrapped in per-cycle stepping (no fast-forward) must also
// match its sequential twin on every figure. Fig. 13 is the only
// multi-node figure, so it is the one that can actually diverge.
func TestShardedEquivalenceLegacyStepping(t *testing.T) {
	if testing.Short() {
		t.Skip("differential gate runs full figure suites")
	}
	scale := shardedScaleUnderTest(t)
	for _, fig := range shardedFigsUnderTest(t) {
		fig := fig
		t.Run(fmt.Sprintf("fig%d", fig), func(t *testing.T) {
			t.Parallel()
			o := exp.Options{Scale: figScale(fig, scale), Jobs: 1, Legacy: true}
			if err := DiffSharded(fig, 4, o); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestShardedEquivalenceWithFaults is the hardest sharding gate: with every
// injector firing at the default chaos rate — link drops and duplications,
// retransmissions, dedup, combining-store scrubs and degradation — a
// 4-shard run must not move a byte relative to sequential. Fault draws key
// on (seed, component, event index), and the exchange/commit phases execute
// in canonical order in both modes, so any divergence means compute-phase
// state leaked across a shard boundary. Fig. 6 covers the sharded
// single-machine memory system, Fig. 10 its async-overlap workload shape,
// Fig. 13 the multi-node link layer, Fig. 14 the multi-hop switch fabrics.
func TestShardedEquivalenceWithFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("differential gate runs full figure suites")
	}
	scale := shardedScaleUnderTest(t) * 2 // chaos runs are slower; shrink the data
	figs := []int{6, 10, 13, 14}
	if raceEnabled && os.Getenv("FFDIFF_FIGS") == "" {
		figs = []int{6, 13} // see shardedFigsUnderTest
	}
	for _, fig := range figs {
		fig := fig
		t.Run(fmt.Sprintf("fig%d", fig), func(t *testing.T) {
			t.Parallel()
			o := exp.Options{Scale: figScale(fig, scale), Jobs: 1, Faults: fault.DefaultChaos()}
			if err := DiffSharded(fig, 4, o); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRunRejectsUnknownFigure covers the error path.
func TestRunRejectsUnknownFigure(t *testing.T) {
	if _, err := Run(99, exp.Options{Scale: 8}); err == nil {
		t.Fatal("Run(99) succeeded; want error")
	}
}
