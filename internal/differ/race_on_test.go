//go:build race

package differ

// raceEnabled reports whether this test binary was built with the race
// detector; see shardedFigsUnderTest.
const raceEnabled = true
