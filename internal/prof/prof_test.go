package prof

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

// filepathStat returns the size of a file.
func filepathStat(p string) (int64, error) {
	fi, err := os.Stat(p)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func TestNilSessionIsInert(t *testing.T) {
	var s *Session
	if err := s.Stop(); err != nil {
		t.Fatalf("nil Stop: %v", err)
	}
	if a := s.HTTPAddr(); a != "" {
		t.Fatalf("nil HTTPAddr = %q, want empty", a)
	}
}

func TestZeroConfigStartsNothing(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero Config reports Enabled")
	}
	s, err := Start(Config{})
	if err != nil {
		t.Fatalf("Start(zero): %v", err)
	}
	if err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if err := s.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
}

func TestFileProfiles(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		Trace:      filepath.Join(dir, "trace.out"),
	}
	if !cfg.Enabled() {
		t.Fatal("file config reports disabled")
	}
	s, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Generate a little work so the profiles have something to record.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i * i
	}
	_ = sink
	if err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	for _, p := range []string{cfg.CPUProfile, cfg.MemProfile, cfg.Trace} {
		if fi, err := filepathStat(p); err != nil || fi == 0 {
			t.Errorf("profile %s: size=%d err=%v", p, fi, err)
		}
	}
}

func TestHTTPServesPprofIndex(t *testing.T) {
	s, err := Start(Config{HTTPAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Stop()
	addr := s.HTTPAddr()
	if addr == "" {
		t.Fatal("no listen address")
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", addr))
	if err != nil {
		t.Fatalf("GET /debug/pprof/: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %q", resp.StatusCode, body)
	}
	if len(body) == 0 {
		t.Fatal("empty pprof index")
	}
}

func TestFlagsRegisterAndFill(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	cfg := Flags(fs)
	err := fs.Parse([]string{
		"-pprof-http", "localhost:7070",
		"-cpuprofile", "cpu.out",
		"-memprofile", "mem.out",
		"-trace-out", "t.out",
	})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := Config{HTTPAddr: "localhost:7070", CPUProfile: "cpu.out", MemProfile: "mem.out", Trace: "t.out"}
	if *cfg != want {
		t.Fatalf("parsed %+v, want %+v", *cfg, want)
	}
}
