// Package prof wires the standard Go profiling surfaces — net/http/pprof,
// CPU/heap profiles, and the runtime execution tracer — behind one Config so
// every CLI exposes them uniformly. The simulator is single-threaded per
// run but the experiment layer fans runs out across CPUs; the execution
// trace is the tool of choice for seeing how the worker pool schedules, and
// the CPU profile for finding simulation hot spots.
package prof

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers on DefaultServeMux
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Config selects the profiling surfaces to enable. The zero value enables
// nothing and Start returns a no-op session.
type Config struct {
	HTTPAddr   string // serve net/http/pprof here (e.g. "localhost:6060")
	CPUProfile string // write a CPU profile to this file
	MemProfile string // write a heap profile to this file at Stop
	Trace      string // write a runtime execution trace to this file
}

// Flags registers the standard profiling flags on fs and returns the Config
// they fill in at parse time.
func Flags(fs *flag.FlagSet) *Config {
	var c Config
	fs.StringVar(&c.HTTPAddr, "pprof-http", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&c.Trace, "trace-out", "", "write a runtime execution trace to this file")
	return &c
}

// Enabled reports whether any surface is configured.
func (c Config) Enabled() bool {
	return c.HTTPAddr != "" || c.CPUProfile != "" || c.MemProfile != "" || c.Trace != ""
}

// Session holds the running profiling surfaces. A nil Session is inert:
// Stop is a no-op and HTTPAddr returns "".
type Session struct {
	ln         net.Listener
	cpuF       *os.File
	traceF     *os.File
	memProfile string
}

// Start enables the configured surfaces. The caller must Stop the returned
// session to flush profiles; on error, anything already started is torn
// down and a nil session is returned.
func Start(cfg Config) (*Session, error) {
	s := &Session{memProfile: cfg.MemProfile}
	fail := func(err error) (*Session, error) {
		s.Stop()
		return nil, err
	}
	if cfg.CPUProfile != "" {
		f, err := os.Create(cfg.CPUProfile)
		if err != nil {
			return fail(err)
		}
		s.cpuF = f
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(fmt.Errorf("prof: start CPU profile: %w", err))
		}
	}
	if cfg.Trace != "" {
		f, err := os.Create(cfg.Trace)
		if err != nil {
			return fail(err)
		}
		s.traceF = f
		if err := trace.Start(f); err != nil {
			return fail(fmt.Errorf("prof: start execution trace: %w", err))
		}
	}
	if cfg.HTTPAddr != "" {
		ln, err := net.Listen("tcp", cfg.HTTPAddr)
		if err != nil {
			return fail(fmt.Errorf("prof: pprof listener: %w", err))
		}
		s.ln = ln
		go func() {
			// Serve exits when Stop closes the listener.
			_ = http.Serve(ln, nil)
		}()
	}
	return s, nil
}

// HTTPAddr returns the actual pprof listen address ("" when off), useful
// when the configured address had port 0.
func (s *Session) HTTPAddr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Stop flushes and closes every enabled surface. It is safe to call on a
// nil or partially-started session, and more than once.
func (s *Session) Stop() error {
	if s == nil {
		return nil
	}
	var errs []error
	if s.cpuF != nil {
		pprof.StopCPUProfile()
		errs = append(errs, s.cpuF.Close())
		s.cpuF = nil
	}
	if s.traceF != nil {
		trace.Stop()
		errs = append(errs, s.traceF.Close())
		s.traceF = nil
	}
	if s.memProfile != "" {
		f, err := os.Create(s.memProfile)
		if err != nil {
			errs = append(errs, err)
		} else {
			runtime.GC() // materialize the final live set
			errs = append(errs, pprof.WriteHeapProfile(f), f.Close())
		}
		s.memProfile = ""
	}
	if s.ln != nil {
		errs = append(errs, s.ln.Close())
		s.ln = nil
	}
	return errors.Join(errs...)
}
