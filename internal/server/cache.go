package server

import (
	"container/list"
	"fmt"
	"runtime/debug"
	"sync"

	"scatteradd/internal/exp"
	"scatteradd/internal/stats"
)

// resultCache is the service-layer combining stage: an in-flight
// singleflight table plus a bounded LRU of completed tables, both keyed by
// Request.CacheKey (figure + canonical options fingerprint). Concurrent
// identical requests merge onto one simulation the way the paper's combining
// store merges scatter-adds to one address — the leader computes, followers
// wait on its done channel and receive the same Table, and a later repeat is
// served from the LRU without simulating at all.
//
// Locking: mu guards the maps, the LRU list, and the cache's stats group;
// the compute itself always runs outside the lock. Snapshotting the stats
// group from another goroutine must hold mu too (Server.snapshot does).
type resultCache struct {
	mu       sync.Mutex
	max      int        // LRU capacity in entries; 0 disables the LRU (coalescing stays on)
	ll       *list.List // front = most recently used
	byKey    map[string]*list.Element
	inflight map[string]*inflightCall

	hits      *stats.Counter
	misses    *stats.Counter
	coalesced *stats.Counter
	evictions *stats.Counter
	entries   *stats.Gauge
}

// cacheEntry is one completed table in the LRU.
type cacheEntry struct {
	key   string
	table exp.Table
}

// inflightCall is one in-progress computation; followers block on done.
type inflightCall struct {
	done  chan struct{}
	table exp.Table
	err   error
}

// newResultCache builds a cache of at most max tables whose counters live in
// the given stats group.
func newResultCache(max int, g *stats.Group) *resultCache {
	if max < 0 {
		max = 0
	}
	return &resultCache{
		max:      max,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element),
		inflight: make(map[string]*inflightCall),

		hits:      g.Counter("hits"),
		misses:    g.Counter("misses"),
		coalesced: g.Counter("coalesced"),
		evictions: g.Counter("evictions"),
		entries:   g.Gauge("entries"),
	}
}

// Cache outcome labels (the X-Cache response header).
const (
	CacheHit       = "hit"       // served from the LRU, nothing simulated
	CacheMiss      = "miss"      // this request ran the simulation
	CacheCoalesced = "coalesced" // merged onto a simulation already in flight
)

// Do returns the table for key, computing it at most once across concurrent
// callers: an LRU hit returns immediately, a key already in flight blocks
// until the leader finishes and shares its result, and otherwise the caller
// becomes the leader and runs compute. A panic inside compute (exp runners
// panic on internal errors) is captured and returned as an error to every
// waiter — one poisoned figure request must not take the daemon down.
func (c *resultCache) Do(key string, compute func() exp.Table) (exp.Table, string, error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		t := el.Value.(*cacheEntry).table
		c.hits.Inc()
		c.mu.Unlock()
		return t, CacheHit, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.coalesced.Inc()
		c.mu.Unlock()
		<-call.done
		return call.table, CacheCoalesced, call.err
	}
	call := &inflightCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.misses.Inc()
	c.mu.Unlock()

	call.table, call.err = computeSafe(compute)

	c.mu.Lock()
	delete(c.inflight, key)
	if call.err == nil {
		c.addLocked(key, call.table)
	}
	c.mu.Unlock()
	close(call.done)
	return call.table, CacheMiss, call.err
}

// computeSafe runs compute, converting a panic into an error with the
// worker's stack attached.
func computeSafe(compute func() exp.Table) (t exp.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("simulation panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return compute(), nil
}

// addLocked inserts a completed table at the LRU front, evicting from the
// back past capacity. Caller holds mu.
func (c *resultCache) addLocked(key string, t exp.Table) {
	if c.max == 0 {
		return
	}
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).table = t
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, table: t})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
	c.entries.Set(int64(c.ll.Len()))
}

// Len returns the number of cached tables.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// dump snapshots the cached entries oldest-first (so replaying them through
// addLocked in order reproduces the same LRU order). Used by the persisted
// index (persist.go).
func (c *resultCache) dump() []cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]cacheEntry, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		out = append(out, *el.Value.(*cacheEntry))
	}
	return out
}

// seed inserts entries as if they had just been computed (front of the LRU,
// evicting past capacity). Used to warm the cache from a persisted index.
func (c *resultCache) seed(entries []cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range entries {
		c.addLocked(e.key, e.table)
	}
}
