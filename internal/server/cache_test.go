package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scatteradd/internal/exp"
	"scatteradd/internal/stats"
)

// testCache builds a cache of max entries with a throwaway stats group.
func testCache(max int) *resultCache {
	return newResultCache(max, stats.NewGroup("cache"))
}

// tableFor fabricates a distinguishable table.
func tableFor(label string) exp.Table {
	return exp.Table{Title: label, Header: []string{"k"}, Rows: [][]string{{label}}}
}

// validated turns a spec into a Request, failing the test on error.
func validated(t *testing.T, sp Spec) Request {
	t.Helper()
	req, err := sp.Validate(Limits{})
	if err != nil {
		t.Fatalf("Validate(%+v): %v", sp, err)
	}
	return req
}

// TestCacheIdenticalSpecsCoalesceToOneSimulation: the satellite's headline
// contract — two requests with identical specs run ONE simulation; the
// second is a counted cache hit with the same table.
func TestCacheIdenticalSpecsCoalesceToOneSimulation(t *testing.T) {
	c := testCache(8)
	var computes atomic.Int64
	compute := func() exp.Table {
		computes.Add(1)
		return tableFor("once")
	}
	key := validated(t, Spec{Figure: "fig6", Scale: 32}).CacheKey()
	t1, st1, err := c.Do(key, compute)
	if err != nil || st1 != CacheMiss {
		t.Fatalf("first Do: status %q, err %v", st1, err)
	}
	t2, st2, err := c.Do(key, compute)
	if err != nil || st2 != CacheHit {
		t.Fatalf("second Do: status %q, err %v", st2, err)
	}
	if computes.Load() != 1 {
		t.Fatalf("%d simulations for identical specs (want 1)", computes.Load())
	}
	if t1.String() != t2.String() {
		t.Fatal("cache hit returned different table")
	}
	if c.hits.Value() != 1 || c.misses.Value() != 1 {
		t.Fatalf("hit/miss counters %d/%d (want 1/1)", c.hits.Value(), c.misses.Value())
	}
}

// TestCacheKeySemantics: differing fault seeds (and any output-affecting
// option) miss; jobs/shards/format — which never change rendered bytes — hit
// the same entry.
func TestCacheKeySemantics(t *testing.T) {
	base := Spec{Figure: "fig13", Scale: 512, Faults: 1}
	k := validated(t, base).CacheKey()

	differ := base
	differ.FaultSeed = 0xFACE
	if validated(t, differ).CacheKey() == k {
		t.Fatal("differing fault seed produced the same cache key")
	}
	scaled := base
	scaled.Faults = 0.5
	if validated(t, scaled).CacheKey() == k {
		t.Fatal("differing fault scale produced the same cache key")
	}
	otherFig := base
	otherFig.Figure = "fig6"
	if validated(t, otherFig).CacheKey() == k {
		t.Fatal("differing figure produced the same cache key")
	}

	sharded := base
	sharded.Shards = 4
	if validated(t, sharded).CacheKey() != k {
		t.Fatal("shards changed the cache key (they never change rendered bytes)")
	}
	formatted := base
	formatted.Format = "csv"
	if validated(t, formatted).CacheKey() != k {
		t.Fatal("format changed the cache key (rendering happens after the cache)")
	}
}

// TestCacheLRUEvictionBoundsMemory: capacity is entry-exact; the least
// recently used entry is the one evicted, and the eviction counter tallies.
func TestCacheLRUEvictionBoundsMemory(t *testing.T) {
	c := testCache(2)
	mk := func(i int) string { return fmt.Sprintf("key-%d", i) }
	for i := 0; i < 3; i++ {
		c.Do(mk(i), func() exp.Table { return tableFor(mk(i)) })
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries (capacity 2)", c.Len())
	}
	if c.evictions.Value() != 1 {
		t.Fatalf("evictions counter %d (want 1)", c.evictions.Value())
	}
	// key-0 was the oldest: it must have been evicted; key-1 and key-2 hit.
	if _, st, _ := c.Do(mk(1), func() exp.Table { return tableFor("x") }); st != CacheHit {
		t.Fatalf("key-1 status %q (want hit)", st)
	}
	if _, st, _ := c.Do(mk(2), func() exp.Table { return tableFor("x") }); st != CacheHit {
		t.Fatalf("key-2 status %q (want hit)", st)
	}
	var recomputed bool
	if _, st, _ := c.Do(mk(0), func() exp.Table { recomputed = true; return tableFor("again") }); st != CacheMiss || !recomputed {
		t.Fatalf("key-0 status %q recomputed=%v (want evicted -> miss)", st, recomputed)
	}
	// Touching key-2 then inserting must evict key-1, not key-2.
	c.Do(mk(2), func() exp.Table { return tableFor("x") })
	c.Do(mk(9), func() exp.Table { return tableFor("new") })
	if _, st, _ := c.Do(mk(2), func() exp.Table { return tableFor("x") }); st != CacheHit {
		t.Fatal("recently used entry was evicted instead of the LRU one")
	}
}

// TestCacheConcurrentIdenticalRequests: N racing identical requests produce
// exactly one simulation; every caller — leader, coalesced, or later hit —
// receives the same bytes. Run under -race in CI.
func TestCacheConcurrentIdenticalRequests(t *testing.T) {
	c := testCache(8)
	var computes atomic.Int64
	gate := make(chan struct{})
	compute := func() exp.Table {
		<-gate // hold every early arrival in the coalescing window
		computes.Add(1)
		return tableFor("shared")
	}
	const n = 16
	req := validated(t, Spec{Figure: "fig6", Format: "csv"})
	var wg sync.WaitGroup
	bodies := make([]string, n)
	statuses := make([]string, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			tab, st, err := c.Do("key", compute)
			if err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			body, _ := req.Render(tab)
			bodies[i] = string(body)
			statuses[i] = st
		}(i)
	}
	close(gate)
	wg.Wait()
	if computes.Load() != 1 {
		t.Fatalf("%d simulations for 16 concurrent identical requests (want 1)", computes.Load())
	}
	var coalesced int
	for i := 1; i < n; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("request %d received different bytes (%q vs %q)", i, bodies[i], bodies[0])
		}
		if statuses[i] == CacheCoalesced {
			coalesced++
		}
	}
	if got := c.coalesced.Value(); int(got) != coalesced {
		t.Fatalf("coalesced counter %d but %d callers reported coalesced", got, coalesced)
	}
}

// TestCachePanicBecomesError: a panicking simulation poisons neither the
// cache nor the daemon — the leader and every coalesced waiter get an error,
// nothing is cached, and a retry recomputes.
func TestCachePanicBecomesError(t *testing.T) {
	c := testCache(8)
	_, _, err := c.Do("bad", func() exp.Table { panic("exp: cell lookup failed") })
	if err == nil {
		t.Fatal("panic did not surface as an error")
	}
	if c.Len() != 0 {
		t.Fatal("failed computation was cached")
	}
	tab, st, err := c.Do("bad", func() exp.Table { return tableFor("recovered") })
	if err != nil || st != CacheMiss || tab.Title != "recovered" {
		t.Fatalf("retry after panic: %q/%v (want fresh miss)", st, err)
	}
}

// TestCacheDisabledStillCoalesces: capacity 0 turns the LRU off but keeps
// in-flight dedup — sequential identical requests recompute, concurrent ones
// still merge.
func TestCacheDisabledStillCoalesces(t *testing.T) {
	c := testCache(0)
	var computes atomic.Int64
	compute := func() exp.Table { computes.Add(1); return tableFor("x") }
	c.Do("k", compute)
	_, st, _ := c.Do("k", compute)
	if st != CacheMiss || computes.Load() != 2 {
		t.Fatalf("disabled cache served status %q after %d computes (want miss, 2)", st, computes.Load())
	}

	// In-flight dedup: hold a leader inside its computation, wait until
	// three followers have registered as coalesced, then release — exactly
	// one simulation runs.
	started := make(chan struct{})
	release := make(chan struct{})
	var k2computes atomic.Int64
	go c.Do("k2", func() exp.Table {
		close(started)
		<-release
		k2computes.Add(1)
		return tableFor("y")
	})
	<-started
	var wg sync.WaitGroup
	wg.Add(3)
	for i := 0; i < 3; i++ {
		go func() {
			defer wg.Done()
			if _, st, _ := c.Do("k2", func() exp.Table { k2computes.Add(1); return tableFor("y") }); st != CacheCoalesced {
				t.Errorf("follower status %q (want coalesced)", st)
			}
		}()
	}
	waitCoalesced(t, c, 3)
	close(release)
	wg.Wait()
	if k2computes.Load() != 1 {
		t.Fatalf("%d simulations with the LRU disabled (want 1: coalescing stays on)", k2computes.Load())
	}
}

// waitCoalesced blocks until n callers have coalesced onto in-flight work.
func waitCoalesced(t *testing.T, c *resultCache, n uint64) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		c.mu.Lock()
		got := c.coalesced.Value()
		c.mu.Unlock()
		if got >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("followers never coalesced")
}
