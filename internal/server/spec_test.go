package server

import (
	"net/url"
	"strings"
	"testing"

	"scatteradd/internal/exp"
)

// TestValidateRejections: every malformed spec names its offending field in
// a client error; nothing panics.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		sp   Spec
		l    Limits
		want string
	}{
		{"unknown figure", Spec{Figure: "fig99"}, Limits{}, "fig99"},
		{"empty figure", Spec{}, Limits{}, "figure"},
		{"negative scale", Spec{Figure: "fig6", Scale: -1}, Limits{}, "scale"},
		{"scale under floor", Spec{Figure: "fig6", Scale: 4}, Limits{MinScale: 8}, "floor"},
		{"negative shards", Spec{Figure: "fig13", Shards: -2}, Limits{}, "shards"},
		{"shards over cap", Spec{Figure: "fig13", Shards: 9}, Limits{MaxShards: 8}, "shards"},
		{"negative span rate", Spec{Figure: "fig6", SpanRate: -1}, Limits{}, "span_rate"},
		{"faults over 1", Spec{Figure: "fig6", Faults: 1.5}, Limits{}, "faults"},
		{"negative faults", Spec{Figure: "fig6", Faults: -0.1}, Limits{}, "faults"},
		{"bad format", Spec{Figure: "fig6", Format: "xml"}, Limits{}, "format"},
		{"bad topology", Spec{Figure: "fig14", Topology: "torus"}, Limits{}, "topology"},
		{"topology off figure", Spec{Figure: "fig6", Topology: "tree"}, Limits{}, "topology"},
		{"fan_in off figure", Spec{Figure: "fig13", FanIn: 4}, Limits{}, "topology"},
		{"fan_in of 1", Spec{Figure: "fig14", FanIn: 1}, Limits{}, "fan_in"},
		{"fan_in over cap", Spec{Figure: "fig14", FanIn: 32}, Limits{MaxFanIn: 8}, "fan_in"},
	}
	for _, tc := range cases {
		_, err := tc.sp.Validate(tc.l)
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestValidateDefaults: the zero spec fields resolve to the CLI's defaults.
func TestValidateDefaults(t *testing.T) {
	req := validated(t, Spec{Figure: "fig6"})
	if req.Opts.Scale != 1 || req.Opts.Shards != 1 || req.Format != "json" {
		t.Fatalf("defaults: %+v / format %q", req.Opts, req.Format)
	}
	if req.Opts.Jobs != 0 {
		t.Fatal("Validate assigned Jobs; that is the server's runtime decision")
	}
	faulted := validated(t, Spec{Figure: "fig6", Faults: 1, FaultSeed: 7})
	if faulted.Opts.Faults.Seed != 7 {
		t.Fatal("fault seed not applied")
	}
	unfaulted := validated(t, Spec{Figure: "fig6", FaultSeed: 7})
	if unfaulted.Opts.Faults != (validated(t, Spec{Figure: "fig6"}).Opts.Faults) {
		t.Fatal("fault_seed without faults>0 must be inert (mirrors the CLI)")
	}
}

// TestValidateTopology: topology and fan_in reach exp.Options on fig14 and
// participate in the cache key (different topologies are different results).
func TestValidateTopology(t *testing.T) {
	req := validated(t, Spec{Figure: "fig14", Scale: 64, Topology: "tree+comb", FanIn: 8})
	if req.Opts.Topology != "tree+comb" || req.Opts.FanIn != 8 {
		t.Fatalf("topology options not threaded: %+v", req.Opts)
	}
	plain := validated(t, Spec{Figure: "fig14", Scale: 64})
	if req.CacheKey() == plain.CacheKey() {
		t.Fatal("topology does not reach the cache key")
	}
}

// TestRenderFormats: "csv" reproduces `scatteradd -csv` byte-for-byte,
// "text" the aligned table, and "json" round-trips the table.
func TestRenderFormats(t *testing.T) {
	tab := exp.Table{
		Title:  "T, with comma",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "x,y"}},
		Notes:  []string{"n"},
	}
	csvBody, ctype := Request{Format: "csv"}.Render(tab)
	wantCSV := "# T, with comma\n" + tab.CSV() + "\n"
	if string(csvBody) != wantCSV {
		t.Fatalf("csv body %q, want %q", csvBody, wantCSV)
	}
	if !strings.HasPrefix(ctype, "text/csv") {
		t.Fatalf("csv content type %q", ctype)
	}
	textBody, _ := Request{Format: "text"}.Render(tab)
	if string(textBody) != tab.String() {
		t.Fatalf("text body %q, want %q", textBody, tab.String())
	}
	jsonBody, ctype := Request{Format: "json"}.Render(tab)
	if !strings.HasPrefix(ctype, "application/json") || !strings.Contains(string(jsonBody), `"T, with comma"`) {
		t.Fatalf("json render: %q (%s)", jsonBody, ctype)
	}
}

// TestParseSpecQueryAndBody: GET query parameters and POST JSON produce the
// same spec; unknown fields are rejected on both paths.
func TestParseSpecQueryAndBody(t *testing.T) {
	q := url.Values{}
	q.Set("figure", "fig13")
	q.Set("scale", "8")
	q.Set("shards", "4")
	q.Set("faults", "0.5")
	q.Set("stats", "true")
	q.Set("format", "csv")
	fromQuery, err := ParseSpec("GET", q, nil)
	if err != nil {
		t.Fatal(err)
	}
	body := strings.NewReader(`{"figure":"fig13","scale":8,"shards":4,"faults":0.5,"stats":true,"format":"csv"}`)
	fromBody, err := ParseSpec("POST", nil, body)
	if err != nil {
		t.Fatal(err)
	}
	if fromQuery != fromBody {
		t.Fatalf("query %+v != body %+v", fromQuery, fromBody)
	}

	if _, err := ParseSpec("GET", url.Values{"figrue": {"fig6"}}, nil); err == nil {
		t.Fatal("typoed query parameter accepted")
	}
	if _, err := ParseSpec("POST", nil, strings.NewReader(`{"figrue":"fig6"}`)); err == nil {
		t.Fatal("typoed JSON field accepted")
	}
	if _, err := ParseSpec("GET", url.Values{"scale": {"lots"}}, nil); err == nil {
		t.Fatal("non-numeric scale accepted")
	}
}

// TestFiguresInventory: the accepted set is the paper's evaluation plus
// table1, sorted for stable error messages.
func TestFiguresInventory(t *testing.T) {
	got := Figures()
	want := []string{"fig10", "fig11", "fig12", "fig13", "fig14", "fig6", "fig7", "fig8", "fig9", "table1"}
	if len(got) != len(want) {
		t.Fatalf("figures %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("figures %v, want %v", got, want)
		}
	}
}
