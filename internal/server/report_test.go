package server

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestSummarizeLatenciesEmpty(t *testing.T) {
	if got := SummarizeLatencies(nil); got != (LatencySummary{}) {
		t.Fatalf("empty input = %+v, want zero value", got)
	}
}

func TestSummarizeLatenciesSingle(t *testing.T) {
	got := SummarizeLatencies([]time.Duration{5 * time.Millisecond})
	want := float64(5 * time.Millisecond)
	if got.Count != 1 || got.Mean != want || got.P50 != want ||
		got.P95 != want || got.P99 != want || got.Max != want {
		t.Fatalf("single sample = %+v", got)
	}
}

func TestSummarizeLatenciesPercentiles(t *testing.T) {
	// 100 samples: 1ms..100ms. Nearest-rank: p50 -> 50th value, p95 -> 95th,
	// p99 -> 99th, max -> 100th.
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	got := SummarizeLatencies(samples)
	msf := func(n int) float64 { return float64(time.Duration(n) * time.Millisecond) }
	if got.Count != 100 {
		t.Fatalf("count = %d", got.Count)
	}
	if got.P50 != msf(50) {
		t.Errorf("p50 = %v, want %v", got.P50, msf(50))
	}
	if got.P95 != msf(95) {
		t.Errorf("p95 = %v, want %v", got.P95, msf(95))
	}
	if got.P99 != msf(99) {
		t.Errorf("p99 = %v, want %v", got.P99, msf(99))
	}
	if got.Max != msf(100) {
		t.Errorf("max = %v, want %v", got.Max, msf(100))
	}
	if got.Mean != msf(1)*50.5/1 {
		t.Errorf("mean = %v, want %v", got.Mean, msf(1)*50.5)
	}
}

func TestSummarizeLatenciesUnsortedInput(t *testing.T) {
	a := SummarizeLatencies([]time.Duration{3, 1, 2})
	b := SummarizeLatencies([]time.Duration{1, 2, 3})
	if a != b {
		t.Fatalf("order-dependent summaries: %+v vs %+v", a, b)
	}
}

func TestLoadReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	want := LoadReport{
		Addr: "127.0.0.1:8080", TargetRPS: 50, DurationSec: 3,
		Sent: 150, Shed: 2,
		Status:         map[string]int{"200": 140, "429": 10},
		OK:             140,
		AchievedRPS:    46.7,
		Rejected429:    10,
		Cache:          map[string]int{"hit": 100, "miss": 40},
		Latency:        LatencySummary{Count: 140, Mean: 1e6, P50: 9e5, P95: 2e6, P99: 3e6, Max: 4e6},
		ScrapeChecked:  true,
		ScrapeProblems: []string{"requests: server counted 151, client saw 150"},
	}
	if err := want.Write(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadLoadReport(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Sent != want.Sent || got.OK != want.OK || got.Rejected429 != want.Rejected429 ||
		got.Latency != want.Latency || !got.ScrapeChecked ||
		len(got.ScrapeProblems) != 1 || got.Cache["hit"] != 100 {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestReadLoadReportMissing(t *testing.T) {
	if _, err := ReadLoadReport(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file not reported")
	}
}

func TestReadLoadReportCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLoadReport(path); err == nil {
		t.Fatal("corrupt file not reported")
	}
}
