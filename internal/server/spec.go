// Package server is the scatter-add simulation service: a long-lived HTTP
// daemon (cmd/scatteraddd) that accepts workload/figure specs as JSON,
// validates them into exp.Options, runs them on a bounded worker pool, and
// returns the rendered tables — the ROADMAP's "millions of users" direction,
// where the simulator becomes a multi-tenant backend instead of a one-shot
// CLI.
//
// The service layers, outermost first:
//
//   - per-tenant token-bucket quotas keyed by API token (quota.go)
//   - admission control: a bounded queue in front of a bounded pool of
//     simulation workers; overload answers 429 with Retry-After (server.go)
//   - request coalescing and a fingerprint-keyed LRU result cache: two
//     requests whose specs share the checkpoint fingerprint of
//     internal/exp are one simulation (cache.go), in the lineage of
//     in-network combining — identical requests merge before they ever
//     reach the simulator
//   - the simulation itself, exp.Fig* on the validated options
//
// Every response body is a pure function of the spec (timing and cache
// status travel in headers), so cached, coalesced, and freshly computed
// answers are byte-identical — CI holds the server's bytes against the
// scatteradd CLI's for the same options.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"scatteradd/internal/exp"
	"scatteradd/internal/fault"
)

// Spec is the wire form of one simulation request: which figure to
// regenerate and the options to regenerate it under. The zero value of every
// field means "the CLI's default"; Scale is the only required field a server
// may enforce a floor on (Limits.MinScale) to bound per-request cost.
type Spec struct {
	// Figure names the experiment: "table1" or "fig6" .. "fig14".
	Figure string `json:"figure"`
	// Scale divides dataset sizes, exactly as `scatteradd -scale` (0 = 1 =
	// the paper's full sizes — typically rejected by a server MinScale).
	Scale int `json:"scale,omitempty"`
	// Seed perturbs every workload seed (0 = the paper's fixed seeds).
	Seed uint64 `json:"seed,omitempty"`
	// Shards partitions each simulation's compute across workers — per-node
	// engines for multi-node figures, bank clusters for single-machine ones
	// (0 or 1 = sequential; the server never auto-picks). Output is
	// byte-identical for every value, so shards do not participate in the
	// result-cache key.
	Shards int `json:"shards,omitempty"`
	// Stats appends the hardware performance-counter appendix.
	Stats bool `json:"stats,omitempty"`
	// Spans appends the request-lifecycle latency appendix.
	Spans bool `json:"spans,omitempty"`
	// SpanRate samples 1 in N issued operations for Spans (0 = 16).
	SpanRate int `json:"span_rate,omitempty"`
	// Legacy forces per-cycle stepping instead of quiescence fast-forward.
	Legacy bool `json:"legacy,omitempty"`
	// Faults injects the default chaos fault mix scaled by X in [0,1].
	Faults float64 `json:"faults,omitempty"`
	// FaultSeed overrides the fault injector's seed (used only when
	// Faults > 0, mirroring the CLI).
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// Topology restricts the interconnect scale-out figure (fig14) to one
	// interconnect configuration: flat, tree, tree+comb, mesh, or mesh+comb
	// ("" = sweep all). Other figures reject a non-empty value.
	Topology string `json:"topology,omitempty"`
	// FanIn sets the switch fan-in of fig14's tree topologies (0 = 4).
	FanIn int `json:"fan_in,omitempty"`
	// Format selects the response rendering: "json" (default), "text"
	// (Table.String), or "csv" (byte-identical to `scatteradd -csv`).
	// Format is presentation only and does not participate in the
	// result-cache key.
	Format string `json:"format,omitempty"`
}

// Limits bounds what a server accepts; the zero value accepts everything the
// CLI would.
type Limits struct {
	// MinScale rejects specs with Scale below it (larger Scale = smaller
	// datasets = cheaper runs). 0 means 1: even the paper's full sizes.
	MinScale int
	// MaxShards caps Spec.Shards (0 means 64).
	MaxShards int
	// MaxFanIn caps Spec.FanIn (0 means 16).
	MaxFanIn int
}

func (l Limits) minScale() int {
	if l.MinScale < 1 {
		return 1
	}
	return l.MinScale
}

func (l Limits) maxShards() int {
	if l.MaxShards < 1 {
		return 64
	}
	return l.MaxShards
}

func (l Limits) maxFanIn() int {
	if l.MaxFanIn < 1 {
		return 16
	}
	return l.MaxFanIn
}

// generators maps figure names to their exp runners. Table1 ignores options
// (it renders fixed machine parameters) but is dispatched uniformly.
var generators = map[string]func(exp.Options) exp.Table{
	"table1": func(exp.Options) exp.Table { return exp.Table1() },
	"fig6":   exp.Fig6,
	"fig7":   exp.Fig7,
	"fig8":   exp.Fig8,
	"fig9":   exp.Fig9,
	"fig10":  exp.Fig10,
	"fig11":  exp.Fig11,
	"fig12":  exp.Fig12,
	"fig13":  exp.Fig13,
	"fig14":  exp.Fig14,
}

// topologyFigures names the figures with a topology axis: only these accept
// Spec.Topology / Spec.FanIn.
var topologyFigures = map[string]bool{"fig14": true}

// topologyNames lists the accepted Spec.Topology values
// (multinode.ParseTopology's vocabulary, minus the legacy-only hypercube
// spelling fig14 does not sweep).
var topologyNames = map[string]bool{
	"": true, "flat": true, "tree": true, "tree+comb": true, "mesh": true, "mesh+comb": true,
}

// Figures returns the accepted figure names, sorted (for error messages and
// the landing page).
func Figures() []string {
	out := make([]string, 0, len(generators))
	for name := range generators {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Request is a validated Spec: the resolved generator, the exp.Options it
// runs under, and the response format. Opts.Jobs is deliberately left zero —
// the server assigns per-run parallelism at execution time (it never changes
// output bytes and never reaches the cache key).
type Request struct {
	Figure string
	Format string
	Opts   exp.Options
	gen    func(exp.Options) exp.Table
}

// Validate checks the spec against the server's limits and resolves it into
// a runnable Request. Errors are client errors (HTTP 400): they name the
// offending field and the accepted range.
func (sp Spec) Validate(l Limits) (Request, error) {
	gen, ok := generators[sp.Figure]
	if !ok {
		return Request{}, fmt.Errorf("figure %q unknown (want one of %s)", sp.Figure, strings.Join(Figures(), ", "))
	}
	scale := sp.Scale
	if scale == 0 {
		scale = 1
	}
	if scale < 1 {
		return Request{}, fmt.Errorf("scale %d invalid (want >= 1)", sp.Scale)
	}
	if scale < l.minScale() {
		return Request{}, fmt.Errorf("scale %d below this server's floor %d (larger scale = smaller datasets)", scale, l.minScale())
	}
	shards := sp.Shards
	if shards == 0 {
		shards = 1
	}
	if shards < 1 || shards > l.maxShards() {
		return Request{}, fmt.Errorf("shards %d invalid (want 1 .. %d)", sp.Shards, l.maxShards())
	}
	if sp.SpanRate < 0 {
		return Request{}, fmt.Errorf("span_rate %d invalid (want >= 0; 0 = default 16)", sp.SpanRate)
	}
	if sp.Faults < 0 || sp.Faults > 1 {
		return Request{}, fmt.Errorf("faults %g invalid (want 0 .. 1)", sp.Faults)
	}
	if !topologyNames[sp.Topology] {
		return Request{}, fmt.Errorf("topology %q invalid (want flat, tree, tree+comb, mesh, or mesh+comb)", sp.Topology)
	}
	if sp.FanIn != 0 && (sp.FanIn < 2 || sp.FanIn > l.maxFanIn()) {
		return Request{}, fmt.Errorf("fan_in %d invalid (want 0 or 2 .. %d)", sp.FanIn, l.maxFanIn())
	}
	if (sp.Topology != "" || sp.FanIn != 0) && !topologyFigures[sp.Figure] {
		return Request{}, fmt.Errorf("figure %q has no topology axis (topology/fan_in apply to fig14)", sp.Figure)
	}
	format := sp.Format
	if format == "" {
		format = "json"
	}
	switch format {
	case "json", "text", "csv":
	default:
		return Request{}, fmt.Errorf("format %q invalid (want json, text, or csv)", sp.Format)
	}
	var fc fault.Config
	if sp.Faults > 0 {
		fc = fault.DefaultChaos().Scale(sp.Faults)
		if sp.FaultSeed != 0 {
			fc.Seed = sp.FaultSeed
		}
	}
	return Request{
		Figure: sp.Figure,
		Format: format,
		Opts: exp.Options{
			Scale:        scale,
			Shards:       shards,
			Seed:         sp.Seed,
			CollectStats: sp.Stats,
			CollectSpans: sp.Spans,
			SpanRate:     sp.SpanRate,
			Legacy:       sp.Legacy,
			Faults:       fc,
			Topology:     sp.Topology,
			FanIn:        sp.FanIn,
		},
		gen: gen,
	}, nil
}

// CacheKey is the request's result-cache and coalescing key: the figure name
// plus the canonical-JSON options fingerprint shared with figure checkpoints
// (internal/exp). Jobs, Shards, and Format are absent by construction — none
// of them changes rendered bytes — so a -shards 4 request coalesces with the
// -shards 1 request already in flight.
func (r Request) CacheKey() string {
	return r.Figure + "\x00" + r.Opts.Fingerprint()
}

// Render produces the response body and content type for the request's
// format. Bodies are pure functions of (figure, options): "csv" is
// byte-identical to `scatteradd -csv <figure>`, "text" to the CLI's aligned
// table (without the wall-clock line), and "json" is the canonical
// encoding/json form of the table.
func (r Request) Render(t exp.Table) ([]byte, string) {
	switch r.Format {
	case "text":
		return []byte(t.String()), "text/plain; charset=utf-8"
	case "csv":
		return []byte(fmt.Sprintf("# %s\n%s\n", t.Title, t.CSV())), "text/csv; charset=utf-8"
	default:
		data, err := json.Marshal(t)
		if err != nil {
			// Unreachable: Table is plain data with no cycles.
			panic(fmt.Sprintf("server: marshal table %q: %v", t.Title, err))
		}
		return append(data, '\n'), "application/json"
	}
}

// ParseSpec reads a Spec from an HTTP request: query parameters for GET
// (curl-friendly), a JSON body for POST. Unknown JSON fields are rejected —
// a typoed option silently running the default simulation would poison the
// caller's results.
func ParseSpec(method string, query url.Values, body io.Reader) (Spec, error) {
	if method == "GET" {
		return specFromQuery(query)
	}
	var sp Spec
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("spec body: %v", err)
	}
	return sp, nil
}

// specFromQuery maps ?figure=fig6&scale=8&... onto a Spec, with the same
// unknown-field strictness as the JSON path.
func specFromQuery(q url.Values) (Spec, error) {
	var sp Spec
	for key, vals := range q {
		v := vals[len(vals)-1]
		var err error
		switch key {
		case "figure":
			sp.Figure = v
		case "format":
			sp.Format = v
		case "scale":
			sp.Scale, err = strconv.Atoi(v)
		case "seed":
			sp.Seed, err = strconv.ParseUint(v, 10, 64)
		case "shards":
			sp.Shards, err = strconv.Atoi(v)
		case "span_rate":
			sp.SpanRate, err = strconv.Atoi(v)
		case "stats":
			sp.Stats, err = strconv.ParseBool(v)
		case "spans":
			sp.Spans, err = strconv.ParseBool(v)
		case "legacy":
			sp.Legacy, err = strconv.ParseBool(v)
		case "faults":
			sp.Faults, err = strconv.ParseFloat(v, 64)
		case "fault_seed":
			sp.FaultSeed, err = strconv.ParseUint(v, 10, 64)
		case "topology":
			sp.Topology = v
		case "fan_in":
			sp.FanIn, err = strconv.Atoi(v)
		default:
			return Spec{}, fmt.Errorf("unknown query parameter %q", key)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("query parameter %s=%q: %v", key, v, err)
		}
	}
	return sp, nil
}
