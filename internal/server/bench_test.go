package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"scatteradd/internal/obs"
)

// discardRW is a ResponseWriter that keeps headers but drops the body, so
// benchmark iterations measure the serving path rather than recorder growth.
type discardRW struct {
	h http.Header
}

func (d *discardRW) Header() http.Header         { return d.h }
func (d *discardRW) WriteHeader(int)             {}
func (d *discardRW) Write(p []byte) (int, error) { return len(p), nil }

// benchServer builds a server, seeds the result cache with the benchmark
// request, and returns the handler plus a factory for identical requests.
func benchServer(b *testing.B, observer *obs.Observer) (http.Handler, func() *http.Request) {
	b.Helper()
	srv := New(Config{Workers: 1, CacheEntries: 8, Obs: observer})
	h := srv.Handler()
	newReq := func() *http.Request {
		return httptest.NewRequest(http.MethodGet, "/v1/run?figure=fig6&scale=8&format=csv", nil)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, newReq())
	if rec.Code != http.StatusOK {
		b.Fatalf("seed request: %d %s", rec.Code, rec.Body.String())
	}
	return h, newReq
}

// BenchmarkHandleRunCacheHit measures the full cache-hit serving path. The
// telemetry=off case is the baseline everything before this layer paid; the
// telemetry=on delta is the whole cost of tracing + RED accounting per hit.
func BenchmarkHandleRunCacheHit(b *testing.B) {
	cases := []struct {
		name string
		obs  *obs.Observer
	}{
		{"telemetry=off", nil},
		{"telemetry=on", obs.New(obs.Config{SlowN: 32})},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			h, newReq := benchServer(b, tc.obs)
			w := &discardRW{h: make(http.Header)}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.ServeHTTP(w, newReq())
			}
		})
	}
}

// TestDisabledTelemetryHooksAllocateNothing pins the acceptance criterion
// that a nil observer adds zero allocations to the serving path: it runs the
// exact hook sequence counted/admit/handleRun execute per request — against a
// typed nil observer, as Config.Obs leaves it when telemetry is off — and
// demands the allocator never fires.
func TestDisabledTelemetryHooksAllocateNothing(t *testing.T) {
	var o *obs.Observer // what s.cfg.Obs is with -telemetry=false
	allocs := testing.AllocsPerRun(1000, func() {
		tr := o.Begin("/v1/run", "client-id") // counted
		if tr != nil {
			t.Fatal("nil observer minted a handle")
		}
		quotaStart := tr.Now() // admit
		tr.Stage(obs.StageQuota, quotaStart)
		queueStart := tr.Now()
		tr.Stage(obs.StageQueue, queueStart)
		cacheStart := tr.Now() // handleRun
		tr.StageExcluding(obs.StageCache, cacheStart, obs.StageRun)
		tr.SetCache("hit")
		encodeStart := tr.Now()
		tr.Stage(obs.StageEncode, encodeStart)
		tr.Finish(http.StatusOK)
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry hooks allocate %.1f/op, want 0", allocs)
	}
}

// TestTelemetryCacheHitLatencyAttribution sanity-checks the benchmark setup:
// a cache hit served with telemetry on must record a zero run stage (nothing
// was simulated for it) while still recording a total duration.
func TestTelemetryCacheHitLatencyAttribution(t *testing.T) {
	observer := obs.New(obs.Config{SlowN: 4})
	h, newReq := benchServerT(t, observer)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, newReq())
	if got := rec.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("X-Cache = %q, want hit", got)
	}
	for _, tr := range observer.SlowTraces() {
		if tr.Cache != "hit" {
			continue
		}
		if tr.Stages[obs.StageRun].Visited {
			t.Fatal("cache hit recorded a run stage")
		}
		if tr.Total <= 0 {
			t.Fatal("cache hit recorded no total duration")
		}
		return
	}
	t.Fatal("no cache-hit trace retained")
}

// benchServerT adapts benchServer for tests.
func benchServerT(t *testing.T, observer *obs.Observer) (http.Handler, func() *http.Request) {
	t.Helper()
	srv := New(Config{Workers: 1, CacheEntries: 8, Obs: observer})
	h := srv.Handler()
	newReq := func() *http.Request {
		return httptest.NewRequest(http.MethodGet, "/v1/run?figure=fig6&scale=8&format=csv", nil)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, newReq())
	if rec.Code != http.StatusOK {
		t.Fatalf("seed request: %d %s", rec.Code, rec.Body.String())
	}
	return h, newReq
}
