package server

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"scatteradd/internal/exp"
	"scatteradd/internal/obs"
	"scatteradd/internal/stats"
)

// Config sizes one simulation server. The zero value is usable: one worker
// per CPU, a 64-deep queue, a 256-entry cache, no quotas, no persistence.
type Config struct {
	// Workers bounds concurrently running simulations (0 = NumCPU).
	Workers int
	// Queue bounds requests waiting for a worker beyond the running ones;
	// a request arriving past Workers+Queue is answered 429 with
	// Retry-After (0 = 64, negative = no waiting room).
	Queue int
	// RunJobs is exp.Options.Jobs for each simulation — per-request
	// parallelism, multiplying with Workers (0 = 1: throughput over
	// per-request latency).
	RunJobs int
	// CacheEntries bounds the LRU result cache (0 = 256, negative =
	// disabled; in-flight coalescing stays on regardless).
	CacheEntries int
	// CacheDir, when non-empty, persists the result cache across restarts:
	// Drain writes <dir>/cache-index.ndjson and New warms the LRU from it.
	CacheDir string
	// QuotaRPS and QuotaBurst are the per-tenant token-bucket rate and
	// capacity (QuotaRPS <= 0 disables quotas).
	QuotaRPS   float64
	QuotaBurst int
	// Limits bounds accepted specs (scale floor, shard cap).
	Limits Limits
	// Obs, when non-nil, enables service telemetry: RED metrics on /metrics,
	// per-request stage tracing with slow-trace capture on /debug/slowz, and
	// (when the observer is built with an AccessLog) NDJSON access logging.
	// Nil disables all of it at the cost of one branch per hook.
	Obs *obs.Observer
	// Now overrides the clock for tests (nil = time.Now).
	Now func() time.Time
}

// Server is the scatter-add simulation service. Create with New, mount
// Handler on an http.Server, and call Drain before exit.
type Server struct {
	cfg   Config
	cache *resultCache
	quota *quotas

	mu       sync.Mutex // guards draining, queued/running, and the "server" stats group
	draining bool
	queued   int
	inflight sync.WaitGroup
	sem      chan struct{} // one slot per simulation worker

	reg         *stats.Registry
	requests    *stats.Counter
	responses2x *stats.Counter
	responses4x *stats.Counter
	responses5x *stats.Counter
	busy429     *stats.Counter
	drain503    *stats.Counter
	streams     *stats.Counter
	queuedG     *stats.Gauge
	runningG    *stats.Gauge
	running     int
}

// New builds a Server and, with CacheDir set, warms its result cache from
// the persisted index of the previous run.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	switch {
	case cfg.Queue == 0:
		cfg.Queue = 64
	case cfg.Queue < 0:
		cfg.Queue = 0
	}
	switch {
	case cfg.CacheEntries == 0:
		cfg.CacheEntries = 256
	case cfg.CacheEntries < 0:
		cfg.CacheEntries = 0
	}
	if cfg.RunJobs <= 0 {
		cfg.RunJobs = 1
	}
	reg := stats.NewRegistry()
	s := &Server{
		cfg:   cfg,
		cache: newResultCache(cfg.CacheEntries, reg.Group("cache")),
		quota: newQuotas(cfg.QuotaRPS, cfg.QuotaBurst, cfg.Now, reg.Group("quota")),
		sem:   make(chan struct{}, cfg.Workers),
		reg:   reg,
	}
	g := reg.Group("server")
	s.requests = g.Counter("requests")
	s.responses2x = g.Counter("responses_2xx")
	s.responses4x = g.Counter("responses_4xx")
	s.responses5x = g.Counter("responses_5xx")
	s.busy429 = g.Counter("rejected_busy")
	s.drain503 = g.Counter("rejected_draining")
	s.streams = g.Counter("streams")
	s.queuedG = g.Gauge("queued")
	s.runningG = g.Gauge("running")
	if cfg.CacheDir != "" {
		if loaded, _ := s.cache.loadIndex(s.indexPath()); loaded > 0 {
			fmt.Fprintf(os.Stderr, "server: warmed result cache with %d persisted entries\n", loaded)
		}
	}
	return s
}

func (s *Server) indexPath() string { return filepath.Join(s.cfg.CacheDir, indexFileName) }

// Handler returns the service's HTTP surface:
//
//	POST /v1/run     JSON spec -> rendered table (json | text | csv)
//	GET  /v1/run     ?figure=fig6&scale=8&format=csv -> same
//	POST /v1/stream  JSON spec -> NDJSON: accepted, progress*, table, row*, done
//	GET  /healthz      "ok" (503 "draining" once Drain begins)
//	GET  /statsz       server + cache + quota counters (json | ?format=text)
//	GET  /metrics      Prometheus text exposition (stats + RED metrics)
//	GET  /buildz       binary identity: version, Go runtime, VCS stamp
//	GET  /debug/slowz  slowest-N request traces (Perfetto JSON | ?format=json)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/run", s.counted("/v1/run", s.handleRun))
	mux.Handle("/v1/stream", s.counted("/v1/stream", s.handleStream))
	mux.Handle("/healthz", s.counted("/healthz", s.handleHealthz))
	mux.Handle("/statsz", s.counted("/statsz", s.handleStatsz))
	mux.Handle("/metrics", s.counted("/metrics", s.handleMetrics))
	mux.Handle("/buildz", s.counted("/buildz", obs.BuildHandler("scatteraddd")))
	mux.Handle("/debug/slowz", s.counted("/debug/slowz", s.handleSlowz))
	return mux
}

// Drain gracefully shuts the service down: new work is refused (healthz
// flips to 503 so load balancers stop routing here), every in-flight request
// — queued or running — finishes normally, and the result cache is flushed
// to the persisted index. It returns once quiescent, or with ctx's error if
// the deadline passes first (in-flight work keeps its workers either way).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if already {
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("drain: in-flight requests outlived the deadline: %w", ctx.Err())
	}
	return s.flushCache()
}

// flushCache persists the result cache (when configured) and logs the
// cache's lifetime effectiveness — the drain sequence's final act.
func (s *Server) flushCache() error {
	line := func() string {
		s.cache.mu.Lock()
		defer s.cache.mu.Unlock()
		return fmt.Sprintf("hits=%d misses=%d coalesced=%d evictions=%d",
			s.cache.hits.Value(), s.cache.misses.Value(), s.cache.coalesced.Value(), s.cache.evictions.Value())
	}
	if s.cfg.CacheDir == "" {
		fmt.Fprintf(os.Stderr, "server: drained; cache %s (not persisted: no -cache-dir)\n", line())
		return nil
	}
	n, err := s.cache.saveIndex(s.indexPath())
	if err != nil {
		return fmt.Errorf("drain: persist cache index: %w", err)
	}
	fmt.Fprintf(os.Stderr, "server: drained; cache %s; %d entries persisted to %s\n", line(), n, s.indexPath())
	return nil
}

// Snapshot returns the service's counters (server, cache, quota groups),
// taking every component's lock in a fixed order so the read is race-free.
func (s *Server) Snapshot() stats.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache.mu.Lock()
	defer s.cache.mu.Unlock()
	s.quota.mu.Lock()
	defer s.quota.mu.Unlock()
	return s.reg.Snapshot()
}

// statusRecorder captures the response code for the per-class counters and
// forwards Flush for the NDJSON stream.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if fl, ok := r.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// counted wraps a handler with request/response-class accounting and, when
// telemetry is on, the request's obs lifecycle: a propagated (or minted)
// X-Request-Id echoed on the response, a stage-tracing handle in the request
// context, and the Finish that folds the request into counters, histograms,
// the slow-trace ring, and the access log. With a nil observer every obs call
// is a nil-receiver no-op — zero allocations added.
func (s *Server) counted(endpoint string, h func(http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := s.cfg.Obs.Begin(endpoint, r.Header.Get("X-Request-Id"))
		if tr != nil {
			w.Header().Set("X-Request-Id", tr.ID())
			r = r.WithContext(obs.NewContext(r.Context(), tr))
		}
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.mu.Lock()
		s.requests.Inc()
		switch {
		case rec.code >= 500:
			s.responses5x.Inc()
		case rec.code >= 400:
			s.responses4x.Inc()
		default:
			s.responses2x.Inc()
		}
		s.mu.Unlock()
		tr.Finish(rec.code)
	})
}

// enter registers a request with the drain accounting, or answers 503 when
// the server is draining. Every accepted request must exit().
func (s *Server) enter(w http.ResponseWriter) bool {
	s.mu.Lock()
	if s.draining {
		s.drain503.Inc()
		s.mu.Unlock()
		w.Header().Set("X-Draining", "1")
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining: not accepting new requests", http.StatusServiceUnavailable)
		return false
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	return true
}

func (s *Server) exit() { s.inflight.Done() }

// tenantOf extracts the quota tenant from the API token header (or the
// Authorization bearer token); requests without one share "anonymous".
func tenantOf(r *http.Request) string {
	if tok := r.Header.Get("X-API-Token"); tok != "" {
		return tok
	}
	if auth := r.Header.Get("Authorization"); len(auth) > 7 && auth[:7] == "Bearer " {
		return auth[7:]
	}
	return "anonymous"
}

// admit passes the request through quota and admission control, blocking in
// the bounded queue until a simulation worker frees up. It reports whether
// the request may run; when it may, release must be called after the
// simulation. Rejections are answered on w (429 with Retry-After); a client
// that disconnects while queued is dropped silently.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter, tenant string) (release func(), ok bool) {
	tr := obs.FromContext(ctx)
	quotaStart := tr.Now()
	allowed, wait := s.quota.allow(tenant)
	tr.Stage(obs.StageQuota, quotaStart)
	if !allowed {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(wait)))
		http.Error(w, fmt.Sprintf("quota exhausted for tenant; retry in %s", wait.Round(time.Millisecond)), http.StatusTooManyRequests)
		return nil, false
	}
	s.mu.Lock()
	// Admission bound: Workers requests may run and Queue more may wait;
	// anything beyond that is load the server would only sit on.
	if s.queued+s.running >= s.cfg.Workers+s.cfg.Queue {
		s.busy429.Inc()
		// Each queued request is roughly one simulation of backlog per worker.
		retry := 1 + s.queued/s.cfg.Workers
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		http.Error(w, "overloaded: admission queue full", http.StatusTooManyRequests)
		return nil, false
	}
	s.queued++
	s.queuedG.Set(int64(s.queued))
	s.mu.Unlock()

	queueStart := tr.Now()
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.mu.Lock()
		s.queued--
		s.queuedG.Set(int64(s.queued))
		s.mu.Unlock()
		tr.Stage(obs.StageQueue, queueStart)
		return nil, false
	}
	tr.Stage(obs.StageQueue, queueStart)
	s.mu.Lock()
	s.queued--
	s.running++
	s.queuedG.Set(int64(s.queued))
	s.runningG.Set(int64(s.running))
	s.mu.Unlock()
	return func() {
		<-s.sem
		s.mu.Lock()
		s.running--
		s.runningG.Set(int64(s.running))
		s.mu.Unlock()
	}, true
}

// run executes (or coalesces, or serves from cache) one validated request.
// The simulation itself is attributed to the run stage of the request that
// actually computes it (cache.Do runs compute on the leader's goroutine, so
// tr is always the leader's handle); hits and coalesced followers keep a
// zero run stage — nothing was simulated on their behalf by themselves.
func (s *Server) run(req Request, tr *obs.Req, progress func(done, total int)) (exp.Table, string, error) {
	opts := req.Opts
	opts.Jobs = s.cfg.RunJobs
	opts.Progress = progress
	return s.cache.Do(req.CacheKey(), func() exp.Table {
		runStart := tr.Now()
		defer func() { tr.Stage(obs.StageRun, runStart) }()
		return req.gen(opts)
	})
}

// handleRun serves one spec as a complete rendered table.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if !s.enter(w) {
		return
	}
	defer s.exit()
	sp, err := ParseSpec(r.Method, r.URL.Query(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req, err := sp.Validate(s.cfg.Limits)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	tr := obs.FromContext(r.Context())
	if tr != nil {
		tr.SetRequest(req.Figure, tenantOf(r))
		tr.SetFingerprint(req.Opts.Fingerprint())
	}
	release, ok := s.admit(r.Context(), w, tenantOf(r))
	if !ok {
		return
	}
	start := time.Now()
	cacheStart := tr.Now()
	table, status, err := s.run(req, tr, nil)
	// Cache residency is Do's elapsed time minus the simulation this request
	// ran itself, keeping the stages disjoint so their sums reconcile.
	tr.StageExcluding(obs.StageCache, cacheStart, obs.StageRun)
	tr.SetCache(status)
	release()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	encodeStart := tr.Now()
	body, ctype := req.Render(table)
	// Timing and cache status travel in headers only: the body is a pure
	// function of the spec, byte-identical whether computed, coalesced, or
	// cached.
	w.Header().Set("Content-Type", ctype)
	w.Header().Set("X-Cache", status)
	w.Header().Set("X-Elapsed-Ms", strconv.FormatInt(time.Since(start).Milliseconds(), 10))
	w.Write(body)
	tr.Stage(obs.StageEncode, encodeStart)
}

// Stream events, one JSON object per NDJSON line.
type (
	evAccepted struct {
		Event  string `json:"event"` // "accepted"
		Figure string `json:"figure"`
	}
	evProgress struct {
		Event string `json:"event"` // "progress"
		Done  int    `json:"done"`
		Total int    `json:"total"`
	}
	evTable struct {
		Event  string   `json:"event"` // "table"
		Title  string   `json:"title"`
		Header []string `json:"header"`
	}
	evRow struct {
		Event string   `json:"event"` // "row"
		Index int      `json:"index"`
		Cells []string `json:"cells"`
	}
	evDone struct {
		Event string `json:"event"` // "done"
		Rows  int    `json:"rows"`
		Cache string `json:"cache"`
	}
	evError struct {
		Event string `json:"event"` // "error"
		Error string `json:"error"`
	}
)

// handleStream serves one spec as NDJSON: an accepted event, live progress
// events while this request's simulation fans out (none when the result is
// cached or coalesced — nothing is simulated then), the table header, one
// event per row, and a done event carrying the cache status. Unlike /v1/run
// the stream is not byte-stable across cache states — progress is inherently
// a property of the computation, not the result.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if !s.enter(w) {
		return
	}
	defer s.exit()
	sp, err := ParseSpec(r.Method, r.URL.Query(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req, err := sp.Validate(s.cfg.Limits)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	tr := obs.FromContext(r.Context())
	if tr != nil {
		tr.SetRequest(req.Figure, tenantOf(r))
		tr.SetFingerprint(req.Opts.Fingerprint())
	}
	release, ok := s.admit(r.Context(), w, tenantOf(r))
	if !ok {
		return
	}
	defer release()
	s.mu.Lock()
	s.streams.Inc()
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/x-ndjson")
	var wmu sync.Mutex
	enc := json.NewEncoder(w)
	emit := func(v any) {
		wmu.Lock()
		defer wmu.Unlock()
		enc.Encode(v)
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
	}
	emit(evAccepted{Event: "accepted", Figure: req.Figure})
	// Progress calls arrive on simulation worker goroutines; emit's mutex
	// serializes them with the row writes below.
	cacheStart := tr.Now()
	table, status, err := s.run(req, tr, func(done, total int) {
		emit(evProgress{Event: "progress", Done: done, Total: total})
	})
	tr.StageExcluding(obs.StageCache, cacheStart, obs.StageRun)
	tr.SetCache(status)
	if err != nil {
		emit(evError{Event: "error", Error: err.Error()})
		return
	}
	encodeStart := tr.Now()
	emit(evTable{Event: "table", Title: table.Title, Header: table.Header})
	for i, row := range table.Rows {
		emit(evRow{Event: "row", Index: i, Cells: row})
	}
	emit(evDone{Event: "done", Rows: len(table.Rows), Cache: status})
	tr.Stage(obs.StageEncode, encodeStart)
}

// handleHealthz reports liveness; Drain flips it to 503 so load balancers
// stop routing before in-flight work finishes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		w.Header().Set("X-Draining", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleStatsz renders the server/cache/quota counter groups: JSON (a
// key-sorted object) by default, the internal/stats text table with
// ?format=text.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, snap.Format(""))
		return
	}
	vals := make(map[string]uint64, snap.Len())
	for _, e := range snap.Entries {
		vals[e.Key] = e.Val
	}
	w.Header().Set("Content-Type", "application/json")
	data, _ := json.MarshalIndent(vals, "", " ")
	w.Write(append(data, '\n'))
}

// handleMetrics serves the Prometheus text exposition: the server's stats
// registries (server/cache/quota groups) plus, with telemetry enabled, the
// RED metrics and stage histograms.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	obs.WriteMetrics(w, s.cfg.Obs, s.Snapshot())
}

// handleSlowz exports the slowest-N retained request traces. The default is
// Perfetto/Chrome trace-event JSON (the same artifact `scatteradd -spans`
// produces — drop it on ui.perfetto.dev); ?gzip=1 compresses it for
// artifact-sized transfers, and ?format=json returns compact summaries.
func (s *Server) handleSlowz(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Obs == nil {
		http.Error(w, "telemetry disabled: no slow traces retained (run without -telemetry=false)", http.StatusNotFound)
		return
	}
	traces := s.cfg.Obs.SlowTraces()
	if r.URL.Query().Get("format") == "json" {
		out := make([]obs.SlowSummary, len(traces))
		for i, t := range traces {
			out[i] = t.Summary()
		}
		w.Header().Set("Content-Type", "application/json")
		data, _ := json.MarshalIndent(out, "", " ")
		w.Write(append(data, '\n'))
		return
	}
	if r.URL.Query().Get("gzip") == "1" {
		w.Header().Set("Content-Type", "application/gzip")
		gz := gzip.NewWriter(w)
		obs.WriteSlowPerfetto(gz, traces)
		gz.Close()
		return
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteSlowPerfetto(w, traces)
}
