package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scatteradd/internal/exp"
)

// testServer builds a Server plus an httptest front end.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

func post(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(data)
}

// TestHTTPRunMatchesCLIBytes: the acceptance bar for the server-smoke CI job —
// the daemon's csv body for a spec is byte-identical to what `scatteradd -csv`
// prints for the same options, on both the POST and GET paths, and stays
// byte-identical when served from cache.
func TestHTTPRunMatchesCLIBytes(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})
	cli := exp.Fig6(exp.Options{Scale: 32})
	want := fmt.Sprintf("# %s\n%s\n", cli.Title, cli.CSV())

	resp, body := post(t, ts.URL+"/v1/run", `{"figure":"fig6","scale":32,"format":"csv"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("POST status %d: %s", resp.StatusCode, body)
	}
	if body != want {
		t.Fatalf("POST body diverges from CLI bytes:\n got: %q\nwant: %q", body, want)
	}
	if st := resp.Header.Get("X-Cache"); st != CacheMiss {
		t.Fatalf("first request X-Cache %q (want miss)", st)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Fatalf("Content-Type %q", ct)
	}

	resp, body = get(t, ts.URL+"/v1/run?figure=fig6&scale=32&format=csv")
	if resp.StatusCode != 200 || body != want {
		t.Fatalf("GET path diverges: status %d body %q", resp.StatusCode, body)
	}
	if st := resp.Header.Get("X-Cache"); st != CacheHit {
		t.Fatalf("identical GET X-Cache %q (want hit: format is not in the key)", st)
	}
	if resp.Header.Get("X-Elapsed-Ms") == "" {
		t.Fatal("X-Elapsed-Ms header missing")
	}

	// text and json renderings of the same cached table.
	resp, body = get(t, ts.URL+"/v1/run?figure=fig6&scale=32&format=text")
	if resp.StatusCode != 200 || body != cli.String() {
		t.Fatalf("text body diverges from Table.String: %q", body)
	}
	_ = resp
	var tab exp.Table
	resp, body = get(t, ts.URL+"/v1/run?figure=fig6&scale=32")
	if err := json.Unmarshal([]byte(body), &tab); err != nil || tab.Title != cli.Title {
		t.Fatalf("json body: %v (title %q)", err, tab.Title)
	}
	if st := resp.Header.Get("X-Cache"); st != CacheHit {
		t.Fatalf("json request X-Cache %q (want hit)", st)
	}
}

// TestHTTPRunClientErrors: malformed specs are 400s that name the problem,
// and never reach a worker.
func TestHTTPRunClientErrors(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, Limits: Limits{MinScale: 8}})
	cases := []struct {
		method, url, body, want string
	}{
		{"POST", "/v1/run", `{"figure":"fig99"}`, "unknown"},
		{"POST", "/v1/run", `{"figure":`, "spec body"},
		{"POST", "/v1/run", `{"figure":"fig6","scael":8}`, "scael"},
		{"POST", "/v1/run", `{"figure":"fig6","scale":2}`, "floor"},
		{"GET", "/v1/run?figure=fig6&scale=banana", "", "banana"},
		{"GET", "/v1/run?figure=fig6&bogus=1", "", "bogus"},
	}
	for _, tc := range cases {
		var resp *http.Response
		var body string
		if tc.method == "GET" {
			resp, body = get(t, ts.URL+tc.url)
		} else {
			resp, body = post(t, ts.URL+tc.url, tc.body)
		}
		if resp.StatusCode != 400 {
			t.Errorf("%s %s: status %d (want 400)", tc.method, tc.url, resp.StatusCode)
		}
		if !strings.Contains(body, tc.want) {
			t.Errorf("%s %s: body %q does not mention %q", tc.method, tc.url, body, tc.want)
		}
	}
	snap := s.Snapshot()
	if v, _ := snap.Get("server/responses_4xx"); v != uint64(len(cases)) {
		t.Fatalf("responses_4xx %d (want %d)", v, len(cases))
	}
	if v, _ := snap.Get("server/running"); v != 0 {
		t.Fatal("a rejected spec reached a worker")
	}
}

// TestAdmissionControl: with 1 worker and no waiting room, a second
// concurrent request is answered 429 with Retry-After; releasing the worker
// re-admits.
func TestAdmissionControl(t *testing.T) {
	s := New(Config{Workers: 1, Queue: -1})
	release, ok := s.admit(context.Background(), httptest.NewRecorder(), "a")
	if !ok {
		t.Fatal("first request not admitted on an idle server")
	}
	rec := httptest.NewRecorder()
	if _, ok := s.admit(context.Background(), rec, "b"); ok {
		t.Fatal("second request admitted past Workers+Queue")
	}
	if rec.Code != 429 || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("overload answer: %d, Retry-After %q", rec.Code, rec.Header().Get("Retry-After"))
	}
	if s.busy429.Value() != 1 {
		t.Fatalf("rejected_busy %d (want 1)", s.busy429.Value())
	}
	release()
	release2, ok := s.admit(context.Background(), httptest.NewRecorder(), "b")
	if !ok {
		t.Fatal("request not admitted after the worker freed")
	}
	release2()
}

// TestAdmissionQueueAndCancel: one request may wait in the queue (no
// response written), a second waiter overflows to 429, and a queued client
// that disconnects is dropped silently without consuming the worker.
func TestAdmissionQueueAndCancel(t *testing.T) {
	s := New(Config{Workers: 1, Queue: 1})
	release, ok := s.admit(context.Background(), httptest.NewRecorder(), "a")
	if !ok {
		t.Fatal("first request not admitted")
	}

	ctx, cancel := context.WithCancel(context.Background())
	queuedRec := httptest.NewRecorder()
	queuedDone := make(chan bool)
	go func() {
		_, ok := s.admit(ctx, queuedRec, "b")
		queuedDone <- ok
	}()
	waitQueued(t, s, 1)

	rec := httptest.NewRecorder()
	if _, ok := s.admit(context.Background(), rec, "c"); ok || rec.Code != 429 {
		t.Fatalf("overflow past the queue: admitted=%v code=%d", ok, rec.Code)
	}

	cancel()
	if ok := <-queuedDone; ok {
		t.Fatal("canceled request reported admitted")
	}
	if queuedRec.Body.Len() != 0 {
		t.Fatalf("canceled request got a response: %q", queuedRec.Body.String())
	}
	waitQueued(t, s, 0)
	release()
	// The queue slot freed by the cancellation is usable again.
	r2, ok := s.admit(context.Background(), httptest.NewRecorder(), "d")
	if !ok {
		t.Fatal("request not admitted after cancel + release")
	}
	r2()
}

// waitQueued polls until the server's queued count reaches n.
func waitQueued(t *testing.T, s *Server, n int) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		s.mu.Lock()
		q := s.queued
		s.mu.Unlock()
		if q == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queued count never reached %d", n)
}

// waitRunning polls until the server's running count reaches n.
func waitRunning(t *testing.T, s *Server, n int) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		s.mu.Lock()
		r := s.running
		s.mu.Unlock()
		if r == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("running count never reached %d", n)
}

// TestQuotaOverHTTP: per-tenant token buckets answer 429 through the full
// HTTP path, keyed by the API token header; other tenants are untouched.
func TestQuotaOverHTTP(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, QuotaRPS: 0.001, QuotaBurst: 1})
	do := func(token string) *http.Response {
		req, _ := http.NewRequest("GET", ts.URL+"/v1/run?figure=table1&format=text", nil)
		if token != "" {
			req.Header.Set("X-API-Token", token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	if resp := do("alice"); resp.StatusCode != 200 {
		t.Fatalf("alice's first request: %d", resp.StatusCode)
	}
	resp := do("alice")
	if resp.StatusCode != 429 {
		t.Fatalf("alice's second request: %d (want 429: burst 1 spent)", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quota 429 without Retry-After")
	}
	if resp := do("bob"); resp.StatusCode != 200 {
		t.Fatalf("bob throttled by alice's spending: %d", resp.StatusCode)
	}
	if resp := do(""); resp.StatusCode != 200 {
		t.Fatalf("first anonymous request: %d", resp.StatusCode)
	}
}

// TestDrainGraceful: the tentpole's shutdown contract, end to end — Drain
// refuses new work (healthz and /v1/run flip to 503 + X-Draining), the
// in-flight request finishes with a 200 (zero dropped), the cache index is
// persisted, and a restarted server warms from it.
func TestDrainGraceful(t *testing.T) {
	dir := t.TempDir()
	s, ts := testServer(t, Config{Workers: 2, CacheDir: dir})

	// Hold a leader inside the computation for fig6/scale=32's cache key, so
	// the HTTP request below coalesces onto it and stays in flight until we
	// release it.
	key := validated(t, Spec{Figure: "fig6", Scale: 32}).CacheKey()
	started := make(chan struct{})
	releaseLeader := make(chan struct{})
	go s.cache.Do(key, func() exp.Table {
		close(started)
		<-releaseLeader
		return tableFor("slow")
	})
	<-started

	type result struct {
		code  int
		body  string
		cache string
	}
	inflightDone := make(chan result)
	go func() {
		resp, body := get(t, ts.URL+"/v1/run?figure=fig6&scale=32&format=text")
		inflightDone <- result{resp.StatusCode, body, resp.Header.Get("X-Cache")}
	}()
	waitRunning(t, s, 1)

	drainDone := make(chan error)
	go func() { drainDone <- s.Drain(context.Background()) }()
	waitDraining(t, ts.URL)

	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != 503 || resp.Header.Get("X-Draining") != "1" {
		t.Fatalf("healthz while draining: %d, X-Draining %q", resp.StatusCode, resp.Header.Get("X-Draining"))
	}
	if resp, _ := get(t, ts.URL+"/v1/run?figure=table1"); resp.StatusCode != 503 || resp.Header.Get("X-Draining") != "1" {
		t.Fatal("new request accepted during drain")
	}
	select {
	case err := <-drainDone:
		t.Fatalf("Drain returned (%v) with a request still in flight", err)
	case <-time.After(20 * time.Millisecond):
	}

	close(releaseLeader)
	got := <-inflightDone
	if got.code != 200 || got.cache != CacheCoalesced {
		t.Fatalf("in-flight request during drain: %d / %q (want 200, coalesced — zero dropped)", got.code, got.cache)
	}
	if got.body != tableFor("slow").String() {
		t.Fatalf("in-flight body %q", got.body)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// Second Drain is a no-op.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain: %v", err)
	}

	// The persisted index warms a fresh server: the same spec is a cache hit
	// before its first simulation.
	s2, ts2 := testServer(t, Config{Workers: 2, CacheDir: dir})
	_ = s2
	resp, body := get(t, ts2.URL+"/v1/run?figure=fig6&scale=32&format=text")
	if resp.StatusCode != 200 || resp.Header.Get("X-Cache") != CacheHit {
		t.Fatalf("restarted server: %d, X-Cache %q (want warm hit)", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if body != tableFor("slow").String() {
		t.Fatal("restarted server served different bytes than the persisted entry")
	}
}

// waitDraining polls healthz until the drain flag is visible.
func waitDraining(t *testing.T, base string) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == 503 {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("healthz never flipped to draining")
}

// TestDrainDeadline: a drain whose context expires reports the error instead
// of hanging forever on stuck work.
func TestDrainDeadline(t *testing.T) {
	s := New(Config{Workers: 1})
	if !s.enter(httptest.NewRecorder()) {
		t.Fatal("enter refused on an idle server")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("Drain returned nil with a request still in flight")
	}
	s.exit()
}

// TestStreamEvents: the NDJSON lifecycle — accepted, monotonic progress
// while the simulation fans out, the table header, every row, then done with
// the cache status; a second identical stream has no progress (nothing is
// simulated) and reports the hit.
func TestStreamEvents(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})
	stream := func() []map[string]any {
		resp, body := post(t, ts.URL+"/v1/stream", `{"figure":"fig6","scale":32}`)
		if resp.StatusCode != 200 {
			t.Fatalf("stream status %d: %s", resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("stream Content-Type %q", ct)
		}
		var events []map[string]any
		for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
			var ev map[string]any
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", line, err)
			}
			events = append(events, ev)
		}
		return events
	}

	events := stream()
	if events[0]["event"] != "accepted" || events[0]["figure"] != "fig6" {
		t.Fatalf("first event %v", events[0])
	}
	var progress, rows int
	var tableAt, doneAt = -1, -1
	lastDone := 0
	for i, ev := range events[1:] {
		switch ev["event"] {
		case "progress":
			if tableAt >= 0 {
				t.Fatal("progress event after the table was emitted")
			}
			done, total := int(ev["done"].(float64)), int(ev["total"].(float64))
			if done <= lastDone || done > total {
				t.Fatalf("progress not monotonic: done %d after %d (total %d)", done, lastDone, total)
			}
			lastDone = done
			progress++
		case "table":
			tableAt = i
		case "row":
			rows++
		case "done":
			doneAt = i
			if ev["cache"] != CacheMiss {
				t.Fatalf("fresh stream cache status %v", ev["cache"])
			}
			if int(ev["rows"].(float64)) != rows {
				t.Fatalf("done reports %v rows, saw %d row events", ev["rows"], rows)
			}
		default:
			t.Fatalf("unexpected event %v", ev)
		}
	}
	if progress == 0 || tableAt < 0 || doneAt != len(events)-2 || rows == 0 {
		t.Fatalf("stream shape: %d progress, table@%d, done@%d, %d rows", progress, tableAt, doneAt, rows)
	}

	// Cached repeat: no simulation, so no progress events.
	events = stream()
	for _, ev := range events {
		if ev["event"] == "progress" {
			t.Fatal("cached stream emitted progress (nothing was simulated)")
		}
		if ev["event"] == "done" && ev["cache"] != CacheHit {
			t.Fatalf("cached stream status %v (want hit)", ev["cache"])
		}
	}
}

// TestHealthzAndStatsz: liveness and the counter surface.
func TestHealthzAndStatsz(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != 200 || body != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
	get(t, ts.URL+"/v1/run?figure=table1&format=text")

	_, body = get(t, ts.URL+"/statsz")
	var vals map[string]uint64
	if err := json.Unmarshal([]byte(body), &vals); err != nil {
		t.Fatalf("statsz json: %v", err)
	}
	if vals["server/requests"] < 2 {
		t.Fatalf("server/requests %d (want >= 2)", vals["server/requests"])
	}
	if _, ok := vals["cache/misses"]; !ok {
		t.Fatal("statsz missing the cache group")
	}
	if _, ok := vals["quota/rejected"]; !ok {
		t.Fatal("statsz missing the quota group")
	}
	_, text := get(t, ts.URL+"/statsz?format=text")
	if !strings.Contains(text, "server/requests") {
		t.Fatalf("statsz text rendering: %q", text)
	}
}
