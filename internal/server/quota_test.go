package server

import (
	"fmt"
	"testing"
	"time"

	"scatteradd/internal/stats"
)

// fakeClock is an injectable time source for deterministic bucket tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func testQuotas(rate float64, burst int, c *fakeClock) *quotas {
	return newQuotas(rate, burst, c.now, stats.NewGroup("quota"))
}

// TestQuotaBurstThenRefill: a tenant spends its burst immediately, is then
// rejected with an accurate Retry-After, and regains exactly one token per
// 1/rate seconds.
func TestQuotaBurstThenRefill(t *testing.T) {
	clock := newFakeClock()
	q := testQuotas(2, 3, clock) // 2 tokens/sec, burst 3
	for i := 0; i < 3; i++ {
		if ok, _ := q.allow("alice"); !ok {
			t.Fatalf("request %d within burst rejected", i)
		}
	}
	ok, wait := q.allow("alice")
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if wait != 500*time.Millisecond {
		t.Fatalf("Retry-After %v (want 500ms: one token at 2/sec)", wait)
	}
	if q.rejected.Value() != 1 {
		t.Fatalf("rejected counter %d (want 1)", q.rejected.Value())
	}
	clock.advance(500 * time.Millisecond)
	if ok, _ := q.allow("alice"); !ok {
		t.Fatal("token did not refill after the advertised wait")
	}
	if ok, _ := q.allow("alice"); ok {
		t.Fatal("refill granted more than the accrued single token")
	}
}

// TestQuotaTenantsIsolated: one tenant exhausting its bucket does not touch
// another's; anonymous callers share one bucket.
func TestQuotaTenantsIsolated(t *testing.T) {
	clock := newFakeClock()
	q := testQuotas(1, 1, clock)
	if ok, _ := q.allow("alice"); !ok {
		t.Fatal("alice's first request rejected")
	}
	if ok, _ := q.allow("alice"); ok {
		t.Fatal("alice's second request admitted past burst 1")
	}
	if ok, _ := q.allow("bob"); !ok {
		t.Fatal("bob rejected because of alice's spending")
	}
	if ok, _ := q.allow("anonymous"); !ok {
		t.Fatal("first anonymous request rejected")
	}
	if ok, _ := q.allow("anonymous"); ok {
		t.Fatal("anonymous callers do not share a bucket")
	}
	if q.tenants.Value() != 3 {
		t.Fatalf("tenants gauge %d (want 3)", q.tenants.Value())
	}
}

// TestQuotaRefillCapsAtBurst: idle time never accrues more than burst tokens.
func TestQuotaRefillCapsAtBurst(t *testing.T) {
	clock := newFakeClock()
	q := testQuotas(10, 2, clock)
	q.allow("alice") // create the bucket, spend one
	clock.advance(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := q.allow("alice"); !ok {
			t.Fatalf("request %d within burst after idle rejected", i)
		}
	}
	if ok, _ := q.allow("alice"); ok {
		t.Fatal("an hour idle accrued more than burst tokens")
	}
}

// TestQuotaDisabled: rate <= 0 admits everything and allocates nothing.
func TestQuotaDisabled(t *testing.T) {
	q := testQuotas(0, 1, newFakeClock())
	for i := 0; i < 100; i++ {
		if ok, wait := q.allow("anyone"); !ok || wait != 0 {
			t.Fatal("disabled quotas rejected a request")
		}
	}
	if len(q.buckets) != 0 {
		t.Fatal("disabled quotas allocated buckets")
	}
}

// TestQuotaPruneBoundsTenantMap: beyond maxTenants, buckets idle long enough
// to have fully refilled are dropped — and a pruned tenant's behavior is
// indistinguishable from a fresh one's.
func TestQuotaPruneBoundsTenantMap(t *testing.T) {
	clock := newFakeClock()
	q := testQuotas(1, 2, clock)
	for i := 0; i < maxTenants; i++ {
		q.allow(fmt.Sprintf("tenant-%d", i))
	}
	if len(q.buckets) != maxTenants {
		t.Fatalf("%d buckets before prune (want %d)", len(q.buckets), maxTenants)
	}
	// Everyone has been idle >= burst/rate (2s), so the next newcomer prunes
	// the lot.
	clock.advance(3 * time.Second)
	q.allow("newcomer")
	if len(q.buckets) != 1 {
		t.Fatalf("%d buckets after prune (want 1: just the newcomer)", len(q.buckets))
	}
	// A pruned tenant comes back with a full burst, same as a fresh one.
	if ok, _ := q.allow("tenant-0"); !ok {
		t.Fatal("pruned tenant rejected on return")
	}
}
