package server

import (
	"fmt"

	"scatteradd/internal/obs"
)

// Scrape cross-checking: `saload -scrape` pulls /metrics before and after a
// load run and proves the server's telemetry truthful against the client's
// own LoadReport — every request the client sent must appear in the server's
// counters with the status class and cache outcome the client saw, and the
// per-stage histogram sums must reconcile with the total request duration.
// CI runs this on every push (server-load job), so a drifting counter or a
// stage that double-counts breaks the build, not the operator's trust.

// epsilonSeconds absorbs float accumulation error in histogram sums.
const epsilonSeconds = 1e-6

// CheckScrape compares the before→after /metrics delta of the /v1/run
// endpoint against the client-side report and returns every discrepancy
// (empty = zero drift). It assumes the scrapes bracket exactly the reported
// load — concurrent foreign traffic on /v1/run will (correctly) show up as
// drift.
func CheckScrape(before, after *obs.Scrape, rep LoadReport) []string {
	var problems []string
	if rep.TransportErrors > 0 {
		// A request that died in transport may or may not have reached the
		// server's accounting; its class is unknowable client-side.
		return []string{fmt.Sprintf(
			"%d transport errors: client-side classes are incomplete, cross-check is meaningless", rep.TransportErrors)}
	}

	ep := map[string]string{"endpoint": "/v1/run"}
	delta := func(match map[string]string) float64 {
		m := map[string]string{"endpoint": "/v1/run"}
		for k, v := range match {
			m[k] = v
		}
		return after.Sum(obs.MetricRequests, m) - before.Sum(obs.MetricRequests, m)
	}
	check := func(name string, server float64, client int) {
		if server != float64(client) {
			problems = append(problems, fmt.Sprintf(
				"%s: server counted %v, client saw %d", name, server, client))
		}
	}

	check("requests", delta(nil), rep.Sent)
	check("2xx", delta(map[string]string{"class": "2xx"}), rep.OK)
	check("4xx", delta(map[string]string{"class": "4xx"}), rep.Rejected429)
	check("5xx", delta(map[string]string{"class": "5xx"}), rep.Errors5xx+rep.Drained503)
	for _, status := range []string{CacheHit, CacheMiss, CacheCoalesced} {
		check("cache "+status, delta(map[string]string{"cache": status}), rep.Cache[status])
	}

	// Durations: the total-duration histogram must have absorbed exactly the
	// requests counted above, and the stage histograms must decompose it —
	// stages are disjoint sub-intervals, so their sum can never exceed the
	// total, and the unattributed remainder (mux dispatch, header parsing)
	// must stay below bucket resolution per request.
	durCount := after.Sum(obs.MetricDuration+"_count", ep) - before.Sum(obs.MetricDuration+"_count", ep)
	if durCount != float64(rep.Sent) {
		problems = append(problems, fmt.Sprintf(
			"duration histogram count: server %v, client sent %d", durCount, rep.Sent))
	}
	totalSum := after.Sum(obs.MetricDuration+"_sum", ep) - before.Sum(obs.MetricDuration+"_sum", ep)
	stageSum := after.Sum(obs.MetricStageDuration+"_sum", ep) - before.Sum(obs.MetricStageDuration+"_sum", ep)
	if stageSum > totalSum+epsilonSeconds {
		problems = append(problems, fmt.Sprintf(
			"stage sums exceed total duration: stages %.6fs > total %.6fs (double-counted stage)", stageSum, totalSum))
	}
	if rep.Sent > 0 {
		// Allow 5 ms of unattributed overhead per request plus a constant
		// 10 ms of slack for scheduling noise.
		slack := 0.005*float64(rep.Sent) + 0.010
		if totalSum-stageSum > slack {
			problems = append(problems, fmt.Sprintf(
				"stage sums do not reconcile with total: %.6fs unattributed over %d requests (budget %.6fs)",
				totalSum-stageSum, rep.Sent, slack))
		}
	}
	return problems
}
