package server

import (
	"math"
	"sync"
	"time"

	"scatteradd/internal/stats"
)

// quotas enforces per-tenant request rates with token buckets: each tenant
// (identified by API token header, "anonymous" without one) owns a bucket of
// burst tokens refilling at rate per second; a request spends one token or is
// rejected with the time until the next token accrues (Retry-After).
//
// Buckets are lazily created and lazily pruned: once the map exceeds
// maxTenants, any bucket that has been idle long enough to refill completely
// is dropped — its state is indistinguishable from a fresh bucket, so
// forgetting it changes nothing.
type quotas struct {
	mu      sync.Mutex
	rate    float64 // tokens per second; <= 0 disables quotas entirely
	burst   float64
	now     func() time.Time
	buckets map[string]*bucket

	rejected *stats.Counter
	tenants  *stats.Gauge
}

// maxTenants bounds the bucket map before pruning kicks in.
const maxTenants = 4096

type bucket struct {
	tokens float64
	last   time.Time
}

// newQuotas builds the quota layer. rate <= 0 admits everything; burst < 1
// is clamped to 1 (a tenant must be able to make at least one request).
func newQuotas(rate float64, burst int, now func() time.Time, g *stats.Group) *quotas {
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &quotas{
		rate:    rate,
		burst:   float64(burst),
		now:     now,
		buckets: make(map[string]*bucket),

		rejected: g.Counter("rejected"),
		tenants:  g.Gauge("tenants"),
	}
}

// allow spends one token from tenant's bucket. When the bucket is empty it
// reports false and how long until one token accrues.
func (q *quotas) allow(tenant string) (bool, time.Duration) {
	if q.rate <= 0 {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	b, ok := q.buckets[tenant]
	if !ok {
		if len(q.buckets) >= maxTenants {
			q.pruneLocked(now)
		}
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
		q.tenants.Set(int64(len(q.buckets)))
	}
	b.tokens = math.Min(q.burst, b.tokens+now.Sub(b.last).Seconds()*q.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	q.rejected.Inc()
	wait := time.Duration((1 - b.tokens) / q.rate * float64(time.Second))
	return false, wait
}

// retryAfterSeconds converts a token-accrual wait into a Retry-After header
// value, rounding UP to whole seconds with a floor of 1: truncation would
// emit "Retry-After: 0" for sub-second waits, which well-behaved clients
// read as "retry immediately" — a recipe for a retry storm against the very
// bucket that just rejected them.
func retryAfterSeconds(wait time.Duration) int {
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// pruneLocked drops buckets idle long enough to have refilled to burst —
// equivalent to fresh buckets, so nothing observable changes. Caller holds
// mu.
func (q *quotas) pruneLocked(now time.Time) {
	idle := time.Duration(q.burst / q.rate * float64(time.Second))
	for tenant, b := range q.buckets {
		if now.Sub(b.last) >= idle {
			delete(q.buckets, tenant)
		}
	}
}
