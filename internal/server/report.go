package server

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// LoadReport is the contract between cmd/saload (which writes one) and
// cmd/benchgate's -latency mode (which gates CI on one): the outcome of
// driving the simulation server at a target request rate for a fixed
// duration. Latencies are nanoseconds to match benchgate's ns/op convention.
type LoadReport struct {
	// Addr is the server the load ran against.
	Addr string `json:"addr"`
	// TargetRPS and DurationSec describe the intended open-loop schedule.
	TargetRPS   float64 `json:"target_rps"`
	DurationSec float64 `json:"duration_sec"`
	// Sent counts requests actually issued; Shed counts schedule ticks
	// dropped because the in-flight cap was reached (client-side
	// protection — a high Shed means the server could not keep up).
	Sent int `json:"sent"`
	Shed int `json:"shed"`
	// Status counts responses by HTTP status code.
	Status map[string]int `json:"status"`
	// OK counts 2xx responses; AchievedRPS is OK over the measured span.
	OK          int     `json:"ok"`
	AchievedRPS float64 `json:"achieved_rps"`
	// Rejected429 counts admission/quota pushback (expected under
	// overload), Drained503 counts drain refusals (expected during
	// shutdown), Errors5xx counts everything 5xx EXCEPT drain 503s —
	// genuine server failures. TransportErrors counts requests that never
	// produced a status (connection refused, timeout).
	Rejected429     int `json:"rejected_429"`
	Drained503      int `json:"drained_503"`
	Errors5xx       int `json:"errors_5xx"`
	TransportErrors int `json:"transport_errors"`
	// Cache tallies the X-Cache header over 2xx responses.
	Cache map[string]int `json:"cache,omitempty"`
	// Latency summarizes 2xx response latencies.
	Latency LatencySummary `json:"latency_ns"`
	// ScrapeChecked is true when saload ran with -scrape: /metrics was
	// pulled before and after the load and cross-checked against this
	// report's own counts (CheckScrape). ScrapeProblems lists every
	// discrepancy found; empty with ScrapeChecked set means zero drift.
	ScrapeChecked  bool     `json:"scrape_checked,omitempty"`
	ScrapeProblems []string `json:"scrape_problems,omitempty"`
}

// LatencySummary holds order statistics over observed latencies, in
// nanoseconds.
type LatencySummary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// SummarizeLatencies reduces raw per-request latencies to the summary's
// order statistics (nearest-rank percentiles).
func SummarizeLatencies(samples []time.Duration) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	ns := make([]float64, len(samples))
	var sum float64
	for i, d := range samples {
		ns[i] = float64(d)
		sum += float64(d)
	}
	sort.Float64s(ns)
	rank := func(p float64) float64 {
		i := int(p*float64(len(ns))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(ns) {
			i = len(ns) - 1
		}
		return ns[i]
	}
	return LatencySummary{
		Count: len(ns),
		Mean:  sum / float64(len(ns)),
		P50:   rank(0.50),
		P95:   rank(0.95),
		P99:   rank(0.99),
		Max:   ns[len(ns)-1],
	}
}

// Write persists the report as indented JSON, the form ReadLoadReport and
// benchgate -latency consume.
func (r LoadReport) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadLoadReport loads a LoadReport written by saload.
func ReadLoadReport(path string) (LoadReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return LoadReport{}, err
	}
	var rep LoadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return LoadReport{}, fmt.Errorf("load report %s: %v", path, err)
	}
	return rep, nil
}
