package server

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scatteradd/internal/exp"
)

// TestIndexRoundTrip: save then load reproduces every entry AND the LRU
// order, so a restarted daemon evicts in the same order the old one would
// have.
func TestIndexRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), indexFileName)
	src := testCache(8)
	for _, k := range []string{"a", "b", "c"} {
		src.Do(k, func() exp.Table { return tableFor(k) })
	}
	src.Do("a", func() exp.Table { return tableFor("wrong") }) // touch: a is now MRU
	n, err := src.saveIndex(path)
	if err != nil || n != 3 {
		t.Fatalf("saveIndex: %d entries, err %v", n, err)
	}

	dst := testCache(8)
	loaded, skipped := dst.loadIndex(path)
	if loaded != 3 || skipped != 0 {
		t.Fatalf("loadIndex: loaded %d skipped %d (want 3, 0)", loaded, skipped)
	}
	for _, k := range []string{"a", "b", "c"} {
		tab, st, _ := dst.Do(k, func() exp.Table { return tableFor("recomputed") })
		if st != CacheHit || tab.Title != k {
			t.Fatalf("key %s after reload: status %q title %q", k, st, tab.Title)
		}
	}
	// LRU order survived: with capacity forced down to the warm set, inserting
	// one more must evict b (oldest after a's touch), not a.
	small := testCache(3)
	small.loadIndex(path)
	small.Do("d", func() exp.Table { return tableFor("d") })
	if _, st, _ := small.Do("a", func() exp.Table { return tableFor("x") }); st != CacheHit {
		t.Fatal("most recently used entry lost its position across save/load")
	}
	if _, st, _ := small.Do("b", func() exp.Table { return tableFor("x") }); st != CacheMiss {
		t.Fatal("LRU entry survived an eviction that should have taken it")
	}
}

// TestIndexCorruptEntrySkipped: one torn line costs exactly that entry — the
// rest load, and the lost key silently recomputes.
func TestIndexCorruptEntrySkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), indexFileName)
	src := testCache(8)
	for _, k := range []string{"a", "b", "c"} {
		src.Do(k, func() exp.Table { return tableFor(k) })
	}
	if _, err := src.saveIndex(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(data, []byte("\n"))
	// Tear the middle entry (header is line 0, entries are 1..3).
	lines[2] = lines[2][:len(lines[2])/2]
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	dst := testCache(8)
	loaded, skipped := dst.loadIndex(path)
	if loaded != 2 || skipped != 1 {
		t.Fatalf("loaded %d skipped %d (want 2, 1)", loaded, skipped)
	}
	var recomputed bool
	if _, st, _ := dst.Do("b", func() exp.Table { recomputed = true; return tableFor("b2") }); st != CacheMiss || !recomputed {
		t.Fatalf("corrupt entry's key: status %q recomputed=%v (want fresh miss)", st, recomputed)
	}
	if _, st, _ := dst.Do("a", func() exp.Table { return tableFor("x") }); st != CacheHit {
		t.Fatal("entry before the corrupt line failed to load")
	}
	if _, st, _ := dst.Do("c", func() exp.Table { return tableFor("x") }); st != CacheHit {
		t.Fatal("entry after the corrupt line failed to load")
	}
}

// TestIndexVersionAndHeaderSafety: a future version, a garbage header, or a
// missing file all mean "start cold", never an error.
func TestIndexVersionAndHeaderSafety(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"future-version": `{"v":99}` + "\n" + `{"key":"a","table":{"title":"a"}}` + "\n",
		"garbage-header": "not json at all\n",
		"empty-file":     "",
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		c := testCache(8)
		if loaded, _ := c.loadIndex(path); loaded != 0 || c.Len() != 0 {
			t.Errorf("%s: loaded %d entries (want cold start)", name, loaded)
		}
	}
	c := testCache(8)
	if loaded, skipped := c.loadIndex(filepath.Join(dir, "does-not-exist")); loaded != 0 || skipped != 0 {
		t.Error("missing index file was not a clean cold start")
	}
}

// TestIndexSaveIsAtomic: saving over an existing index leaves either the old
// or the new content and no temp litter — the WriteFileAtomic contract, here
// verified end to end through saveIndex.
func TestIndexSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, indexFileName)
	c1 := testCache(8)
	c1.Do("old", func() exp.Table { return tableFor("old") })
	if _, err := c1.saveIndex(path); err != nil {
		t.Fatal(err)
	}
	c2 := testCache(8)
	c2.Do("new", func() exp.Table { return tableFor("new") })
	if _, err := c2.saveIndex(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
	fresh := testCache(8)
	if loaded, _ := fresh.loadIndex(path); loaded != 1 {
		t.Fatalf("loaded %d entries after overwrite (want 1: the new index)", loaded)
	}
	if _, st, _ := fresh.Do("new", func() exp.Table { return tableFor("x") }); st != CacheHit {
		t.Fatal("overwritten index did not contain the new entry")
	}

	// saveIndex creates the directory if needed (first boot with a fresh
	// -cache-dir).
	nested := filepath.Join(dir, "deep", "deeper", indexFileName)
	if _, err := c2.saveIndex(nested); err != nil {
		t.Fatalf("saveIndex into missing directory: %v", err)
	}
}
