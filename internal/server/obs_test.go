package server

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"scatteradd/internal/obs"
	"scatteradd/internal/span"
)

// obsServer is testServer plus an enabled observer.
func obsServer(t *testing.T, cfg Config, ocfg obs.Config) (*Server, string) {
	t.Helper()
	cfg.Obs = obs.New(ocfg)
	_, ts := testServer(t, cfg)
	return nil, ts.URL
}

// scrapeMetrics pulls and parses /metrics.
func scrapeMetrics(t *testing.T, base string) *obs.Scrape {
	t.Helper()
	resp, body := get(t, base+"/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("/metrics Content-Type %q, want %q", ct, obs.ContentType)
	}
	s, err := obs.ParseProm([]byte(body))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, body)
	}
	return s
}

// scrapeUntil re-scrapes until the /v1/run requests_total reaches want —
// request accounting lands after the response reaches the client, so an
// immediate scrape can run ahead of it.
func scrapeUntil(t *testing.T, base string, want float64) *obs.Scrape {
	t.Helper()
	var s *obs.Scrape
	for i := 0; i < 50; i++ {
		s = scrapeMetrics(t, base)
		if s.Sum(obs.MetricRequests, map[string]string{"endpoint": "/v1/run"}) >= want {
			return s
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("server never counted %v /v1/run requests", want)
	return s
}

func TestMetricsEndpoint(t *testing.T) {
	_, base := obsServer(t, Config{Workers: 2}, obs.Config{})

	// miss, then hit, then a second figure (another miss).
	post(t, base+"/v1/run", `{"figure":"fig6","scale":32,"format":"csv"}`)
	post(t, base+"/v1/run", `{"figure":"fig6","scale":32,"format":"csv"}`)
	post(t, base+"/v1/run", `{"figure":"fig6","scale":64,"format":"csv"}`)
	s := scrapeUntil(t, base, 3)

	if problems := s.Lint(); len(problems) != 0 {
		t.Fatalf("live exposition fails lint: %v", problems)
	}
	run := map[string]string{"endpoint": "/v1/run"}
	if got := s.Sum(obs.MetricRequests, run); got != 3 {
		t.Fatalf("requests_total{/v1/run} = %v, want 3", got)
	}
	if got := s.Sum(obs.MetricRequests, map[string]string{"endpoint": "/v1/run", "cache": "hit"}); got != 1 {
		t.Fatalf("hit count = %v, want 1", got)
	}
	if got := s.Sum(obs.MetricRequests, map[string]string{"endpoint": "/v1/run", "cache": "miss"}); got != 2 {
		t.Fatalf("miss count = %v, want 2", got)
	}
	if got := s.Sum(obs.MetricRequests, map[string]string{"endpoint": "/v1/run", "figure": "fig6"}); got != 3 {
		t.Fatalf("figure label = %v, want 3", got)
	}
	if got := s.Sum(obs.MetricDuration+"_count", run); got != 3 {
		t.Fatalf("duration count = %v, want 3", got)
	}
	// The two misses simulated; the hit must not have a run stage.
	if got := s.Sum(obs.MetricStageDuration+"_count", map[string]string{"endpoint": "/v1/run", "stage": "run"}); got != 2 {
		t.Fatalf("run-stage count = %v, want 2 (hits must not simulate)", got)
	}
	// The stats registries ride along with prometheus-clean names.
	if v, ok := s.Value("scatteradd_stats_cache_hits_total", nil); !ok || v != 1 {
		t.Fatalf("stats cache hits = %v,%v, want 1", v, ok)
	}
	// Two consecutive scrapes: counters monotonic (the /metrics request
	// itself lands in between, so deltas are fine but never negative).
	s2 := scrapeMetrics(t, base)
	if problems := obs.CheckMonotonic(s, s2); len(problems) != 0 {
		t.Fatalf("counters went backwards across scrapes: %v", problems)
	}
}

func TestXRequestID(t *testing.T) {
	_, base := obsServer(t, Config{Workers: 1}, obs.Config{})

	// A clean inbound id is echoed back.
	req, _ := http.NewRequest("GET", base+"/v1/run?figure=fig6&scale=32&format=csv", nil)
	req.Header.Set("X-Request-Id", "load-test-77")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "load-test-77" {
		t.Fatalf("inbound id not propagated: %q", got)
	}

	// No inbound id: the server mints one.
	resp2, _ := get(t, base+"/healthz")
	if got := resp2.Header.Get("X-Request-Id"); !strings.HasPrefix(got, "r-") {
		t.Fatalf("minted id = %q, want r-<seq>", got)
	}

	// A hostile id is replaced, not echoed.
	req3, _ := http.NewRequest("GET", base+"/healthz", nil)
	req3.Header.Set("X-Request-Id", "evil id with spaces")
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get("X-Request-Id"); !strings.HasPrefix(got, "r-") {
		t.Fatalf("hostile id echoed: %q", got)
	}
}

func TestSlowzEndpoint(t *testing.T) {
	// Room for the run requests plus the test's own /metrics and slowz
	// traffic — at capacity the ring would (correctly) evict the fast hit.
	_, base := obsServer(t, Config{Workers: 2}, obs.Config{SlowN: 16})
	post(t, base+"/v1/run", `{"figure":"fig6","scale":32,"format":"csv"}`)
	post(t, base+"/v1/run", `{"figure":"fig6","scale":32,"format":"csv"}`)
	scrapeUntil(t, base, 2)

	// Perfetto JSON validates through the span schema checker.
	resp, body := get(t, base+"/debug/slowz")
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/slowz status %d", resp.StatusCode)
	}
	if _, err := span.ValidateTraceJSON([]byte(body)); err != nil {
		t.Fatalf("slowz export fails trace validation: %v\n%s", err, body)
	}
	if !strings.Contains(body, `"run"`) {
		t.Fatalf("slowz export missing run-stage track:\n%s", body)
	}

	// gzip=1 compresses the same artifact.
	respGz, gzBody := get(t, base+"/debug/slowz?gzip=1")
	if ct := respGz.Header.Get("Content-Type"); ct != "application/gzip" {
		t.Fatalf("gzip Content-Type %q", ct)
	}
	zr, err := gzip.NewReader(strings.NewReader(gzBody))
	if err != nil {
		t.Fatalf("slowz gzip output is not gzip: %v", err)
	}
	plain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	if _, err := span.ValidateTraceJSON(plain); err != nil {
		t.Fatalf("gunzipped slowz fails validation: %v", err)
	}

	// format=json returns summaries sorted slowest-first.
	_, jsonBody := get(t, base+"/debug/slowz?format=json")
	var sums []obs.SlowSummary
	if err := json.Unmarshal([]byte(jsonBody), &sums); err != nil {
		t.Fatalf("slowz json: %v\n%s", err, jsonBody)
	}
	// The ring also retains the scrape requests themselves; the two run
	// requests must be among the retained traces, sorted slowest-first.
	runs := 0
	for _, sm := range sums {
		if sm.Endpoint == "/v1/run" {
			runs++
			if sm.Figure != "fig6" {
				t.Fatalf("summary fields: %+v", sm)
			}
		}
	}
	if runs != 2 {
		t.Fatalf("retained %d /v1/run traces, want 2 (all: %+v)", runs, sums)
	}
	for i := 1; i < len(sums); i++ {
		if sums[i].TotalMs > sums[i-1].TotalMs {
			t.Fatal("summaries not sorted slowest-first")
		}
	}
}

// syncBuffer serializes reads against the observer's writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestAccessLogOverHTTP(t *testing.T) {
	var alog syncBuffer
	_, base := obsServer(t, Config{Workers: 1}, obs.Config{AccessLog: &alog})
	post(t, base+"/v1/run", `{"figure":"fig6","scale":32,"format":"csv"}`)
	get(t, base+"/healthz") // not /v1/*: no line
	scrapeUntil(t, base, 1)

	lines := strings.Split(strings.TrimSpace(alog.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("access log lines = %d, want 1:\n%s", len(lines), alog.String())
	}
	var rec obs.AccessRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("access log line not JSON: %v\n%s", err, lines[0])
	}
	if rec.Endpoint != "/v1/run" || rec.Figure != "fig6" || rec.Cache != "miss" ||
		rec.Code != 200 || rec.Outcome != "ok" || rec.Fingerprint == "" {
		t.Fatalf("record: %+v", rec)
	}
	if rec.StageMs["run"] <= 0 {
		t.Fatalf("no run stage in access log: %+v", rec.StageMs)
	}
}

func TestQuotaRejectionTelemetry(t *testing.T) {
	_, base := obsServer(t, Config{Workers: 1, QuotaRPS: 0.1, QuotaBurst: 1}, obs.Config{})
	r1, _ := get(t, base+"/v1/run?figure=fig6&scale=32&format=csv")
	if r1.StatusCode != 200 {
		t.Fatalf("first request status %d", r1.StatusCode)
	}
	r2, _ := get(t, base+"/v1/run?figure=fig6&scale=32&format=csv")
	if r2.StatusCode != 429 {
		t.Fatalf("second request status %d, want 429", r2.StatusCode)
	}
	// Ceiling semantics: never "Retry-After: 0".
	if ra := r2.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want >= 1", ra)
	}
	s := scrapeUntil(t, base, 2)
	if got := s.Sum(obs.MetricRequests, map[string]string{"endpoint": "/v1/run", "class": "4xx"}); got != 1 {
		t.Fatalf("4xx count = %v, want 1", got)
	}
}

func TestCheckScrapeZeroDrift(t *testing.T) {
	_, base := obsServer(t, Config{Workers: 2}, obs.Config{})
	before := scrapeMetrics(t, base)

	// 1 miss + 2 hits, all 2xx, all fig6.
	post(t, base+"/v1/run", `{"figure":"fig6","scale":32,"format":"csv"}`)
	post(t, base+"/v1/run", `{"figure":"fig6","scale":32,"format":"csv"}`)
	post(t, base+"/v1/run", `{"figure":"fig6","scale":32,"format":"csv"}`)
	after := scrapeUntil(t, base, 3)

	rep := LoadReport{
		Sent: 3, OK: 3,
		Cache: map[string]int{"miss": 1, "hit": 2},
	}
	if problems := CheckScrape(before, after, rep); len(problems) != 0 {
		t.Fatalf("zero-drift run flagged: %v", problems)
	}

	// A doctored client count must be caught.
	bad := rep
	bad.Sent, bad.OK = 4, 4
	problems := CheckScrape(before, after, bad)
	if len(problems) == 0 {
		t.Fatal("doctored counts not flagged")
	}

	// Transport errors void the cross-check loudly.
	te := rep
	te.TransportErrors = 1
	if problems := CheckScrape(before, after, te); len(problems) != 1 ||
		!strings.Contains(problems[0], "transport errors") {
		t.Fatalf("transport-error handling: %v", problems)
	}
}

func TestTelemetryDisabledSurface(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1}) // no Obs
	base := ts.URL

	resp, body := post(t, base+"/v1/run", `{"figure":"fig6","scale":32,"format":"csv"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("run status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "" {
		t.Fatalf("disabled server minted X-Request-Id %q", got)
	}

	// /metrics still serves the stats registries, with no RED families.
	mresp, mbody := get(t, base+"/metrics")
	if mresp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", mresp.StatusCode)
	}
	s, err := obs.ParseProm([]byte(mbody))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if problems := s.Lint(); len(problems) != 0 {
		t.Fatalf("disabled exposition fails lint: %v", problems)
	}
	if strings.Contains(mbody, obs.MetricRequests) {
		t.Fatal("disabled server rendered RED metrics")
	}
	if _, ok := s.Value("scatteradd_stats_server_requests_total", nil); !ok {
		t.Fatalf("stats families missing:\n%s", mbody)
	}

	// slowz has nothing to serve.
	sresp, _ := get(t, base+"/debug/slowz")
	if sresp.StatusCode != 404 {
		t.Fatalf("/debug/slowz status %d, want 404", sresp.StatusCode)
	}
	_ = body
}

func TestBuildzEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	resp, body := get(t, ts.URL+"/buildz")
	if resp.StatusCode != 200 {
		t.Fatalf("/buildz status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q", ct)
	}
	var b obs.Build
	if err := json.Unmarshal([]byte(body), &b); err != nil {
		t.Fatalf("buildz not JSON: %v\n%s", err, body)
	}
	if b.Service != "scatteraddd" || b.GoVersion == "" || b.OS == "" || b.Arch == "" {
		t.Fatalf("buildz fields: %+v", b)
	}
	if b.Module != "scatteradd" {
		t.Fatalf("module = %q, want scatteradd", b.Module)
	}
}

func TestStreamTelemetry(t *testing.T) {
	_, base := obsServer(t, Config{Workers: 1}, obs.Config{})
	resp, body := post(t, base+"/v1/stream", `{"figure":"fig6","scale":32}`)
	if resp.StatusCode != 200 {
		t.Fatalf("stream status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"done"`) {
		t.Fatalf("stream did not complete:\n%s", body)
	}
	// The stream endpoint gets its own series and stage histograms.
	var s *obs.Scrape
	deadline := time.Now().Add(2 * time.Second)
	for {
		s = scrapeMetrics(t, base)
		if s.Sum(obs.MetricRequests, map[string]string{"endpoint": "/v1/stream"}) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream request never counted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.Sum(obs.MetricStageDuration+"_count", map[string]string{"endpoint": "/v1/stream", "stage": "encode"}); got != 1 {
		t.Fatalf("stream encode stage count = %v, want 1", got)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		wait time.Duration
		want int
	}{
		{0, 1},
		{time.Millisecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{1001 * time.Millisecond, 2},
		{90 * time.Second, 90},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.wait); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.wait, got, tc.want)
		}
	}
}
