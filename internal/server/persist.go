package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"scatteradd/internal/exp"
)

// The persisted result-cache index survives daemon restarts: graceful drain
// writes every cached table to <dir>/cache-index.ndjson, and the next start
// warms the LRU from it, so a redeploy does not stampede the simulator with
// recomputation of its hot set.
//
// The format is NDJSON — a version header line, then one independent JSON
// entry per line — precisely so corruption is entry-granular: a torn or
// bit-rotted line is skipped (that key simply recomputes on next request)
// while every other entry loads. The whole file commits through
// exp.WriteFileAtomic, the same fsync-then-rename helper figure checkpoints
// use, so a crash mid-save leaves the old index or none, never a torn one.
// Like checkpoints, the index is an accelerator, not a source of truth: every
// load failure means "recompute", never an error.

// indexFileName is the index's name under Config.CacheDir.
const indexFileName = "cache-index.ndjson"

// indexVersion is bumped when the entry schema or the fingerprint key format
// changes incompatibly; a mismatched header discards the whole file.
const indexVersion = 1

// indexHeader is the first line of the index.
type indexHeader struct {
	V int `json:"v"`
}

// indexEntry is one cached table. Key is Request.CacheKey — the figure name
// plus the canonical options fingerprint, both stable across restarts.
type indexEntry struct {
	Key   string    `json:"key"`
	Table exp.Table `json:"table"`
}

// saveIndex persists the cache's current contents (oldest-first, so a reload
// reproduces the LRU order). It reports the entry count for the drain log.
func (c *resultCache) saveIndex(path string) (int, error) {
	entries := c.dump()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(indexHeader{V: indexVersion}); err != nil {
		return 0, err
	}
	for _, e := range entries {
		if err := enc.Encode(indexEntry{Key: e.key, Table: e.table}); err != nil {
			return 0, err
		}
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return 0, err
	}
	if err := exp.WriteFileAtomic(path, buf.Bytes()); err != nil {
		return 0, err
	}
	return len(entries), nil
}

// loadIndex warms the cache from a persisted index, skipping corrupt lines
// entry by entry. It reports how many entries loaded and how many were
// skipped; a missing file or a version mismatch is (0, 0) — start cold.
func (c *resultCache) loadIndex(path string) (loaded, skipped int) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0
	}
	lines := bytes.Split(data, []byte("\n"))
	if len(lines) == 0 {
		return 0, 0
	}
	var hdr indexHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil || hdr.V != indexVersion {
		return 0, 0
	}
	var entries []cacheEntry
	for _, line := range lines[1:] {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e indexEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" {
			skipped++
			continue
		}
		entries = append(entries, cacheEntry{key: e.Key, table: e.Table})
	}
	c.seed(entries)
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "server: cache index %s: skipped %d corrupt entries (they will recompute on demand)\n", path, skipped)
	}
	return len(entries), skipped
}
