package multinode

import (
	"testing"
	"testing/quick"

	"scatteradd/internal/mem"
	"scatteradd/internal/workload"
)

// smallConfig shrinks caches for fast tests.
func smallConfig(nodes, bw int, span mem.Addr, combining bool) Config {
	cfg := DefaultConfig(nodes, bw, span)
	cfg.Cache.TotalLines = 256
	cfg.Combining = combining
	return cfg
}

// uniformTrace builds n references uniformly over [0, rangeSize).
func uniformTrace(n, rangeSize int, seed uint64) []Ref {
	idx := workload.UniformIndices(n, rangeSize, seed)
	refs := make([]Ref, n)
	for i, x := range idx {
		refs[i] = Ref{Addr: mem.Addr(x), Val: mem.I64(1)}
	}
	return refs
}

// verifyHistogram checks the final memory against the reference.
func verifyHistogram(t *testing.T, s *System, refs []Ref, rangeSize int) {
	t.Helper()
	ref := make(map[mem.Addr]int64)
	for _, r := range refs {
		ref[r.Addr] += mem.AsI64(r.Val)
	}
	addrs := make([]mem.Addr, rangeSize)
	for i := range addrs {
		addrs[i] = mem.Addr(i)
	}
	got := s.ReadResult(addrs)
	for i, a := range addrs {
		if mem.AsI64(got[i]) != ref[a] {
			t.Fatalf("addr %d = %d, want %d", a, mem.AsI64(got[i]), ref[a])
		}
	}
}

func TestSingleNodeTrace(t *testing.T) {
	const rng = 512
	s := New(smallConfig(1, 1, rng, false), mem.AddI64)
	refs := uniformTrace(4096, rng, 3)
	res := s.RunTrace(refs)
	if res.Adds != 4096 || res.Cycles == 0 {
		t.Fatalf("result: %+v", res)
	}
	verifyHistogram(t, s, refs, rng)
}

func TestMultiNodeDirectCorrect(t *testing.T) {
	const rng = 1024
	for _, nodes := range []int{2, 4, 8} {
		span := mem.Addr((rng + nodes - 1) / nodes)
		// Round the span up to a line multiple so owners align to lines.
		span = (span + mem.LineWords - 1) &^ (mem.LineWords - 1)
		s := New(smallConfig(nodes, 8, span, false), mem.AddI64)
		refs := uniformTrace(4096, rng, uint64(nodes))
		s.RunTrace(refs)
		verifyHistogram(t, s, refs, rng)
	}
}

func TestMultiNodeCombiningCorrect(t *testing.T) {
	const rng = 1024
	for _, nodes := range []int{2, 4, 8} {
		span := mem.Addr((rng+nodes-1)/nodes+mem.LineWords-1) &^ (mem.LineWords - 1)
		s := New(smallConfig(nodes, 1, span, true), mem.AddI64)
		refs := uniformTrace(4096, rng, uint64(100+nodes))
		res := s.RunTrace(refs)
		if res.SumBacks == 0 {
			t.Fatalf("%d nodes: combining mode performed no sum-backs", nodes)
		}
		verifyHistogram(t, s, refs, rng)
	}
}

func TestHighBandwidthScales(t *testing.T) {
	// Narrow histogram with high network bandwidth: more nodes should give
	// higher throughput (the paper's narrow-high line, up to 7.1x at 8).
	const rng = 256
	run := func(nodes int) float64 {
		span := mem.Addr((rng+nodes-1)/nodes+mem.LineWords-1) &^ (mem.LineWords - 1)
		s := New(smallConfig(nodes, 8, span, false), mem.AddI64)
		return s.RunTrace(uniformTrace(16384, rng, 9)).AddsPerCycle()
	}
	one, eight := run(1), run(8)
	if eight < 2*one {
		t.Fatalf("8-node high-bw throughput %.2f not scaling over 1-node %.2f", eight, one)
	}
}

func TestLowBandwidthDirectDoesNotScale(t *testing.T) {
	// With a 1 word/cycle network and no combining, remote traffic caps
	// scaling (the paper's narrow-low line is flat).
	const rng = 256
	run := func(nodes int) float64 {
		span := mem.Addr((rng+nodes-1)/nodes+mem.LineWords-1) &^ (mem.LineWords - 1)
		s := New(smallConfig(nodes, 1, span, false), mem.AddI64)
		return s.RunTrace(uniformTrace(16384, rng, 11)).AddsPerCycle()
	}
	one, eight := run(1), run(8)
	if eight > 2.5*one {
		t.Fatalf("low-bw direct scaled %.2f -> %.2f; should be network bound", one, eight)
	}
}

func TestCombiningHelpsNarrowLowBandwidth(t *testing.T) {
	// The paper's key multi-node result: local combining + sum-back lets
	// even the low-bandwidth network scale on high-locality (narrow) data
	// (5.7x at 8 nodes in the paper).
	const rng = 256
	run := func(combining bool) float64 {
		nodes := 8
		span := mem.Addr((rng+nodes-1)/nodes+mem.LineWords-1) &^ (mem.LineWords - 1)
		s := New(smallConfig(nodes, 1, span, combining), mem.AddI64)
		return s.RunTrace(uniformTrace(16384, rng, 13)).AddsPerCycle()
	}
	direct, comb := run(false), run(true)
	if comb <= direct {
		t.Fatalf("combining (%.3f adds/cyc) not faster than direct (%.3f) on narrow data", comb, direct)
	}
}

func TestCombiningHurtsWideData(t *testing.T) {
	// Wide (1M-range) data has almost no cache locality: combining only adds
	// warm-up, eviction, and flush overhead (paper: "the added overhead ...
	// actually reduce[s] performance").
	const rng = 1 << 17
	nodes := 4
	run := func(combining bool) float64 {
		span := mem.Addr((rng+nodes-1)/nodes+mem.LineWords-1) &^ (mem.LineWords - 1)
		s := New(smallConfig(nodes, 8, span, combining), mem.AddI64)
		return s.RunTrace(uniformTrace(8192, rng, 17)).AddsPerCycle()
	}
	direct, comb := run(false), run(true)
	if comb >= direct {
		t.Fatalf("combining (%.3f) should not beat direct (%.3f) on wide data", comb, direct)
	}
}

func TestGBpsMetric(t *testing.T) {
	r := Result{Adds: 1000, Cycles: 1000}
	if r.AddsPerCycle() != 1.0 || r.GBps() != 8.0 {
		t.Fatalf("metrics: %.2f adds/cyc, %.2f GB/s", r.AddsPerCycle(), r.GBps())
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	cases := []func(){
		func() { New(smallConfig(0, 1, 64, false), mem.AddI64) },
		func() { New(smallConfig(2, 1, 64, false), mem.Read) },
		func() { New(smallConfig(2, 1, 64, false), mem.FetchAddI64) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestAddressBeyondSpanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := New(smallConfig(2, 1, 64, false), mem.AddI64)
	s.RunTrace([]Ref{{Addr: 1000, Val: mem.I64(1)}})
}

func TestHierarchicalCombiningCorrect(t *testing.T) {
	const rng = 1024
	for _, nodes := range []int{2, 4, 8} {
		span := mem.Addr((rng+nodes-1)/nodes+mem.LineWords-1) &^ (mem.LineWords - 1)
		cfg := smallConfig(nodes, 1, span, true)
		cfg.Hierarchical = true
		s := New(cfg, mem.AddI64)
		refs := uniformTrace(4096, rng, uint64(500+nodes))
		s.RunTrace(refs)
		verifyHistogram(t, s, refs, rng)
	}
}

func TestHierarchicalRequiresCombining(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := smallConfig(4, 1, 64, false)
	cfg.Hierarchical = true
	New(cfg, mem.AddI64)
}

func TestHierarchicalRequiresPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := smallConfig(6, 1, 64, true)
	cfg.Hierarchical = true
	New(cfg, mem.AddI64)
}

func TestSumBackRouting(t *testing.T) {
	cfg := smallConfig(8, 1, 64, true)
	cfg.Hierarchical = true
	s := New(cfg, mem.AddI64)
	// Owner of address 0 is node 0. From node 7 (111), hops flip the lowest
	// differing bit each time: 7 -> 6 -> 4 -> 0.
	if d := s.sumBackDst(7, 0); d != 6 {
		t.Fatalf("hop from 7 = %d want 6", d)
	}
	if d := s.sumBackDst(6, 0); d != 4 {
		t.Fatalf("hop from 6 = %d want 4", d)
	}
	if d := s.sumBackDst(4, 0); d != 0 {
		t.Fatalf("hop from 4 = %d want 0", d)
	}
	if d := s.sumBackDst(0, 0); d != 0 {
		t.Fatalf("hop from owner = %d want 0", d)
	}
}

func TestHierarchicalRelievesHotOwner(t *testing.T) {
	// When one node owns all the hot addresses, linear sum-back funnels
	// N-1 nodes' partial lines into that owner's single network port;
	// the hierarchy merges partials pairwise on the way, so the owner
	// receives only its tree children's lines — logarithmic fan-in.
	const rng = 128
	nodes := 8
	// Span covers the whole range: node 0 owns every bin.
	span := mem.Addr(rng+mem.LineWords) &^ (mem.LineWords - 1)
	run := func(hier bool) uint64 {
		cfg := smallConfig(nodes, 1, span, true)
		cfg.Hierarchical = hier
		s := New(cfg, mem.AddI64)
		refs := uniformTrace(16384, rng, 777)
		res := s.RunTrace(refs)
		verifyHistogram(t, s, refs, rng)
		return res.Cycles
	}
	linear, hier := run(false), run(true)
	if hier >= linear {
		t.Fatalf("hierarchical combining took %d cycles, linear %d", hier, linear)
	}
}

// Property: multi-node replay (any node count, both modes) matches the
// sequential reference.
func TestMultiNodeEquivalenceProperty(t *testing.T) {
	f := func(idx []uint8, nodesSel, modeSel uint8) bool {
		if len(idx) == 0 {
			return true
		}
		nodes := []int{1, 2, 3, 5, 8}[nodesSel%5]
		combining := modeSel%2 == 1
		const rng = 256
		span := mem.Addr((rng+nodes-1)/nodes+mem.LineWords-1) &^ (mem.LineWords - 1)
		s := New(smallConfig(nodes, 1, span, combining), mem.AddI64)
		refs := make([]Ref, len(idx))
		ref := map[mem.Addr]int64{}
		for i, x := range idx {
			a := mem.Addr(x)
			refs[i] = Ref{Addr: a, Val: mem.I64(int64(i%7 - 3))}
			ref[a] += int64(i%7 - 3)
		}
		s.RunTrace(refs)
		addrs := make([]mem.Addr, 0, len(ref))
		for a := range ref {
			addrs = append(addrs, a)
		}
		got := s.ReadResult(addrs)
		for i, a := range addrs {
			if mem.AsI64(got[i]) != ref[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
