package multinode

import (
	"fmt"
	"reflect"
	"testing"

	"scatteradd/internal/fault"
	"scatteradd/internal/mem"
	"scatteradd/internal/span"
	"scatteradd/internal/stats"
)

// shardOutcome is everything observable from one replay: the throughput
// result, the full counter snapshot, and the aggregated span report. The
// sharded-determinism tests require all three to be identical at every
// shard count.
type shardOutcome struct {
	res    Result
	snap   stats.Snapshot
	report string
	values []mem.Word
}

func runSharded(t *testing.T, cfg Config, refs []Ref, rangeSize int) shardOutcome {
	t.Helper()
	s := New(cfg, mem.AddI64)
	tr := span.New(16)
	s.SetSpanTracer(tr)
	res := s.RunTrace(refs)
	if tr.Live() != 0 {
		t.Fatalf("shards=%d: %d live ops after drain", cfg.Shards, tr.Live())
	}
	addrs := make([]mem.Addr, rangeSize)
	for i := range addrs {
		addrs[i] = mem.Addr(i)
	}
	return shardOutcome{
		res:    res,
		snap:   s.StatsSnapshot(),
		report: span.Aggregate(tr.Ops()).Format(""),
		values: s.ReadResult(addrs),
	}
}

// shardConfigs is the matrix the determinism tests sweep: both network
// modes, both stepping modes, fault-free and DefaultChaos, direct and
// (hierarchical) combining.
func shardConfigs() map[string]Config {
	const rng = 1024
	cfgs := make(map[string]Config)
	for _, legacy := range []bool{false, true} {
		for _, faults := range []bool{false, true} {
			name := fmt.Sprintf("legacy=%v/faults=%v", legacy, faults)
			direct := smallConfig(4, 2, rng/4, false)
			direct.LegacyStepping = legacy
			comb := smallConfig(4, 2, rng/4, true)
			comb.LegacyStepping = legacy
			hier := smallConfig(4, 2, rng/4, true)
			hier.Hierarchical = true
			hier.LegacyStepping = legacy
			if faults {
				direct.Faults = fault.DefaultChaos()
				comb.Faults = fault.DefaultChaos()
				hier.Faults = fault.DefaultChaos()
			}
			cfgs["direct/"+name] = direct
			cfgs["combining/"+name] = comb
			cfgs["hierarchical/"+name] = hier
		}
	}
	return cfgs
}

// TestShardedByteIdentical is the core tentpole gate at the multinode
// layer: replaying the same trace with 1, 2, 3, and 4 shards produces the
// same result struct, the same counter snapshot entry for entry, the same
// span report, and the same final memory — in both stepping modes, with
// and without chaos faults, in every network mode.
func TestShardedByteIdentical(t *testing.T) {
	const rng = 1024
	refs := uniformTrace(4096, rng, 11)
	for name, cfg := range shardConfigs() {
		t.Run(name, func(t *testing.T) {
			cfg.Shards = 1
			want := runSharded(t, cfg, refs, rng)
			for _, shards := range []int{2, 3, 4, 8} {
				cfg.Shards = shards
				got := runSharded(t, cfg, refs, rng)
				if got.res != want.res {
					t.Fatalf("shards=%d result diverged:\n got %+v\nwant %+v", shards, got.res, want.res)
				}
				if !reflect.DeepEqual(got.snap, want.snap) {
					t.Fatalf("shards=%d counter snapshot diverged", shards)
				}
				if got.report != want.report {
					t.Fatalf("shards=%d span report diverged:\n%s\nvs\n%s", shards, got.report, want.report)
				}
				if !reflect.DeepEqual(got.values, want.values) {
					t.Fatalf("shards=%d final memory diverged", shards)
				}
			}
		})
	}
}

// TestShardedMatchesReference checks the sharded path still computes the
// right histogram (not just the same one as shards=1).
func TestShardedMatchesReference(t *testing.T) {
	const rng = 2048
	refs := uniformTrace(8192, rng, 7)
	for _, combining := range []bool{false, true} {
		cfg := smallConfig(4, 2, rng/4, combining)
		cfg.Shards = 4
		s := New(cfg, mem.AddI64)
		res := s.RunTrace(refs)
		if res.Adds != uint64(len(refs)) || res.Cycles == 0 {
			t.Fatalf("combining=%v result: %+v", combining, res)
		}
		verifyHistogram(t, s, refs, rng)
	}
}

// TestShardedDegradeIdentical pins the staged (compute-detect,
// commit-apply) degradation path: a fault config aggressive enough to trip
// combining-to-direct fallback must degrade the same node count and yield
// the same counters at every shard width.
func TestShardedDegradeIdentical(t *testing.T) {
	const rng = 1024
	refs := uniformTrace(8192, rng, 5)
	base := smallConfig(4, 2, rng/4, true)
	base.Faults = fault.DefaultChaos()
	base.Faults.CSCorruptRate = 0.2 // scrub storm
	base.Faults.DegradeThreshold = 8
	base.Shards = 1
	want := runSharded(t, base, refs, rng)
	if want.res.Degraded == 0 {
		t.Fatalf("config did not degrade any node; test is vacuous: %+v", want.res)
	}
	for _, shards := range []int{2, 4} {
		cfg := base
		cfg.Shards = shards
		got := runSharded(t, cfg, refs, rng)
		if got.res != want.res {
			t.Fatalf("shards=%d degrade outcome diverged:\n got %+v\nwant %+v", shards, got.res, want.res)
		}
		if !reflect.DeepEqual(got.snap, want.snap) {
			t.Fatalf("shards=%d counter snapshot diverged", shards)
		}
	}
}

// TestShardsClamped checks out-of-range shard counts normalize instead of
// panicking: <= 0 behaves as 1, > Nodes clamps to Nodes.
func TestShardsClamped(t *testing.T) {
	const rng = 512
	refs := uniformTrace(1024, rng, 3)
	want := runSharded(t, smallConfig(2, 1, rng/2, false), refs, rng)
	for _, shards := range []int{-1, 0, 7} {
		cfg := smallConfig(2, 1, rng/2, false)
		cfg.Shards = shards
		got := runSharded(t, cfg, refs, rng)
		if got.res != want.res {
			t.Fatalf("Shards=%d result diverged: %+v vs %+v", shards, got.res, want.res)
		}
	}
}

// TestShardedRace is the dedicated -race exercise of the parallel compute
// phase on a small Fig 13 style configuration: 8 nodes, 4 shards, spans
// on, faults on, fast-forward on — the maximal set of concurrently active
// machinery. Correctness of the output is covered above; this test exists
// so the race detector sweeps every cross-shard edge.
func TestShardedRace(t *testing.T) {
	const rng = 2048
	refs := uniformTrace(8192, rng, 13)
	for _, combining := range []bool{false, true} {
		cfg := smallConfig(8, 2, rng/8, combining)
		cfg.Shards = 4
		cfg.Faults = fault.DefaultChaos()
		s := New(cfg, mem.AddI64)
		s.SetSpanTracer(span.New(8))
		res := s.RunTrace(refs)
		if res.Adds != uint64(len(refs)) {
			t.Fatalf("combining=%v short replay: %+v", combining, res)
		}
		verifyHistogram(t, s, refs, rng)
	}
}
