// Topology is the first-class interconnect surface that replaced the ad-hoc
// Combining/Hierarchical bool pair: one value names the switch graph the
// nodes sit on and where scatter-add combining happens (in the sending
// node's cache, inside every switch, both, or nowhere). The deprecated bools
// still work — TopoDefault maps them onto the equivalent Topology — but
// mixing the two surfaces is a configuration error.
package multinode

import (
	"fmt"

	"scatteradd/internal/network"
)

// TopologyKind names an interconnect arrangement.
type TopologyKind int

const (
	// TopoDefault derives the kind from the deprecated Config.Combining and
	// Config.Hierarchical bools: hypercube when Hierarchical is set, flat
	// otherwise. Zero-value configs keep their exact pre-Topology meaning.
	TopoDefault TopologyKind = iota
	// TopoFlat is the paper's single full crossbar (§4.5).
	TopoFlat
	// TopoHypercube keeps the flat crossbar but routes sum-backs along
	// logical hypercube dimensions, merging partial lines at every hop —
	// the paper's §5 future-work optimization. Requires cache combining and
	// a power-of-two node count.
	TopoHypercube
	// TopoTree is a multi-hop fat-tree of small crossbar switches with
	// configurable fan-in.
	TopoTree
	// TopoMesh is a multi-hop 2D mesh of per-node switches with XY routing.
	TopoMesh
)

func (k TopologyKind) String() string {
	switch k {
	case TopoDefault:
		return "default"
	case TopoFlat:
		return "flat"
	case TopoHypercube:
		return "hypercube"
	case TopoTree:
		return "tree"
	case TopoMesh:
		return "mesh"
	}
	return fmt.Sprintf("TopologyKind(%d)", int(k))
}

// Topology selects the interconnect and the combining placement.
type Topology struct {
	Kind TopologyKind

	// FanIn is the tree's children per switch (TopoTree only; 0 = 4).
	FanIn int
	// MeshX, MeshY are the mesh grid dimensions (TopoMesh only; both zero
	// picks the most-square factorization of the node count).
	MeshX, MeshY int

	// CombineCache enables the paper's local-combining + sum-back mode:
	// remote references merge into the sending node's own cache and evicted
	// partial lines sum back to their owners (the old Combining bool).
	CombineCache bool
	// CombineSwitch enables Ultracomputer-style combining inside every
	// switch of a multi-hop topology: same-address scatter-add packets that
	// meet in a switch's staging window merge into one. Requires TopoTree
	// or TopoMesh.
	CombineSwitch bool
}

// Flat returns the paper's single-crossbar topology.
func Flat() Topology { return Topology{Kind: TopoFlat} }

// FlatCombining returns the flat crossbar with the paper's cache-combining
// mode (the old Combining bool).
func FlatCombining() Topology { return Topology{Kind: TopoFlat, CombineCache: true} }

// Hypercube returns the hypercube sum-back topology (cache combining
// implied — the hierarchy exists to route sum-backs).
func Hypercube() Topology { return Topology{Kind: TopoHypercube, CombineCache: true} }

// Tree returns a multi-hop fat-tree of the given fan-in (0 = 4), with
// in-switch combining on or off.
func Tree(fanIn int, inSwitch bool) Topology {
	return Topology{Kind: TopoTree, FanIn: fanIn, CombineSwitch: inSwitch}
}

// Mesh returns a multi-hop 2D mesh (most-square grid), with in-switch
// combining on or off.
func Mesh(inSwitch bool) Topology {
	return Topology{Kind: TopoMesh, CombineSwitch: inSwitch}
}

// ParseTopology maps a CLI/server name onto a Topology: flat, flat+comb,
// hypercube, tree, tree+comb, mesh, or mesh+comb ("+comb" = in-switch
// combining for the multi-hop kinds, cache combining for flat). fanIn
// applies to the tree kinds (0 = 4).
func ParseTopology(name string, fanIn int) (Topology, error) {
	switch name {
	case "flat":
		return Flat(), nil
	case "flat+comb":
		return FlatCombining(), nil
	case "hypercube":
		return Hypercube(), nil
	case "tree":
		return Tree(fanIn, false), nil
	case "tree+comb":
		return Tree(fanIn, true), nil
	case "mesh":
		return Mesh(false), nil
	case "mesh+comb":
		return Mesh(true), nil
	}
	return Topology{}, fmt.Errorf("unknown topology %q (want flat, flat+comb, hypercube, tree, tree+comb, mesh, or mesh+comb)", name)
}

// multiHop reports whether the topology is a switched multi-hop graph.
func (t Topology) multiHop() bool { return t.Kind == TopoTree || t.Kind == TopoMesh }

// graphKind maps a multi-hop topology onto its network switch-graph kind.
func (t Topology) graphKind() network.GraphKind {
	if t.Kind == TopoMesh {
		return network.MeshGraph
	}
	return network.TreeGraph
}

// normalized resolves TopoDefault against the deprecated bools, applies
// defaults, and validates the combination. It panics on conflicts —
// topology selection is construction-time configuration, like the rest of
// Config.
func (t Topology) normalized(cfg Config) Topology {
	if t.Kind == TopoDefault {
		if t.FanIn != 0 || t.MeshX != 0 || t.MeshY != 0 || t.CombineCache || t.CombineSwitch {
			panic("multinode: Topology options require an explicit Topology.Kind")
		}
		t.Kind = TopoFlat
		if cfg.Hierarchical {
			t.Kind = TopoHypercube
		}
		t.CombineCache = cfg.Combining
	} else if cfg.Combining || cfg.Hierarchical {
		panic("multinode: set Config.Topology or the deprecated Combining/Hierarchical bools, not both")
	}
	switch t.Kind {
	case TopoFlat, TopoHypercube:
		if t.CombineSwitch {
			panic("multinode: in-switch combining requires a multi-hop topology (tree or mesh)")
		}
		if t.FanIn != 0 || t.MeshX != 0 || t.MeshY != 0 {
			panic(fmt.Sprintf("multinode: fan-in/mesh dimensions are meaningless for a %v topology", t.Kind))
		}
		if t.Kind == TopoHypercube {
			if !t.CombineCache {
				panic("multinode: hypercube topology requires cache combining (the hierarchy routes sum-backs)")
			}
			if cfg.Nodes&(cfg.Nodes-1) != 0 {
				panic(fmt.Sprintf("multinode: hypercube topology requires a power-of-two node count, got %d", cfg.Nodes))
			}
		}
	case TopoTree:
		if t.MeshX != 0 || t.MeshY != 0 {
			panic("multinode: mesh dimensions are meaningless for a tree topology")
		}
		if t.FanIn == 0 {
			t.FanIn = 4
		}
		if t.FanIn < 2 {
			panic(fmt.Sprintf("multinode: tree fan-in must be >= 2, got %d", t.FanIn))
		}
	case TopoMesh:
		if t.FanIn != 0 {
			panic("multinode: fan-in is meaningless for a mesh topology")
		}
		if (t.MeshX == 0) != (t.MeshY == 0) {
			panic("multinode: set both mesh dimensions or neither")
		}
		if t.MeshX != 0 && t.MeshX*t.MeshY != cfg.Nodes {
			panic(fmt.Sprintf("multinode: mesh %dx%d does not cover %d nodes", t.MeshX, t.MeshY, cfg.Nodes))
		}
	default:
		panic(fmt.Sprintf("multinode: unknown topology kind %v", t.Kind))
	}
	return t
}
