package multinode

import (
	"fmt"
	"reflect"
	"testing"

	"scatteradd/internal/fault"
	"scatteradd/internal/mem"
)

// topoConfig builds a small system on an explicit Topology (the deprecated
// bools stay zero — mixing the surfaces is a panic, tested below).
func topoConfig(nodes, bw int, span mem.Addr, topo Topology) Config {
	cfg := DefaultConfig(nodes, bw, span)
	cfg.Cache.TotalLines = 256
	cfg.Topology = topo
	return cfg
}

func lineSpan(rng, nodes int) mem.Addr {
	return mem.Addr((rng+nodes-1)/nodes+mem.LineWords-1) &^ (mem.LineWords - 1)
}

// topoMatrix is the sweep the correctness tests walk: every multi-hop shape
// with combining on and off, including non-power-of-two node counts (ragged
// trees, non-square meshes) and a single-leaf tree.
func topoMatrix() map[string]Topology {
	return map[string]Topology{
		"tree2":      Tree(2, false),
		"tree2+comb": Tree(2, true),
		"tree4":      Tree(4, false),
		"tree4+comb": Tree(4, true),
		"mesh":       Mesh(false),
		"mesh+comb":  Mesh(true),
	}
}

// TestTopologyHistogramCorrect: every multi-hop topology computes the exact
// reference histogram — in-switch merging changes packet counts, never sums.
func TestTopologyHistogramCorrect(t *testing.T) {
	const rng = 1024
	for name, topo := range topoMatrix() {
		for _, nodes := range []int{2, 3, 5, 8, 9} {
			t.Run(fmt.Sprintf("%s/n%d", name, nodes), func(t *testing.T) {
				s := New(topoConfig(nodes, 1, lineSpan(rng, nodes), topo), mem.AddI64)
				refs := uniformTrace(4096, rng, uint64(41+nodes))
				res := s.RunTrace(refs)
				if res.Adds != uint64(len(refs)) {
					t.Fatalf("short replay: %+v", res)
				}
				verifyHistogram(t, s, refs, rng)
				// A graph with more than one switch must show multi-hop
				// paths; a single-switch tree degenerates to one hop each.
				multiSwitch := topo.Kind == TopoMesh && nodes > 1 ||
					topo.Kind == TopoTree && nodes > topo.FanIn
				if multiSwitch && res.NetStats.Hops <= res.NetStats.Delivered {
					t.Fatalf("multi-switch fabric took no extra hops: %+v", res.NetStats)
				}
			})
		}
	}
}

// TestTopologyCacheCombining: the paper's cache-combining + sum-back mode
// composes with a multi-hop fabric (partial lines ride the switches too).
func TestTopologyCacheCombining(t *testing.T) {
	const rng = 1024
	topo := Tree(4, true)
	topo.CombineCache = true
	for _, nodes := range []int{4, 9} {
		s := New(topoConfig(nodes, 1, lineSpan(rng, nodes), topo), mem.AddI64)
		refs := uniformTrace(4096, rng, uint64(61+nodes))
		res := s.RunTrace(refs)
		if res.SumBacks == 0 {
			t.Fatalf("%d nodes: no sum-backs in cache-combining mode", nodes)
		}
		verifyHistogram(t, s, refs, rng)
	}
}

// TestTopologyFFMatchesLegacy: fast-forward and per-cycle stepping agree
// cycle-for-cycle and counter-for-counter on every multi-hop topology.
func TestTopologyFFMatchesLegacy(t *testing.T) {
	const rng = 1024
	for name, topo := range topoMatrix() {
		t.Run(name, func(t *testing.T) {
			run := func(legacy bool) (Result, interface{}) {
				cfg := topoConfig(5, 1, lineSpan(rng, 5), topo)
				cfg.LegacyStepping = legacy
				s := New(cfg, mem.AddI64)
				res := s.RunTrace(uniformTrace(2048, rng, 17))
				return res, s.StatsSnapshot()
			}
			fr, fs := run(false)
			lr, ls := run(true)
			if fr != lr {
				t.Fatalf("FF result %+v != legacy %+v", fr, lr)
			}
			if !reflect.DeepEqual(fs, ls) {
				t.Fatal("FF counters diverge from legacy stepping")
			}
		})
	}
}

// TestTopologyShardedIdentical: sharded compute over a multi-hop fabric is
// byte-identical to the sequential run — the fabric only ever ticks in the
// sequential commit phase, so this must hold exactly.
func TestTopologyShardedIdentical(t *testing.T) {
	const rng = 1024
	refs := uniformTrace(4096, rng, 29)
	for name, topo := range topoMatrix() {
		t.Run(name, func(t *testing.T) {
			for _, faults := range []bool{false, true} {
				cfg := topoConfig(4, 2, lineSpan(rng, 4), topo)
				if faults {
					cfg.Faults = fault.DefaultChaos()
				}
				cfg.Shards = 1
				want := runSharded(t, cfg, refs, rng)
				for _, shards := range []int{2, 4} {
					cfg.Shards = shards
					got := runSharded(t, cfg, refs, rng)
					if got.res != want.res {
						t.Fatalf("faults=%v shards=%d result diverged:\n got %+v\nwant %+v",
							faults, shards, got.res, want.res)
					}
					if !reflect.DeepEqual(got.snap, want.snap) {
						t.Fatalf("faults=%v shards=%d counter snapshot diverged", faults, shards)
					}
					if got.report != want.report {
						t.Fatalf("faults=%v shards=%d span report diverged", faults, shards)
					}
					if !reflect.DeepEqual(got.values, want.values) {
						t.Fatalf("faults=%v shards=%d final memory diverged", faults, shards)
					}
				}
			}
		})
	}
}

// TestTopologyChaosExact: per-hop seq/ack/retransmit recovers every injected
// drop and duplicate on multi-hop fabrics — the histogram stays bit-exact
// and the recovery shows up in the Result counters.
func TestTopologyChaosExact(t *testing.T) {
	const rng = 1024
	for name, topo := range topoMatrix() {
		t.Run(name, func(t *testing.T) {
			cfg := topoConfig(8, 1, lineSpan(rng, 8), topo)
			fc := fault.DefaultChaos()
			fc.NetDropRate = 0.05
			fc.NetDupRate = 0.02
			cfg.Faults = fc
			s := New(cfg, mem.AddI64)
			refs := uniformTrace(4096, rng, 47)
			res := s.RunTrace(refs)
			verifyHistogram(t, s, refs, rng)
			if res.NetStats.Dropped == 0 {
				t.Fatal("chaos run dropped no packets")
			}
			if res.Retransmits == 0 || res.NetStats.HopRetrans == 0 {
				t.Fatalf("drops occurred but no hop retransmitted: %+v", res)
			}
			if res.NetStats.Duped != 0 && res.DupsDropped == 0 {
				t.Fatal("duplicates crossed but none were deduplicated")
			}
		})
	}
}

// TestTopologyChaosDeterministic: the same seed yields byte-identical
// results and counters over a faulty multi-hop fabric.
func TestTopologyChaosDeterministic(t *testing.T) {
	const rng = 1024
	run := func() (Result, interface{}) {
		cfg := topoConfig(5, 1, lineSpan(rng, 5), Tree(2, true))
		cfg.Faults = fault.DefaultChaos()
		s := New(cfg, mem.AddI64)
		return s.RunTrace(uniformTrace(2048, rng, 53)), s.StatsSnapshot()
	}
	r1, s1 := run()
	r2, s2 := run()
	if r1 != r2 {
		t.Fatalf("results diverge:\n%+v\n%+v", r1, r2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("counter snapshots diverge across identical runs")
	}
}

// TestInSwitchCombiningReducesRootTraffic is the figure-level claim at unit
// scale: on hot-bank traffic, merging same-address scatter-adds in the
// switches cuts the packets crossing the tree root.
func TestInSwitchCombiningReducesRootTraffic(t *testing.T) {
	const rng = 16 // hot: every node hammers the same few bins
	nodes := 8
	// Node 0 owns everything, so all remote traffic converges through the root.
	span := mem.Addr(rng+mem.LineWords) &^ (mem.LineWords - 1)
	run := func(comb bool) Result {
		s := New(topoConfig(nodes, 1, span, Tree(2, comb)), mem.AddI64)
		refs := uniformTrace(8192, rng, 59)
		res := s.RunTrace(refs)
		verifyHistogram(t, s, refs, rng)
		return res
	}
	plain, comb := run(false), run(true)
	if comb.NetStats.Combined == 0 {
		t.Fatalf("no in-switch merges on hot traffic: %+v", comb.NetStats)
	}
	if comb.NetStats.RootPkts >= plain.NetStats.RootPkts {
		t.Fatalf("in-switch combining did not reduce root traffic: %d vs %d",
			comb.NetStats.RootPkts, plain.NetStats.RootPkts)
	}
}

// TestDeprecatedBoolShims: the old Combining/Hierarchical bool surface maps
// onto the exact same machine as the equivalent explicit Topology.
func TestDeprecatedBoolShims(t *testing.T) {
	const rng = 1024
	refs := uniformTrace(2048, rng, 67)
	cases := []struct {
		name                    string
		combining, hierarchical bool
		topo                    Topology
	}{
		{"flat", false, false, Flat()},
		{"flat+comb", true, false, FlatCombining()},
		{"hypercube", true, true, Hypercube()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			old := DefaultConfig(4, 1, lineSpan(rng, 4))
			old.Cache.TotalLines = 256
			old.Combining = tc.combining
			old.Hierarchical = tc.hierarchical
			so := New(old, mem.AddI64)
			ro := so.RunTrace(refs)

			sn := New(topoConfig(4, 1, lineSpan(rng, 4), tc.topo), mem.AddI64)
			rn := sn.RunTrace(refs)
			if ro != rn {
				t.Fatalf("bool shim diverged from Topology:\n old %+v\n new %+v", ro, rn)
			}
			if !reflect.DeepEqual(so.StatsSnapshot(), sn.StatsSnapshot()) {
				t.Fatal("bool shim counters diverge from Topology counters")
			}
		})
	}
}

// TestParseTopology covers the CLI/server name surface.
func TestParseTopology(t *testing.T) {
	for name, want := range map[string]Topology{
		"flat":      Flat(),
		"flat+comb": FlatCombining(),
		"hypercube": Hypercube(),
		"tree":      Tree(0, false),
		"tree+comb": Tree(0, true),
		"mesh":      Mesh(false),
		"mesh+comb": Mesh(true),
	} {
		got, err := ParseTopology(name, 0)
		if err != nil || got != want {
			t.Fatalf("ParseTopology(%q) = %+v, %v; want %+v", name, got, err, want)
		}
	}
	if got, err := ParseTopology("tree+comb", 8); err != nil || got.FanIn != 8 {
		t.Fatalf("fan-in not threaded: %+v, %v", got, err)
	}
	if _, err := ParseTopology("torus", 0); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

// TestTopologyConfigPanics: invalid combinations fail loudly at New.
func TestTopologyConfigPanics(t *testing.T) {
	const rng = 512
	cases := map[string]func(){
		"mixed surfaces": func() {
			cfg := topoConfig(4, 1, lineSpan(rng, 4), Tree(4, false))
			cfg.Combining = true
			New(cfg, mem.AddI64)
		},
		"options without kind": func() {
			New(topoConfig(4, 1, lineSpan(rng, 4), Topology{FanIn: 4}), mem.AddI64)
		},
		"in-switch combining on flat": func() {
			New(topoConfig(4, 1, lineSpan(rng, 4), Topology{Kind: TopoFlat, CombineSwitch: true}), mem.AddI64)
		},
		"fan-in on flat": func() {
			New(topoConfig(4, 1, lineSpan(rng, 4), Topology{Kind: TopoFlat, FanIn: 4}), mem.AddI64)
		},
		"hypercube without cache combining": func() {
			New(topoConfig(4, 1, lineSpan(rng, 4), Topology{Kind: TopoHypercube}), mem.AddI64)
		},
		"hypercube non-pow2": func() {
			New(topoConfig(6, 1, lineSpan(rng, 6), Hypercube()), mem.AddI64)
		},
		"tree fan-in 1": func() {
			New(topoConfig(4, 1, lineSpan(rng, 4), Tree(1, false)), mem.AddI64)
		},
		"tree with mesh dims": func() {
			New(topoConfig(4, 1, lineSpan(rng, 4), Topology{Kind: TopoTree, MeshX: 2, MeshY: 2}), mem.AddI64)
		},
		"mesh with fan-in": func() {
			New(topoConfig(4, 1, lineSpan(rng, 4), Topology{Kind: TopoMesh, FanIn: 2}), mem.AddI64)
		},
		"mesh half dims": func() {
			New(topoConfig(4, 1, lineSpan(rng, 4), Topology{Kind: TopoMesh, MeshX: 2}), mem.AddI64)
		},
		"mesh dims mismatch": func() {
			New(topoConfig(4, 1, lineSpan(rng, 4), Topology{Kind: TopoMesh, MeshX: 3, MeshY: 3}), mem.AddI64)
		},
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}
