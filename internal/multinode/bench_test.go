package multinode

import (
	"testing"

	"scatteradd/internal/mem"
)

// fig13Bench replays one large Figure 13 style run — 8 nodes, high network
// bandwidth, direct remote scatter-add — at the given shard count. One
// System per iteration, like the experiment driver.
func fig13Bench(b *testing.B, shards int) {
	b.Helper()
	const (
		nodes = 8
		rng   = 1 << 15
		adds  = 1 << 17
	)
	cfg := DefaultConfig(nodes, 8, rng/nodes)
	cfg.Shards = shards
	refs := uniformTrace(adds, rng, 17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(cfg, mem.AddI64)
		res := s.RunTrace(refs)
		if res.Adds != adds {
			b.Fatalf("short replay: %+v", res)
		}
	}
}

// BenchmarkFig13Shard1 is the sequential twin of BenchmarkFig13Sharded:
// the same run through the same two-phase step with the worker pool off.
func BenchmarkFig13Shard1(b *testing.B) { fig13Bench(b, 1) }

// BenchmarkFig13Sharded runs the same simulation with the per-node compute
// phase spread over 4 shards. benchgate compares its median against
// BenchmarkFig13Shard1 on multi-core runners (differ proves the outputs
// byte-identical, so the delta is pure wall-clock).
func BenchmarkFig13Sharded(b *testing.B) { fig13Bench(b, 4) }

// fig13TreeBench replays the same Figure 13 style run on a fan-in-4
// fat-tree with in-switch combining — 16 nodes so the tree has real depth —
// at the given shard count.
func fig13TreeBench(b *testing.B, shards int) {
	b.Helper()
	const (
		nodes = 16
		rng   = 1 << 15
		adds  = 1 << 17
	)
	cfg := DefaultConfig(nodes, 8, rng/nodes)
	cfg.Topology = Tree(4, true)
	cfg.Shards = shards
	refs := uniformTrace(adds, rng, 17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(cfg, mem.AddI64)
		res := s.RunTrace(refs)
		if res.Adds != adds {
			b.Fatalf("short replay: %+v", res)
		}
	}
}

// BenchmarkFig13Tree1 is the sequential twin of BenchmarkFig13TreeSharded:
// the multi-hop fat-tree fabric with the worker pool off.
func BenchmarkFig13Tree1(b *testing.B) { fig13TreeBench(b, 1) }

// BenchmarkFig13TreeSharded runs the same tree-fabric simulation with the
// per-node compute phase spread over 4 shards. benchgate compares its
// median against BenchmarkFig13Tree1 on multi-core runners (the topology
// differ tests prove the outputs byte-identical, so the delta is pure
// wall-clock).
func BenchmarkFig13TreeSharded(b *testing.B) { fig13TreeBench(b, 4) }

// BenchmarkEngineSharded8Nodes isolates the steady-state step loop (no
// construction) at both shard widths via sub-benchmarks.
func BenchmarkEngineSharded8Nodes(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(map[int]string{1: "shards=1", 4: "shards=4"}[shards], func(b *testing.B) {
			const (
				nodes = 8
				rng   = 1 << 14
				adds  = 1 << 15
			)
			cfg := DefaultConfig(nodes, 8, rng/nodes)
			cfg.Shards = shards
			refs := uniformTrace(adds, rng, 23)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := New(cfg, mem.AddI64)
				s.RunTrace(refs)
			}
		})
	}
}
