// Package multinode models the multi-node scatter-add system of §3.2 and
// §4.5: 2-8 nodes, each a copy of the single-node memory system (scatter-add
// units, stream-cache banks, DRAM channels) owning a block of the global
// address space, connected by an input-queued crossbar with back-pressure.
//
// Two operating modes follow the paper:
//
//   - Direct: every scatter-add request to a remote address crosses the
//     network and is merged into the owner's scatter-add units, which
//     guarantee atomicity because "a node can only directly access its own
//     part of the global memory".
//
//   - Combining: the two-phase optimization — a local phase scatter-adds
//     remote data into the node's own cache, allocating missing lines with
//     the identity value instead of fetching them, and a global phase
//     sum-backs evicted lines to their owners, finished by a
//     flush-with-sum-back synchronization step.
//
// The experiment driver replays scatter-add reference traces (the Figure 13
// workloads) and reports achieved additions/cycle and GB/s.
//
// Beyond the paper, Config.Topology selects the interconnect the nodes sit
// on: the flat crossbar above, the hypercube sum-back hierarchy, or a
// multi-hop fat-tree / 2D mesh of switches (network.MultiHop) with optional
// Ultracomputer-style combining inside every switch — same-address
// scatter-add packets that meet in a switch merge before they ever reach the
// owner. Multi-hop fabrics carry their own per-hop reliability (seq, ack,
// retransmit, dedup at every switch), so the end-to-end link layer below
// stays off for them even under injected network faults.
package multinode

import (
	"fmt"

	"scatteradd/internal/cache"
	"scatteradd/internal/dram"
	"scatteradd/internal/fault"
	"scatteradd/internal/mem"
	"scatteradd/internal/network"
	"scatteradd/internal/saunit"
	"scatteradd/internal/sim"
	"scatteradd/internal/span"
	"scatteradd/internal/stats"
)

// sumBackTag marks the IDs of sum-back requests generated when combining
// caches evict partial lines. Sum-backs are internal traffic; the tag keeps
// them from aliasing a traced (node, id) pair from the replayed trace. Bit 62
// is used because bit 63 is reserved by the scatter-add unit for its own
// internal memory traffic.
const sumBackTag = uint64(1) << 62

// frame is the link-layer envelope every network crossing uses. In the
// default (fault-free) configuration a frame is just its request — seq stays
// zero, no acks exist, and packet counts and timing are bit-identical to a
// bare mem.Request network. With network faults injected, the link layer
// activates: data frames carry a sequence number, receivers acknowledge and
// deduplicate by seq (idempotent replay), and senders retransmit unacked
// frames after a timeout with bounded exponential backoff.
type frame struct {
	req mem.Request
	seq uint64 // link sequence (reliable mode only; 0 = unsequenced)
	ack bool   // acknowledgment for seq; req is unused
}

// pendingFrame is a sent-but-unacked data frame held for retransmission.
type pendingFrame struct {
	f        frame
	dst      int
	deadline uint64 // cycle at which the frame retransmits
	attempt  int    // transmissions so far beyond the first
}

// ackOut is a queued acknowledgment awaiting network injection.
type ackOut struct {
	seq uint64
	dst int
}

// Ref is one scatter-add reference of a trace.
type Ref struct {
	Addr mem.Addr
	Val  mem.Word
}

// Config describes the multi-node system.
type Config struct {
	Nodes     int
	OwnerSpan mem.Addr // words of address space owned per node (block partition)

	// Topology selects the interconnect and combining placement (see
	// topology.go). The zero value (TopoDefault) derives flat/hypercube
	// from the two deprecated bools below, so existing configs keep their
	// exact meaning.
	Topology Topology

	// Combining enables the local-combining + sum-back optimization.
	//
	// Deprecated: set Topology.CombineCache (or use FlatCombining /
	// Hypercube). Kept as a shim; mixing it with an explicit Topology.Kind
	// panics.
	Combining bool
	// Hierarchical arranges the nodes in a logical hypercube so sum-backs
	// combine across nodes in logarithmic instead of linear complexity —
	// the optimization the paper proposes as future work (§5). Each
	// evicted partial line travels one hypercube dimension toward its
	// owner per flush round, merging with other nodes' partials at every
	// hop. Requires Combining and a power-of-two node count.
	//
	// Deprecated: set Topology to Hypercube(). Kept as a shim; mixing it
	// with an explicit Topology.Kind panics.
	Hierarchical bool
	IssueRate    int // trace references issued per node per cycle

	// LegacyStepping forces per-cycle stepping, disabling the quiescence
	// fast-forward over dead cycles (kept for differential testing).
	LegacyStepping bool

	// Shards partitions the nodes across a worker pool so one simulation
	// uses several cores: each cycle's node-local compute (scatter-add
	// units, cache banks, DRAM) runs with per-shard parallelism between
	// two sequential exchange points, so scheduling can never reorder
	// observable events and output stays byte-identical to Shards == 1
	// (the default). Values < 1 mean 1; values above Nodes are clamped.
	Shards int

	// Faults enables deterministic fault injection across the system (wire
	// drops/duplications, DRAM stalls and outage windows, combining-store
	// and partial-line parity faults, FU transients) plus the recovery
	// machinery that keeps reductions bit-exact: the reliable link layer and
	// combining-to-direct degradation. The zero value disables everything
	// and leaves timing bit-identical to a build without injection.
	Faults fault.Config

	Net   network.Config
	Cache cache.Config
	SA    saunit.Config
	DRAM  dram.Config
}

// DefaultConfig returns nodes copies of the Table 1 node over a crossbar
// with the given per-port bandwidth (1 = the paper's low configuration,
// 8 = high), owning span words each.
func DefaultConfig(nodes int, wordsPerCyc int, span mem.Addr) Config {
	net := network.DefaultConfig(nodes)
	net.WordsPerCyc = wordsPerCyc
	return Config{
		Nodes:     nodes,
		OwnerSpan: span,
		IssueRate: 8,
		Net:       net,
		Cache:     cache.DefaultConfig(),
		SA:        saunit.DefaultConfig(),
		DRAM:      dram.DefaultConfig(),
	}
}

// node is one participant.
type node struct {
	id    int
	sas   []*saunit.Unit
	banks []*cache.Bank
	dram  *dram.DRAM
	comb  []*cache.Bank // CombineLocal banks (combining mode only)

	trace  []Ref // this node's share of the references
	issued int
	inbox  *sim.Queue[mem.Request] // staged network arrivals
	outbox *sim.Queue[mem.Request] // sum-backs and remote requests awaiting the network

	// Reliable link layer (active only with network faults injected). The
	// ackbox is deliberately unbounded: acks free sender resources rather
	// than consume receiver ones, so bounding them would let data-plane
	// back-pressure starve the very traffic that relieves it (an ack-credit
	// deadlock, observed in practice under retransmission storms).
	pending  []pendingFrame      // sent data frames awaiting acks, in seq order
	seen     map[uint64]struct{} // delivered seqs, for duplicate-safe replay
	ackbox   []ackOut            // acks awaiting network injection
	degraded bool                // combining store tripped: fall back to direct

	// wantDegrade stages a degradation detected during the parallel compute
	// phase; the transition (shared counter, flush start) applies in the
	// sequential phase that follows, in node order, so the sharded schedule
	// cannot reorder it.
	wantDegrade bool

	// str is the tracer this node's components record into. Sequential runs
	// alias the system tracer; sharded runs give every node its own so the
	// compute phase stays race free (ops migrate between node tracers at the
	// sequential inbox-injection point and all are absorbed at end of run).
	str *span.Tracer
}

// Result reports a trace replay.
type Result struct {
	Nodes  int
	Adds   uint64
	Cycles uint64

	NetStats network.Stats
	SAReads  uint64 // memory reads issued by all scatter-add units
	SumBacks uint64 // partial lines sent back in combining mode

	// Resilience outcomes (zero without fault injection).
	Retransmits uint64 // data frames re-sent after an ack timeout
	DupsDropped uint64 // received duplicates discarded by seq dedup
	Degraded    int    // nodes that fell back from combining to direct
}

// AddsPerCycle returns achieved scatter-add throughput.
func (r Result) AddsPerCycle() float64 { return float64(r.Adds) / float64(r.Cycles) }

// GBps returns the paper's Figure 13 metric: 8-byte additions per 1 GHz
// cycle expressed in GB/s.
func (r Result) GBps() float64 { return r.AddsPerCycle() * 8 }

// linkMetrics are the reliable link layer's performance counters, adopted
// into the registry only when network faults are injected (so fault-free
// stats output is unchanged).
type linkMetrics struct {
	group    *stats.Group
	retrans  *stats.Counter   // retransmissions after ack timeout
	acks     *stats.Counter   // acknowledgments sent
	dupRecv  *stats.Counter   // received duplicates dropped by dedup
	degraded *stats.Counter   // nodes degraded from combining to direct
	retries  *stats.Histogram // transmissions needed per acked frame (0 = first try)
}

func newLinkMetrics(maxRetries int) linkMetrics {
	g := stats.NewGroup("link")
	return linkMetrics{
		group:    g,
		retrans:  g.Counter("retransmits"),
		acks:     g.Counter("acks_sent"),
		dupRecv:  g.Counter("dups_dropped"),
		degraded: g.Counter("nodes_degraded"),
		retries:  g.Histogram("retries", maxRetries+1),
	}
}

// System is the multi-node machine.
type System struct {
	cfg   Config
	topo  Topology // normalized Topology (cfg.Topology resolved against the shims)
	kind  mem.Kind
	nodes []*node
	xbar  network.Fabric[frame]
	reg   *stats.Registry
	now   uint64

	ff bool // fast-forward over quiescent cycles

	// Sharding: nodes are split into len(ranges) contiguous groups; the pool
	// (live only inside RunTrace) runs the per-cycle compute phase of each
	// group on its own worker. shardEv is per-shard scratch for the sharded
	// next-event scan.
	ranges  [][2]int
	pool    *sim.ShardPool
	shardEv []uint64

	tr         *span.Tracer
	sumBackSeq uint64

	// Routing window for in-switch combining: the request currently inside
	// routeRequest, whose span does not exist yet. routingNode is -1 outside
	// the window.
	routingNode     int
	routingID       uint64
	routingAbsorbed bool

	// Fault injection and recovery (inactive on the zero config).
	flt       fault.Config
	reliable  bool // link-layer acks/retries/dedup engaged
	degradeAt uint64
	linkSeq   uint64
	lmet      linkMetrics
}

// New constructs the system for traces of the given combine kind.
func New(cfg Config, kind mem.Kind) *System {
	if cfg.Nodes < 1 || cfg.OwnerSpan < 1 || cfg.IssueRate < 1 {
		panic(fmt.Sprintf("multinode: invalid config %+v", cfg))
	}
	if !kind.IsScatterAdd() || kind.IsFetch() {
		panic(fmt.Sprintf("multinode: unsupported trace kind %v", kind))
	}
	if cfg.Hierarchical && !cfg.Combining {
		panic("multinode: Hierarchical requires Combining")
	}
	topo := cfg.Topology.normalized(cfg)
	// Mirror the normalized topology back onto the legacy bools: the
	// combining and hypercube machinery below keys off them, and this keeps
	// either configuration surface driving identical behaviour.
	cfg.Combining = topo.CombineCache
	cfg.Hierarchical = topo.Kind == TopoHypercube
	s := &System{cfg: cfg, topo: topo, kind: kind, reg: stats.NewRegistry(), ff: !cfg.LegacyStepping, routingNode: -1}
	if topo.multiHop() {
		mh := network.NewMultiHop[frame](network.MultiHopConfig{
			Kind:    topo.graphKind(),
			Nodes:   cfg.Nodes,
			FanIn:   topo.FanIn,
			MeshX:   topo.MeshX,
			MeshY:   topo.MeshY,
			Combine: topo.CombineSwitch,
			Link:    cfg.Net,
		})
		if topo.CombineSwitch {
			mh.SetCombiner(s.switchCombiner())
		}
		s.xbar = mh
	} else {
		s.xbar = network.New[frame](cfg.Net)
	}
	s.ranges = sim.ShardRanges(cfg.Nodes, cfg.Shards)
	s.shardEv = make([]uint64, len(s.ranges))
	injecting := cfg.Faults.Enabled()
	if injecting {
		s.flt = cfg.Faults.WithDefaults()
		// Multi-hop fabrics recover losses hop-by-hop inside the network
		// (their SetFaults engages per-switch seq/ack/retransmit/dedup), so
		// the end-to-end link layer stays off for them.
		s.reliable = s.flt.NetFaults() && !topo.multiHop()
		s.degradeAt = s.flt.DegradeThreshold
		s.xbar.SetFaults(s.flt, "mn")
		s.lmet = newLinkMetrics(s.flt.MaxRetries)
		s.reg.Adopt("link", s.lmet.group)
	}
	s.reg.Adopt("net", s.xbar.StatsGroup())
	for id := 0; id < cfg.Nodes; id++ {
		n := &node{
			id:     id,
			dram:   dram.New(cfg.DRAM),
			inbox:  sim.NewQueue[mem.Request](64),
			outbox: sim.NewQueue[mem.Request](64),
		}
		if injecting {
			n.dram.SetFaults(s.flt, fmt.Sprintf("n%d", id))
		}
		if s.reliable {
			n.seen = make(map[uint64]struct{})
		}
		s.reg.Adopt(fmt.Sprintf("dram[%d]", id), n.dram.StatsGroup())
		for b := 0; b < cfg.Cache.Banks; b++ {
			bank := cache.NewBank(cfg.Cache, b, n.dram, cache.Normal)
			n.banks = append(n.banks, bank)
			n.sas = append(n.sas, saunit.New(cfg.SA, bank))
			if injecting {
				bank.SetFaults(s.flt, fmt.Sprintf("n%d.b%d", id, b))
				n.sas[b].SetFaults(s.flt, fmt.Sprintf("n%d.b%d", id, b))
			}
			s.reg.Adopt(fmt.Sprintf("cache[%d.%d]", id, b), bank.StatsGroup())
			s.reg.Adopt(fmt.Sprintf("saunit[%d.%d]", id, b), n.sas[b].StatsGroup())
			if cfg.Combining {
				cb := cache.NewBank(cfg.Cache, b, nil, cache.CombineLocal)
				cb.SetZeroKind(kind)
				if injecting {
					cb.SetFaults(s.flt, fmt.Sprintf("n%d.c%d", id, b))
				}
				n.comb = append(n.comb, cb)
				s.reg.Adopt(fmt.Sprintf("comb[%d.%d]", id, b), cb.StatsGroup())
			}
		}
		s.nodes = append(s.nodes, n)
	}
	return s
}

// StatsSnapshot returns the current values of every performance counter in
// the system (crossbar plus per-node DRAM, cache, combining, and scatter-add
// groups).
func (s *System) StatsSnapshot() stats.Snapshot { return s.reg.Snapshot() }

// SetSpanTracer installs a request-lifecycle tracer across the whole system:
// the crossbar plus every node's DRAM, cache banks, scatter-add units, and
// (in combining mode) combining banks, each on a node-qualified track. A nil
// tracer disables tracing.
//
// With Shards > 1 every node's components record into a node-private tracer
// so the parallel compute phase never shares tracer state; sampling
// decisions stay on tr (consumed in the sequential issue phase), sampled ops
// migrate between node tracers when they cross the network (a sequential
// phase), and everything is absorbed back into tr at end of run. Because
// span.Aggregate is order-insensitive, the resulting reports are
// byte-identical to a sequential run.
func (s *System) SetSpanTracer(tr *span.Tracer) {
	s.tr = tr
	s.xbar.SetSpanTracer(tr)
	for _, n := range s.nodes {
		nt := tr
		if tr != nil && len(s.ranges) > 1 {
			nt = span.New(tr.Rate())
		}
		n.str = nt
		n.dram.SetSpanTracer(nt, fmt.Sprintf("dram[%d]", n.id))
		for b := range n.banks {
			n.banks[b].SetSpanTracer(nt, fmt.Sprintf("cache[%d.%d]", n.id, b))
			n.sas[b].SetSpanTracer(nt, fmt.Sprintf("saunit[%d.%d]", n.id, b))
		}
		for b := range n.comb {
			n.comb[b].SetSpanTracer(nt, fmt.Sprintf("comb[%d.%d]", n.id, b))
		}
	}
}

// SpanTracer returns the installed tracer, if any.
func (s *System) SpanTracer() *span.Tracer { return s.tr }

// owner returns the node owning an address.
func (s *System) owner(a mem.Addr) int {
	o := int(a / s.cfg.OwnerSpan)
	if o >= s.cfg.Nodes {
		panic(fmt.Sprintf("multinode: address %d beyond %d nodes x %d span", a, s.cfg.Nodes, s.cfg.OwnerSpan))
	}
	return o
}

// localUnit returns node n's scatter-add unit for address a.
func (n *node) localUnit(a mem.Addr) *saunit.Unit {
	return n.sas[cache.BankOf(a.Line(), len(n.banks))]
}

// combBank returns node n's combining bank for address a.
func (n *node) combBank(a mem.Addr) *cache.Bank {
	return n.comb[cache.BankOf(a.Line(), len(n.comb))]
}

// RunTrace partitions refs round-robin over the nodes, replays them, and
// runs to global quiescence (including the flush-with-sum-back rounds when
// combining). It returns the achieved throughput.
func (s *System) RunTrace(refs []Ref) Result {
	for _, n := range s.nodes {
		n.trace = n.trace[:0]
		n.issued = 0
	}
	for i, r := range refs {
		n := s.nodes[i%len(s.nodes)]
		n.trace = append(n.trace, r)
	}
	if len(s.ranges) > 1 {
		pool := sim.NewShardPool(len(s.ranges))
		s.pool = pool
		defer func() {
			s.pool = nil
			pool.Close()
		}()
	}
	start := s.now
	limit := s.now + 2_000_000_000
	runPhase := func() {
		for !s.done() {
			// Jump over quiescent stretches (all queues empty, every timer in
			// the future); clamp to just past the limit so a drained-but-
			// not-done state (Never) still trips the deadlock check.
			h := s.now
			if s.ff {
				h = s.nextEvent()
			}
			if h > s.now {
				if h > limit {
					h = limit + 1
				}
				s.skipTo(h)
			} else {
				s.step()
			}
			if s.now > limit {
				panic("multinode: trace did not drain; flow-control deadlock")
			}
		}
	}
	// Local phase: replay the trace.
	runPhase()
	if s.cfg.Combining {
		// Global phase: flush-with-sum-back. Direct combining needs one
		// round (evictions go straight to the owner); hierarchical
		// combining needs one round per hypercube dimension, each moving
		// partial lines one hop closer to their owners while merging them.
		rounds := 1
		if s.cfg.Hierarchical {
			rounds = log2(s.cfg.Nodes)
		}
		for r := 0; r < rounds; r++ {
			for _, n := range s.nodes {
				for _, cb := range n.comb {
					cb.StartFlush()
				}
			}
			runPhase()
		}
		// Every partial sum must have reached its owner by now.
		for _, n := range s.nodes {
			for _, cb := range n.comb {
				if left := cb.ResidentPartialLines(); len(left) > 0 {
					panic(fmt.Sprintf("multinode: node %d retains %d partial lines after %d flush rounds",
						n.id, len(left), rounds))
				}
			}
		}
	}
	// Fold the node-private shard tracers back into the system tracer (a
	// no-op when they alias it) so callers see one coherent trace.
	if s.tr != nil {
		for _, n := range s.nodes {
			s.tr.Absorb(n.str)
		}
	}
	res := Result{
		Nodes:    s.cfg.Nodes,
		Adds:     uint64(len(refs)),
		Cycles:   s.now - start,
		NetStats: s.xbar.Stats(),
	}
	for _, n := range s.nodes {
		for _, u := range n.sas {
			res.SAReads += u.Stats().MemReads
		}
		for _, cb := range n.comb {
			res.SumBacks += cb.Stats().SumBacks
		}
		if n.degraded {
			res.Degraded++
		}
	}
	if s.reliable {
		res.Retransmits = s.lmet.retrans.Value()
		res.DupsDropped = s.lmet.dupRecv.Value()
	} else {
		// Multi-hop fabrics recover losses per hop inside the network;
		// surface their counters through the same Result fields.
		res.Retransmits = res.NetStats.HopRetrans
		res.DupsDropped = res.NetStats.HopDups
	}
	return res
}

// runShards executes fn(shard) for every shard, on the pool when one is
// live (inside a sharded RunTrace) and inline otherwise. fn must confine
// its writes to the shard's node range (plus per-shard scratch).
func (s *System) runShards(fn func(shard int)) {
	if s.pool != nil {
		s.pool.Run(fn)
		return
	}
	for sh := range s.ranges {
		fn(sh)
	}
}

// nextEvent returns the earliest cycle at which any part of the system can
// do work (the multi-node analogue of sim.Engine's horizon; the System owns
// its own clock rather than a sim.Engine). Pending trace issue or staged
// inbox/outbox traffic is work now; otherwise the minimum over every
// component's NextEvent. The per-node scans fan out over the shard pool —
// NextEvent is a pure read, and min is order-insensitive, so the sharded
// scan returns exactly the sequential answer; a shard group fast-forwards
// only to the min over all its members.
func (s *System) nextEvent() uint64 {
	ev := s.xbar.NextEvent(s.now)
	if ev <= s.now {
		return s.now
	}
	s.runShards(func(sh int) {
		r := s.ranges[sh]
		e := sim.Never
		for i := r[0]; i < r[1] && e > s.now; i++ {
			if t := s.nodeNextEvent(s.nodes[i]); t < e {
				e = t
			}
		}
		s.shardEv[sh] = e
	})
	for _, e := range s.shardEv {
		if e < ev {
			ev = e
		}
	}
	if ev < s.now {
		return s.now
	}
	return ev
}

// nodeNextEvent returns the earliest cycle at which one node can do work.
func (s *System) nodeNextEvent(n *node) uint64 {
	if n.issued < len(n.trace) || !n.inbox.Empty() || !n.outbox.Empty() {
		return s.now
	}
	ev := sim.Never
	if s.reliable {
		if len(n.ackbox) > 0 {
			return s.now
		}
		// Unacked frames wake the system at their retransmit deadlines.
		for i := range n.pending {
			if d := n.pending[i].deadline; d < ev {
				ev = d
			}
		}
	}
	for _, u := range n.sas {
		if t := u.NextEvent(s.now); t < ev {
			ev = t
		}
	}
	for _, b := range n.banks {
		if t := b.NextEvent(s.now); t < ev {
			ev = t
		}
	}
	for _, cb := range n.comb {
		if t := cb.NextEvent(s.now); t < ev {
			ev = t
		}
	}
	if t := n.dram.NextEvent(s.now); t < ev {
		ev = t
	}
	return ev
}

// skipTo jumps the clock to cycle h, applying every component's batch
// skipped-cycle effects (per-cycle occupancy samples). The per-node Skip
// fan-out shards: Skip touches only node-local occupancy counters.
func (s *System) skipTo(h uint64) {
	cycles := h - s.now
	s.xbar.Skip(s.now, cycles)
	s.runShards(func(sh int) {
		r := s.ranges[sh]
		for i := r[0]; i < r[1]; i++ {
			n := s.nodes[i]
			for _, u := range n.sas {
				u.Skip(s.now, cycles)
			}
			for _, b := range n.banks {
				b.Skip(s.now, cycles)
			}
			for _, cb := range n.comb {
				cb.Skip(s.now, cycles)
			}
			n.dram.Skip(s.now, cycles)
		}
	})
	s.now = h
}

// step advances the whole system one cycle with a two-phase schedule:
//
//  1. Exchange (sequential, node order): everything that touches shared
//     state — crossbar sends and receives, link sequence numbers, sum-back
//     sequence numbers, sampling decisions, live-op migration between node
//     tracers.
//  2. Compute (parallel over shard node ranges): the node-local hardware —
//     scatter-add units, cache and combining banks, DRAM — which within a
//     cycle interacts only through the per-port crossbar queues exchanged
//     in phase 1 and ticked in phase 3.
//  3. Commit (sequential, node order): staged combining-to-direct
//     degradations, then the crossbar tick that moves frames between ports.
//
// Node-internal part order matches the pre-sharding stepNode exactly, and
// no compute-phase write is read by another node's exchange in the same
// cycle, so this schedule is observably identical to the sequential one at
// any shard count.
func (s *System) step() {
	for _, n := range s.nodes {
		s.stepNodeExchange(n)
	}
	s.runShards(func(sh int) {
		r := s.ranges[sh]
		for i := r[0]; i < r[1]; i++ {
			s.stepNodeCompute(s.nodes[i])
		}
	})
	for _, n := range s.nodes {
		s.applyDegrade(n)
	}
	s.xbar.Tick(s.now)
	s.now++
}

// stepNodeExchange is the sequential half of a node's cycle: network
// arrivals, inbox injection, trace issue, sum-back draining, link
// maintenance, and outbox draining — every part that reads or writes state
// shared across nodes (the crossbar, link and sum-back sequence numbers,
// link metrics, the sampling counter, other nodes' tracers).
func (s *System) stepNodeExchange(n *node) {
	// Stage network arrivals. Ack frames are consumed unconditionally —
	// they only shrink the sender's retransmission buffer, and holding them
	// behind data-plane back-pressure would deadlock the link (the sender
	// retransmits into the congestion the unread acks would clear). Data
	// frames wait for inbox room, which drains through the scatter-add
	// pipeline independently of the network.
	for {
		p, ok := s.xbar.Peek(n.id)
		if !ok {
			break
		}
		f := p.Payload
		if f.ack {
			s.xbar.Recv(n.id)
			s.handleAck(n, f.seq)
			continue
		}
		if n.inbox.Full() {
			break
		}
		s.xbar.Recv(n.id)
		if s.reliable {
			// Always ack — the sender may be retrying a frame whose first
			// ack was lost — but deliver each sequence number exactly once,
			// which is what makes replayed scatter-adds idempotent.
			n.ackbox = append(n.ackbox, ackOut{seq: f.seq, dst: p.Src})
			if _, dup := n.seen[f.seq]; dup {
				s.lmet.dupRecv.Inc()
				continue
			}
			n.seen[f.seq] = struct{}{}
		}
		n.inbox.MustPush(f.req)
	}
	// Inject staged arrivals: owned addresses go to the local scatter-add
	// path; in hierarchical combining, in-transit partials for other owners
	// merge into this hop's combining cache.
	for {
		r, ok := n.inbox.Peek()
		if !ok {
			break
		}
		if s.owner(r.Addr) == n.id {
			u := n.localUnit(r.Addr)
			if s.tr != nil {
				// The op crossed the network: move its live lifecycle from
				// the sender's tracer to this node's before the unit can
				// check Sampled. A no-op for unsampled ids and when the
				// tracers alias (sequential runs).
				s.nodes[r.Node].str.Transfer(n.str, r.Node, r.ID)
			}
			if !u.CanAccept(s.now) || !u.Accept(s.now, r) {
				break
			}
			// Remote request reached its owner: back in a bank queue.
			n.str.OpStage(r.Node, r.ID, span.StageBankQ, s.now)
		} else {
			if !s.cfg.Hierarchical {
				panic(fmt.Sprintf("multinode: node %d received request for node %d without hierarchy",
					n.id, s.owner(r.Addr)))
			}
			cb := n.combBank(r.Addr)
			if !cb.CanAccept(s.now) || !cb.Accept(s.now, r) {
				break
			}
		}
		n.inbox.Pop()
	}
	// Issue this node's trace share.
	for k := 0; k < s.cfg.IssueRate && n.issued < len(n.trace); k++ {
		ref := n.trace[n.issued]
		req := mem.Request{ID: uint64(n.issued), Kind: s.kind, Addr: ref.Addr, Val: ref.Val, Node: n.id}
		// A combining switch can absorb the request inside routeRequest —
		// before its span exists. Mark the routing window so OnAbsorb can
		// flag that instead of issuing an OpEnd nothing would receive.
		s.routingNode, s.routingID, s.routingAbsorbed = n.id, req.ID, false
		routed := s.routeRequest(n, req)
		s.routingNode = -1
		if !routed {
			break
		}
		if s.tr != nil && s.tr.SampleNext() {
			// The sampling decision is the system tracer's (one global
			// cadence); the lifecycle lives on the issuing node's tracer.
			n.str.OpBegin(n.id, req.ID, req.Kind, req.Addr, s.now)
			if s.routingAbsorbed {
				// Merged into another in-flight request at the injection
				// switch: the op's whole life is this cycle.
				n.str.OpEnd(n.id, req.ID, s.now)
			} else if !s.cfg.Combining && s.owner(req.Addr) != n.id {
				// Direct mode: the request is already on the wire.
				n.str.OpStage(n.id, req.ID, span.StageNet, s.now)
			}
		}
		n.issued++
	}
	// Convert evicted partial lines into sum-back requests (a whole line
	// needs LineWords outbox slots).
	for _, cb := range n.comb {
		for n.outbox.Cap()-n.outbox.Len() >= mem.LineWords {
			ev, ok := cb.PopEvict()
			if !ok {
				break
			}
			s.queueSumBack(n, ev)
		}
	}
	// Reliable link maintenance: acks leave first (a starved ack path would
	// turn every in-flight frame into a spurious retransmission), then
	// overdue frames retransmit.
	if s.reliable {
		k := 0
		for k < len(n.ackbox) {
			a := n.ackbox[k]
			if !s.xbar.Send(network.Packet[frame]{Src: n.id, Dst: a.dst, Payload: frame{seq: a.seq, ack: true}}) {
				break
			}
			s.lmet.acks.Inc()
			k++
		}
		if k > 0 {
			n.ackbox = n.ackbox[:copy(n.ackbox, n.ackbox[k:])]
		}
		s.retransmit(n)
	}
	// Drain the outbox into the network (or locally, for own addresses).
	for {
		r, ok := n.outbox.Peek()
		if !ok {
			break
		}
		dst := s.sumBackDst(n.id, r.Addr)
		if dst == n.id {
			u := n.localUnit(r.Addr)
			if !u.CanAccept(s.now) || !u.Accept(s.now, r) {
				break
			}
		} else {
			if !s.sendRemote(n, dst, r) {
				break
			}
		}
		n.outbox.Pop()
	}
}

// stepNodeCompute is the parallel half of a node's cycle: ticking the
// node-local hardware and moving its internal responses. It touches only
// the node's own components, stats groups, fault injectors, and tracer, so
// different nodes' compute halves commute and may run on different shards.
func (s *System) stepNodeCompute(n *node) {
	for _, u := range n.sas {
		u.Tick(s.now)
	}
	for _, b := range n.banks {
		b.Tick(s.now)
	}
	for _, cb := range n.comb {
		cb.Tick(s.now)
	}
	// The degradation check runs right after the combining banks tick — the
	// cycle a scrub crosses the threshold is a worked cycle in both stepping
	// modes, so the combining-to-direct transition lands identically. Only
	// the detection happens here; the transition itself (a shared counter
	// and the flush start) is staged for the sequential commit phase, which
	// is equivalent because nothing later in this node's cycle reads
	// combining-bank or degradation state.
	s.detectDegrade(n)
	n.dram.Tick(s.now)
	for {
		r, ok := n.dram.PopResponse(s.now)
		if !ok {
			break
		}
		n.banks[cache.BankOf(r.Line, len(n.banks))].Fill(s.now, r.Line, r.Data)
	}
	for _, u := range n.sas {
		for {
			if _, ok := u.PopResponse(s.now); !ok {
				break
			}
		}
	}
}

// routeRequest sends one trace reference on its way. It reports false when
// back-pressure blocked it.
func (s *System) routeRequest(n *node, req mem.Request) bool {
	dst := s.owner(req.Addr)
	if dst == n.id {
		u := n.localUnit(req.Addr)
		return u.CanAccept(s.now) && u.Accept(s.now, req)
	}
	if s.cfg.Combining && !n.degraded {
		// Local phase: combine into the node's own cache.
		cb := n.combBank(req.Addr)
		return cb.CanAccept(s.now) && cb.Accept(s.now, req)
	}
	return s.sendRemote(n, dst, req)
}

// switchCombiner tells a combining multi-hop fabric how scatter-add frames
// merge in a switch's staging window: same address and kind (never acks,
// never fetch variants — a merged fetch reply would be ambiguous). Sum-back
// frames carry scatter-add kinds too, so evicted partial lines from
// different nodes cascade together on their way to the owner. Merging
// reorders additions exactly like the combining caches do: bit-exact for
// the integer kinds, paper-semantics (associativity assumed) for floats.
func (s *System) switchCombiner() network.Combiner[frame] {
	return network.Combiner[frame]{
		Key: func(f frame) (uint64, bool) {
			if f.ack || f.seq != 0 {
				return 0, false
			}
			r := f.req
			if !r.Kind.IsScatterAdd() || r.Kind.IsFetch() {
				return 0, false
			}
			return uint64(r.Addr)<<8 | uint64(r.Kind), true
		},
		Merge: func(into, absorb frame) frame {
			into.req.Val = mem.Combine(into.req.Kind, into.req.Val, absorb.req.Val)
			return into
		},
		OnAbsorb: func(absorbed frame) {
			if s.tr == nil {
				return
			}
			r := absorbed.req
			if r.Node == s.routingNode && r.ID == s.routingID {
				// Absorbed at the injection switch, mid-routeRequest: the
				// issue loop hasn't decided sampling yet, so flag it and let
				// the loop close the span right after OpBegin.
				s.routingAbsorbed = true
				return
			}
			// The absorbed request is complete the moment it merges. Its
			// lifecycle still lives on the issuing node's tracer — it never
			// reached the owner, so no Transfer happened. A no-op for
			// unsampled ids (including every sum-back).
			s.nodes[r.Node].str.OpEnd(r.Node, r.ID, s.now)
		},
	}
}

// sendRemote injects a data frame for req toward dst. In reliable mode the
// frame gets the next link sequence number and is held for retransmission
// until acked; the number is only consumed when the network accepts the
// frame, so back-pressure never perforates the sequence space.
func (s *System) sendRemote(n *node, dst int, req mem.Request) bool {
	f := frame{req: req}
	if s.reliable {
		f.seq = s.linkSeq + 1
	}
	if !s.xbar.Send(network.Packet[frame]{Src: n.id, Dst: dst, Payload: f}) {
		return false
	}
	if s.reliable {
		s.linkSeq++
		n.pending = append(n.pending, pendingFrame{
			f: f, dst: dst, deadline: s.now + s.flt.RetryTimeout,
		})
	}
	return true
}

// handleAck clears the acked frame from the node's retransmission buffer
// and records how many transmissions it took. Acks for already-cleared
// frames (duplicated acks, or acks racing a retransmission) are ignored.
func (s *System) handleAck(n *node, seq uint64) {
	for i := range n.pending {
		if n.pending[i].f.seq != seq {
			continue
		}
		s.lmet.retries.Observe(n.pending[i].attempt)
		n.pending = append(n.pending[:i], n.pending[i+1:]...)
		return
	}
}

// retransmit re-sends every pending frame whose ack deadline has passed,
// backing off exponentially (RetryTimeout << attempt, capped) and giving up
// the run past MaxRetries — at that point the loss is not transient and no
// bounded protocol recovers it.
func (s *System) retransmit(n *node) {
	for i := range n.pending {
		pf := &n.pending[i]
		if s.now < pf.deadline {
			continue
		}
		if pf.attempt >= s.flt.MaxRetries {
			panic(fmt.Sprintf("multinode: frame seq=%d to node %d unacked after %d attempts",
				pf.f.seq, pf.dst, pf.attempt+1))
		}
		if !s.xbar.Send(network.Packet[frame]{Src: n.id, Dst: pf.dst, Payload: pf.f}) {
			return // network back-pressure: retry next cycle, oldest first
		}
		pf.attempt++
		s.lmet.retrans.Inc()
		shift := pf.attempt
		if shift > s.flt.RetryBackoffCap {
			shift = s.flt.RetryBackoffCap
		}
		pf.deadline = s.now + s.flt.RetryTimeout<<uint(shift)
	}
}

// detectDegrade notices that a node's combining banks have scrubbed
// DegradeThreshold parity faults — the store is deemed unreliable — and
// stages the combining-to-direct fallback for the commit phase. Pure
// node-local reads, so it is safe inside the parallel compute phase.
func (s *System) detectDegrade(n *node) {
	if n.degraded || n.wantDegrade || s.degradeAt == 0 || len(n.comb) == 0 {
		return
	}
	var faults uint64
	for _, cb := range n.comb {
		faults += cb.FaultCount()
	}
	if faults >= s.degradeAt {
		n.wantDegrade = true
	}
}

// applyDegrade commits a staged degradation: resident partials flush out to
// their owners and every subsequent remote reference crosses the network
// directly. Runs in the sequential commit phase, in node order, because it
// bumps a shared counter; the cycle a scrub crosses the threshold is a
// worked cycle in both stepping modes, so the transition lands identically
// with and without fast-forward and at any shard count.
func (s *System) applyDegrade(n *node) {
	if !n.wantDegrade {
		return
	}
	n.wantDegrade = false
	n.degraded = true
	s.lmet.degraded.Inc()
	for _, cb := range n.comb {
		cb.StartFlush()
	}
}

// queueSumBack turns an evicted partial line into per-word scatter-add
// requests (a whole-line sum-back: every word of the line crosses the
// network, which is exactly the eviction overhead the paper observes for
// sparse address ranges).
func (s *System) queueSumBack(n *node, ev cache.EvictedLine) {
	for i := 0; i < mem.LineWords; i++ {
		id := sumBackTag | s.sumBackSeq
		s.sumBackSeq++
		n.outbox.MustPush(mem.Request{
			ID: id, Kind: ev.Kind, Addr: ev.Line + mem.Addr(i), Val: ev.Data[i], Node: n.id,
		})
	}
}

// sumBackDst returns where node from sends a sum-back for addr: directly
// to the owner, or — in hierarchical mode — one hypercube hop toward it
// (flip the lowest differing address bit), merging partials along the way.
func (s *System) sumBackDst(from int, addr mem.Addr) int {
	own := s.owner(addr)
	if !s.cfg.Hierarchical || own == from {
		return own
	}
	diff := from ^ own
	return from ^ (diff & -diff)
}

// log2 returns ceil(log2(n)) for n >= 1.
func log2(n int) int {
	lg := 0
	for v := 1; v < n; v <<= 1 {
		lg++
	}
	return lg
}

// done reports quiescence of the current phase.
func (s *System) done() bool {
	if s.xbar.Busy() {
		return false
	}
	for _, n := range s.nodes {
		if n.issued < len(n.trace) || !n.inbox.Empty() || !n.outbox.Empty() {
			return false
		}
		if s.reliable && (len(n.pending) > 0 || len(n.ackbox) > 0) {
			return false
		}
		for _, u := range n.sas {
			if u.Busy() {
				return false
			}
		}
		for _, cb := range n.comb {
			if cb.Busy() || cb.Flushing() {
				return false
			}
		}
		if n.dram.Busy() {
			return false
		}
	}
	return true
}

// ReadResult returns the final value at each address in addrs, flushing all
// node caches functionally first. Use it to verify a replay against a
// sequential reference.
func (s *System) ReadResult(addrs []mem.Addr) []mem.Word {
	for _, n := range s.nodes {
		for _, b := range n.banks {
			b.FlushFunctional()
		}
	}
	out := make([]mem.Word, len(addrs))
	for i, a := range addrs {
		out[i] = s.nodes[s.owner(a)].dram.Store().Load(a)
	}
	return out
}
