package multinode

import (
	"reflect"
	"testing"

	"scatteradd/internal/fault"
	"scatteradd/internal/mem"
)

// chaosConfig returns a small system with every fault class cranked high
// enough that a short trace exercises drops, duplications, retries, stalls,
// and scrubs.
func chaosConfig(nodes, bw int, span mem.Addr, combining bool) Config {
	cfg := smallConfig(nodes, bw, span, combining)
	fc := fault.DefaultChaos()
	fc.NetDropRate = 0.05
	fc.NetDupRate = 0.02
	fc.DRAMStallRate = 0.01
	fc.DRAMWindowEvery = 5_000
	fc.DRAMWindowSpan = 200
	fc.CSCorruptRate = 0.01
	fc.FUErrorRate = 0.01
	cfg.Faults = fc
	return cfg
}

// TestChaosDirectExact: with every injector firing, direct-mode reductions
// stay bit-exact — drops are retried, duplicates deduplicated, stalls and
// scrubs merely cost cycles.
func TestChaosDirectExact(t *testing.T) {
	const rng = 1024
	for _, nodes := range []int{2, 4, 8} {
		span := mem.Addr((rng+nodes-1)/nodes+mem.LineWords-1) &^ (mem.LineWords - 1)
		s := New(chaosConfig(nodes, 8, span, false), mem.AddI64)
		refs := uniformTrace(4096, rng, uint64(7+nodes))
		res := s.RunTrace(refs)
		verifyHistogram(t, s, refs, rng)
		if res.NetStats.Dropped == 0 {
			t.Fatalf("%d nodes: chaos run dropped no packets", nodes)
		}
		if res.Retransmits == 0 {
			t.Fatalf("%d nodes: drops occurred but nothing retransmitted", nodes)
		}
		if res.NetStats.Duped != 0 && res.DupsDropped == 0 {
			t.Fatalf("%d nodes: duplicates crossed but none were deduplicated", nodes)
		}
	}
}

// TestChaosCombiningExact: the same guarantee through the combining path,
// including sum-back frames and partial-line parity scrubs.
func TestChaosCombiningExact(t *testing.T) {
	const rng = 1024
	for _, nodes := range []int{2, 4} {
		span := mem.Addr((rng+nodes-1)/nodes+mem.LineWords-1) &^ (mem.LineWords - 1)
		s := New(chaosConfig(nodes, 1, span, true), mem.AddI64)
		refs := uniformTrace(4096, rng, uint64(11+nodes))
		res := s.RunTrace(refs)
		verifyHistogram(t, s, refs, rng)
		if res.SumBacks == 0 {
			t.Fatalf("%d nodes: combining mode performed no sum-backs", nodes)
		}
	}
}

// TestChaosHierarchicalExact: hop-by-hop reliability under the hypercube
// sum-back tree.
func TestChaosHierarchicalExact(t *testing.T) {
	const rng = 1024
	cfg := chaosConfig(4, 1, mem.Addr((rng/4+mem.LineWords-1))&^(mem.LineWords-1), true)
	cfg.Hierarchical = true
	s := New(cfg, mem.AddI64)
	refs := uniformTrace(4096, rng, 23)
	s.RunTrace(refs)
	verifyHistogram(t, s, refs, rng)
}

// TestChaosDeterministic: the same seed yields byte-identical fault
// schedules, counters, and results.
func TestChaosDeterministic(t *testing.T) {
	const rng = 1024
	run := func() (Result, []byte) {
		span := mem.Addr((rng/2 + mem.LineWords - 1)) &^ (mem.LineWords - 1)
		s := New(chaosConfig(2, 8, span, false), mem.AddI64)
		res := s.RunTrace(uniformTrace(2048, rng, 5))
		var snap []byte
		for _, e := range s.StatsSnapshot().Entries {
			snap = append(snap, []byte(e.Key)...)
			for sh := 0; sh < 64; sh += 8 {
				snap = append(snap, byte(e.Val>>sh))
			}
		}
		return res, snap
	}
	r1, s1 := run()
	r2, s2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("results diverge:\n%+v\n%+v", r1, r2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("counter snapshots diverge across identical runs")
	}
}

// TestChaosFFMatchesLegacy: fast-forward and per-cycle stepping must agree
// cycle-for-cycle and counter-for-counter with every injector active.
func TestChaosFFMatchesLegacy(t *testing.T) {
	const rng = 1024
	for _, combining := range []bool{false, true} {
		run := func(legacy bool) (Result, interface{}) {
			span := mem.Addr((rng/2 + mem.LineWords - 1)) &^ (mem.LineWords - 1)
			cfg := chaosConfig(2, 1, span, combining)
			cfg.LegacyStepping = legacy
			s := New(cfg, mem.AddI64)
			res := s.RunTrace(uniformTrace(2048, rng, 9))
			return res, s.StatsSnapshot()
		}
		fr, fs := run(false)
		lr, ls := run(true)
		if !reflect.DeepEqual(fr, lr) {
			t.Fatalf("combining=%v: FF result %+v != legacy %+v", combining, fr, lr)
		}
		if !reflect.DeepEqual(fs, ls) {
			t.Fatalf("combining=%v: FF counters diverge from legacy", combining)
		}
	}
}

// TestDegradeFallsBackToDirect: once a node's combining banks scrub enough
// parity faults, it flushes and routes remote references directly — and the
// reduction stays exact through the transition.
func TestDegradeFallsBackToDirect(t *testing.T) {
	const rng = 1024
	span := mem.Addr((rng/2 + mem.LineWords - 1)) &^ (mem.LineWords - 1)
	cfg := chaosConfig(2, 8, span, true)
	cfg.Faults.CSCorruptRate = 0.2 // scrub storm
	cfg.Faults.DegradeThreshold = 8
	s := New(cfg, mem.AddI64)
	refs := uniformTrace(4096, rng, 31)
	res := s.RunTrace(refs)
	if res.Degraded == 0 {
		t.Fatal("no node degraded despite a scrub storm over the threshold")
	}
	verifyHistogram(t, s, refs, rng)
}

// TestZeroFaultIdentical: a zero fault config must not perturb the run at
// all — same cycles, same counters as a config-free build.
func TestZeroFaultIdentical(t *testing.T) {
	const rng = 1024
	span := mem.Addr((rng/2 + mem.LineWords - 1)) &^ (mem.LineWords - 1)
	base := New(smallConfig(2, 1, span, true), mem.AddI64)
	refs := uniformTrace(2048, rng, 13)
	br := base.RunTrace(refs)

	cfg := smallConfig(2, 1, span, true)
	cfg.Faults = fault.Config{} // explicit zero
	zr := New(cfg, mem.AddI64).RunTrace(refs)
	if !reflect.DeepEqual(br, zr) {
		t.Fatalf("zero fault config perturbed the run:\n%+v\n%+v", br, zr)
	}
}
