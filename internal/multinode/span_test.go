package multinode

import (
	"bytes"
	"strings"
	"testing"

	"scatteradd/internal/mem"
	"scatteradd/internal/span"
)

// TestSpanTracerMultiNodeDirect checks remote scatter-adds carry
// node-qualified identities: sampled ops from every node complete, remote
// ones visit the network stage, and the export carries per-node tracks.
func TestSpanTracerMultiNodeDirect(t *testing.T) {
	const rng = 1024
	nodes := 4
	s := New(smallConfig(nodes, 8, rng/mem.Addr(nodes), false), mem.AddI64)
	tr := span.New(4)
	s.SetSpanTracer(tr)
	refs := uniformTrace(2048, rng, 7)
	s.RunTrace(refs)
	verifyHistogram(t, s, refs, rng)

	ops := tr.Ops()
	if len(ops) == 0 {
		t.Fatal("no ops sampled")
	}
	if live := tr.Live(); live != 0 {
		t.Fatalf("%d sampled ops never completed", live)
	}
	seenNodes := map[int]bool{}
	sawNet := false
	for _, op := range ops {
		seenNodes[op.Node] = true
		for _, tn := range op.Trans {
			if tn.Stage == span.StageNet {
				sawNet = true
			}
		}
	}
	if len(seenNodes) != nodes {
		t.Fatalf("sampled ops from %d nodes, want %d", len(seenNodes), nodes)
	}
	if !sawNet {
		t.Fatal("no sampled op crossed the network (uniform trace over 4 nodes must have remote refs)")
	}
	// Node-qualified component tracks must appear in the Perfetto export.
	var buf bytes.Buffer
	if err := span.WriteTraceEvents(&buf, []span.Process{tr.Process(0, "multinode")}); err != nil {
		t.Fatal(err)
	}
	if _, err := span.ValidateTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("export does not validate: %v", err)
	}
	out := buf.String()
	for _, track := range []string{"dram[0]", "dram[3]", "saunit[0.0]", "net.out["} {
		if !strings.Contains(out, track) {
			t.Fatalf("export missing node-qualified track %q", track)
		}
	}
}

// TestSpanTracerCombiningEndsLocally checks that in combining mode a
// sampled remote op's lifecycle terminates at the local combining bank, and
// sum-back traffic (tagged IDs) never aliases a sampled op.
func TestSpanTracerCombiningEndsLocally(t *testing.T) {
	const rng = 512
	nodes := 4
	s := New(smallConfig(nodes, 1, rng/mem.Addr(nodes), true), mem.AddI64)
	tr := span.New(2)
	s.SetSpanTracer(tr)
	refs := uniformTrace(2048, rng, 11)
	s.RunTrace(refs)
	verifyHistogram(t, s, refs, rng)
	if live := tr.Live(); live != 0 {
		t.Fatalf("%d sampled ops never completed (sum-back ID aliasing?)", live)
	}
	if len(tr.Ops()) == 0 {
		t.Fatal("no ops sampled")
	}
	rep := span.Aggregate(tr.Ops())
	if rep.Ops == 0 || rep.Mean <= 0 {
		t.Fatalf("report: %+v", rep)
	}
}

// TestSpanTracerDoesNotPerturbMultiNode requires identical cycle counts and
// results with and without tracing.
func TestSpanTracerDoesNotPerturbMultiNode(t *testing.T) {
	const rng = 512
	for _, combining := range []bool{false, true} {
		run := func(rate int) Result {
			s := New(smallConfig(2, 1, rng/2, combining), mem.AddI64)
			if rate > 0 {
				s.SetSpanTracer(span.New(rate))
			}
			return s.RunTrace(uniformTrace(1024, rng, 13))
		}
		bare, traced := run(0), run(1)
		if bare != traced {
			t.Fatalf("combining=%v: tracing changed the result: %+v != %+v", combining, bare, traced)
		}
	}
}
