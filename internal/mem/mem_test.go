package mem

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWordConversions(t *testing.T) {
	for _, f := range []float64{0, 1, -1, math.Pi, math.Inf(1), math.Inf(-1), 1e-300, -1e300} {
		if got := AsF64(F64(f)); got != f {
			t.Errorf("F64 roundtrip %g -> %g", f, got)
		}
	}
	for _, i := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64, 42} {
		if got := AsI64(I64(i)); got != i {
			t.Errorf("I64 roundtrip %d -> %d", i, got)
		}
	}
}

func TestAddrLineGeometry(t *testing.T) {
	cases := []struct {
		a    Addr
		line Addr
		off  int
	}{
		{0, 0, 0}, {7, 0, 7}, {8, 8, 0}, {13, 8, 5}, {1023, 1016, 7},
	}
	for _, c := range cases {
		if c.a.Line() != c.line || c.a.LineOffset() != c.off {
			t.Errorf("addr %d: line=%d off=%d, want %d/%d",
				c.a, c.a.Line(), c.a.LineOffset(), c.line, c.off)
		}
	}
}

func TestCombineAdd(t *testing.T) {
	if got := AsF64(Combine(AddF64, F64(1.5), F64(2.25))); got != 3.75 {
		t.Errorf("AddF64 = %g", got)
	}
	if got := AsI64(Combine(AddI64, I64(-5), I64(7))); got != 2 {
		t.Errorf("AddI64 = %d", got)
	}
	if got := AsF64(Combine(FetchAddF64, F64(1), F64(2))); got != 3 {
		t.Errorf("FetchAddF64 = %g", got)
	}
}

func TestCombineExtensionOps(t *testing.T) {
	if got := AsF64(Combine(MinF64, F64(3), F64(-2))); got != -2 {
		t.Errorf("MinF64 = %g", got)
	}
	if got := AsF64(Combine(MaxF64, F64(3), F64(-2))); got != 3 {
		t.Errorf("MaxF64 = %g", got)
	}
	if got := AsF64(Combine(MulF64, F64(3), F64(-2))); got != -6 {
		t.Errorf("MulF64 = %g", got)
	}
	if got := AsI64(Combine(MinI64, I64(3), I64(-2))); got != -2 {
		t.Errorf("MinI64 = %d", got)
	}
	if got := AsI64(Combine(MaxI64, I64(3), I64(-2))); got != 3 {
		t.Errorf("MaxI64 = %d", got)
	}
}

func TestCombinePanicsOnRead(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Combine(Read, 0, 0)
}

// Property: Identity(k) is a true identity for Combine(k, ., .).
func TestIdentityProperty(t *testing.T) {
	kinds := []Kind{AddF64, AddI64, MinF64, MaxF64, MulF64, MinI64, MaxI64, FetchAddF64, FetchAddI64}
	f := func(bits uint64) bool {
		for _, k := range kinds {
			v := bits
			if k.IsFP() || k == MinF64 || k == MaxF64 {
				// keep FP values finite and non-NaN for exact comparison
				v = F64(float64(int64(bits%1000000)) / 7)
			} else if k == AddI64 || k == FetchAddI64 {
				v = I64(int64(bits % (1 << 40)))
			} else if k == MinI64 || k == MaxI64 {
				v = I64(int64(bits))
			}
			if Combine(k, Identity(k), v) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Combine is commutative in its combining argument order for add:
// folding values in any of two orders gives the same result for integers.
func TestAddI64CommutativeProperty(t *testing.T) {
	f := func(a, b, c int64) bool {
		ab := Combine(AddI64, Combine(AddI64, I64(c), I64(a)), I64(b))
		ba := Combine(AddI64, Combine(AddI64, I64(c), I64(b)), I64(a))
		return ab == ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindPredicates(t *testing.T) {
	if Read.IsScatterAdd() || Write.IsScatterAdd() {
		t.Error("Read/Write must not be scatter-add")
	}
	for _, k := range []Kind{AddF64, AddI64, MinF64, MulF64, FetchAddI64} {
		if !k.IsScatterAdd() {
			t.Errorf("%v should be scatter-add", k)
		}
	}
	if !FetchAddF64.IsFetch() || !FetchAddI64.IsFetch() {
		t.Error("FetchAdd kinds must be fetch")
	}
	if AddF64.IsFetch() {
		t.Error("AddF64 must not be fetch")
	}
	if !AddF64.IsFP() || AddI64.IsFP() {
		t.Error("IsFP misclassification")
	}
	if Kind(200).String() == "" || AddF64.String() != "AddF64" {
		t.Error("String() misbehaved")
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	if s.Load(12345) != 0 {
		t.Fatal("unwritten word must read 0")
	}
	s.StoreWord(12345, 99)
	if s.Load(12345) != 99 {
		t.Fatal("load after store")
	}
	s.StoreF64(7, 2.5)
	if s.LoadF64(7) != 2.5 {
		t.Fatal("F64 load/store")
	}
	s.StoreI64(8, -42)
	if s.LoadI64(8) != -42 {
		t.Fatal("I64 load/store")
	}
}

func TestStoreSparsePages(t *testing.T) {
	s := NewStore()
	// Touch addresses in widely separated pages.
	addrs := []Addr{0, 4095, 4096, 1 << 20, 1 << 30, 1 << 40}
	for i, a := range addrs {
		s.StoreWord(a, Word(i+1))
	}
	for i, a := range addrs {
		if s.Load(a) != Word(i+1) {
			t.Errorf("addr %d: got %d", a, s.Load(a))
		}
	}
}

func TestStoreLineOps(t *testing.T) {
	s := NewStore()
	var line [LineWords]Word
	for i := range line {
		line[i] = Word(100 + i)
	}
	s.StoreLine(19, &line) // line base = 16
	var got [LineWords]Word
	s.LoadLine(16, &got)
	if got != line {
		t.Fatalf("line roundtrip: %v != %v", got, line)
	}
	if s.Load(16) != 100 || s.Load(23) != 107 {
		t.Fatal("line word placement wrong")
	}
}

func TestStoreSlices(t *testing.T) {
	s := NewStore()
	fs := []float64{1, 2.5, -3, 0.125}
	s.WriteF64Slice(1000, fs)
	got := s.ReadF64Slice(1000, len(fs))
	for i := range fs {
		if got[i] != fs[i] {
			t.Fatalf("F64 slice roundtrip: %v != %v", got, fs)
		}
	}
	is := []int64{-1, 0, 7, math.MaxInt64}
	s.WriteI64Slice(2000, is)
	igot := s.ReadI64Slice(2000, len(is))
	for i := range is {
		if igot[i] != is[i] {
			t.Fatalf("I64 slice roundtrip: %v != %v", igot, is)
		}
	}
}

// Property: store behaves like a map from Addr to Word.
func TestStoreMapEquivalence(t *testing.T) {
	f := func(writes []struct {
		A uint16
		V uint64
	}) bool {
		s := NewStore()
		ref := map[Addr]Word{}
		for _, w := range writes {
			a := Addr(w.A)
			s.StoreWord(a, w.V)
			ref[a] = w.V
		}
		for a, v := range ref {
			if s.Load(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
