// Package mem defines the word-level memory model shared by every hardware
// component in the simulator: addresses, request/response records, the
// scatter-add combine semantics, and a functional backing store.
//
// All memory traffic is in 8-byte words. Cache lines are 8 words (64 bytes).
// Values travel as raw uint64 bit patterns; helpers convert to and from
// float64 and int64 so a single datapath serves both the integer and the
// floating-point adders of the scatter-add unit (paper §3.2).
package mem

import (
	"fmt"
	"math"
	"sync"
)

// Word is the raw 64-bit contents of one memory word.
type Word = uint64

// Addr is a word-granular global memory address.
type Addr uint64

// Geometry of the memory system.
const (
	WordBytes = 8                     // bytes per word
	LineWords = 8                     // words per cache line
	LineBytes = LineWords * WordBytes // bytes per cache line
)

// Line returns the address of the first word of the line containing a.
func (a Addr) Line() Addr { return a &^ (LineWords - 1) }

// LineOffset returns the word offset of a within its line.
func (a Addr) LineOffset() int { return int(a & (LineWords - 1)) }

// F64 converts a float64 to its word representation.
func F64(f float64) Word { return math.Float64bits(f) }

// AsF64 converts a word to float64.
func AsF64(w Word) float64 { return math.Float64frombits(w) }

// I64 converts an int64 to its word representation.
func I64(i int64) Word { return uint64(i) }

// AsI64 converts a word to int64.
func AsI64(w Word) int64 { return int64(w) }

// Kind identifies a memory operation. Read and Write are the ordinary vector
// load/store operations; the remaining kinds are the atomic read-modify-write
// operations executed by the scatter-add unit. AddF64 and AddI64 are the
// paper's core scatter-add; Min/Max/Mul are the commutative-and-associative
// extensions of §3.3; FetchAddF64/FetchAddI64 implement the data-parallel
// Fetch&Op extension, which returns the pre-update value to the requester.
type Kind uint8

const (
	Read Kind = iota
	Write
	AddF64
	AddI64
	MinF64
	MaxF64
	MulF64
	MinI64
	MaxI64
	FetchAddF64
	FetchAddI64
)

var kindNames = [...]string{
	Read: "Read", Write: "Write",
	AddF64: "AddF64", AddI64: "AddI64",
	MinF64: "MinF64", MaxF64: "MaxF64", MulF64: "MulF64",
	MinI64: "MinI64", MaxI64: "MaxI64",
	FetchAddF64: "FetchAddF64", FetchAddI64: "FetchAddI64",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsScatterAdd reports whether k is handled by the scatter-add unit (any
// atomic read-modify-write, including the extension ops).
func (k Kind) IsScatterAdd() bool { return k >= AddF64 }

// IsFetch reports whether k returns the pre-update memory value.
func (k Kind) IsFetch() bool { return k == FetchAddF64 || k == FetchAddI64 }

// IsFP reports whether k performs floating-point arithmetic (counts as an FP
// operation in the paper's "FP Operations" metric).
func (k Kind) IsFP() bool {
	switch k {
	case AddF64, MinF64, MaxF64, MulF64, FetchAddF64:
		return true
	}
	return false
}

// Combine applies the read-modify-write semantics of kind k: it merges the
// incoming value v into the current memory contents old and returns the new
// contents. It panics for non-RMW kinds, which have no combine semantics.
func Combine(k Kind, old, v Word) Word {
	switch k {
	case AddF64, FetchAddF64:
		return F64(AsF64(old) + AsF64(v))
	case AddI64, FetchAddI64:
		return I64(AsI64(old) + AsI64(v))
	case MinF64:
		return F64(math.Min(AsF64(old), AsF64(v)))
	case MaxF64:
		return F64(math.Max(AsF64(old), AsF64(v)))
	case MulF64:
		return F64(AsF64(old) * AsF64(v))
	case MinI64:
		if AsI64(v) < AsI64(old) {
			return v
		}
		return old
	case MaxI64:
		if AsI64(v) > AsI64(old) {
			return v
		}
		return old
	}
	panic(fmt.Sprintf("mem: Combine on non-RMW kind %v", k))
}

// Identity returns the identity element of the combine operation of kind k:
// Combine(k, Identity(k), v) == v for every v. It is used by the multi-node
// cache-combining optimization, which allocates remote lines with the
// identity instead of fetching them (paper §3.2, "local phase").
func Identity(k Kind) Word {
	switch k {
	case AddF64, FetchAddF64:
		return F64(0)
	case AddI64, FetchAddI64:
		return I64(0)
	case MinF64:
		return F64(math.Inf(1))
	case MaxF64:
		return F64(math.Inf(-1))
	case MulF64:
		return F64(1)
	case MinI64:
		return I64(math.MaxInt64)
	case MaxI64:
		return I64(math.MinInt64)
	}
	panic(fmt.Sprintf("mem: Identity on non-RMW kind %v", k))
}

// Request is one word-granular memory operation flowing through the memory
// system. ID is an opaque token chosen by the issuer and echoed in the
// Response; Node identifies the issuing node in multi-node configurations.
type Request struct {
	ID   uint64
	Kind Kind
	Addr Addr
	Val  Word // store data or scatter-add operand; unused for Read
	Node int  // issuing node (multi-node only)
}

// Response acknowledges completion of a Request. For Read and Fetch* kinds
// Val carries the loaded (respectively pre-update) value.
type Response struct {
	ID   uint64
	Kind Kind
	Addr Addr
	Val  Word
	Node int
}

// pageWords is the granularity of the sparse backing store.
const pageWords = 4096

// Store is the functional backing state of a memory: a sparse, word-granular
// image of the address space. It has no timing; timing models (DRAM, cache)
// hold or reference a Store for the actual data. Unwritten words read as 0.
//
// A Store is safe for concurrent use: the sharded single-machine engine ticks
// DRAM channels on parallel shard workers, and two channels can touch the
// same sparse page (pages span many lines). Only the page map needs the lock
// — concurrent accesses to distinct words of one page are race-free — so
// line and slice operations take it once, not per word.
type Store struct {
	mu    sync.RWMutex
	pages map[Addr]*[pageWords]Word
}

// NewStore returns an empty store (all words zero).
func NewStore() *Store { return &Store{pages: make(map[Addr]*[pageWords]Word)} }

// load is Load without the lock; callers hold mu (either mode).
func (s *Store) load(a Addr) Word {
	p, ok := s.pages[a/pageWords]
	if !ok {
		return 0
	}
	return p[a%pageWords]
}

// page returns the page containing a, allocating it if needed; callers hold
// mu exclusively.
func (s *Store) page(a Addr) *[pageWords]Word {
	pidx := a / pageWords
	p, ok := s.pages[pidx]
	if !ok {
		p = new([pageWords]Word)
		s.pages[pidx] = p
	}
	return p
}

// Load returns the word at address a.
func (s *Store) Load(a Addr) Word {
	s.mu.RLock()
	v := s.load(a)
	s.mu.RUnlock()
	return v
}

// StoreWord sets the word at address a.
func (s *Store) StoreWord(a Addr, v Word) {
	s.mu.Lock()
	s.page(a)[a%pageWords] = v
	s.mu.Unlock()
}

// LoadLine copies the 8-word line containing a into dst. A line is
// 8-aligned inside an aligned page, so it never straddles two pages.
func (s *Store) LoadLine(a Addr, dst *[LineWords]Word) {
	base := a.Line()
	s.mu.RLock()
	if p, ok := s.pages[base/pageWords]; ok {
		off := base % pageWords
		copy(dst[:], p[off:off+LineWords])
	} else {
		*dst = [LineWords]Word{}
	}
	s.mu.RUnlock()
}

// StoreLine writes the 8-word line containing a from src.
func (s *Store) StoreLine(a Addr, src *[LineWords]Word) {
	base := a.Line()
	s.mu.Lock()
	off := base % pageWords
	copy(s.page(base)[off:off+LineWords], src[:])
	s.mu.Unlock()
}

// LoadF64 returns the float64 at address a.
func (s *Store) LoadF64(a Addr) float64 { return AsF64(s.Load(a)) }

// LoadI64 returns the int64 at address a.
func (s *Store) LoadI64(a Addr) int64 { return AsI64(s.Load(a)) }

// StoreF64 writes f at address a.
func (s *Store) StoreF64(a Addr, f float64) { s.StoreWord(a, F64(f)) }

// StoreI64 writes i at address a.
func (s *Store) StoreI64(a Addr, i int64) { s.StoreWord(a, I64(i)) }

// WriteF64Slice writes vals to consecutive addresses starting at base.
func (s *Store) WriteF64Slice(base Addr, vals []float64) {
	s.mu.Lock()
	for i, v := range vals {
		a := base + Addr(i)
		s.page(a)[a%pageWords] = F64(v)
	}
	s.mu.Unlock()
}

// WriteI64Slice writes vals to consecutive addresses starting at base.
func (s *Store) WriteI64Slice(base Addr, vals []int64) {
	s.mu.Lock()
	for i, v := range vals {
		a := base + Addr(i)
		s.page(a)[a%pageWords] = I64(v)
	}
	s.mu.Unlock()
}

// ReadF64Slice reads n float64 values from consecutive addresses at base.
func (s *Store) ReadF64Slice(base Addr, n int) []float64 {
	out := make([]float64, n)
	s.mu.RLock()
	for i := range out {
		out[i] = AsF64(s.load(base + Addr(i)))
	}
	s.mu.RUnlock()
	return out
}

// ReadI64Slice reads n int64 values from consecutive addresses at base.
func (s *Store) ReadI64Slice(base Addr, n int) []int64 {
	out := make([]int64, n)
	s.mu.RLock()
	for i := range out {
		out[i] = AsI64(s.load(base + Addr(i)))
	}
	s.mu.RUnlock()
	return out
}
