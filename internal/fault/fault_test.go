package fault

import "testing"

func TestNilInjectorIsCold(t *testing.T) {
	var i *Injector
	for k := 0; k < 100; k++ {
		if i.Fire() {
			t.Fatal("nil injector fired")
		}
	}
	if i.Count() != 0 || i.Draws() != 0 {
		t.Fatal("nil injector counted")
	}
	if NewInjector(1, "x", 0) != nil {
		t.Fatal("zero-rate injector not nil")
	}
	if NewInjector(1, "x", -0.5) != nil {
		t.Fatal("negative-rate injector not nil")
	}
}

func TestInjectorDeterminism(t *testing.T) {
	a := NewInjector(42, "net.drop", 0.1)
	b := NewInjector(42, "net.drop", 0.1)
	for k := 0; k < 10_000; k++ {
		if a.Fire() != b.Fire() {
			t.Fatalf("same-seed injectors diverge at draw %d", k)
		}
	}
	if a.Count() == 0 {
		t.Fatal("rate-0.1 injector never fired in 10k draws")
	}
	if a.Count() != b.Count() || a.Draws() != b.Draws() {
		t.Fatal("same-seed injectors count differently")
	}
}

func TestInjectorStreamsIndependent(t *testing.T) {
	a := NewInjector(42, "net.drop", 0.5)
	b := NewInjector(42, "net.dup", 0.5)
	same := 0
	const n = 10_000
	for k := 0; k < n; k++ {
		if a.Fire() == b.Fire() {
			same++
		}
	}
	// Independent fair streams agree ~50% of the time; identical streams 100%.
	if same > n*6/10 || same < n*4/10 {
		t.Fatalf("streams correlate: agree %d/%d", same, n)
	}
}

func TestInjectorRate(t *testing.T) {
	i := NewInjector(7, "dram.stall", 0.02)
	const n = 200_000
	for k := 0; k < n; k++ {
		i.Fire()
	}
	got := float64(i.Count()) / n
	if got < 0.015 || got > 0.025 {
		t.Fatalf("rate 0.02 injector fired at %.4f over %d draws", got, n)
	}
}

func TestInjectorSeedMoves(t *testing.T) {
	a := NewInjector(1, "x", 0.5)
	b := NewInjector(2, "x", 0.5)
	same := true
	for k := 0; k < 64; k++ {
		if a.Fire() != b.Fire() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced the same 64-draw schedule")
	}
}

func TestWindowsNil(t *testing.T) {
	var w *Windows
	if _, blocked := w.Blocked(10); blocked {
		t.Fatal("nil Windows blocked")
	}
	if w.Defer(10) != 10 {
		t.Fatal("nil Windows deferred")
	}
	if w.CountIn(0, 1000) != 0 {
		t.Fatal("nil Windows counted")
	}
	if NewWindows(1, "x", 0, 10, 0.5) != nil {
		t.Fatal("zero-period Windows not nil")
	}
	if NewWindows(1, "x", 100, 10, 0) != nil {
		t.Fatal("zero-rate Windows not nil")
	}
}

func TestWindowsStateless(t *testing.T) {
	w := NewWindows(9, "dram.window", 1000, 100, 0.7)
	// Query out of order, twice: answers must agree.
	probe := []uint64{5_000, 123, 99_999, 42, 5_000, 123, 777_777, 42}
	first := map[uint64]uint64{}
	for pass := 0; pass < 2; pass++ {
		for _, t0 := range probe {
			until, blocked := w.Blocked(t0)
			if !blocked {
				until = ^uint64(0)
			}
			if pass == 0 {
				first[t0] = until
			} else if first[t0] != until {
				t.Fatalf("Blocked(%d) changed between passes", t0)
			}
		}
	}
}

func TestWindowsGeometry(t *testing.T) {
	w := NewWindows(3, "w", 1000, 100, 1.0) // every period has a window
	seen := 0
	for k := uint64(0); k < 50; k++ {
		s, e, ok := w.window(k)
		if !ok {
			t.Fatalf("rate-1.0 period %d has no window", k)
		}
		if e-s != 100 {
			t.Fatalf("window %d span %d, want 100", k, e-s)
		}
		if s < k*1000 || e > (k+1)*1000 {
			t.Fatalf("window %d [%d,%d) escapes period [%d,%d)", k, s, e, k*1000, (k+1)*1000)
		}
		seen++
	}
	if got := w.CountIn(0, 50_000); got != uint64(seen) {
		t.Fatalf("CountIn(0,50000) = %d, want %d", got, seen)
	}
}

func TestWindowsDefer(t *testing.T) {
	w := NewWindows(3, "w", 1000, 100, 1.0)
	for k := uint64(0); k < 50; k++ {
		s, e, _ := w.window(k)
		if got := w.Defer(s); got != e {
			t.Fatalf("Defer(%d) = %d, want window end %d", s, got, e)
		}
		if got := w.Defer(e); got != e {
			t.Fatalf("Defer(%d) moved a free cycle to %d", e, got)
		}
		mid := s + 50
		if got := w.Defer(mid); got != e {
			t.Fatalf("Defer(mid=%d) = %d, want %d", mid, got, e)
		}
	}
}

func TestWindowsSpanClamp(t *testing.T) {
	w := NewWindows(1, "w", 100, 5000, 1.0) // span > every: clamped to 99
	s, e, ok := w.window(0)
	if !ok || e-s != 99 {
		t.Fatalf("clamped window = [%d,%d) ok=%v, want span 99", s, e, ok)
	}
	// Defer must terminate even when consecutive windows touch.
	if got := w.Defer(s); got < e {
		t.Fatalf("Defer(%d) = %d inside window [%d,%d)", s, got, s, e)
	}
}

func TestConfigEnabledAndDefaults(t *testing.T) {
	var z Config
	if z.Enabled() || z.NetFaults() {
		t.Fatal("zero Config enabled")
	}
	c := DefaultChaos()
	if !c.Enabled() || !c.NetFaults() {
		t.Fatal("DefaultChaos not enabled")
	}
	if c.RetryTimeout == 0 || c.MaxRetries == 0 || c.RetryBackoffCap == 0 {
		t.Fatal("DefaultChaos missing recovery defaults")
	}
	d := Config{NetDropRate: 0.1}.WithDefaults()
	if d.DRAMStallCycles != 300 || d.RetryTimeout != 128 || d.MaxRetries != 24 {
		t.Fatalf("WithDefaults left zeros: %+v", d)
	}
}

func TestConfigScale(t *testing.T) {
	c := DefaultChaos()
	if s := c.Scale(0); s.Enabled() {
		t.Fatal("Scale(0) still enabled")
	}
	h := c.Scale(2)
	if h.NetDropRate != c.NetDropRate*2 {
		t.Fatalf("Scale(2) drop = %g, want %g", h.NetDropRate, c.NetDropRate*2)
	}
	if x := c.Scale(1e9); x.NetDropRate > 1 || x.FUErrorRate > 1 {
		t.Fatal("Scale did not clamp to 1")
	}
	if h.RetryTimeout != c.RetryTimeout {
		t.Fatal("Scale changed recovery knobs")
	}
}
