// Package fault is the deterministic fault-injection subsystem. It supplies
// seed-driven injectors that the hardware models consult at well-defined
// event points (a packet granted onto a wire, a DRAM transaction scheduled,
// a combining-store operand consumed, an FU operation retired), so that a
// fault schedule is a pure function of (seed, component name, event index) —
// independent of wall-clock, of the -jobs worker count, and of whether the
// engine runs per-cycle or fast-forwards over quiescent stretches.
//
// Two injector shapes are provided:
//
//   - Injector: a Bernoulli stream — each Fire() call draws the next value
//     of a splitmix64 sequence and fires with the configured probability.
//     Rate-based faults (dropped flits, transient FU errors, corrupted
//     combining-store entries, stalled DRAM transactions) use this.
//
//   - Windows: a stateless schedule of outage windows (a DRAM channel that
//     stops responding for a stretch of cycles). Window placement is a pure
//     function of the cycle number, so components can query it at any cycle
//     in any order — including from NextEvent when computing how far the
//     fast-forward engine may jump.
//
// The faults themselves model *detected and recovered* errors: parity and
// residue checks catch the corruption and the hardware replays from a
// latched copy, so injected faults cost cycles (and retries, and fallbacks)
// but never silently corrupt a reduction. Loss that escapes a component —
// a dropped network flit — is recovered end-to-end by the multinode
// retry/ack protocol. Either way every figure must produce bit-exact sums
// with injection enabled; tests enforce it.
package fault

import "fmt"

// Config enables fault injection. The zero value disables everything; any
// component handed a zero Config installs no injectors and pays nothing on
// its hot path.
type Config struct {
	// Seed is the base seed. Every injector derives its own splitmix64
	// stream from (Seed, component class, instance), so two components never
	// share a schedule and the whole schedule moves with the seed.
	Seed uint64

	// Network flit faults (multi-node crossbar). A dropped packet vanishes
	// on the wire; a duplicated packet is delivered twice. Either engages
	// the multinode link-layer retry/ack/dedup protocol.
	NetDropRate float64 // per-granted-packet drop probability
	NetDupRate  float64 // per-granted-packet duplication probability

	// DRAM channel faults.
	DRAMStallRate   float64 // per-transaction probability of a timed-out access
	DRAMStallCycles int     // extra latency of a timed-out access (default 300)
	DRAMWindowEvery uint64  // period of channel outage windows (0 = none)
	DRAMWindowSpan  uint64  // outage length within each period (default 500)
	DRAMWindowRate  float64 // probability a period contains an outage (default 0.5)

	// CSCorruptRate is the probability that a combining-store entry (or a
	// combining-cache partial line on eviction) suffers a parity-detected
	// corruption and must be scrubbed — replayed from its latched copy at a
	// fixed cycle cost.
	CSCorruptRate float64

	// FUErrorRate is the probability a scatter-add FU operation suffers a
	// transient error: the residue check rejects the result and the
	// operation reissues through the pipeline.
	FUErrorRate float64

	// Recovery knobs (multinode link layer).
	RetryTimeout     uint64 // cycles before an unacked frame retransmits (default 128)
	RetryBackoffCap  int    // max exponent of the 2^n backoff (default 6)
	MaxRetries       int    // attempts before the run panics as unrecoverable (default 24)
	DegradeThreshold uint64 // combining-store faults per node before it falls
	// back from cache-combining to direct remote scatter-add (0 = never)
}

// Enabled reports whether any fault class is active.
func (c Config) Enabled() bool {
	return c.NetDropRate > 0 || c.NetDupRate > 0 ||
		c.DRAMStallRate > 0 || c.DRAMWindowEvery > 0 ||
		c.CSCorruptRate > 0 || c.FUErrorRate > 0
}

// NetFaults reports whether network flit faults are active (and therefore
// whether the multinode link layer must run its retry/ack protocol).
func (c Config) NetFaults() bool { return c.NetDropRate > 0 || c.NetDupRate > 0 }

// WithDefaults fills unset recovery and duration knobs with their defaults.
func (c Config) WithDefaults() Config {
	if c.DRAMStallCycles <= 0 {
		c.DRAMStallCycles = 300
	}
	if c.DRAMWindowSpan == 0 {
		c.DRAMWindowSpan = 500
	}
	if c.DRAMWindowRate <= 0 {
		c.DRAMWindowRate = 0.5
	}
	if c.RetryTimeout == 0 {
		c.RetryTimeout = 128
	}
	if c.RetryBackoffCap <= 0 {
		c.RetryBackoffCap = 6
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 24
	}
	return c
}

// Scale multiplies every rate by x (and scales the window density), keeping
// the durations and recovery knobs. Scale(0) disables injection entirely.
func (c Config) Scale(x float64) Config {
	if x <= 0 {
		return Config{}
	}
	clamp := func(r float64) float64 {
		r *= x
		if r > 1 {
			return 1
		}
		return r
	}
	c.NetDropRate = clamp(c.NetDropRate)
	c.NetDupRate = clamp(c.NetDupRate)
	c.DRAMStallRate = clamp(c.DRAMStallRate)
	c.DRAMWindowRate = clamp(c.DRAMWindowRate)
	c.CSCorruptRate = clamp(c.CSCorruptRate)
	c.FUErrorRate = clamp(c.FUErrorRate)
	return c
}

// DefaultChaos returns the repository's standard chaos configuration: every
// fault class active at a rate high enough that any figure run exercises
// drops, duplicates, stalls, scrubs, and FU retries, yet low enough that
// recovery (not the faults) dominates the timing.
func DefaultChaos() Config {
	return Config{
		Seed:             0x5EED_FA17,
		NetDropRate:      0.01,
		NetDupRate:       0.005,
		DRAMStallRate:    0.002,
		DRAMStallCycles:  300,
		DRAMWindowEvery:  50_000,
		DRAMWindowSpan:   500,
		DRAMWindowRate:   0.5,
		CSCorruptRate:    0.001,
		FUErrorRate:      0.001,
		DegradeThreshold: 64,
	}.WithDefaults()
}

// splitmix64 advances the state and returns the next value of the sequence
// (Steele, Lea, Flood; the JDK SplittableRandom generator).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mix hashes (seed, salt) into an independent stream seed.
func mix(seed uint64, salt string) uint64 {
	h := seed ^ 0xcbf29ce484222325 // FNV offset basis
	for i := 0; i < len(salt); i++ {
		h ^= uint64(salt[i])
		h *= 0x100000001b3 // FNV prime
	}
	// One splitmix step decorrelates nearby seeds.
	return splitmix64(&h)
}

// unit converts a raw 64-bit draw to a float64 in [0, 1).
func unit(v uint64) float64 { return float64(v>>11) / (1 << 53) }

// Injector is a deterministic Bernoulli fault stream. A nil *Injector is a
// valid, permanently-cold injector: Fire reports false, so components wire
// faults with a single nil check and pay nothing when injection is off.
type Injector struct {
	state uint64
	rate  float64
	count uint64 // faults fired
	draws uint64 // Fire calls
}

// NewInjector returns an injector firing with probability rate, on its own
// stream derived from (seed, name). A rate <= 0 returns nil (the cold
// injector).
func NewInjector(seed uint64, name string, rate float64) *Injector {
	if rate <= 0 {
		return nil
	}
	if rate > 1 {
		rate = 1
	}
	return &Injector{state: mix(seed, name), rate: rate}
}

// Fire draws the next value of the stream and reports whether the fault
// fires. It is the ONLY consumer of the stream: call it exactly once per
// fault opportunity (per packet, per transaction, per operand) so the
// schedule is a pure function of the event sequence.
func (i *Injector) Fire() bool {
	if i == nil {
		return false
	}
	i.draws++
	if unit(splitmix64(&i.state)) < i.rate {
		i.count++
		return true
	}
	return false
}

// Count returns the number of faults fired so far.
func (i *Injector) Count() uint64 {
	if i == nil {
		return 0
	}
	return i.count
}

// Draws returns the number of fault opportunities seen so far.
func (i *Injector) Draws() uint64 {
	if i == nil {
		return 0
	}
	return i.draws
}

// Windows is a stateless schedule of outage windows: period k (cycles
// [k*Every, (k+1)*Every)) contains, with probability Rate, one window of
// Span cycles whose offset within the period is drawn from the stream.
// Because placement is a pure function of k, any cycle can be queried in
// any order — including speculative queries from NextEvent.
//
// A nil *Windows never blocks.
type Windows struct {
	seed  uint64
	every uint64
	span  uint64
	rate  float64
}

// NewWindows returns a window schedule derived from (seed, name). every is
// the period, span the outage length (clamped to every-1 so a window never
// spans a period boundary), rate the probability each period contains an
// outage. A zero period or rate returns nil.
func NewWindows(seed uint64, name string, every, span uint64, rate float64) *Windows {
	if every == 0 || span == 0 || rate <= 0 {
		return nil
	}
	if span >= every {
		span = every - 1
	}
	return &Windows{seed: mix(seed, name), every: every, span: span, rate: rate}
}

// window returns period k's outage window [start, end), or ok=false when
// period k has none.
func (w *Windows) window(k uint64) (start, end uint64, ok bool) {
	s := w.seed ^ (k+1)*0x9e3779b97f4a7c15
	have := splitmix64(&s)
	if unit(have) >= w.rate {
		return 0, 0, false
	}
	off := splitmix64(&s) % (w.every - w.span + 1)
	start = k*w.every + off
	return start, start + w.span, true
}

// Blocked reports whether cycle t falls inside an outage window and, if so,
// the first cycle past it.
func (w *Windows) Blocked(t uint64) (until uint64, blocked bool) {
	if w == nil {
		return 0, false
	}
	if s, e, ok := w.window(t / w.every); ok && t >= s && t < e {
		return e, true
	}
	return 0, false
}

// Defer pushes t past any outage window covering it. Windows never abut
// (span < every and one window per period), so a single hop suffices —
// but the loop guards the span==every-1 edge where consecutive windows
// can touch.
func (w *Windows) Defer(t uint64) uint64 {
	if w == nil {
		return t
	}
	for {
		e, blocked := w.Blocked(t)
		if !blocked {
			return t
		}
		t = e
	}
}

// CountIn returns the number of outage windows that start in (from, to].
// Components use it to charge window counters at transaction grain (both
// stepping modes see the same transactions, so counts are mode-exact even
// when the fast-forward engine never ticks inside a window).
func (w *Windows) CountIn(from, to uint64) uint64 {
	if w == nil || to <= from {
		return 0
	}
	var n uint64
	for k := from / w.every; k <= to/w.every; k++ {
		if s, _, ok := w.window(k); ok && s > from && s <= to {
			n++
		}
	}
	return n
}

// String describes the schedule (testing/debug).
func (w *Windows) String() string {
	if w == nil {
		return "fault.Windows(nil)"
	}
	return fmt.Sprintf("fault.Windows(every=%d span=%d rate=%g)", w.every, w.span, w.rate)
}
