// Package apisurface extracts the exported API of a Go package as a stable,
// human-readable list of declarations. It is the engine behind cmd/apicheck
// and the public-API golden test: the surface of the root scatteradd package
// is dumped to API.txt, and CI fails any change that removes or alters an
// exported symbol without the golden being regenerated.
//
// The dump is source-derived (go/parser, no type checking), which keeps it
// dependency-free and fast; signatures are rendered exactly as written, so
// a rename of a parameter counts as a change (that is deliberate — parameter
// names are documentation).
package apisurface

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"regexp"
	"sort"
	"strings"
)

// Decl is one exported declaration of the surface.
type Decl struct {
	Name string // symbol name ("New", "Config", "Machine.Run" for methods)
	Sig  string // rendered one-line declaration
}

// Surface returns the exported API of the Go package in dir (test files
// excluded), sorted by symbol name.
func Surface(dir string) ([]Decl, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var decls []Decl
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				decls = append(decls, fromDecl(fset, d)...)
			}
		}
	}
	sort.Slice(decls, func(i, j int) bool {
		if decls[i].Name != decls[j].Name {
			return decls[i].Name < decls[j].Name
		}
		return decls[i].Sig < decls[j].Sig
	})
	return decls, nil
}

// fromDecl extracts the exported symbols of one top-level declaration.
func fromDecl(fset *token.FileSet, d ast.Decl) []Decl {
	switch d := d.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		name := d.Name.Name
		if d.Recv != nil && len(d.Recv.List) == 1 {
			recv := typeName(d.Recv.List[0].Type)
			if recv == "" || !ast.IsExported(recv) {
				return nil
			}
			name = recv + "." + name
		}
		fn := *d
		fn.Body = nil
		fn.Doc = nil
		return []Decl{{Name: name, Sig: render(fset, &fn)}}
	case *ast.GenDecl:
		var out []Decl
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				c := *s
				c.Doc, c.Comment = nil, nil
				out = append(out, Decl{Name: s.Name.Name, Sig: "type " + render(fset, &c)})
			case *ast.ValueSpec:
				kw := d.Tok.String() // const or var
				for i, n := range s.Names {
					if !n.IsExported() {
						continue
					}
					sig := kw + " " + n.Name
					if s.Type != nil {
						sig += " " + render(fset, s.Type)
					}
					if i < len(s.Values) {
						sig += " = " + render(fset, s.Values[i])
					}
					out = append(out, Decl{Name: n.Name, Sig: sig})
				}
			}
		}
		return out
	}
	return nil
}

// typeName unwraps a receiver type expression to its base identifier.
func typeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return typeName(e.X)
	case *ast.IndexExpr: // generic receiver
		return typeName(e.X)
	case *ast.IndexListExpr:
		return typeName(e.X)
	}
	return ""
}

var wsRE = regexp.MustCompile(`\s+`)

// render prints a node and collapses it to one line.
func render(fset *token.FileSet, n any) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, n); err != nil {
		return fmt.Sprintf("<unprintable: %v>", err)
	}
	return wsRE.ReplaceAllString(strings.TrimSpace(b.String()), " ")
}

// Format renders a surface as the canonical golden-file text: one
// "name :: signature" line per declaration.
func Format(decls []Decl) string {
	var b strings.Builder
	b.WriteString("# Exported API surface. Regenerate with: go run ./cmd/apicheck -write\n")
	for _, d := range decls {
		fmt.Fprintf(&b, "%s :: %s\n", d.Name, d.Sig)
	}
	return b.String()
}

// Parse reads a golden-file text back into a surface. Unparseable lines are
// skipped (comments, blanks).
func Parse(text string) []Decl {
	var decls []Decl
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, sig, ok := strings.Cut(line, " :: ")
		if !ok {
			continue
		}
		decls = append(decls, Decl{Name: name, Sig: sig})
	}
	return decls
}

// Compare diffs a new surface against an old one under API-compatibility
// rules: removals and signature changes are breaking, additions are fine.
// It returns the breaking findings (empty = compatible) and the additions.
func Compare(old, new []Decl) (breaking, additions []string) {
	oldBy := map[string]string{}
	for _, d := range old {
		oldBy[d.Name] = d.Sig
	}
	newBy := map[string]string{}
	for _, d := range new {
		newBy[d.Name] = d.Sig
		if oldSig, ok := oldBy[d.Name]; !ok {
			additions = append(additions, fmt.Sprintf("added: %s :: %s", d.Name, d.Sig))
		} else if oldSig != d.Sig {
			breaking = append(breaking, fmt.Sprintf("changed: %s\n  old: %s\n  new: %s", d.Name, oldSig, d.Sig))
		}
	}
	for _, d := range old {
		if _, ok := newBy[d.Name]; !ok {
			breaking = append(breaking, fmt.Sprintf("removed: %s :: %s", d.Name, d.Sig))
		}
	}
	sort.Strings(breaking)
	sort.Strings(additions)
	return breaking, additions
}
