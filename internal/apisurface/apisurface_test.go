package apisurface

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func writePkg(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestSurfaceExtraction(t *testing.T) {
	dir := writePkg(t, `package p

// Exported docs are stripped from signatures.
func Exported(a int, b ...string) (int, error) { return 0, nil }

func unexported() {}

type Public struct{ X int }

type Alias = Public

func (p *Public) Method(n int) int { return n }

func (p *Public) unexportedMethod() {}

const (
	A = 1
	b = 2
)

var V, w = 3, 4
`)
	decls, err := Surface(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, d := range decls {
		got[d.Name] = d.Sig
	}
	want := map[string]string{
		"Exported":      "func Exported(a int, b ...string) (int, error)",
		"Public":        "type Public struct{ X int }",
		"Alias":         "type Alias = Public",
		"Public.Method": "func (p *Public) Method(n int) int",
		"A":             "const A = 1",
		"V":             "var V = 3",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("surface = %#v\nwant %#v", got, want)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	in := []Decl{{Name: "A", Sig: "const A = 1"}, {Name: "F", Sig: "func F()"}}
	out := Parse(Format(in))
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %#v != %#v", out, in)
	}
}

func TestCompareRules(t *testing.T) {
	old := []Decl{
		{Name: "Kept", Sig: "func Kept()"},
		{Name: "Changed", Sig: "func Changed(a int)"},
		{Name: "Removed", Sig: "func Removed()"},
	}
	new := []Decl{
		{Name: "Kept", Sig: "func Kept()"},
		{Name: "Changed", Sig: "func Changed(a, b int)"},
		{Name: "Added", Sig: "func Added()"},
	}
	breaking, additions := Compare(old, new)
	if len(breaking) != 2 {
		t.Fatalf("breaking = %v, want changed+removed", breaking)
	}
	if !strings.HasPrefix(breaking[0], "changed: Changed") || !strings.HasPrefix(breaking[1], "removed: Removed") {
		t.Fatalf("breaking = %v", breaking)
	}
	if len(additions) != 1 || !strings.HasPrefix(additions[0], "added: Added") {
		t.Fatalf("additions = %v", additions)
	}
}
