package span

import (
	"encoding/json"
	"fmt"
)

// ValidateTraceJSON sanity-checks a Chrome trace-event export: the JSON
// object format with a non-empty traceEvents array whose events carry the
// fields their phase requires. It is the CI gate behind cmd/spanlint and
// intentionally checks structure, not semantics.
func ValidateTraceJSON(data []byte) (events int, err error) {
	var tf struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		return 0, fmt.Errorf("not a trace-event JSON object: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		return 0, fmt.Errorf("traceEvents array is missing or empty")
	}
	sliceEvents := 0
	for i, raw := range tf.TraceEvents {
		var ev struct {
			Name *string  `json:"name"`
			Cat  string   `json:"cat"`
			Ph   *string  `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			Pid  *int     `json:"pid"`
			Tid  *int     `json:"tid"`
			ID   string   `json:"id"`
		}
		if err := json.Unmarshal(raw, &ev); err != nil {
			return 0, fmt.Errorf("event %d: %v", i, err)
		}
		if ev.Name == nil || *ev.Name == "" {
			return 0, fmt.Errorf("event %d: missing name", i)
		}
		if ev.Ph == nil {
			return 0, fmt.Errorf("event %d (%s): missing ph", i, *ev.Name)
		}
		if ev.Pid == nil || ev.Tid == nil {
			return 0, fmt.Errorf("event %d (%s): missing pid/tid", i, *ev.Name)
		}
		switch *ev.Ph {
		case "M":
			// Metadata carries its payload in args; ts optional.
		case "X":
			if ev.Ts == nil || ev.Dur == nil {
				return 0, fmt.Errorf("event %d (%s): complete event needs ts and dur", i, *ev.Name)
			}
			sliceEvents++
		case "B", "E", "i":
			if ev.Ts == nil {
				return 0, fmt.Errorf("event %d (%s): %s event needs ts", i, *ev.Name, *ev.Ph)
			}
			sliceEvents++
		case "b", "e", "n":
			if ev.Ts == nil {
				return 0, fmt.Errorf("event %d (%s): async event needs ts", i, *ev.Name)
			}
			if ev.ID == "" || ev.Cat == "" {
				return 0, fmt.Errorf("event %d (%s): async event needs id and cat", i, *ev.Name)
			}
			sliceEvents++
		default:
			return 0, fmt.Errorf("event %d (%s): unknown phase %q", i, *ev.Name, *ev.Ph)
		}
	}
	if sliceEvents == 0 {
		return 0, fmt.Errorf("trace has metadata only, no slice events")
	}
	return len(tf.TraceEvents), nil
}
