package span

import (
	"testing"

	"scatteradd/internal/mem"
)

func TestTransferMovesLiveOp(t *testing.T) {
	a := New(1)
	b := New(1)
	a.OpBegin(0, 7, mem.AddF64, 0x40, 10)
	a.OpStage(0, 7, StageNet, 12)
	a.Transfer(b, 0, 7)
	if a.Live() != 0 || b.Live() != 1 {
		t.Fatalf("live after transfer: a=%d b=%d, want 0/1", a.Live(), b.Live())
	}
	if !b.Sampled(0, 7) {
		t.Fatal("transferred op not live in destination")
	}
	// The destination must continue the same lifecycle, transitions intact.
	b.OpStage(0, 7, StageBankQ, 15)
	b.OpEnd(0, 7, 20)
	ops := b.Ops()
	if len(ops) != 1 {
		t.Fatalf("dst completed %d ops, want 1", len(ops))
	}
	op := ops[0]
	if op.Start != 10 || op.End != 20 || len(op.Trans) != 3 {
		t.Fatalf("transferred lifecycle corrupted: %+v", op)
	}
	if op.Trans[1].Stage != StageNet || op.Trans[2].Stage != StageBankQ {
		t.Fatalf("transitions lost across transfer: %+v", op.Trans)
	}
}

func TestTransferNoopCases(t *testing.T) {
	a := New(1)
	b := New(1)
	a.Transfer(b, 0, 99) // not live: no-op
	if a.Live() != 0 || b.Live() != 0 {
		t.Fatal("transfer of unsampled id changed state")
	}
	a.OpBegin(0, 1, mem.AddF64, 0, 0)
	a.Transfer(a, 0, 1) // self-transfer: no-op
	if !a.Sampled(0, 1) {
		t.Fatal("self-transfer dropped the op")
	}
	var nilT *Tracer
	nilT.Transfer(a, 0, 1) // nil receiver: no-op
	a.Transfer(nil, 0, 1)  // nil destination: no-op
	if !a.Sampled(0, 1) {
		t.Fatal("nil-destination transfer dropped the op")
	}
}

func TestAbsorbMergesAndEmptiesSource(t *testing.T) {
	master := New(1)
	shard := New(1)
	master.OpBegin(0, 1, mem.AddF64, 0x10, 0)
	master.OpEnd(0, 1, 5)
	master.Span("m", "a", 0, 1)
	shard.OpBegin(1, 2, mem.Read, 0x20, 2)
	shard.OpEnd(1, 2, 9)
	shard.SpanAsync("s", "b", 2, 4)
	shard.OpBegin(1, 3, mem.AddF64, 0x30, 4) // still live
	master.Absorb(shard)
	if got := len(master.Ops()); got != 2 {
		t.Fatalf("master has %d ops after absorb, want 2", got)
	}
	if got := len(master.Events()); got != 2 {
		t.Fatalf("master has %d events after absorb, want 2", got)
	}
	if master.Live() != 1 || !master.Sampled(1, 3) {
		t.Fatal("live op not migrated by absorb")
	}
	if len(shard.Ops()) != 0 || len(shard.Events()) != 0 || shard.Live() != 0 {
		t.Fatal("absorb left state in the source tracer")
	}
	// The live op must be completable on the absorbing tracer.
	master.OpEnd(1, 3, 12)
	if master.Live() != 0 || len(master.Ops()) != 3 {
		t.Fatal("absorbed live op cannot complete")
	}
}

func TestAbsorbCompletedLeavesLiveOpsInPlace(t *testing.T) {
	master := New(1)
	shard := New(1)
	shard.OpBegin(0, 2, mem.Read, 0x20, 2)
	shard.OpEnd(0, 2, 9)
	shard.SpanAsync("s", "b", 2, 4)
	shard.OpBegin(0, 3, mem.AddF64, 0x30, 4) // in flight across the absorb
	master.AbsorbCompleted(shard)
	if got := len(master.Ops()); got != 1 {
		t.Fatalf("master has %d ops, want 1", got)
	}
	if got := len(master.Events()); got != 1 {
		t.Fatalf("master has %d events, want 1", got)
	}
	if len(shard.Ops()) != 0 || len(shard.Events()) != 0 {
		t.Fatal("completed state left in the source tracer")
	}
	// The in-flight op must still be live on the shard tracer — that is the
	// point of AbsorbCompleted: the shard's components keep reporting its
	// stage transitions there, and a later absorb picks it up once ended.
	if shard.Live() != 1 || !shard.Sampled(0, 3) {
		t.Fatal("live op was moved off the shard tracer")
	}
	shard.OpStage(0, 3, StageFU, 6)
	shard.OpEnd(0, 3, 12)
	master.AbsorbCompleted(shard)
	ops := master.Ops()
	if len(ops) != 2 || shard.Live() != 0 {
		t.Fatalf("second absorb: master=%d ops, shard live=%d", len(ops), shard.Live())
	}
	last := ops[1]
	if last.Start != 4 || last.End != 12 || len(last.Trans) != 2 {
		t.Fatalf("lifecycle completed across absorbs corrupted: %+v", last)
	}
}

func TestAbsorbCompletedNoopCases(t *testing.T) {
	a := New(1)
	a.OpBegin(0, 1, mem.AddF64, 0, 0)
	a.OpEnd(0, 1, 1)
	a.AbsorbCompleted(a) // self-absorb must not duplicate
	if len(a.Ops()) != 1 {
		t.Fatalf("self-absorb duplicated ops: %d", len(a.Ops()))
	}
	var nilT *Tracer
	nilT.AbsorbCompleted(a)
	if len(a.Ops()) != 1 {
		t.Fatal("absorb into nil receiver drained the source")
	}
	a.AbsorbCompleted(nil)
	if len(a.Ops()) != 1 {
		t.Fatal("nil-source absorb changed state")
	}
}

func TestAbsorbNoopCases(t *testing.T) {
	a := New(1)
	a.OpBegin(0, 1, mem.AddF64, 0, 0)
	a.OpEnd(0, 1, 1)
	a.Absorb(a) // self-absorb must not duplicate
	if len(a.Ops()) != 1 {
		t.Fatalf("self-absorb duplicated ops: %d", len(a.Ops()))
	}
	var nilT *Tracer
	nilT.Absorb(a) // nil receiver: no-op, a keeps its data
	if len(a.Ops()) != 1 {
		t.Fatal("absorb into nil receiver drained the source")
	}
	a.Absorb(nil) // nil source: no-op
	if len(a.Ops()) != 1 {
		t.Fatal("nil-source absorb changed state")
	}
}

// TestAbsorbedAggregateMatchesSingleTracer is the report-equivalence
// property the sharded multinode path relies on: ops collected by several
// shard tracers and absorbed aggregate to the exact Report a single tracer
// would have produced, regardless of absorb order.
func TestAbsorbedAggregateMatchesSingleTracer(t *testing.T) {
	single := New(1)
	shards := []*Tracer{New(1), New(1), New(1)}
	for i := 0; i < 30; i++ {
		node := i % 3
		id := uint64(i)
		start := uint64(i)
		end := start + uint64(5+i%7)
		for _, tr := range []*Tracer{single, shards[node]} {
			tr.OpBegin(node, id, mem.AddF64, mem.Addr(i*8), start)
			tr.OpStage(node, id, StageFU, start+2)
			tr.OpEnd(node, id, end)
		}
	}
	master := New(1)
	// Absorb in reverse order to prove order-insensitivity of the report.
	for i := len(shards) - 1; i >= 0; i-- {
		master.Absorb(shards[i])
	}
	got := Aggregate(master.Ops())
	want := Aggregate(single.Ops())
	if got.Ops != want.Ops || got.Mean != want.Mean || got.P50 != want.P50 || got.P99 != want.P99 {
		t.Fatalf("aggregate diverged: got %+v want %+v", got, want)
	}
	if got.Format("") != want.Format("") {
		t.Fatalf("formatted reports diverged:\n%s\nvs\n%s", got.Format(""), want.Format(""))
	}
}
