package span

import (
	"fmt"
	"sort"
	"strings"
)

// StageStat aggregates one stage across a set of sampled ops.
type StageStat struct {
	Stage  Stage
	Ops    int    // ops that visited the stage at least once
	Cycles uint64 // total cycles attributed to the stage
}

// Report is a deterministic latency attribution over a set of sampled op
// lifecycles: where did the cycles of a mean/p50/p99 op go, stage by
// stage, split into queueing and service time.
type Report struct {
	Ops    int
	Rate   int // sampling rate the ops were collected at (0 if unknown)
	Mean   float64
	P50    uint64
	P99    uint64
	Stages []StageStat // visited stages only, in Stage order
}

// Aggregate reduces completed ops to a Report. It is pure and order-
// insensitive in its statistics, but callers that want byte-identical
// reports across schedules should still pass ops in a deterministic order
// (the exp layer concatenates per-run slices in input order).
func Aggregate(ops []Op) Report {
	r := Report{Ops: len(ops)}
	if len(ops) == 0 {
		return r
	}
	var stages [numStages]StageStat
	totals := make([]uint64, 0, len(ops))
	var sum uint64
	for i := range ops {
		op := &ops[i]
		lat := op.End - op.Start
		totals = append(totals, lat)
		sum += lat
		cyc, _ := op.StageCycles()
		for s := Stage(0); s < numStages; s++ {
			if cyc[s] > 0 {
				stages[s].Ops++
				stages[s].Cycles += cyc[s]
			}
		}
	}
	sort.Slice(totals, func(i, j int) bool { return totals[i] < totals[j] })
	r.Mean = float64(sum) / float64(len(ops))
	r.P50 = percentileU64(totals, 50)
	r.P99 = percentileU64(totals, 99)
	for s := Stage(0); s < numStages; s++ {
		if stages[s].Ops > 0 {
			stages[s].Stage = s
			r.Stages = append(r.Stages, stages[s])
		}
	}
	return r
}

// percentileU64 is the nearest-rank percentile of an ascending-sorted
// slice (p in (0,100]).
func percentileU64(sorted []uint64, p int) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * n)
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// AttributedCycles returns the total stage-attributed cycles.
func (r Report) AttributedCycles() uint64 {
	var sum uint64
	for _, s := range r.Stages {
		sum += s.Cycles
	}
	return sum
}

// QueueCycles returns the cycles attributed to queueing stages.
func (r Report) QueueCycles() uint64 {
	var sum uint64
	for _, s := range r.Stages {
		if queueStage[s.Stage] {
			sum += s.Cycles
		}
	}
	return sum
}

// ServiceCycles returns the cycles attributed to service stages.
func (r Report) ServiceCycles() uint64 { return r.AttributedCycles() - r.QueueCycles() }

// Bottleneck returns the stage with the most attributed cycles (ties go
// to the earlier stage) and false if no ops were sampled.
func (r Report) Bottleneck() (StageStat, bool) {
	var best StageStat
	found := false
	for _, s := range r.Stages {
		if !found || s.Cycles > best.Cycles {
			best, found = s, true
		}
	}
	return best, found
}

// Format renders the report as a deterministic aligned text table, each
// line prefixed with indent.
func (r Report) Format(indent string) string {
	var b strings.Builder
	if r.Ops == 0 {
		fmt.Fprintf(&b, "%sno ops sampled\n", indent)
		return b.String()
	}
	fmt.Fprintf(&b, "%ssampled ops: %d   latency cycles: mean %.1f  p50 %d  p99 %d\n",
		indent, r.Ops, r.Mean, r.P50, r.P99)
	total := r.AttributedCycles()
	rows := [][]string{{"stage", "class", "ops", "cycles", "mean", "share"}}
	for _, s := range r.Stages {
		rows = append(rows, []string{
			s.Stage.String(),
			s.Stage.Class(),
			fmt.Sprintf("%d", s.Ops),
			fmt.Sprintf("%d", s.Cycles),
			fmt.Sprintf("%.1f", float64(s.Cycles)/float64(s.Ops)),
			fmt.Sprintf("%.1f%%", 100*float64(s.Cycles)/float64(total)),
		})
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		b.WriteString(indent)
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], cell)
			}
		}
		b.WriteString("\n")
	}
	if bn, ok := r.Bottleneck(); ok && total > 0 {
		fmt.Fprintf(&b, "%sbottleneck: %s (%s, %.1f%% of attributed cycles)\n",
			indent, bn.Stage, bn.Stage.Class(), 100*float64(bn.Cycles)/float64(total))
	}
	return b.String()
}
