package span

import (
	"testing"

	"scatteradd/internal/mem"
)

// BenchmarkSpanRecord measures one full sampled op lifecycle (sample,
// begin, two stage transitions, end). CI gates this against main so the
// tracer hot path cannot silently regress.
func BenchmarkSpanRecord(b *testing.B) {
	tr := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i)
		now := uint64(i)
		tr.SampleNext()
		tr.OpBegin(0, id, mem.AddI64, mem.Addr(id&1023), now)
		tr.OpStage(0, id, StageCS, now+2)
		tr.OpStage(0, id, StageFU, now+7)
		tr.OpEnd(0, id, now+9)
		if len(tr.ops) >= 1<<14 {
			b.StopTimer()
			tr.Reset()
			b.StartTimer()
		}
	}
}

// BenchmarkSpanRecordDisabled measures the hooks' cost on a nil tracer —
// the price every component pays when tracing is off.
func BenchmarkSpanRecordDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i)
		tr.SampleNext()
		tr.OpBegin(0, id, mem.AddI64, 0, id)
		tr.OpStage(0, id, StageCS, id)
		tr.OpEnd(0, id, id)
	}
}
