package span

import (
	"strings"
	"testing"

	"scatteradd/internal/mem"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.SampleNext() {
		t.Fatal("nil tracer sampled an op")
	}
	tr.OpBegin(0, 1, mem.AddI64, 8, 0)
	tr.OpStage(0, 1, StageCS, 1)
	tr.OpEnd(0, 1, 2)
	tr.Span("t", "n", 0, 1)
	tr.SpanAsync("t", "n", 0, 1)
	tr.Reset()
	if tr.Sampled(0, 1) || tr.Live() != 0 || tr.Ops() != nil || tr.Events() != nil || tr.Rate() != 0 {
		t.Fatal("nil tracer reported state")
	}
}

func TestSamplingCadence(t *testing.T) {
	tr := New(4)
	var got []bool
	for i := 0; i < 9; i++ {
		got = append(got, tr.SampleNext())
	}
	want := []bool{true, false, false, false, true, false, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d: sampled=%v, want %v", i, got[i], want[i])
		}
	}
	if New(0).Rate() != 1 {
		t.Fatal("rate < 1 not clamped to 1")
	}
}

func TestOpLifecycle(t *testing.T) {
	tr := New(1)
	tr.OpBegin(2, 7, mem.AddF64, 100, 10)
	if !tr.Sampled(2, 7) {
		t.Fatal("op not live after OpBegin")
	}
	if tr.Sampled(0, 7) || tr.Sampled(2, 8) {
		t.Fatal("Sampled matched wrong node/id")
	}
	tr.OpStage(2, 7, StageCS, 12)
	tr.OpStage(2, 7, StageFU, 20)
	tr.OpStage(0, 99, StageFU, 20) // unsampled: must be a no-op
	tr.OpEnd(2, 7, 23)
	tr.OpEnd(2, 7, 23) // double-end: no-op

	if tr.Live() != 0 {
		t.Fatalf("Live() = %d after end, want 0", tr.Live())
	}
	ops := tr.Ops()
	if len(ops) != 1 {
		t.Fatalf("got %d ops, want 1", len(ops))
	}
	op := ops[0]
	if op.ID != 7 || op.Node != 2 || op.Kind != mem.AddF64 || op.Addr != 100 {
		t.Fatalf("op identity wrong: %+v", op)
	}
	if op.Start != 10 || op.End != 23 {
		t.Fatalf("op interval [%d,%d], want [10,23]", op.Start, op.End)
	}
	cyc, visited := op.StageCycles()
	if visited != 3 {
		t.Fatalf("visited %d stages, want 3", visited)
	}
	if cyc[StageBankQ] != 2 || cyc[StageCS] != 8 || cyc[StageFU] != 3 {
		t.Fatalf("stage cycles bankq=%d cs=%d fu=%d, want 2/8/3",
			cyc[StageBankQ], cyc[StageCS], cyc[StageFU])
	}
}

func TestStageCyclesAccumulatesRevisits(t *testing.T) {
	op := Op{Start: 0, End: 10, Trans: []Transition{
		{StageCS, 0}, {StageDRAM, 2}, {StageCS, 5}, {StageFU, 9},
	}}
	cyc, visited := op.StageCycles()
	if visited != 3 {
		t.Fatalf("visited = %d, want 3", visited)
	}
	if cyc[StageCS] != 2+4 || cyc[StageDRAM] != 3 || cyc[StageFU] != 1 {
		t.Fatalf("cs=%d dram=%d fu=%d, want 6/3/1", cyc[StageCS], cyc[StageDRAM], cyc[StageFU])
	}
}

func TestReset(t *testing.T) {
	tr := New(1)
	tr.OpBegin(0, 1, mem.AddI64, 8, 0)
	tr.OpEnd(0, 1, 4)
	tr.OpBegin(0, 2, mem.AddI64, 8, 5)
	tr.Span("t", "n", 0, 1)
	tr.Reset()
	if len(tr.Ops()) != 0 || len(tr.Events()) != 0 || tr.Live() != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestStageNames(t *testing.T) {
	for s := Stage(0); s < numStages; s++ {
		if s.String() == "unknown" || s.String() == "" {
			t.Fatalf("stage %d has no name", s)
		}
		if c := s.Class(); c != "queue" && c != "service" {
			t.Fatalf("stage %v class %q", s, c)
		}
	}
	if Stage(200).String() != "unknown" {
		t.Fatal("out-of-range stage name")
	}
}

func mkOp(start, end uint64, trans ...Transition) Op {
	return Op{Kind: mem.AddI64, Start: start, End: end, Trans: trans}
}

func TestAggregate(t *testing.T) {
	ops := []Op{
		mkOp(0, 10, Transition{StageBankQ, 0}, Transition{StageCS, 2}, Transition{StageFU, 8}),
		mkOp(0, 20, Transition{StageBankQ, 0}, Transition{StageCS, 4}, Transition{StageFU, 18}),
		mkOp(0, 100, Transition{StageBankQ, 0}, Transition{StageDRAM, 10}),
	}
	r := Aggregate(ops)
	if r.Ops != 3 {
		t.Fatalf("Ops = %d", r.Ops)
	}
	if want := (10 + 20 + 100) / 3.0; r.Mean != want {
		t.Fatalf("Mean = %v, want %v", r.Mean, want)
	}
	if r.P50 != 20 || r.P99 != 100 {
		t.Fatalf("p50=%d p99=%d, want 20/100", r.P50, r.P99)
	}
	// bank-queue: 2+4+10 = 16; cs: 6+14 = 20; fpu: 2+2 = 4; dram: 90.
	if q := r.QueueCycles(); q != 16+20 {
		t.Fatalf("QueueCycles = %d, want 36", q)
	}
	if s := r.ServiceCycles(); s != 4+90 {
		t.Fatalf("ServiceCycles = %d, want 94", s)
	}
	bn, ok := r.Bottleneck()
	if !ok || bn.Stage != StageDRAM || bn.Cycles != 90 {
		t.Fatalf("Bottleneck = %+v ok=%v, want dram/90", bn, ok)
	}
	out := r.Format("  ")
	for _, want := range []string{"sampled ops: 3", "dram", "bottleneck: dram"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
	// Determinism: same input, same bytes.
	if out != Aggregate(ops).Format("  ") {
		t.Fatal("Format not deterministic")
	}

	empty := Aggregate(nil)
	if empty.Ops != 0 {
		t.Fatal("empty aggregate has ops")
	}
	if !strings.Contains(empty.Format(""), "no ops sampled") {
		t.Fatal("empty format missing placeholder")
	}
	if _, ok := empty.Bottleneck(); ok {
		t.Fatal("empty report has a bottleneck")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    int
		want uint64
	}{{50, 5}, {95, 10}, {99, 10}, {100, 10}, {1, 1}}
	for _, c := range cases {
		if got := percentileU64(sorted, c.p); got != c.want {
			t.Fatalf("p%d = %d, want %d", c.p, got, c.want)
		}
	}
	if percentileU64(nil, 50) != 0 {
		t.Fatal("empty percentile != 0")
	}
	if got := percentileU64([]uint64{42}, 99); got != 42 {
		t.Fatalf("single-element p99 = %d", got)
	}
}
