package span

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"scatteradd/internal/mem"
)

func exportOneProcess(t *testing.T) []byte {
	t.Helper()
	tr := New(1)
	tr.OpBegin(0, 1, mem.AddI64, 64, 0)
	tr.OpStage(0, 1, StageCS, 3)
	tr.OpStage(0, 1, StageFU, 9)
	tr.OpEnd(0, 1, 12)
	tr.Span("dram[0]", "rd line=8", 4, 30)
	tr.SpanAsync("cache[1]", "miss line=8", 4, 28)
	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, []Process{tr.Process(0, "machine")}); err != nil {
		t.Fatalf("WriteTraceEvents: %v", err)
	}
	return buf.Bytes()
}

func TestWriteTraceEventsValidates(t *testing.T) {
	data := exportOneProcess(t)
	n, err := ValidateTraceJSON(data)
	if err != nil {
		t.Fatalf("export does not validate: %v\n%s", err, data)
	}
	// 3 metadata (process + ops thread + 2 tracks = 4), 1 X, 2 async
	// component, 2 op outer + 3 stages * 2 = 8 op events.
	if n < 10 {
		t.Fatalf("suspiciously few events: %d", n)
	}
}

func TestWriteTraceEventsShape(t *testing.T) {
	data := exportOneProcess(t)
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatal(err)
	}
	var sawX, sawAsync, sawMeta, sawOp bool
	for _, ev := range tf.TraceEvents {
		switch ev["ph"] {
		case "X":
			sawX = true
			if ev["dur"].(float64) != 26 {
				t.Fatalf("X dur = %v, want 26", ev["dur"])
			}
		case "M":
			sawMeta = true
		case "b":
			if ev["cat"] == "op" {
				sawOp = true
			}
			if ev["cat"] == "cache[1]" {
				sawAsync = true
			}
			if ev["id"] == "" {
				t.Fatal("async event without id")
			}
		}
	}
	if !sawX || !sawAsync || !sawMeta || !sawOp {
		t.Fatalf("missing event classes: X=%v async=%v meta=%v op=%v",
			sawX, sawAsync, sawMeta, sawOp)
	}
	// Deterministic export: same tracer state, same bytes.
	if !bytes.Equal(data, exportOneProcess(t)) {
		t.Fatal("export not byte-deterministic")
	}
}

func TestValidateTraceJSONRejects(t *testing.T) {
	cases := map[string]string{
		"not json":        `{`,
		"no traceEvents":  `{"foo": []}`,
		"empty events":    `{"traceEvents": []}`,
		"missing name":    `{"traceEvents":[{"ph":"X","ts":0,"dur":1,"pid":0,"tid":0}]}`,
		"missing ph":      `{"traceEvents":[{"name":"a","ts":0,"pid":0,"tid":0}]}`,
		"missing pid":     `{"traceEvents":[{"name":"a","ph":"X","ts":0,"dur":1,"tid":0}]}`,
		"X without dur":   `{"traceEvents":[{"name":"a","ph":"X","ts":0,"pid":0,"tid":0}]}`,
		"async no id":     `{"traceEvents":[{"name":"a","ph":"b","ts":0,"cat":"c","pid":0,"tid":0}]}`,
		"async no cat":    `{"traceEvents":[{"name":"a","ph":"b","ts":0,"id":"0x1","pid":0,"tid":0}]}`,
		"unknown phase":   `{"traceEvents":[{"name":"a","ph":"Z","ts":0,"pid":0,"tid":0}]}`,
		"metadata only":   `{"traceEvents":[{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"x"}}]}`,
		"malformed event": `{"traceEvents":[42]}`,
	}
	for what, in := range cases {
		if _, err := ValidateTraceJSON([]byte(in)); err == nil {
			t.Errorf("%s: validated but should not", what)
		}
	}
	ok := `{"traceEvents":[
		{"name":"t","ph":"M","pid":0,"tid":0,"args":{"name":"x"}},
		{"name":"a","ph":"X","ts":1,"dur":2,"pid":0,"tid":1},
		{"name":"a","ph":"b","ts":1,"cat":"c","id":"0x1","pid":0,"tid":0},
		{"name":"a","ph":"e","ts":3,"cat":"c","id":"0x1","pid":0,"tid":0}
	]}`
	if n, err := ValidateTraceJSON([]byte(ok)); err != nil || n != 4 {
		t.Fatalf("valid trace rejected: n=%d err=%v", n, err)
	}
}

func TestMultiProcessExport(t *testing.T) {
	a, b := New(1), New(1)
	a.OpBegin(0, 1, mem.AddI64, 8, 0)
	a.OpEnd(0, 1, 5)
	b.SpanAsync("net.out[0]", "pkt 1->0", 2, 6)
	var buf bytes.Buffer
	err := WriteTraceEvents(&buf, []Process{a.Process(0, "node0"), b.Process(1, "node1")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("multi-process export invalid: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `"node0"`) || !strings.Contains(out, `"node1"`) {
		t.Fatal("missing process names")
	}
}
