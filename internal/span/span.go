// Package span is the request-lifecycle layer of the observability stack:
// where internal/stats answers "how many" (counters aggregated over a run),
// span answers "where did the cycles of THIS operation go". A Tracer assigns
// each sampled memory operation an identity at address-generator issue and
// records its stage transitions (bank queue -> combining-store residency ->
// FPU -> cache -> DRAM -> reply) with cycle timestamps, alongside component
// activity spans (AG lanes, combining-store slots, cache misses, DRAM
// channel bursts, crossbar crossings).
//
// The contract is zero allocation and near-zero cost when disabled: every
// hook in the simulator is guarded by a nil check on the component's tracer
// pointer, and all Tracer methods are additionally safe on a nil receiver,
// so a machine without a tracer pays one predictable branch per hook.
// Tracing is sampling-based (1-in-N operations) so that even hot runs stay
// cheap and the exported traces stay small.
package span

import (
	"scatteradd/internal/mem"
)

// Stage identifies one segment of a memory operation's lifecycle. An op's
// time in a stage runs from the transition that entered it to the next
// transition (or the op's end); stages may be re-entered, in which case
// their durations accumulate.
type Stage uint8

const (
	// StageBankQ is time in the scatter-add unit's input queue (and, for
	// remote multinode requests, the destination node's inbox).
	StageBankQ Stage = iota
	// StageCS is combining-store residency: the operand sits in a slot
	// waiting to be picked by the FPU or merged with a peer.
	StageCS
	// StageFU is the floating-point/integer add in flight.
	StageFU
	// StageCache is a bypassed (non-scatter-add) reference in the cache
	// bank: input-queue wait plus tag lookup and hit service.
	StageCache
	// StageDRAM is a memory fetch in flight: MSHR residency through DRAM
	// access to line fill.
	StageDRAM
	// StageNet is a remote request crossing the multinode crossbar.
	StageNet
	// StageReply is the response path back to the address generator.
	StageReply

	numStages
)

var stageNames = [numStages]string{
	StageBankQ: "bank-queue",
	StageCS:    "combining-store",
	StageFU:    "fpu",
	StageCache: "cache",
	StageDRAM:  "dram",
	StageNet:   "network",
	StageReply: "reply",
}

// queueStage classifies each stage for the latency-attribution report:
// queueing stages are contention (time spent waiting for a resource),
// service stages are the resource itself doing work.
var queueStage = [numStages]bool{
	StageBankQ: true,
	StageCS:    true,
	StageFU:    false,
	StageCache: false,
	StageDRAM:  false,
	StageNet:   false,
	StageReply: true,
}

// String returns the stage's report name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Class returns "queue" for contention stages and "service" for stages
// that model a resource doing work.
func (s Stage) Class() string {
	if int(s) < len(queueStage) && queueStage[s] {
		return "queue"
	}
	return "service"
}

// Transition records an op entering a stage at a cycle.
type Transition struct {
	Stage Stage
	Cycle uint64
}

// Op is one sampled memory operation's completed lifecycle. ID is the
// request ID assigned at address-generator issue; Node qualifies it in
// multinode systems (0 for a single machine).
type Op struct {
	ID    uint64
	Node  int
	Kind  mem.Kind
	Addr  mem.Addr
	Start uint64
	End   uint64
	Trans []Transition
}

// StageCycles returns the cycles the op spent in each stage (durations of
// repeated visits accumulate) and the number of stages visited.
func (o *Op) StageCycles() ([numStages]uint64, int) {
	var cyc [numStages]uint64
	var seen [numStages]bool
	visited := 0
	for i, tr := range o.Trans {
		end := o.End
		if i+1 < len(o.Trans) {
			end = o.Trans[i+1].Cycle
		}
		if end > tr.Cycle {
			cyc[tr.Stage] += end - tr.Cycle
		}
		if !seen[tr.Stage] {
			seen[tr.Stage] = true
			visited++
		}
	}
	return cyc, visited
}

// Event is one component activity span: a named interval on a hardware
// track (an AG lane, a combining-store slot, a DRAM channel, a crossbar
// output). Async events may overlap on their track and are exported as
// Perfetto async slices; non-async events must be serialized per track.
type Event struct {
	Track string
	Name  string
	Start uint64
	End   uint64
	Async bool
}

type opKey struct {
	node int
	id   uint64
}

// Tracer collects sampled op lifecycles and component spans for one
// machine or multinode system. It is not safe for concurrent use; in
// parallel experiment sweeps each run owns its own Tracer. All methods
// are no-ops on a nil receiver.
type Tracer struct {
	rate   uint64
	count  uint64
	live   map[opKey]*Op
	ops    []Op
	events []Event
}

// New returns a Tracer that samples one in rate operations (rate < 1 is
// clamped to 1, i.e. trace everything).
func New(rate int) *Tracer {
	if rate < 1 {
		rate = 1
	}
	return &Tracer{rate: uint64(rate), live: make(map[opKey]*Op)}
}

// Rate returns the sampling rate (1 in N).
func (t *Tracer) Rate() int {
	if t == nil {
		return 0
	}
	return int(t.rate)
}

// SampleNext consumes one operation slot and reports whether that op
// should be traced. The first op is always sampled, then every rate-th.
func (t *Tracer) SampleNext() bool {
	if t == nil {
		return false
	}
	c := t.count
	t.count++
	return c%t.rate == 0
}

// OpBegin starts a sampled op's lifecycle at address-generator issue; the
// op enters StageBankQ. (node, id) must be unique among live ops.
func (t *Tracer) OpBegin(node int, id uint64, kind mem.Kind, addr mem.Addr, now uint64) {
	if t == nil {
		return
	}
	t.live[opKey{node, id}] = &Op{
		ID: id, Node: node, Kind: kind, Addr: addr, Start: now,
		Trans: []Transition{{Stage: StageBankQ, Cycle: now}},
	}
}

// Sampled reports whether (node, id) identifies a live sampled op.
// Components that need per-op state (e.g. a combining-store slot tagging
// its entry) use this to decide at acceptance time.
func (t *Tracer) Sampled(node int, id uint64) bool {
	if t == nil {
		return false
	}
	_, ok := t.live[opKey{node, id}]
	return ok
}

// OpStage records a live op entering a stage. Unsampled ops miss the live
// map and the call is a no-op, so hooks need no sampling checks.
func (t *Tracer) OpStage(node int, id uint64, s Stage, now uint64) {
	if t == nil {
		return
	}
	op, ok := t.live[opKey{node, id}]
	if !ok {
		return
	}
	op.Trans = append(op.Trans, Transition{Stage: s, Cycle: now})
}

// OpEnd completes a live op's lifecycle; a no-op for unsampled ids.
func (t *Tracer) OpEnd(node int, id uint64, now uint64) {
	if t == nil {
		return
	}
	k := opKey{node, id}
	op, ok := t.live[k]
	if !ok {
		return
	}
	op.End = now
	t.ops = append(t.ops, *op)
	delete(t.live, k)
}

// Span records a serialized component activity interval on a track.
func (t *Tracer) Span(track, name string, start, end uint64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Track: track, Name: name, Start: start, End: end})
}

// SpanAsync records a component interval that may overlap others on the
// same track (e.g. concurrent cache misses in one bank).
func (t *Tracer) SpanAsync(track, name string, start, end uint64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Track: track, Name: name, Start: start, End: end, Async: true})
}

// Ops returns the completed sampled ops in completion order.
func (t *Tracer) Ops() []Op {
	if t == nil {
		return nil
	}
	return t.ops
}

// Live returns the number of ops begun but not yet ended (should be zero
// after a drained run).
func (t *Tracer) Live() int {
	if t == nil {
		return 0
	}
	return len(t.live)
}

// Events returns the recorded component spans in record order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Transfer moves the live op (node, id) from t to dst, preserving its
// recorded transitions. Sharded systems use it when a sampled op crosses
// from one shard-private tracer to another (a remote request landing in the
// destination node's inbox); the move happens in a sequential exchange
// phase, so neither tracer is touched concurrently. A no-op when the op is
// not live in t (unsampled ids) or either tracer is nil.
func (t *Tracer) Transfer(dst *Tracer, node int, id uint64) {
	if t == nil || dst == nil || t == dst {
		return
	}
	k := opKey{node, id}
	op, ok := t.live[k]
	if !ok {
		return
	}
	delete(t.live, k)
	dst.live[k] = op
}

// Absorb moves every completed op, event, and live lifecycle from src into
// t and leaves src empty. Sharded systems run one tracer per shard during
// parallel phases and absorb them into the master tracer at end of run;
// because Aggregate is order-insensitive, the merged report is identical to
// single-tracer collection. Absorbing preserves src's recording order
// within each kind.
func (t *Tracer) Absorb(src *Tracer) {
	if t == nil || src == nil || t == src {
		return
	}
	t.ops = append(t.ops, src.ops...)
	t.events = append(t.events, src.events...)
	for k, op := range src.live {
		t.live[k] = op
		delete(src.live, k)
	}
	src.ops = src.ops[:0]
	src.events = src.events[:0]
}

// AbsorbCompleted moves src's completed ops and component events into t but
// leaves src's live lifecycles in place. The sharded single-machine engine
// folds its shard tracers into the master at every op boundary, where
// asynchronous streams may still have sampled ops in flight; those must keep
// accumulating stage transitions on the shard tracer that the shard's
// components write to (Absorb would strand them: a moved live op no longer
// receives OpStage/OpEnd calls made against src).
func (t *Tracer) AbsorbCompleted(src *Tracer) {
	if t == nil || src == nil || t == src {
		return
	}
	t.ops = append(t.ops, src.ops...)
	t.events = append(t.events, src.events...)
	src.ops = src.ops[:0]
	src.events = src.events[:0]
}

// Reset discards all recorded ops, events, and live lifecycles but keeps
// the sampling rate and counter phase.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.ops = t.ops[:0]
	t.events = t.events[:0]
	for k := range t.live {
		delete(t.live, k)
	}
}
