package span

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Process groups one machine's (or one multinode node's) ops and component
// events under a Perfetto process. Pid must be unique across the export.
type Process struct {
	Pid    int
	Name   string
	Ops    []Op
	Events []Event
}

// Process packages the tracer's recorded data as a single Perfetto
// process, ready for WriteTraceEvents.
func (t *Tracer) Process(pid int, name string) Process {
	return Process{Pid: pid, Name: name, Ops: t.Ops(), Events: t.Events()}
}

// traceEvent is one Chrome trace-event object. Field order is fixed by
// the struct, so exports are byte-deterministic.
type traceEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat,omitempty"`
	Ph   string     `json:"ph"`
	Ts   uint64     `json:"ts"`
	Dur  *uint64    `json:"dur,omitempty"`
	Pid  int        `json:"pid"`
	Tid  int        `json:"tid"`
	ID   string     `json:"id,omitempty"`
	Args *eventArgs `json:"args,omitempty"`
}

type eventArgs struct {
	Name string `json:"name,omitempty"`
	Kind string `json:"kind,omitempty"`
	Addr uint64 `json:"addr,omitempty"`
	Node int    `json:"node,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTraceEvents exports processes as Chrome trace-event JSON that loads
// directly in ui.perfetto.dev (or chrome://tracing). Serialized component
// events become complete ("X") slices, one thread track per hardware
// resource (AG lane, DRAM channel, ...); overlapping component activity
// (cache misses, crossbar crossings) and sampled op lifecycles become
// legacy async ("b"/"e") slices, grouped per track and per op. Timestamps
// are simulated cycles, presented as microseconds.
func WriteTraceEvents(w io.Writer, procs []Process) error {
	var evs []traceEvent
	asyncSeq := 0
	for _, p := range procs {
		evs = append(evs, traceEvent{
			Name: "process_name", Ph: "M", Pid: p.Pid, Tid: 0,
			Args: &eventArgs{Name: p.Name},
		})
		// One thread per distinct component track, in sorted order;
		// tid 0 carries the sampled op lifecycles.
		tids := map[string]int{}
		var tracks []string
		for _, e := range p.Events {
			if _, ok := tids[e.Track]; !ok {
				tids[e.Track] = 0
				tracks = append(tracks, e.Track)
			}
		}
		sort.Strings(tracks)
		evs = append(evs, traceEvent{
			Name: "thread_name", Ph: "M", Pid: p.Pid, Tid: 0,
			Args: &eventArgs{Name: "ops"},
		})
		for i, tr := range tracks {
			tids[tr] = i + 1
			evs = append(evs, traceEvent{
				Name: "thread_name", Ph: "M", Pid: p.Pid, Tid: i + 1,
				Args: &eventArgs{Name: tr},
			})
		}
		for _, e := range p.Events {
			tid := tids[e.Track]
			if e.Async {
				asyncSeq++
				id := fmt.Sprintf("0x%x", asyncSeq)
				evs = append(evs,
					traceEvent{Name: e.Name, Cat: e.Track, Ph: "b", Ts: e.Start, Pid: p.Pid, Tid: tid, ID: id},
					traceEvent{Name: e.Name, Cat: e.Track, Ph: "e", Ts: e.End, Pid: p.Pid, Tid: tid, ID: id},
				)
				continue
			}
			dur := e.End - e.Start
			evs = append(evs, traceEvent{
				Name: e.Name, Cat: "component", Ph: "X", Ts: e.Start, Dur: &dur,
				Pid: p.Pid, Tid: tid,
			})
		}
		// Each op is one async track: an outer slice for the whole
		// lifecycle with nested sequential slices per stage visit.
		for i := range p.Ops {
			op := &p.Ops[i]
			asyncSeq++
			id := fmt.Sprintf("0x%x", asyncSeq)
			name := fmt.Sprintf("%v a=%d", op.Kind, op.Addr)
			args := &eventArgs{Kind: op.Kind.String(), Addr: uint64(op.Addr), Node: op.Node}
			evs = append(evs, traceEvent{
				Name: name, Cat: "op", Ph: "b", Ts: op.Start, Pid: p.Pid, Tid: 0, ID: id, Args: args,
			})
			for j, tr := range op.Trans {
				end := op.End
				if j+1 < len(op.Trans) {
					end = op.Trans[j+1].Cycle
				}
				evs = append(evs,
					traceEvent{Name: tr.Stage.String(), Cat: "op", Ph: "b", Ts: tr.Cycle, Pid: p.Pid, Tid: 0, ID: id},
					traceEvent{Name: tr.Stage.String(), Cat: "op", Ph: "e", Ts: end, Pid: p.Pid, Tid: 0, ID: id},
				)
			}
			evs = append(evs, traceEvent{
				Name: name, Cat: "op", Ph: "e", Ts: op.End, Pid: p.Pid, Tid: 0, ID: id,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: evs, DisplayTimeUnit: "ms"})
}
