package exp

import (
	"fmt"

	"scatteradd/internal/mem"
	"scatteradd/internal/multinode"
	"scatteradd/internal/stats"
)

// This file adds the interconnect scale-out family (Figure 14): the paper
// stops at 8 nodes on one crossbar, and this figure asks what the reduction
// looks like when the machine keeps growing — 16 to 1024 nodes — on a flat
// crossbar, a fat-tree of small switches, and a 2D mesh, with and without
// Ultracomputer-style in-switch combining of same-address scatter-adds. The
// workload is a deliberately hot histogram (a few bins per node), the
// regime where the root of a reduction tree melts first and in-network
// combining pays.

// fig14Nodes are the figure's machine sizes.
var fig14Nodes = []int{16, 64, 256, 1024}

// fig14Configs names the interconnect configurations swept, in row order.
var fig14Configs = []string{"flat", "tree", "tree+comb", "mesh", "mesh+comb"}

// fig14Metrics are the per-configuration rows: throughput, total cycles, and
// the fabric counters the scale-out argument is about.
var fig14Metrics = []string{"gb/s", "cycles", "root-pkts", "hops", "combined"}

// scalePointOut is one (configuration, node count) cell column.
type scalePointOut struct {
	cells [5]string // indexed like fig14Metrics
	snap  stats.Snapshot
	rep   SpanRow
}

// runScalePoint replays the hot histogram on one interconnect at one size.
// The per-node machine is trimmed (small cache, 2 DRAM channels) so the
// kilo-node points stay simulable; every configuration shares the identical
// node, so the columns differ only by interconnect.
func runScalePoint(o Options, tr trace, name string, nodes int) scalePointOut {
	topo, err := multinode.ParseTopology(name, o.FanIn)
	if err != nil {
		panic(fmt.Sprintf("exp: fig14 config %q: %v", name, err))
	}
	ownerSpan := (tr.span/mem.Addr(nodes) + mem.LineWords) &^ (mem.LineWords - 1)
	cfg := multinode.DefaultConfig(nodes, 1, ownerSpan)
	cfg.Topology = topo
	cfg.Cache.Banks = 2
	cfg.Cache.TotalLines = 256
	cfg.DRAM.Channels = 2
	cfg.DRAM.BanksPerChannel = 4
	// The default wire depth scales with the port count; a kilo-port flat
	// crossbar doesn't need megabytes of modeled wire.
	cfg.Net.WireDepth = 64
	cfg.LegacyStepping = o.Legacy
	cfg.Faults = o.Faults
	cfg.Shards = o.shards()
	s := multinode.New(cfg, tr.kind)
	sp := o.newTracer()
	s.SetSpanTracer(sp)
	res := s.RunTrace(tr.refs)
	out := scalePointOut{cells: [5]string{
		fmt.Sprintf("%.2f", res.GBps()),
		d(res.Cycles),
		d(res.NetStats.RootPkts),
		d(res.NetStats.Hops),
		d(res.NetStats.Combined),
	}}
	if o.CollectStats {
		out.snap = s.StatsSnapshot()
	}
	if o.CollectSpans {
		out.rep = SpanRow{
			Label:  fmt.Sprintf("%s nodes=%d", name, nodes),
			Report: spanReport(sp),
		}
	}
	return out
}

// fig14ConfigList resolves Options.Topology to the configurations swept.
func fig14ConfigList(o Options) []string {
	if o.Topology == "" {
		return fig14Configs
	}
	if _, err := multinode.ParseTopology(o.Topology, o.FanIn); err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	return []string{o.Topology}
}

// Fig14 is the interconnect scale-out family: hot-histogram scatter-add
// bandwidth and fabric traffic from 16 to 1024 nodes, flat crossbar vs
// fat-tree vs 2D mesh, in-switch combining on and off.
func Fig14(o Options) Table { return o.checkpointed("fig14", fig14) }

func fig14(o Options) Table {
	configs := fig14ConfigList(o)
	t := Table{
		Title:  "Figure 14: interconnect scale-out on a hot histogram (16-1024 nodes)",
		Header: append([]string{"config", "metric"}, mapStr(fig14Nodes)...),
		Notes: []string{
			"hot histogram: 4096 bins spread across all nodes (a few per node at 1024);",
			"root-pkts counts packets crossing the fabric's bisection/root link;",
			"in-switch combining merges same-address scatter-adds at every hop, so",
			"root traffic shrinks as the tree deepens while flat stays linear in refs",
		},
	}
	// Keep the heat constant under -scale: ~64 references per bin at any
	// size (4096 bins at the full 256K references), so the combining windows
	// see the same collision pressure the full figure argues from.
	n := o.scaled(1 << 18)
	rng := n / 64
	if rng < 256 {
		rng = 256
	}
	tr := histTrace("hot", n, rng, o.seed(0xF16_14))
	points := mapN(o, len(configs)*len(fig14Nodes), func(i int) scalePointOut {
		return runScalePoint(o, tr, configs[i/len(fig14Nodes)], fig14Nodes[i%len(fig14Nodes)])
	})
	for r, name := range configs {
		for m, metric := range fig14Metrics {
			row := []string{name, metric}
			for c := range fig14Nodes {
				row = append(row, points[r*len(fig14Nodes)+c].cells[m])
			}
			t.Rows = append(t.Rows, row)
		}
	}
	if o.CollectSpans {
		for _, p := range points {
			t.Spans = append(t.Spans, p.rep)
		}
	}
	if o.CollectStats {
		snaps := make([]stats.Snapshot, len(points))
		for i, p := range points {
			snaps[i] = p.snap
		}
		t.Counters = stats.MergeAll(snaps)
	}
	return t
}

// mapStr renders an int slice as header cells.
func mapStr(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%d", x)
	}
	return out
}
