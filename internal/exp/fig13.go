package exp

import (
	"fmt"

	"scatteradd/internal/mem"
	"scatteradd/internal/multinode"
	"scatteradd/internal/span"
	"scatteradd/internal/stats"
	"scatteradd/internal/workload"
)

// trace is one Figure 13 workload: a scatter-add reference stream and its
// combine kind.
type trace struct {
	name string
	kind mem.Kind
	refs []multinode.Ref
	span mem.Addr // index-space size (max address + 1)
}

// traceConfig is one line of Figure 13.
type traceConfig struct {
	label     string
	bandwidth int // words/cycle per node (1 = low, 8 = high)
	combining bool
}

// narrowTrace and wideTrace are the two histogram datasets of §4.5: 64K
// scatter-add references over a 256-entry (narrow) or 1M-entry (wide)
// index range.
func histTrace(name string, n, rng int, seed uint64) trace {
	idx := workload.UniformIndices(n, rng, seed)
	refs := make([]multinode.Ref, n)
	for i, x := range idx {
		refs[i] = multinode.Ref{Addr: mem.Addr(x), Val: mem.I64(1)}
	}
	return trace{name: name, kind: mem.AddI64, refs: refs, span: mem.Addr(rng)}
}

// moleTrace extracts the molecular-dynamics scatter-add reference stream
// (§4.5: "GROMACS uses the first 590K references which span 8,192 unique
// indices").
func moleTrace(o Options) trace {
	md := Fig10Input(o)
	addrs, vals := md.SARefs()
	limit := 590_000
	if len(addrs) > limit {
		addrs, vals = addrs[:limit], vals[:limit]
	}
	refs := make([]multinode.Ref, len(addrs))
	var maxA mem.Addr
	for i := range addrs {
		a := addrs[i] - md.ForceBase
		refs[i] = multinode.Ref{Addr: a, Val: vals[i]}
		if a > maxA {
			maxA = a
		}
	}
	return trace{name: "mole", kind: mem.AddF64, refs: refs, span: maxA + 1}
}

// spasTrace extracts the EBE SpMV scatter-add stream (§4.5: "SPAS uses the
// full set of 38K references over 10,240 indices").
func spasTrace(o Options) trace {
	s := Fig9Input(o)
	addrs, vals := s.EBERefs()
	refs := make([]multinode.Ref, len(addrs))
	var maxA mem.Addr
	for i := range addrs {
		a := addrs[i] - s.YBase
		refs[i] = multinode.Ref{Addr: a, Val: vals[i]}
		if a > maxA {
			maxA = a
		}
	}
	return trace{name: "spas", kind: mem.AddF64, refs: refs, span: maxA + 1}
}

// tracePointOut is one Figure 13 point's rendered throughput plus (when
// collecting) the system's performance-counter snapshot and span report.
type tracePointOut struct {
	cell  string
	snap  stats.Snapshot
	rep   span.Report
	label string
}

// runTracePoint replays one trace on one configuration and node count,
// returning GB/s.
func runTracePoint(o Options, tr trace, tc traceConfig, nodes int) tracePointOut {
	ownerSpan := (tr.span/mem.Addr(nodes) + mem.LineWords) &^ (mem.LineWords - 1)
	cfg := multinode.DefaultConfig(nodes, tc.bandwidth, ownerSpan)
	cfg.Combining = tc.combining
	cfg.LegacyStepping = o.Legacy
	cfg.Faults = o.Faults
	cfg.Shards = o.shards()
	s := multinode.New(cfg, tr.kind)
	sp := o.newTracer()
	s.SetSpanTracer(sp)
	out := tracePointOut{cell: fmt.Sprintf("%.2f", s.RunTrace(tr.refs).GBps())}
	if o.CollectStats {
		out.snap = s.StatsSnapshot()
	}
	if o.CollectSpans {
		out.rep = spanReport(sp)
		out.label = fmt.Sprintf("%s nodes=%d", tc.label, nodes)
	}
	return out
}

// Fig13 reproduces Figure 13: multi-node scatter-add throughput (GB/s) for
// 1-8 nodes across the four traces and their network/combining
// configurations.
func Fig13(o Options) Table { return o.checkpointed("fig13", fig13) }

func fig13(o Options) Table {
	t := Table{
		Title:  "Figure 13: multi-node scatter-add bandwidth (GB/s) vs node count",
		Header: []string{"config", "1", "2", "4", "8"},
		Notes: []string{
			"paper: wide scales perfectly at high BW, is network-bound at low BW (combining does not help);",
			"narrow: high BW scales 7.1x, low BW flat, low BW + combining scales 5.7x;",
			"mole/spas: combining helps, high BW improves scaling further",
		},
	}
	n := o.scaled(65536)
	// The four traces are independent to build (mole and spas regenerate the
	// Figure 9/10 workloads, which dominates); fan the construction out too.
	builders := []struct {
		name  string
		build func() trace
	}{
		{"narrow", func() trace { return histTrace("narrow", n, 256, o.seed(0xF16_13)) }},
		{"wide", func() trace { return histTrace("wide", n, 1<<20, o.seed(0xF16_13+1)) }},
		{"mole", func() trace { return moleTrace(o) }},
		{"spas", func() trace { return spasTrace(o) }},
	}
	built := mapN(o, len(builders), func(i int) trace { return builders[i].build() })
	traces := make(map[string]trace, len(built))
	for i, tr := range built {
		traces[builders[i].name] = tr
	}
	lines := []struct {
		trace string
		cfg   traceConfig
	}{
		{"narrow", traceConfig{"narrow-high", 8, false}},
		{"narrow", traceConfig{"narrow-low", 1, false}},
		{"narrow", traceConfig{"narrow-low-comb", 1, true}},
		{"wide", traceConfig{"wide-high", 8, false}},
		{"wide", traceConfig{"wide-low", 1, false}},
		{"wide", traceConfig{"wide-low-comb", 1, true}},
		{"mole", traceConfig{"mole-low-comb", 1, true}},
		{"mole", traceConfig{"mole-high-comb", 8, true}},
		{"spas", traceConfig{"spas-low-comb", 1, true}},
		{"spas", traceConfig{"spas-high-comb", 8, true}},
	}
	// Every (line, node-count) point builds its own multinode.System; the
	// trace reference streams are shared read-only across points.
	nodeCounts := []int{1, 2, 4, 8}
	points := mapN(o, len(lines)*len(nodeCounts), func(i int) tracePointOut {
		ln := lines[i/len(nodeCounts)]
		nodes := nodeCounts[i%len(nodeCounts)]
		return runTracePoint(o, traces[ln.trace], ln.cfg, nodes)
	})
	for r, ln := range lines {
		row := []string{ln.cfg.label}
		for c := 0; c < len(nodeCounts); c++ {
			row = append(row, points[r*len(nodeCounts)+c].cell)
		}
		t.Rows = append(t.Rows, row)
	}
	if o.CollectSpans {
		for _, p := range points {
			t.Spans = append(t.Spans, SpanRow{Label: p.label, Report: p.rep})
		}
	}
	if o.CollectStats {
		snaps := make([]stats.Snapshot, len(points))
		for i, p := range points {
			snaps[i] = p.snap
		}
		t.Counters = stats.MergeAll(snaps)
	}
	return t
}
