package exp

import (
	"scatteradd/internal/apps"
	"scatteradd/internal/machine"
	"scatteradd/internal/span"
	"scatteradd/internal/stats"
)

// appOut is one application run's rendered row plus (when collecting) the
// run's performance-counter snapshot and span report.
type appOut struct {
	row  []string
	snap stats.Snapshot
	rep  span.Report
}

// collectApp fans variant runs out and assembles rows in input order,
// attaching the merged counter snapshot and per-run span reports to the
// table when requested. Span rows are labeled by the variant (the row's
// first cell).
func collectApp(o Options, t *Table, n int, run func(i int, m *machine.Machine) []string) {
	outs := mapN(o, n, func(i int) appOut {
		m := paperMachine(o)
		tr := o.newTracer()
		m.SetSpanTracer(tr)
		out := appOut{row: run(i, m)}
		if o.CollectStats {
			out.snap = m.StatsSnapshot()
		}
		if o.CollectSpans {
			out.rep = spanReport(tr)
		}
		return out
	})
	snaps := make([]stats.Snapshot, n)
	for i, x := range outs {
		t.Rows = append(t.Rows, x.row)
		snaps[i] = x.snap
		if o.CollectSpans {
			t.Spans = append(t.Spans, SpanRow{Label: x.row[0], Report: x.rep})
		}
	}
	if o.CollectStats {
		t.Counters = stats.MergeAll(snaps)
	}
}

// appRow renders the three Figure 9/10 metrics (millions, as the paper
// plots them).
func appRow(name string, r machine.Result) []string {
	return []string{
		name,
		f(float64(r.Cycles) / 1e6),
		f(float64(r.FPOps) / 1e6),
		f(float64(r.MemRefs) / 1e6),
	}
}

// Fig9Input builds the paper-scale SpMV workload (1,920 elements, ~10k
// DOF, ~44 nnz/row; paper: 1,916 elements, 9,978 DOF, 44.26 nnz/row).
func Fig9Input(o Options) *apps.SpMV {
	nx, ny, nz := 8, 8, 5
	if o.Scale >= 4 {
		nx, ny, nz = 4, 4, 3
	} else if o.Scale > 1 {
		nx, ny, nz = 6, 6, 4
	}
	return apps.NewSpMV(nx, ny, nz, o.seed(0xF16_9))
}

// Fig9 reproduces Figure 9: sparse matrix-vector multiplication as CSR,
// EBE with software scatter-add, and EBE with hardware scatter-add —
// execution cycles, FP operations, and memory references.
func Fig9(o Options) Table { return o.checkpointed("fig9", fig9) }

func fig9(o Options) Table {
	t := Table{
		Title:  "Figure 9: SpMV — CSR vs EBE-SW vs EBE-HW (millions)",
		Header: []string{"variant", "cycles_M", "fp_ops_M", "mem_refs_M"},
		Notes: []string{
			"paper (M): CSR 0.334/1.217/1.836, EBE-SW 0.739/1.735/1.031, EBE-HW 0.230/1.536/0.922",
			"shape: without HW scatter-add CSR beats EBE (~2.2x); with it EBE-HW beats CSR (~1.45x)",
		},
	}
	// The mesh assembly is expensive, so the workload is built once and each
	// concurrent variant run gets its own clone and its own machine.
	s := Fig9Input(o)
	variants := []struct {
		label, what string
		run         func(*apps.SpMV, *machine.Machine) machine.Result
	}{
		{"CSR", "fig9 CSR",
			func(w *apps.SpMV, m *machine.Machine) machine.Result { return w.RunCSR(m) }},
		{"EBE SW scatter-add", "fig9 EBE-SW",
			func(w *apps.SpMV, m *machine.Machine) machine.Result { return w.RunEBESW(m, 0) }},
		{"EBE HW scatter-add", "fig9 EBE-HW",
			func(w *apps.SpMV, m *machine.Machine) machine.Result { return w.RunEBEHW(m) }},
	}
	collectApp(o, &t, len(variants), func(i int, m *machine.Machine) []string {
		w := s.Clone()
		res := variants[i].run(w, m)
		mustVerify(m, w, variants[i].what)
		return appRow(variants[i].label, res)
	})
	return t
}

// Fig10Input builds the paper-scale molecular-dynamics workload: 903 water
// molecules; the cutoff is chosen so the Newton's-law variants issue close
// to the paper's 590K scatter-add references over ~8192 force indices.
func Fig10Input(o Options) *apps.MolDyn {
	nMol, cutoff := 903, 8.0
	if o.Scale >= 4 {
		nMol, cutoff = 216, 6.0
	} else if o.Scale > 1 {
		nMol, cutoff = 512, 7.0
	}
	return apps.NewMolDyn(nMol, cutoff, o.seed(0xF16_10))
}

// Fig10 reproduces Figure 10: the GROMACS-like water force kernel without
// scatter-add (duplicated computation), with software scatter-add, and with
// hardware scatter-add.
func Fig10(o Options) Table { return o.checkpointed("fig10", fig10) }

func fig10(o Options) Table {
	t := Table{
		Title:  "Figure 10: molecular dynamics — no-SA vs SW-SA vs HW-SA (millions)",
		Header: []string{"variant", "cycles_M", "fp_ops_M", "mem_refs_M"},
		Notes: []string{
			"paper (M): no-SA 0.975/45.24/1.722, SW-SA 3.022/24.9/4.865, HW-SA 0.553/29.16/1.87",
			"shape: SW scatter-add is slowest; duplicating computation beats it (~3.1x);",
			"HW scatter-add beats the best software (~1.76x)",
		},
	}
	md := Fig10Input(o)
	variants := []struct {
		label, what string
		run         func(*apps.MolDyn, *machine.Machine) machine.Result
	}{
		{"no scatter-add", "fig10 no-SA",
			func(w *apps.MolDyn, m *machine.Machine) machine.Result { return w.RunNoSA(m) }},
		{"SW scatter-add", "fig10 SW-SA",
			func(w *apps.MolDyn, m *machine.Machine) machine.Result { return w.RunSWSA(m, 0) }},
		{"HW scatter-add", "fig10 HW-SA",
			func(w *apps.MolDyn, m *machine.Machine) machine.Result { return w.RunHWSA(m) }},
	}
	collectApp(o, &t, len(variants), func(i int, m *machine.Machine) []string {
		w := md.Clone()
		res := variants[i].run(w, m)
		mustVerify(m, w, variants[i].what)
		return appRow(variants[i].label, res)
	})
	return t
}
