package exp

import (
	"strings"
	"sync"
	"testing"
)

// recoverPanic runs f and returns the recovered panic value as a string
// ("" when f completes normally).
func recoverPanic(f func()) (msg string) {
	defer func() {
		if r := recover(); r != nil {
			msg = r.(string)
		}
	}()
	f()
	return ""
}

// progressLog is a race-safe recorder for Options.Progress callbacks.
type progressLog struct {
	mu    sync.Mutex
	dones []int
	total int
}

func (p *progressLog) note(done, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dones = append(p.dones, done)
	p.total = total
}

func TestProgressSequentialStopsAtPanic(t *testing.T) {
	var log progressLog
	o := Options{Jobs: 1, Progress: log.note}
	msg := recoverPanic(func() {
		o.forEach(8, func(i int) {
			if i == 3 {
				panic("boom")
			}
		})
	})
	// The sequential path re-raises in place: tasks 0..2 complete and
	// report, task 3 never reaches its Progress call, 4..7 never run.
	if !strings.Contains(msg, "boom") {
		t.Fatalf("panic not propagated, got %q", msg)
	}
	if want := []int{1, 2, 3}; len(log.dones) != len(want) {
		t.Fatalf("progress calls = %v, want %v", log.dones, want)
	}
	for i, d := range log.dones {
		if d != i+1 {
			t.Fatalf("progress calls = %v, want 1..3 in order", log.dones)
		}
	}
	if log.total != 8 {
		t.Fatalf("total = %d, want 8", log.total)
	}
}

func TestProgressParallelSkipsPanickedTasks(t *testing.T) {
	const n = 16
	var log progressLog
	o := Options{Jobs: 4, Progress: log.note}
	msg := recoverPanic(func() {
		o.forEach(n, func(i int) {
			if i == 5 {
				panic("bad task")
			}
		})
	})
	if !strings.Contains(msg, "exp: task 5: bad task") {
		t.Fatalf("panic = %q, want it to name task 5", msg)
	}
	// The pool drains every index, but the panicked task must not count as
	// progress — done reaches n-1, never n, and each done value is distinct.
	if len(log.dones) != n-1 {
		t.Fatalf("progress fired %d times, want %d", len(log.dones), n-1)
	}
	seen := make(map[int]bool)
	for _, d := range log.dones {
		if d < 1 || d >= n {
			t.Fatalf("done value %d out of range [1,%d)", d, n)
		}
		if seen[d] {
			t.Fatalf("done value %d reported twice", d)
		}
		seen[d] = true
	}
	if log.total != n {
		t.Fatalf("total = %d, want %d", log.total, n)
	}
}

func TestProgressParallelLowestIndexPanicWins(t *testing.T) {
	var log progressLog
	o := Options{Jobs: 8, Progress: log.note}
	msg := recoverPanic(func() {
		o.forEach(12, func(i int) {
			if i == 2 || i == 9 {
				panic(i)
			}
		})
	})
	if !strings.Contains(msg, "exp: task 2: 2") {
		t.Fatalf("panic = %q, want the lowest-index task (2) re-raised", msg)
	}
	if len(log.dones) != 10 {
		t.Fatalf("progress fired %d times, want 10 (two tasks panicked)", len(log.dones))
	}
}

func TestProgressParallelCleanRun(t *testing.T) {
	const n = 9
	var log progressLog
	o := Options{Jobs: 3, Progress: log.note}
	o.forEach(n, func(int) {})
	if len(log.dones) != n {
		t.Fatalf("progress fired %d times, want %d", len(log.dones), n)
	}
	// Some callback must report full completion.
	max := 0
	for _, d := range log.dones {
		if d > max {
			max = d
		}
	}
	if max != n {
		t.Fatalf("max done = %d, want %d", max, n)
	}
}
