package exp

import (
	"fmt"

	"scatteradd/internal/machine"
	"scatteradd/internal/mem"
	"scatteradd/internal/saunit"
)

// Table1 renders the simulated machine parameters in the form of the
// paper's Table 1, derived from the live default configuration so the
// printed numbers can never drift from what the simulator actually runs.
func Table1() Table {
	cfg := machine.DefaultConfig()
	dramGBs := float64(mem.LineBytes) / float64(cfg.DRAM.BusCyclesPerLn) * float64(cfg.DRAM.Channels)
	cacheGBs := float64(cfg.Cache.Banks*cfg.Cache.PortWidth) * mem.WordBytes
	srfGBs := cfg.SRFWordsPerCycle * mem.WordBytes
	area, frac := saunit.AreaEstimate(cfg.Cache.Banks, cfg.SA.Entries)
	t := Table{
		Title:  "Table 1: machine parameters (1 GHz)",
		Header: []string{"parameter", "value", "paper"},
	}
	add := func(name string, value, paper string) {
		t.Rows = append(t.Rows, []string{name, value, paper})
	}
	add("stream cache banks", d(uint64(cfg.Cache.Banks)), "8")
	add("scatter-add units per bank", "1", "1")
	add("scatter-add FU latency", d(uint64(cfg.SA.FULatency)), "4")
	add("combining store entries", d(uint64(cfg.SA.Entries)), "8")
	add("DRAM interface channels", d(uint64(cfg.DRAM.Channels)), "16")
	add("address generators", d(uint64(cfg.AGs)), "2")
	add("peak DRAM bandwidth", fmt.Sprintf("%.1f GB/s", dramGBs), "38.4 GB/s")
	add("stream cache bandwidth", fmt.Sprintf("%.0f GB/s", cacheGBs), "64 GB/s")
	add("clusters", d(uint64(cfg.Clusters)), "16")
	add("peak FP ops per cycle", fmt.Sprintf("%.0f", cfg.PeakFlopsPerCycle()), "128")
	add("SRF bandwidth", fmt.Sprintf("%.0f GB/s", srfGBs), "512 GB/s")
	add("stream cache size", fmt.Sprintf("%d KB", cfg.Cache.TotalLines*mem.LineBytes/1024), "1 MB")
	add("scatter-add area (8 units)", fmt.Sprintf("%.1f mm2 (%.1f%% of 10x10mm die)", area, frac*100), "<2% of die")
	return t
}
