package exp

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// This file is the experiment orchestrator: every figure's independent
// (workload, machine) runs are fanned out across a bounded worker pool.
//
// The paper's evaluation is embarrassingly parallel across configurations —
// each point of each figure builds its own machine.Machine and its own (or a
// cloned) workload, so runs share no mutable state. Determinism is by
// construction, not by scheduling: task i writes only results[i], and the
// caller assembles table rows in index order, so the rendered output is
// byte-identical for any worker count (see TestReportDeterministicAcrossJobs).
//
// Workers pull task indices from an atomic counter (work stealing), which
// load-balances the very uneven run costs (a 4M-bin histogram next to a
// 16-bin one) without affecting output order. A panic inside a task — e.g. a
// mustVerify failure — is captured and re-raised on the calling goroutine so
// figure generation fails loudly exactly as in the sequential path.

// jobs returns the effective worker count: Options.Jobs when positive,
// otherwise GOMAXPROCS (one worker per available CPU). Jobs = 1 reproduces
// the historical sequential behavior on the caller's goroutine.
func (o Options) jobs() int {
	if o.Jobs > 0 {
		return o.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// AutoShards picks an intra-run shard width for a pool of jobs concurrent
// runs: the CPUs left over once every worker has one, bounded by the widest
// useful partition (8 bank clusters / typical node counts), and reined in
// for heavily scaled-down runs whose short cycles amortize the per-cycle
// barrier less. Sharding never changes output (internal/differ enforces
// byte-identity), so the policy is purely a throughput heuristic. Exposed so
// CLIs can log the width "-shards auto" resolved to.
func AutoShards(jobs, scale int) int {
	if jobs < 1 {
		jobs = 1
	}
	per := runtime.NumCPU() / jobs
	if per < 1 {
		per = 1
	}
	if per > 8 {
		per = 8
	}
	if scale > 4 && per > 2 {
		per = 2
	}
	return per
}

// shards resolves Options.Shards to the width handed to machine and
// multinode configs: 0 picks automatically, anything else passes through.
func (o Options) shards() int {
	if o.Shards != 0 {
		return o.Shards
	}
	return AutoShards(o.jobs(), o.Scale)
}

// taskPanic is one captured task panic, tagged with its index and worker
// stack so forEach can re-raise deterministically.
type taskPanic struct {
	index int
	val   any
	stack []byte
}

// forEach runs fn(i) for every i in [0, n) on up to o.jobs() workers and
// returns once all calls completed. fn must confine its writes to per-index
// state. If any calls panic, the panic of the lowest index is re-raised
// here after the pool drains (with that task's captured stack) — not
// whichever worker reached the recover first — so a mustVerify failure
// reports the same task at any worker count.
func (o Options) forEach(n int, fn func(int)) {
	var completed atomic.Int64
	note := func() {
		if o.Progress != nil {
			o.Progress(int(completed.Add(1)), n)
		}
	}
	workers := o.jobs()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
			note()
		}
		return
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panics  []taskPanic
	)
	// ok reports whether the task completed; a panicked task must not count
	// as progress — the sequential path never reaches note() for it either,
	// so Progress observes the same done counts at any worker count.
	runOne := func(i int) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				panics = append(panics, taskPanic{index: i, val: r, stack: debug.Stack()})
				panicMu.Unlock()
			}
		}()
		fn(i)
		return true
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if runOne(i) {
					note()
				}
			}
		}()
	}
	wg.Wait()
	if len(panics) > 0 {
		first := panics[0]
		for _, p := range panics[1:] {
			if p.index < first.index {
				first = p
			}
		}
		panic(fmt.Sprintf("exp: task %d: %v\n\ntask stack:\n%s", first.index, first.val, first.stack))
	}
}

// mapN fans fn out across the worker pool and collects the results indexed
// by input position, preserving input order regardless of scheduling.
func mapN[T any](o Options, n int, fn func(int) T) []T {
	out := make([]T, n)
	o.forEach(n, func(i int) { out[i] = fn(i) })
	return out
}
