package exp

import (
	"strings"
	"testing"
)

func TestPlotFig6Style(t *testing.T) {
	tab := Table{
		Title:  "f6",
		Header: []string{"n", "hw_us", "sortscan_us", "speedup"},
		Rows: [][]string{
			{"256", "1", "4", "4"},
			{"1024", "2", "16", "8"},
		},
	}
	out := Plot(6, tab)
	if !strings.Contains(out, "scatter-add") || !strings.Contains(out, "sort&seg-scan") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("markers missing:\n%s", out)
	}
}

func TestPlotFig8SplitsBySize(t *testing.T) {
	tab := Table{
		Title:  "f8",
		Header: []string{"range", "n", "hw_us", "privatization_us", "speedup"},
		Rows: [][]string{
			{"128", "1024", "1", "2", "2"},
			{"512", "1024", "1.5", "5", "3"},
			{"128", "32768", "10", "20", "2"},
			{"512", "32768", "12", "60", "5"},
		},
	}
	out := Plot(8, tab)
	for _, want := range []string{"scatter-add n=1024", "privatization n=32768"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing series %q:\n%s", want, out)
		}
	}
}

func TestPlotBarsForFig9(t *testing.T) {
	tab := Table{
		Title:  "f9",
		Header: []string{"variant", "cycles_M", "fp_ops_M", "mem_refs_M"},
		Rows: [][]string{
			{"CSR", "0.4", "0.9", "1.4"},
			{"EBE HW", "0.3", "1.6", "0.9"},
		},
	}
	out := Plot(9, tab)
	if !strings.Contains(out, "CSR") || !strings.Contains(out, "#") {
		t.Fatalf("bar chart missing:\n%s", out)
	}
}

func TestPlotFig13SeriesPerConfig(t *testing.T) {
	tab := Table{
		Title:  "f13",
		Header: []string{"config", "1", "2", "4", "8"},
		Rows: [][]string{
			{"narrow-high", "35", "56", "90", "150"},
			{"wide-low", "1", "2", "6", "15"},
		},
	}
	out := Plot(13, tab)
	if !strings.Contains(out, "narrow-high") || !strings.Contains(out, "wide-low") {
		t.Fatalf("series missing:\n%s", out)
	}
	if !strings.Contains(out, "GB/s") {
		t.Fatalf("axis label missing:\n%s", out)
	}
}

func TestPlotUnknownFigure(t *testing.T) {
	if out := Plot(99, Table{}); !strings.Contains(out, "no plot defined") {
		t.Fatalf("unexpected: %q", out)
	}
}

func TestBarsEmptyValues(t *testing.T) {
	tab := Table{Header: []string{"a", "b"}, Rows: [][]string{{"x", "notanumber"}}}
	if out := bars(tab, 1, "u"); !strings.Contains(out, "no plottable") {
		t.Fatalf("unexpected: %q", out)
	}
}
