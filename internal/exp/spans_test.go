package exp

import (
	"strings"
	"testing"

	"scatteradd/internal/span"
)

// TestSpanAppendixDeterministicAcrossJobs renders a figure with span
// collection at -jobs 1 and -jobs 8 and requires byte-identical output —
// the tentpole's determinism contract: per-run tracers, reports assembled
// in input order.
func TestSpanAppendixDeterministicAcrossJobs(t *testing.T) {
	base := Options{Scale: 16, CollectSpans: true, SpanRate: 8}
	seq, par := base, base
	seq.Jobs, par.Jobs = 1, 8
	s1 := Fig6(seq).String()
	s8 := Fig6(par).String()
	if s1 != s8 {
		t.Fatalf("span appendix differs between jobs=1 and jobs=8:\n%s\nvs\n%s", s1, s8)
	}
	if !strings.Contains(s1, "span appendix") {
		t.Fatalf("output missing span appendix:\n%s", s1)
	}
	if !strings.Contains(s1, "bottleneck") {
		t.Fatalf("span appendix missing bottleneck column:\n%s", s1)
	}
}

// TestSpanAppendixOffByDefault keeps the hot path clean: without
// CollectSpans no appendix is rendered and no reports are attached.
func TestSpanAppendixOffByDefault(t *testing.T) {
	tab := Fig6(Options{Scale: 16, Jobs: 2})
	if len(tab.Spans) != 0 {
		t.Fatalf("spans attached without CollectSpans: %d rows", len(tab.Spans))
	}
	if strings.Contains(tab.String(), "span appendix") {
		t.Fatal("span appendix rendered without CollectSpans")
	}
}

// TestSensitivitySpansUniformMemory checks span collection on the §4.4
// cache-less machine: attribution must flow to the memory stage, not the
// (absent) cache.
func TestSensitivitySpansUniformMemory(t *testing.T) {
	o := Options{Scale: 16, Jobs: 2, CollectSpans: true, SpanRate: 4}
	tab := Fig11(o)
	if len(tab.Spans) == 0 {
		t.Fatal("no span rows on Fig11")
	}
	sawOps := false
	for _, r := range tab.Spans {
		if r.Report.Ops == 0 {
			continue
		}
		sawOps = true
		for _, st := range r.Report.Stages {
			if st.Stage == span.StageCache {
				t.Fatalf("run %s attributes cycles to the cache on a cache-less machine", r.Label)
			}
		}
	}
	if !sawOps {
		t.Fatal("every Fig11 span report is empty")
	}
}

// TestFig13SpansMultiNode checks span collection flows through the
// multi-node path with per-point labels.
func TestFig13SpansMultiNode(t *testing.T) {
	o := Options{Scale: 64, Jobs: 4, CollectSpans: true, SpanRate: 16}
	tab := Fig13(o)
	if len(tab.Spans) == 0 {
		t.Fatal("no span rows on Fig13")
	}
	for _, r := range tab.Spans {
		if !strings.Contains(r.Label, "nodes=") {
			t.Fatalf("fig13 span label %q missing node count", r.Label)
		}
	}
}

// TestFormatSpanRowsEmptyReport renders a row whose run sampled nothing.
func TestFormatSpanRowsEmptyReport(t *testing.T) {
	out := formatSpanRows([]SpanRow{{Label: "empty", Report: span.Report{}}}, "")
	if !strings.Contains(out, "empty") || !strings.Contains(out, "-") {
		t.Fatalf("empty-report rendering: %q", out)
	}
}
