// Package exp contains the experiment runners that regenerate every table
// and figure of the paper's evaluation (§4). Each Fig* function returns a
// Table whose rows correspond to the points of the original figure; the
// cmd/scatteradd CLI prints them and bench_test.go wraps them as Go
// benchmarks.
//
// Options.Scale shrinks dataset sizes for quick runs (1 = the paper's full
// sizes); the shapes are preserved at reduced scales.
package exp

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment: a title, column headers, and rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string // paper-vs-measured commentary
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header + rows).
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Options control experiment scale.
type Options struct {
	// Scale divides dataset sizes (1 = full paper scale; 4 = quarter data).
	Scale int
}

// DefaultOptions runs at the paper's full dataset sizes.
func DefaultOptions() Options { return Options{Scale: 1} }

func (o Options) scaled(n int) int {
	if o.Scale <= 1 {
		return n
	}
	s := n / o.Scale
	if s < 16 {
		s = 16
	}
	return s
}

// us converts 1 GHz cycles to microseconds (the paper's time axis).
func us(cycles uint64) float64 { return float64(cycles) / 1000.0 }

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.3g", v) }

// d formats an integer.
func d(v uint64) string { return fmt.Sprintf("%d", v) }
