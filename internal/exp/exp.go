// Package exp contains the experiment runners that regenerate every table
// and figure of the paper's evaluation (§4). Each Fig* function returns a
// Table whose rows correspond to the points of the original figure; the
// cmd/scatteradd CLI prints them and bench_test.go wraps them as Go
// benchmarks.
//
// Options.Scale shrinks dataset sizes for quick runs (1 = the paper's full
// sizes); the shapes are preserved at reduced scales. Options.Jobs bounds
// the worker pool that fans each figure's independent (workload, machine)
// simulations out across CPUs (see runner.go); rendered output is
// byte-identical for every worker count.
package exp

import (
	"encoding/csv"
	"fmt"
	"strings"

	"scatteradd/internal/fault"
	"scatteradd/internal/machine"
	"scatteradd/internal/stats"
)

// Table is a rendered experiment: a title, column headers, and rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string // paper-vs-measured commentary

	// Counters holds the hardware performance counters of every simulation
	// behind the table, merged in input order (Options.CollectStats). When
	// non-empty, String appends them as a counter appendix.
	Counters stats.Snapshot

	// Spans holds the per-run latency-attribution reports of every
	// simulation behind the table, in input order (Options.CollectSpans).
	// When non-empty, String appends them as a span appendix.
	Spans []SpanRow
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	if t.Counters.Len() > 0 {
		b.WriteString("counter appendix (merged across runs, collapsed across instances):\n")
		b.WriteString(t.Counters.Collapse().Format("  "))
	}
	if len(t.Spans) > 0 {
		b.WriteString("span appendix (sampled request lifecycles, per run):\n")
		b.WriteString(formatSpanRows(t.Spans, "  "))
	}
	return b.String()
}

// CSV renders the table as RFC 4180 comma-separated values (header + rows);
// cells containing commas, quotes, or newlines are quoted.
func (t Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	if err := w.Write(t.Header); err != nil {
		panic(fmt.Sprintf("exp: CSV header of %q: %v", t.Title, err))
	}
	for r, row := range t.Rows {
		if err := w.Write(row); err != nil {
			panic(fmt.Sprintf("exp: CSV row %d of %q: %v", r, t.Title, err))
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		panic(fmt.Sprintf("exp: CSV of %q: %v", t.Title, err))
	}
	return b.String()
}

// Options control experiment scale and parallelism.
type Options struct {
	// Scale divides dataset sizes (1 = full paper scale; 4 = quarter data).
	Scale int
	// Jobs bounds the worker pool that runs a figure's independent
	// (workload, machine) simulations concurrently. 0 means one worker per
	// CPU (GOMAXPROCS); 1 runs everything sequentially on the caller's
	// goroutine. Output is byte-identical for every value.
	Jobs int
	// Shards partitions each simulation's component groups across a worker
	// pool, parallelizing *within* one run the way Jobs parallelizes across
	// runs: multi-node figures (Fig 13, hierarchical ablation) shard their
	// per-node engines; single-machine figures (6-12) shard the machine's
	// bank clusters (scatter-add units, cache banks, and the DRAM channels
	// they own). Per-cycle component compute fans out between deterministic
	// exchange points, so output is byte-identical for every value (enforced
	// by internal/differ). 0 picks an automatic width from the CPUs left
	// over after the Jobs pool claims its workers (see AutoShards) — with
	// the default one-worker-per-CPU Jobs that resolves to 1; 1 keeps every
	// run sequential; larger values pass through (component counts clamp
	// inside the engines).
	Shards int
	// Seed perturbs every workload seed (0 = the paper's fixed seeds),
	// regenerating all figures on statistically fresh datasets.
	Seed uint64
	// CollectStats attaches the merged hardware performance counters of a
	// figure's simulations to its Table (rendered as a counter appendix).
	// Counting itself is always on; this only controls snapshot collection,
	// so leaving it off costs nothing on the simulation hot path.
	CollectStats bool
	// CollectSpans samples per-request lifecycle spans on every simulation
	// behind a figure and attaches the per-run latency-attribution reports
	// to its Table (rendered as a span appendix). Off, no tracer is
	// installed and the simulation hot path pays nothing.
	CollectSpans bool
	// SpanRate samples one in every SpanRate issued memory operations when
	// CollectSpans is set (0 = a default of 16).
	SpanRate int
	// Legacy runs every simulation with per-cycle engine stepping instead
	// of the quiescence fast-forward path. Output is byte-identical either
	// way (enforced by internal/differ); the option exists for that
	// comparison and for performance attribution.
	Legacy bool
	// Faults injects deterministic hardware faults (network drops and
	// duplications, DRAM stalls, combining-store parity scrubs, FU retries)
	// into every simulation behind every figure. Recovery keeps reductions
	// bit-exact; only the timing columns move. The zero value injects
	// nothing and leaves all output byte-identical to an unfaulted run.
	Faults fault.Config
	// Topology restricts the interconnect scale-out figure (Fig 14) to a
	// single interconnect configuration ("" = sweep all of them). Names
	// follow multinode.ParseTopology: flat, flat+comb, hypercube, tree,
	// tree+comb, mesh, mesh+comb. Figures without a topology axis ignore it.
	Topology string
	// FanIn overrides the switch fan-in of Fig 14's tree topologies (0 = 4).
	FanIn int
	// CheckpointDir, when non-empty, persists each completed figure's table
	// to <dir>/<figure>.json and serves later requests with matching
	// options from that snapshot, so a killed sweep resumes where it left
	// off. Jobs does not participate in the match (output is identical for
	// every worker count); every other option does.
	CheckpointDir string
	// Progress, when non-nil, is invoked as each of a fan-out's independent
	// simulations completes, with the number done so far and the fan-out's
	// total. It is a pure observer for live progress reporting (the
	// simulation server streams these as NDJSON events): it never changes
	// rendered output and does not participate in the checkpoint
	// fingerprint. A figure may fan out more than once, restarting the
	// count; with Jobs > 1 the callback runs on worker goroutines and must
	// be safe for concurrent use. A figure served from a checkpoint
	// snapshot reports no progress — nothing is simulated.
	Progress func(done, total int)
}

// DefaultOptions runs at the paper's full dataset sizes with one worker per
// CPU.
func DefaultOptions() Options { return Options{Scale: 1} }

// seed derives a workload seed from a figure's base seed and Options.Seed.
func (o Options) seed(base uint64) uint64 {
	return base ^ (o.Seed * 0x9e3779b97f4a7c15)
}

func (o Options) scaled(n int) int {
	if o.Scale <= 1 {
		return n
	}
	s := n / o.Scale
	if s < 16 {
		s = 16
	}
	return s
}

// us converts core cycles to microseconds (the paper's time axis) at the
// machine's ClockGHz.
func us(cycles uint64) float64 { return machine.CyclesToMicros(cycles) }

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.3g", v) }

// d formats an integer.
func d(v uint64) string { return fmt.Sprintf("%d", v) }
