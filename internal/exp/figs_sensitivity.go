package exp

import (
	"fmt"

	"scatteradd/internal/apps"
	"scatteradd/internal/machine"
	"scatteradd/internal/span"
	"scatteradd/internal/stats"
)

// sensitivityMachine builds the §4.4 configuration: no cache, one
// scatter-add unit with the given combining-store size and FU latency, in
// front of a uniform memory with the given latency and word interval.
func sensitivityMachine(o Options, entries, fuLat, memLat, interval int) *machine.Machine {
	cfg := machine.DefaultConfig()
	cfg.SA.Entries = entries
	cfg.SA.FULatency = fuLat
	// Let the input queue keep the single unit fed regardless of store size.
	cfg.SA.InQDepth = 16
	cfg.UniformMem = &machine.UniformMemConfig{Latency: memLat, Interval: interval}
	cfg.LegacyStepping = o.Legacy
	cfg.Faults = o.Faults
	cfg.Shards = o.shards() // uniform memory runs sequentially; kept for uniformity
	return machine.New(cfg)
}

// sensPoint is one point of the §4.4 sensitivity grid.
type sensPoint struct {
	entries, fuLat, memLat, interval int
}

// sensOut is one sensitivity point's runtime plus (when collecting) the
// run's performance-counter snapshot and span report.
type sensOut struct {
	us    float64
	snap  stats.Snapshot
	rep   span.Report
	label string
}

// runSensitivity times one histogram scatter-add on the simplified system;
// each call builds its own workload and machine, so points are independent.
func runSensitivity(o Options, p sensPoint, n, rng int) sensOut {
	h := apps.NewHistogram(n, rng, o.seed(0xF16_11))
	m := sensitivityMachine(o, p.entries, p.fuLat, p.memLat, p.interval)
	tr := o.newTracer()
	m.SetSpanTracer(tr)
	res := h.RunHW(m)
	mustVerify(m, h, "sensitivity histogram")
	out := sensOut{us: us(res.Cycles)}
	if o.CollectStats {
		out.snap = m.StatsSnapshot()
	}
	if o.CollectSpans {
		out.rep = spanReport(tr)
		out.label = fmt.Sprintf("cs=%d fu=%d mem=%d int=%d bins=%d",
			p.entries, p.fuLat, p.memLat, p.interval, rng)
	}
	return out
}

// mergeSens attaches the merged counter snapshot and per-point span reports
// of a sensitivity grid to its table when the collect options are set.
func mergeSens(o Options, t *Table, outs []sensOut) {
	if o.CollectSpans {
		for _, x := range outs {
			t.Spans = append(t.Spans, SpanRow{Label: x.label, Report: x.rep})
		}
	}
	if !o.CollectStats {
		return
	}
	snaps := make([]stats.Snapshot, len(outs))
	for i, x := range outs {
		snaps[i] = x.snap
	}
	t.Counters = stats.MergeAll(snaps)
}

// sensitivityTable fans a (combining-store entries) x (column config) grid
// out across the worker pool and assembles one row per store size.
func sensitivityTable(o Options, t Table, cols []sensPoint, n, rng int) Table {
	css := []int{2, 4, 8, 16, 64}
	vals := mapN(o, len(css)*len(cols), func(i int) sensOut {
		p := cols[i%len(cols)]
		p.entries = css[i/len(cols)]
		return runSensitivity(o, p, n, rng)
	})
	for r, cs := range css {
		row := []string{d(uint64(cs))}
		for c := range cols {
			row = append(row, f(vals[r*len(cols)+c].us))
		}
		t.Rows = append(t.Rows, row)
	}
	mergeSens(o, &t, vals)
	return t
}

// Fig11 reproduces Figure 11: histogram runtime versus combining-store size
// for memory latencies 8-256 (FU latency 4) and FU latencies 2-16 (memory
// latency 16); memory throughput one word per 2 cycles; 512 inputs over
// 65,536 bins.
func Fig11(o Options) Table { return o.checkpointed("fig11", fig11) }

func fig11(o Options) Table {
	t := Table{
		Title:  "Figure 11: sensitivity to combining-store size, memory latency, and FU latency (us)",
		Header: []string{"cs_entries", "mem8_fu4", "mem16_fu4", "mem64_fu4", "mem256_fu4", "mem16_fu2", "mem16_fu8", "mem16_fu16"},
		Notes: []string{
			"paper: with 16 entries performance is nearly latency-independent;",
			"64 entries tolerate even 256-cycle memory latency",
		},
	}
	var cols []sensPoint
	for _, memLat := range []int{8, 16, 64, 256} {
		cols = append(cols, sensPoint{fuLat: 4, memLat: memLat, interval: 2})
	}
	for _, fuLat := range []int{2, 8, 16} {
		cols = append(cols, sensPoint{fuLat: fuLat, memLat: 16, interval: 2})
	}
	return sensitivityTable(o, t, cols, o.scaled(512), 65536)
}

// Fig12 reproduces Figure 12: histogram runtime versus combining-store size
// and memory throughput (1 word per 1/2/4/16 cycles) for 16 bins (high
// combining locality) and 65,536 bins (no locality).
func Fig12(o Options) Table { return o.checkpointed("fig12", fig12) }

func fig12(o Options) Table {
	t := Table{
		Title:  "Figure 12: sensitivity to combining-store size and memory throughput (us)",
		Header: []string{"cs_entries", "int1_bins16", "int1_bins64K", "int2_bins16", "int2_bins64K", "int4_bins16", "int4_bins64K", "int16_bins16", "int16_bins64K"},
		Notes: []string{
			"paper: low throughput cannot be overcome even by 64 entries for the wide case;",
			"with 16 bins, combining absorbs most requests and throughput matters far less",
		},
	}
	// The bin count varies per column here, so the grid carries it alongside
	// the machine parameters.
	n := o.scaled(512)
	css := []int{2, 4, 8, 16, 64}
	type col struct {
		interval, bins int
	}
	var cols []col
	for _, interval := range []int{1, 2, 4, 16} {
		for _, bins := range []int{16, 65536} {
			cols = append(cols, col{interval, bins})
		}
	}
	vals := mapN(o, len(css)*len(cols), func(i int) sensOut {
		cs, c := css[i/len(cols)], cols[i%len(cols)]
		return runSensitivity(o, sensPoint{entries: cs, fuLat: 4, memLat: 16, interval: c.interval}, n, c.bins)
	})
	for r, cs := range css {
		row := []string{d(uint64(cs))}
		for c := range cols {
			row = append(row, f(vals[r*len(cols)+c].us))
		}
		t.Rows = append(t.Rows, row)
	}
	mergeSens(o, &t, vals)
	return t
}
