package exp

import (
	"strings"
	"testing"
)

func TestReportAllClaimsPassAtReducedScale(t *testing.T) {
	md, checks := Report(Options{Scale: 8})
	if len(checks) < 10 {
		t.Fatalf("only %d checks", len(checks))
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("%s: %q failed (%s)", c.Figure, c.Claim, c.Detail)
		}
	}
	for _, want := range []string{
		"# Reproduction report",
		"## Figure 6",
		"## Figure 13",
		"## Claim checks",
		"| Fig. 9 |",
		"PASS",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	if strings.Contains(md, "| FAIL |") {
		t.Fatal("report contains failing checks")
	}
}
