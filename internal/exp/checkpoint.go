package exp

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// This file implements figure-level checkpoint/resume for experiment sweeps
// (Options.CheckpointDir). Each figure's rendered Table is snapshotted to
// <dir>/<name>.json the moment it completes; a later run with matching
// options is served from the snapshot instead of re-simulating. The unit of
// work is one whole figure — every table is assembled deterministically from
// its runs, so "completed" is the only state worth persisting, and a sweep
// killed between figures resumes byte-identically from the survivors.
//
// Writes are atomic (temp file + rename in the same directory), so a kill
// mid-write leaves either the old snapshot or none, never a torn file. A
// snapshot that fails to parse, or whose recorded options fingerprint does
// not match, is treated as absent and recomputed.

// checkpointFile is the on-disk snapshot of one completed figure.
type checkpointFile struct {
	Fingerprint string // options that produced the table (see fingerprint)
	Table       Table
}

// Fingerprint encodes every option that can change a figure's output, as
// canonical JSON: an explicit map with fixed key strings, which encoding/json
// marshals with sorted keys. The keys are part of the on-disk format — they
// deliberately do not follow Go field names, so renaming or reordering an
// Options or fault.Config field can neither spuriously invalidate a snapshot
// nor (worse) silently keep serving one produced under different semantics.
//
// Jobs and Shards are deliberately absent: neither the worker count nor the
// intra-run shard count ever changes rendered bytes (enforced by
// TestReportDeterministicAcrossJobs, TestReportDeterministicAcrossShards,
// and internal/differ), so a sequential resume of a parallel sweep still
// hits its snapshots. Progress is a pure observer and is likewise absent.
//
// Beyond checkpoints, the fingerprint is the simulation service's result
// cache and request-coalescing key (internal/server): two requests whose
// specs fingerprint identically are one simulation.
func (o Options) Fingerprint() string {
	flt := o.Faults
	data, err := json.Marshal(map[string]any{
		"scale":    o.Scale,
		"seed":     o.Seed,
		"stats":    o.CollectStats,
		"spans":    o.CollectSpans,
		"rate":     o.spanRate(),
		"legacy":   o.Legacy,
		"topology": o.Topology,
		"fanin":    o.FanIn,
		"faults": map[string]any{
			"seed":              flt.Seed,
			"net-drop":          flt.NetDropRate,
			"net-dup":           flt.NetDupRate,
			"dram-stall-rate":   flt.DRAMStallRate,
			"dram-stall-cycles": flt.DRAMStallCycles,
			"dram-window-every": flt.DRAMWindowEvery,
			"dram-window-span":  flt.DRAMWindowSpan,
			"dram-window-rate":  flt.DRAMWindowRate,
			"cs-corrupt":        flt.CSCorruptRate,
			"fu-error":          flt.FUErrorRate,
			"retry-timeout":     flt.RetryTimeout,
			"retry-backoff-cap": flt.RetryBackoffCap,
			"max-retries":       flt.MaxRetries,
			"degrade-threshold": flt.DegradeThreshold,
		},
	})
	if err != nil {
		panic(fmt.Sprintf("exp: fingerprint marshal: %v", err)) // unreachable: fixed shape
	}
	return string(data)
}

// checkpointed returns the figure's snapshotted table when a valid one
// exists, otherwise generates it with gen and snapshots the result. With no
// CheckpointDir it is exactly gen(o).
func (o Options) checkpointed(name string, gen func(Options) Table) Table {
	if o.CheckpointDir == "" {
		return gen(o)
	}
	path := filepath.Join(o.CheckpointDir, name+".json")
	if t, ok := o.loadCheckpoint(path); ok {
		return t
	}
	t := gen(o)
	o.saveCheckpoint(path, t)
	return t
}

// loadCheckpoint reads and validates one snapshot. Any failure — missing
// file, torn or corrupt JSON, an options mismatch — reports !ok, which means
// "recompute", never an error: checkpoints are an accelerator, not a source
// of truth.
func (o Options) loadCheckpoint(path string) (Table, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Table{}, false
	}
	var cf checkpointFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return Table{}, false
	}
	if cf.Fingerprint != o.Fingerprint() {
		return Table{}, false
	}
	return cf.Table, true
}

// saveCheckpoint atomically persists one completed figure. Failures are
// deliberately silent beyond a stderr note: a read-only or full disk should
// degrade a sweep to uncheckpointed, not kill it after the work is done.
func (o Options) saveCheckpoint(path string, t Table) {
	data, err := json.MarshalIndent(checkpointFile{Fingerprint: o.Fingerprint(), Table: t}, "", " ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "exp: checkpoint %s: %v\n", path, err)
		return
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "exp: checkpoint %s: %v\n", path, err)
		return
	}
	if err := WriteFileAtomic(path, data); err != nil {
		fmt.Fprintf(os.Stderr, "exp: checkpoint %s: %v\n", path, err)
	}
}

// WriteFileAtomic durably replaces path with data: write to a temp file in
// the same directory, fsync, close, rename. The rename is the commit point —
// a crash at any step leaves either the old file or none, never a torn one —
// and the fsync before it guarantees the renamed file's data actually hit the
// disk (without it, a crash after the rename could publish an empty-but-named
// file). Both the figure checkpoints above and the simulation server's
// persisted result-cache index (internal/server) commit through this helper.
//
// All write/sync/close failures surface with their underlying errors — a full
// disk and a permission problem need different operator responses.
func WriteFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if err := errors.Join(werr, serr, cerr); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("write temp %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
