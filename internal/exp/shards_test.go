package exp

import (
	"testing"

	"scatteradd/internal/fault"
)

// TestReportDeterministicAcrossShards mirrors TestReportDeterministicAcrossJobs
// for intra-run sharding: the multi-node figures must render byte-identically
// whether each simulation runs its nodes sequentially or across 2 or 4
// shards, with the counter and span appendices attached so the whole
// observable surface is compared — and that must hold with fast-forward on
// (the default stepping mode) as well as under chaos-rate fault injection.
// Scale 256 keeps this affordable under -race; the multinode package pins
// byte-identity exhaustively at the system level, so this test only needs
// enough data to prove the exp-layer plumbing (options, appendices,
// checkpointing) is shard-clean. Fig13 runs the full {1,2,4} matrix; the
// hierarchical ablation — whose only shard-relevant surface is its
// cfg.Shards wiring — is checked at 4 shards alone.
func TestReportDeterministicAcrossShards(t *testing.T) {
	for _, tc := range []struct {
		fig    func(Options) Table
		shards []int
	}{
		{Fig13, []int{2, 4}},
		{AblationHierarchical, []int{4}},
	} {
		base := Options{Scale: 256, Jobs: 2, CollectStats: true, CollectSpans: true, Shards: 1}
		want := tc.fig(base)
		for _, shards := range tc.shards {
			o := base
			o.Shards = shards
			if got := tc.fig(o); got.String() != want.String() {
				t.Fatalf("%s: rendering differs between Shards=1 and Shards=%d:\n%s\nvs\n%s",
					want.Title, shards, got.String(), want.String())
			}
		}
	}
}

// TestFaultedFigureDeterministicAcrossShards: the fault schedule is a pure
// function of (seed, component, event index), so even a chaos-faulted run —
// retransmissions, dedup, degradations and all — must not move a byte when
// the node compute fans out across shards.
func TestFaultedFigureDeterministicAcrossShards(t *testing.T) {
	run := func(shards int) string {
		o := Options{Scale: 256, Jobs: 2, Shards: shards, Faults: fault.DefaultChaos()}
		return Fig13(o).String()
	}
	want := run(1)
	if got := run(4); got != want {
		t.Fatal("faulted Fig13 output depends on shard count")
	}
}

// TestLegacySteppingDeterministicAcrossShards covers the remaining stepping
// mode: per-cycle stepping (no fast-forward) through the sharded two-phase
// step.
func TestLegacySteppingDeterministicAcrossShards(t *testing.T) {
	run := func(shards int) string {
		return Fig13(Options{Scale: 256, Jobs: 2, Shards: shards, Legacy: true}).String()
	}
	if run(1) != run(4) {
		t.Fatal("legacy-stepping Fig13 output depends on shard count")
	}
}

// TestFig13ShardedRace is the exp-level -race exercise of the sharded path:
// a small Fig 13 with shards, jobs, spans, and faults all active at once,
// so the race detector sees the worker pool inside the worker pool.
func TestFig13ShardedRace(t *testing.T) {
	o := Options{Scale: 512, Jobs: 4, Shards: 4, CollectSpans: true, Faults: fault.DefaultChaos()}
	if tab := Fig13(o); len(tab.Rows) == 0 {
		t.Fatal("empty sharded Fig13")
	}
}
