package exp

import (
	"runtime"
	"testing"

	"scatteradd/internal/fault"
)

// TestReportDeterministicAcrossShards mirrors TestReportDeterministicAcrossJobs
// for intra-run sharding: figures must render byte-identically whether each
// simulation runs sequentially or fanned across 2 or 4 shards — multi-node
// figures shard per-node engines, single-machine figures shard the machine's
// bank clusters — with the counter and span appendices attached so the whole
// observable surface is compared. Small scales keep this affordable under
// -race; the multinode and machine packages pin byte-identity exhaustively at
// the system level, so this test only needs enough data to prove the
// exp-layer plumbing (options, appendices, checkpointing) is shard-clean.
// Fig13 runs the full {1,2,4} matrix; Fig6 and Fig10 cover the two
// single-machine workload shapes (histogram, gather/compute/async-scatter);
// the hierarchical ablation — whose only shard-relevant surface is its
// cfg.Shards wiring — is checked at 4 shards alone.
func TestReportDeterministicAcrossShards(t *testing.T) {
	for _, tc := range []struct {
		fig    func(Options) Table
		scale  int
		shards []int
	}{
		{Fig13, 256, []int{2, 4}},
		{Fig6, 32, []int{4}},
		{Fig10, 8, []int{4}},
		{AblationHierarchical, 256, []int{4}},
	} {
		base := Options{Scale: tc.scale, Jobs: 2, CollectStats: true, CollectSpans: true, Shards: 1}
		want := tc.fig(base)
		for _, shards := range tc.shards {
			o := base
			o.Shards = shards
			if got := tc.fig(o); got.String() != want.String() {
				t.Fatalf("%s: rendering differs between Shards=1 and Shards=%d:\n%s\nvs\n%s",
					want.Title, shards, got.String(), want.String())
			}
		}
	}
}

// TestAutoShardsPolicy pins the automatic width rules: never below 1, never
// past the widest useful partition, narrowed for scaled-down runs, and the
// default one-worker-per-CPU pool leaves nothing over.
func TestAutoShardsPolicy(t *testing.T) {
	cpus := runtime.NumCPU()
	if got := AutoShards(cpus, 1); got != 1 {
		t.Errorf("AutoShards(NumCPU, 1) = %d, want 1 (saturated job pool)", got)
	}
	if got := AutoShards(1, 1); got < 1 || got > 8 {
		t.Errorf("AutoShards(1, 1) = %d, want within [1, 8]", got)
	}
	if got := AutoShards(0, 1); got != AutoShards(1, 1) {
		t.Errorf("AutoShards(0, 1) = %d, want the jobs<1 clamp to match jobs=1", got)
	}
	if cpus >= 4 {
		if got := AutoShards(1, 8); got > 2 {
			t.Errorf("AutoShards(1, scale 8) = %d, want <= 2 (small-run guard)", got)
		}
	}
	// Options.Shards = 0 resolves through the same policy; non-zero passes.
	if got := (Options{Shards: 3}).shards(); got != 3 {
		t.Errorf("Options{Shards: 3}.shards() = %d, want 3", got)
	}
	o := Options{Jobs: 1, Scale: 1}
	if got, want := o.shards(), AutoShards(1, 1); got != want {
		t.Errorf("auto Options.shards() = %d, want %d", got, want)
	}
}

// TestFaultedFigureDeterministicAcrossShards: the fault schedule is a pure
// function of (seed, component, event index), so even a chaos-faulted run —
// retransmissions, dedup, degradations and all — must not move a byte when
// the node compute fans out across shards.
func TestFaultedFigureDeterministicAcrossShards(t *testing.T) {
	run := func(shards int) string {
		o := Options{Scale: 256, Jobs: 2, Shards: shards, Faults: fault.DefaultChaos()}
		return Fig13(o).String()
	}
	want := run(1)
	if got := run(4); got != want {
		t.Fatal("faulted Fig13 output depends on shard count")
	}
}

// TestLegacySteppingDeterministicAcrossShards covers the remaining stepping
// mode: per-cycle stepping (no fast-forward) through the sharded two-phase
// step.
func TestLegacySteppingDeterministicAcrossShards(t *testing.T) {
	run := func(shards int) string {
		return Fig13(Options{Scale: 256, Jobs: 2, Shards: shards, Legacy: true}).String()
	}
	if run(1) != run(4) {
		t.Fatal("legacy-stepping Fig13 output depends on shard count")
	}
}

// TestFig13ShardedRace is the exp-level -race exercise of the sharded path:
// a small Fig 13 with shards, jobs, spans, and faults all active at once,
// so the race detector sees the worker pool inside the worker pool.
func TestFig13ShardedRace(t *testing.T) {
	o := Options{Scale: 512, Jobs: 4, Shards: 4, CollectSpans: true, Faults: fault.DefaultChaos()}
	if tab := Fig13(o); len(tab.Rows) == 0 {
		t.Fatal("empty sharded Fig13")
	}
}
