package exp

import (
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
)

// quick runs experiments at 1/16 data scale.
func quick() Options { return Options{Scale: 16} }

// cell parses a numeric table cell.
func cell(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric", tab.Title, row, col, tab.Rows[row][col])
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"33", "4"}},
		Notes:  []string{"n1"},
	}
	s := tab.String()
	for _, want := range []string{"T\n", "a", "bb", "33", "note: n1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q in:\n%s", want, s)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,bb\n1,2\n") {
		t.Fatalf("csv = %q", csv)
	}
}

func TestCSVQuotesSpecialCells(t *testing.T) {
	tab := Table{
		Title:  "Q",
		Header: []string{"label", "value"},
		Rows: [][]string{
			{"per-bank (8 units), combined", "1.5"},
			{`say "hi"`, "2"},
		},
	}
	r := csv.NewReader(strings.NewReader(tab.CSV()))
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatalf("CSV output does not re-parse: %v", err)
	}
	want := [][]string{{"label", "value"}, {"per-bank (8 units), combined", "1.5"}, {`say "hi"`, "2"}}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if recs[i][j] != want[i][j] {
				t.Fatalf("record (%d,%d) = %q, want %q", i, j, recs[i][j], want[i][j])
			}
		}
	}
}

// TestCellNumPanicsWithContext is the regression test for the silent-zero
// bug: a malformed table cell must halt the report with the figure, row, and
// column rather than flipping a claim check.
func TestCellNumPanicsWithContext(t *testing.T) {
	tab := Table{
		Title:  "Figure X: malformed",
		Header: []string{"a"},
		Rows:   [][]string{{"1.5"}, {"not-a-number"}},
	}
	if got := cellNum(tab, 0, 0); got != 1.5 {
		t.Fatalf("cellNum = %g, want 1.5", got)
	}
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: no panic", name)
			}
			msg := r.(string)
			if !strings.Contains(msg, "Figure X: malformed") {
				t.Fatalf("%s: panic lacks figure context: %q", name, msg)
			}
		}()
		fn()
	}
	expectPanic("malformed cell", func() { cellNum(tab, 1, 0) })
	expectPanic("row out of range", func() { cellNum(tab, 5, 0) })
	expectPanic("negative row", func() { cellNum(tab, -1, 0) })
	expectPanic("column out of range", func() { cellNum(tab, 0, 3) })
}

func TestOptionsScaling(t *testing.T) {
	o := Options{Scale: 4}
	if o.scaled(1024) != 256 {
		t.Fatalf("scaled = %d", o.scaled(1024))
	}
	if o.scaled(8) != 16 { // floor
		t.Fatalf("floor = %d", o.scaled(8))
	}
	if DefaultOptions().scaled(100) != 100 {
		t.Fatal("default must not scale")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) < 10 {
		t.Fatalf("table 1 has %d rows", len(tab.Rows))
	}
	byName := map[string]string{}
	for _, r := range tab.Rows {
		byName[r[0]] = r[1]
	}
	if byName["stream cache banks"] != "8" || byName["combining store entries"] != "8" ||
		byName["peak FP ops per cycle"] != "128" {
		t.Fatalf("table 1 values drifted: %v", byName)
	}
}

func TestFig6SpeedupShape(t *testing.T) {
	tab := Fig6(quick())
	if len(tab.Rows) < 2 {
		t.Fatalf("fig6 rows: %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		if sp := cell(t, tab, i, 3); sp < 1 {
			t.Fatalf("fig6 row %d: HW slower than SW (speedup %.2f)", i, sp)
		}
	}
	// Speedup grows with n (paper: 3x at small n up to 11x at large).
	first := cell(t, tab, 0, 3)
	last := cell(t, tab, len(tab.Rows)-1, 3)
	if last <= first {
		t.Fatalf("fig6 speedup not growing: %.2f -> %.2f", first, last)
	}
}

func TestFig7HotBankShape(t *testing.T) {
	tab := Fig7(quick())
	// Range 1 (row 0) must be slower than the mid-range minimum, and the
	// largest range slower than the minimum (cache overflow).
	min := cell(t, tab, 0, 1)
	minRow := 0
	for i := range tab.Rows {
		if v := cell(t, tab, i, 1); v < min {
			min, minRow = v, i
		}
	}
	if minRow == 0 || minRow == len(tab.Rows)-1 {
		t.Fatalf("fig7 HW curve not U-shaped (min at row %d)", minRow)
	}
	if cell(t, tab, 0, 1) < 2*min {
		t.Fatalf("fig7 hot-bank penalty too small: %.2f vs min %.2f", cell(t, tab, 0, 1), min)
	}
}

func TestFig8PrivatizationGrowsWithRange(t *testing.T) {
	tab := Fig8(quick())
	// Within each n group, privatization time grows with the range.
	var lastN string
	prev := -1.0
	for i := range tab.Rows {
		n := tab.Rows[i][1]
		v := cell(t, tab, i, 3)
		if n != lastN {
			lastN, prev = n, v
			continue
		}
		if v <= prev {
			t.Fatalf("fig8: privatization not growing with range at row %d", i)
		}
		prev = v
	}
	// Largest range: speedup over 4x even at reduced scale.
	if sp := cell(t, tab, len(tab.Rows)-1, 4); sp < 4 {
		t.Fatalf("fig8 large-range speedup %.2f too small", sp)
	}
}

func TestFig9Shape(t *testing.T) {
	tab := Fig9(Options{Scale: 4})
	if len(tab.Rows) != 3 {
		t.Fatalf("fig9 rows: %d", len(tab.Rows))
	}
	csr, sw, hw := cell(t, tab, 0, 1), cell(t, tab, 1, 1), cell(t, tab, 2, 1)
	if !(hw < csr && csr < sw) {
		t.Fatalf("fig9 cycle ordering: CSR %.3f, EBE-SW %.3f, EBE-HW %.3f; want HW < CSR < SW", csr, sw, hw)
	}
	// EBE trades flops for memory references.
	if cell(t, tab, 2, 2) <= cell(t, tab, 0, 2) {
		t.Fatal("fig9: EBE-HW flops should exceed CSR")
	}
	if cell(t, tab, 2, 3) >= cell(t, tab, 0, 3) {
		t.Fatal("fig9: EBE-HW mem refs should be below CSR")
	}
}

func TestFig10Shape(t *testing.T) {
	tab := Fig10(Options{Scale: 4})
	no, sw, hw := cell(t, tab, 0, 1), cell(t, tab, 1, 1), cell(t, tab, 2, 1)
	if !(hw < no && no < sw) {
		t.Fatalf("fig10 cycle ordering: no-SA %.3f, SW %.3f, HW %.3f; want HW < no-SA < SW", no, sw, hw)
	}
	// Duplicated computation doubles kernel flops.
	if cell(t, tab, 0, 2) < 1.5*cell(t, tab, 2, 2) {
		t.Fatal("fig10: no-SA flops should be ~2x HW-SA")
	}
}

func TestFig11LatencyTolerance(t *testing.T) {
	tab := Fig11(quick())
	// Column 4 is mem-latency 256: a 64-entry store (last row) must beat a
	// 2-entry store (first row) by a wide margin.
	small := cell(t, tab, 0, 4)
	big := cell(t, tab, len(tab.Rows)-1, 4)
	if big*4 > small {
		t.Fatalf("fig11: 64 entries (%f us) should tolerate 256-cycle latency far better than 2 (%f us)", big, small)
	}
	// More entries never hurt, per column.
	for col := 1; col <= 7; col++ {
		for row := 1; row < len(tab.Rows); row++ {
			if cell(t, tab, row, col) > cell(t, tab, row-1, col)*1.05 {
				t.Fatalf("fig11: column %d not (weakly) improving with entries at row %d", col, row)
			}
		}
	}
}

func TestFig12CombiningLocality(t *testing.T) {
	tab := Fig12(quick())
	last := len(tab.Rows) - 1
	// At the lowest throughput (interval 16), 16 bins (combining works)
	// must beat 65536 bins for the 64-entry store.
	if cell(t, tab, last, 7) >= cell(t, tab, last, 8) {
		t.Fatal("fig12: combining should help the 16-bin case at low throughput")
	}
	// The wide case at interval 16 is throughput-bound: entries don't help.
	if first, lastV := cell(t, tab, 0, 8), cell(t, tab, last, 8); lastV < first*0.9 {
		t.Fatalf("fig12: wide low-throughput case should be insensitive to entries (%f -> %f)", first, lastV)
	}
}

func TestFig13Shape(t *testing.T) {
	tab := Fig13(Options{Scale: 8})
	if len(tab.Rows) != 10 {
		t.Fatalf("fig13 rows: %d", len(tab.Rows))
	}
	byLabel := map[string][]float64{}
	for i, r := range tab.Rows {
		var vals []float64
		for c := 1; c <= 4; c++ {
			vals = append(vals, cell(t, tab, i, c))
		}
		byLabel[r[0]] = vals
	}
	nlc := byLabel["narrow-low-comb"]
	nl := byLabel["narrow-low"]
	if nlc[3] <= nl[3] {
		t.Fatalf("fig13: combining (%f) should beat direct (%f) on narrow-low at 8 nodes", nlc[3], nl[3])
	}
	nh := byLabel["narrow-high"]
	if nh[3] <= nh[0]*1.5 {
		t.Fatalf("fig13: narrow-high should scale (%f -> %f)", nh[0], nh[3])
	}
	wl := byLabel["wide-low"]
	wlc := byLabel["wide-low-comb"]
	if wlc[3] > wl[3] {
		t.Fatalf("fig13: combining should not help wide data (%f vs %f)", wlc[3], wl[3])
	}
}

func TestAblationsRun(t *testing.T) {
	o := quick()
	for _, tab := range []Table{
		AblationDRAMSched(o),
		AblationSAPlacement(o),
		AblationBatchSize(o),
		AblationEagerCombine(o),
		AblationCombiningStore(o),
	} {
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: empty", tab.Title)
		}
		for i := range tab.Rows {
			if cell(t, tab, i, 1) <= 0 {
				t.Fatalf("%s: non-positive time", tab.Title)
			}
		}
	}
}

func TestAblationPlacementPerBankWins(t *testing.T) {
	tab := AblationSAPlacement(quick())
	if cell(t, tab, 0, 1) >= cell(t, tab, 1, 1) {
		t.Fatal("per-bank placement should beat a single unit")
	}
}

func TestAblationCombiningStoreMonotone(t *testing.T) {
	tab := AblationCombiningStore(quick())
	first := cell(t, tab, 0, 1)
	last := cell(t, tab, len(tab.Rows)-1, 1)
	if last >= first {
		t.Fatalf("more combining-store entries should help: %f -> %f", first, last)
	}
}
