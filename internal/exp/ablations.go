package exp

import (
	"scatteradd/internal/apps"
	"scatteradd/internal/dram"
	"scatteradd/internal/machine"
	"scatteradd/internal/mem"
	"scatteradd/internal/multinode"
	"scatteradd/internal/workload"
)

// Ablations beyond the paper's figures, exercising the design choices
// DESIGN.md calls out. Each returns a Table like the figure runners, and
// each fans its independent (workload, machine) runs out across the worker
// pool; every run builds its own workload and machine.

// AblationDRAMSched compares FR-FCFS memory access scheduling (the paper's
// cited mechanism) against strict FIFO on a cache-hostile histogram.
func AblationDRAMSched(o Options) Table {
	return o.checkpointed("ablation-dram-sched", ablationDRAMSched)
}

func ablationDRAMSched(o Options) Table {
	t := Table{
		Title:  "Ablation: DRAM scheduling policy (histogram n=16384, range 1M)",
		Header: []string{"policy", "us", "row_hit_rate"},
	}
	n := o.scaled(16384)
	pols := []dram.SchedPolicy{dram.FRFCFS, dram.FIFO}
	t.Rows = mapN(o, len(pols), func(i int) []string {
		pol := pols[i]
		cfg := machine.DefaultConfig()
		cfg.DRAM.Policy = pol
		cfg.LegacyStepping = o.Legacy
		cfg.Faults = o.Faults
		cfg.Shards = o.shards()
		m := machine.New(cfg)
		h := apps.NewHistogram(n, 1<<20, o.seed(0xAB1))
		res := h.RunHW(m)
		mustVerify(m, h, "ablation dram histogram")
		_, _, st := m.ComponentStats()
		hitRate := float64(st.RowHits) / float64(st.RowHits+st.RowMisses)
		return []string{pol.String(), f(us(res.Cycles)), f(hitRate)}
	})
	return t
}

// AblationSAPlacement compares one scatter-add unit per cache bank (the
// paper's Figure 4a placement) against a single unit at a single memory
// interface port.
func AblationSAPlacement(o Options) Table {
	return o.checkpointed("ablation-sa-placement", ablationSAPlacement)
}

func ablationSAPlacement(o Options) Table {
	t := Table{
		Title:  "Ablation: scatter-add unit placement (histogram n=16384, range 2048)",
		Header: []string{"placement", "us"},
	}
	n := o.scaled(16384)
	bankCounts := []int{8, 1}
	t.Rows = mapN(o, len(bankCounts), func(i int) []string {
		banks := bankCounts[i]
		cfg := machine.DefaultConfig()
		cfg.Cache.Banks = banks
		cfg.Cache.PortWidth = 8 / banks // keep total cache bandwidth fixed
		cfg.SA.PortWidth = 8 / banks
		cfg.LegacyStepping = o.Legacy
		cfg.Faults = o.Faults
		cfg.Shards = o.shards()
		m := machine.New(cfg)
		h := apps.NewHistogram(n, 2048, o.seed(0xAB2))
		res := h.RunHW(m)
		mustVerify(m, h, "ablation placement histogram")
		label := "per-bank (8 units)"
		if banks == 1 {
			label = "memory interface (1 unit)"
		}
		return []string{label, f(us(res.Cycles))}
	})
	return t
}

// AblationBatchSize sweeps the software sort&scan batch size (the paper
// reports 256 as its optimum on Merrimac).
func AblationBatchSize(o Options) Table {
	return o.checkpointed("ablation-batch-size", ablationBatchSize)
}

func ablationBatchSize(o Options) Table {
	t := Table{
		Title:  "Ablation: sort&scan batch size (histogram n=8192, range 2048)",
		Header: []string{"batch", "us"},
		Notes:  []string{"paper: 256 was the best batch size on Merrimac"},
	}
	n := o.scaled(8192)
	batches := []int{32, 64, 128, 256, 512, 1024, 2048, 4096}
	t.Rows = mapN(o, len(batches), func(i int) []string {
		batch := batches[i]
		h := apps.NewHistogram(n, 2048, o.seed(0xAB3))
		m := paperMachine(o)
		res := h.RunSortScan(m, batch)
		mustVerify(m, h, "ablation batch histogram")
		return []string{d(uint64(batch)), f(us(res.Cycles))}
	})
	return t
}

// AblationEagerCombine compares the paper's combining store against the
// EagerCombine extension (pre-combining buffered operands while the memory
// value is outstanding) on a high-collision histogram.
func AblationEagerCombine(o Options) Table {
	return o.checkpointed("ablation-eager-combine", ablationEagerCombine)
}

func ablationEagerCombine(o Options) Table {
	t := Table{
		Title:  "Ablation: eager operand pre-combining (histogram n=16384, range 64)",
		Header: []string{"mode", "us", "fu_ops"},
	}
	n := o.scaled(16384)
	modes := []bool{false, true}
	t.Rows = mapN(o, len(modes), func(i int) []string {
		eager := modes[i]
		cfg := machine.DefaultConfig()
		cfg.SA.EagerCombine = eager
		cfg.LegacyStepping = o.Legacy
		cfg.Faults = o.Faults
		cfg.Shards = o.shards()
		m := machine.New(cfg)
		h := apps.NewHistogram(n, 64, o.seed(0xAB4))
		res := h.RunHW(m)
		mustVerify(m, h, "ablation eager histogram")
		sa, _, _ := m.ComponentStats()
		label := "paper (chain after fill)"
		if eager {
			label = "eager pre-combine"
		}
		return []string{label, f(us(res.Cycles)), d(sa.FUOps)}
	})
	return t
}

// AblationOverlap measures §1's overlap claim — "the processor's main
// execution unit can continue running the program, while the sums are being
// updated in memory" — on the paper's own motivating pipeline: a histogram
// whose bins feed an equalization computation. Sequentially, the
// equalization kernel waits for the scatter-add to drain; with an
// asynchronous scatter-add it runs concurrently on the clusters (the
// equalization of the *previous* frame, in a streaming pipeline).
func AblationOverlap(o Options) Table { return o.checkpointed("ablation-overlap", ablationOverlap) }

func ablationOverlap(o Options) Table {
	t := Table{
		Title:  "Ablation: overlapping scatter-add with compute (histogram + equalization kernel)",
		Header: []string{"schedule", "us"},
		Notes:  []string{"paper §1: the core continues running while the scatter-add units work"},
	}
	n := o.scaled(32768)
	runSequential := func(h *apps.Histogram, m *machine.Machine, equalize machine.Op) machine.Result {
		res := h.RunHW(m)
		res.Add(m.RunOp(equalize))
		return res
	}
	runOverlapped := func(h *apps.Histogram, m *machine.Machine, equalize machine.Op) machine.Result {
		h.Init(m)
		var res machine.Result
		res.Add(m.RunOp(machine.LoadStream("hist-load", h.DataBase, h.N)))
		res.Add(m.RunOp(machine.IntKernel("hist-map", float64(h.N), float64(2*h.N))))
		sa := machine.ScatterAdd("hist-sa", mem.AddI64, workload.IndicesToAddrs(h.Idx, h.BinBase),
			[]mem.Word{mem.I64(1)})
		sa.Async = true
		res.Add(m.RunOp(sa))
		res.Add(m.RunOp(equalize)) // runs while the scatter-add drains
		res.Add(m.RunOp(machine.Fence()))
		return res
	}
	schedules := []struct {
		label, what string
		run         func(*apps.Histogram, *machine.Machine, machine.Op) machine.Result
	}{
		{"sequential", "ablation overlap sequential", runSequential},
		{"async scatter-add + overlapped kernel", "ablation overlap async", runOverlapped},
	}
	t.Rows = mapN(o, len(schedules), func(i int) []string {
		h := apps.NewHistogram(n, 2048, o.seed(0xAB6))
		equalize := machine.Kernel("equalize", float64(8*n), float64(2*n))
		m := paperMachine(o)
		res := schedules[i].run(h, m, equalize)
		mustVerify(m, h, schedules[i].what)
		return []string{schedules[i].label, f(us(res.Cycles))}
	})
	return t
}

// AblationWritePolicy compares write-allocate (the baseline) against
// write-no-allocate with a write-combining buffer on a pure result-stream
// write (the scatter phase of §3.1): full-line combining eliminates the
// fill traffic that write-allocate pays.
func AblationWritePolicy(o Options) Table {
	return o.checkpointed("ablation-write-policy", ablationWritePolicy)
}

func ablationWritePolicy(o Options) Table {
	t := Table{
		Title:  "Ablation: cache write policy on a 32K-word result stream",
		Header: []string{"policy", "us", "dram_reads", "dram_writes"},
	}
	n := o.scaled(32768)
	policies := []bool{false, true}
	t.Rows = mapN(o, len(policies), func(i int) []string {
		noAlloc := policies[i]
		vals := make([]mem.Word, n)
		for i := range vals {
			vals[i] = mem.F64(float64(i))
		}
		cfg := machine.DefaultConfig()
		cfg.Cache.WriteNoAllocate = noAlloc
		cfg.LegacyStepping = o.Legacy
		cfg.Faults = o.Faults
		cfg.Shards = o.shards()
		m := machine.New(cfg)
		res := m.RunOp(machine.StoreStream("result", 0, vals))
		m.FlushCaches()
		for i := 0; i < n; i += n / 16 {
			if m.Store().LoadF64(mem.Addr(i)) != float64(i) {
				panic("exp: write-policy ablation produced wrong data")
			}
		}
		_, _, ds := m.ComponentStats()
		label := "write-allocate"
		if noAlloc {
			label = "write-no-allocate + WCB"
		}
		return []string{label, f(us(res.Cycles)), d(ds.Reads), d(ds.Writes)}
	})
	return t
}

// AblationHierarchical evaluates the paper's §5 future-work proposal:
// arranging the nodes in a logical hierarchy so multi-node combining occurs
// in logarithmic instead of linear complexity. The workload is a hot-owner
// trace (one node owns every target bin), where linear sum-back funnels all
// other nodes' partial lines into the owner's single network port.
func AblationHierarchical(o Options) Table {
	return o.checkpointed("ablation-hierarchical", ablationHierarchical)
}

func ablationHierarchical(o Options) Table {
	t := Table{
		Title:  "Ablation: linear vs hierarchical (logarithmic) multi-node combining (hot-owner histogram)",
		Header: []string{"sum-back", "nodes", "GB/s"},
		Notes:  []string{"the paper proposes hierarchical combining as future work (§5)"},
	}
	const rng = 128
	n := o.scaled(65536)
	refs := make([]multinode.Ref, n)
	idx := workload.UniformIndices(n, rng, o.seed(0xAB7))
	for i, x := range idx {
		refs[i] = multinode.Ref{Addr: mem.Addr(x), Val: mem.I64(1)}
	}
	span := mem.Addr(rng+mem.LineWords) &^ (mem.LineWords - 1) // node 0 owns all bins
	type point struct {
		hier  bool
		nodes int
	}
	var points []point
	for _, hier := range []bool{false, true} {
		for _, nodes := range []int{2, 4, 8} {
			points = append(points, point{hier, nodes})
		}
	}
	// refs is shared read-only; each point builds its own System.
	t.Rows = mapN(o, len(points), func(i int) []string {
		p := points[i]
		cfg := multinode.DefaultConfig(p.nodes, 1, span)
		cfg.Combining = true
		cfg.Hierarchical = p.hier
		cfg.LegacyStepping = o.Legacy
		cfg.Faults = o.Faults
		cfg.Shards = o.shards()
		s := multinode.New(cfg, mem.AddI64)
		res := s.RunTrace(refs)
		label := "linear"
		if p.hier {
			label = "hierarchical"
		}
		return []string{label, d(uint64(p.nodes)), f(res.GBps())}
	})
	return t
}

// AblationCombiningStore sweeps the combining-store size on the full
// machine (the paper sweeps it only on the simplified memory of §4.4).
func AblationCombiningStore(o Options) Table {
	return o.checkpointed("ablation-combining-store", ablationCombiningStore)
}

func ablationCombiningStore(o Options) Table {
	t := Table{
		Title:  "Ablation: combining-store entries on the full machine (histogram n=16384, range 64K)",
		Header: []string{"entries", "us"},
	}
	n := o.scaled(16384)
	sizes := []int{2, 4, 8, 16, 32, 64}
	t.Rows = mapN(o, len(sizes), func(i int) []string {
		entries := sizes[i]
		cfg := machine.DefaultConfig()
		cfg.SA.Entries = entries
		cfg.LegacyStepping = o.Legacy
		cfg.Faults = o.Faults
		cfg.Shards = o.shards()
		m := machine.New(cfg)
		h := apps.NewHistogram(n, 65536, o.seed(0xAB5))
		res := h.RunHW(m)
		mustVerify(m, h, "ablation cs histogram")
		return []string{d(uint64(entries)), f(us(res.Cycles))}
	})
	return t
}
