package exp

import (
	"fmt"
	"strings"

	"scatteradd/internal/span"
)

// SpanRow labels one run's latency-attribution report inside a Table's span
// appendix (Options.CollectSpans). Rows appear in run (input) order, so the
// appendix is byte-identical for every worker count.
type SpanRow struct {
	Label  string
	Report span.Report
}

// newTracer returns a fresh per-run lifecycle tracer, or nil when span
// collection is off. Every concurrent run owns its own tracer, mirroring how
// every run owns its own machine and counter registry.
func (o Options) newTracer() *span.Tracer {
	if !o.CollectSpans {
		return nil
	}
	return span.New(o.spanRate())
}

// spanRate returns the effective sampling rate (1 in N issued operations).
func (o Options) spanRate() int {
	if o.SpanRate > 0 {
		return o.SpanRate
	}
	return 16
}

// spanReport aggregates a run's sampled ops into a latency-attribution
// report. A nil tracer yields a zero report.
func spanReport(tr *span.Tracer) span.Report {
	return span.Aggregate(tr.Ops())
}

// formatSpanRows renders the span appendix: one summary line per run with
// the queue/service split and the bottleneck stage, followed by the full
// per-stage breakdown of the run with the slowest mean (the figure's
// worst-case row, which is where attribution matters).
func formatSpanRows(rows []SpanRow, indent string) string {
	var b strings.Builder
	header := []string{"run", "ops", "mean_cyc", "p50", "p99", "queue%", "service%", "bottleneck"}
	cells := make([][]string, 0, len(rows))
	worst := -1
	for i, r := range rows {
		rep := r.Report
		q, s := rep.QueueCycles(), rep.ServiceCycles()
		att := q + s
		pct := func(v uint64) string {
			if att == 0 {
				return "-"
			}
			return fmt.Sprintf("%.0f%%", 100*float64(v)/float64(att))
		}
		bn := "-"
		if st, ok := rep.Bottleneck(); ok {
			bn = st.Stage.String()
		}
		cells = append(cells, []string{
			r.Label, fmt.Sprintf("%d", rep.Ops), fmt.Sprintf("%.1f", rep.Mean),
			fmt.Sprintf("%d", rep.P50), fmt.Sprintf("%d", rep.P99),
			pct(q), pct(s), bn,
		})
		if rep.Ops > 0 && (worst < 0 || rep.Mean > rows[worst].Report.Mean) {
			worst = i
		}
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range cells {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(row []string) {
		b.WriteString(indent)
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for _, row := range cells {
		line(row)
	}
	if worst >= 0 {
		fmt.Fprintf(&b, "%sslowest run (%s), per-stage attribution:\n", indent, rows[worst].Label)
		b.WriteString(rows[worst].Report.Format(indent + "  "))
	}
	return b.String()
}
