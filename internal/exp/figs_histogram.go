package exp

import (
	"fmt"

	"scatteradd/internal/apps"
	"scatteradd/internal/machine"
	"scatteradd/internal/span"
	"scatteradd/internal/stats"
)

// paperMachine returns the Table 1 configuration.
func paperMachine(o Options) *machine.Machine {
	cfg := machine.DefaultConfig()
	cfg.LegacyStepping = o.Legacy
	cfg.Faults = o.Faults
	cfg.Shards = o.shards()
	return machine.New(cfg)
}

// mustVerify panics when an application run produced a wrong result — every
// experiment doubles as a correctness check.
func mustVerify(m *machine.Machine, v interface{ Verify(*machine.Machine) error }, what string) {
	if err := v.Verify(m); err != nil {
		panic(fmt.Sprintf("exp: %s failed verification: %v", what, err))
	}
}

// histRun is one independent (workload, machine) histogram simulation: each
// task constructs its own Histogram from the point's seed and its own
// machine, so concurrent runs share nothing.
type histRun struct {
	n, rng int
	seed   uint64
	what   string
	run    func(*apps.Histogram, *machine.Machine) machine.Result
}

func runHW(h *apps.Histogram, m *machine.Machine) machine.Result   { return h.RunHW(m) }
func runSort(h *apps.Histogram, m *machine.Machine) machine.Result { return h.RunSortScan(m, 0) }
func runPriv(h *apps.Histogram, m *machine.Machine) machine.Result { return h.RunPrivatization(m, 0) }

// histOut is one histogram run's cycle count plus (when collecting) the
// run's performance-counter snapshot and span report.
type histOut struct {
	cycles uint64
	snap   stats.Snapshot
	rep    span.Report
}

// runHistograms fans the runs out across the worker pool and returns their
// cycle counts in input order, plus the merged counter snapshot and the
// per-run span reports when Options.CollectStats / CollectSpans are set.
// Each run's machine owns its own registry and its own tracer, so the
// parallel workers never share state; assembling in input order keeps the
// result identical for every worker count.
func runHistograms(o Options, runs []histRun) ([]uint64, stats.Snapshot, []SpanRow) {
	outs := mapN(o, len(runs), func(i int) histOut {
		r := runs[i]
		h := apps.NewHistogram(r.n, r.rng, r.seed)
		m := paperMachine(o)
		tr := o.newTracer()
		m.SetSpanTracer(tr)
		res := r.run(h, m)
		mustVerify(m, h, r.what)
		out := histOut{cycles: res.Cycles}
		if o.CollectStats {
			out.snap = m.StatsSnapshot()
		}
		if o.CollectSpans {
			out.rep = spanReport(tr)
		}
		return out
	})
	cyc := make([]uint64, len(outs))
	snaps := make([]stats.Snapshot, len(outs))
	var spanRows []SpanRow
	for i, x := range outs {
		cyc[i] = x.cycles
		snaps[i] = x.snap
		if o.CollectSpans {
			label := fmt.Sprintf("%s n=%d rng=%d", runs[i].what, runs[i].n, runs[i].rng)
			spanRows = append(spanRows, SpanRow{Label: label, Report: x.rep})
		}
	}
	if !o.CollectStats {
		return cyc, stats.Snapshot{}, spanRows
	}
	return cyc, stats.MergeAll(snaps), spanRows
}

// Fig6 reproduces Figure 6: histogram execution time for input lengths
// 256-8192 over a 2,048-bin range, hardware scatter-add versus software
// sort + segmented scan. The paper reports both scaling O(n) with hardware
// 3x-11x faster.
func Fig6(o Options) Table { return o.checkpointed("fig6", fig6) }

func fig6(o Options) Table {
	t := Table{
		Title:  "Figure 6: histogram vs input length (range 2048), HW scatter-add vs sort&segmented-scan",
		Header: []string{"n", "hw_us", "sortscan_us", "speedup"},
		Notes: []string{
			"paper: both O(n); HW wins by 3x (small n) up to 11x (large n)",
		},
	}
	const rng = 2048
	// Figure 6's input sizes are themselves the x-axis; Scale only trims the
	// largest points on quick runs.
	var ns []int
	for _, n := range []int{256, 512, 1024, 2048, 4096, 8192} {
		if o.Scale > 1 && n > 8192/o.Scale {
			continue
		}
		ns = append(ns, n)
	}
	runs := make([]histRun, 0, 2*len(ns))
	for _, n := range ns {
		seed := o.seed(0xF16_6 + uint64(n))
		runs = append(runs,
			histRun{n, rng, seed, "fig6 HW histogram", runHW},
			histRun{n, rng, seed, "fig6 SW histogram", runSort},
		)
	}
	cyc, snap, spans := runHistograms(o, runs)
	t.Counters, t.Spans = snap, spans
	for r, n := range ns {
		hw, sw := cyc[2*r], cyc[2*r+1]
		t.Rows = append(t.Rows, []string{
			d(uint64(n)), f(us(hw)), f(us(sw)),
			f(float64(sw) / float64(hw)),
		})
	}
	return t
}

// Fig7 reproduces Figure 7: histogram execution time for 32,768 inputs over
// index ranges 1 to 4M. The paper shows the hardware's hot-bank penalty at
// tiny ranges, a fast middle region, and a cache-overflow knee at large
// ranges; sort&scan is flat until large ranges.
func Fig7(o Options) Table { return o.checkpointed("fig7", fig7) }

func fig7(o Options) Table {
	t := Table{
		Title:  "Figure 7: histogram vs index range (n=32768), HW scatter-add vs sort&segmented-scan",
		Header: []string{"range", "hw_us", "sortscan_us"},
		Notes: []string{
			"paper: HW slow at tiny ranges (hot bank), fastest mid-range, degrades past cache capacity;",
			"sort&scan roughly flat with a rise at very large ranges",
		},
	}
	n := o.scaled(32768)
	ranges := []int{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20}
	runs := make([]histRun, 0, 2*len(ranges))
	for _, rng := range ranges {
		seed := o.seed(0xF16_7 + uint64(rng))
		runs = append(runs,
			histRun{n, rng, seed, "fig7 HW histogram", runHW},
			histRun{n, rng, seed, "fig7 SW histogram", runSort},
		)
	}
	cyc, snap, spans := runHistograms(o, runs)
	t.Counters, t.Spans = snap, spans
	for r, rng := range ranges {
		t.Rows = append(t.Rows, []string{d(uint64(rng)), f(us(cyc[2*r])), f(us(cyc[2*r+1]))})
	}
	return t
}

// Fig8 reproduces Figure 8: histogram with privatization versus hardware
// scatter-add for input lengths 1,024 and 32,768 over ranges 128-8,192.
// The paper shows privatization's O(m*n) cost growing with the range,
// with hardware more than an order of magnitude faster at large ranges.
func Fig8(o Options) Table { return o.checkpointed("fig8", fig8) }

func fig8(o Options) Table {
	t := Table{
		Title:  "Figure 8: histogram, HW scatter-add vs privatization (n in {1024, 32768})",
		Header: []string{"range", "n", "hw_us", "privatization_us", "speedup"},
		Notes: []string{
			"paper: privatization time grows with range (O(mn)); HW speedup exceeds 10x at large ranges",
		},
	}
	type point struct{ rng, n int }
	var points []point
	runs := make([]histRun, 0, 16)
	for _, n0 := range []int{1024, 32768} {
		n := o.scaled(n0)
		for _, rng := range []int{128, 512, 2048, 8192} {
			seed := o.seed(0xF16_8 + uint64(rng*n0))
			points = append(points, point{rng, n})
			runs = append(runs,
				histRun{n, rng, seed, "fig8 HW histogram", runHW},
				histRun{n, rng, seed, "fig8 privatization histogram", runPriv},
			)
		}
	}
	cyc, snap, spans := runHistograms(o, runs)
	t.Counters, t.Spans = snap, spans
	for r, p := range points {
		hw, pr := cyc[2*r], cyc[2*r+1]
		t.Rows = append(t.Rows, []string{
			d(uint64(p.rng)), d(uint64(p.n)), f(us(hw)), f(us(pr)),
			f(float64(pr) / float64(hw)),
		})
	}
	return t
}
