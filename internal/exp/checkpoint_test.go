package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"scatteradd/internal/fault"
)

// quickOpts returns tiny-scale options writing checkpoints into dir
// (Scale 32 keeps exactly one Fig6 input size, so runs still happen).
func quickOpts(dir string) Options {
	return Options{Scale: 32, Jobs: 2, CheckpointDir: dir}
}

// TestCheckpointRoundTrip: a figure computed once is served from its
// snapshot afterward, byte-for-byte.
func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	o := quickOpts(dir)
	t1 := Fig6(o)
	path := filepath.Join(dir, "fig6.json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	// Prove the second call is served from disk: plant a sentinel title in
	// the snapshot and watch it come back.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var cf checkpointFile
	if err := json.Unmarshal(data, &cf); err != nil {
		t.Fatal(err)
	}
	if cf.Table.String() != t1.String() {
		t.Fatal("snapshot does not round-trip the rendered table")
	}
	cf.Table.Title = "SENTINEL"
	planted, _ := json.Marshal(cf)
	if err := os.WriteFile(path, planted, 0o644); err != nil {
		t.Fatal(err)
	}
	if t2 := Fig6(o); t2.Title != "SENTINEL" {
		t.Fatalf("second call recomputed instead of loading the snapshot (title %q)", t2.Title)
	}
}

// TestCheckpointCorruptAndMismatch: torn snapshots and option changes both
// force a recompute; the recomputed table matches the original.
func TestCheckpointCorruptAndMismatch(t *testing.T) {
	dir := t.TempDir()
	o := quickOpts(dir)
	t1 := Fig6(o)
	path := filepath.Join(dir, "fig6.json")

	// Corrupt JSON (a kill mid-write can at worst leave the old file, but a
	// corrupt one must still be survivable).
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if t2 := Fig6(o); t2.String() != t1.String() {
		t.Fatal("recompute after corruption diverged from the original")
	}
	if _, ok := o.loadCheckpoint(path); !ok {
		t.Fatal("recompute did not rewrite a valid snapshot")
	}

	// A different option fingerprint must not be served the old table.
	o2 := o
	o2.Seed = 99
	if t3 := Fig6(o2); t3.String() == t1.String() {
		t.Fatal("seed change produced an identical table — likely served stale checkpoint")
	}
	if t4 := Fig6(o2); t4.String() == t1.String() {
		t.Fatal("stale checkpoint served after fingerprint change")
	}
}

// TestCheckpointWithAppendices: counter and span appendices survive the JSON
// round trip byte-for-byte (they are part of the rendered output).
func TestCheckpointWithAppendices(t *testing.T) {
	dir := t.TempDir()
	o := quickOpts(dir)
	o.CollectStats = true
	o.CollectSpans = true
	t1 := Fig6(o)
	if !strings.Contains(t1.String(), "counter appendix") {
		t.Fatal("expected a counter appendix in the rendered table")
	}
	t2 := Fig6(o) // served from snapshot
	if t1.String() != t2.String() {
		t.Fatal("appendices did not survive the checkpoint round trip")
	}
}

// TestFaultedFigureDeterministicAcrossJobs: with chaos-rate injection, a
// figure's rendered output is identical for every worker count — the fault
// schedule is a function of (seed, component, event index), not scheduling.
func TestFaultedFigureDeterministicAcrossJobs(t *testing.T) {
	run := func(jobs int) string {
		o := Options{Scale: 256, Jobs: jobs, Faults: fault.DefaultChaos()}
		return Fig13(o).String()
	}
	seq := run(1)
	if par := run(4); par != seq {
		t.Fatal("faulted Fig13 output depends on worker count")
	}
	if unfaulted := Fig13(Options{Scale: 256, Jobs: 1}).String(); unfaulted == seq {
		t.Fatal("chaos-rate faults left Fig13 timings untouched — injection not wired")
	}
}

// TestFingerprintSemantics pins which options participate in the snapshot
// match: anything that changes rendered bytes (scale, seed, fault knobs,
// stepping mode, appendix collection) must invalidate, while pure
// parallelism knobs (Jobs, Shards) must not — output is byte-identical for
// every value of either, so a sequential resume of a parallel sweep still
// hits its snapshots.
func TestFingerprintSemantics(t *testing.T) {
	base := Options{Scale: 8, Seed: 1, Faults: fault.DefaultChaos()}
	fp := base.Fingerprint()

	invalidate := map[string]Options{}
	o := base
	o.Scale = 16
	invalidate["scale"] = o
	o = base
	o.Seed = 2
	invalidate["seed"] = o
	o = base
	o.Legacy = true
	invalidate["legacy"] = o
	o = base
	o.CollectStats = true
	invalidate["stats"] = o
	o = base
	o.Faults.Seed = 0xBAD
	invalidate["fault seed"] = o
	o = base
	o.Faults = base.Faults.Scale(0.5)
	invalidate["fault scale"] = o
	o = base
	o.Faults.DegradeThreshold = 99
	invalidate["degrade threshold"] = o
	for name, opt := range invalidate {
		if opt.Fingerprint() == fp {
			t.Errorf("changed %s did not change the fingerprint", name)
		}
	}

	hit := map[string]Options{}
	o = base
	o.Jobs = 8
	hit["jobs"] = o
	o = base
	o.Shards = 4
	hit["shards"] = o
	o = base
	o.CheckpointDir = "/elsewhere"
	hit["checkpoint dir"] = o
	o = base
	o.Progress = func(done, total int) {}
	hit["progress hook"] = o
	for name, opt := range hit {
		if opt.Fingerprint() != fp {
			t.Errorf("changed %s must not change the fingerprint", name)
		}
	}
}

// TestCheckpointResumeAcrossShards drives the fingerprint contract end to
// end: a snapshot taken by a sharded sweep is served to a sequential resume
// (and vice versa), while a changed fault seed forces a recompute.
func TestCheckpointResumeAcrossShards(t *testing.T) {
	dir := t.TempDir()
	// Scale 512 (Fig13 is heavy; the fingerprint contract is size-blind).
	quick := func() Options { return Options{Scale: 512, Jobs: 2, CheckpointDir: dir} }
	sharded := quick()
	sharded.Shards = 4
	t1 := Fig13(sharded)

	// Plant a sentinel so a snapshot hit is distinguishable from an
	// identical recompute.
	path := filepath.Join(dir, "fig13.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	var cf checkpointFile
	if err := json.Unmarshal(data, &cf); err != nil {
		t.Fatal(err)
	}
	cf.Table.Title = "SENTINEL"
	planted, _ := json.Marshal(cf)
	if err := os.WriteFile(path, planted, 0o644); err != nil {
		t.Fatal(err)
	}

	sequential := quick() // Shards zero value
	if t2 := Fig13(sequential); t2.Title != "SENTINEL" {
		t.Fatal("sequential resume recomputed instead of hitting the sharded snapshot")
	}

	reseeded := quick()
	reseeded.Faults = fault.DefaultChaos()
	reseeded.Faults.Seed = 0xFACE
	if t3 := Fig13(reseeded); t3.Title == "SENTINEL" {
		t.Fatal("changed fault seed was served the stale snapshot")
	}
	_ = t1
}

// TestFingerprintCoversFaultConfig is a tripwire for options-struct drift:
// fingerprint enumerates fault.Config's output-affecting fields with stable
// keys, so a new field must be added there (and here) deliberately.
func TestFingerprintCoversFaultConfig(t *testing.T) {
	const knownFields = 14
	if n := reflect.TypeOf(fault.Config{}).NumField(); n != knownFields {
		t.Fatalf("fault.Config has %d fields (expected %d): add the new field to Options.fingerprint with a stable key, then update this count", n, knownFields)
	}
	if n := reflect.TypeOf(Options{}).NumField(); n != 13 {
		t.Fatalf("Options has %d fields: decide whether the new option affects output, wire it into fingerprint if so, then update this count", n)
	}
}

// TestProgressHookCountsRuns: the Progress observer reports every completed
// simulation of a fan-out, ending at done == total, for both the sequential
// and the parallel runner paths — and its presence changes no rendered byte.
func TestProgressHookCountsRuns(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		var mu sync.Mutex
		var calls []int
		total := -1
		o := Options{Scale: 32, Jobs: jobs}
		o.Progress = func(done, n int) {
			mu.Lock()
			calls = append(calls, done)
			total = n
			mu.Unlock()
		}
		withHook := Fig6(o)
		if len(calls) == 0 {
			t.Fatalf("jobs=%d: progress hook never called", jobs)
		}
		if got := len(calls); got != total {
			t.Fatalf("jobs=%d: %d progress calls for a fan-out of %d", jobs, got, total)
		}
		seen := make(map[int]bool, len(calls))
		for _, d := range calls {
			if d < 1 || d > total || seen[d] {
				t.Fatalf("jobs=%d: bad done sequence %v (total %d)", jobs, calls, total)
			}
			seen[d] = true
		}
		plain := Fig6(Options{Scale: 32, Jobs: jobs})
		if withHook.String() != plain.String() {
			t.Fatalf("jobs=%d: progress hook changed rendered output", jobs)
		}
	}
}

// TestWriteFileAtomic: the commit helper replaces the target in one step,
// leaves no temp litter, and refuses an unwritable directory with an error
// instead of a panic.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "index.json")
	if err := WriteFileAtomic(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "v2" {
		t.Fatalf("read back %q, %v", data, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp litter left behind: %v", ents)
	}
	if err := WriteFileAtomic(filepath.Join(dir, "missing", "x"), []byte("y")); err == nil {
		t.Fatal("write into a missing directory reported success")
	}
}

// TestSaveCheckpointSurvivesBadDir: an unwritable checkpoint location must
// degrade the sweep to uncheckpointed, never panic — and the next load must
// miss cleanly.
func TestSaveCheckpointSurvivesBadDir(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "occupied")
	if err := os.WriteFile(blocker, []byte("file, not dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	o := Options{Scale: 32, CheckpointDir: filepath.Join(blocker, "nested")}
	path := filepath.Join(o.CheckpointDir, "fig6.json")
	o.saveCheckpoint(path, Table{Title: "x"}) // must not panic
	if _, ok := o.loadCheckpoint(path); ok {
		t.Fatal("load reported a hit under an unwritable dir")
	}
}

// TestFaultedCheckpointKeyedOnFaults: a snapshot taken with injection must
// not be served to a fault-free request, and vice versa.
func TestFaultedCheckpointKeyedOnFaults(t *testing.T) {
	dir := t.TempDir()
	base := quickOpts(dir)
	faulted := base
	faulted.Faults = fault.DefaultChaos()
	tb := Fig13(base)
	tf := Fig13(faulted)
	if tb.String() == tf.String() {
		t.Fatal("faulted and fault-free Fig13 identical — injection not wired")
	}
	if again := Fig13(base); again.String() != tb.String() {
		t.Fatal("fault-free request served the faulted snapshot")
	}
	if again := Fig13(faulted); again.String() != tf.String() {
		t.Fatal("faulted request served the fault-free snapshot")
	}
}
