package exp

import (
	"fmt"
	"strconv"
	"strings"

	"scatteradd/internal/plot"
)

// cellF parses a numeric cell, returning NaN-ish failure as ok=false.
func cellF(t Table, row, col int) (float64, bool) {
	if row >= len(t.Rows) || col >= len(t.Rows[row]) {
		return 0, false
	}
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	return v, err == nil
}

// colSeries builds one series from an x column and a y column.
func colSeries(t Table, label string, xCol, yCol int) plot.Series {
	s := plot.Series{Label: label}
	for r := range t.Rows {
		x, okx := cellF(t, r, xCol)
		y, oky := cellF(t, r, yCol)
		if okx && oky {
			s.X = append(s.X, x)
			s.Y = append(s.Y, y)
		}
	}
	return s
}

// bars renders a horizontal bar chart of one numeric column, labeled by the
// first column — used for the grouped-bar figures (9 and 10).
func bars(t Table, valueCol int, unit string) string {
	var b strings.Builder
	maxV, maxLabel := 0.0, 0
	for r := range t.Rows {
		if v, ok := cellF(t, r, valueCol); ok && v > maxV {
			maxV = v
		}
		if len(t.Rows[r][0]) > maxLabel {
			maxLabel = len(t.Rows[r][0])
		}
	}
	if maxV == 0 {
		return "(no plottable values)\n"
	}
	const width = 50
	fmt.Fprintf(&b, "%s (%s)\n", t.Header[valueCol], unit)
	for r := range t.Rows {
		v, ok := cellF(t, r, valueCol)
		if !ok {
			continue
		}
		n := int(v / maxV * width)
		fmt.Fprintf(&b, "  %-*s %s %.3g\n", maxLabel, t.Rows[r][0], strings.Repeat("#", n), v)
	}
	return b.String()
}

// Plot renders an ASCII chart of a figure's table, mirroring the paper's
// own presentation (log-log curves for 6-8, grouped bars for 9-10, curve
// families for 11-13). fig identifies which figure produced t.
func Plot(fig int, t Table) string {
	switch fig {
	case 6:
		return plot.Render([]plot.Series{
			colSeries(t, "scatter-add", 0, 1),
			colSeries(t, "sort&seg-scan", 0, 2),
		}, plot.Options{Title: t.Title, LogX: true, LogY: true, XLabel: "n", YLabel: "us"})
	case 7:
		return plot.Render([]plot.Series{
			colSeries(t, "scatter-add", 0, 1),
			colSeries(t, "sort&seg-scan", 0, 2),
		}, plot.Options{Title: t.Title, LogX: true, LogY: true, XLabel: "range", YLabel: "us"})
	case 8:
		// Split the hw/privatization series by input size (column 1).
		sizes := map[string]bool{}
		var series []plot.Series
		for r := range t.Rows {
			n := t.Rows[r][1]
			if sizes[n] {
				continue
			}
			sizes[n] = true
			hw := plot.Series{Label: "scatter-add n=" + n}
			pr := plot.Series{Label: "privatization n=" + n}
			for rr := range t.Rows {
				if t.Rows[rr][1] != n {
					continue
				}
				x, _ := cellF(t, rr, 0)
				if y, ok := cellF(t, rr, 2); ok {
					hw.X = append(hw.X, x)
					hw.Y = append(hw.Y, y)
				}
				if y, ok := cellF(t, rr, 3); ok {
					pr.X = append(pr.X, x)
					pr.Y = append(pr.Y, y)
				}
			}
			series = append(series, hw, pr)
		}
		return plot.Render(series, plot.Options{Title: t.Title, LogX: true, LogY: true, XLabel: "range", YLabel: "us"})
	case 9, 10:
		return bars(t, 1, "Mcycles")
	case 11, 12:
		var series []plot.Series
		for c := 1; c < len(t.Header); c++ {
			series = append(series, colSeries(t, t.Header[c], 0, c))
		}
		return plot.Render(series, plot.Options{Title: t.Title, LogX: true, LogY: true, XLabel: "CS entries", YLabel: "us"})
	case 13:
		nodes := []float64{1, 2, 4, 8}
		var series []plot.Series
		for r := range t.Rows {
			s := plot.Series{Label: t.Rows[r][0]}
			for c := 1; c <= 4 && c < len(t.Rows[r]); c++ {
				if y, ok := cellF(t, r, c); ok {
					s.X = append(s.X, nodes[c-1])
					s.Y = append(s.Y, y)
				}
			}
			series = append(series, s)
		}
		return plot.Render(series, plot.Options{Title: t.Title, XLabel: "nodes", YLabel: "GB/s"})
	case 14:
		// One curve per interconnect configuration: packets crossing the
		// fabric root/bisection vs machine size (the figure's headline).
		nodes := []float64{16, 64, 256, 1024}
		var series []plot.Series
		for r := range t.Rows {
			if t.Rows[r][1] != "root-pkts" {
				continue
			}
			s := plot.Series{Label: t.Rows[r][0]}
			for c := 2; c < len(t.Rows[r]) && c-2 < len(nodes); c++ {
				if y, ok := cellF(t, r, c); ok {
					s.X = append(s.X, nodes[c-2])
					s.Y = append(s.Y, y)
				}
			}
			series = append(series, s)
		}
		return plot.Render(series, plot.Options{Title: t.Title, LogX: true, XLabel: "nodes", YLabel: "root-pkts"})
	}
	return fmt.Sprintf("(no plot defined for figure %d)\n", fig)
}
