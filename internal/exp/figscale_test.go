package exp

import (
	"strconv"
	"testing"
)

// fig14Cell extracts one metric row of one config as a float slice over the
// node-count columns.
func fig14Row(t *testing.T, tab Table, config, metric string) []float64 {
	t.Helper()
	for _, r := range tab.Rows {
		if r[0] != config || r[1] != metric {
			continue
		}
		out := make([]float64, 0, len(r)-2)
		for _, c := range r[2:] {
			v, err := strconv.ParseFloat(c, 64)
			if err != nil {
				t.Fatalf("fig14 %s/%s cell %q: %v", config, metric, c, err)
			}
			out = append(out, v)
		}
		return out
	}
	t.Fatalf("fig14: no row %s/%s", config, metric)
	return nil
}

// TestFig14Shape pins the scale-out figure's claim: at 256 nodes and up,
// in-network combining cuts the packets crossing the fabric's root/bisection
// well below the flat crossbar's, and below the same tree without combining.
func TestFig14Shape(t *testing.T) {
	tab := Fig14(Options{Scale: 128})
	if want := len(fig14Configs) * len(fig14Metrics); len(tab.Rows) != want {
		t.Fatalf("fig14 rows: %d want %d", len(tab.Rows), want)
	}
	flat := fig14Row(t, tab, "flat", "root-pkts")
	tree := fig14Row(t, tab, "tree", "root-pkts")
	treeComb := fig14Row(t, tab, "tree+comb", "root-pkts")
	merged := fig14Row(t, tab, "tree+comb", "combined")
	// Columns are 16, 64, 256, 1024 nodes; the claim is about >= 256.
	for c := 2; c < 4; c++ {
		if treeComb[c] >= flat[c] {
			t.Fatalf("col %d: tree+comb root-pkts %.0f not below flat %.0f", c, treeComb[c], flat[c])
		}
		if treeComb[c] >= tree[c] {
			t.Fatalf("col %d: combining did not reduce root traffic (%.0f vs %.0f)", c, treeComb[c], tree[c])
		}
		if merged[c] == 0 {
			t.Fatalf("col %d: no in-switch merges", c)
		}
	}
	// Flat takes exactly one hop per packet; the tree takes more.
	flatHops := fig14Row(t, tab, "flat", "hops")
	treeHops := fig14Row(t, tab, "tree", "hops")
	for c := range flatHops {
		if treeHops[c] <= flatHops[c] {
			t.Fatalf("col %d: tree hops %.0f not above flat %.0f", c, treeHops[c], flatHops[c])
		}
	}
}

// TestFig14TopologyFilter: Options.Topology restricts the sweep to one
// configuration, and unknown names fail loudly.
func TestFig14TopologyFilter(t *testing.T) {
	tab := Fig14(Options{Scale: 1024, Topology: "tree+comb", FanIn: 2})
	if len(tab.Rows) != len(fig14Metrics) {
		t.Fatalf("filtered fig14 rows: %d want %d", len(tab.Rows), len(fig14Metrics))
	}
	for _, r := range tab.Rows {
		if r[0] != "tree+comb" {
			t.Fatalf("unexpected config row %q", r[0])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unknown topology")
		}
	}()
	Fig14(Options{Scale: 1024, Topology: "torus"})
}
