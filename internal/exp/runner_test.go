package exp

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 100} {
		o := Options{Jobs: jobs}
		const n = 57
		var hits [n]atomic.Int32
		o.forEach(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("jobs=%d: index %d ran %d times", jobs, i, got)
			}
		}
	}
}

func TestMapNPreservesInputOrder(t *testing.T) {
	o := Options{Jobs: 8}
	got := mapN(o, 100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("mapN[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestForEachPropagatesWorkerPanic(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		o := Options{Jobs: jobs}
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("jobs=%d: panic not propagated", jobs)
				}
				if !strings.Contains(r.(string), "boom at 3") {
					t.Fatalf("jobs=%d: wrong panic value %v", jobs, r)
				}
			}()
			o.forEach(8, func(i int) {
				if i == 3 {
					panic("boom at 3")
				}
			})
		}()
	}
}

// TestForEachLowestIndexPanicWins: when several tasks panic, the re-raised
// failure must always be the lowest-index one (with its stack), not
// whichever worker happened to grab the capture mutex first — so a
// mustVerify failure reproduces identically at any worker count.
func TestForEachLowestIndexPanicWins(t *testing.T) {
	for _, jobs := range []int{2, 4, 16} {
		for trial := 0; trial < 10; trial++ {
			o := Options{Jobs: jobs}
			var recovered any
			func() {
				defer func() { recovered = recover() }()
				o.forEach(32, func(i int) {
					// Indices 5, 6, and 20 all fail; higher workers often
					// reach the recover first under contention.
					if i == 5 || i == 6 || i == 20 {
						panic(fmt.Sprintf("boom at %d", i))
					}
				})
			}()
			msg, ok := recovered.(string)
			if !ok {
				t.Fatalf("jobs=%d: recovered %T, want string", jobs, recovered)
			}
			if !strings.Contains(msg, "task 5: boom at 5") {
				t.Fatalf("jobs=%d: reported panic is not the lowest index: %q", jobs, msg)
			}
			if strings.Contains(msg, "boom at 6") || strings.Contains(msg, "boom at 20") {
				t.Fatalf("jobs=%d: higher-index panic leaked into the report: %q", jobs, msg)
			}
			if !strings.Contains(msg, "task stack:") {
				t.Fatalf("jobs=%d: panic carries no captured stack: %q", jobs, msg)
			}
		}
	}
}

func TestJobsDefaultsToGOMAXPROCS(t *testing.T) {
	if (Options{}).jobs() < 1 {
		t.Fatal("jobs() must be at least 1")
	}
	if got := (Options{Jobs: 3}).jobs(); got != 3 {
		t.Fatalf("jobs() = %d, want 3", got)
	}
}

// TestReportDeterministicAcrossJobs is the end-to-end determinism contract
// of the parallel runner: the full report — markdown bytes and every check —
// must be identical whether the independent simulations run sequentially or
// on 8 workers, and that must hold on more than one dataset seed.
func TestReportDeterministicAcrossJobs(t *testing.T) {
	for _, seed := range []uint64{0, 0xDECAFBAD} {
		serial := Options{Scale: 16, Seed: seed, Jobs: 1}
		parallel := Options{Scale: 16, Seed: seed, Jobs: 8}
		md1, checks1 := Report(serial)
		md8, checks8 := Report(parallel)
		if md1 != md8 {
			t.Fatalf("seed %#x: report markdown differs between Jobs=1 and Jobs=8", seed)
		}
		if len(checks1) != len(checks8) {
			t.Fatalf("seed %#x: %d checks vs %d", seed, len(checks1), len(checks8))
		}
		for i := range checks1 {
			if checks1[i] != checks8[i] {
				t.Fatalf("seed %#x: check %d differs: %+v vs %+v", seed, i, checks1[i], checks8[i])
			}
		}
	}
}

// TestFigureTablesDeterministicAcrossJobs pins per-figure byte-determinism
// at the table level (cheaper scale than the full report, larger worker
// count than CPUs).
func TestFigureTablesDeterministicAcrossJobs(t *testing.T) {
	for _, fig := range []func(Options) Table{Fig6, Fig9, Fig11, Fig13} {
		serial := fig(Options{Scale: 16, Jobs: 1})
		parallel := fig(Options{Scale: 16, Jobs: 16})
		if serial.String() != parallel.String() {
			t.Fatalf("%s: rendering differs between Jobs=1 and Jobs=16:\n%s\nvs\n%s",
				serial.Title, serial.String(), parallel.String())
		}
	}
}
