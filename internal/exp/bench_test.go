package exp

import (
	"testing"

	"scatteradd/internal/machine"
)

// fig10Bench replays the Figure 10 hardware scatter-add run — the moldyn
// gather/kernel/async-scatter pipeline that dominates the single-machine
// figures' wall-clock — at the given shard count. One machine per
// iteration, like the experiment driver; the workload is cloned so each
// iteration sees pristine force arrays.
func fig10Bench(b *testing.B, shards int) {
	b.Helper()
	md := Fig10Input(Options{Scale: 4})
	cfg := machine.DefaultConfig()
	cfg.Shards = shards
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := machine.New(cfg)
		res := md.Clone().RunHWSA(m)
		if res.Cycles == 0 {
			b.Fatal("empty fig10 run")
		}
		m.Close()
	}
}

// BenchmarkFig10Shard1 is the sequential twin of BenchmarkFig10Sharded: the
// same run through the same partitioned memory phase with the pool off.
func BenchmarkFig10Shard1(b *testing.B) { fig10Bench(b, 1) }

// BenchmarkFig10Sharded runs the same simulation with the machine's bank
// clusters spread over 4 shards. benchgate compares its median against
// BenchmarkFig10Shard1 on multi-core runners, mirroring the Fig 13
// multi-node gate (differ proves the outputs byte-identical, so the delta
// is pure wall-clock).
func BenchmarkFig10Sharded(b *testing.B) { fig10Bench(b, 4) }
