package exp

import (
	"fmt"
	"strconv"
	"strings"
)

// Check is one verified claim of the paper, evaluated against the
// regenerated results.
type Check struct {
	Figure string
	Claim  string
	Pass   bool
	Detail string
}

// cellNum parses the numeric cell (r, c) of a table. A malformed or missing
// cell is a bug in a figure runner that would otherwise silently flip a
// paper-claim check, so it panics with the figure, row, and column rather
// than returning a default.
func cellNum(t Table, r, c int) float64 {
	if r < 0 || r >= len(t.Rows) {
		panic(fmt.Sprintf("exp: %q: row %d out of range (table has %d rows)", t.Title, r, len(t.Rows)))
	}
	if c < 0 || c >= len(t.Rows[r]) {
		panic(fmt.Sprintf("exp: %q: column %d out of range in row %d (row has %d cells)",
			t.Title, c, r, len(t.Rows[r])))
	}
	v, err := strconv.ParseFloat(t.Rows[r][c], 64)
	if err != nil {
		panic(fmt.Sprintf("exp: %q: cell (row %d, col %d) = %q is not numeric: %v",
			t.Title, r, c, t.Rows[r][c], err))
	}
	return v
}

// Report regenerates every table and figure, evaluates the paper's headline
// claims against the measured shapes, and renders a markdown report. It
// returns the markdown and the individual check results. Each figure fans
// its independent runs out across o.Jobs workers; the figures themselves run
// in report order so the markdown is byte-identical for every worker count.
func Report(o Options) (string, []Check) {
	var b strings.Builder
	var checks []Check
	add := func(figure, claim string, pass bool, detail string) {
		checks = append(checks, Check{Figure: figure, Claim: claim, Pass: pass, Detail: detail})
	}
	num := cellNum
	section := func(t Table) {
		fmt.Fprintf(&b, "## %s\n\n```\n%s```\n\n", t.Title, t.String())
	}

	fmt.Fprintf(&b, "# Reproduction report — Scatter-Add in Data Parallel Architectures (HPCA 2005)\n\n")
	fmt.Fprintf(&b, "Dataset scale: 1/%d of the paper's sizes.\n\n", max(1, o.Scale))

	section(Table1())

	// Figure 6.
	f6 := Fig6(o)
	section(f6)
	last := len(f6.Rows) - 1
	allWin := true
	for r := range f6.Rows {
		if num(f6, r, 3) < 1 {
			allWin = false
		}
	}
	add("Fig. 6", "hardware scatter-add beats sort&scan at every input length", allWin,
		fmt.Sprintf("speedups %.1fx..%.1fx", num(f6, 0, 3), num(f6, last, 3)))
	add("Fig. 6", "speedup grows with input length (3x to 11x in the paper)",
		num(f6, last, 3) > num(f6, 0, 3),
		fmt.Sprintf("%.1fx -> %.1fx", num(f6, 0, 3), num(f6, last, 3)))

	// Figure 7.
	f7 := Fig7(o)
	section(f7)
	minV, minR := num(f7, 0, 1), 0
	for r := range f7.Rows {
		if v := num(f7, r, 1); v < minV {
			minV, minR = v, r
		}
	}
	add("Fig. 7", "hot-bank penalty at tiny ranges, cache knee at large (U-shape)",
		minR > 0 && minR < len(f7.Rows)-1,
		fmt.Sprintf("minimum at range %s", f7.Rows[minR][0]))

	// Figure 8.
	f8 := Fig8(o)
	section(f8)
	lastF8 := len(f8.Rows) - 1
	add("Fig. 8", "privatization loses by over an order of magnitude at large ranges",
		num(f8, lastF8, 4) > 4, // scale-tolerant threshold
		fmt.Sprintf("largest-range speedup %.1fx", num(f8, lastF8, 4)))

	// Figure 9.
	f9 := Fig9(o)
	section(f9)
	csr, sw9, hw9 := num(f9, 0, 1), num(f9, 1, 1), num(f9, 2, 1)
	add("Fig. 9", "without HW scatter-add, CSR beats EBE (2.2x in the paper)", csr < sw9,
		fmt.Sprintf("EBE-SW/CSR = %.2fx", sw9/csr))
	add("Fig. 9", "with HW scatter-add, EBE beats CSR (1.45x in the paper)", hw9 < csr,
		fmt.Sprintf("CSR/EBE-HW = %.2fx", csr/hw9))

	// Figure 10.
	f10 := Fig10(o)
	section(f10)
	no, sw10, hw10 := num(f10, 0, 1), num(f10, 1, 1), num(f10, 2, 1)
	add("Fig. 10", "software scatter-add is so slow that duplicating computation wins (3.1x in the paper)",
		no < sw10, fmt.Sprintf("SW-SA/no-SA = %.2fx", sw10/no))
	add("Fig. 10", "hardware scatter-add beats the best software variant (1.76x in the paper)",
		hw10 < no && hw10 < sw10, fmt.Sprintf("no-SA/HW-SA = %.2fx", no/hw10))

	// Figure 11.
	f11 := Fig11(o)
	section(f11)
	lastF11 := len(f11.Rows) - 1
	add("Fig. 11", "64 combining-store entries tolerate even 256-cycle memory latency",
		num(f11, lastF11, 4) < num(f11, 0, 4)/3,
		fmt.Sprintf("2 entries: %.1fus, 64 entries: %.1fus at latency 256", num(f11, 0, 4), num(f11, lastF11, 4)))

	// Figure 12.
	f12 := Fig12(o)
	section(f12)
	lastF12 := len(f12.Rows) - 1
	add("Fig. 12", "low memory throughput cannot be overcome by a larger store for wide data",
		num(f12, lastF12, 8) > num(f12, 0, 8)*0.8,
		fmt.Sprintf("64K bins at interval 16: %.1fus (2 entries) vs %.1fus (64)", num(f12, 0, 8), num(f12, lastF12, 8)))
	add("Fig. 12", "combining absorbs requests when the index range is narrow",
		num(f12, lastF12, 7) < num(f12, lastF12, 8),
		fmt.Sprintf("16 bins %.1fus vs 64K bins %.1fus at interval 16", num(f12, lastF12, 7), num(f12, lastF12, 8)))

	// Figure 13.
	f13 := Fig13(o)
	section(f13)
	row := func(label string) int {
		for r := range f13.Rows {
			if f13.Rows[r][0] == label {
				return r
			}
		}
		return -1
	}
	nh, nl, nlc := row("narrow-high"), row("narrow-low"), row("narrow-low-comb")
	wl, wlc := row("wide-low"), row("wide-low-comb")
	add("Fig. 13", "narrow data scales on the high-bandwidth network",
		num(f13, nh, 4) > 1.5*num(f13, nh, 1),
		fmt.Sprintf("%.1f -> %.1f GB/s", num(f13, nh, 1), num(f13, nh, 4)))
	// Threshold is scale-tolerant: at reduced trace sizes the fixed flush
	// overhead blunts combining's advantage (7x at full scale).
	add("Fig. 13", "cache combining lets even the low-bandwidth network scale on narrow data (5.7x in the paper)",
		num(f13, nlc, 4) > 1.2*num(f13, nl, 4),
		fmt.Sprintf("combining %.1f vs direct %.1f GB/s at 8 nodes", num(f13, nlc, 4), num(f13, nl, 4)))
	add("Fig. 13", "combining does not help wide data (overheads reduce performance)",
		num(f13, wlc, 4) <= num(f13, wl, 4),
		fmt.Sprintf("combining %.1f vs direct %.1f GB/s at 8 nodes", num(f13, wlc, 4), num(f13, wl, 4)))

	// Verdict table.
	fmt.Fprintf(&b, "## Claim checks\n\n| figure | claim | result | measured |\n|---|---|---|---|\n")
	for _, c := range checks {
		verdict := "PASS"
		if !c.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s |\n", c.Figure, c.Claim, verdict, c.Detail)
	}
	return b.String(), checks
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
