package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock is a manually stepped clock for deterministic stage accounting.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time                 { return c.t }
func (c *fakeClock) step(d time.Duration) time.Time { c.t = c.t.Add(d); return c.t }

func TestDisabledTelemetryAddsNoAllocs(t *testing.T) {
	var o *Observer // disabled
	allocs := testing.AllocsPerRun(100, func() {
		tr := o.Begin("/v1/run", "inbound-id")
		start := tr.Now()
		tr.Stage(StageQuota, start)
		tr.Stage(StageQueue, start)
		tr.SetRequest("fig6", "tenant")
		tr.SetCache("hit")
		tr.StageExcluding(StageCache, start, StageRun)
		tr.Stage(StageEncode, start)
		if tr.ID() != "" {
			t.Fatal("disabled handle minted an id")
		}
		tr.Finish(200)
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry allocated %v allocs/op, want 0", allocs)
	}
}

func TestRequestAccounting(t *testing.T) {
	clk := newFakeClock()
	o := New(Config{Now: clk.now})

	tr := o.Begin("/v1/run", "")
	if got := tr.ID(); got != "r-1" {
		t.Fatalf("minted id = %q, want r-1", got)
	}
	q := tr.Now()
	clk.step(2 * time.Millisecond)
	tr.Stage(StageQuota, q) // 2ms quota

	qu := clk.now()
	clk.step(8 * time.Millisecond)
	tr.Stage(StageQueue, qu) // 8ms queue

	do := clk.now()
	run := clk.now()
	clk.step(50 * time.Millisecond)
	tr.Stage(StageRun, run)                     // 50ms run inside the cache Do
	clk.step(5 * time.Millisecond)              // 5ms of cache bookkeeping
	tr.StageExcluding(StageCache, do, StageRun) // 55ms elapsed - 50ms run = 5ms
	tr.SetRequest("fig6", "acme")
	tr.SetCache("miss")

	enc := clk.now()
	clk.step(1 * time.Millisecond)
	tr.Stage(StageEncode, enc) // 1ms encode
	tr.Finish(200)

	o.mu.Lock()
	defer o.mu.Unlock()
	if o.inflight != 0 || o.inflightMax != 1 {
		t.Fatalf("inflight=%d max=%d, want 0/1", o.inflight, o.inflightMax)
	}
	key := seriesKey{endpoint: "/v1/run", class: "2xx", figure: "fig6", cache: "miss"}
	if o.requests[key] != 1 {
		t.Fatalf("requests[%+v] = %d, want 1", key, o.requests[key])
	}
	total := o.duration["/v1/run"]
	if total == nil || total.count != 1 {
		t.Fatalf("duration histogram missing or wrong count: %+v", total)
	}
	wantTotal := (66 * time.Millisecond).Seconds()
	if total.sum != wantTotal {
		t.Fatalf("total sum = %v, want %v", total.sum, wantTotal)
	}
	wantStage := map[Stage]float64{
		StageQuota:  0.002,
		StageQueue:  0.008,
		StageCache:  0.005,
		StageRun:    0.050,
		StageEncode: 0.001,
	}
	var stageSum float64
	for s, want := range wantStage {
		h := o.stages[stageKey{endpoint: "/v1/run", stage: s}]
		if h == nil {
			t.Fatalf("stage %v histogram missing", s)
		}
		if h.sum != want {
			t.Errorf("stage %v sum = %v, want %v", s, h.sum, want)
		}
		stageSum += h.sum
	}
	if stageSum != wantTotal {
		t.Fatalf("stage sums %v do not reconcile with total %v", stageSum, wantTotal)
	}
}

func TestStageAccumulates(t *testing.T) {
	clk := newFakeClock()
	o := New(Config{Now: clk.now})
	tr := o.Begin("/v1/run", "")
	first := clk.now()
	clk.step(3 * time.Millisecond)
	tr.Stage(StageQueue, first)
	clk.step(10 * time.Millisecond) // unattributed gap
	second := clk.now()
	clk.step(4 * time.Millisecond)
	tr.Stage(StageQueue, second)
	sp := tr.stages[StageQueue]
	if sp.dur != 7*time.Millisecond {
		t.Fatalf("accumulated dur = %v, want 7ms", sp.dur)
	}
	if sp.off != 0 {
		t.Fatalf("offset = %v, want 0 (first visit)", sp.off)
	}
	tr.Finish(200)
}

func TestIDPropagation(t *testing.T) {
	o := New(Config{})
	cases := []struct {
		inbound string
		want    string // "" = minted
	}{
		{"client-id-42", "client-id-42"},
		{"a.b_c-D", "a.b_c-D"},
		{"", ""},
		{"has space", ""},
		{"bad\nnewline", ""},
		{`quote"inject`, ""},
		{strings.Repeat("x", 65), ""},
	}
	for _, tc := range cases {
		tr := o.Begin("/v1/run", tc.inbound)
		got := tr.ID()
		if tc.want != "" && got != tc.want {
			t.Errorf("inbound %q: id = %q, want propagated %q", tc.inbound, got, tc.want)
		}
		if tc.want == "" && !strings.HasPrefix(got, "r-") {
			t.Errorf("inbound %q: id = %q, want minted r-<seq>", tc.inbound, got)
		}
		tr.Finish(200)
	}
}

func TestAccessLog(t *testing.T) {
	clk := newFakeClock()
	var buf bytes.Buffer
	o := New(Config{Now: clk.now, AccessLog: &buf})

	// A /v1/ request logs one line.
	tr := o.Begin("/v1/run", "req-7")
	start := tr.Now()
	clk.step(12 * time.Millisecond)
	tr.Stage(StageRun, start)
	tr.SetRequest("fig6", "acme")
	tr.SetFingerprint("deadbeef")
	tr.SetCache("miss")
	tr.Finish(200)

	// A non-/v1/ request does not.
	ht := o.Begin("/healthz", "")
	ht.Finish(200)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("access log has %d lines, want 1: %q", len(lines), buf.String())
	}
	var rec AccessRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("access log line is not JSON: %v\n%s", err, lines[0])
	}
	if rec.ID != "req-7" || rec.Endpoint != "/v1/run" || rec.Tenant != "acme" ||
		rec.Figure != "fig6" || rec.Fingerprint != "deadbeef" || rec.Cache != "miss" ||
		rec.Code != 200 || rec.Outcome != "ok" {
		t.Fatalf("unexpected record: %+v", rec)
	}
	if rec.TotalMs != 12 {
		t.Fatalf("total_ms = %v, want 12", rec.TotalMs)
	}
	if rec.StageMs["run"] != 12 {
		t.Fatalf("stage_ms[run] = %v, want 12", rec.StageMs)
	}
	if _, err := time.Parse(time.RFC3339Nano, rec.Time); err != nil {
		t.Fatalf("ts %q not RFC3339Nano: %v", rec.Time, err)
	}
}

func TestOutcomeNames(t *testing.T) {
	cases := map[int]string{
		200: "ok", 204: "ok", 304: "ok",
		400: "client-error", 404: "client-error",
		429: "throttled", 503: "unavailable", 500: "error",
	}
	for code, want := range cases {
		if got := outcome(code); got != want {
			t.Errorf("outcome(%d) = %q, want %q", code, got, want)
		}
	}
}

func TestContextRoundTrip(t *testing.T) {
	o := New(Config{})
	tr := o.Begin("/v1/run", "")
	ctx := NewContext(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %v, want %v", got, tr)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext on empty ctx = %v, want nil", got)
	}
	// The nil handle survives the round trip as nil.
	ctx = NewContext(context.Background(), nil)
	if got := FromContext(ctx); got != nil {
		t.Fatalf("nil handle round trip = %v, want nil", got)
	}
	tr.Finish(200)
}

func TestConcurrentRequests(t *testing.T) {
	o := New(Config{AccessLog: &bytes.Buffer{}})
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 50; j++ {
				tr := o.Begin("/v1/run", "")
				tr.Stage(StageRun, tr.Now())
				tr.SetRequest("fig6", "t")
				tr.SetCache("hit")
				tr.Finish(200)
				o.SlowTraces()
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.inflight != 0 {
		t.Fatalf("inflight = %d after drain, want 0", o.inflight)
	}
	key := seriesKey{endpoint: "/v1/run", class: "2xx", figure: "fig6", cache: "hit"}
	if o.requests[key] != 400 {
		t.Fatalf("requests = %d, want 400", o.requests[key])
	}
}

func TestBuildRecord(t *testing.T) {
	b := ReadBuild("scatteraddd")
	if b.Service != "scatteraddd" {
		t.Fatalf("service = %q", b.Service)
	}
	if b.GoVersion == "" || b.OS == "" || b.Arch == "" {
		t.Fatalf("runtime fields missing: %+v", b)
	}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var round map[string]any
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	for _, k := range []string{"service", "go_version", "os", "arch"} {
		if _, ok := round[k]; !ok {
			t.Errorf("field %q missing from JSON", k)
		}
	}
}
