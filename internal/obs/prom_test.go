package obs

import (
	"strings"
	"testing"
	"time"

	"scatteradd/internal/stats"
)

// render drives a small deterministic workload through an observer and
// returns its exposition.
func render(t *testing.T, o *Observer, snap stats.Snapshot) string {
	t.Helper()
	var b strings.Builder
	if err := WriteMetrics(&b, o, snap); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	return b.String()
}

func sampleObserver() (*Observer, *fakeClock) {
	clk := newFakeClock()
	o := New(Config{Now: clk.now})
	for i, tc := range []struct {
		cache string
		code  int
		dur   time.Duration
	}{
		{"miss", 200, 40 * time.Millisecond},
		{"hit", 200, 1 * time.Millisecond},
		{"coalesced", 200, 30 * time.Millisecond},
		{"", 429, 100 * time.Microsecond},
	} {
		tr := o.Begin("/v1/run", "")
		start := tr.Now()
		clk.step(tc.dur)
		if tc.code == 200 {
			if tc.cache == "miss" {
				tr.Stage(StageRun, start)
			} else {
				tr.Stage(StageCache, start)
			}
			tr.SetRequest("fig6", "acme")
			tr.SetCache(tc.cache)
		} else {
			tr.Stage(StageQuota, start)
		}
		tr.Finish(tc.code)
		_ = i
	}
	return o, clk
}

func sampleSnapshot() stats.Snapshot {
	return stats.Snapshot{Entries: []stats.Entry{
		{Key: "server/cache.hits", Kind: stats.KindCounter, Val: 12},
		{Key: "server/queue[0].depth", Kind: stats.KindGauge, Val: 3},
	}}
}

func TestWriteMetricsDeterministic(t *testing.T) {
	o, _ := sampleObserver()
	snap := sampleSnapshot()
	a := render(t, o, snap)
	b := render(t, o, snap)
	if a != b {
		t.Fatalf("two renders of an idle observer differ:\n%s\n---\n%s", a, b)
	}
}

func TestWriteMetricsContent(t *testing.T) {
	o, _ := sampleObserver()
	out := render(t, o, sampleSnapshot())

	for _, want := range []string{
		`scatteradd_http_requests_total{cache="miss",class="2xx",endpoint="/v1/run",figure="fig6"} 1`,
		`scatteradd_http_requests_total{cache="hit",class="2xx",endpoint="/v1/run",figure="fig6"} 1`,
		`scatteradd_http_requests_total{cache="",class="4xx",endpoint="/v1/run",figure=""} 1`,
		`scatteradd_http_inflight_requests 0`,
		`scatteradd_http_request_duration_seconds_count{endpoint="/v1/run"} 4`,
		`scatteradd_http_stage_duration_seconds_count{endpoint="/v1/run",stage="run"} 1`,
		`scatteradd_http_stage_duration_seconds_count{endpoint="/v1/run",stage="cache"} 2`,
		"# TYPE scatteradd_http_requests_total counter",
		"# TYPE scatteradd_http_request_duration_seconds histogram",
		"scatteradd_stats_server_cache_hits_total 12",
		"scatteradd_stats_server_queue_0_depth 3",
		"# TYPE scatteradd_stats_server_queue_0_depth gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestRenderParsesCleanly(t *testing.T) {
	o, _ := sampleObserver()
	out := render(t, o, sampleSnapshot())
	scrape, err := ParseProm([]byte(out))
	if err != nil {
		t.Fatalf("ParseProm on own render: %v\n%s", err, out)
	}
	if problems := scrape.Lint(); len(problems) != 0 {
		t.Fatalf("Lint on own render: %v\n%s", problems, out)
	}
	// Sum over the counter family recovers the request count.
	if got := scrape.Sum(MetricRequests, nil); got != 4 {
		t.Fatalf("Sum(requests) = %v, want 4", got)
	}
	if got := scrape.Sum(MetricRequests, map[string]string{"class": "2xx"}); got != 3 {
		t.Fatalf("Sum(requests, 2xx) = %v, want 3", got)
	}
	if got := scrape.Sum(MetricRequests, map[string]string{"cache": "miss"}); got != 1 {
		t.Fatalf("Sum(requests, miss) = %v, want 1", got)
	}
	// Stage histogram sums reconcile with the total-duration sum.
	var stageSum float64
	for _, sm := range scrape.Samples {
		if sm.Name == MetricStageDuration+"_sum" {
			stageSum += sm.Value
		}
	}
	totalSum := scrape.Sum(MetricDuration+"_sum", nil)
	if diff := stageSum - totalSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("stage sums %v != total sum %v", stageSum, totalSum)
	}
}

func TestWriteMetricsNilObserver(t *testing.T) {
	out := render(t, nil, sampleSnapshot())
	if strings.Contains(out, MetricRequests) {
		t.Fatalf("nil observer rendered RED metrics:\n%s", out)
	}
	if !strings.Contains(out, "scatteradd_stats_server_cache_hits_total 12") {
		t.Fatalf("nil observer dropped stats families:\n%s", out)
	}
	if _, err := ParseProm([]byte(out)); err != nil {
		t.Fatalf("parse: %v", err)
	}
}

func TestParsePromLabels(t *testing.T) {
	in := `# TYPE m_total counter
m_total{a="x y",b="q\"uo\\te",c="nl\nhere"} 3
m_total{a="other"} 1.5
plain 7
`
	s, err := ParseProm([]byte(in))
	if err != nil {
		t.Fatalf("ParseProm: %v", err)
	}
	if len(s.Samples) != 3 {
		t.Fatalf("parsed %d samples, want 3", len(s.Samples))
	}
	v, ok := s.Value("m_total", map[string]string{"a": "x y", "b": `q"uo\te`, "c": "nl\nhere"})
	if !ok || v != 3 {
		t.Fatalf("escaped-label lookup = %v,%v", v, ok)
	}
	if got := s.Sum("m_total", nil); got != 4.5 {
		t.Fatalf("Sum = %v, want 4.5", got)
	}
}

func TestParsePromErrors(t *testing.T) {
	for _, in := range []string{
		"m_total{a=\"unterminated\n",
		"m_total{a=unquoted} 1\n",
		"m_total{a=\"x\"}\n", // missing value
		"m_total notanumber\n",
		"# TYPE m_total bogus\n",
	} {
		if _, err := ParseProm([]byte(in)); err == nil {
			t.Errorf("ParseProm(%q) accepted malformed input", in)
		}
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{
			"no type",
			"orphan 1\n",
			"no TYPE declared",
		},
		{
			"counter without _total",
			"# TYPE hits counter\nhits 3\n",
			"does not end in _total",
		},
		{
			"duplicate series",
			"# TYPE m_total counter\nm_total{a=\"x\"} 1\nm_total{a=\"x\"} 2\n",
			"duplicate series",
		},
		{
			"negative counter",
			"# TYPE m_total counter\nm_total -1\n",
			"negative counter",
		},
		{
			"bad metric name",
			"# TYPE bad-name counter\nbad-name 1\n",
			"invalid metric name",
		},
		{
			"non-cumulative buckets",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"not cumulative",
		},
		{
			"inf bucket mismatch",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
			"!= _count",
		},
		{
			"missing inf bucket",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 1\nh_count 2\n",
			"missing +Inf",
		},
	}
	for _, tc := range cases {
		s, err := ParseProm([]byte(tc.in))
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		problems := s.Lint()
		found := false
		for _, p := range problems {
			if strings.Contains(p, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: Lint() = %v, want a problem containing %q", tc.name, problems, tc.want)
		}
	}
}

func TestCheckMonotonic(t *testing.T) {
	before, err := ParseProm([]byte(
		"# TYPE m_total counter\nm_total 5\n# TYPE g gauge\ng 10\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 0.5\nh_count 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	after, err := ParseProm([]byte(
		"# TYPE m_total counter\nm_total 7\n# TYPE g gauge\ng 2\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 0.9\nh_count 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if problems := CheckMonotonic(before, after); len(problems) != 0 {
		t.Fatalf("forward progress flagged: %v", problems)
	}
	// Gauge decrease (g 10 -> 2) is allowed; counter decrease is not.
	if problems := CheckMonotonic(after, before); len(problems) == 0 {
		t.Fatal("counter regression not flagged")
	} else {
		joined := strings.Join(problems, "; ")
		if !strings.Contains(joined, "m_total") || strings.Contains(joined, "series g ") {
			t.Fatalf("wrong series flagged: %v", problems)
		}
	}
	// A disappeared series is flagged too.
	gone, _ := ParseProm([]byte("# TYPE m_total counter\n"))
	if problems := CheckMonotonic(before, gone); len(problems) == 0 {
		t.Fatal("disappeared series not flagged")
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"server/cache.hits":  "server_cache_hits",
		"queue[3]/depth":     "queue_3_depth",
		"already_clean":      "already_clean",
		"__lead/and/trail__": "lead_and_trail",
		"a..b":               "a_b",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
