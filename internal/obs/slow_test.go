package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"scatteradd/internal/span"
)

func trace(id string, total time.Duration) SlowTrace {
	t := SlowTrace{
		ID:       id,
		Endpoint: "/v1/run",
		Figure:   "fig6",
		Cache:    "miss",
		Code:     200,
		Start:    time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		Total:    total,
	}
	t.Stages[StageRun] = StageSpan{Off: 0, Dur: total, Visited: true}
	return t
}

func TestSlowRingRetainsSlowest(t *testing.T) {
	r := slowRing{max: 3}
	for i, d := range []time.Duration{
		5 * time.Millisecond, 50 * time.Millisecond, 10 * time.Millisecond,
		1 * time.Millisecond,  // faster than everything retained: dropped
		40 * time.Millisecond, // evicts the 5ms trace
		10 * time.Millisecond, // equal to the current fastest: dropped
	} {
		r.offer(trace(fmt.Sprintf("r-%d", i), d))
	}
	if len(r.traces) != 3 {
		t.Fatalf("ring holds %d, want 3", len(r.traces))
	}
	got := map[string]bool{}
	for _, tr := range r.traces {
		got[tr.ID] = true
	}
	for _, want := range []string{"r-1", "r-2", "r-4"} {
		if !got[want] {
			t.Errorf("ring missing %s (have %v)", want, got)
		}
	}
}

func TestSlowRingDisabled(t *testing.T) {
	r := slowRing{max: 0}
	r.offer(trace("r-1", time.Second))
	if len(r.traces) != 0 {
		t.Fatal("disabled ring retained a trace")
	}
}

func TestSlowTracesOrdering(t *testing.T) {
	clk := newFakeClock()
	o := New(Config{Now: clk.now, SlowN: 8})
	for _, d := range []time.Duration{
		3 * time.Millisecond, 9 * time.Millisecond, 1 * time.Millisecond,
	} {
		tr := o.Begin("/v1/run", "")
		start := tr.Now()
		clk.step(d)
		tr.Stage(StageRun, start)
		tr.SetRequest("fig6", "t")
		tr.SetCache("miss")
		tr.Finish(200)
	}
	got := o.SlowTraces()
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Total > got[i-1].Total {
			t.Fatalf("not sorted slowest-first: %v then %v", got[i-1].Total, got[i].Total)
		}
	}
	if got[0].Total != 9*time.Millisecond {
		t.Fatalf("slowest = %v, want 9ms", got[0].Total)
	}
	// Nil observer: empty, not a panic.
	var disabled *Observer
	if traces := disabled.SlowTraces(); traces != nil {
		t.Fatalf("nil observer SlowTraces = %v", traces)
	}
}

func TestSlowSummaryJSON(t *testing.T) {
	tr := trace("r-9", 25*time.Millisecond)
	tr.Tenant = "acme"
	data, err := json.Marshal(tr.Summary())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["id"] != "r-9" || m["total_ms"] != 25.0 || m["tenant"] != "acme" {
		t.Fatalf("summary = %v", m)
	}
	stages, ok := m["stage_ms"].(map[string]any)
	if !ok || stages["run"] != 25.0 {
		t.Fatalf("stage_ms = %v", m["stage_ms"])
	}
}

func TestWriteSlowPerfettoValidates(t *testing.T) {
	traces := []SlowTrace{
		trace("r-1", 40*time.Millisecond),
		trace("r-2", 5*time.Millisecond),
	}
	traces[0].Stages[StageQueue] = StageSpan{Off: 0, Dur: 2 * time.Millisecond, Visited: true}
	traces[0].Stages[StageRun] = StageSpan{Off: 2 * time.Millisecond, Dur: 38 * time.Millisecond, Visited: true}

	var buf bytes.Buffer
	if err := WriteSlowPerfetto(&buf, traces); err != nil {
		t.Fatalf("WriteSlowPerfetto: %v", err)
	}
	n, err := span.ValidateTraceJSON(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace fails validation: %v\n%s", err, buf.String())
	}
	// Five slices (2 request + 3 stage) plus 9 metadata events (2
	// process_name, 2 "ops" threads, 5 stage-track thread_names).
	if n != 14 {
		t.Fatalf("validated %d events, want 14", n)
	}
	out := buf.String()
	for _, want := range []string{"r-1 /v1/run fig6 cache=miss http=200 (40.0 ms)", `"queue"`, `"run"`} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q", want)
		}
	}
}
