package obs

import (
	"encoding/json"
	"net/http"
	"runtime"
	"runtime/debug"
)

// Build identifies the running binary for /buildz: the Go runtime, the
// module path/version, and the VCS stamp debug.ReadBuildInfo embeds when the
// binary was built from a checkout.
type Build struct {
	Service     string `json:"service"`
	GoVersion   string `json:"go_version"`
	OS          string `json:"os"`
	Arch        string `json:"arch"`
	Module      string `json:"module,omitempty"`
	Version     string `json:"version,omitempty"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

// ReadBuild assembles the Build record for a named service.
func ReadBuild(service string) Build {
	b := Build{
		Service:   service,
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
	}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Module = info.Main.Path
	b.Version = info.Main.Version
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.VCSRevision = s.Value
		case "vcs.time":
			b.VCSTime = s.Value
		case "vcs.modified":
			b.VCSModified = s.Value == "true"
		}
	}
	return b
}

// BuildHandler serves ReadBuild(service) as JSON.
func BuildHandler(service string) http.HandlerFunc {
	build := ReadBuild(service)
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(build)
	}
}
