// Package obs is the serving layer's observability stack: where
// internal/stats counts simulator hardware events and internal/span traces
// the cycles of one memory operation, obs answers the operator's question
// about the service built on top of them — "where did this request's 800 ms
// go: quota wait, admission queue, cache lookup, simulation, or encode?"
//
// It mirrors the paper's §5 methodology (cycle-level attribution of
// scatter-add latency across AG/bank/combining stages) at the HTTP layer:
// every request is decomposed into the same queue-vs-service stages the
// simulator reports for memory operations, and the results are exported
// three ways:
//
//   - RED metrics in Prometheus text exposition format (prom.go): request
//     counters labeled by endpoint, status class, figure, and cache state;
//     an in-flight gauge; fixed-bucket latency histograms per stage.
//   - Per-request lifecycle traces with a propagated X-Request-Id, the
//     slowest N of which are retained in a bounded ring and exported as
//     Perfetto JSON through the internal/span exporter (slow.go).
//   - A structured NDJSON access log, one line per request (this file).
//
// The contract is the same as span's: zero allocation and near-zero cost
// when disabled. A nil *Observer produces nil *Req handles, and every method
// on both is safe (and free) on a nil receiver, so a server without
// telemetry pays one predictable branch per hook.
package obs

import (
	"context"
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"time"
)

// Stage identifies one segment of a request's path through the serving
// pipeline. Stages are disjoint sub-intervals of the request's total
// duration, so the per-stage histogram sums always reconcile with the total
// request duration histogram (CheckScrape in internal/server proves it).
type Stage uint8

const (
	// StageQuota is the per-tenant token-bucket admission check.
	StageQuota Stage = iota
	// StageQueue is time spent waiting in the bounded admission queue for a
	// simulation worker — the serving layer's queueing delay.
	StageQueue
	// StageCache is result-cache residency: the LRU lookup, plus (for
	// coalesced requests) the wait on the in-flight leader, excluding any
	// simulation this request ran itself.
	StageCache
	// StageRun is simulation compute owned by this request (zero for cache
	// hits and coalesced followers — nothing was simulated).
	StageRun
	// StageEncode is response rendering and the write back to the client.
	StageEncode

	// NumStages is the stage count; it indexes per-stage arrays.
	NumStages
)

var stageNames = [NumStages]string{
	StageQuota:  "quota",
	StageQueue:  "queue",
	StageCache:  "cache",
	StageRun:    "run",
	StageEncode: "encode",
}

// String returns the stage's metric label value.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Class returns "queue" for contention stages and "service" for stages that
// model the service doing work — the same decomposition the simulator's span
// report applies to memory operations.
func (s Stage) Class() string {
	if s == StageQuota || s == StageQueue || s == StageCache {
		return "queue"
	}
	return "service"
}

// DurationBuckets are the fixed histogram bucket upper bounds, in seconds.
// They are deliberately identical for every stage and endpoint so scrapes
// from different servers are directly comparable (the Spatter lesson:
// standardized measurement output is what makes results usable by others).
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// hist is a fixed-bucket latency histogram (non-cumulative storage; the
// Prometheus renderer accumulates).
type hist struct {
	buckets  []uint64 // one per DurationBuckets bound; overflow only in count
	count    uint64
	sum      float64 // seconds
	overflow uint64
}

func newHist() *hist { return &hist{buckets: make([]uint64, len(DurationBuckets))} }

func (h *hist) observe(sec float64) {
	placed := false
	for i, b := range DurationBuckets {
		if sec <= b {
			h.buckets[i]++
			placed = true
			break
		}
	}
	if !placed {
		h.overflow++
	}
	h.count++
	h.sum += sec
}

// seriesKey is the label set of one requests_total series.
type seriesKey struct {
	endpoint, class, figure, cache string
}

// stageKey is the label set of one stage-duration histogram.
type stageKey struct {
	endpoint string
	stage    Stage
}

// Config sizes an Observer. The zero value retains 32 slow traces and writes
// no access log.
type Config struct {
	// SlowN bounds the slow-trace ring: the slowest SlowN requests by total
	// duration are retained for /debug/slowz (0 = 32, negative = none).
	SlowN int
	// AccessLog, when non-nil, receives one NDJSON line per /v1/* request.
	// Writes are serialized by the Observer.
	AccessLog io.Writer
	// Now overrides the clock for tests (nil = time.Now).
	Now func() time.Time
}

// Observer collects service telemetry. A nil *Observer is the disabled
// state: Begin returns a nil *Req and every hook is a no-op costing one
// branch and zero allocations.
type Observer struct {
	now  func() time.Time
	alog *accessLogger

	mu          sync.Mutex
	idSeq       uint64
	inflight    int64
	inflightMax int64
	requests    map[seriesKey]uint64
	duration    map[string]*hist // per endpoint: total request duration
	stages      map[stageKey]*hist
	slow        slowRing
}

// New builds an enabled Observer.
func New(cfg Config) *Observer {
	switch {
	case cfg.SlowN == 0:
		cfg.SlowN = 32
	case cfg.SlowN < 0:
		cfg.SlowN = 0
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	o := &Observer{
		now:      cfg.Now,
		requests: make(map[seriesKey]uint64),
		duration: make(map[string]*hist),
		stages:   make(map[stageKey]*hist),
		slow:     slowRing{max: cfg.SlowN},
	}
	if cfg.AccessLog != nil {
		o.alog = &accessLogger{w: cfg.AccessLog}
	}
	return o
}

// stageSpan is one stage's placement within a request: offset from request
// start (first entry) and accumulated duration.
type stageSpan struct {
	off     time.Duration
	dur     time.Duration
	touched bool
}

// Req tracks one in-flight HTTP request's lifecycle. It is confined to the
// request's handler goroutine. All methods are no-ops on a nil receiver,
// which is exactly what a disabled Observer hands out.
type Req struct {
	o        *Observer
	id       string
	endpoint string
	start    time.Time

	tenant      string
	figure      string
	fingerprint string
	cache       string
	stages      [NumStages]stageSpan
}

// Begin opens a request lifecycle on endpoint, honoring a propagated
// inbound X-Request-Id (sanitized) or minting "r-<seq>". Returns nil — the
// free disabled handle — when o is nil.
func (o *Observer) Begin(endpoint, inboundID string) *Req {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	o.idSeq++
	seq := o.idSeq
	o.inflight++
	if o.inflight > o.inflightMax {
		o.inflightMax = o.inflight
	}
	o.mu.Unlock()
	id := sanitizeID(inboundID)
	if id == "" {
		id = "r-" + strconv.FormatUint(seq, 10)
	}
	return &Req{o: o, id: id, endpoint: endpoint, start: o.now()}
}

// sanitizeID keeps a propagated request id only if it is short and made of
// header-safe characters; anything else is discarded (a fresh id is minted).
func sanitizeID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return ""
		}
	}
	return id
}

// ID returns the request id ("" on the disabled handle).
func (r *Req) ID() string {
	if r == nil {
		return ""
	}
	return r.id
}

// Now reads the observer's clock; the zero time on the disabled handle, so
// disabled servers never touch the clock.
func (r *Req) Now() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.o.now()
}

// Stage attributes the time since `since` to stage s. Repeated visits
// accumulate; the first visit records the stage's offset from request start.
func (r *Req) Stage(s Stage, since time.Time) {
	if r == nil {
		return
	}
	sp := &r.stages[s]
	if !sp.touched {
		sp.touched = true
		sp.off = since.Sub(r.start)
	}
	sp.dur += r.o.now().Sub(since)
}

// StageExcluding attributes the time since `since` to stage s, minus
// whatever is already attributed to stage other. The cache stage uses it:
// the leader's own simulation runs inside the cache's Do, so cache residency
// is Do's elapsed time with the run carved out — keeping the stages disjoint
// so their histogram sums reconcile with the total.
func (r *Req) StageExcluding(s Stage, since time.Time, other Stage) {
	if r == nil {
		return
	}
	sp := &r.stages[s]
	if !sp.touched {
		sp.touched = true
		sp.off = since.Sub(r.start)
	}
	d := r.o.now().Sub(since) - r.stages[other].dur
	if d > 0 {
		sp.dur += d
	}
}

// SetRequest records the validated figure and quota tenant.
func (r *Req) SetRequest(figure, tenant string) {
	if r == nil {
		return
	}
	r.figure = figure
	r.tenant = tenant
}

// SetFingerprint records the spec's canonical options fingerprint for the
// access log. Callers guard with `if r != nil` so the fingerprint is only
// computed when telemetry is on.
func (r *Req) SetFingerprint(fp string) {
	if r == nil {
		return
	}
	r.fingerprint = fp
}

// SetCache records the result-cache outcome (hit / miss / coalesced).
func (r *Req) SetCache(status string) {
	if r == nil {
		return
	}
	r.cache = status
}

// Finish closes the lifecycle with the response status code: counters and
// histograms update, the trace is offered to the slow ring, and (for /v1/*
// requests) one access-log line is written.
func (r *Req) Finish(code int) {
	if r == nil {
		return
	}
	o := r.o
	end := o.now()
	total := end.Sub(r.start)
	key := seriesKey{endpoint: r.endpoint, class: codeClass(code), figure: r.figure, cache: r.cache}

	o.mu.Lock()
	o.inflight--
	o.requests[key]++
	h := o.duration[r.endpoint]
	if h == nil {
		h = newHist()
		o.duration[r.endpoint] = h
	}
	h.observe(total.Seconds())
	for s := Stage(0); s < NumStages; s++ {
		if !r.stages[s].touched {
			continue
		}
		sk := stageKey{endpoint: r.endpoint, stage: s}
		sh := o.stages[sk]
		if sh == nil {
			sh = newHist()
			o.stages[sk] = sh
		}
		sh.observe(r.stages[s].dur.Seconds())
	}
	o.slow.offer(SlowTrace{
		ID:       r.id,
		Endpoint: r.endpoint,
		Tenant:   r.tenant,
		Figure:   r.figure,
		Cache:    r.cache,
		Code:     code,
		Start:    r.start,
		Total:    total,
		Stages:   r.stageSpans(),
	})
	o.mu.Unlock()

	if o.alog != nil && len(r.endpoint) >= 4 && r.endpoint[:4] == "/v1/" {
		o.alog.log(r, code, total)
	}
}

func (r *Req) stageSpans() [NumStages]StageSpan {
	var out [NumStages]StageSpan
	for s := Stage(0); s < NumStages; s++ {
		if r.stages[s].touched {
			out[s] = StageSpan{Off: r.stages[s].off, Dur: r.stages[s].dur, Visited: true}
		}
	}
	return out
}

// codeClass buckets an HTTP status code for the requests_total class label.
func codeClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// outcome names a status code for the access log.
func outcome(code int) string {
	switch {
	case code == 429:
		return "throttled"
	case code == 503:
		return "unavailable"
	case code >= 500:
		return "error"
	case code >= 400:
		return "client-error"
	default:
		return "ok"
	}
}

// accessLogger serializes NDJSON access-log writes.
type accessLogger struct {
	mu sync.Mutex
	w  io.Writer
}

// AccessRecord is one access-log line. Field order is fixed by the struct,
// and the stage map is rendered key-sorted by encoding/json, so lines are
// deterministic given the request's measured values.
type AccessRecord struct {
	Time        string             `json:"ts"`
	ID          string             `json:"id"`
	Endpoint    string             `json:"endpoint"`
	Tenant      string             `json:"tenant,omitempty"`
	Figure      string             `json:"figure,omitempty"`
	Fingerprint string             `json:"fingerprint,omitempty"`
	Cache       string             `json:"cache,omitempty"`
	Code        int                `json:"code"`
	Outcome     string             `json:"outcome"`
	TotalMs     float64            `json:"total_ms"`
	StageMs     map[string]float64 `json:"stage_ms,omitempty"`
}

func (a *accessLogger) log(r *Req, code int, total time.Duration) {
	rec := AccessRecord{
		Time:        r.start.UTC().Format(time.RFC3339Nano),
		ID:          r.id,
		Endpoint:    r.endpoint,
		Tenant:      r.tenant,
		Figure:      r.figure,
		Fingerprint: r.fingerprint,
		Cache:       r.cache,
		Code:        code,
		Outcome:     outcome(code),
		TotalMs:     ms(total),
	}
	for s := Stage(0); s < NumStages; s++ {
		if r.stages[s].touched {
			if rec.StageMs == nil {
				rec.StageMs = make(map[string]float64, int(NumStages))
			}
			rec.StageMs[s.String()] = ms(r.stages[s].dur)
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return // a plain-data struct cannot fail to marshal
	}
	line = append(line, '\n')
	a.mu.Lock()
	a.w.Write(line)
	a.mu.Unlock()
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// ctxKey keys the per-request handle in a request context.
type ctxKey struct{}

// NewContext attaches a request handle to ctx.
func NewContext(ctx context.Context, r *Req) context.Context {
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext returns the request handle attached by NewContext, or nil —
// the same free disabled handle a nil Observer hands out.
func FromContext(ctx context.Context) *Req {
	r, _ := ctx.Value(ctxKey{}).(*Req)
	return r
}
