package obs

import (
	"fmt"
	"io"
	"sort"
	"time"

	"scatteradd/internal/span"
)

// The slowz ring: a bounded buffer retaining the slowest-N completed
// requests by total duration. Semantics:
//
//   - Below capacity, every completed request is retained.
//   - At capacity, a new trace replaces the fastest retained one only if it
//     is strictly slower; otherwise it is dropped. The ring therefore
//     converges on the N slowest requests the server has ever answered, not
//     the N most recent — the traces an operator actually wants when asking
//     "what does our tail look like".
//   - SlowTraces snapshots slowest-first (ties broken by id) so exports are
//     deterministic for a fixed set of retained traces.

// StageSpan is one stage's placement within a retained trace.
type StageSpan struct {
	Off     time.Duration // offset from request start
	Dur     time.Duration // accumulated stage time
	Visited bool          // whether the request touched the stage at all
}

// SlowTrace is one retained request lifecycle.
type SlowTrace struct {
	ID       string
	Endpoint string
	Tenant   string
	Figure   string
	Cache    string
	Code     int
	Start    time.Time
	Total    time.Duration
	Stages   [NumStages]StageSpan
}

type slowRing struct {
	max    int
	traces []SlowTrace
}

// offer inserts t if the ring has room or t is slower than the fastest
// retained trace. Caller holds the observer's lock.
func (r *slowRing) offer(t SlowTrace) {
	if r.max == 0 {
		return
	}
	if len(r.traces) < r.max {
		r.traces = append(r.traces, t)
		return
	}
	fastest := 0
	for i := 1; i < len(r.traces); i++ {
		if r.traces[i].Total < r.traces[fastest].Total {
			fastest = i
		}
	}
	if t.Total > r.traces[fastest].Total {
		r.traces[fastest] = t
	}
}

// SlowTraces returns the retained traces, slowest first (ties by id).
func (o *Observer) SlowTraces() []SlowTrace {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	out := make([]SlowTrace, len(o.slow.traces))
	copy(out, o.slow.traces)
	o.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// SlowSummary is the compact JSON form of one retained trace
// (/debug/slowz?format=json).
type SlowSummary struct {
	ID       string             `json:"id"`
	Endpoint string             `json:"endpoint"`
	Tenant   string             `json:"tenant,omitempty"`
	Figure   string             `json:"figure,omitempty"`
	Cache    string             `json:"cache,omitempty"`
	Code     int                `json:"code"`
	Start    string             `json:"start"`
	TotalMs  float64            `json:"total_ms"`
	StageMs  map[string]float64 `json:"stage_ms,omitempty"`
}

// Summary reduces a trace to its JSON form.
func (t SlowTrace) Summary() SlowSummary {
	s := SlowSummary{
		ID:       t.ID,
		Endpoint: t.Endpoint,
		Tenant:   t.Tenant,
		Figure:   t.Figure,
		Cache:    t.Cache,
		Code:     t.Code,
		Start:    t.Start.UTC().Format(time.RFC3339Nano),
		TotalMs:  ms(t.Total),
	}
	for st := Stage(0); st < NumStages; st++ {
		if t.Stages[st].Visited {
			if s.StageMs == nil {
				s.StageMs = make(map[string]float64, int(NumStages))
			}
			s.StageMs[st.String()] = ms(t.Stages[st].Dur)
		}
	}
	return s
}

// WriteSlowPerfetto exports retained traces as Chrome trace-event JSON
// through the span exporter — the same artifact format as `scatteradd
// -spans`' simulator traces, loadable in ui.perfetto.dev. Each request is
// one Perfetto process: a "request" track spanning the whole lifecycle plus
// one track per visited pipeline stage, with timestamps in microseconds
// since the request began.
func WriteSlowPerfetto(w io.Writer, traces []SlowTrace) error {
	procs := make([]span.Process, 0, len(traces))
	for i, t := range traces {
		name := fmt.Sprintf("%s %s", t.ID, t.Endpoint)
		if t.Figure != "" {
			name += " " + t.Figure
		}
		if t.Cache != "" {
			name += " cache=" + t.Cache
		}
		name += fmt.Sprintf(" http=%d (%.1f ms)", t.Code, ms(t.Total))
		evs := []span.Event{{
			Track: "request",
			Name:  outcome(t.Code),
			Start: usOf(0),
			End:   usOf(t.Total),
		}}
		for st := Stage(0); st < NumStages; st++ {
			sp := t.Stages[st]
			if !sp.Visited {
				continue
			}
			evs = append(evs, span.Event{
				Track: st.String(),
				Name:  st.String(),
				Start: usOf(sp.Off),
				End:   usOf(sp.Off + sp.Dur),
			})
		}
		procs = append(procs, span.Process{Pid: i + 1, Name: name, Events: evs})
	}
	return span.WriteTraceEvents(w, procs)
}

// usOf converts a wall duration to the exporter's microsecond timestamps.
func usOf(d time.Duration) uint64 {
	if d < 0 {
		return 0
	}
	return uint64(d / time.Microsecond)
}
