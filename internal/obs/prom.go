package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"scatteradd/internal/stats"
)

// Prometheus text exposition (version 0.0.4) rendering. Everything here is
// deterministic: families render in a fixed order, series within a family
// sort by label string, and label sets render key-sorted — two scrapes of an
// idle server are byte-identical.

// ContentType is the exposition format's content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Metric name constants shared with the scrape cross-check (internal/server
// CheckScrape) and CI's promlint step.
const (
	MetricRequests      = "scatteradd_http_requests_total"
	MetricInflight      = "scatteradd_http_inflight_requests"
	MetricSlowTraces    = "scatteradd_http_slow_traces"
	MetricDuration      = "scatteradd_http_request_duration_seconds"
	MetricStageDuration = "scatteradd_http_stage_duration_seconds"
	statsPrefix         = "scatteradd_stats_"
)

// WriteMetrics renders the full exposition: the observer's RED metrics
// (skipped when o is nil — a telemetry-disabled server still exposes its
// stats registries) followed by every entry of the internal/stats snapshot
// as a scatteradd_stats_* metric.
func WriteMetrics(w io.Writer, o *Observer, snap stats.Snapshot) error {
	var b strings.Builder
	if o != nil {
		o.writeRED(&b)
	}
	writeStats(&b, snap)
	_, err := io.WriteString(w, b.String())
	return err
}

// writeRED renders the request counters, gauges, and stage histograms.
func (o *Observer) writeRED(b *strings.Builder) {
	o.mu.Lock()
	defer o.mu.Unlock()

	fmt.Fprintf(b, "# HELP %s Requests completed, by endpoint, status class, figure, and cache state.\n", MetricRequests)
	fmt.Fprintf(b, "# TYPE %s counter\n", MetricRequests)
	lines := make([]string, 0, len(o.requests))
	for k, v := range o.requests {
		labels := renderLabels([][2]string{
			{"cache", k.cache}, {"class", k.class}, {"endpoint", k.endpoint}, {"figure", k.figure},
		})
		lines = append(lines, fmt.Sprintf("%s%s %d\n", MetricRequests, labels, v))
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
	}

	fmt.Fprintf(b, "# HELP %s Requests currently being served.\n", MetricInflight)
	fmt.Fprintf(b, "# TYPE %s gauge\n", MetricInflight)
	fmt.Fprintf(b, "%s %d\n", MetricInflight, o.inflight)

	fmt.Fprintf(b, "# HELP %s Slow-request traces retained for /debug/slowz.\n", MetricSlowTraces)
	fmt.Fprintf(b, "# TYPE %s gauge\n", MetricSlowTraces)
	fmt.Fprintf(b, "%s %d\n", MetricSlowTraces, len(o.slow.traces))

	fmt.Fprintf(b, "# HELP %s Total request duration by endpoint.\n", MetricDuration)
	fmt.Fprintf(b, "# TYPE %s histogram\n", MetricDuration)
	endpoints := make([]string, 0, len(o.duration))
	for ep := range o.duration {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		writeHist(b, MetricDuration, [][2]string{{"endpoint", ep}}, o.duration[ep])
	}

	fmt.Fprintf(b, "# HELP %s Request duration decomposed by serving-pipeline stage (quota wait, admission-queue wait, cache residency, simulation, encode).\n", MetricStageDuration)
	fmt.Fprintf(b, "# TYPE %s histogram\n", MetricStageDuration)
	sks := make([]stageKey, 0, len(o.stages))
	for sk := range o.stages {
		sks = append(sks, sk)
	}
	sort.Slice(sks, func(i, j int) bool {
		if sks[i].endpoint != sks[j].endpoint {
			return sks[i].endpoint < sks[j].endpoint
		}
		return sks[i].stage < sks[j].stage
	})
	for _, sk := range sks {
		writeHist(b, MetricStageDuration,
			[][2]string{{"endpoint", sk.endpoint}, {"stage", sk.stage.String()}}, o.stages[sk])
	}
}

// writeHist renders one histogram's cumulative buckets, sum, and count.
func writeHist(b *strings.Builder, name string, labels [][2]string, h *hist) {
	var cum uint64
	for i, bound := range DurationBuckets {
		cum += h.buckets[i]
		le := append(append([][2]string{}, labels...), [2]string{"le", formatFloat(bound)})
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabels(le), cum)
	}
	inf := append(append([][2]string{}, labels...), [2]string{"le", "+Inf"})
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabels(inf), h.count)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, renderLabels(labels), formatFloat(h.sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, renderLabels(labels), h.count)
}

// writeStats maps an internal/stats snapshot onto Prometheus families: one
// single-sample family per entry, counters suffixed _total for name hygiene,
// gauges exported as their high-water marks (that is what Snapshot carries).
func writeStats(b *strings.Builder, snap stats.Snapshot) {
	for _, e := range snap.Entries {
		name := statsPrefix + sanitizeName(e.Key)
		switch e.Kind {
		case stats.KindCounter:
			name += "_total"
			fmt.Fprintf(b, "# HELP %s internal/stats counter %s\n", name, e.Key)
			fmt.Fprintf(b, "# TYPE %s counter\n", name)
		default:
			fmt.Fprintf(b, "# HELP %s internal/stats gauge %s (high-water mark)\n", name, e.Key)
			fmt.Fprintf(b, "# TYPE %s gauge\n", name)
		}
		fmt.Fprintf(b, "%s %d\n", name, e.Val)
	}
}

// sanitizeName maps a stats key ("cache[3]/hits.b0") onto Prometheus name
// characters: anything outside [a-zA-Z0-9_] becomes '_', runs collapse, and
// leading/trailing '_' are trimmed.
func sanitizeName(key string) string {
	var b strings.Builder
	lastUnderscore := true // trims a leading '_'
	for i := 0; i < len(key); i++ {
		c := key[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
		if ok {
			b.WriteByte(c)
			lastUnderscore = false
		} else if !lastUnderscore {
			b.WriteByte('_')
			lastUnderscore = true
		}
	}
	return strings.TrimSuffix(b.String(), "_")
}

// renderLabels renders a label set (already in the desired order) as
// {k="v",...}, escaping values; an empty set renders as nothing.
func renderLabels(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[0])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
