package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// A minimal Prometheus text-exposition parser and linter. It exists for two
// consumers: `saload -scrape` (cross-checking server counters against the
// client's LoadReport) and `benchgate -promlint` (CI's exposition-hygiene
// gate). It parses exactly the subset WriteMetrics emits — # HELP / # TYPE
// comments and `name{labels} value` samples — and rejects anything outside
// the format rather than guessing.

// Sample is one parsed series sample.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// key renders the sample's identity (name plus key-sorted labels) for
// duplicate detection and cross-scrape matching.
func (s Sample) key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString("=")
		b.WriteString(strconv.Quote(s.Labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// Scrape is one parsed /metrics payload.
type Scrape struct {
	// Types maps family name to its declared TYPE (counter, gauge, histogram).
	Types map[string]string
	// Help maps family name to its HELP text.
	Help map[string]string
	// Samples preserves input order.
	Samples []Sample

	byKey map[string]float64
}

// ParseProm parses a text-exposition payload.
func ParseProm(data []byte) (*Scrape, error) {
	s := &Scrape{
		Types: make(map[string]string),
		Help:  make(map[string]string),
		byKey: make(map[string]float64),
	}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := s.parseComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", ln+1, err)
			}
			continue
		}
		sm, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		s.Samples = append(s.Samples, sm)
		s.byKey[sm.key()] = sm.Value
	}
	return s, nil
}

func (s *Scrape) parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		s.Types[fields[2]] = fields[3]
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
		help := ""
		if len(fields) == 4 {
			help = fields[3]
		}
		s.Help[fields[2]] = help
	}
	return nil
}

// parseSample parses `name value` or `name{k="v",...} value`.
func parseSample(line string) (Sample, error) {
	sm := Sample{}
	i := strings.IndexByte(line, '{')
	if i < 0 {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return sm, fmt.Errorf("malformed sample %q", line)
		}
		sm.Name = fields[0]
		return sm, parseValue(&sm, fields[1])
	}
	sm.Name = line[:i]
	rest := line[i+1:]
	labels, rest, err := parseLabels(rest)
	if err != nil {
		return sm, fmt.Errorf("sample %q: %w", line, err)
	}
	sm.Labels = labels
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return sm, fmt.Errorf("sample %q: missing value", line)
	}
	return sm, parseValue(&sm, fields[0])
}

func parseValue(sm *Sample, s string) error {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("bad value %q: %v", s, err)
	}
	sm.Value = v
	return nil
}

// parseLabels consumes `k="v",...}` (the opening brace already eaten) with
// escape-aware value scanning, returning the labels and the remainder of the
// line after the closing brace.
func parseLabels(s string) (map[string]string, string, error) {
	labels := make(map[string]string)
	for {
		s = strings.TrimLeft(s, " ,")
		if s == "" {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if s[0] == '}' {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		name := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, "", fmt.Errorf("label %q: unquoted value", name)
		}
		val, rest, err := scanQuoted(s[1:])
		if err != nil {
			return nil, "", fmt.Errorf("label %q: %w", name, err)
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", name)
		}
		labels[name] = val
		s = rest
	}
}

// scanQuoted consumes an exposition-escaped label value (opening quote
// already eaten), returning the unescaped value and the remainder.
func scanQuoted(s string) (string, string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(s[i])
			default:
				return "", "", fmt.Errorf("bad escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value")
}

// Value returns the sample with exactly this name and label set, and whether
// it was present.
func (s *Scrape) Value(name string, labels map[string]string) (float64, bool) {
	v, ok := s.byKey[Sample{Name: name, Labels: labels}.key()]
	return v, ok
}

// Sum totals every sample of family `name` whose labels are a superset of
// `match` (nil matches all). Histogram child series (_bucket/_sum/_count) are
// distinct names and do not alias their family.
func (s *Scrape) Sum(name string, match map[string]string) float64 {
	var total float64
	for _, sm := range s.Samples {
		if sm.Name != name {
			continue
		}
		if !labelsMatch(sm.Labels, match) {
			continue
		}
		total += sm.Value
	}
	return total
}

func labelsMatch(have, want map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// familyOf strips histogram child suffixes so a _bucket sample maps back to
// its declared family.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

// Lint applies exposition hygiene rules to a single scrape and returns the
// violations (empty = clean):
//
//   - metric and label names match [a-zA-Z_:][a-zA-Z0-9_:]* (labels: no colon)
//   - every sample's family has a TYPE declared before its first sample
//   - counter family names end in _total
//   - no duplicate series (same name + label set)
//   - counter and histogram samples are non-negative
//   - histogram buckets are cumulative in le order and the +Inf bucket
//     equals the family's _count
func (s *Scrape) Lint() []string {
	var problems []string
	badName := func(n string, label bool) bool {
		if n == "" {
			return true
		}
		for i := 0; i < len(n); i++ {
			c := n[i]
			switch {
			case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
			case c == ':' && !label:
			case c >= '0' && c <= '9' && i > 0:
			default:
				return true
			}
		}
		return false
	}

	seen := make(map[string]bool)
	declaredBefore := make(map[string]bool)
	for name := range s.Types {
		if badName(name, false) {
			problems = append(problems, fmt.Sprintf("invalid metric name %q", name))
		}
	}
	for _, sm := range s.Samples {
		fam := familyOf(sm.Name, s.Types)
		typ, declared := s.Types[fam]
		if !declared {
			problems = append(problems, fmt.Sprintf("series %s: no TYPE declared for family %s", sm.key(), fam))
		} else {
			declaredBefore[fam] = true
		}
		if badName(sm.Name, false) {
			problems = append(problems, fmt.Sprintf("invalid metric name %q", sm.Name))
		}
		for ln := range sm.Labels {
			if badName(ln, true) {
				problems = append(problems, fmt.Sprintf("series %s: invalid label name %q", sm.key(), ln))
			}
		}
		if seen[sm.key()] {
			problems = append(problems, fmt.Sprintf("duplicate series %s", sm.key()))
		}
		seen[sm.key()] = true
		if typ == "counter" && !strings.HasSuffix(fam, "_total") {
			problems = append(problems, fmt.Sprintf("counter family %s does not end in _total", fam))
		}
		if (typ == "counter" || typ == "histogram") && sm.Value < 0 {
			problems = append(problems, fmt.Sprintf("series %s: negative %s value %v", sm.key(), typ, sm.Value))
		}
	}
	problems = append(problems, s.lintHistograms()...)
	return problems
}

// lintHistograms checks bucket monotonicity in le order and +Inf == _count
// for every histogram child series group.
func (s *Scrape) lintHistograms() []string {
	var problems []string

	type group struct {
		fam     string
		baseKey string
		buckets []Sample // _bucket samples in input order
		count   float64
		hasCnt  bool
	}
	groups := make(map[string]*group)
	var order []string

	baseKeyOf := func(sm Sample, fam string) string {
		labels := make(map[string]string, len(sm.Labels))
		for k, v := range sm.Labels {
			if k == "le" {
				continue
			}
			labels[k] = v
		}
		return Sample{Name: fam, Labels: labels}.key()
	}

	for _, sm := range s.Samples {
		fam := familyOf(sm.Name, s.Types)
		if s.Types[fam] != "histogram" {
			continue
		}
		switch {
		case strings.HasSuffix(sm.Name, "_bucket"):
			bk := baseKeyOf(sm, fam)
			g, ok := groups[bk]
			if !ok {
				g = &group{fam: fam, baseKey: bk}
				groups[bk] = g
				order = append(order, bk)
			}
			g.buckets = append(g.buckets, sm)
		case strings.HasSuffix(sm.Name, "_count"):
			bk := baseKeyOf(sm, fam)
			g, ok := groups[bk]
			if !ok {
				g = &group{fam: fam, baseKey: bk}
				groups[bk] = g
				order = append(order, bk)
			}
			g.count = sm.Value
			g.hasCnt = true
		}
	}

	for _, bk := range order {
		g := groups[bk]
		prev := -1.0
		prevLe := ""
		sawInf := false
		for _, b := range g.buckets {
			le := b.Labels["le"]
			if le == "" {
				problems = append(problems, fmt.Sprintf("histogram %s: _bucket sample without le label", bk))
				continue
			}
			if b.Value < prev {
				problems = append(problems, fmt.Sprintf(
					"histogram %s: bucket le=%q (%v) below le=%q (%v): buckets not cumulative",
					bk, le, b.Value, prevLe, prev))
			}
			prev, prevLe = b.Value, le
			if le == "+Inf" {
				sawInf = true
				if g.hasCnt && b.Value != g.count {
					problems = append(problems, fmt.Sprintf(
						"histogram %s: +Inf bucket (%v) != _count (%v)", bk, b.Value, g.count))
				}
			}
		}
		if len(g.buckets) > 0 && !sawInf {
			problems = append(problems, fmt.Sprintf("histogram %s: missing +Inf bucket", bk))
		}
	}
	return problems
}

// CheckMonotonic compares two scrapes of the same server and reports every
// counter or histogram series that went backwards — the cross-scrape half of
// `benchgate -promlint`.
func CheckMonotonic(before, after *Scrape) []string {
	var problems []string
	for _, sm := range before.Samples {
		fam := familyOf(sm.Name, before.Types)
		typ := before.Types[fam]
		if typ != "counter" && typ != "histogram" {
			continue
		}
		afterV, ok := after.byKey[sm.key()]
		if !ok {
			problems = append(problems, fmt.Sprintf("series %s disappeared between scrapes", sm.key()))
			continue
		}
		if afterV < sm.Value {
			problems = append(problems, fmt.Sprintf(
				"series %s went backwards: %v -> %v", sm.key(), sm.Value, afterV))
		}
	}
	return problems
}
