// Package port defines the narrow word-granular memory-port interface that
// couples the scatter-add unit to whatever sits below it — a stream-cache
// bank in the full machine (paper Figure 4a) or the uniform-latency memory
// of the sensitivity study (§4.4). The owner of both sides is responsible
// for ticking the implementation; the interface itself is purely dataflow.
package port

import "scatteradd/internal/mem"

// Word is a request/response port that accepts word-granular memory
// operations and later yields their responses. Write requests may complete
// silently (no Response); Read and Fetch* requests always produce one.
type Word interface {
	// CanAccept reports whether Accept would succeed this cycle.
	CanAccept(now uint64) bool
	// Accept submits a request, reporting whether it was taken.
	Accept(now uint64, r mem.Request) bool
	// PopResponse removes one completed response if available.
	PopResponse(now uint64) (mem.Response, bool)
	// Busy reports whether any accepted request has not yet fully
	// completed (including undelivered responses and dirty write buffers).
	Busy() bool
}
