package stream

import (
	"testing"

	"scatteradd/internal/machine"
	"scatteradd/internal/mem"
	"scatteradd/internal/workload"
)

func testMachine() *machine.Machine {
	cfg := machine.DefaultConfig()
	cfg.Cache.TotalLines = 512
	cfg.KernelStartup = 8
	cfg.MemOpStartup = 4
	return machine.New(cfg)
}

func TestPipelineHistogramCorrect(t *testing.T) {
	const n, rng = 8192, 512
	idx := workload.UniformIndices(n, rng, 3)
	ref := workload.HistogramReference(idx, rng)
	binAddrs := workload.IndicesToAddrs(idx, 0)
	dataBase := mem.Addr(4096)

	m := testMachine()
	res := Pipeline(m, n, 1024, GatherComputeScatterAdd(
		func(start, end int) machine.Op {
			return machine.LoadStream("load", dataBase+mem.Addr(start), end-start)
		},
		func(count int) machine.Op {
			return machine.IntKernel("map", float64(count), float64(2*count))
		},
		func(start, end int) machine.Op {
			return machine.ScatterAdd("sa", mem.AddI64, binAddrs[start:end], []mem.Word{mem.I64(1)})
		},
	))
	m.FlushCaches()
	got := m.Store().ReadI64Slice(0, rng)
	for b := range ref {
		if got[b] != ref[b] {
			t.Fatalf("bin %d = %d want %d", b, got[b], ref[b])
		}
	}
	if res.Cycles == 0 || res.MemRefs != 2*n {
		t.Fatalf("result: %+v", res)
	}
}

func TestPipelineOverlapsAcrossChunks(t *testing.T) {
	// The pipelined schedule must be faster than running the same chunks
	// with synchronous scatter-adds.
	const n, rng = 16384, 1024
	idx := workload.UniformIndices(n, rng, 5)
	binAddrs := workload.IndicesToAddrs(idx, 0)
	kernel := func(count int) machine.Op {
		return machine.Kernel("work", float64(count*16), float64(count))
	}

	mPipe := testMachine()
	pipe := Pipeline(mPipe, n, 2048, GatherComputeScatterAdd(
		nil, kernel,
		func(start, end int) machine.Op {
			return machine.ScatterAdd("sa", mem.AddI64, binAddrs[start:end], []mem.Word{mem.I64(1)})
		},
	))

	mSeq := testMachine()
	seq := Pipeline(mSeq, n, 2048, func(start, end int) []machine.Op {
		return []machine.Op{
			kernel(end - start),
			machine.ScatterAdd("sa", mem.AddI64, binAddrs[start:end], []mem.Word{mem.I64(1)}), // sync
		}
	})

	if pipe.Cycles >= seq.Cycles {
		t.Fatalf("pipelined %d cycles not faster than sequential %d", pipe.Cycles, seq.Cycles)
	}
	// Both produce identical bins.
	mPipe.FlushCaches()
	mSeq.FlushCaches()
	for b := 0; b < rng; b++ {
		a, c := mPipe.Store().LoadI64(mem.Addr(b)), mSeq.Store().LoadI64(mem.Addr(b))
		if a != c {
			t.Fatalf("bin %d: %d vs %d", b, a, c)
		}
	}
}

func TestPipelineEmptyAndPartialChunks(t *testing.T) {
	m := testMachine()
	calls := 0
	res := Pipeline(m, 0, 100, func(start, end int) []machine.Op {
		calls++
		return nil
	})
	if calls != 0 || res.Cycles != 0 {
		t.Fatalf("empty pipeline: calls=%d res=%+v", calls, res)
	}
	// 10 elements in chunks of 4: chunks are [0,4) [4,8) [8,10).
	var bounds [][2]int
	Pipeline(m, 10, 4, func(start, end int) []machine.Op {
		bounds = append(bounds, [2]int{start, end})
		return nil
	})
	want := [][2]int{{0, 4}, {4, 8}, {8, 10}}
	for i := range want {
		if bounds[i] != want[i] {
			t.Fatalf("bounds = %v", bounds)
		}
	}
}

func TestPipelineDefaultChunk(t *testing.T) {
	m := testMachine()
	sizes := []int{}
	Pipeline(m, DefaultChunk+1, 0, func(start, end int) []machine.Op {
		sizes = append(sizes, end-start)
		return nil
	})
	if len(sizes) != 2 || sizes[0] != DefaultChunk || sizes[1] != 1 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestPipelineNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Pipeline(testMachine(), -1, 0, func(int, int) []machine.Op { return nil })
}

func TestGatherComputeScatterAddSkipsNilPhases(t *testing.T) {
	fn := GatherComputeScatterAdd(nil, nil, func(start, end int) machine.Op {
		return machine.ScatterAdd("sa", mem.AddI64, []mem.Addr{0}, []mem.Word{mem.I64(1)})
	})
	ops := fn(0, 1)
	if len(ops) != 1 || !ops[0].Async {
		t.Fatalf("ops = %+v", ops)
	}
}
