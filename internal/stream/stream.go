// Package stream provides the software-pipelining idiom of stream
// programming (§3.1's gather/compute/scatter phases) as a reusable
// scheduler: a dataset is processed in chunks, and each chunk's trailing
// memory operation (typically the scatter-add) is issued asynchronously so
// it drains on one address generator while the next chunk's gather and
// kernel run on the other. This generalizes the paper's observation that
// "the processor's main execution unit can continue running the program,
// while the sums are being updated in memory" (§1).
package stream

import (
	"fmt"

	"scatteradd/internal/machine"
)

// DefaultChunk is the default pipeline chunk size in elements.
const DefaultChunk = 4096

// ChunkFunc produces the stream operations of one chunk [start, end).
// Operations are executed in order; every memory operation the function
// marks Async overlaps with subsequent chunks.
type ChunkFunc func(start, end int) []machine.Op

// Pipeline runs n elements through fn in chunks of the given size (0
// selects DefaultChunk), fencing once at the end so all asynchronous
// operations have drained when it returns.
func Pipeline(m *machine.Machine, n, chunk int, fn ChunkFunc) machine.Result {
	if n < 0 {
		panic(fmt.Sprintf("stream: negative element count %d", n))
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	var total machine.Result
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		for _, op := range fn(start, end) {
			total.Add(m.RunOp(op))
		}
	}
	total.Add(m.RunOp(machine.Fence()))
	return total
}

// GatherComputeScatterAdd builds a ChunkFunc for the canonical three-phase
// pattern: a synchronous load/gather, a kernel, and an asynchronous
// scatter-add. gather and scatterAdd receive the chunk bounds and return
// the corresponding ops; kernel receives the chunk size and returns the
// compute op. Any of the three may be nil to skip that phase.
func GatherComputeScatterAdd(
	gather func(start, end int) machine.Op,
	kernel func(count int) machine.Op,
	scatterAdd func(start, end int) machine.Op,
) ChunkFunc {
	return func(start, end int) []machine.Op {
		var ops []machine.Op
		if gather != nil {
			ops = append(ops, gather(start, end))
		}
		if kernel != nil {
			ops = append(ops, kernel(end-start))
		}
		if scatterAdd != nil {
			op := scatterAdd(start, end)
			op.Async = true
			ops = append(ops, op)
		}
		return ops
	}
}
