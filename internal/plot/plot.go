// Package plot renders small ASCII line charts for the experiment CLI, so
// the regenerated figures can be eyeballed against the paper's curves
// directly in a terminal (the paper's Figures 6, 7, and 13 are log- or
// linear-scale line plots).
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one labeled curve.
type Series struct {
	Label string
	X, Y  []float64
}

// Options control the rendering.
type Options struct {
	Width, Height int // plot area in character cells (defaults 64x20)
	LogX, LogY    bool
	Title         string
	XLabel        string
	YLabel        string
}

// markers are assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '$', '~'}

// Render draws the series into a text grid with axes and a legend.
func Render(series []Series, o Options) string {
	if o.Width <= 0 {
		o.Width = 64
	}
	if o.Height <= 0 {
		o.Height = 20
	}
	tx := transform(o.LogX)
	ty := transform(o.LogY)

	// Bounds over all finite transformed points.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsInf(x, 0) || math.IsNaN(x) || math.IsInf(y, 0) || math.IsNaN(y) {
				continue
			}
			points++
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if points == 0 {
		return "(no plottable points)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, o.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", o.Width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsInf(x, 0) || math.IsNaN(x) || math.IsInf(y, 0) || math.IsNaN(y) {
				continue
			}
			c := int((x - minX) / (maxX - minX) * float64(o.Width-1))
			r := o.Height - 1 - int((y-minY)/(maxY-minY)*float64(o.Height-1))
			grid[r][c] = mark
		}
	}

	var b strings.Builder
	if o.Title != "" {
		fmt.Fprintf(&b, "%s\n", o.Title)
	}
	yHi, yLo := untransform(o.LogY, maxY), untransform(o.LogY, minY)
	for r := 0; r < o.Height; r++ {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%8.3g", yHi)
		} else if r == o.Height-1 {
			label = fmt.Sprintf("%8.3g", yLo)
		} else if r == o.Height/2 {
			label = fmt.Sprintf("%8s", o.YLabel)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", o.Width))
	xLo, xHi := untransform(o.LogX, minX), untransform(o.LogX, maxX)
	lo := fmt.Sprintf("%.3g", xLo)
	hi := fmt.Sprintf("%.3g", xHi)
	pad := o.Width - len(lo) - len(hi) - len(o.XLabel)
	if pad < 2 {
		pad = 2
	}
	fmt.Fprintf(&b, "%s  %s%s%s%s%s\n", strings.Repeat(" ", 8), lo,
		strings.Repeat(" ", pad/2), o.XLabel, strings.Repeat(" ", pad-pad/2), hi)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Label)
	}
	return b.String()
}

// transform returns the axis mapping (identity or log10; non-positive
// values map to -Inf and are skipped).
func transform(log bool) func(float64) float64 {
	if !log {
		return func(v float64) float64 { return v }
	}
	return func(v float64) float64 {
		if v <= 0 {
			return math.Inf(-1)
		}
		return math.Log10(v)
	}
}

// untransform inverts transform for labeling.
func untransform(log bool, v float64) float64 {
	if !log {
		return v
	}
	return math.Pow(10, v)
}
