package plot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	s := []Series{
		{Label: "up", X: []float64{1, 2, 3, 4}, Y: []float64{1, 2, 3, 4}},
		{Label: "down", X: []float64{1, 2, 3, 4}, Y: []float64{4, 3, 2, 1}},
	}
	out := Render(s, Options{Width: 20, Height: 10, Title: "T", XLabel: "x", YLabel: "y"})
	for _, want := range []string{"T\n", "* up", "o down", "+--------------------", "x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	// title + 10 rows + axis + xlabels + 2 legend + trailing
	if len(lines) < 14 {
		t.Fatalf("only %d lines:\n%s", len(lines), out)
	}
}

func TestCornerPlacement(t *testing.T) {
	s := []Series{{Label: "d", X: []float64{0, 10}, Y: []float64{0, 10}}}
	out := Render(s, Options{Width: 11, Height: 11})
	lines := strings.Split(out, "\n")
	// First plot row holds the max-Y point at the right edge.
	if !strings.HasSuffix(lines[0], "*") {
		t.Fatalf("top-right marker missing: %q", lines[0])
	}
	// Last plot row (row 10) holds min at left edge (just after "|").
	bottom := lines[10]
	if !strings.Contains(bottom, "|*") {
		t.Fatalf("bottom-left marker missing: %q", bottom)
	}
}

func TestLogScales(t *testing.T) {
	s := []Series{{Label: "l", X: []float64{1, 10, 100}, Y: []float64{1, 10, 100}}}
	out := Render(s, Options{Width: 21, Height: 7, LogX: true, LogY: true})
	// On log-log axes the three decade points are evenly spaced: middle
	// point lands in the middle column of the middle row.
	lines := strings.Split(out, "\n")
	mid := lines[3]
	idx := strings.IndexByte(mid, '*')
	if idx < 0 {
		t.Fatalf("middle point missing: %q\n%s", mid, out)
	}
	col := idx - len("         |") + 1
	if col < 9 || col > 12 {
		t.Fatalf("middle point at col %d, want ~10\n%s", col, out)
	}
	// Axis labels back-transformed to data units.
	if !strings.Contains(out, "100") {
		t.Fatalf("missing decade label:\n%s", out)
	}
}

func TestLogSkipsNonPositive(t *testing.T) {
	s := []Series{{Label: "l", X: []float64{0, 1, 10}, Y: []float64{-5, 1, 10}}}
	out := Render(s, Options{LogX: true, LogY: true})
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("bad labels:\n%s", out)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if out := Render(nil, Options{}); !strings.Contains(out, "no plottable points") {
		t.Fatalf("empty: %q", out)
	}
	// A single point must not divide by zero.
	out := Render([]Series{{Label: "p", X: []float64{5}, Y: []float64{5}}}, Options{Width: 10, Height: 5})
	if !strings.Contains(out, "*") {
		t.Fatalf("single point missing:\n%s", out)
	}
}

func TestManySeriesMarkersCycle(t *testing.T) {
	var series []Series
	for i := 0; i < 12; i++ {
		series = append(series, Series{Label: "s", X: []float64{float64(i)}, Y: []float64{float64(i)}})
	}
	out := Render(series, Options{})
	if !strings.Contains(out, "%") || !strings.Contains(out, "~") {
		t.Fatalf("marker cycling broken:\n%s", out)
	}
}
