package apps

import (
	"testing"

	"scatteradd/internal/machine"
)

// fastMachine returns a full-featured machine with reduced startup costs so
// small test workloads finish quickly.
func fastMachine() *machine.Machine {
	cfg := machine.DefaultConfig()
	cfg.KernelStartup = 16
	cfg.MemOpStartup = 8
	return machine.New(cfg)
}

func TestHistogramHWCorrect(t *testing.T) {
	h := NewHistogram(2000, 256, 42)
	m := fastMachine()
	res := h.RunHW(m)
	if err := h.Verify(m); err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.MemRefs < uint64(2*h.N) {
		t.Fatalf("result implausible: %+v", res)
	}
}

func TestHistogramSortScanCorrect(t *testing.T) {
	h := NewHistogram(1500, 128, 7)
	m := fastMachine()
	h.RunSortScan(m, 256)
	if err := h.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPrivatizationCorrect(t *testing.T) {
	h := NewHistogram(800, 96, 11)
	m := fastMachine()
	h.RunPrivatization(m, 32)
	if err := h.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramHWBeatsSoftware(t *testing.T) {
	// The paper's core result (Figures 6 and 8): hardware scatter-add beats
	// both software methods.
	h := NewHistogram(4096, 512, 3)
	hw := h.RunHW(fastMachine())
	sw := h.RunSortScan(fastMachine(), 0)
	priv := h.RunPrivatization(fastMachine(), 0)
	if hw.Cycles >= sw.Cycles {
		t.Fatalf("HW (%d) not faster than sort&scan (%d)", hw.Cycles, sw.Cycles)
	}
	if hw.Cycles >= priv.Cycles {
		t.Fatalf("HW (%d) not faster than privatization (%d)", hw.Cycles, priv.Cycles)
	}
}

func TestHistogramOverlappedCorrectAndFaster(t *testing.T) {
	h := NewHistogram(16384, 1024, 21)
	mSeq := fastMachine()
	seq := h.RunHW(mSeq)
	if err := h.Verify(mSeq); err != nil {
		t.Fatal(err)
	}
	mOvl := fastMachine()
	ovl := h.RunHWOverlapped(mOvl, 0)
	if err := h.Verify(mOvl); err != nil {
		t.Fatal(err)
	}
	if ovl.Cycles >= seq.Cycles {
		t.Fatalf("overlapped (%d cycles) not faster than sequential (%d)", ovl.Cycles, seq.Cycles)
	}
}

func TestHistogramVerifyDetectsCorruption(t *testing.T) {
	h := NewHistogram(100, 16, 1)
	m := fastMachine()
	h.RunHW(m)
	m.FlushCaches() // make the store authoritative before corrupting it
	m.Store().StoreI64(h.BinBase, -999)
	if err := h.Verify(m); err == nil {
		t.Fatal("Verify missed corrupted bin")
	}
}

func TestSpMVCSRAndEBEAgree(t *testing.T) {
	s := NewSpMV(2, 2, 2, 5)
	mCSR := fastMachine()
	s.RunCSR(mCSR)
	if err := s.Verify(mCSR); err != nil {
		t.Fatal(err)
	}
	mHW := fastMachine()
	s.RunEBEHW(mHW)
	if err := s.Verify(mHW); err != nil {
		t.Fatal(err)
	}
	mSW := fastMachine()
	s.RunEBESW(mSW, 256)
	if err := s.Verify(mSW); err != nil {
		t.Fatal(err)
	}
}

func TestSpMVEBETradeoffDirections(t *testing.T) {
	// EBE trades more FP operations for fewer memory references (§4.1).
	s := NewSpMV(3, 3, 2, 9)
	csr := s.RunCSR(fastMachine())
	hw := s.RunEBEHW(fastMachine())
	if hw.FPOps <= csr.FPOps {
		t.Fatalf("EBE FP ops (%d) should exceed CSR (%d)", hw.FPOps, csr.FPOps)
	}
	if hw.MemRefs >= csr.MemRefs {
		t.Fatalf("EBE mem refs (%d) should be below CSR (%d)", hw.MemRefs, csr.MemRefs)
	}
}

func TestMolDynAllVariantsMatchReference(t *testing.T) {
	md := NewMolDyn(27, 5.0, 13)
	if len(md.Pairs) == 0 {
		t.Fatal("no neighbor pairs")
	}
	mNo := fastMachine()
	md.RunNoSA(mNo)
	if err := md.Verify(mNo); err != nil {
		t.Fatalf("NoSA: %v", err)
	}
	mHW := fastMachine()
	md.RunHWSA(mHW)
	if err := md.Verify(mHW); err != nil {
		t.Fatalf("HWSA: %v", err)
	}
	mSW := fastMachine()
	md.RunSWSA(mSW, 256)
	if err := md.Verify(mSW); err != nil {
		t.Fatalf("SWSA: %v", err)
	}
}

func TestMolDynNoSADoublesComputation(t *testing.T) {
	md := NewMolDyn(64, 5.0, 17)
	no := md.RunNoSA(fastMachine())
	hw := md.RunHWSA(fastMachine())
	// The duplicated variant performs ~2x the kernel flops (the HW variant
	// adds scatter-add FU ops, so the ratio is a bit under 2).
	ratio := float64(no.FPOps) / float64(hw.FPOps)
	if ratio < 1.5 || ratio > 2.1 {
		t.Fatalf("flop ratio NoSA/HWSA = %.2f, want ~2 (Newton's third law)", ratio)
	}
}

func TestMolDynForcesAreBalanced(t *testing.T) {
	// Newton's third law: total force over all atoms ≈ 0 in a periodic box.
	md := NewMolDyn(27, 5.0, 23)
	var sum [3]float64
	for i := 0; i < len(md.RefForce); i += 3 {
		sum[0] += md.RefForce[i]
		sum[1] += md.RefForce[i+1]
		sum[2] += md.RefForce[i+2]
	}
	for c := 0; c < 3; c++ {
		if sum[c] > 1e-6 || sum[c] < -1e-6 {
			t.Fatalf("net force component %d = %g", c, sum[c])
		}
	}
}

func TestMolDynSARefCount(t *testing.T) {
	md := NewMolDyn(27, 5.0, 29)
	addrs, vals := md.saRefs()
	if len(addrs) != md.NumSARefs() || len(vals) != len(addrs) {
		t.Fatalf("SA refs: %d addrs, %d vals, want %d", len(addrs), len(vals), md.NumSARefs())
	}
	if md.NumSARefs() != len(md.Pairs)*18 {
		t.Fatalf("refs per pair != 18")
	}
}

func TestMolDynVariantOrdering(t *testing.T) {
	// Figure 10's shape: software scatter-add is the slowest; hardware
	// scatter-add beats the duplicated-computation variant.
	md := NewMolDyn(125, 6.0, 31)
	no := md.RunNoSA(fastMachine())
	hw := md.RunHWSA(fastMachine())
	sw := md.RunSWSA(fastMachine(), 0)
	if !(hw.Cycles < no.Cycles && no.Cycles < sw.Cycles) {
		t.Fatalf("cycle ordering: HW=%d NoSA=%d SW=%d, want HW < NoSA < SW",
			hw.Cycles, no.Cycles, sw.Cycles)
	}
}
