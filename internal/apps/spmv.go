package apps

import (
	"fmt"
	"math"

	"scatteradd/internal/machine"
	"scatteradd/internal/mem"
	"scatteradd/internal/softscatter"
	"scatteradd/internal/workload"
)

// SpMV is the sparse matrix-vector multiply workload (§4.1): a synthetic
// cubic-Lagrange finite-element matrix multiplied by a dense vector, in
// compressed-sparse-row form (gather based, no scatter-add) and in
// element-by-element form (more computation, fewer memory references,
// requires scatter-add).
type SpMV struct {
	Mesh *workload.FEMMesh
	CSR  *workload.CSRMatrix
	X    []float64
	RefY []float64

	// Memory layout (word addresses).
	XBase, YBase           mem.Addr
	ValBase, ColBase       mem.Addr // CSR arrays
	RowBase                mem.Addr
	ElemMatBase, ElemNodes mem.Addr // EBE arrays
}

// NewSpMV builds the workload from an nx x ny x nz mesh (8 x 8 x 5 matches
// the paper's scale: 1,920 elements, ~10k DOF, ~44 nnz/row) and a seeded
// random x vector.
func NewSpMV(nx, ny, nz int, seed uint64) *SpMV {
	mesh := workload.NewFEMMesh(nx, ny, nz)
	csr := mesh.AssembleCSR()
	r := workload.NewRNG(seed)
	x := make([]float64, mesh.NumNodes)
	for i := range x {
		x[i] = r.Float64()*2 - 1
	}
	s := &SpMV{Mesh: mesh, CSR: csr, X: x, RefY: csr.MulVec(x)}
	// Lay arrays out in disjoint, line-aligned regions.
	n := mem.Addr(mesh.NumNodes)
	align := func(a mem.Addr) mem.Addr { return (a + 4095) &^ 4095 }
	s.XBase = 0
	s.YBase = align(n)
	s.ValBase = align(s.YBase + n)
	s.ColBase = align(s.ValBase + mem.Addr(csr.NNZ()))
	s.RowBase = align(s.ColBase + mem.Addr(csr.NNZ()))
	s.ElemMatBase = align(s.RowBase + n + 1)
	s.ElemNodes = align(s.ElemMatBase + mem.Addr(len(mesh.Elems)*workload.ElemNodes*workload.ElemNodes))
	return s
}

// Clone returns a deep copy of the workload (mesh, CSR arrays, x, and the
// reference result), sharing no slices with the original, so concurrent runs
// on separate machines cannot race.
func (s *SpMV) Clone() *SpMV {
	c := *s
	c.Mesh = s.Mesh.Clone()
	c.CSR = s.CSR.Clone()
	c.X = append([]float64(nil), s.X...)
	c.RefY = append([]float64(nil), s.RefY...)
	return &c
}

// Init writes x, the CSR arrays, and the EBE element data into memory.
// y starts at zero.
func (s *SpMV) Init(m *machine.Machine) {
	st := m.Store()
	st.WriteF64Slice(s.XBase, s.X)
	st.WriteF64Slice(s.ValBase, s.CSR.Val)
	for i, c := range s.CSR.Col {
		st.StoreI64(s.ColBase+mem.Addr(i), int64(c))
	}
	for i, p := range s.CSR.RowPtr {
		st.StoreI64(s.RowBase+mem.Addr(i), int64(p))
	}
	for e := range s.Mesh.Elems {
		k := s.Mesh.ElementMatrix(e)
		base := s.ElemMatBase + mem.Addr(e*workload.ElemNodes*workload.ElemNodes)
		for i := 0; i < workload.ElemNodes; i++ {
			for j := 0; j < workload.ElemNodes; j++ {
				st.StoreF64(base+mem.Addr(i*workload.ElemNodes+j), k[i][j])
			}
		}
		nbase := s.ElemNodes + mem.Addr(e*workload.ElemNodes)
		for i, nd := range s.Mesh.Elems[e] {
			st.StoreI64(nbase+mem.Addr(i), int64(nd))
		}
	}
}

// RunCSR executes the gather-based CSR algorithm: stream the values,
// columns and row pointers, gather x, multiply-accumulate, and store y.
func (s *SpMV) RunCSR(m *machine.Machine) machine.Result {
	s.Init(m)
	nnz := s.CSR.NNZ()
	n := s.Mesh.NumNodes
	xAddrs := make([]mem.Addr, nnz)
	for i, c := range s.CSR.Col {
		xAddrs[i] = s.XBase + mem.Addr(c)
	}
	y := make([]mem.Word, n)
	for i, v := range s.RefY {
		y[i] = mem.F64(v) // values the kernel computes; timing is simulated
	}
	prog := []machine.Op{
		machine.LoadStream("csr-val", s.ValBase, nnz),
		machine.LoadStream("csr-col", s.ColBase, nnz),
		machine.LoadStream("csr-row", s.RowBase, n+1),
		machine.Gather("csr-x", xAddrs),
		machine.Kernel("csr-mac", float64(2*nnz), float64(4*nnz)),
		machine.Scatter("csr-y", seqAddrs(s.YBase, n), y),
	}
	return m.Run(prog)
}

// ebeContributions computes, per element-node reference, the value the EBE
// algorithm scatter-adds into y (k_e · x_e restricted to each node).
func (s *SpMV) ebeContributions() (addrs []mem.Addr, vals []mem.Word) {
	for e := range s.Mesh.Elems {
		k := s.Mesh.ElementMatrix(e)
		elem := &s.Mesh.Elems[e]
		var xe [workload.ElemNodes]float64
		for i := 0; i < workload.ElemNodes; i++ {
			xe[i] = s.X[elem[i]]
		}
		for i := 0; i < workload.ElemNodes; i++ {
			sum := 0.0
			for j := 0; j < workload.ElemNodes; j++ {
				sum += k[i][j] * xe[j]
			}
			addrs = append(addrs, s.YBase+mem.Addr(elem[i]))
			vals = append(vals, mem.F64(sum))
		}
	}
	return addrs, vals
}

// EBERefs exposes the element-by-element scatter-add reference stream
// (Figure 13's "spas" trace).
func (s *SpMV) EBERefs() ([]mem.Addr, []mem.Word) { return s.ebeContributions() }

// ebePrefix returns the stream operations shared by both EBE variants:
// stream the element matrices and node lists, gather x at every element
// node, and run the dense per-element multiplications.
func (s *SpMV) ebePrefix() []machine.Op {
	ne := len(s.Mesh.Elems)
	en := workload.ElemNodes
	xAddrs := make([]mem.Addr, 0, ne*en)
	for e := range s.Mesh.Elems {
		for _, nd := range s.Mesh.Elems[e] {
			xAddrs = append(xAddrs, s.XBase+mem.Addr(nd))
		}
	}
	matWords := ne * en * en
	return []machine.Op{
		machine.LoadStream("ebe-mat", s.ElemMatBase, matWords),
		machine.LoadStream("ebe-nodes", s.ElemNodes, ne*en),
		machine.Gather("ebe-x", xAddrs),
		machine.Kernel("ebe-dense", float64(2*matWords), float64(matWords+3*ne*en)),
	}
}

// RunEBEHW executes element-by-element SpMV with the hardware scatter-add.
func (s *SpMV) RunEBEHW(m *machine.Machine) machine.Result {
	s.Init(m)
	var total machine.Result
	for _, op := range s.ebePrefix() {
		total.Add(m.RunOp(op))
	}
	addrs, vals := s.ebeContributions()
	total.Add(m.RunOp(machine.ScatterAdd("ebe-sa", mem.AddF64, addrs, vals)))
	return total
}

// RunEBESW executes element-by-element SpMV with the software sort +
// segmented scan scatter-add (0 selects the default batch).
func (s *SpMV) RunEBESW(m *machine.Machine, batch int) machine.Result {
	s.Init(m)
	var total machine.Result
	for _, op := range s.ebePrefix() {
		total.Add(m.RunOp(op))
	}
	addrs, vals := s.ebeContributions()
	total.Add(softscatter.SortScan(m, mem.AddF64, addrs, vals, batch))
	return total
}

// Verify compares y in the machine's memory against the sequential CSR
// reference within a relative tolerance (scatter-add reorders FP sums).
func (s *SpMV) Verify(m *machine.Machine) error {
	m.FlushCaches()
	got := m.Store().ReadF64Slice(s.YBase, s.Mesh.NumNodes)
	for i, want := range s.RefY {
		if math.Abs(got[i]-want) > 1e-9*math.Max(1, math.Abs(want)) {
			return fmt.Errorf("spmv: y[%d] = %g, want %g", i, got[i], want)
		}
	}
	return nil
}

// seqAddrs returns base..base+n-1.
func seqAddrs(base mem.Addr, n int) []mem.Addr {
	out := make([]mem.Addr, n)
	for i := range out {
		out[i] = base + mem.Addr(i)
	}
	return out
}
