package apps

import (
	"testing"

	"scatteradd/internal/machine"
	"scatteradd/internal/mem"
)

// The paper (§3.3) notes that although the hardware reorders the additions,
// "it is consistent in the hardware and repeatable for each run of the
// program". The simulator must therefore be bit-for-bit deterministic:
// identical configuration and workload give identical cycle counts and
// identical memory images, including the floating-point results whose
// summation order the hardware chose.

func TestHistogramRunsAreDeterministic(t *testing.T) {
	run := func() (machine.Result, []int64) {
		h := NewHistogram(4096, 512, 99)
		m := fastMachine()
		res := h.RunHW(m)
		m.FlushCaches()
		return res, m.Store().ReadI64Slice(h.BinBase, h.Range)
	}
	r1, bins1 := run()
	r2, bins2 := run()
	if r1.Cycles != r2.Cycles || r1.FPOps != r2.FPOps || r1.MemRefs != r2.MemRefs {
		t.Fatalf("metrics differ: %+v vs %+v", r1, r2)
	}
	for i := range bins1 {
		if bins1[i] != bins2[i] {
			t.Fatalf("bin %d differs", i)
		}
	}
}

func TestFloatReorderingIsRepeatable(t *testing.T) {
	// FP scatter-add results may differ from the sequential order, but the
	// hardware's chosen order must repeat exactly across runs.
	run := func() []uint64 {
		md := NewMolDyn(27, 5.0, 7)
		m := fastMachine()
		md.RunHWSA(m)
		m.FlushCaches()
		out := make([]uint64, len(md.RefForce))
		for i := range out {
			out[i] = m.Store().Load(md.ForceBase + mem.Addr(i))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("force word %d: %x vs %x — FP results not bit-repeatable", i, a[i], b[i])
		}
	}
}

func TestSoftwareVariantsAreDeterministic(t *testing.T) {
	run := func() uint64 {
		h := NewHistogram(2000, 256, 5)
		m := fastMachine()
		return h.RunSortScan(m, 0).Cycles
	}
	if run() != run() {
		t.Fatal("sort&scan cycle count not deterministic")
	}
}
