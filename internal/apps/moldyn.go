package apps

import (
	"fmt"
	"math"

	"scatteradd/internal/machine"
	"scatteradd/internal/mem"
	"scatteradd/internal/softscatter"
	"scatteradd/internal/workload"
)

// Model constants for the non-bonded water kernel cost (per atom pair:
// distance, inverse square root iterations, Coulomb, and for the O-O pair
// Lennard-Jones — comparable to GROMACS's water-loop operation count).
const (
	flopsPerAtomPair = 78
	atomPairsPerMol  = workload.AtomsPerMol * workload.AtomsPerMol
	// Words gathered per directed pair entry: both molecules' 3 atoms x
	// (3 coordinates + charge).
	wordsPerPairGather = 2 * workload.AtomsPerMol * 4
	// Force components updated per molecule pair (both molecules).
	forceRefsPerPair = 2 * workload.AtomsPerMol * 3
)

// MolDyn is the molecular-dynamics workload: the non-bonded force
// calculation for a box of water molecules over one timestep (§4.1, the
// GROMACS water kernel).
type MolDyn struct {
	W     *workload.WaterBox
	Pairs [][2]int32 // half neighbor list (Newton's third law)
	Full  [][]int32  // full neighbor list (duplicated computation)

	PosBase   mem.Addr // atom data: 4 words per atom (x, y, z, charge)
	ForceBase mem.Addr // 3 words per atom
	ListBase  mem.Addr

	RefForce []float64 // sequential reference forces (3 per atom)
}

// NewMolDyn builds nMol water molecules with a neighbor list at the given
// cutoff. nMol=903 and cutoff≈9 reproduce the paper's scale (Figure 10; the
// force array spans 903*3*3 = 8127 indices, the paper's ~8192).
func NewMolDyn(nMol int, cutoff float64, seed uint64) *MolDyn {
	w := workload.NewWaterBox(nMol, 3.1, seed)
	md := &MolDyn{
		W:     w,
		Pairs: w.HalfNeighborPairs(cutoff),
	}
	md.Full = w.FullNeighborList(cutoff)
	atoms := nMol * workload.AtomsPerMol
	align := func(a mem.Addr) mem.Addr { return (a + 4095) &^ 4095 }
	md.PosBase = 0
	md.ForceBase = align(mem.Addr(atoms * 4))
	md.ListBase = align(md.ForceBase + mem.Addr(atoms*3))
	md.RefForce = md.referenceForces()
	return md
}

// Clone returns a deep copy of the workload (water box, neighbor lists, and
// the reference forces), sharing no slices with the original, so concurrent
// runs on separate machines cannot race.
func (md *MolDyn) Clone() *MolDyn {
	c := *md
	c.W = md.W.Clone()
	c.Pairs = append([][2]int32(nil), md.Pairs...)
	c.Full = make([][]int32, len(md.Full))
	for i, l := range md.Full {
		c.Full[i] = append([]int32(nil), l...)
	}
	c.RefForce = append([]float64(nil), md.RefForce...)
	return &c
}

// NumSARefs returns the number of scatter-add references the Newton's-law
// variants issue (Figure 13's GROMACS trace size).
func (md *MolDyn) NumSARefs() int { return len(md.Pairs) * forceRefsPerPair }

// pairForces computes the force contributions of one molecule pair: the
// first 9 values are +f on molecule i's atoms (3 atoms x 3 components), the
// next 9 are -f on molecule j's atoms. LJ acts on the O-O pair; Coulomb on
// all 9 atom pairs. Softened at short range to keep the synthetic
// configuration numerically tame.
func (md *MolDyn) pairForces(i, j int32) [forceRefsPerPair]float64 {
	var out [forceRefsPerPair]float64
	q := workload.Charges()
	for a := 0; a < workload.AtomsPerMol; a++ {
		ia := int(i)*workload.AtomsPerMol + a
		for b := 0; b < workload.AtomsPerMol; b++ {
			jb := int(j)*workload.AtomsPerMol + b
			d := md.W.Disp(ia, jb)
			r2 := d[0]*d[0] + d[1]*d[1] + d[2]*d[2] + 0.25 // softening
			invR2 := 1 / r2
			invR := math.Sqrt(invR2)
			scale := q[a] * q[b] * invR * invR2 // Coulomb: qq/r^3 * d
			if a == 0 && b == 0 {
				sr6 := invR2 * invR2 * invR2 * 9.0 // sigma^6 = 9
				scale += (12*sr6*sr6 - 6*sr6) * invR2 * 0.1
			}
			for c := 0; c < 3; c++ {
				f := scale * d[c]
				out[a*3+c] += f
				out[workload.AtomsPerMol*3+b*3+c] -= f
			}
		}
	}
	return out
}

// referenceForces accumulates all pair forces sequentially.
func (md *MolDyn) referenceForces() []float64 {
	f := make([]float64, md.W.NumMol*workload.AtomsPerMol*3)
	for _, p := range md.Pairs {
		pf := md.pairForces(p[0], p[1])
		for a := 0; a < workload.AtomsPerMol; a++ {
			for c := 0; c < 3; c++ {
				f[(int(p[0])*workload.AtomsPerMol+a)*3+c] += pf[a*3+c]
				f[(int(p[1])*workload.AtomsPerMol+a)*3+c] += pf[(workload.AtomsPerMol+a)*3+c]
			}
		}
	}
	return f
}

// Init writes atom data (positions + charges) into memory. Forces start at
// zero.
func (md *MolDyn) Init(m *machine.Machine) {
	st := m.Store()
	q := workload.Charges()
	for atom, p := range md.W.Pos {
		base := md.PosBase + mem.Addr(atom*4)
		st.StoreF64(base, p[0])
		st.StoreF64(base+1, p[1])
		st.StoreF64(base+2, p[2])
		st.StoreF64(base+3, q[atom%workload.AtomsPerMol])
	}
	// Neighbor list image (molecule ids), used by the list-load streams.
	w := 0
	for _, p := range md.Pairs {
		st.StoreI64(md.ListBase+mem.Addr(w), int64(p[0])<<32|int64(p[1]))
		w++
	}
}

// gatherAddrsForPair returns the 24 atom-data addresses of a molecule pair.
func (md *MolDyn) gatherAddrsForPair(i, j int32, out []mem.Addr) []mem.Addr {
	for _, mol := range [2]int32{i, j} {
		for a := 0; a < workload.AtomsPerMol; a++ {
			base := md.PosBase + mem.Addr((int(mol)*workload.AtomsPerMol+a)*4)
			out = append(out, base, base+1, base+2, base+3)
		}
	}
	return out
}

// forceAddr returns the force-array address of (molecule, atom, component).
func (md *MolDyn) forceAddr(mol int32, atom, comp int) mem.Addr {
	return md.ForceBase + mem.Addr((int(mol)*workload.AtomsPerMol+atom)*3+comp)
}

// RunNoSA executes the duplicated-computation variant: iterate the full
// neighbor list so each molecule's forces are accumulated privately and
// written once, at the cost of computing every interaction twice (§4.3).
func (md *MolDyn) RunNoSA(m *machine.Machine) machine.Result {
	md.Init(m)
	var total machine.Result
	entries := 0
	var gAddrs []mem.Addr
	for i, neigh := range md.Full {
		for _, j := range neigh {
			gAddrs = md.gatherAddrsForPair(int32(i), j, gAddrs)
			entries++
		}
	}
	total.Add(m.RunOp(machine.LoadStream("md-list", md.ListBase, entries)))
	total.Add(m.RunOp(machine.Gather("md-gather", gAddrs)))
	total.Add(m.RunOp(machine.Kernel("md-force2x",
		float64(entries*atomPairsPerMol*flopsPerAtomPair),
		float64(entries*(wordsPerPairGather+workload.AtomsPerMol*3)))))
	// Forces were accumulated in the SRF per center molecule: one stream
	// write of the whole force array.
	forces := make([]mem.Word, len(md.RefForce))
	for i, f := range md.RefForce {
		forces[i] = mem.F64(f)
	}
	total.Add(m.RunOp(machine.StoreStream("md-fwrite", md.ForceBase, forces)))
	return total
}

// newtonPrefix returns the operations shared by the scatter-add variants:
// stream the half list, gather both molecules' atom data, and run the force
// kernel once per pair.
func (md *MolDyn) newtonPrefix() []machine.Op {
	var gAddrs []mem.Addr
	for _, p := range md.Pairs {
		gAddrs = md.gatherAddrsForPair(p[0], p[1], gAddrs)
	}
	n := len(md.Pairs)
	return []machine.Op{
		machine.LoadStream("md-list", md.ListBase, n),
		machine.Gather("md-gather", gAddrs),
		machine.Kernel("md-force",
			float64(n*atomPairsPerMol*flopsPerAtomPair),
			float64(n*(wordsPerPairGather+forceRefsPerPair))),
	}
}

// saRefs returns the scatter-add address and value streams of the
// Newton's-law variants.
func (md *MolDyn) saRefs() (addrs []mem.Addr, vals []mem.Word) {
	addrs = make([]mem.Addr, 0, md.NumSARefs())
	vals = make([]mem.Word, 0, md.NumSARefs())
	for _, p := range md.Pairs {
		pf := md.pairForces(p[0], p[1])
		for a := 0; a < workload.AtomsPerMol; a++ {
			for c := 0; c < 3; c++ {
				addrs = append(addrs, md.forceAddr(p[0], a, c))
				vals = append(vals, mem.F64(pf[a*3+c]))
			}
		}
		for a := 0; a < workload.AtomsPerMol; a++ {
			for c := 0; c < 3; c++ {
				addrs = append(addrs, md.forceAddr(p[1], a, c))
				vals = append(vals, mem.F64(pf[(workload.AtomsPerMol+a)*3+c]))
			}
		}
	}
	return addrs, vals
}

// SARefs exposes the scatter-add reference stream (Figure 13's "mole"
// trace).
func (md *MolDyn) SARefs() ([]mem.Addr, []mem.Word) { return md.saRefs() }

// RunHWSA executes the Newton's-third-law variant with hardware
// scatter-add.
func (md *MolDyn) RunHWSA(m *machine.Machine) machine.Result {
	md.Init(m)
	var total machine.Result
	for _, op := range md.newtonPrefix() {
		total.Add(m.RunOp(op))
	}
	addrs, vals := md.saRefs()
	total.Add(m.RunOp(machine.ScatterAdd("md-sa", mem.AddF64, addrs, vals)))
	return total
}

// RunSWSA executes the Newton's-third-law variant with the software sort +
// segmented scan scatter-add.
func (md *MolDyn) RunSWSA(m *machine.Machine, batch int) machine.Result {
	md.Init(m)
	var total machine.Result
	for _, op := range md.newtonPrefix() {
		total.Add(m.RunOp(op))
	}
	addrs, vals := md.saRefs()
	total.Add(softscatter.SortScan(m, mem.AddF64, addrs, vals, batch))
	return total
}

// Verify compares the force array against the sequential reference.
func (md *MolDyn) Verify(m *machine.Machine) error {
	m.FlushCaches()
	got := m.Store().ReadF64Slice(md.ForceBase, len(md.RefForce))
	for i, want := range md.RefForce {
		if math.Abs(got[i]-want) > 1e-6*math.Max(1, math.Abs(want)) {
			return fmt.Errorf("moldyn: force[%d] = %g, want %g", i, got[i], want)
		}
	}
	return nil
}
