package apps

import (
	"fmt"
	"hash/fnv"
	"testing"

	"scatteradd/internal/machine"
)

// The parallel experiment runner (internal/exp) hands each concurrent run a
// Clone() of the workload and relies on Run* methods never mutating the
// workload they are given. These tests pin both halves of that contract:
// clones share no state with the original, and every Run variant leaves the
// workload's checksum untouched.

func histChecksum(h *Histogram) uint64 {
	s := fnv.New64a()
	fmt.Fprint(s, h.N, h.Range, h.BinBase, h.DataBase, h.Idx, h.Ref)
	return s.Sum64()
}

func spmvChecksum(v *SpMV) uint64 {
	s := fnv.New64a()
	fmt.Fprint(s, v.Mesh.NumNodes, v.Mesh.Elems)
	fmt.Fprint(s, v.CSR.N, v.CSR.RowPtr, v.CSR.Col, v.CSR.Val)
	fmt.Fprint(s, v.X, v.RefY, v.XBase, v.YBase, v.ValBase, v.ColBase, v.RowBase)
	return s.Sum64()
}

func moldynChecksum(md *MolDyn) uint64 {
	s := fnv.New64a()
	fmt.Fprint(s, md.W.NumMol, md.W.Box, md.W.Pos)
	fmt.Fprint(s, md.Pairs, md.Full, md.RefForce, md.PosBase, md.ForceBase, md.ListBase)
	return s.Sum64()
}

func newMachine() *machine.Machine { return machine.New(machine.DefaultConfig()) }

func TestWorkloadsImmutableAcrossRuns(t *testing.T) {
	h := NewHistogram(512, 64, 7)
	before := histChecksum(h)
	for name, run := range map[string]func() machine.Result{
		"hw":        func() machine.Result { return h.RunHW(newMachine()) },
		"sortscan":  func() machine.Result { return h.RunSortScan(newMachine(), 0) },
		"privatize": func() machine.Result { return h.RunPrivatization(newMachine(), 0) },
		"overlap":   func() machine.Result { return h.RunHWOverlapped(newMachine(), 0) },
	} {
		run()
		if histChecksum(h) != before {
			t.Fatalf("histogram mutated by Run %s", name)
		}
	}

	s := NewSpMV(2, 2, 2, 7)
	beforeS := spmvChecksum(s)
	for name, run := range map[string]func() machine.Result{
		"csr":   func() machine.Result { return s.RunCSR(newMachine()) },
		"ebehw": func() machine.Result { return s.RunEBEHW(newMachine()) },
		"ebesw": func() machine.Result { return s.RunEBESW(newMachine(), 0) },
	} {
		run()
		if spmvChecksum(s) != beforeS {
			t.Fatalf("spmv mutated by Run %s", name)
		}
	}

	md := NewMolDyn(27, 5.0, 7)
	beforeM := moldynChecksum(md)
	for name, run := range map[string]func() machine.Result{
		"nosa": func() machine.Result { return md.RunNoSA(newMachine()) },
		"hw":   func() machine.Result { return md.RunHWSA(newMachine()) },
		"sw":   func() machine.Result { return md.RunSWSA(newMachine(), 0) },
	} {
		run()
		if moldynChecksum(md) != beforeM {
			t.Fatalf("moldyn mutated by Run %s", name)
		}
	}
}

func TestHistogramCloneIsIndependent(t *testing.T) {
	h := NewHistogram(256, 32, 3)
	c := h.Clone()
	if histChecksum(h) != histChecksum(c) {
		t.Fatal("clone differs from original")
	}
	c.Idx[0]++
	c.Ref[0]++
	if histChecksum(h) == histChecksum(c) {
		t.Fatal("mutating the clone reached the original")
	}
	// The mutated clone must not affect a fresh run of the original.
	m := newMachine()
	h.RunHW(m)
	if err := h.Verify(m); err != nil {
		t.Fatalf("original failed after clone mutation: %v", err)
	}
}

func TestSpMVCloneIsIndependent(t *testing.T) {
	s := NewSpMV(2, 2, 2, 3)
	c := s.Clone()
	if spmvChecksum(s) != spmvChecksum(c) {
		t.Fatal("clone differs from original")
	}
	c.X[0] += 1
	c.CSR.Val[0] += 1
	c.Mesh.Elems[0][0]++
	c.RefY[0] += 1
	if spmvChecksum(s) == spmvChecksum(c) {
		t.Fatal("mutating the clone reached the original")
	}
	m := newMachine()
	s.RunCSR(m)
	if err := s.Verify(m); err != nil {
		t.Fatalf("original failed after clone mutation: %v", err)
	}
}

func TestMolDynCloneIsIndependent(t *testing.T) {
	md := NewMolDyn(27, 5.0, 3)
	c := md.Clone()
	if moldynChecksum(md) != moldynChecksum(c) {
		t.Fatal("clone differs from original")
	}
	c.W.Pos[0][0] += 1
	c.Pairs[0][0]++
	if len(c.Full[0]) > 0 {
		c.Full[0][0]++
	}
	c.RefForce[0] += 1
	if moldynChecksum(md) == moldynChecksum(c) {
		t.Fatal("mutating the clone reached the original")
	}
	m := newMachine()
	md.RunHWSA(m)
	if err := md.Verify(m); err != nil {
		t.Fatalf("original failed after clone mutation: %v", err)
	}
}
