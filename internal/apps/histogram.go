// Package apps implements the paper's three evaluation applications (§4.1)
// on the simulated machine, each in the hardware scatter-add variant and
// the software alternatives the paper measures:
//
//   - Histogram: uniform random integers binned with scatter-add, versus
//     sort + segmented scan and versus privatization (Figures 6, 7, 8).
//   - Sparse matrix-vector multiply: compressed sparse row (gather based)
//     versus element-by-element with software or hardware scatter-add
//     (Figure 9).
//   - Molecular dynamics: a GROMACS-like water non-bonded force kernel with
//     duplicated computation (no scatter-add), software scatter-add, and
//     hardware scatter-add (Figure 10).
//
// Every variant produces its real numeric result in the machine's memory;
// Verify methods compare against a sequential reference, so each timing
// run doubles as an end-to-end correctness check.
package apps

import (
	"fmt"

	"scatteradd/internal/machine"
	"scatteradd/internal/mem"
	"scatteradd/internal/softscatter"
	"scatteradd/internal/stream"
	"scatteradd/internal/workload"
)

// Histogram is the binning workload: count how many input elements map to
// each bin (§1).
type Histogram struct {
	N     int   // input elements
	Range int   // number of bins (index range)
	Idx   []int // the dataset (bin index per element)
	Ref   []int64

	BinBase  mem.Addr // bins occupy [BinBase, BinBase+Range)
	DataBase mem.Addr // the dataset image in memory
}

// NewHistogram builds a histogram input of n uniform indices over rangeSize
// bins.
func NewHistogram(n, rangeSize int, seed uint64) *Histogram {
	idx := workload.UniformIndices(n, rangeSize, seed)
	// Keep the dataset image well clear of the bins (separate lines/pages).
	dataBase := mem.Addr((rangeSize + 4096) &^ 4095)
	return &Histogram{
		N: n, Range: rangeSize, Idx: idx,
		Ref:      workload.HistogramReference(idx, rangeSize),
		BinBase:  0,
		DataBase: dataBase,
	}
}

// Clone returns a deep copy of the workload, sharing no slices with the
// original, so concurrent runs on separate machines cannot race. Run methods
// never mutate the workload (see TestWorkloadsImmutableAcrossRuns), but the
// parallel experiment runner clones anyway to make isolation structural.
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.Idx = append([]int(nil), h.Idx...)
	c.Ref = append([]int64(nil), h.Ref...)
	return &c
}

// Init writes the dataset into the machine's memory image (bins start at
// zero, which a fresh store already provides).
func (h *Histogram) Init(m *machine.Machine) {
	data := make([]int64, h.N)
	for i, x := range h.Idx {
		data[i] = int64(x)
	}
	m.Store().WriteI64Slice(h.DataBase, data)
}

// binAddrs returns the scatter-add target addresses.
func (h *Histogram) binAddrs() []mem.Addr {
	return workload.IndicesToAddrs(h.Idx, h.BinBase)
}

// loadAndMap returns the common prefix of every variant: stream the dataset
// in and run the mapping kernel that turns data values into bin indices.
func (h *Histogram) loadAndMap() []machine.Op {
	return []machine.Op{
		machine.LoadStream("hist-load", h.DataBase, h.N),
		machine.IntKernel("hist-map", float64(h.N), float64(2*h.N)),
	}
}

// RunHW computes the histogram with the hardware scatter-add
// (scatterAdd(histogram, data, 1) from §1).
func (h *Histogram) RunHW(m *machine.Machine) machine.Result {
	h.Init(m)
	var total machine.Result
	for _, op := range h.loadAndMap() {
		total.Add(m.RunOp(op))
	}
	total.Add(m.RunOp(machine.ScatterAdd("hist-sa", mem.AddI64, h.binAddrs(), []mem.Word{mem.I64(1)})))
	return total
}

// RunHWOverlapped computes the histogram with the hardware scatter-add,
// software-pipelined in chunks: while chunk i's scatter-add drains in the
// memory system (issued asynchronously on one address generator), chunk
// i+1's data is loaded and mapped on the other — the overlap the paper
// describes in §1 ("the processor's main execution unit can continue
// running the program, while the sums are being updated in memory").
// chunk 0 selects a default of 4096 elements.
func (h *Histogram) RunHWOverlapped(m *machine.Machine, chunk int) machine.Result {
	h.Init(m)
	addrs := h.binAddrs()
	return stream.Pipeline(m, h.N, chunk, stream.GatherComputeScatterAdd(
		func(start, end int) machine.Op {
			return machine.LoadStream("hist-load", h.DataBase+mem.Addr(start), end-start)
		},
		func(count int) machine.Op {
			return machine.IntKernel("hist-map", float64(count), float64(2*count))
		},
		func(start, end int) machine.Op {
			return machine.ScatterAdd("hist-sa", mem.AddI64, addrs[start:end], []mem.Word{mem.I64(1)})
		},
	))
}

// RunSortScan computes the histogram with the software sort + segmented
// scan method in batches (0 selects the default batch size).
func (h *Histogram) RunSortScan(m *machine.Machine, batch int) machine.Result {
	h.Init(m)
	var total machine.Result
	for _, op := range h.loadAndMap() {
		total.Add(m.RunOp(op))
	}
	total.Add(softscatter.SortScan(m, mem.AddI64, h.binAddrs(), []mem.Word{mem.I64(1)}, batch))
	return total
}

// RunPrivatization computes the histogram with the privatization method
// (0 selects the default register budget).
func (h *Histogram) RunPrivatization(m *machine.Machine, privateBins int) machine.Result {
	h.Init(m)
	// Privatization iterates the dataset once per register group; the load
	// and map are inside Privatize's per-pass cost.
	return softscatter.Privatize(m, mem.AddI64, h.binAddrs(), []mem.Word{mem.I64(1)},
		h.BinBase, h.Range, h.DataBase, privateBins)
}

// Verify checks the bins in the machine's memory against the sequential
// reference.
func (h *Histogram) Verify(m *machine.Machine) error {
	m.FlushCaches()
	got := m.Store().ReadI64Slice(h.BinBase, h.Range)
	for b, want := range h.Ref {
		if got[b] != want {
			return fmt.Errorf("histogram: bin %d = %d, want %d", b, got[b], want)
		}
	}
	return nil
}
