package stats

import (
	"encoding/json"
	"strings"
	"testing"
)

// sampleTimeline records two samples of a counter advancing 10 then 25.
func sampleTimeline() *Timeline {
	r := NewRegistry()
	c := r.Group("g").Counter("n")
	ga := r.Group("g").Gauge("lvl")
	tl := &Timeline{Interval: 100}
	c.Add(10)
	ga.Set(2)
	tl.Record(100, r.Snapshot())
	c.Add(15)
	ga.Set(1)
	tl.Record(200, r.Snapshot())
	return tl
}

func TestTimelineDeltas(t *testing.T) {
	d := sampleTimeline().Deltas()
	if len(d.Samples) != 2 || d.Interval != 100 {
		t.Fatalf("deltas shape: %+v", d)
	}
	if v, _ := d.Samples[0].Snap.Get("g/n"); v != 10 {
		t.Fatalf("first delta = %d, want 10 (cumulative)", v)
	}
	if v, _ := d.Samples[1].Snap.Get("g/n"); v != 15 {
		t.Fatalf("second delta = %d, want 15", v)
	}
	if v, _ := d.Samples[1].Snap.Get("g/lvl"); v != 2 {
		t.Fatalf("gauge keeps high-water: %d, want 2", v)
	}
}

func TestTimelineWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := sampleTimeline().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "cycle,key,value" {
		t.Fatalf("header = %q", lines[0])
	}
	// 2 samples x 2 keys.
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), b.String())
	}
	if lines[2] != "100,g/n,10" {
		t.Fatalf("row = %q, want 100,g/n,10", lines[2])
	}
	if lines[4] != "200,g/n,25" {
		t.Fatalf("row = %q, want 200,g/n,25", lines[4])
	}
}

func TestTimelineWriteJSONL(t *testing.T) {
	var b strings.Builder
	if err := sampleTimeline().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	var rec struct {
		Cycle    uint64            `json:"cycle"`
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Cycle != 200 || rec.Counters["g/n"] != 25 {
		t.Fatalf("record = %+v", rec)
	}
}
