package stats

import (
	"strings"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}

	var g Gauge
	g.Set(3)
	g.Add(4)
	g.Add(-6)
	if g.Value() != 1 {
		t.Fatalf("gauge value = %d, want 1", g.Value())
	}
	if g.Max() != 7 {
		t.Fatalf("gauge max = %d, want 7", g.Max())
	}

	h := NewGroup("x").Histogram("occ", 4)
	for _, v := range []int{0, 1, 1, 3, 9, -2} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("hist count = %d, want 6", h.Count())
	}
	if h.Sum() != 0+1+1+3+9+0 {
		t.Fatalf("hist sum = %d, want 14", h.Sum())
	}
	// 9 overflows into the last bucket; -2 clamps to bucket 0.
	want := []uint64{2, 2, 0, 2}
	for i, w := range want {
		if h.Bucket(i) != w {
			t.Fatalf("bucket %d = %d, want %d", i, h.Bucket(i), w)
		}
	}
	if h.Buckets() != 4 {
		t.Fatalf("buckets = %d, want 4", h.Buckets())
	}
	if m := h.Mean(); m < 2.3 || m > 2.4 {
		t.Fatalf("mean = %v, want 14/6", m)
	}
}

func TestGroupIdempotentAndKindConflicts(t *testing.T) {
	g := NewGroup("u")
	if g.Counter("a") != g.Counter("a") {
		t.Fatal("Counter not idempotent")
	}
	if g.Gauge("b") != g.Gauge("b") {
		t.Fatal("Gauge not idempotent")
	}
	if g.Histogram("c", 3) != g.Histogram("c", 3) {
		t.Fatal("Histogram not idempotent")
	}
	mustPanic(t, "counter-as-gauge", func() { g.Gauge("a") })
	mustPanic(t, "gauge-as-histogram", func() { g.Histogram("b", 2) })
	mustPanic(t, "histogram-as-counter", func() { g.Counter("c") })
	mustPanic(t, "zero-bucket histogram", func() { g.Histogram("d", 0) })
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	zb := r.Group("zbank")
	zb.Counter("hits").Add(7)
	ab := r.Group("abank")
	ab.Counter("miss").Add(2)
	ab.Gauge("depth").Set(5)
	ab.Gauge("depth").Set(1)
	h := ab.Histogram("occ", 2)
	h.Observe(1)

	s := r.Snapshot()
	var keys []string
	for _, e := range s.Entries {
		keys = append(keys, e.Key)
	}
	want := []string{
		"abank/depth", "abank/miss",
		"abank/occ.b0", "abank/occ.b1", "abank/occ.count", "abank/occ.sum",
		"zbank/hits",
	}
	if strings.Join(keys, ",") != strings.Join(want, ",") {
		t.Fatalf("keys = %v, want %v", keys, want)
	}
	if v, ok := s.Get("abank/depth"); !ok || v != 5 {
		t.Fatalf("gauge snapshot = %d,%v, want high-water 5", v, ok)
	}
	if v, ok := s.Get("zbank/hits"); !ok || v != 7 {
		t.Fatalf("counter snapshot = %d,%v", v, ok)
	}
	if _, ok := s.Get("nope"); ok {
		t.Fatal("Get on missing key reported ok")
	}
	if s.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(want))
	}
}

func TestRegistryAdopt(t *testing.T) {
	r := NewRegistry()
	g := NewGroup("saunit")
	g.Counter("fu_ops").Add(3)
	r.Adopt("saunit[2]", g)
	if g.Name() != "saunit[2]" {
		t.Fatalf("adopted name = %q", g.Name())
	}
	if v, ok := r.Snapshot().Get("saunit[2]/fu_ops"); !ok || v != 3 {
		t.Fatalf("adopted metric = %d,%v", v, ok)
	}
	mustPanic(t, "duplicate adopt", func() { r.Adopt("saunit[2]", NewGroup("x")) })
	if r.Group("saunit[2]") != g {
		t.Fatal("Group does not return the adopted group")
	}
}

func TestSnapshotSub(t *testing.T) {
	r := NewRegistry()
	c := r.Group("g").Counter("n")
	ga := r.Group("g").Gauge("lvl")
	c.Add(10)
	ga.Set(4)
	before := r.Snapshot()
	c.Add(5)
	ga.Set(9)
	after := r.Snapshot()

	d := after.Sub(before)
	if v, _ := d.Get("g/n"); v != 5 {
		t.Fatalf("counter delta = %d, want 5", v)
	}
	// Gauges keep the newer (cumulative high-water) value.
	if v, _ := d.Get("g/lvl"); v != 9 {
		t.Fatalf("gauge after sub = %d, want 9", v)
	}
	// Keys missing from prev subtract nothing.
	r2 := NewRegistry()
	r2.Group("g").Counter("fresh").Add(3)
	if v, _ := r2.Snapshot().Sub(before).Get("g/fresh"); v != 3 {
		t.Fatalf("fresh key delta = %d, want 3", v)
	}
}

func TestSnapshotMerge(t *testing.T) {
	mk := func(fill func(*Registry)) Snapshot {
		r := NewRegistry()
		fill(r)
		return r.Snapshot()
	}
	a := mk(func(r *Registry) {
		r.Group("a").Counter("n").Add(2)
		r.Group("a").Gauge("g").Set(3)
		r.Group("only_a").Counter("x").Add(1)
	})
	b := mk(func(r *Registry) {
		r.Group("a").Counter("n").Add(5)
		r.Group("a").Gauge("g").Set(2)
		r.Group("only_b").Counter("y").Add(4)
	})
	m := a.Merge(b)
	checks := map[string]uint64{"a/n": 7, "a/g": 3, "only_a/x": 1, "only_b/y": 4}
	for k, want := range checks {
		if v, ok := m.Get(k); !ok || v != want {
			t.Fatalf("merge[%s] = %d,%v, want %d", k, v, ok, want)
		}
	}
	// MergeAll is left-to-right and handles the empty case.
	if MergeAll(nil).Len() != 0 {
		t.Fatal("MergeAll(nil) not empty")
	}
	all := MergeAll([]Snapshot{a, b, a})
	if v, _ := all.Get("a/n"); v != 9 {
		t.Fatalf("MergeAll counter = %d, want 9", v)
	}
}

func TestSnapshotCollapse(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 3; i++ {
		g := NewGroup("cache")
		g.Counter("conflicts").Add(uint64(i + 1))
		g.Gauge("depth").Set(int64(i))
		r.Adopt(groupName("cache", i), g)
	}
	r.Group("dram").Counter("row_hits").Add(8)
	c := r.Snapshot().Collapse()
	if v, _ := c.Get("cache/conflicts"); v != 1+2+3 {
		t.Fatalf("collapsed counter = %d, want 6", v)
	}
	if v, _ := c.Get("cache/depth"); v != 2 {
		t.Fatalf("collapsed gauge = %d, want max 2", v)
	}
	if v, _ := c.Get("dram/row_hits"); v != 8 {
		t.Fatalf("uninstanced key = %d, want 8", v)
	}
}

func TestSnapshotFormat(t *testing.T) {
	r := NewRegistry()
	r.Group("g").Counter("long_counter_name").Add(12)
	r.Group("g").Gauge("lvl").Set(3)
	out := r.Snapshot().Format("  ")
	if !strings.Contains(out, "  g/long_counter_name  12\n") {
		t.Fatalf("missing counter line in:\n%s", out)
	}
	if !strings.Contains(out, "g/lvl") || !strings.Contains(out, "(max)") {
		t.Fatalf("missing gauge annotation in:\n%s", out)
	}
}

func TestNegativeGaugeSnapshotClamps(t *testing.T) {
	r := NewRegistry()
	r.Group("g").Gauge("lvl").Add(-5)
	if v, _ := r.Snapshot().Get("g/lvl"); v != 0 {
		t.Fatalf("negative gauge snapshot = %d, want 0", v)
	}
}

func groupName(base string, i int) string {
	return base + "[" + string(rune('0'+i)) + "]"
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}
