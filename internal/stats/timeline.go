package stats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Timeline is a cycle-interval series of snapshots, recorded by the engine's
// sample hook. Samples hold cumulative values; Deltas converts them to
// per-interval activity.
type Timeline struct {
	Interval uint64
	Samples  []Sample
}

// Sample is one timeline point: the cumulative snapshot at a cycle.
type Sample struct {
	Cycle uint64
	Snap  Snapshot
}

// Record appends a sample.
func (t *Timeline) Record(cycle uint64, s Snapshot) {
	t.Samples = append(t.Samples, Sample{Cycle: cycle, Snap: s})
}

// Deltas returns a timeline whose counter values are per-interval increments
// (sample i minus sample i-1); gauges keep their sampled high-water marks.
func (t *Timeline) Deltas() *Timeline {
	out := &Timeline{Interval: t.Interval, Samples: make([]Sample, len(t.Samples))}
	for i, s := range t.Samples {
		if i == 0 {
			out.Samples[i] = s
			continue
		}
		out.Samples[i] = Sample{Cycle: s.Cycle, Snap: s.Snap.Sub(t.Samples[i-1].Snap)}
	}
	return out
}

// Write emits the timeline in the named format: "csv" (WriteCSV) or
// "jsonl" (WriteJSONL). It is the single dispatch point for every timeline
// exporter, so format names stay consistent across CLIs.
func (t *Timeline) Write(w io.Writer, format string) error {
	switch format {
	case "csv":
		return t.WriteCSV(w)
	case "jsonl":
		return t.WriteJSONL(w)
	}
	return fmt.Errorf("stats: unknown timeline format %q (want csv or jsonl)", format)
}

// WriteCSV emits the timeline in long form — one row per (cycle, metric) —
// with a cycle,key,value header. Values are cumulative as sampled; use
// Deltas first for per-interval activity.
func (t *Timeline) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"cycle", "key", "value"}); err != nil {
		return err
	}
	for _, s := range t.Samples {
		cyc := strconv.FormatUint(s.Cycle, 10)
		for _, e := range s.Snap.Entries {
			if err := cw.Write([]string{cyc, e.Key, strconv.FormatUint(e.Val, 10)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSONL emits one JSON object per sample: {"cycle": N, "counters":
// {key: value, ...}}. Keys are serialized in sorted order, so the output is
// deterministic.
func (t *Timeline) WriteJSONL(w io.Writer) error {
	for _, s := range t.Samples {
		counters := make(map[string]uint64, len(s.Snap.Entries))
		for _, e := range s.Snap.Entries {
			counters[e.Key] = e.Val
		}
		line, err := json.Marshal(struct {
			Cycle    uint64            `json:"cycle"`
			Counters map[string]uint64 `json:"counters"`
		}{Cycle: s.Cycle, Counters: counters})
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s\n", line); err != nil {
			return err
		}
	}
	return nil
}
