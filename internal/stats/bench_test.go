package stats

import "testing"

// The counting primitives must stay cheap enough to leave on every hot
// path: a Counter.Inc is one integer add, a Histogram.Observe two adds and
// a bounds check. BenchmarkEngineTick in internal/machine guards the
// end-to-end cost.

func BenchmarkCounterInc(b *testing.B) {
	c := NewGroup("g").Counter("c")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() != uint64(b.N) {
		b.Fatal("lost increments")
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewGroup("g").Gauge("g")
	for i := 0; i < b.N; i++ {
		g.Set(int64(i & 1023))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewGroup("g").Histogram("h", 16)
	for i := 0; i < b.N; i++ {
		h.Observe(i & 15)
	}
}

// BenchmarkRegistrySnapshot covers the cold path: the per-sample cost of a
// timeline over a machine-sized registry (17 groups as in the Table 1 node).
func BenchmarkRegistrySnapshot(b *testing.B) {
	r := NewRegistry()
	for gi := 0; gi < 17; gi++ {
		g := r.Group(benchName(gi))
		for ci := 0; ci < 8; ci++ {
			g.Counter(benchName(ci)).Add(uint64(gi + ci))
		}
		g.Histogram("occ", 9).Observe(gi % 9)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := r.Snapshot()
		if s.Len() == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

func benchName(i int) string {
	return string([]byte{'g', byte('0' + i/10), byte('0' + i%10)})
}
