// Package stats is the simulator's hardware performance-counter layer: a
// registry of named counters, gauges, and histograms grouped per component
// instance ("saunit[3]", "cache[0]", "dram", ...), with snapshot, diff, and
// merge operations over the collected values.
//
// The paper's results are explained by memory-system microarchitecture
// events — stream-cache bank conflicts, combining-store occupancy, DRAM row
// locality, crossbar back-pressure (§4.2-§4.5) — and this package is how the
// simulator exposes them: every tick component allocates its metrics once at
// construction and increments plain machine words on the hot path.
//
// Concurrency contract: a Group/Registry is confined to the single goroutine
// that drives its simulation. The parallel experiment runner gives every run
// its own registry and merges the resulting Snapshots (plain values) at
// collection time, in input-index order, so reports stay race-free and
// byte-identical for any worker count.
//
// Overhead contract: metric updates are branch-free field increments with no
// allocation and no indirection beyond one pointer — cheap enough that they
// stay enabled unconditionally. "Disabling" stats (the CLI default) only
// skips Snapshot collection and rendering; the counting itself is always on
// and is guarded against regression by BenchmarkEngineTick in CI.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// MetricKind determines how snapshot entries combine under Merge and Sub.
type MetricKind uint8

const (
	// KindCounter is a monotonically increasing event count: Merge sums,
	// Sub subtracts. Histogram buckets, counts, and sums are counters too.
	KindCounter MetricKind = iota
	// KindGauge is a level with a high-water mark: Merge takes the maximum,
	// Sub keeps the newer value.
	KindGauge
)

// Counter is a monotonically increasing event count.
type Counter struct{ n uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Gauge tracks a non-negative level and its high-water mark. Snapshots
// export the high-water mark (the level itself is transient).
type Gauge struct{ cur, max int64 }

// Set records the current level.
func (g *Gauge) Set(v int64) {
	g.cur = v
	if v > g.max {
		g.max = v
	}
}

// Add adjusts the current level by d.
func (g *Gauge) Add(d int64) { g.Set(g.cur + d) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.cur }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max }

// Histogram is a linear, value-indexed histogram: Observe(v) increments
// bucket v, with the last bucket absorbing overflow. It is sized for small
// occupancy domains (combining-store entries, MSHRs) where bucket == level.
type Histogram struct {
	buckets []uint64
	count   uint64
	sum     uint64
}

// Observe records one sample. Negative values clamp to bucket 0; values at
// or beyond the bucket count clamp to the last bucket (sum still accrues the
// true value).
func (h *Histogram) Observe(v int) {
	i := v
	if i < 0 {
		i = 0
		v = 0
	} else if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
	h.count++
	h.sum += uint64(v)
}

// ObserveN records n identical samples of v in one call. It is equivalent
// to calling Observe(v) n times; the simulation engine uses it to apply the
// per-cycle occupancy observations of a skipped idle stretch in bulk.
func (h *Histogram) ObserveN(v int, n uint64) {
	i := v
	if i < 0 {
		i = 0
		v = 0
	} else if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i] += n
	h.count += n
	h.sum += uint64(v) * n
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() uint64 { return h.sum }

// Bucket returns the number of observations in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Buckets returns the bucket count.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// Mean returns the average observed value (0 with no observations).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// metric is one named instrument of a group.
type metric struct {
	name string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Group holds the metrics of one component instance. Components create a
// detached group at construction (NewGroup); a Machine or System adopts it
// into its Registry under an instance name (Registry.Adopt).
type Group struct {
	name   string
	order  []*metric
	byName map[string]*metric
}

// NewGroup returns an empty group with the given (provisional) name.
func NewGroup(name string) *Group {
	return &Group{name: name, byName: make(map[string]*metric)}
}

// Name returns the group's current name.
func (g *Group) Name() string { return g.name }

func (g *Group) metricFor(name string) *metric {
	m, ok := g.byName[name]
	if !ok {
		m = &metric{name: name}
		g.byName[name] = m
		g.order = append(g.order, m)
	}
	return m
}

// Counter returns the named counter, creating it on first use.
func (g *Group) Counter(name string) *Counter {
	m := g.metricFor(name)
	if m.g != nil || m.h != nil {
		panic(fmt.Sprintf("stats: metric %s/%s already registered with a different kind", g.name, name))
	}
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge returns the named gauge, creating it on first use.
func (g *Group) Gauge(name string) *Gauge {
	m := g.metricFor(name)
	if m.c != nil || m.h != nil {
		panic(fmt.Sprintf("stats: metric %s/%s already registered with a different kind", g.name, name))
	}
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// Histogram returns the named histogram with the given bucket count,
// creating it on first use.
func (g *Group) Histogram(name string, buckets int) *Histogram {
	if buckets < 1 {
		panic(fmt.Sprintf("stats: histogram %s/%s needs at least one bucket", g.name, name))
	}
	m := g.metricFor(name)
	if m.c != nil || m.g != nil {
		panic(fmt.Sprintf("stats: metric %s/%s already registered with a different kind", g.name, name))
	}
	if m.h == nil {
		m.h = &Histogram{buckets: make([]uint64, buckets)}
	}
	return m.h
}

// Registry is an ordered collection of groups, one per component instance.
type Registry struct {
	order  []*Group
	byName map[string]*Group
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Group)}
}

// Group returns the named group, creating it on first use.
func (r *Registry) Group(name string) *Group {
	if g, ok := r.byName[name]; ok {
		return g
	}
	g := NewGroup(name)
	r.byName[name] = g
	r.order = append(r.order, g)
	return g
}

// Adopt registers a detached group (created by a component constructor)
// under an instance name, e.g. "saunit[3]". The group is renamed.
func (r *Registry) Adopt(name string, g *Group) {
	if _, ok := r.byName[name]; ok {
		panic(fmt.Sprintf("stats: duplicate group %q", name))
	}
	g.name = name
	r.byName[name] = g
	r.order = append(r.order, g)
}

// Entry is one key/value pair of a snapshot. Histograms expand into bucket
// entries ("group/metric.b0" ...) plus ".count" and ".sum".
type Entry struct {
	Key  string
	Kind MetricKind
	Val  uint64
}

// Snapshot is an immutable, key-sorted copy of a registry's values.
type Snapshot struct {
	Entries []Entry
}

// Snapshot collects every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	var out []Entry
	for _, g := range r.order {
		for _, m := range g.order {
			key := g.name + "/" + m.name
			switch {
			case m.c != nil:
				out = append(out, Entry{Key: key, Kind: KindCounter, Val: m.c.n})
			case m.g != nil:
				v := m.g.max
				if v < 0 {
					v = 0
				}
				out = append(out, Entry{Key: key, Kind: KindGauge, Val: uint64(v)})
			case m.h != nil:
				for i, b := range m.h.buckets {
					out = append(out, Entry{Key: fmt.Sprintf("%s.b%d", key, i), Kind: KindCounter, Val: b})
				}
				out = append(out, Entry{Key: key + ".count", Kind: KindCounter, Val: m.h.count})
				out = append(out, Entry{Key: key + ".sum", Kind: KindCounter, Val: m.h.sum})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return Snapshot{Entries: out}
}

// Get returns the value for key, and whether the key is present.
func (s Snapshot) Get(key string) (uint64, bool) {
	i := sort.Search(len(s.Entries), func(i int) bool { return s.Entries[i].Key >= key })
	if i < len(s.Entries) && s.Entries[i].Key == key {
		return s.Entries[i].Val, true
	}
	return 0, false
}

// Len returns the number of entries.
func (s Snapshot) Len() int { return len(s.Entries) }

// Sub returns s minus prev: counters subtract (a key missing from prev
// counts as zero); gauges keep s's value. Keys only in prev are dropped.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := make([]Entry, len(s.Entries))
	for i, e := range s.Entries {
		if e.Kind == KindCounter {
			if old, ok := prev.Get(e.Key); ok {
				e.Val -= old
			}
		}
		out[i] = e
	}
	return Snapshot{Entries: out}
}

// Merge returns the union of s and o: counters sum, gauges take the maximum.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := make([]Entry, 0, len(s.Entries)+len(o.Entries))
	i, j := 0, 0
	for i < len(s.Entries) && j < len(o.Entries) {
		a, b := s.Entries[i], o.Entries[j]
		switch {
		case a.Key < b.Key:
			out = append(out, a)
			i++
		case a.Key > b.Key:
			out = append(out, b)
			j++
		default:
			if a.Kind == KindGauge {
				if b.Val > a.Val {
					a.Val = b.Val
				}
			} else {
				a.Val += b.Val
			}
			out = append(out, a)
			i, j = i+1, j+1
		}
	}
	out = append(out, s.Entries[i:]...)
	out = append(out, o.Entries[j:]...)
	return Snapshot{Entries: out}
}

// MergeAll merges snapshots left to right (deterministic for a fixed input
// order; Merge itself is commutative for counters and gauges).
func MergeAll(snaps []Snapshot) Snapshot {
	var out Snapshot
	for _, s := range snaps {
		out = out.Merge(s)
	}
	return out
}

// Collapse merges per-instance groups into one group per component kind:
// "cache[3]/conflicts" and "cache[5]/conflicts" become "cache/conflicts".
// Use it to render compact summaries of many-bank machines.
func (s Snapshot) Collapse() Snapshot {
	byKey := make(map[string]Entry, len(s.Entries))
	for _, e := range s.Entries {
		key := e.Key
		if i := strings.IndexByte(key, '['); i >= 0 {
			if j := strings.IndexByte(key[i:], ']'); j >= 0 {
				key = key[:i] + key[i+j+1:]
			}
		}
		if old, ok := byKey[key]; ok {
			if e.Kind == KindGauge {
				if old.Val > e.Val {
					e.Val = old.Val
				}
			} else {
				e.Val += old.Val
			}
		}
		e.Key = key
		byKey[key] = e
	}
	out := make([]Entry, 0, len(byKey))
	for _, e := range byKey {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return Snapshot{Entries: out}
}

// Format renders the snapshot as one "key value" line per entry, each
// prefixed by indent. Gauge keys are annotated as high-water marks.
func (s Snapshot) Format(indent string) string {
	width := 0
	for _, e := range s.Entries {
		if len(e.Key) > width {
			width = len(e.Key)
		}
	}
	var b strings.Builder
	for _, e := range s.Entries {
		suffix := ""
		if e.Kind == KindGauge {
			suffix = "  (max)"
		}
		fmt.Fprintf(&b, "%s%-*s  %d%s\n", indent, width, e.Key, e.Val, suffix)
	}
	return b.String()
}
