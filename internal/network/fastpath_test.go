package network

import (
	"testing"

	"scatteradd/internal/fault"
	"scatteradd/internal/stats"
)

// TestFastPathEquivalence drives identical traffic — including injected
// faults and saturating bursts — through a WordsPerCyc==1 crossbar on the
// O(ports) fast arbitration path and a twin forced onto the general loop,
// and demands bit-identical deliveries, stats, and arbiter behaviour every
// cycle. The fast path is what makes the kilo-port flat crossbar of the
// scale-out figure simulable, so its equivalence is load-bearing.
func TestFastPathEquivalence(t *testing.T) {
	for _, faults := range []bool{false, true} {
		cfg := DefaultConfig(9)
		cfg.OutputQDepth = 2 // force output back-pressure and full wires
		cfg.WireDepth = 3
		fast := New[int](cfg)
		slow := New[int](cfg)
		slow.DisableFastPath()
		if faults {
			fc := fault.Config{Seed: 99, NetDropRate: 0.1, NetDupRate: 0.1}.WithDefaults()
			fast.SetFaults(fc, "twin")
			slow.SetFaults(fc, "twin")
		}
		// xorshift traffic: bursts aimed at a hot output plus a uniform tail.
		rng := uint64(12345)
		next := func(n int) int {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return int(rng % uint64(n))
		}
		for cycle := uint64(0); cycle < 2000; cycle++ {
			for k := 0; k < 4; k++ {
				src := next(cfg.Nodes)
				dst := next(cfg.Nodes)
				if k%2 == 0 {
					dst = 0 // hot spot
				}
				p := Packet[int]{Src: src, Dst: dst, Payload: int(cycle)<<8 | k}
				okF := fast.Send(p)
				okS := slow.Send(p)
				if okF != okS {
					t.Fatalf("faults=%v cycle %d: send accept mismatch %v vs %v", faults, cycle, okF, okS)
				}
			}
			fast.Tick(cycle)
			slow.Tick(cycle)
			// Drain a bounded amount per cycle so queues stay contended.
			for d := 0; d < cfg.Nodes; d++ {
				for k := 0; k < 1+d%2; k++ {
					pF, okF := fast.Recv(d)
					pS, okS := slow.Recv(d)
					if okF != okS || pF != pS {
						t.Fatalf("faults=%v cycle %d node %d: delivery mismatch (%v,%v) vs (%v,%v)",
							faults, cycle, d, pF, okF, pS, okS)
					}
				}
			}
			if fast.Stats() != slow.Stats() {
				t.Fatalf("faults=%v cycle %d: stats diverged\nfast %+v\nslow %+v",
					faults, cycle, fast.Stats(), slow.Stats())
			}
		}
		fastReg, slowReg := stats.NewRegistry(), stats.NewRegistry()
		fastReg.Adopt("net", fast.StatsGroup())
		slowReg.Adopt("net", slow.StatsGroup())
		if f, s := fastReg.Snapshot().Format(""), slowReg.Snapshot().Format(""); f != s {
			t.Fatalf("faults=%v: counter snapshots diverged\nfast:\n%s\nslow:\n%s", faults, f, s)
		}
	}
}
