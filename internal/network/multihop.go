// Multi-hop switch graphs: a fat-tree or 2D mesh of small Crossbar switches
// with optional Ultracomputer-style in-switch combining and per-hop
// reliability.
//
// Topology. A tree of fan-in F places the N endpoints under ceil(N/F)
// contiguous leaf switches and recursively groups F switches under a parent
// until one root remains; packets climb to the lowest common ancestor and
// descend. A mesh places one switch per endpoint on an X×Y grid (port 0 the
// local node, ports 1..4 the east/west/north/south neighbours) and routes
// X-first, then Y — deterministic dimension-order routing.
//
// Combining. In front of every switch input port sits a staging window (the
// combine table). When combining is on, an arriving packet first scans the
// switch's staged packets for one with the same combining key and
// destination; a hit merges the payloads (Combiner.Merge) and the arrival is
// absorbed — it never consumes link bandwidth again. Staged packets drain
// into the switch each cycle as bandwidth allows, and a drained packet has
// left the window: combining opportunity exists exactly while traffic is
// queued, which is precisely when relief is needed (the NYU Ultracomputer's
// rationale for switch-level fetch-and-add combining).
//
// Reliability. The PR 5 link layer is reused per hop: every frame entering a
// switch gets a fabric-wide sequence number and is held by its input port
// for retransmission (exponential backoff, capped; a frame unacked after
// MaxRetries attempts panics the run as unrecoverable). The switch's output
// side deduplicates by sequence number and acknowledges on successful
// handoff to the next stage, so injected wire drops and duplications inside
// any switch are absorbed hop-locally instead of end-to-end. Retransmitted
// frames bypass the staging window — they carry an already-assigned sequence
// number and must not re-combine.
//
// Everything below runs in the multinode system's sequential commit phase,
// so sharded runs stay byte-identical by construction.
package network

import (
	"fmt"

	"scatteradd/internal/fault"
	"scatteradd/internal/sim"
	"scatteradd/internal/span"
	"scatteradd/internal/stats"
)

// GraphKind selects a multi-hop switch graph.
type GraphKind int

const (
	// TreeGraph is a fat-tree of configurable fan-in.
	TreeGraph GraphKind = iota + 1
	// MeshGraph is a 2D mesh of per-node switches with XY routing.
	MeshGraph
)

func (k GraphKind) String() string {
	switch k {
	case TreeGraph:
		return "tree"
	case MeshGraph:
		return "mesh"
	}
	return fmt.Sprintf("GraphKind(%d)", int(k))
}

// MultiHopConfig describes a switched multi-hop fabric.
type MultiHopConfig struct {
	Kind  GraphKind
	Nodes int

	// FanIn is the tree's children per switch (TreeGraph; >= 2, default 4).
	FanIn int
	// MeshX, MeshY are the mesh grid dimensions (MeshGraph; both zero picks
	// the most-square factorization of Nodes; otherwise MeshX*MeshY must
	// equal Nodes).
	MeshX, MeshY int

	// Combine enables the in-switch combining window at every hop. The
	// fabric also needs a Combiner (SetCombiner) to know which payloads may
	// merge.
	Combine bool

	// Link configures every switch's internal crossbar: per-port bandwidth,
	// queue depths, and wire latency. Link.Nodes is ignored (each switch
	// sizes itself); Link.Latency is the per-hop latency.
	Link Config
}

// DefaultMultiHopConfig returns a fan-in-4 tree over nodes endpoints at the
// paper's low per-port bandwidth.
func DefaultMultiHopConfig(nodes int) MultiHopConfig {
	return MultiHopConfig{Kind: TreeGraph, Nodes: nodes, FanIn: 4, Link: DefaultConfig(nodes)}
}

// Combiner tells a combining fabric which payloads may merge and how. Key
// reports a payload's combining key, or ok=false for uncombinable traffic
// (acks, fetch variants); two packets merge when their keys and destinations
// match. Merge folds absorb into into and returns the merged payload.
// OnAbsorb, when non-nil, is called once per absorbed packet so the caller
// can settle request-lifecycle accounting (the absorbed request is complete
// the instant it merges).
type Combiner[T any] struct {
	Key      func(p T) (key uint64, ok bool)
	Merge    func(into, absorb T) T
	OnAbsorb func(absorb T)
}

// hopFrame wraps a packet for one switch traversal: seq is the per-hop
// reliability sequence number (0 when faults are off), from the input port
// holding the retransmission copy.
type hopFrame[T any] struct {
	pkt  Packet[T]
	seq  uint64
	from int
}

// hopLink is where a switch output port (or a node injection) leads: a
// destination node's delivery queue, or another switch's input staging.
type hopLink struct {
	node int // >= 0: deliver to this endpoint
	sw   int // else: stage into switch sw ...
	port int // ... at this input port
}

// hopPending is a sent-but-unacked frame held at its input port for
// retransmission, mirroring the multinode end-to-end link layer per hop.
type hopPending[T any] struct {
	f        hopFrame[T]
	dst      int    // output port within the switch
	deadline uint64 // cycle at which the frame retransmits
	attempt  int    // transmissions so far beyond the first
}

// mhSwitch is one switch: a crossbar plus per-port staging (the combining
// window), retransmission buffers, and receive-side dedup state.
type mhSwitch[T any] struct {
	xb    *Crossbar[hopFrame[T]]
	ports int
	out   []hopLink // where each output port leads

	// Tree routing: children[c] = [childLo[c], childHi[c]) node range;
	// parent is the uplink port (-1 at the root). Mesh routing uses the
	// switch's grid coordinates instead.
	childLo, childHi []int
	parent           int
	x, y             int

	stage   [][]hopFrame[T]       // per input port: the combining window
	pending [][]hopPending[T]     // per input port: unacked frames, in seq order
	seen    []map[uint64]struct{} // per output port: delivered seqs (dedup)
}

// MultiHop is a switched multi-hop fabric satisfying Fabric.
type MultiHop[T any] struct {
	cfg  MultiHopConfig
	sws  []*mhSwitch[T]
	inj  []hopLink               // per endpoint: injection point
	outq []*sim.Queue[Packet[T]] // per endpoint: delivered packets

	comb  Combiner[T]
	stats Stats
	met   mhMetrics
	tr    *span.Tracer

	// Per-hop reliability (engaged by SetFaults when network faults are
	// configured).
	reliable bool
	flt      fault.Config
	seqCtr   uint64

	rootSw  int // tree: the root switch (-1 for meshes)
	meshX   int // mesh grid width
	meshCut int // mesh: crossings between columns meshCut-1 and meshCut count as RootPkts
}

// mhMetrics are the fabric-level performance counters.
type mhMetrics struct {
	group     *stats.Group
	sent      *stats.Counter // packets accepted at injection ports
	delivered *stats.Counter // packets handed to destination endpoints
	hops      *stats.Counter // switch traversals (staging admissions)
	combined  *stats.Counter // packets absorbed by in-switch combining
	rootPkts  *stats.Counter // root-switch / bisection crossings
	retrans   *stats.Counter // per-hop retransmissions
	dups      *stats.Counter // duplicate hop frames discarded
}

func newMHMetrics() mhMetrics {
	g := stats.NewGroup("net")
	return mhMetrics{
		group:     g,
		sent:      g.Counter("sent"),
		delivered: g.Counter("delivered"),
		hops:      g.Counter("switch_hops"),
		combined:  g.Counter("combined_in_switch"),
		rootPkts:  g.Counter("root_packets"),
		retrans:   g.Counter("hop_retransmits"),
		dups:      g.Counter("hop_dups_dropped"),
	}
}

// NewMultiHop builds the switch graph. Panics on invalid configuration —
// construction errors are programming errors, matching New.
func NewMultiHop[T any](cfg MultiHopConfig) *MultiHop[T] {
	if cfg.Nodes < 1 {
		panic(fmt.Sprintf("network: multihop needs >= 1 node, got %d", cfg.Nodes))
	}
	m := &MultiHop[T]{cfg: cfg, met: newMHMetrics(), rootSw: -1}
	m.inj = make([]hopLink, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		m.outq = append(m.outq, sim.NewQueue[Packet[T]](max(1, cfg.Link.OutputQDepth)))
	}
	switch cfg.Kind {
	case TreeGraph:
		m.buildTree()
	case MeshGraph:
		m.buildMesh()
	default:
		panic(fmt.Sprintf("network: unknown multihop kind %v", cfg.Kind))
	}
	return m
}

// addSwitch appends a switch with the given port count, sizing its crossbar
// from the per-link config.
func (m *MultiHop[T]) addSwitch(ports int) *mhSwitch[T] {
	link := m.cfg.Link
	link.Nodes = ports
	s := &mhSwitch[T]{
		xb:     New[hopFrame[T]](link),
		ports:  ports,
		out:    make([]hopLink, ports),
		parent: -1,
	}
	s.stage = make([][]hopFrame[T], ports)
	s.pending = make([][]hopPending[T], ports)
	s.seen = make([]map[uint64]struct{}, ports)
	m.sws = append(m.sws, s)
	return s
}

// buildTree constructs the fan-in-F tree bottom-up: contiguous leaf ranges,
// then F-way groups of switches until a single root remains.
func (m *MultiHop[T]) buildTree() {
	f := m.cfg.FanIn
	if f < 2 {
		panic(fmt.Sprintf("network: tree fan-in must be >= 2, got %d", f))
	}
	// Leaf level: switch j serves nodes [j*f, min(N,(j+1)*f)).
	var level []int // switch indices of the level under construction
	for lo := 0; lo < m.cfg.Nodes; lo += f {
		hi := min(lo+f, m.cfg.Nodes)
		nc := hi - lo
		ports := nc + 1 // +1 uplink, trimmed below if this leaf is the root
		if m.cfg.Nodes <= f {
			ports = nc
		}
		s := m.addSwitch(ports)
		for c := 0; c < nc; c++ {
			node := lo + c
			s.childLo = append(s.childLo, node)
			s.childHi = append(s.childHi, node+1)
			s.out[c] = hopLink{node: node}
			m.inj[node] = hopLink{node: -1, sw: len(m.sws) - 1, port: c}
		}
		if ports > nc {
			s.parent = nc
		}
		level = append(level, len(m.sws)-1)
	}
	for len(level) > 1 {
		var up []int
		for g := 0; g < len(level); g += f {
			children := level[g:min(g+f, len(level))]
			nc := len(children)
			isRoot := len(level) <= f
			ports := nc + 1
			if isRoot {
				ports = nc
			}
			p := m.addSwitch(ports)
			pi := len(m.sws) - 1
			for c, ci := range children {
				child := m.sws[ci]
				p.childLo = append(p.childLo, child.childLo[0])
				p.childHi = append(p.childHi, child.childHi[len(child.childHi)-1])
				p.out[c] = hopLink{node: -1, sw: ci, port: child.parent}
				child.out[child.parent] = hopLink{node: -1, sw: pi, port: c}
			}
			if ports > nc {
				p.parent = nc
			}
			up = append(up, pi)
		}
		level = up
	}
	m.rootSw = level[0]
}

// buildMesh constructs the X×Y grid: one switch per endpoint, five ports
// each (node, east, west, north, south), neighbours cross-linked.
func (m *MultiHop[T]) buildMesh() {
	x, y := m.cfg.MeshX, m.cfg.MeshY
	if x == 0 && y == 0 {
		x, y = squarest(m.cfg.Nodes)
	}
	if x < 1 || y < 1 || x*y != m.cfg.Nodes {
		panic(fmt.Sprintf("network: mesh %dx%d does not cover %d nodes", x, y, m.cfg.Nodes))
	}
	m.meshX, m.meshCut = x, x/2
	const pNode, pEast, pWest, pNorth, pSouth = 0, 1, 2, 3, 4
	for n := 0; n < m.cfg.Nodes; n++ {
		s := m.addSwitch(5)
		s.x, s.y = n%x, n/x
		for p := range s.out {
			s.out[p] = hopLink{node: -1, sw: -1}
		}
		s.out[pNode] = hopLink{node: n}
		m.inj[n] = hopLink{node: -1, sw: n, port: pNode}
	}
	for n, s := range m.sws {
		if s.x+1 < x {
			s.out[pEast] = hopLink{node: -1, sw: n + 1, port: pWest}
		}
		if s.x > 0 {
			s.out[pWest] = hopLink{node: -1, sw: n - 1, port: pEast}
		}
		if s.y+1 < y {
			s.out[pNorth] = hopLink{node: -1, sw: n + x, port: pSouth}
		}
		if s.y > 0 {
			s.out[pSouth] = hopLink{node: -1, sw: n - x, port: pNorth}
		}
	}
}

// squarest returns the most-square factorization w*h == n with w >= h.
func squarest(n int) (w, h int) {
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			w, h = n/d, d
		}
	}
	return w, h
}

// route returns the output port of switch si toward endpoint dst.
func (m *MultiHop[T]) route(si, dst int) int {
	s := m.sws[si]
	if m.cfg.Kind == MeshGraph {
		dx, dy := dst%m.meshX, dst/m.meshX
		switch {
		case dx > s.x:
			return 1 // east
		case dx < s.x:
			return 2 // west
		case dy > s.y:
			return 3 // north
		case dy < s.y:
			return 4 // south
		}
		return 0 // local node
	}
	for c := range s.childLo {
		if dst >= s.childLo[c] && dst < s.childHi[c] {
			return c
		}
	}
	return s.parent // up toward the lowest common ancestor
}

// SetCombiner installs the payload merge hooks used when Combine is on.
func (m *MultiHop[T]) SetCombiner(c Combiner[T]) { m.comb = c }

// Stats returns a copy of the counters. Wire-level fault and stall activity
// lives inside the per-switch crossbars and is aggregated here.
func (m *MultiHop[T]) Stats() Stats {
	st := m.stats
	for _, s := range m.sws {
		xs := s.xb.Stats()
		st.Stalled += xs.Stalled
		st.Dropped += xs.Dropped
		st.Duped += xs.Duped
	}
	return st
}

// StatsGroup returns the fabric's performance-counter group.
func (m *MultiHop[T]) StatsGroup() *stats.Group { return m.met.group }

// SetSpanTracer installs a request-lifecycle tracer: every frame admitted to
// a switch crossbar becomes an async span on that switch's track.
func (m *MultiHop[T]) SetSpanTracer(tr *span.Tracer) { m.tr = tr }

// SetFaults arms per-switch wire fault injection (each switch salts its own
// deterministic streams) and, when network faults are configured, engages
// the per-hop reliability layer.
func (m *MultiHop[T]) SetFaults(fc fault.Config, inst string) {
	m.flt = fc
	m.reliable = fc.NetFaults()
	for i, s := range m.sws {
		s.xb.SetFaults(fc, fmt.Sprintf("%s.sw%d", inst, i))
		if m.reliable {
			for p := range s.seen {
				s.seen[p] = make(map[uint64]struct{})
			}
		}
	}
}

// CanSend reports whether endpoint src can inject a packet this cycle. A
// full staging window may still absorb a combinable packet, so this is
// conservative, exactly like the flat crossbar's full-input check.
func (m *MultiHop[T]) CanSend(src int) bool {
	l := m.inj[src]
	return len(m.sws[l.sw].stage[l.port]) < m.cfg.Link.InputQDepth
}

// Send injects a packet at its source endpoint. It reports false when the
// first switch's staging window is full and the packet cannot combine
// (back-pressure).
func (m *MultiHop[T]) Send(p Packet[T]) bool {
	if p.Src < 0 || p.Src >= m.cfg.Nodes || p.Dst < 0 || p.Dst >= m.cfg.Nodes {
		panic(fmt.Sprintf("network: packet %d->%d outside %d nodes", p.Src, p.Dst, m.cfg.Nodes))
	}
	l := m.inj[p.Src]
	if !m.stageIn(l.sw, l.port, p) {
		return false
	}
	m.stats.Sent++
	m.met.sent.Inc()
	return true
}

// stageIn admits a packet into switch si's combining window at the given
// input port: merge into a staged same-key packet if combining allows,
// otherwise append (false when the window is full). Appends count as switch
// traversals; merges by design do not — the absorbed packet stops consuming
// bandwidth.
func (m *MultiHop[T]) stageIn(si, port int, p Packet[T]) bool {
	s := m.sws[si]
	if m.cfg.Combine && m.comb.Key != nil {
		if key, ok := m.comb.Key(p.Payload); ok {
			for q := range s.stage {
				for i := range s.stage[q] {
					st := &s.stage[q][i]
					if st.pkt.Dst != p.Dst {
						continue
					}
					if k2, ok2 := m.comb.Key(st.pkt.Payload); ok2 && k2 == key {
						st.pkt.Payload = m.comb.Merge(st.pkt.Payload, p.Payload)
						m.stats.Combined++
						m.met.combined.Inc()
						if m.comb.OnAbsorb != nil {
							m.comb.OnAbsorb(p.Payload)
						}
						return true
					}
				}
			}
		}
	}
	if len(s.stage[port]) >= m.cfg.Link.InputQDepth {
		return false
	}
	s.stage[port] = append(s.stage[port], hopFrame[T]{pkt: p, from: port})
	m.stats.Hops++
	m.met.hops.Inc()
	if si == m.rootSw {
		m.stats.RootPkts++
		m.met.rootPkts.Inc()
	}
	return true
}

// Peek returns the next deliverable packet at endpoint dst without consuming
// it.
func (m *MultiHop[T]) Peek(dst int) (Packet[T], bool) { return m.outq[dst].Peek() }

// Recv pops one delivered packet at endpoint dst, if available.
func (m *MultiHop[T]) Recv(dst int) (Packet[T], bool) { return m.outq[dst].Pop() }

// Tick advances the fabric one cycle in three phases: (A) overdue
// retransmissions and staging windows drain into each switch's crossbar,
// (B) every crossbar moves packets, (C) switch outputs drain across links —
// deduplicating, acknowledging, and either staging into the next switch or
// delivering to the destination endpoint. All switches are visited in index
// order; the phases keep a frame from traversing more than one switch per
// cycle.
func (m *MultiHop[T]) Tick(now uint64) {
	// Phase A: retransmissions first (they are the oldest traffic), then
	// staged frames claim the remaining input bandwidth.
	for si, s := range m.sws {
		if m.reliable {
			m.retransmit(s, now)
		}
		for port := range s.stage {
			for len(s.stage[port]) > 0 {
				f := s.stage[port][0]
				outp := m.route(si, f.pkt.Dst)
				if m.reliable {
					f.seq = m.seqCtr + 1
				}
				if !s.xb.Send(Packet[hopFrame[T]]{Src: port, Dst: outp, Payload: f}) {
					break
				}
				if m.reliable {
					m.seqCtr++
					s.pending[port] = append(s.pending[port], hopPending[T]{
						f: f, dst: outp, deadline: now + m.flt.RetryTimeout,
					})
				}
				if m.tr != nil {
					m.tr.SpanAsync(fmt.Sprintf("net.sw[%d]", si),
						fmt.Sprintf("pkt %d->%d", f.pkt.Src, f.pkt.Dst),
						now, now+uint64(m.cfg.Link.Latency))
				}
				copy(s.stage[port], s.stage[port][1:])
				s.stage[port] = s.stage[port][:len(s.stage[port])-1]
			}
		}
	}
	// Phase B: every switch's crossbar moves packets one cycle.
	for _, s := range m.sws {
		s.xb.Tick(now)
	}
	// Phase C: drain switch outputs across links.
	for si, s := range m.sws {
		for port := 0; port < s.ports; port++ {
			for {
				p, ok := s.xb.Peek(port)
				if !ok {
					break
				}
				hf := p.Payload
				if m.reliable {
					if _, dup := s.seen[port][hf.seq]; dup {
						// A retransmission (or injected duplicate) of a frame
						// already forwarded: consume, re-ack, drop.
						s.xb.Recv(port)
						m.ackHop(s, hf)
						m.stats.HopDups++
						m.met.dups.Inc()
						continue
					}
				}
				link := s.out[port]
				if link.node >= 0 {
					if m.outq[link.node].Full() {
						break
					}
					s.xb.Recv(port)
					m.acceptHop(s, port, hf)
					m.outq[link.node].MustPush(hf.pkt)
					m.stats.Delivered++
					m.met.delivered.Inc()
					continue
				}
				if link.sw < 0 {
					panic(fmt.Sprintf("network: switch %d routed out an unwired port %d", si, port))
				}
				if !m.stageIn(link.sw, link.port, hf.pkt) {
					break // downstream staging full: back-pressure
				}
				s.xb.Recv(port)
				m.acceptHop(s, port, hf)
				if m.cfg.Kind == MeshGraph {
					// Bisection accounting: crossings between columns
					// meshCut-1 and meshCut are the mesh's "root link".
					if (port == 1 && s.x == m.meshCut-1) || (port == 2 && s.x == m.meshCut) {
						m.stats.RootPkts++
						m.met.rootPkts.Inc()
					}
				}
			}
		}
	}
}

// acceptHop settles reliability state for a frame that cleared switch s:
// mark its sequence delivered at the output port and acknowledge the input
// port's retransmission copy. Hop acks are internal switch state, so they
// settle the same cycle (no ack packets compete for bandwidth — consistent
// with real combining networks, whose switch acks ride dedicated wires).
func (m *MultiHop[T]) acceptHop(s *mhSwitch[T], port int, hf hopFrame[T]) {
	if !m.reliable {
		return
	}
	s.seen[port][hf.seq] = struct{}{}
	m.ackHop(s, hf)
}

// ackHop removes the frame's retransmission copy at its input port. Already
// acked frames (duplicates racing a retransmission) are ignored.
func (m *MultiHop[T]) ackHop(s *mhSwitch[T], hf hopFrame[T]) {
	pend := s.pending[hf.from]
	for i := range pend {
		if pend[i].f.seq != hf.seq {
			continue
		}
		s.pending[hf.from] = append(pend[:i], pend[i+1:]...)
		return
	}
}

// retransmit re-sends every pending frame of switch s whose ack deadline has
// passed, backing off exponentially (RetryTimeout << attempt, capped) and
// giving up — loudly — after MaxRetries. Oldest frames go first; a full
// crossbar input stops that port's sweep (the younger frames would only pile
// into the same congestion).
func (m *MultiHop[T]) retransmit(s *mhSwitch[T], now uint64) {
	for port := range s.pending {
		for i := range s.pending[port] {
			pf := &s.pending[port][i]
			if now < pf.deadline {
				continue
			}
			if pf.attempt >= m.flt.MaxRetries {
				panic(fmt.Sprintf("network: hop frame seq=%d unacked after %d attempts",
					pf.f.seq, pf.attempt+1))
			}
			if !s.xb.Send(Packet[hopFrame[T]]{Src: port, Dst: pf.dst, Payload: pf.f}) {
				break
			}
			pf.attempt++
			m.stats.HopRetrans++
			m.met.retrans.Inc()
			shift := pf.attempt
			if shift > m.flt.RetryBackoffCap {
				shift = m.flt.RetryBackoffCap
			}
			pf.deadline = now + m.flt.RetryTimeout<<uint(shift)
		}
	}
}

// NextEvent reports the earliest cycle at which the fabric can make
// progress (sim.FastForwarder): staged, queued, or deliverable traffic is
// work now; otherwise the earliest wire completion or retransmission
// deadline.
func (m *MultiHop[T]) NextEvent(now uint64) uint64 {
	ev := sim.Never
	for _, s := range m.sws {
		for port := range s.stage {
			if len(s.stage[port]) > 0 {
				return now
			}
		}
		if t := s.xb.NextEvent(now); t <= now {
			return now
		} else if t < ev {
			ev = t
		}
		for port := range s.pending {
			for i := range s.pending[port] {
				if d := s.pending[port][i].deadline; d < ev {
					ev = d
				}
			}
		}
	}
	for _, q := range m.outq {
		if !q.Empty() {
			return now
		}
	}
	if ev < now {
		return now
	}
	return ev
}

// Skip is a no-op: every state change in the fabric is reported by
// NextEvent as work, so skipped cycles carry no batch effects.
func (m *MultiHop[T]) Skip(now, cycles uint64) {}

// Busy reports whether any packet is staged, queued, in flight, awaiting an
// ack, or undelivered.
func (m *MultiHop[T]) Busy() bool {
	for _, s := range m.sws {
		for port := range s.stage {
			if len(s.stage[port]) > 0 || len(s.pending[port]) > 0 {
				return true
			}
		}
		if s.xb.Busy() {
			return true
		}
	}
	for _, q := range m.outq {
		if !q.Empty() {
			return true
		}
	}
	return false
}
