package network

// DisableFastPath forces the general arbitration loop even at
// WordsPerCyc==1, so tests can prove the fast path bit-equivalent.
func (x *Crossbar[T]) DisableFastPath() { x.noFastPath = true }
