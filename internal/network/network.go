// Package network models the multi-node interconnect of §4.5: "an
// input-queued crossbar with back-pressure", with a configurable per-node
// bandwidth limit (the paper's low configuration is 1 word/cycle per node,
// the high configuration 8 words/cycle).
//
// Payloads are generic; the multi-node system sends scatter-add requests
// and acknowledgments. A packet occupies one word-slot of its input port's
// bandwidth per cycle of transfer.
//
// Beyond the paper's flat crossbar, MultiHop (multihop.go) composes many
// small Crossbar switches into a fat-tree or 2D mesh with optional
// Ultracomputer-style in-switch combining and per-hop reliability. Both
// fabrics satisfy the Fabric interface that internal/multinode programs
// against.
package network

import (
	"fmt"

	"scatteradd/internal/fault"
	"scatteradd/internal/sim"
	"scatteradd/internal/span"
	"scatteradd/internal/stats"
)

// Packet is one message in flight.
type Packet[T any] struct {
	Src, Dst int
	Payload  T
}

// Config describes the crossbar.
type Config struct {
	Nodes        int
	WordsPerCyc  int // per-port bandwidth in packets per cycle
	InputQDepth  int // per-input queue entries
	OutputQDepth int // per-output queue entries
	Latency      int // router + wire latency in cycles

	// WireDepth caps each output's in-flight Delay backing. 0 keeps the
	// always-sufficient Nodes*WordsPerCyc*(Latency+1)+1, under which the
	// wire never back-pressures; kilo-port flat crossbars set a small depth
	// to bound memory (a 1024-port crossbar would otherwise hold ~10M
	// slots). Packets beyond the depth wait in their input queues —
	// ordinary back-pressure that only changes timing once the output side
	// is already saturated.
	WireDepth int
}

// DefaultConfig returns an 8-node crossbar at the paper's low bandwidth.
func DefaultConfig(nodes int) Config {
	return Config{Nodes: nodes, WordsPerCyc: 1, InputQDepth: 16, OutputQDepth: 16, Latency: 8}
}

// Stats aggregates fabric activity. The flat Crossbar and the MultiHop
// switch graph fill the same struct so callers compare topologies uniformly.
type Stats struct {
	Sent      uint64 // packets accepted at injection ports
	Delivered uint64 // packets popped at destination ports
	Stalled   uint64 // cycles an input head packet could not traverse
	Dropped   uint64 // packets lost to injected wire faults
	Duped     uint64 // packets duplicated by injected wire faults

	// Topology-level traffic accounting. A flat crossbar is a single
	// switch, so every accepted packet is one hop and one root crossing;
	// the multi-hop fabrics count per-switch link traversals and
	// root/bisection crossings — the congestion metrics of the 16→1024-node
	// scale-out figure.
	Hops       uint64 // switch traversals (flat: == Sent)
	RootPkts   uint64 // packets through the tree root / across the mesh bisection (flat: == Sent)
	Combined   uint64 // packets absorbed by in-switch combining (flat: 0)
	HopRetrans uint64 // per-hop retransmissions after ack timeout (multi-hop under faults)
	HopDups    uint64 // duplicate hop frames discarded by receiver dedup
}

// Fabric is the interconnect contract internal/multinode programs against;
// the flat Crossbar and the MultiHop switch graph both satisfy it. Sends,
// peeks, and receives happen in the system's sequential phases; Tick
// advances one cycle; NextEvent and Skip implement the sim.FastForwarder
// contract so quiescence fast-forward works across any topology.
type Fabric[T any] interface {
	CanSend(src int) bool
	Send(p Packet[T]) bool
	Peek(dst int) (Packet[T], bool)
	Recv(dst int) (Packet[T], bool)
	Tick(now uint64)
	NextEvent(now uint64) uint64
	Skip(now, cycles uint64)
	Busy() bool
	Stats() Stats
	StatsGroup() *stats.Group
	SetSpanTracer(tr *span.Tracer)
	SetFaults(fc fault.Config, inst string)
}

// metrics are the crossbar performance counters.
type metrics struct {
	group     *stats.Group
	grants    *stats.Counter // input-to-output grants issued by the arbiters
	stalls    *stats.Counter // back-pressure: cycles an input with traffic sent nothing
	sent      *stats.Counter
	delivered *stats.Counter

	// Fault counters (zero unless injection is configured).
	faultDrops *stats.Counter // packets lost on the wire
	faultDups  *stats.Counter // packets delivered twice
}

func newMetrics() metrics {
	g := stats.NewGroup("net")
	return metrics{
		group:     g,
		grants:    g.Counter("crossbar_grants"),
		stalls:    g.Counter("backpressure_stall_cycles"),
		sent:      g.Counter("sent"),
		delivered: g.Counter("delivered"),

		faultDrops: g.Counter("fault_drops"),
		faultDups:  g.Counter("fault_dups"),
	}
}

// Crossbar is the input-queued switch.
type Crossbar[T any] struct {
	cfg     Config
	inputs  []*sim.Queue[Packet[T]]
	wires   []*sim.Delay[Packet[T]] // per-output in-flight packets
	outputs []*sim.Queue[Packet[T]]
	arb     []*sim.RoundRobin // per-output arbiter over inputs
	stats   Stats
	met     metrics
	tr      *span.Tracer

	// Fault injection (nil when disabled). Drops and duplications strike at
	// the grant point — one draw per granted packet, in arbiter order, so
	// legacy and fast-forward stepping consume the streams identically.
	dropInj *fault.Injector
	dupInj  *fault.Injector

	// Per-Tick arbitration scratch, allocated once (the hot loop must not
	// allocate): grants per output and sends per input this cycle.
	granted  []int
	sentFrom []int

	// Head-packet candidate lists for the WordsPerCyc==1 fast path:
	// candHead[o] is the lowest input whose head targets output o,
	// candNext[i] threads the remaining candidates in ascending order.
	candHead []int
	candNext []int

	// noFastPath forces the general arbitration loop even at WordsPerCyc==1
	// — a test hook for proving the fast path bit-equivalent.
	noFastPath bool
}

// New returns a crossbar with the given configuration.
func New[T any](cfg Config) *Crossbar[T] {
	if cfg.Nodes < 1 || cfg.WordsPerCyc < 1 || cfg.InputQDepth < 1 || cfg.OutputQDepth < 1 || cfg.WireDepth < 0 {
		panic(fmt.Sprintf("network: invalid config %+v", cfg))
	}
	wireDepth := cfg.Nodes*cfg.WordsPerCyc*(cfg.Latency+1) + 1
	if cfg.WireDepth > 0 {
		wireDepth = cfg.WireDepth
	}
	x := &Crossbar[T]{cfg: cfg, met: newMetrics()}
	for i := 0; i < cfg.Nodes; i++ {
		x.inputs = append(x.inputs, sim.NewQueue[Packet[T]](cfg.InputQDepth))
		x.wires = append(x.wires, sim.NewDelay[Packet[T]](cfg.Latency, wireDepth))
		x.outputs = append(x.outputs, sim.NewQueue[Packet[T]](cfg.OutputQDepth))
		x.arb = append(x.arb, sim.NewRoundRobin(cfg.Nodes))
	}
	x.granted = make([]int, cfg.Nodes)
	x.sentFrom = make([]int, cfg.Nodes)
	x.candHead = make([]int, cfg.Nodes)
	x.candNext = make([]int, cfg.Nodes)
	return x
}

// Stats returns a copy of the counters.
func (x *Crossbar[T]) Stats() Stats { return x.stats }

// StatsGroup returns the crossbar's performance-counter group, for adoption
// into a system-level registry.
func (x *Crossbar[T]) StatsGroup() *stats.Group { return x.met.group }

// SetSpanTracer installs a request-lifecycle tracer. Each granted wire
// crossing becomes an async span on the output port's track. A nil tracer
// disables tracing.
func (x *Crossbar[T]) SetSpanTracer(tr *span.Tracer) { x.tr = tr }

// SetFaults installs wire fault injection: granted packets are dropped or
// duplicated with the configured per-packet probabilities. inst salts the
// injector streams. Loss is recovered end-to-end by the multinode link
// layer, not by the crossbar itself.
func (x *Crossbar[T]) SetFaults(fc fault.Config, inst string) {
	x.dropInj = fault.NewInjector(fc.Seed, inst+".net.drop", fc.NetDropRate)
	x.dupInj = fault.NewInjector(fc.Seed, inst+".net.dup", fc.NetDupRate)
}

// CanSend reports whether node src can inject a packet this cycle.
func (x *Crossbar[T]) CanSend(src int) bool { return !x.inputs[src].Full() }

// Send injects a packet at its source port. It reports false when the
// input queue is full (back-pressure).
func (x *Crossbar[T]) Send(p Packet[T]) bool {
	if p.Src < 0 || p.Src >= x.cfg.Nodes || p.Dst < 0 || p.Dst >= x.cfg.Nodes {
		panic(fmt.Sprintf("network: packet %d->%d outside %d nodes", p.Src, p.Dst, x.cfg.Nodes))
	}
	if !x.inputs[p.Src].Push(p) {
		return false
	}
	x.stats.Sent++
	x.stats.Hops++
	x.stats.RootPkts++
	x.met.sent.Inc()
	return true
}

// Recv pops one delivered packet at node dst, if available.
func (x *Crossbar[T]) Recv(dst int) (Packet[T], bool) {
	p, ok := x.outputs[dst].Pop()
	return p, ok
}

// Peek returns the next deliverable packet at node dst without consuming it,
// letting receivers inspect control traffic before committing buffer space.
func (x *Crossbar[T]) Peek(dst int) (Packet[T], bool) {
	return x.outputs[dst].Peek()
}

// Tick moves packets: each input may forward up to WordsPerCyc head packets
// whose output has room; each output claims arriving packets. Per-input
// bandwidth enforces the paper's low/high network configurations.
func (x *Crossbar[T]) Tick(now uint64) {
	// Deliver packets that finished crossing to output queues.
	for o := 0; o < x.cfg.Nodes; o++ {
		budget := x.cfg.WordsPerCyc // output port bandwidth
		for budget > 0 && !x.outputs[o].Full() {
			p, ok := x.wires[o].Pop(now)
			if !ok {
				break
			}
			x.outputs[o].MustPush(p)
			x.stats.Delivered++
			x.met.delivered.Inc()
			budget--
		}
	}
	// Input side: each input forwards up to WordsPerCyc head packets; each
	// output accepts at most WordsPerCyc new packets per cycle, arbitrated
	// round-robin over inputs.
	granted, sentFrom := x.granted, x.sentFrom
	for i := range granted {
		granted[i], sentFrom[i] = 0, 0
	}
	if x.cfg.WordsPerCyc == 1 && !x.noFastPath {
		x.arbitrateFast(now)
	} else {
		for o := 0; o < x.cfg.Nodes; o++ {
			for granted[o] < x.cfg.WordsPerCyc {
				in := x.arb[o].Pick(func(i int) bool {
					p, ok := x.inputs[i].Peek()
					return ok && p.Dst == o && sentFrom[i] < x.cfg.WordsPerCyc && !x.wires[o].Full()
				})
				if in < 0 {
					break
				}
				granted[o]++
				sentFrom[in]++
				x.grantTo(o, in, now)
			}
		}
	}
	for i := 0; i < x.cfg.Nodes; i++ {
		if !x.inputs[i].Empty() && sentFrom[i] == 0 {
			x.stats.Stalled++
			x.met.stalls.Inc()
		}
	}
}

// arbitrateFast is the WordsPerCyc==1 arbitration path. With one word of
// bandwidth per port each input offers only its head packet and each output
// grants at most once, so the per-output candidate sets built from the input
// heads are disjoint and the sentFrom budget check of the general loop is
// vacuously true: an input granted by some output cannot appear in a later
// output's candidate list (its head targeted the granting output). One
// arbiter step per active output therefore reproduces the general loop's
// grants — and its round-robin pointer updates — bit-for-bit, while the
// cycle's cost drops from O(ports²) predicate probes to O(ports). That is
// what makes the kilo-port flat crossbar of the scale-out figure simulable.
func (x *Crossbar[T]) arbitrateFast(now uint64) {
	head, next := x.candHead, x.candNext
	for o := range head {
		head[o] = -1
	}
	// Build ascending candidate lists by prepending from the highest input
	// down.
	for i := x.cfg.Nodes - 1; i >= 0; i-- {
		if p, ok := x.inputs[i].Peek(); ok {
			next[i] = head[p.Dst]
			head[p.Dst] = i
		}
	}
	for o := 0; o < x.cfg.Nodes; o++ {
		if head[o] < 0 || x.wires[o].Full() {
			continue
		}
		// Grant the candidate the rotating priority pointer reaches first.
		start := x.arb[o].Start()
		best, bestKey := -1, x.cfg.Nodes
		for i := head[o]; i >= 0; i = next[i] {
			k := i - start
			if k < 0 {
				k += x.cfg.Nodes
			}
			if k < bestKey {
				best, bestKey = i, k
			}
		}
		x.arb[o].Grant(best)
		x.granted[o]++
		x.sentFrom[best]++
		x.grantTo(o, best, now)
	}
}

// grantTo pops input in's head packet onto output o's wire, applying fault
// injection and tracing — the shared tail of both arbitration paths.
func (x *Crossbar[T]) grantTo(o, in int, now uint64) {
	p, _ := x.inputs[in].Pop()
	x.met.grants.Inc()
	if x.dropInj.Fire() {
		// Injected wire fault: the packet vanishes (its bandwidth
		// slot is still consumed). One draw per granted packet.
		x.stats.Dropped++
		x.met.faultDrops.Inc()
		return
	}
	x.wires[o].Push(now, p)
	if x.dupInj.Fire() && !x.wires[o].Full() {
		// Injected duplication: the packet crosses twice. The
		// receiver's sequence-number dedup makes replay idempotent.
		x.wires[o].Push(now, p)
		x.stats.Duped++
		x.met.faultDups.Inc()
	}
	if x.tr != nil {
		x.tr.SpanAsync(fmt.Sprintf("net.out[%d]", o),
			fmt.Sprintf("pkt %d->%d", p.Src, p.Dst),
			now, now+uint64(x.cfg.Latency))
	}
}

// NextEvent reports the earliest cycle at which the crossbar can do work
// (see sim.FastForwarder): queued input or undelivered output is work now;
// otherwise the earliest wire-crossing completion.
func (x *Crossbar[T]) NextEvent(now uint64) uint64 {
	ev := sim.Never
	for i := 0; i < x.cfg.Nodes; i++ {
		if !x.inputs[i].Empty() || !x.outputs[i].Empty() {
			return now
		}
		if r := x.wires[i].NextReady(); r < ev {
			ev = r
		}
	}
	if ev < now {
		return now
	}
	return ev
}

// Skip is a no-op: back-pressure stalls only accrue while an input queue is
// non-empty, which NextEvent reports as work.
func (x *Crossbar[T]) Skip(now, cycles uint64) {}

// Busy reports whether any packet is queued or in flight.
func (x *Crossbar[T]) Busy() bool {
	for i := 0; i < x.cfg.Nodes; i++ {
		if !x.inputs[i].Empty() || x.wires[i].Len() > 0 || !x.outputs[i].Empty() {
			return true
		}
	}
	return false
}
