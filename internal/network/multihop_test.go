package network

import (
	"testing"

	"scatteradd/internal/fault"
	"scatteradd/internal/sim"
)

// mhPump ticks the fabric and drains every endpoint each cycle.
func mhPump[T any](m *MultiHop[T], now *uint64, cycles int, recv func(dst int, p Packet[T])) {
	for c := 0; c < cycles; c++ {
		m.Tick(*now)
		for d := 0; d < m.cfg.Nodes; d++ {
			for {
				p, ok := m.Recv(d)
				if !ok {
					break
				}
				if recv != nil {
					recv(d, p)
				}
			}
		}
		*now++
	}
}

func treeConfig(nodes, fanIn int) MultiHopConfig {
	cfg := DefaultMultiHopConfig(nodes)
	cfg.FanIn = fanIn
	return cfg
}

func meshConfig(nodes int) MultiHopConfig {
	cfg := DefaultMultiHopConfig(nodes)
	cfg.Kind = MeshGraph
	cfg.FanIn = 0
	return cfg
}

// allPairs sends one tagged packet per (src, dst) pair and checks every one
// arrives at the right endpoint exactly once.
func allPairs(t *testing.T, cfg MultiHopConfig) {
	t.Helper()
	n := cfg.Nodes
	m := NewMultiHop[int](cfg)
	got := make(map[int]int) // tag -> deliveries
	now := uint64(0)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			tag := src*n + dst
			for !m.Send(Packet[int]{Src: src, Dst: dst, Payload: tag}) {
				mhPump(m, &now, 1, func(d int, p Packet[int]) {
					if d != p.Dst || p.Payload != p.Src*n+p.Dst {
						t.Fatalf("packet %d->%d tag %d delivered at %d", p.Src, p.Dst, p.Payload, d)
					}
					got[p.Payload]++
				})
			}
		}
	}
	for c := 0; c < 100*n && m.Busy(); c++ {
		mhPump(m, &now, 1, func(d int, p Packet[int]) {
			if d != p.Dst || p.Payload != p.Src*n+p.Dst {
				t.Fatalf("packet %d->%d tag %d delivered at %d", p.Src, p.Dst, p.Payload, d)
			}
			got[p.Payload]++
		})
	}
	if m.Busy() {
		t.Fatal("fabric still busy after drain window")
	}
	if len(got) != n*n {
		t.Fatalf("delivered %d of %d pairs", len(got), n*n)
	}
	for tag, k := range got {
		if k != 1 {
			t.Fatalf("tag %d delivered %d times", tag, k)
		}
	}
	st := m.Stats()
	if st.Sent != uint64(n*n) || st.Delivered != uint64(n*n) {
		t.Fatalf("stats %+v, want %d sent and delivered", st, n*n)
	}
	if st.Hops < st.Sent {
		t.Fatalf("hops %d < sent %d: multi-hop routes must traverse >= 1 switch", st.Hops, st.Sent)
	}
}

func TestTreeRoutingAllPairs(t *testing.T) {
	for _, tc := range []struct{ nodes, fanIn int }{
		{1, 2}, {2, 2}, {5, 2}, {8, 2}, {9, 3}, {16, 4}, {13, 4},
	} {
		allPairs(t, treeConfig(tc.nodes, tc.fanIn))
	}
}

func TestMeshRoutingAllPairs(t *testing.T) {
	for _, nodes := range []int{1, 2, 6, 9, 16} {
		allPairs(t, meshConfig(nodes))
	}
}

// intCombiner merges every packet with the same key by summing values. The
// payload packs key<<16 | value.
func intCombiner() Combiner[int] {
	return Combiner[int]{
		Key:   func(p int) (uint64, bool) { return uint64(p >> 16), true },
		Merge: func(into, absorb int) int { return into + absorb&0xffff },
	}
}

func TestInSwitchCombining(t *testing.T) {
	cfg := treeConfig(4, 2)
	cfg.Combine = true
	m := NewMultiHop[int](cfg)
	absorbed := 0
	c := intCombiner()
	c.OnAbsorb = func(int) { absorbed++ }
	m.SetCombiner(c)
	// Four same-key packets to node 0, one per node, injected the same
	// cycle: nodes {0,1} share node 0's leaf and merge there (their frame
	// turns down without touching the root), nodes {2,3} merge at the other
	// leaf and their survivor alone crosses the root. Two deliveries, two
	// merges, one root crossing.
	for src := 0; src < 4; src++ {
		if !m.Send(Packet[int]{Src: src, Dst: 0, Payload: 7<<16 | (src + 1)}) {
			t.Fatalf("send from %d refused", src)
		}
	}
	var got []int
	now := uint64(0)
	mhPump(m, &now, 200, func(d int, p Packet[int]) {
		if d != 0 {
			t.Fatalf("delivered at %d", d)
		}
		got = append(got, p.Payload)
	})
	sum := 0
	for _, p := range got {
		sum += p & 0xffff
	}
	if len(got) != 2 || sum != 1+2+3+4 {
		t.Fatalf("got %v, want two merged packets summing to 10", got)
	}
	st := m.Stats()
	if st.Combined != 2 || absorbed != 2 {
		t.Fatalf("combined %d, absorbed %d, want 2", st.Combined, absorbed)
	}
	if st.RootPkts != 1 {
		t.Fatalf("root packets %d, want 1 (leaf merges halve the upward traffic)", st.RootPkts)
	}
}

// TestCombineWindowEvicts pins the window semantics: a packet that has
// drained out of staging into the switch proper is no longer mergeable.
func TestCombineWindowEvicts(t *testing.T) {
	cfg := treeConfig(2, 2)
	cfg.Combine = true
	m := NewMultiHop[int](cfg)
	m.SetCombiner(intCombiner())
	now := uint64(0)
	m.Send(Packet[int]{Src: 0, Dst: 1, Payload: 3<<16 | 1})
	m.Tick(now) // staging drains into the crossbar: the window is empty
	now++
	m.Send(Packet[int]{Src: 0, Dst: 1, Payload: 3<<16 | 2})
	var got []int
	mhPump(m, &now, 100, func(d int, p Packet[int]) { got = append(got, p.Payload) })
	if len(got) != 2 {
		t.Fatalf("delivered %v, want 2 separate packets (no merge after evict)", got)
	}
	if st := m.Stats(); st.Combined != 0 {
		t.Fatalf("combined %d, want 0", st.Combined)
	}
}

// TestDistinctKeysDoNotCombine: same destination, different keys stay apart.
func TestDistinctKeysDoNotCombine(t *testing.T) {
	cfg := treeConfig(4, 2)
	cfg.Combine = true
	m := NewMultiHop[int](cfg)
	m.SetCombiner(intCombiner())
	m.Send(Packet[int]{Src: 1, Dst: 0, Payload: 1<<16 | 1})
	m.Send(Packet[int]{Src: 2, Dst: 0, Payload: 2<<16 | 1})
	var got []int
	now := uint64(0)
	mhPump(m, &now, 200, func(d int, p Packet[int]) { got = append(got, p.Payload) })
	if len(got) != 2 {
		t.Fatalf("delivered %v, want 2", got)
	}
	if st := m.Stats(); st.Combined != 0 {
		t.Fatalf("combined %d, want 0", st.Combined)
	}
}

// TestPerHopRetransmit runs tagged traffic through a lossy, duplicating tree
// and checks exactly-once delivery via per-hop seq/ack/retransmit/dedup.
func TestPerHopRetransmit(t *testing.T) {
	for _, kind := range []GraphKind{TreeGraph, MeshGraph} {
		cfg := treeConfig(8, 2)
		if kind == MeshGraph {
			cfg = meshConfig(8)
		}
		m := NewMultiHop[int](cfg)
		fc := fault.Config{Seed: 42, NetDropRate: 0.2, NetDupRate: 0.1}.WithDefaults()
		m.SetFaults(fc, "test")
		const pkts = 100
		got := make(map[int]int)
		now := uint64(0)
		for k := 0; k < pkts; k++ {
			p := Packet[int]{Src: k % 8, Dst: (k * 5) % 8, Payload: k}
			for !m.Send(p) {
				mhPump(m, &now, 1, func(d int, q Packet[int]) { got[q.Payload]++ })
			}
		}
		for c := 0; c < 1_000_000 && m.Busy(); c++ {
			mhPump(m, &now, 1, func(d int, q Packet[int]) { got[q.Payload]++ })
		}
		if m.Busy() {
			t.Fatalf("%v: fabric still busy", kind)
		}
		if len(got) != pkts {
			t.Fatalf("%v: delivered %d of %d", kind, len(got), pkts)
		}
		for tag, k := range got {
			if k != 1 {
				t.Fatalf("%v: tag %d delivered %d times", kind, tag, k)
			}
		}
		st := m.Stats()
		if st.Dropped == 0 || st.HopRetrans == 0 {
			t.Fatalf("%v: stats %+v, want drops and retransmissions", kind, st)
		}
		if st.HopDups == 0 {
			t.Fatalf("%v: stats %+v, want duplicate frames discarded", kind, st)
		}
	}
}

// TestCombiningUnderFaults: merged frames survive drops via retransmission —
// the delivered value sum equals the injected sum.
func TestCombiningUnderFaults(t *testing.T) {
	cfg := treeConfig(8, 2)
	cfg.Combine = true
	m := NewMultiHop[int](cfg)
	m.SetCombiner(intCombiner())
	m.SetFaults(fault.Config{Seed: 7, NetDropRate: 0.15, NetDupRate: 0.05}.WithDefaults(), "test")
	want := 0
	now := uint64(0)
	sum := 0
	drain := func() {
		mhPump(m, &now, 1, func(d int, p Packet[int]) {
			if d != 3 {
				t.Fatalf("delivered at %d", d)
			}
			sum += p.Payload & 0xffff
		})
	}
	for k := 0; k < 64; k++ {
		v := k%9 + 1
		for !m.Send(Packet[int]{Src: k % 8, Dst: 3, Payload: 5<<16 | v}) {
			drain()
		}
		want += v
	}
	for c := 0; c < 1_000_000 && m.Busy(); c++ {
		drain()
	}
	if sum != want {
		t.Fatalf("delivered sum %d, want %d", sum, want)
	}
	if st := m.Stats(); st.Combined == 0 {
		t.Fatalf("stats %+v, want in-switch merges", st)
	}
}

func TestMultiHopNextEventContract(t *testing.T) {
	m := NewMultiHop[int](treeConfig(8, 2))
	if ev := m.NextEvent(5); ev != sim.Never {
		t.Fatalf("idle NextEvent = %d, want Never", ev)
	}
	m.Send(Packet[int]{Src: 0, Dst: 7, Payload: 1})
	if ev := m.NextEvent(5); ev != 5 {
		t.Fatalf("staged NextEvent = %d, want now", ev)
	}
	now := uint64(5)
	m.Tick(now) // staging drains; the frame is now inside a switch
	now++
	ev := m.NextEvent(now)
	if ev == sim.Never || ev < now {
		t.Fatalf("in-flight NextEvent = %d, want a finite cycle >= %d", ev, now)
	}
	if !m.Busy() {
		t.Fatal("fabric with in-flight traffic must report busy")
	}
	// Fast-forward legality: jumping to ev and ticking from there still
	// delivers.
	for c, now := 0, ev; c < 200; c++ {
		m.Tick(now)
		if _, ok := m.Recv(7); ok {
			return
		}
		now++
	}
	t.Fatal("packet never delivered after fast-forward")
}

// TestTreeRootCounting: with combining off, every cross-leaf packet is
// counted at the root, and intra-leaf packets are not.
func TestTreeRootCounting(t *testing.T) {
	m := NewMultiHop[int](treeConfig(8, 4))
	now := uint64(0)
	m.Send(Packet[int]{Src: 0, Dst: 1, Payload: 1}) // stays under leaf 0
	mhPump(m, &now, 100, nil)
	if st := m.Stats(); st.RootPkts != 0 {
		t.Fatalf("intra-leaf traffic counted at root: %+v", st)
	}
	m.Send(Packet[int]{Src: 0, Dst: 7, Payload: 2}) // must cross the root
	mhPump(m, &now, 100, nil)
	if st := m.Stats(); st.RootPkts != 1 {
		t.Fatalf("cross-leaf traffic not counted at root: %+v", st)
	}
}
