package network

import (
	"testing"
	"testing/quick"
)

func pump[T any](x *Crossbar[T], now *uint64, cycles int, recv func(dst int, p Packet[T])) {
	for c := 0; c < cycles; c++ {
		x.Tick(*now)
		for d := 0; d < x.cfg.Nodes; d++ {
			for {
				p, ok := x.Recv(d)
				if !ok {
					break
				}
				if recv != nil {
					recv(d, p)
				}
			}
		}
		*now++
	}
}

func TestDelivery(t *testing.T) {
	x := New[int](DefaultConfig(4))
	if !x.Send(Packet[int]{Src: 0, Dst: 3, Payload: 42}) {
		t.Fatal("send failed")
	}
	var got []Packet[int]
	now := uint64(0)
	pump(x, &now, 50, func(d int, p Packet[int]) {
		if d != 3 {
			t.Fatalf("delivered to node %d", d)
		}
		got = append(got, p)
	})
	if len(got) != 1 || got[0].Payload != 42 {
		t.Fatalf("got %+v", got)
	}
	if x.Busy() {
		t.Fatal("crossbar should be idle")
	}
}

func TestLatency(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Latency = 10
	x := New[int](cfg)
	x.Send(Packet[int]{Src: 0, Dst: 1, Payload: 1})
	now := uint64(0)
	arrived := int64(-1)
	for c := 0; c < 40 && arrived < 0; c++ {
		x.Tick(now)
		if _, ok := x.Recv(1); ok {
			arrived = int64(now)
		}
		now++
	}
	if arrived < 10 {
		t.Fatalf("packet arrived at cycle %d, before latency 10", arrived)
	}
}

func TestBandwidthLimitLow(t *testing.T) {
	// At 1 word/cycle per port, 100 packets from one node take >=100 cycles.
	cfg := DefaultConfig(2)
	cfg.InputQDepth = 128
	cfg.OutputQDepth = 128
	x := New[int](cfg)
	for i := 0; i < 100; i++ {
		if !x.Send(Packet[int]{Src: 0, Dst: 1, Payload: i}) {
			t.Fatalf("send %d failed", i)
		}
	}
	now := uint64(0)
	count := 0
	for c := 0; c < 300 && count < 100; c++ {
		x.Tick(now)
		for {
			if _, ok := x.Recv(1); !ok {
				break
			}
			count++
		}
		now++
	}
	if count != 100 {
		t.Fatalf("delivered %d", count)
	}
	if now < 100 {
		t.Fatalf("100 packets in %d cycles exceeds 1/cycle bandwidth", now)
	}
}

func TestHighBandwidthFaster(t *testing.T) {
	run := func(words int) uint64 {
		cfg := DefaultConfig(2)
		cfg.WordsPerCyc = words
		cfg.InputQDepth = 256
		cfg.OutputQDepth = 256
		x := New[int](cfg)
		for i := 0; i < 200; i++ {
			x.Send(Packet[int]{Src: 0, Dst: 1, Payload: i})
		}
		now := uint64(0)
		count := 0
		for count < 200 {
			x.Tick(now)
			for {
				if _, ok := x.Recv(1); !ok {
					break
				}
				count++
			}
			now++
			if now > 10000 {
				t.Fatal("timeout")
			}
		}
		return now
	}
	low, high := run(1), run(8)
	if high*4 > low {
		t.Fatalf("8 words/cyc (%d cycles) not ~8x faster than 1 (%d)", high, low)
	}
}

func TestBackpressure(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.InputQDepth = 2
	x := New[int](cfg)
	if !x.Send(Packet[int]{Src: 0, Dst: 1}) || !x.Send(Packet[int]{Src: 0, Dst: 1}) {
		t.Fatal("sends failed")
	}
	if x.CanSend(0) || x.Send(Packet[int]{Src: 0, Dst: 1}) {
		t.Fatal("send succeeded on full input queue")
	}
	if !x.CanSend(1) {
		t.Fatal("other port should accept")
	}
}

func TestFairnessAcrossInputs(t *testing.T) {
	// Two inputs competing for one output should share bandwidth roughly
	// equally under round-robin arbitration.
	cfg := DefaultConfig(3)
	cfg.InputQDepth = 64
	cfg.OutputQDepth = 4
	x := New[int](cfg)
	for i := 0; i < 50; i++ {
		x.Send(Packet[int]{Src: 0, Dst: 2, Payload: 0})
		x.Send(Packet[int]{Src: 1, Dst: 2, Payload: 1})
	}
	now := uint64(0)
	first40 := []int{}
	for len(first40) < 40 {
		x.Tick(now)
		for {
			p, ok := x.Recv(2)
			if !ok {
				break
			}
			if len(first40) < 40 {
				first40 = append(first40, p.Payload)
			}
		}
		now++
		if now > 5000 {
			t.Fatal("timeout")
		}
	}
	from0 := 0
	for _, s := range first40 {
		if s == 0 {
			from0++
		}
	}
	if from0 < 15 || from0 > 25 {
		t.Fatalf("unfair arbitration: %d/40 from input 0", from0)
	}
}

func TestInvalidDestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x := New[int](DefaultConfig(2))
	x.Send(Packet[int]{Src: 0, Dst: 5})
}

// Property: every sent packet is delivered exactly once to its destination,
// for arbitrary traffic patterns.
func TestExactlyOnceDeliveryProperty(t *testing.T) {
	f := func(flows []struct{ S, D, P uint8 }) bool {
		const nodes = 4
		cfg := DefaultConfig(nodes)
		cfg.InputQDepth = 8
		x := New[uint8](cfg)
		sent := map[[3]uint8]int{}
		now := uint64(0)
		recvd := map[[3]uint8]int{}
		collect := func(d int, p Packet[uint8]) {
			recvd[[3]uint8{uint8(p.Src), uint8(d), p.Payload}]++
		}
		for _, fl := range flows {
			p := Packet[uint8]{Src: int(fl.S % nodes), Dst: int(fl.D % nodes), Payload: fl.P}
			for !x.Send(p) {
				pump(x, &now, 1, collect)
			}
			sent[[3]uint8{uint8(p.Src), uint8(p.Dst), p.Payload}]++
		}
		for i := 0; i < 10000 && x.Busy(); i++ {
			pump(x, &now, 1, collect)
		}
		if x.Busy() {
			return false
		}
		if len(sent) != len(recvd) {
			return false
		}
		for k, c := range sent {
			if recvd[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
