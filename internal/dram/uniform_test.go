package dram

import (
	"testing"

	"scatteradd/internal/mem"
	"scatteradd/internal/port"
)

var _ port.Word = (*Uniform)(nil)

func TestUniformLatency(t *testing.T) {
	u := NewUniform(10, 2, 4)
	u.Store().StoreWord(5, 77)
	if !u.Accept(0, mem.Request{ID: 1, Kind: mem.Read, Addr: 5}) {
		t.Fatal("accept failed")
	}
	u.Tick(0) // issues at cycle 0, ready at 10
	for now := uint64(1); now < 10; now++ {
		u.Tick(now)
		if _, ok := u.PopResponse(now); ok {
			t.Fatalf("response ready too early at %d", now)
		}
	}
	r, ok := u.PopResponse(10)
	if !ok || r.Val != 77 || r.ID != 1 {
		t.Fatalf("response = %+v ok=%v", r, ok)
	}
}

func TestUniformThroughputInterval(t *testing.T) {
	// With interval 4, n accesses take at least 4n cycles of issue time.
	u := NewUniform(0, 4, 16)
	for i := 0; i < 4; i++ {
		u.Accept(0, mem.Request{ID: uint64(i), Kind: mem.Write, Addr: mem.Addr(i), Val: 1})
	}
	issued := 0
	for now := uint64(0); now < 16; now++ {
		before, _ := u.Accesses()
		u.Tick(now)
		_, after := u.Accesses()
		if after > uint64(issued) {
			issued = int(after)
		}
		_ = before
	}
	_, w := u.Accesses()
	if w != 4 {
		t.Fatalf("writes issued = %d want 4 (interval pacing)", w)
	}
	// Verify pacing: re-run counting the cycle of the final issue.
	u2 := NewUniform(0, 4, 16)
	for i := 0; i < 4; i++ {
		u2.Accept(0, mem.Request{ID: uint64(i), Kind: mem.Write, Addr: mem.Addr(i), Val: 1})
	}
	lastIssue := uint64(0)
	for now := uint64(0); now < 64; now++ {
		_, before := u2.Accesses()
		u2.Tick(now)
		_, after := u2.Accesses()
		if after > before {
			lastIssue = now
		}
	}
	if lastIssue != 12 { // issues at 0,4,8,12
		t.Fatalf("last issue at cycle %d, want 12", lastIssue)
	}
}

func TestUniformWriteThenRead(t *testing.T) {
	u := NewUniform(3, 1, 8)
	u.Accept(0, mem.Request{ID: 1, Kind: mem.Write, Addr: 42, Val: mem.F64(2.5)})
	u.Accept(0, mem.Request{ID: 2, Kind: mem.Read, Addr: 42})
	var got *mem.Response
	for now := uint64(0); now < 100 && got == nil; now++ {
		u.Tick(now)
		if r, ok := u.PopResponse(now); ok {
			got = &r
		}
	}
	if got == nil || mem.AsF64(got.Val) != 2.5 {
		t.Fatalf("read after write: %+v", got)
	}
	if u.Busy() {
		t.Fatal("should be idle")
	}
}

func TestUniformBackpressure(t *testing.T) {
	u := NewUniform(5, 10, 2)
	if !u.Accept(0, mem.Request{Kind: mem.Read, Addr: 1}) ||
		!u.Accept(0, mem.Request{Kind: mem.Read, Addr: 2}) {
		t.Fatal("initial accepts failed")
	}
	if u.CanAccept(0) || u.Accept(0, mem.Request{Kind: mem.Read, Addr: 3}) {
		t.Fatal("accept should fail when queue full")
	}
}

func TestUniformRejectsScatterAdd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	u := NewUniform(1, 1, 2)
	u.Accept(0, mem.Request{Kind: mem.AddF64, Addr: 0, Val: mem.F64(1)})
}

func TestUniformInvalidParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewUniform(1, 0, 2)
}
