package dram

import (
	"testing"
	"testing/quick"

	"scatteradd/internal/mem"
)

func smallConfig() Config {
	return Config{
		Channels:        2,
		BanksPerChannel: 2,
		RowLines:        4,
		TCas:            4,
		TRowMiss:        6,
		BusCyclesPerLn:  2,
		QueueDepth:      4,
		Policy:          FRFCFS,
	}
}

// drain runs the DRAM until idle, collecting read responses.
func drain(t *testing.T, d *DRAM, start uint64, limit uint64) []LineResp {
	t.Helper()
	var out []LineResp
	for now := start; now < start+limit; now++ {
		d.Tick(now)
		for {
			r, ok := d.PopResponse(now)
			if !ok {
				break
			}
			out = append(out, r)
		}
		if !d.Busy() {
			return out
		}
	}
	t.Fatalf("DRAM did not drain within %d cycles", limit)
	return nil
}

func TestReadAfterWriteSameLine(t *testing.T) {
	d := New(smallConfig())
	var data [mem.LineWords]mem.Word
	for i := range data {
		data[i] = mem.Word(i * 11)
	}
	if !d.Accept(0, LineReq{ID: 1, Line: 64, Write: true, Data: data}) {
		t.Fatal("write not accepted")
	}
	if !d.Accept(0, LineReq{ID: 2, Line: 64}) {
		t.Fatal("read not accepted")
	}
	resps := drain(t, d, 0, 1000)
	if len(resps) != 1 {
		t.Fatalf("got %d responses, want 1", len(resps))
	}
	if resps[0].ID != 2 || resps[0].Data != data {
		t.Fatalf("read returned %+v", resps[0])
	}
}

func TestUnalignedLinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d := New(smallConfig())
	d.Accept(0, LineReq{Line: 3})
}

func TestQueueBackpressure(t *testing.T) {
	cfg := smallConfig()
	d := New(cfg)
	// Fill one channel's queue (all lines map to channel 0 with stride
	// Channels*LineWords).
	stride := mem.Addr(cfg.Channels * mem.LineWords)
	for i := 0; i < cfg.QueueDepth; i++ {
		if !d.Accept(0, LineReq{ID: uint64(i), Line: stride * mem.Addr(i)}) {
			t.Fatalf("accept %d failed", i)
		}
	}
	a := stride * mem.Addr(cfg.QueueDepth)
	if d.CanAccept(a) {
		t.Fatal("CanAccept should be false on full channel")
	}
	if d.Accept(0, LineReq{ID: 99, Line: a}) {
		t.Fatal("accept succeeded on full channel")
	}
	if d.Stats().Stalls != 1 {
		t.Fatalf("stalls = %d", d.Stats().Stalls)
	}
	// Other channel still has room.
	if !d.CanAccept(mem.LineWords) {
		t.Fatal("other channel should accept")
	}
}

func TestRowHitFasterThanRowMiss(t *testing.T) {
	cfg := smallConfig()
	// Two reads in the same row: second should be a row hit.
	d := New(cfg)
	d.Accept(0, LineReq{ID: 1, Line: 0})
	drain(t, d, 0, 1000)
	missOnly := d.Stats()
	if missOnly.RowMisses != 1 || missOnly.RowHits != 0 {
		t.Fatalf("first access: hits=%d misses=%d", missOnly.RowHits, missOnly.RowMisses)
	}

	d2 := New(cfg)
	d2.Accept(0, LineReq{ID: 1, Line: 0})
	// Same channel (0), same bank, same row: next channel-local line in the
	// same bank is Channels*BanksPerChannel lines away.
	sameBankNext := mem.Addr(cfg.Channels*cfg.BanksPerChannel) * mem.LineWords
	d2.Accept(0, LineReq{ID: 2, Line: sameBankNext})
	drain(t, d2, 0, 1000)
	st := d2.Stats()
	if st.RowHits != 1 || st.RowMisses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", st.RowHits, st.RowMisses)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	cfg := smallConfig()
	cfg.Channels = 1
	cfg.BanksPerChannel = 1
	d := New(cfg)
	// Line 0 (row 0), then a line in a different row, then another row-0 line.
	rowStride := mem.Addr(cfg.RowLines * mem.LineWords)
	d.Accept(0, LineReq{ID: 0, Line: 0})
	d.Accept(0, LineReq{ID: 1, Line: rowStride})
	d.Accept(0, LineReq{ID: 2, Line: mem.LineWords})
	resps := drain(t, d, 0, 2000)
	if len(resps) != 3 {
		t.Fatalf("got %d responses", len(resps))
	}
	// Under FR-FCFS, ID 2 (row hit after ID 0) completes before ID 1.
	order := []uint64{resps[0].ID, resps[1].ID, resps[2].ID}
	if order[0] != 0 || order[1] != 2 || order[2] != 1 {
		t.Fatalf("FR-FCFS order = %v, want [0 2 1]", order)
	}
}

func TestFIFOPreservesOrder(t *testing.T) {
	cfg := smallConfig()
	cfg.Channels = 1
	cfg.BanksPerChannel = 1
	cfg.Policy = FIFO
	d := New(cfg)
	rowStride := mem.Addr(cfg.RowLines * mem.LineWords)
	d.Accept(0, LineReq{ID: 0, Line: 0})
	d.Accept(0, LineReq{ID: 1, Line: rowStride})
	d.Accept(0, LineReq{ID: 2, Line: mem.LineWords})
	resps := drain(t, d, 0, 2000)
	for i, r := range resps {
		if r.ID != uint64(i) {
			t.Fatalf("FIFO order violated: %+v", resps)
		}
	}
}

func TestChannelParallelism(t *testing.T) {
	// Requests to different channels should overlap; same channel serializes.
	cfg := smallConfig()
	one := New(cfg)
	stride := mem.Addr(cfg.Channels * mem.LineWords)
	for i := 0; i < 4; i++ {
		one.Accept(0, LineReq{ID: uint64(i), Line: stride * mem.Addr(i)}) // all channel 0
	}
	var oneCycles uint64
	for now := uint64(0); ; now++ {
		one.Tick(now)
		for {
			if _, ok := one.PopResponse(now); !ok {
				break
			}
		}
		if !one.Busy() {
			oneCycles = now
			break
		}
	}

	spread := New(cfg)
	for i := 0; i < 4; i++ {
		// alternate channels
		spread.Accept(0, LineReq{ID: uint64(i), Line: mem.Addr(i%2)*mem.LineWords + stride*mem.Addr(i/2)})
	}
	var spreadCycles uint64
	for now := uint64(0); ; now++ {
		spread.Tick(now)
		for {
			if _, ok := spread.PopResponse(now); !ok {
				break
			}
		}
		if !spread.Busy() {
			spreadCycles = now
			break
		}
	}
	if spreadCycles >= oneCycles {
		t.Fatalf("channel spread (%d cyc) not faster than single channel (%d cyc)",
			spreadCycles, oneCycles)
	}
}

func TestStatsCounts(t *testing.T) {
	d := New(smallConfig())
	d.Accept(0, LineReq{ID: 1, Line: 0, Write: true})
	d.Accept(0, LineReq{ID: 2, Line: mem.LineWords})
	drain(t, d, 0, 1000)
	st := d.Stats()
	if st.Writes != 1 || st.Reads != 1 {
		t.Fatalf("reads=%d writes=%d", st.Reads, st.Writes)
	}
	if st.BytesTransferred() != 2*mem.LineBytes {
		t.Fatalf("bytes = %d", st.BytesTransferred())
	}
}

// Property: a batch of writes followed by reads returns exactly the written
// data, for arbitrary line addresses (functional correctness of the timing
// model).
func TestWriteReadProperty(t *testing.T) {
	f := func(lines []uint8, seed uint64) bool {
		d := New(smallConfig())
		written := map[mem.Addr][mem.LineWords]mem.Word{}
		now := uint64(0)
		for _, l := range lines {
			line := mem.Addr(l) * mem.LineWords
			var data [mem.LineWords]mem.Word
			for i := range data {
				seed = seed*6364136223846793005 + 1442695040888963407
				data[i] = seed
			}
			for !d.Accept(now, LineReq{ID: uint64(l), Line: line, Write: true, Data: data}) {
				d.Tick(now)
				now++
			}
			written[line] = data
		}
		// Drain writes.
		for d.Busy() {
			d.Tick(now)
			now++
		}
		for line, want := range written {
			if !d.Accept(now, LineReq{ID: 1, Line: line}) {
				d.Tick(now)
				now++
				if !d.Accept(now, LineReq{ID: 1, Line: line}) {
					return false
				}
			}
			var got *LineResp
			for got == nil {
				d.Tick(now)
				if r, ok := d.PopResponse(now); ok {
					got = &r
				}
				now++
				if now > 1_000_000 {
					return false
				}
			}
			if got.Data != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPolicyString(t *testing.T) {
	if FRFCFS.String() != "FR-FCFS" || FIFO.String() != "FIFO" {
		t.Fatal("policy names")
	}
}
