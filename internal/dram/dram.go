// Package dram models off-chip memory timing.
//
// Two models are provided:
//
//   - DRAM: a channel/bank model with open-row state and memory access
//     scheduling (FR-FCFS, after Rixner et al., which the paper cites as the
//     mechanism that keeps Merrimac's effective DRAM throughput close to
//     peak). It transacts in whole cache lines and backs the stream cache.
//
//   - Uniform: the simplified memory used by the paper's sensitivity study
//     (§4.4): a fixed latency plus a fixed minimum interval between
//     successive word accesses ("memory throughput is held constant at 1
//     word every 2 cycles"). It transacts in words and is used in the
//     no-cache configurations of Figures 11 and 12.
//
// Both models are functional as well as timed: they own a mem.Store that
// holds the authoritative memory image, so simulations produce real values.
package dram

import (
	"fmt"

	"scatteradd/internal/fault"
	"scatteradd/internal/mem"
	"scatteradd/internal/sim"
	"scatteradd/internal/span"
	"scatteradd/internal/stats"
)

// LineReq is a whole-cache-line transaction presented to the DRAM model.
// For writes, Data carries the line to be written; for reads, Data is
// ignored on input and returned in the LineResp.
type LineReq struct {
	ID    uint64
	Line  mem.Addr // line-aligned word address
	Write bool
	Data  [mem.LineWords]mem.Word
}

// LineResp is the completion of a read LineReq. Writes complete silently.
type LineResp struct {
	ID   uint64
	Line mem.Addr
	Data [mem.LineWords]mem.Word
}

// SchedPolicy selects the per-channel scheduling discipline.
type SchedPolicy uint8

const (
	// FRFCFS prefers row-hit requests over older row-miss requests
	// (first-ready, first-come-first-served).
	FRFCFS SchedPolicy = iota
	// FIFO services requests strictly in arrival order (ablation baseline).
	FIFO
)

func (p SchedPolicy) String() string {
	if p == FIFO {
		return "FIFO"
	}
	return "FR-FCFS"
}

// Config holds the DRAM timing parameters. The defaults (DefaultConfig)
// realize the paper's Table 1: 16 channels and 38.4 GB/s peak bandwidth at
// 1 GHz.
type Config struct {
	Channels        int         // independent DRAM channels
	BanksPerChannel int         // internal banks per channel
	RowLines        int         // cache lines per DRAM row (row size / 64B)
	TCas            int         // cycles from issue to data for a row hit
	TRowMiss        int         // additional cycles for precharge+activate
	BusCyclesPerLn  int         // data-bus occupancy per line transfer
	QueueDepth      int         // per-channel request queue entries
	Policy          SchedPolicy // scheduling discipline
}

// DefaultConfig returns the Table 1 DRAM configuration: 16 channels whose
// aggregate peak bandwidth is 64B/27cyc * 16 = 37.9 GB/s at 1 GHz (the paper
// quotes 38.4 GB/s).
func DefaultConfig() Config {
	return Config{
		Channels:        16,
		BanksPerChannel: 8,
		RowLines:        32, // 2 KB rows
		TCas:            20,
		TRowMiss:        30,
		BusCyclesPerLn:  27,
		QueueDepth:      16,
		Policy:          FRFCFS,
	}
}

// Stats aggregates DRAM activity counters.
type Stats struct {
	Reads     uint64 // line reads serviced
	Writes    uint64 // line writes serviced
	RowHits   uint64
	RowMisses uint64
	BusCycles uint64 // cycles any channel's data bus was busy
	Stalls    uint64 // Accept attempts refused because a queue was full
}

// BytesTransferred reports the total data moved over all channels.
func (s Stats) BytesTransferred() uint64 {
	return (s.Reads + s.Writes) * mem.LineBytes
}

type chanReq struct {
	req     LineReq
	arrival uint64
}

type pendingResp struct {
	resp  LineResp
	ready uint64
}

type bank struct {
	openRow   int64 // -1 when no row is open
	busyUntil uint64
}

type channel struct {
	queue   []chanReq
	banks   []bank
	busFree uint64 // first cycle the data bus is free
	pending []pendingResp
	resps   []LineResp

	// Fault injection: the channel's outage-window schedule, and a cursor
	// (last issue cycle) so entered windows are counted at transaction grain
	// — both stepping modes issue at identical cycles, so the counts match.
	windows   *fault.Windows
	winCursor uint64
}

// metrics are the DRAM performance counters: row-buffer locality and channel
// utilization, the levers behind the FR-FCFS scheduling the paper relies on.
type metrics struct {
	group      *stats.Group
	rowHits    *stats.Counter
	rowMisses  *stats.Counter
	precharges *stats.Counter // row misses that closed an already-open row
	busBusy    *stats.Counter // cycles any channel data bus was occupied
	reads      *stats.Counter
	writes     *stats.Counter
	queueDepth *stats.Gauge // total queued requests across channels (high-water)

	// Fault counters (zero unless injection is configured).
	faultStalls      *stats.Counter // transactions that suffered an injected timeout
	faultStallCycles *stats.Counter // extra latency charged by injected timeouts
	faultWindows     *stats.Counter // channel outage windows entered before an issue
}

func newMetrics() metrics {
	g := stats.NewGroup("dram")
	return metrics{
		group:      g,
		rowHits:    g.Counter("row_hits"),
		rowMisses:  g.Counter("row_misses"),
		precharges: g.Counter("precharges"),
		busBusy:    g.Counter("channel_busy_cycles"),
		reads:      g.Counter("reads"),
		writes:     g.Counter("writes"),
		queueDepth: g.Gauge("queue_depth"),

		faultStalls:      g.Counter("fault_stalls"),
		faultStallCycles: g.Counter("fault_stall_cycles"),
		faultWindows:     g.Counter("fault_windows"),
	}
}

// DRAM is the multi-channel line-granular memory model.
type DRAM struct {
	cfg      Config
	store    *mem.Store
	channels []channel
	queued   int // total requests queued across channels
	stats    Stats
	met      metrics
	rrChan   int // round-robin pointer for response draining
	tr       *span.Tracer
	track    string

	// Fault injection (nil/zero when disabled).
	stallInj    *fault.Injector
	stallCycles uint64
}

// New returns a DRAM with the given configuration, owning a fresh store.
func New(cfg Config) *DRAM {
	if cfg.Channels <= 0 || cfg.BanksPerChannel <= 0 || cfg.QueueDepth <= 0 {
		panic(fmt.Sprintf("dram: invalid config %+v", cfg))
	}
	d := &DRAM{cfg: cfg, store: mem.NewStore(), channels: make([]channel, cfg.Channels), met: newMetrics()}
	for i := range d.channels {
		banks := make([]bank, cfg.BanksPerChannel)
		for b := range banks {
			banks[b].openRow = -1
		}
		d.channels[i].banks = banks
	}
	return d
}

// Store exposes the functional memory image (for zero-time initialization
// and result readback).
func (d *DRAM) Store() *mem.Store { return d.store }

// Stats returns a copy of the activity counters.
func (d *DRAM) Stats() Stats { return d.stats }

// StatsGroup returns the DRAM's performance-counter group, for adoption into
// a machine-level registry.
func (d *DRAM) StatsGroup() *stats.Group { return d.met.group }

// Config returns the configuration the DRAM was built with.
func (d *DRAM) Config() Config { return d.cfg }

// SetSpanTracer installs a request-lifecycle tracer; track prefixes the
// per-channel track names (e.g. "dram" yields "dram[0]", "dram[1]", ...).
// A nil tracer disables tracing.
func (d *DRAM) SetSpanTracer(tr *span.Tracer, track string) {
	d.tr = tr
	d.track = track
}

// SetFaults installs fault injection. inst salts the injector streams so
// every DRAM instance (one per node in multi-node systems) gets its own
// deterministic schedule. Two fault classes apply:
//
//   - Per-transaction stalls: with probability DRAMStallRate a scheduled
//     transaction times out and retries internally, charging DRAMStallCycles
//     of extra latency. The Bernoulli draw happens once per issued
//     transaction, so legacy and fast-forward stepping consume the stream
//     identically.
//
//   - Channel outage windows: each channel owns a stateless fault.Windows
//     schedule during which it issues nothing. The schedule is a pure
//     function of the cycle number, so NextEvent can defer past windows
//     exactly and the fast-forward engine never lands inside one blind.
func (d *DRAM) SetFaults(fc fault.Config, inst string) {
	fc = fc.WithDefaults()
	d.stallInj = fault.NewInjector(fc.Seed, inst+".dram.stall", fc.DRAMStallRate)
	d.stallCycles = uint64(fc.DRAMStallCycles)
	for ci := range d.channels {
		d.channels[ci].windows = fault.NewWindows(fc.Seed,
			fmt.Sprintf("%s.dram.window[%d]", inst, ci),
			fc.DRAMWindowEvery, fc.DRAMWindowSpan, fc.DRAMWindowRate)
	}
}

// lineIndex returns the global line number of a line-aligned address.
func lineIndex(line mem.Addr) uint64 { return uint64(line) / mem.LineWords }

// channelOf maps a line to its channel (line interleaving).
func (d *DRAM) channelOf(line mem.Addr) int {
	return int(lineIndex(line) % uint64(d.cfg.Channels))
}

// bankRowOf maps a line to (bank, row) within its channel.
func (d *DRAM) bankRowOf(line mem.Addr) (int, int64) {
	li := lineIndex(line) / uint64(d.cfg.Channels) // channel-local line number
	b := int(li % uint64(d.cfg.BanksPerChannel))
	row := int64(li / uint64(d.cfg.BanksPerChannel) / uint64(d.cfg.RowLines))
	return b, row
}

// CanAccept reports whether a request for the given line can be enqueued.
func (d *DRAM) CanAccept(line mem.Addr) bool {
	return len(d.channels[d.channelOf(line)].queue) < d.cfg.QueueDepth
}

// Accept enqueues a line transaction. It reports false (and counts a stall)
// when the target channel queue is full. Write data is applied to the
// functional store immediately; timing is charged when the request is
// scheduled.
func (d *DRAM) Accept(now uint64, r LineReq) bool {
	if r.Line != r.Line.Line() {
		panic(fmt.Sprintf("dram: unaligned line address %d", r.Line))
	}
	ch := &d.channels[d.channelOf(r.Line)]
	if len(ch.queue) >= d.cfg.QueueDepth {
		d.stats.Stalls++
		return false
	}
	if r.Write {
		d.store.StoreLine(r.Line, &r.Data)
	}
	ch.queue = append(ch.queue, chanReq{req: r, arrival: now})
	d.queued++
	d.met.queueDepth.Set(int64(d.queued))
	return true
}

// schedule picks the index in ch.queue to service next under the configured
// policy, or -1 if nothing can start this cycle.
func (d *DRAM) schedule(now uint64, ch *channel) int {
	if len(ch.queue) == 0 {
		return -1
	}
	if ch.busFree > now {
		return -1
	}
	if _, blocked := ch.windows.Blocked(now); blocked {
		return -1 // injected channel outage: nothing issues
	}
	pick := -1
	if d.cfg.Policy == FRFCFS {
		// First pass: oldest row hit on a ready bank.
		for i := range ch.queue {
			b, row := d.bankRowOf(ch.queue[i].req.Line)
			bk := &ch.banks[b]
			if bk.busyUntil <= now && bk.openRow == row {
				pick = i
				break
			}
		}
	}
	if pick < 0 {
		// Oldest request on a ready bank.
		for i := range ch.queue {
			b, _ := d.bankRowOf(ch.queue[i].req.Line)
			if ch.banks[b].busyUntil <= now {
				pick = i
				break
			}
			if d.cfg.Policy == FIFO {
				return -1 // strict order: head blocked means all blocked
			}
		}
	}
	return pick
}

// Tick advances all channels by one cycle.
func (d *DRAM) Tick(now uint64) {
	for ci := range d.channels {
		ch := &d.channels[ci]
		// Retire pending reads whose data has arrived.
		for len(ch.pending) > 0 && ch.pending[0].ready <= now {
			ch.resps = append(ch.resps, ch.pending[0].resp)
			ch.pending = ch.pending[1:]
		}
		i := d.schedule(now, ch)
		if i < 0 {
			continue
		}
		cr := ch.queue[i]
		ch.queue = append(ch.queue[:i], ch.queue[i+1:]...)
		d.queued--
		b, row := d.bankRowOf(cr.req.Line)
		bk := &ch.banks[b]
		lat := uint64(d.cfg.TCas)
		if ch.windows != nil {
			// Charge outage windows entered since the previous issue; both
			// stepping modes issue at identical cycles, so counts match.
			d.met.faultWindows.Add(ch.windows.CountIn(ch.winCursor, now))
			ch.winCursor = now
		}
		if d.stallInj.Fire() {
			// Injected timeout: the transaction retries internally and
			// completes late. One draw per issued transaction.
			lat += d.stallCycles
			d.met.faultStalls.Inc()
			d.met.faultStallCycles.Add(d.stallCycles)
		}
		rowHit := bk.openRow == row
		if rowHit {
			d.stats.RowHits++
			d.met.rowHits.Inc()
		} else {
			d.stats.RowMisses++
			d.met.rowMisses.Inc()
			if bk.openRow >= 0 {
				d.met.precharges.Inc()
			}
			lat += uint64(d.cfg.TRowMiss)
			bk.openRow = row
		}
		bus := uint64(d.cfg.BusCyclesPerLn)
		bk.busyUntil = now + lat + bus
		ch.busFree = now + lat + bus // serialize transfers on the channel bus
		d.stats.BusCycles += bus
		d.met.busBusy.Add(bus)
		if d.tr != nil {
			// One serialized service span per channel transaction, with
			// the queueing delay and row outcome in the slice name.
			rw, rowTag := "rd", "hit"
			if cr.req.Write {
				rw = "wr"
			}
			if !rowHit {
				rowTag = "miss"
			}
			d.tr.Span(fmt.Sprintf("%s[%d]", d.track, ci),
				fmt.Sprintf("%s line=%d q=%d row-%s", rw, cr.req.Line, now-cr.arrival, rowTag),
				now, now+lat+bus)
		}
		if cr.req.Write {
			d.stats.Writes++
			d.met.writes.Inc()
			continue // data already in store; no response
		}
		d.stats.Reads++
		d.met.reads.Inc()
		resp := LineResp{ID: cr.req.ID, Line: cr.req.Line}
		d.store.LoadLine(cr.req.Line, &resp.Data)
		ch.pending = append(ch.pending, pendingResp{resp: resp, ready: now + lat + bus})
	}
}

// NextEvent reports the earliest cycle at which any channel can do work
// (see sim.FastForwarder): an undelivered response is work now; otherwise
// the earliest pending-read completion or the earliest cycle a queued
// transaction can start (data bus free and a serviceable bank ready — the
// head's bank under FIFO, any queued request's bank under FR-FCFS).
func (d *DRAM) NextEvent(now uint64) uint64 {
	ev := sim.Never
	for i := range d.channels {
		ch := &d.channels[i]
		if len(ch.resps) > 0 {
			return now
		}
		// busFree serializes transfers, so pending completions are
		// FIFO-ordered: the head is the earliest.
		if len(ch.pending) > 0 && ch.pending[0].ready < ev {
			ev = ch.pending[0].ready
		}
		if len(ch.queue) > 0 {
			if t := d.nextIssue(now, ch); t < ev {
				ev = t
			}
		}
	}
	if ev < now {
		return now
	}
	return ev
}

// nextIssue returns the earliest cycle >= now at which ch can start a
// queued transaction under the configured policy, deferred past any injected
// outage window.
func (d *DRAM) nextIssue(now uint64, ch *channel) uint64 {
	var bankReady uint64
	if d.cfg.Policy == FIFO {
		// Strict order: only the head request can issue.
		b, _ := d.bankRowOf(ch.queue[0].req.Line)
		bankReady = ch.banks[b].busyUntil
	} else {
		bankReady = sim.Never
		for i := range ch.queue {
			b, _ := d.bankRowOf(ch.queue[i].req.Line)
			if u := ch.banks[b].busyUntil; u < bankReady {
				bankReady = u
			}
		}
	}
	t := bankReady
	if ch.busFree > t {
		t = ch.busFree
	}
	if t < now {
		t = now
	}
	// An injected channel outage defers the issue to the window's end.
	return ch.windows.Defer(t)
}

// Skip is a no-op: the DRAM keeps no per-cycle counters while idle (bus
// occupancy is charged per transaction at schedule time).
func (d *DRAM) Skip(now, cycles uint64) {}

// PopResponse returns a completed read, draining channels round-robin.
func (d *DRAM) PopResponse(now uint64) (LineResp, bool) {
	for k := 0; k < len(d.channels); k++ {
		ci := (d.rrChan + k) % len(d.channels)
		ch := &d.channels[ci]
		if len(ch.resps) > 0 {
			r := ch.resps[0]
			ch.resps = ch.resps[1:]
			d.rrChan = (ci + 1) % len(d.channels)
			return r, true
		}
	}
	return LineResp{}, false
}

// Busy reports whether any request is queued, in flight, or undelivered.
func (d *DRAM) Busy() bool {
	for i := range d.channels {
		ch := &d.channels[i]
		if len(ch.queue) > 0 || len(ch.pending) > 0 || len(ch.resps) > 0 {
			return true
		}
	}
	return false
}
