// Package dram models off-chip memory timing.
//
// Two models are provided:
//
//   - DRAM: a channel/bank model with open-row state and memory access
//     scheduling (FR-FCFS, after Rixner et al., which the paper cites as the
//     mechanism that keeps Merrimac's effective DRAM throughput close to
//     peak). It transacts in whole cache lines and backs the stream cache.
//
//   - Uniform: the simplified memory used by the paper's sensitivity study
//     (§4.4): a fixed latency plus a fixed minimum interval between
//     successive word accesses ("memory throughput is held constant at 1
//     word every 2 cycles"). It transacts in words and is used in the
//     no-cache configurations of Figures 11 and 12.
//
// Both models are functional as well as timed: they own a mem.Store that
// holds the authoritative memory image, so simulations produce real values.
package dram

import (
	"fmt"

	"scatteradd/internal/fault"
	"scatteradd/internal/mem"
	"scatteradd/internal/sim"
	"scatteradd/internal/span"
	"scatteradd/internal/stats"
)

// LineReq is a whole-cache-line transaction presented to the DRAM model.
// For writes, Data carries the line to be written; for reads, Data is
// ignored on input and returned in the LineResp.
type LineReq struct {
	ID    uint64
	Line  mem.Addr // line-aligned word address
	Write bool
	Data  [mem.LineWords]mem.Word
}

// LineResp is the completion of a read LineReq. Writes complete silently.
type LineResp struct {
	ID   uint64
	Line mem.Addr
	Data [mem.LineWords]mem.Word
}

// SchedPolicy selects the per-channel scheduling discipline.
type SchedPolicy uint8

const (
	// FRFCFS prefers row-hit requests over older row-miss requests
	// (first-ready, first-come-first-served).
	FRFCFS SchedPolicy = iota
	// FIFO services requests strictly in arrival order (ablation baseline).
	FIFO
)

func (p SchedPolicy) String() string {
	if p == FIFO {
		return "FIFO"
	}
	return "FR-FCFS"
}

// Config holds the DRAM timing parameters. The defaults (DefaultConfig)
// realize the paper's Table 1: 16 channels and 38.4 GB/s peak bandwidth at
// 1 GHz.
type Config struct {
	Channels        int         // independent DRAM channels
	BanksPerChannel int         // internal banks per channel
	RowLines        int         // cache lines per DRAM row (row size / 64B)
	TCas            int         // cycles from issue to data for a row hit
	TRowMiss        int         // additional cycles for precharge+activate
	BusCyclesPerLn  int         // data-bus occupancy per line transfer
	QueueDepth      int         // per-channel request queue entries
	Policy          SchedPolicy // scheduling discipline
}

// DefaultConfig returns the Table 1 DRAM configuration: 16 channels whose
// aggregate peak bandwidth is 64B/27cyc * 16 = 37.9 GB/s at 1 GHz (the paper
// quotes 38.4 GB/s).
func DefaultConfig() Config {
	return Config{
		Channels:        16,
		BanksPerChannel: 8,
		RowLines:        32, // 2 KB rows
		TCas:            20,
		TRowMiss:        30,
		BusCyclesPerLn:  27,
		QueueDepth:      16,
		Policy:          FRFCFS,
	}
}

// Stats aggregates DRAM activity counters.
type Stats struct {
	Reads     uint64 // line reads serviced
	Writes    uint64 // line writes serviced
	RowHits   uint64
	RowMisses uint64
	BusCycles uint64 // cycles any channel's data bus was busy
	Stalls    uint64 // Accept attempts refused because a queue was full
}

// BytesTransferred reports the total data moved over all channels.
func (s Stats) BytesTransferred() uint64 {
	return (s.Reads + s.Writes) * mem.LineBytes
}

type chanReq struct {
	req     LineReq
	arrival uint64
}

type pendingResp struct {
	resp  LineResp
	ready uint64
}

type bank struct {
	openRow   int64 // -1 when no row is open
	busyUntil uint64
}

// chanStats are one channel's cumulative activity counters. All transaction
// accounting is confined to the owning channel so that parallel shard
// workers ticking disjoint channel sets never share a counter; DRAM-wide
// totals are folded from these at sequential points (Stats, FoldMetrics).
type chanStats struct {
	reads, writes       uint64
	rowHits, rowMisses  uint64
	precharges          uint64
	busCycles           uint64
	stalls              uint64 // Accept attempts refused on this channel
	faultStalls         uint64
	faultStallCycles    uint64
	faultWindowsCrossed uint64
}

func (s *chanStats) add(o *chanStats) {
	s.reads += o.reads
	s.writes += o.writes
	s.rowHits += o.rowHits
	s.rowMisses += o.rowMisses
	s.precharges += o.precharges
	s.busCycles += o.busCycles
	s.stalls += o.stalls
	s.faultStalls += o.faultStalls
	s.faultStallCycles += o.faultStallCycles
	s.faultWindowsCrossed += o.faultWindowsCrossed
}

type channel struct {
	queue   []chanReq
	banks   []bank
	busFree uint64 // first cycle the data bus is free

	// pending and resps are consumed from a head index rather than by
	// re-slicing, so their backing arrays are reused as slabs: once both
	// drains empty a slice, it resets to [:0]/head 0 and the steady-state
	// tick allocates nothing.
	pending  []pendingResp
	pendHead int
	resps    []LineResp
	respHead int

	st chanStats

	// Fault injection: a per-channel stall stream (so the Bernoulli draw
	// order is a pure function of the channel's own issue sequence, not of
	// which other channels issued first), the channel's outage-window
	// schedule, and a cursor (last issue cycle) so entered windows are
	// counted at transaction grain — both stepping modes issue at identical
	// cycles, so the counts match.
	stallInj  *fault.Injector
	windows   *fault.Windows
	winCursor uint64
}

// metrics are the DRAM performance counters: row-buffer locality and channel
// utilization, the levers behind the FR-FCFS scheduling the paper relies on.
type metrics struct {
	group      *stats.Group
	rowHits    *stats.Counter
	rowMisses  *stats.Counter
	precharges *stats.Counter // row misses that closed an already-open row
	busBusy    *stats.Counter // cycles any channel data bus was occupied
	reads      *stats.Counter
	writes     *stats.Counter
	queueDepth *stats.Gauge // total queued requests across channels (high-water)

	// Fault counters (zero unless injection is configured).
	faultStalls      *stats.Counter // transactions that suffered an injected timeout
	faultStallCycles *stats.Counter // extra latency charged by injected timeouts
	faultWindows     *stats.Counter // channel outage windows entered before an issue
}

func newMetrics() metrics {
	g := stats.NewGroup("dram")
	return metrics{
		group:      g,
		rowHits:    g.Counter("row_hits"),
		rowMisses:  g.Counter("row_misses"),
		precharges: g.Counter("precharges"),
		busBusy:    g.Counter("channel_busy_cycles"),
		reads:      g.Counter("reads"),
		writes:     g.Counter("writes"),
		queueDepth: g.Gauge("queue_depth"),

		faultStalls:      g.Counter("fault_stalls"),
		faultStallCycles: g.Counter("fault_stall_cycles"),
		faultWindows:     g.Counter("fault_windows"),
	}
}

// DRAM is the multi-channel line-granular memory model.
type DRAM struct {
	cfg      Config
	store    *mem.Store
	channels []channel
	queued   int // total requests queued across channels (unpartitioned mode)
	met      metrics
	folded   chanStats // counter totals already folded into met (partitioned mode)
	rrChan   int       // round-robin pointer for response draining
	tr       *span.Tracer
	track    string

	// partitioned marks the DRAM as channel-partitioned across parallel
	// shard workers (SetPartitioned): global accounting (the queue-depth
	// gauge, the met counters) moves off the per-transaction path onto
	// sequential fold points so shard ticks never share a counter.
	partitioned bool

	// Fault injection (zero when disabled).
	stallCycles uint64
}

// New returns a DRAM with the given configuration, owning a fresh store.
func New(cfg Config) *DRAM {
	if cfg.Channels <= 0 || cfg.BanksPerChannel <= 0 || cfg.QueueDepth <= 0 {
		panic(fmt.Sprintf("dram: invalid config %+v", cfg))
	}
	d := &DRAM{cfg: cfg, store: mem.NewStore(), channels: make([]channel, cfg.Channels), met: newMetrics()}
	for i := range d.channels {
		banks := make([]bank, cfg.BanksPerChannel)
		for b := range banks {
			banks[b].openRow = -1
		}
		d.channels[i].banks = banks
	}
	return d
}

// Store exposes the functional memory image (for zero-time initialization
// and result readback).
func (d *DRAM) Store() *mem.Store { return d.store }

// Stats returns a copy of the activity counters, folded across channels.
func (d *DRAM) Stats() Stats {
	var sum chanStats
	for i := range d.channels {
		sum.add(&d.channels[i].st)
	}
	return Stats{
		Reads:     sum.reads,
		Writes:    sum.writes,
		RowHits:   sum.rowHits,
		RowMisses: sum.rowMisses,
		BusCycles: sum.busCycles,
		Stalls:    sum.stalls,
	}
}

// StatsGroup returns the DRAM's performance-counter group, for adoption into
// a machine-level registry.
func (d *DRAM) StatsGroup() *stats.Group { return d.met.group }

// Config returns the configuration the DRAM was built with.
func (d *DRAM) Config() Config { return d.cfg }

// SetSpanTracer installs a request-lifecycle tracer; track prefixes the
// per-channel track names (e.g. "dram" yields "dram[0]", "dram[1]", ...).
// A nil tracer disables tracing.
func (d *DRAM) SetSpanTracer(tr *span.Tracer, track string) {
	d.tr = tr
	d.track = track
}

// SetFaults installs fault injection. inst salts the injector streams so
// every DRAM instance (one per node in multi-node systems) gets its own
// deterministic schedule. Two fault classes apply:
//
//   - Per-transaction stalls: with probability DRAMStallRate a scheduled
//     transaction times out and retries internally, charging DRAMStallCycles
//     of extra latency. Each channel owns its own Bernoulli stream, drawn
//     once per issued transaction, so the draw order is a pure function of
//     the channel's issue sequence — identical under legacy stepping,
//     fast-forward, and any shard partition of the channels.
//
//   - Channel outage windows: each channel owns a stateless fault.Windows
//     schedule during which it issues nothing. The schedule is a pure
//     function of the cycle number, so NextEvent can defer past windows
//     exactly and the fast-forward engine never lands inside one blind.
func (d *DRAM) SetFaults(fc fault.Config, inst string) {
	fc = fc.WithDefaults()
	d.stallCycles = uint64(fc.DRAMStallCycles)
	for ci := range d.channels {
		d.channels[ci].stallInj = fault.NewInjector(fc.Seed,
			fmt.Sprintf("%s.dram.stall[%d]", inst, ci), fc.DRAMStallRate)
		d.channels[ci].windows = fault.NewWindows(fc.Seed,
			fmt.Sprintf("%s.dram.window[%d]", inst, ci),
			fc.DRAMWindowEvery, fc.DRAMWindowSpan, fc.DRAMWindowRate)
	}
}

// lineIndex returns the global line number of a line-aligned address.
func lineIndex(line mem.Addr) uint64 { return uint64(line) / mem.LineWords }

// channelOf maps a line to its channel (line interleaving).
func (d *DRAM) channelOf(line mem.Addr) int {
	return int(lineIndex(line) % uint64(d.cfg.Channels))
}

// bankRowOf maps a line to (bank, row) within its channel.
func (d *DRAM) bankRowOf(line mem.Addr) (int, int64) {
	li := lineIndex(line) / uint64(d.cfg.Channels) // channel-local line number
	b := int(li % uint64(d.cfg.BanksPerChannel))
	row := int64(li / uint64(d.cfg.BanksPerChannel) / uint64(d.cfg.RowLines))
	return b, row
}

// CanAccept reports whether a request for the given line can be enqueued.
func (d *DRAM) CanAccept(line mem.Addr) bool {
	return len(d.channels[d.channelOf(line)].queue) < d.cfg.QueueDepth
}

// Accept enqueues a line transaction. It reports false (and counts a stall)
// when the target channel queue is full. Write data is applied to the
// functional store immediately; timing is charged when the request is
// scheduled.
func (d *DRAM) Accept(now uint64, r LineReq) bool {
	if r.Line != r.Line.Line() {
		panic(fmt.Sprintf("dram: unaligned line address %d", r.Line))
	}
	ch := &d.channels[d.channelOf(r.Line)]
	if len(ch.queue) >= d.cfg.QueueDepth {
		ch.st.stalls++
		return false
	}
	if r.Write {
		d.store.StoreLine(r.Line, &r.Data)
	}
	ch.queue = append(ch.queue, chanReq{req: r, arrival: now})
	if !d.partitioned {
		d.queued++
		d.met.queueDepth.Set(int64(d.queued))
	}
	return true
}

// schedule picks the index in ch.queue to service next under the configured
// policy, or -1 if nothing can start this cycle.
func (d *DRAM) schedule(now uint64, ch *channel) int {
	if len(ch.queue) == 0 {
		return -1
	}
	if ch.busFree > now {
		return -1
	}
	if _, blocked := ch.windows.Blocked(now); blocked {
		return -1 // injected channel outage: nothing issues
	}
	pick := -1
	if d.cfg.Policy == FRFCFS {
		// First pass: oldest row hit on a ready bank.
		for i := range ch.queue {
			b, row := d.bankRowOf(ch.queue[i].req.Line)
			bk := &ch.banks[b]
			if bk.busyUntil <= now && bk.openRow == row {
				pick = i
				break
			}
		}
	}
	if pick < 0 {
		// Oldest request on a ready bank.
		for i := range ch.queue {
			b, _ := d.bankRowOf(ch.queue[i].req.Line)
			if ch.banks[b].busyUntil <= now {
				pick = i
				break
			}
			if d.cfg.Policy == FIFO {
				return -1 // strict order: head blocked means all blocked
			}
		}
	}
	return pick
}

// Tick advances all channels by one cycle.
func (d *DRAM) Tick(now uint64) {
	for ci := range d.channels {
		d.tickChannel(now, ci, d.tr)
	}
	d.FoldMetrics()
}

// SetPartitioned marks the DRAM as channel-partitioned across parallel shard
// workers. The owner then drives channels with TickChannels/DrainResponses/
// NextEventChannels and is responsible for calling FoldMetrics and
// SyncQueueDepth at sequential points; the per-transaction global accounting
// (queue-depth gauge updates in Accept) is suppressed so shard ticks never
// write shared state.
func (d *DRAM) SetPartitioned() { d.partitioned = true }

// TickChannels advances exactly the given channels by one cycle, recording
// any spans on tr. Writes are confined to those channels (plus the
// synchronized store), so disjoint channel sets may tick concurrently.
func (d *DRAM) TickChannels(now uint64, chans []int, tr *span.Tracer) {
	for _, ci := range chans {
		d.tickChannel(now, ci, tr)
	}
}

// DrainResponses pops every completed read on the given channels, in channel
// list order, into fn. Unlike the round-robin PopResponse it never consults
// other channels, so disjoint channel sets may drain concurrently.
func (d *DRAM) DrainResponses(chans []int, fn func(LineResp)) {
	for _, ci := range chans {
		ch := &d.channels[ci]
		for i := ch.respHead; i < len(ch.resps); i++ {
			fn(ch.resps[i])
		}
		ch.resps = ch.resps[:0]
		ch.respHead = 0
	}
}

// NextEventChannels is NextEvent restricted to the given channels.
func (d *DRAM) NextEventChannels(now uint64, chans []int) uint64 {
	ev := sim.Never
	for _, ci := range chans {
		ch := &d.channels[ci]
		if ch.respHead < len(ch.resps) {
			return now
		}
		if ch.pendHead < len(ch.pending) && ch.pending[ch.pendHead].ready < ev {
			ev = ch.pending[ch.pendHead].ready
		}
		if len(ch.queue) > 0 {
			if t := d.nextIssue(now, ch); t < ev {
				ev = t
			}
		}
	}
	if ev < now {
		return now
	}
	return ev
}

// FoldMetrics folds the per-channel accumulators into the performance-
// counter group, adding only the delta since the previous fold. The whole-
// DRAM Tick folds every cycle; a partitioned owner folds at sequential
// points (the fold order is fixed, and counters are order-insensitive sums,
// so the folded values are identical for any shard count).
func (d *DRAM) FoldMetrics() {
	var cur chanStats
	for i := range d.channels {
		cur.add(&d.channels[i].st)
	}
	d.met.rowHits.Add(cur.rowHits - d.folded.rowHits)
	d.met.rowMisses.Add(cur.rowMisses - d.folded.rowMisses)
	d.met.precharges.Add(cur.precharges - d.folded.precharges)
	d.met.busBusy.Add(cur.busCycles - d.folded.busCycles)
	d.met.reads.Add(cur.reads - d.folded.reads)
	d.met.writes.Add(cur.writes - d.folded.writes)
	d.met.faultStalls.Add(cur.faultStalls - d.folded.faultStalls)
	d.met.faultStallCycles.Add(cur.faultStallCycles - d.folded.faultStallCycles)
	d.met.faultWindows.Add(cur.faultWindowsCrossed - d.folded.faultWindowsCrossed)
	d.folded = cur
}

// SyncQueueDepth samples the total queued requests across all channels into
// the queue-depth gauge. A partitioned owner calls it once per cycle at a
// sequential point (the gauge's high-water mark then tracks end-of-cycle
// totals, which are scheduling-independent).
func (d *DRAM) SyncQueueDepth() {
	total := 0
	for i := range d.channels {
		total += len(d.channels[i].queue)
	}
	d.met.queueDepth.Set(int64(total))
}

// tickChannel advances one channel by one cycle. All writes are confined to
// the channel itself (plus the synchronized store), so parallel shard
// workers may tick disjoint channel sets concurrently. Spans are recorded on
// tr — the caller's tracer for the shard that owns this channel.
func (d *DRAM) tickChannel(now uint64, ci int, tr *span.Tracer) {
	ch := &d.channels[ci]
	// Retire pending reads whose data has arrived.
	for ch.pendHead < len(ch.pending) && ch.pending[ch.pendHead].ready <= now {
		ch.resps = append(ch.resps, ch.pending[ch.pendHead].resp)
		ch.pendHead++
	}
	if ch.pendHead > 0 && ch.pendHead == len(ch.pending) {
		ch.pending = ch.pending[:0]
		ch.pendHead = 0
	}
	i := d.schedule(now, ch)
	if i < 0 {
		return
	}
	cr := ch.queue[i]
	ch.queue = append(ch.queue[:i], ch.queue[i+1:]...)
	if !d.partitioned {
		d.queued--
	}
	b, row := d.bankRowOf(cr.req.Line)
	bk := &ch.banks[b]
	lat := uint64(d.cfg.TCas)
	if ch.windows != nil {
		// Charge outage windows entered since the previous issue; both
		// stepping modes issue at identical cycles, so counts match.
		ch.st.faultWindowsCrossed += ch.windows.CountIn(ch.winCursor, now)
		ch.winCursor = now
	}
	if ch.stallInj.Fire() {
		// Injected timeout: the transaction retries internally and
		// completes late. One draw per issued transaction.
		lat += d.stallCycles
		ch.st.faultStalls++
		ch.st.faultStallCycles += d.stallCycles
	}
	rowHit := bk.openRow == row
	if rowHit {
		ch.st.rowHits++
	} else {
		ch.st.rowMisses++
		if bk.openRow >= 0 {
			ch.st.precharges++
		}
		lat += uint64(d.cfg.TRowMiss)
		bk.openRow = row
	}
	bus := uint64(d.cfg.BusCyclesPerLn)
	bk.busyUntil = now + lat + bus
	ch.busFree = now + lat + bus // serialize transfers on the channel bus
	ch.st.busCycles += bus
	if tr != nil {
		// One serialized service span per channel transaction, with
		// the queueing delay and row outcome in the slice name.
		rw, rowTag := "rd", "hit"
		if cr.req.Write {
			rw = "wr"
		}
		if !rowHit {
			rowTag = "miss"
		}
		tr.Span(fmt.Sprintf("%s[%d]", d.track, ci),
			fmt.Sprintf("%s line=%d q=%d row-%s", rw, cr.req.Line, now-cr.arrival, rowTag),
			now, now+lat+bus)
	}
	if cr.req.Write {
		ch.st.writes++
		return // data already in store; no response
	}
	ch.st.reads++
	resp := LineResp{ID: cr.req.ID, Line: cr.req.Line}
	d.store.LoadLine(cr.req.Line, &resp.Data)
	ch.pending = append(ch.pending, pendingResp{resp: resp, ready: now + lat + bus})
}

// NextEvent reports the earliest cycle at which any channel can do work
// (see sim.FastForwarder): an undelivered response is work now; otherwise
// the earliest pending-read completion or the earliest cycle a queued
// transaction can start (data bus free and a serviceable bank ready — the
// head's bank under FIFO, any queued request's bank under FR-FCFS).
func (d *DRAM) NextEvent(now uint64) uint64 {
	ev := sim.Never
	for i := range d.channels {
		ch := &d.channels[i]
		if ch.respHead < len(ch.resps) {
			return now
		}
		// busFree serializes transfers, so pending completions are
		// FIFO-ordered: the head is the earliest.
		if ch.pendHead < len(ch.pending) && ch.pending[ch.pendHead].ready < ev {
			ev = ch.pending[ch.pendHead].ready
		}
		if len(ch.queue) > 0 {
			if t := d.nextIssue(now, ch); t < ev {
				ev = t
			}
		}
	}
	if ev < now {
		return now
	}
	return ev
}

// nextIssue returns the earliest cycle >= now at which ch can start a
// queued transaction under the configured policy, deferred past any injected
// outage window.
func (d *DRAM) nextIssue(now uint64, ch *channel) uint64 {
	var bankReady uint64
	if d.cfg.Policy == FIFO {
		// Strict order: only the head request can issue.
		b, _ := d.bankRowOf(ch.queue[0].req.Line)
		bankReady = ch.banks[b].busyUntil
	} else {
		bankReady = sim.Never
		for i := range ch.queue {
			b, _ := d.bankRowOf(ch.queue[i].req.Line)
			if u := ch.banks[b].busyUntil; u < bankReady {
				bankReady = u
			}
		}
	}
	t := bankReady
	if ch.busFree > t {
		t = ch.busFree
	}
	if t < now {
		t = now
	}
	// An injected channel outage defers the issue to the window's end.
	return ch.windows.Defer(t)
}

// Skip is a no-op: the DRAM keeps no per-cycle counters while idle (bus
// occupancy is charged per transaction at schedule time).
func (d *DRAM) Skip(now, cycles uint64) {}

// PopResponse returns a completed read, draining channels round-robin.
func (d *DRAM) PopResponse(now uint64) (LineResp, bool) {
	for k := 0; k < len(d.channels); k++ {
		ci := (d.rrChan + k) % len(d.channels)
		ch := &d.channels[ci]
		if ch.respHead < len(ch.resps) {
			r := ch.resps[ch.respHead]
			ch.respHead++
			if ch.respHead == len(ch.resps) {
				ch.resps = ch.resps[:0]
				ch.respHead = 0
			}
			d.rrChan = (ci + 1) % len(d.channels)
			return r, true
		}
	}
	return LineResp{}, false
}

// Busy reports whether any request is queued, in flight, or undelivered.
func (d *DRAM) Busy() bool {
	for i := range d.channels {
		ch := &d.channels[i]
		if len(ch.queue) > 0 || ch.pendHead < len(ch.pending) || ch.respHead < len(ch.resps) {
			return true
		}
	}
	return false
}
