package dram

import (
	"fmt"

	"scatteradd/internal/mem"
	"scatteradd/internal/sim"
	"scatteradd/internal/span"
)

// Uniform is the simplified memory model of the paper's sensitivity study
// (§4.4): "we run the experiments without a cache, and implement memory as a
// uniform bandwidth and latency structure. Throughput is modeled by a fixed
// cycle interval between successive memory word accesses, and latency by a
// fixed value." It transacts in single words and implements port.Word.
type Uniform struct {
	latency  uint64 // cycles from issue to response
	interval uint64 // minimum cycles between successive word accesses
	store    *mem.Store

	queue    []mem.Request // accepted, not yet issued
	depth    int
	nextFree uint64 // first cycle the next access may issue
	pending  []pendingWord
	resps    []mem.Response

	reads, writes uint64

	tr    *span.Tracer
	track string
}

type pendingWord struct {
	resp  mem.Response
	ready uint64
}

// NewUniform returns a uniform memory with the given access latency,
// inter-access interval (both in cycles), and request-queue depth.
func NewUniform(latency, interval, depth int) *Uniform {
	if latency < 0 || interval < 1 || depth < 1 {
		panic(fmt.Sprintf("dram: invalid uniform memory parameters lat=%d int=%d depth=%d",
			latency, interval, depth))
	}
	return &Uniform{
		latency:  uint64(latency),
		interval: uint64(interval),
		store:    mem.NewStore(),
		depth:    depth,
	}
}

// Store exposes the functional memory image.
func (u *Uniform) Store() *mem.Store { return u.store }

// Accesses reports the number of word reads and writes serviced.
func (u *Uniform) Accesses() (reads, writes uint64) { return u.reads, u.writes }

// SetSpanTracer installs a request-lifecycle tracer; track names the
// memory in exported traces. A nil tracer disables tracing.
func (u *Uniform) SetSpanTracer(tr *span.Tracer, track string) {
	u.tr = tr
	u.track = track
}

// CanAccept reports whether the request queue has room.
func (u *Uniform) CanAccept(now uint64) bool { return len(u.queue) < u.depth }

// Accept enqueues a word read or write. Scatter-add kinds are rejected with
// a panic: the uniform memory sits below the scatter-add unit, which has
// already reduced them to reads and writes.
func (u *Uniform) Accept(now uint64, r mem.Request) bool {
	if r.Kind != mem.Read && r.Kind != mem.Write {
		panic(fmt.Sprintf("dram: uniform memory cannot service %v", r.Kind))
	}
	if len(u.queue) >= u.depth {
		return false
	}
	if u.tr != nil {
		// Queue wait and service are both attributed to the memory stage;
		// there is no cache in the uniform configuration.
		u.tr.OpStage(r.Node, r.ID, span.StageDRAM, now)
	}
	u.queue = append(u.queue, r)
	return true
}

// Tick issues at most one queued access per cycle, respecting the
// inter-access interval, and retires pending responses.
func (u *Uniform) Tick(now uint64) {
	if len(u.queue) > 0 && now >= u.nextFree {
		r := u.queue[0]
		u.queue = u.queue[1:]
		u.nextFree = now + u.interval
		if r.Kind == mem.Write {
			u.writes++
			u.store.StoreWord(r.Addr, r.Val)
			if u.tr != nil {
				u.tr.OpEnd(r.Node, r.ID, now)
				u.tr.SpanAsync(u.track, fmt.Sprintf("wr a=%d", r.Addr), now, now+u.interval)
			}
			return
		}
		u.reads++
		if u.tr != nil {
			u.tr.SpanAsync(u.track, fmt.Sprintf("rd a=%d", r.Addr), now, now+u.latency)
		}
		u.pending = append(u.pending, pendingWord{
			resp: mem.Response{
				ID: r.ID, Kind: mem.Read, Addr: r.Addr,
				Val: u.store.Load(r.Addr), Node: r.Node,
			},
			ready: now + u.latency,
		})
	}
}

// NextEvent reports the earliest cycle at which the memory can do work (see
// sim.FastForwarder): the next issue slot when a request is queued, else the
// head pending completion (issues are monotone with fixed latency, so the
// head is the earliest), else Never.
func (u *Uniform) NextEvent(now uint64) uint64 {
	if len(u.queue) > 0 {
		if u.nextFree > now {
			return u.nextFree
		}
		return now
	}
	if len(u.pending) > 0 {
		if r := u.pending[0].ready; r > now {
			return r
		}
		return now
	}
	return sim.Never
}

// Skip is a no-op: the uniform memory keeps no per-cycle counters.
func (u *Uniform) Skip(now, cycles uint64) {}

// PopResponse returns one completed read response, if ready.
func (u *Uniform) PopResponse(now uint64) (mem.Response, bool) {
	if len(u.pending) > 0 && u.pending[0].ready <= now {
		r := u.pending[0].resp
		u.pending = u.pending[1:]
		return r, true
	}
	return mem.Response{}, false
}

// Busy reports whether any access is queued or in flight.
func (u *Uniform) Busy() bool { return len(u.queue) > 0 || len(u.pending) > 0 }
