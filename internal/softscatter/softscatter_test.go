package softscatter

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"scatteradd/internal/machine"
	"scatteradd/internal/mem"
)

func TestBitonicSortSortsPowerOfTwo(t *testing.T) {
	p := []Pair{{5, 0}, {3, 1}, {8, 2}, {1, 3}, {9, 4}, {2, 5}, {7, 6}, {0, 7}}
	BitonicSortPairs(p)
	for i := 1; i < len(p); i++ {
		if p[i-1].Addr > p[i].Addr {
			t.Fatalf("not sorted at %d: %+v", i, p)
		}
	}
}

func TestBitonicSortRejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BitonicSortPairs(make([]Pair, 3))
}

// Property: BitonicSortPairs sorts any power-of-two input and preserves the
// multiset of pairs.
func TestBitonicSortProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		p := make([]Pair, 0, len(keys))
		for i, k := range keys {
			p = append(p, Pair{Addr: mem.Addr(k), Val: mem.Word(i)})
		}
		padded, orig := PadPow2(p)
		refCount := map[Pair]int{}
		for _, x := range padded {
			refCount[x]++
		}
		BitonicSortPairs(padded)
		for i := 1; i < len(padded); i++ {
			if padded[i-1].Addr > padded[i].Addr {
				return false
			}
		}
		for _, x := range padded {
			refCount[x]--
		}
		for _, c := range refCount {
			if c != 0 {
				return false
			}
		}
		_ = orig
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPadPow2(t *testing.T) {
	p, orig := PadPow2(make([]Pair, 5))
	if len(p) != 8 || orig != 5 {
		t.Fatalf("pad: len=%d orig=%d", len(p), orig)
	}
	p2, orig2 := PadPow2(make([]Pair, 8))
	if len(p2) != 8 || orig2 != 8 {
		t.Fatalf("pad pow2 input: len=%d orig=%d", len(p2), orig2)
	}
	// Sentinels sort last.
	q := []Pair{{Addr: 100}, {Addr: 2}, {Addr: 50}}
	qq, _ := PadPow2(q)
	BitonicSortPairs(qq)
	if qq[0].Addr != 2 || qq[3].Addr != ^mem.Addr(0) {
		t.Fatalf("sentinel placement: %+v", qq)
	}
}

func TestBitonicStageCounts(t *testing.T) {
	if BitonicStages(256) != 36 { // log2=8 -> 8*9/2
		t.Fatalf("stages(256) = %d", BitonicStages(256))
	}
	if BitonicCompares(256) != 128*36 {
		t.Fatalf("compares(256) = %d", BitonicCompares(256))
	}
}

func TestMergeSortedPairs(t *testing.T) {
	a := []Pair{{1, 0}, {4, 0}, {9, 0}}
	b := []Pair{{2, 0}, {4, 1}, {11, 0}}
	out := MergeSortedPairs(a, b)
	want := []mem.Addr{1, 2, 4, 4, 9, 11}
	for i, w := range want {
		if out[i].Addr != w {
			t.Fatalf("merge: %+v", out)
		}
	}
}

// Property: SortPairs (bitonic batches + merge) equals a reference sort.
func TestSortPairsProperty(t *testing.T) {
	f := func(keys []uint16, batchSel uint8) bool {
		batch := []int{2, 4, 64, 256}[batchSel%4]
		p := make([]Pair, len(keys))
		for i, k := range keys {
			p[i] = Pair{Addr: mem.Addr(k), Val: mem.Word(i)}
		}
		got := SortPairs(p, batch)
		ref := make([]Pair, len(p))
		copy(ref, p)
		sort.SliceStable(ref, func(i, j int) bool { return ref[i].Addr < ref[j].Addr })
		if len(got) != len(ref) {
			return false
		}
		for i := range got {
			if got[i].Addr != ref[i].Addr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegmentedReduce(t *testing.T) {
	sorted := []Pair{
		{1, mem.I64(2)}, {1, mem.I64(3)}, {4, mem.I64(10)}, {9, mem.I64(-1)}, {9, mem.I64(1)},
	}
	addrs, sums := SegmentedReduce(sorted, mem.AddI64)
	if len(addrs) != 3 || addrs[0] != 1 || addrs[1] != 4 || addrs[2] != 9 {
		t.Fatalf("addrs = %v", addrs)
	}
	if mem.AsI64(sums[0]) != 5 || mem.AsI64(sums[1]) != 10 || mem.AsI64(sums[2]) != 0 {
		t.Fatalf("sums = %v", sums)
	}
}

func TestSegmentedScanExclusive(t *testing.T) {
	sorted := []Pair{{1, mem.I64(2)}, {1, mem.I64(3)}, {1, mem.I64(4)}, {7, mem.I64(5)}}
	out := SegmentedScanExclusive(sorted, mem.AddI64)
	want := []int64{0, 2, 5, 0}
	for i, w := range want {
		if mem.AsI64(out[i]) != w {
			t.Fatalf("scan = %v", out)
		}
	}
}

func smallMachine() *machine.Machine {
	cfg := machine.DefaultConfig()
	cfg.Cache.TotalLines = 256
	cfg.KernelStartup = 8
	cfg.MemOpStartup = 4
	return machine.New(cfg)
}

func TestSortScanMatchesReference(t *testing.T) {
	m := smallMachine()
	n := 700
	addrs := make([]mem.Addr, n)
	vals := make([]mem.Word, n)
	ref := map[mem.Addr]int64{}
	seed := uint64(7)
	for i := range addrs {
		seed = seed*6364136223846793005 + 1442695040888963407
		a := mem.Addr(seed % 97)
		addrs[i] = a
		vals[i] = mem.I64(int64(i%13 - 6))
		ref[a] += int64(i%13 - 6)
	}
	res := SortScan(m, mem.AddI64, addrs, vals, 256)
	m.FlushCaches()
	for a, want := range ref {
		if got := m.Store().LoadI64(a); got != want {
			t.Fatalf("addr %d = %d want %d", a, got, want)
		}
	}
	if res.Cycles == 0 || res.MemRefs == 0 {
		t.Fatalf("no cost charged: %+v", res)
	}
}

func TestSortScanFloatBroadcast(t *testing.T) {
	m := smallMachine()
	addrs := []mem.Addr{3, 3, 3, 5, 5, 8}
	SortScan(m, mem.AddF64, addrs, []mem.Word{mem.F64(0.5)}, 4)
	m.FlushCaches()
	if got := m.Store().LoadF64(3); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("bin3 = %g", got)
	}
	if got := m.Store().LoadF64(5); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("bin5 = %g", got)
	}
}

func TestSortScanAccumulatesAcrossBatches(t *testing.T) {
	// The same address appearing in different batches must accumulate via
	// memory read-modify-write between batches.
	m := smallMachine()
	addrs := make([]mem.Addr, 32)
	for i := range addrs {
		addrs[i] = 7
	}
	SortScan(m, mem.AddI64, addrs, []mem.Word{mem.I64(1)}, 8)
	m.FlushCaches()
	if got := m.Store().LoadI64(7); got != 32 {
		t.Fatalf("cross-batch sum = %d want 32", got)
	}
}

func TestSortScanRejectsFetch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SortScan(smallMachine(), mem.FetchAddI64, []mem.Addr{1}, []mem.Word{1}, 0)
}

func TestPrivatizeMatchesReference(t *testing.T) {
	m := smallMachine()
	const base = mem.Addr(1024)
	const rng = 96
	n := 400
	addrs := make([]mem.Addr, n)
	ref := make([]int64, rng)
	seed := uint64(21)
	for i := range addrs {
		seed = seed*6364136223846793005 + 1442695040888963407
		b := seed % rng
		addrs[i] = base + mem.Addr(b)
		ref[b]++
	}
	res := Privatize(m, mem.AddI64, addrs, []mem.Word{mem.I64(1)}, base, rng, 0, 32)
	m.FlushCaches()
	for b := 0; b < rng; b++ {
		if got := m.Store().LoadI64(base + mem.Addr(b)); got != ref[b] {
			t.Fatalf("bin %d = %d want %d", b, got, ref[b])
		}
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles charged")
	}
}

func TestPrivatizeCostGrowsWithRange(t *testing.T) {
	run := func(rng int) uint64 {
		m := smallMachine()
		addrs := make([]mem.Addr, 256)
		for i := range addrs {
			addrs[i] = mem.Addr(i % rng)
		}
		return Privatize(m, mem.AddI64, addrs, []mem.Word{mem.I64(1)}, 0, rng, 4096, 32).Cycles
	}
	if small, big := run(32), run(512); big < 4*small {
		t.Fatalf("O(mn) scaling violated: range 32 -> %d cycles, range 512 -> %d", small, big)
	}
}

func TestColorClasses(t *testing.T) {
	classes := ColorClasses([]mem.Addr{1, 2, 1, 1, 3, 2})
	if len(classes) != 3 {
		t.Fatalf("classes = %v", classes)
	}
	// Within each class, addresses are distinct.
	addrs := []mem.Addr{1, 2, 1, 1, 3, 2}
	for _, c := range classes {
		seen := map[mem.Addr]bool{}
		for _, idx := range c {
			if seen[addrs[idx]] {
				t.Fatalf("collision within class %v", c)
			}
			seen[addrs[idx]] = true
		}
	}
}

func TestColoredMatchesReference(t *testing.T) {
	m := smallMachine()
	addrs := []mem.Addr{10, 11, 10, 12, 10, 11}
	vals := []mem.Word{mem.F64(1), mem.F64(2), mem.F64(3), mem.F64(4), mem.F64(5), mem.F64(6)}
	Colored(m, mem.AddF64, addrs, vals)
	m.FlushCaches()
	if m.Store().LoadF64(10) != 9 || m.Store().LoadF64(11) != 8 || m.Store().LoadF64(12) != 4 {
		t.Fatalf("colored sums: %g %g %g",
			m.Store().LoadF64(10), m.Store().LoadF64(11), m.Store().LoadF64(12))
	}
}

// Property: all three software methods and the reference agree on integer
// scatter-add results.
func TestSoftwareMethodsAgreeProperty(t *testing.T) {
	f := func(idx []uint8) bool {
		if len(idx) == 0 {
			return true
		}
		const rng = 64
		addrs := make([]mem.Addr, len(idx))
		ref := map[mem.Addr]int64{}
		for i, x := range idx {
			addrs[i] = mem.Addr(x % rng)
			ref[addrs[i]]++
		}
		one := []mem.Word{mem.I64(1)}

		m1 := smallMachine()
		SortScan(m1, mem.AddI64, addrs, one, 16)
		m1.FlushCaches()
		m2 := smallMachine()
		Privatize(m2, mem.AddI64, addrs, one, 0, rng, 4096, 16)
		m2.FlushCaches()
		m3 := smallMachine()
		Colored(m3, mem.AddI64, addrs, one)
		m3.FlushCaches()
		for a, want := range ref {
			if m1.Store().LoadI64(a) != want || m2.Store().LoadI64(a) != want || m3.Store().LoadI64(a) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestBatchSizeTradeoff(t *testing.T) {
	// Tiny batches pay per-batch startup; the default batch should beat
	// batch=8 for a sizable input (the paper's 256-element sweet spot).
	n := 2048
	addrs := make([]mem.Addr, n)
	seed := uint64(3)
	for i := range addrs {
		seed = seed*6364136223846793005 + 1442695040888963407
		addrs[i] = mem.Addr(seed % 512)
	}
	one := []mem.Word{mem.I64(1)}
	mSmall := smallMachine()
	small := SortScan(mSmall, mem.AddI64, addrs, one, 8).Cycles
	mDef := smallMachine()
	def := SortScan(mDef, mem.AddI64, addrs, one, DefaultBatch).Cycles
	if def >= small {
		t.Fatalf("batch 256 (%d cyc) not faster than batch 8 (%d cyc)", def, small)
	}
}
