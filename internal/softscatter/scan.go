package softscatter

import "scatteradd/internal/mem"

// SegmentedReduce combines the values of an address-sorted pair slice per
// distinct address (the effect of a segmented scan followed by taking each
// segment's total, Chatterjee/Blelloch/Zagha's primitive cited in §2.1).
// It returns the distinct addresses in ascending order with their combined
// values under kind.
func SegmentedReduce(sorted []Pair, kind mem.Kind) (addrs []mem.Addr, sums []mem.Word) {
	for i := 0; i < len(sorted); {
		a := sorted[i].Addr
		acc := sorted[i].Val
		i++
		for i < len(sorted) && sorted[i].Addr == a {
			acc = mem.Combine(kind, acc, sorted[i].Val)
			i++
		}
		addrs = append(addrs, a)
		sums = append(sums, acc)
	}
	return addrs, sums
}

// SegmentedScanExclusive computes, per segment of equal addresses, the
// running exclusive combination (each output element is the combination of
// all earlier elements in its segment, starting from the kind's identity).
// This is the general scan primitive; SegmentedReduce is the special case
// the scatter-add pipeline needs.
func SegmentedScanExclusive(sorted []Pair, kind mem.Kind) []mem.Word {
	out := make([]mem.Word, len(sorted))
	i := 0
	for i < len(sorted) {
		a := sorted[i].Addr
		acc := mem.Identity(kind)
		for i < len(sorted) && sorted[i].Addr == a {
			out[i] = acc
			acc = mem.Combine(kind, acc, sorted[i].Val)
			i++
		}
	}
	return out
}

// ScanOps returns the operation count of a data-parallel segmented scan of
// width n (up-sweep plus down-sweep, ~2n combines).
func ScanOps(n int) int { return 2 * n }
