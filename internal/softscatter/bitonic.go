// Package softscatter implements the software-only scatter-add methods the
// paper compares against (§2.1 and §4.1): batched sorting (bitonic network
// plus merge phases) followed by a segmented scan, privatization, and
// coloring. Each method has a functional implementation (used to compute
// the actual results and verified against a sequential reference) and a
// cost model expressed as machine stream operations (kernels plus
// gather/scatter memory traffic), so the same simulated node prices both
// the hardware and software variants.
package softscatter

import (
	"fmt"

	"scatteradd/internal/mem"
)

// Pair is one (index, value) element of a scatter-add input.
type Pair struct {
	Addr mem.Addr
	Val  mem.Word
}

// BitonicSortPairs sorts pairs by address in place using a bitonic sorting
// network, the data-parallel sort used on the simulated machine's SRF.
// The length must be a power of two; use PadPow2 first if necessary.
func BitonicSortPairs(p []Pair) {
	n := len(p)
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("softscatter: bitonic sort needs power-of-two length, got %d", n))
	}
	// Iterative bitonic network: k is the size of the bitonic sequences
	// being merged, j is the compare-exchange distance.
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			for i := 0; i < n; i++ {
				l := i ^ j
				if l > i {
					asc := i&k == 0
					if (p[i].Addr > p[l].Addr) == asc {
						p[i], p[l] = p[l], p[i]
					}
				}
			}
		}
	}
}

// PadPow2 appends sentinel pairs (maximum address) until len(p) is a power
// of two, returning the padded slice and the original length.
func PadPow2(p []Pair) ([]Pair, int) {
	orig := len(p)
	n := 1
	for n < orig {
		n <<= 1
	}
	for len(p) < n {
		p = append(p, Pair{Addr: ^mem.Addr(0)})
	}
	return p, orig
}

// BitonicStages returns the number of compare-exchange stages a bitonic
// network of width n executes: log2(n)*(log2(n)+1)/2.
func BitonicStages(n int) int {
	lg := 0
	for v := 1; v < n; v <<= 1 {
		lg++
	}
	return lg * (lg + 1) / 2
}

// BitonicCompares returns the total compare-exchange operations for width n.
func BitonicCompares(n int) int { return n / 2 * BitonicStages(n) }

// MergeSortedPairs merges two address-sorted runs (the merge phase the paper
// combines with bitonic sorting for longer sequences).
func MergeSortedPairs(a, b []Pair) []Pair {
	out := make([]Pair, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Addr <= b[j].Addr {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// SortPairs sorts by address using bitonic batches of up to batch elements
// merged pairwise — the paper's "combination of a bitonic and merge sorting
// phases". It returns a newly allocated sorted slice.
func SortPairs(p []Pair, batch int) []Pair {
	if batch < 2 {
		panic(fmt.Sprintf("softscatter: sort batch %d too small", batch))
	}
	var runs [][]Pair
	for start := 0; start < len(p); start += batch {
		end := start + batch
		if end > len(p) {
			end = len(p)
		}
		run := make([]Pair, end-start)
		copy(run, p[start:end])
		padded, orig := PadPow2(run)
		BitonicSortPairs(padded)
		runs = append(runs, padded[:orig])
	}
	if len(runs) == 0 {
		return nil
	}
	for len(runs) > 1 {
		var next [][]Pair
		for i := 0; i < len(runs); i += 2 {
			if i+1 < len(runs) {
				next = append(next, MergeSortedPairs(runs[i], runs[i+1]))
			} else {
				next = append(next, runs[i])
			}
		}
		runs = next
	}
	return runs[0]
}
