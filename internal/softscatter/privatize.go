package softscatter

import (
	"fmt"

	"scatteradd/internal/machine"
	"scatteradd/internal/mem"
)

// DefaultPrivateBins is the number of target addresses whose partial sums
// the compute clusters can hold in named state (registers) during one
// privatization pass: a handful of accumulator registers per cluster across
// 16 clusters.
const DefaultPrivateBins = 64

// Privatize performs a software scatter-add by privatization (§2.1): the
// dataset is iterated over once per group of target addresses, each pass
// accumulating the sums for the addresses currently held in registers, so
// memory collisions never occur. Complexity is O(m*n) for an m-address
// range — the paper's Figure 8 shows this losing badly to hardware
// scatter-add as the range grows.
//
// addrs/vals are the scatter-add input (vals of length 1 broadcasts);
// base and rangeSize describe the contiguous target region; privateBins is
// the number of addresses accumulated per pass (0 selects
// DefaultPrivateBins). The input dataset is re-loaded from dataBase on
// every pass, modeling data resident in memory.
func Privatize(m *machine.Machine, kind mem.Kind, addrs []mem.Addr, vals []mem.Word,
	base mem.Addr, rangeSize int, dataBase mem.Addr, privateBins int) machine.Result {

	if !kind.IsScatterAdd() || kind.IsFetch() {
		panic(fmt.Sprintf("softscatter: Privatize cannot implement %v", kind))
	}
	if len(vals) != 1 && len(vals) != len(addrs) {
		panic(fmt.Sprintf("softscatter: %d addrs, %d vals", len(addrs), len(vals)))
	}
	if privateBins <= 0 {
		privateBins = DefaultPrivateBins
	}
	n := len(addrs)
	var total machine.Result
	for lo := 0; lo < rangeSize; lo += privateBins {
		hi := lo + privateBins
		if hi > rangeSize {
			hi = rangeSize
		}
		p := hi - lo
		// Functional: accumulate this pass's sums.
		sums := make([]mem.Word, p)
		touched := make([]bool, p)
		for i := 0; i < n; i++ {
			a := addrs[i]
			idx := int(a) - int(base)
			if idx < lo || idx >= hi {
				continue
			}
			v := vals[0]
			if len(vals) > 1 {
				v = vals[i]
			}
			if !touched[idx-lo] {
				sums[idx-lo] = mem.Identity(kind)
				touched[idx-lo] = true
			}
			sums[idx-lo] = mem.Combine(kind, sums[idx-lo], v)
		}
		// Timed: stream the dataset past the clusters (index + value words)
		// and run the conditional-accumulate kernel, then read-modify-write
		// the pass's bins.
		total.Add(m.RunOp(machine.LoadStream("priv-load", dataBase, n)))
		// Per element: a range compare (int) plus a conditional accumulate
		// (FP only for FP kinds).
		accOp := machine.IntKernel(fmt.Sprintf("priv-acc[%d]", p), float64(2*n), float64(2*n))
		if kind.IsFP() {
			accOp = machine.Kernel(fmt.Sprintf("priv-acc[%d]", p), float64(2*n), float64(2*n))
		}
		total.Add(m.RunOp(accOp))

		binAddrs := make([]mem.Addr, p)
		for i := range binAddrs {
			binAddrs[i] = base + mem.Addr(lo+i)
		}
		gathered := make(map[mem.Addr]mem.Word, p)
		g := machine.Gather("priv-gather", binAddrs)
		g.OnResp = func(r mem.Response) { gathered[r.Addr] = r.Val }
		total.Add(m.RunOp(g))

		newVals := make([]mem.Word, p)
		for i, a := range binAddrs {
			if touched[i] {
				newVals[i] = mem.Combine(kind, gathered[a], sums[i])
			} else {
				newVals[i] = gathered[a]
			}
		}
		total.Add(m.RunOp(machine.Scatter("priv-scatter", binAddrs, newVals)))
	}
	return total
}
