package softscatter

import (
	"fmt"
	"math"

	"scatteradd/internal/machine"
	"scatteradd/internal/mem"
)

// DefaultBatch is the batch size the paper found best on its simulated
// machine: "a batch size of 256 elements achieved the highest performance.
// Longer batches suffer from the O(n log n) scaling of sort, while smaller
// batches do not amortize the latency of starting a stream operation."
const DefaultBatch = 256

// kernel cost-model constants. Each bitonic stage shuffles (addr, value)
// records across clusters, so every stage is a separate kernel launch
// reading and writing the batch in the SRF: 4*B words of SRF traffic and 2
// ops per compare-exchange per stage. The per-stage launch overhead is what
// makes small batches unprofitable (the paper's observation that batches
// must be large enough "to amortize the latency of starting a stream
// operation").
const (
	sortSRFWordsPerElemPerStage = 4
	opsPerCompare               = 2
)

func log2(n int) int {
	lg := 0
	for v := 1; v < n; v <<= 1 {
		lg++
	}
	return lg
}

// SortKernelOps models the bitonic sort of a b-element batch in the SRF:
// one kernel per compare-exchange stage.
func SortKernelOps(b int) []machine.Op {
	stages := BitonicStages(b)
	ops := make([]machine.Op, stages)
	for s := range ops {
		// Compare-exchanges are integer/key operations, not FP (the paper's
		// FP Operations metric for the software variants confirms sorting
		// does not count as FP work).
		ops[s] = machine.IntKernel(
			fmt.Sprintf("sort[%d] stage %d", b, s),
			float64(b/2*opsPerCompare),
			float64(sortSRFWordsPerElemPerStage*b),
		)
	}
	return ops
}

// ScanKernelOp models the segmented scan of a b-element sorted batch; its
// combines are FP operations when the combine kind is floating point.
func ScanKernelOp(b int, kind mem.Kind) machine.Op {
	name := fmt.Sprintf("segscan[%d]", b)
	if kind.IsFP() {
		return machine.Kernel(name, float64(ScanOps(b)), float64(4*b))
	}
	return machine.IntKernel(name, float64(ScanOps(b)), float64(4*b))
}

// ApplyKernelOp models combining u gathered memory values with u segment
// sums.
func ApplyKernelOp(u int, kind mem.Kind) machine.Op {
	name := fmt.Sprintf("apply[%d]", u)
	if kind.IsFP() {
		return machine.Kernel(name, float64(u), float64(3*u))
	}
	return machine.IntKernel(name, float64(u), float64(3*u))
}

// SortScan performs a software scatter-add of vals into addrs on machine m
// using the sort-and-segmented-scan method, in batches of the given size
// (0 selects DefaultBatch). vals of length 1 broadcasts a scalar. The
// result values land in m's memory exactly as a hardware scatter-add would
// (up to floating-point reassociation); the returned Result carries the
// cycles, FP operations and memory references the software method consumed.
func SortScan(m *machine.Machine, kind mem.Kind, addrs []mem.Addr, vals []mem.Word, batch int) machine.Result {
	if !kind.IsScatterAdd() {
		panic(fmt.Sprintf("softscatter: SortScan with non-RMW kind %v", kind))
	}
	if kind.IsFetch() {
		panic("softscatter: software method cannot implement fetch variants")
	}
	if len(vals) != 1 && len(vals) != len(addrs) {
		panic(fmt.Sprintf("softscatter: %d addrs, %d vals", len(addrs), len(vals)))
	}
	if batch <= 0 {
		batch = DefaultBatch
	}
	var total machine.Result
	for start := 0; start < len(addrs); start += batch {
		end := start + batch
		if end > len(addrs) {
			end = len(addrs)
		}
		b := end - start
		pairs := make([]Pair, b)
		for i := 0; i < b; i++ {
			v := vals[0]
			if len(vals) > 1 {
				v = vals[start+i]
			}
			pairs[i] = Pair{Addr: addrs[start+i], Val: v}
		}
		// Functional: sort the batch and reduce each address segment.
		padded, orig := PadPow2(pairs)
		BitonicSortPairs(padded)
		uAddrs, uSums := SegmentedReduce(padded[:orig], kind)

		// Timed: sort stages, scan kernel, then the read-modify-write of the
		// distinct addresses through ordinary gather/scatter.
		for _, op := range SortKernelOps(len(padded)) {
			total.Add(m.RunOp(op))
		}
		total.Add(m.RunOp(ScanKernelOp(b, kind)))

		gathered := make(map[mem.Addr]mem.Word, len(uAddrs))
		g := machine.Gather("swsa-gather", uAddrs)
		g.OnResp = func(r mem.Response) { gathered[r.Addr] = r.Val }
		total.Add(m.RunOp(g))

		total.Add(m.RunOp(ApplyKernelOp(len(uAddrs), kind)))
		newVals := make([]mem.Word, len(uAddrs))
		for i, a := range uAddrs {
			newVals[i] = mem.Combine(kind, gathered[a], uSums[i])
		}
		total.Add(m.RunOp(machine.Scatter("swsa-scatter", uAddrs, newVals)))
	}
	// The combining operations of the scan and apply kernels are FP
	// operations when the kind is floating point; the machine already
	// counted kernel flops, so nothing further to add here.
	return total
}

// SortScanModelCycles returns a closed-form estimate of SortScan's cycle
// count (used by tests as a sanity bound, not by the simulator).
func SortScanModelCycles(cfg machine.Config, n, batch int) float64 {
	if batch <= 0 {
		batch = DefaultBatch
	}
	batches := int(math.Ceil(float64(n) / float64(batch)))
	stages := BitonicStages(batch)
	perBatch := float64(cfg.KernelStartup*(stages+2)+cfg.MemOpStartup*2) +
		float64(sortSRFWordsPerElemPerStage*batch*stages)/cfg.SRFWordsPerCycle +
		float64(2*batch)/float64(cfg.AGWidth)
	return float64(batches) * perBatch
}
