package softscatter

import (
	"fmt"

	"scatteradd/internal/machine"
	"scatteradd/internal/mem"
)

// ColorClasses greedily partitions request indices into classes such that no
// class contains two requests to the same address (§2.1's coloring method:
// "in each color only contains non-colliding elements"). It returns the
// index sets in class order. The greedy assignment gives each request the
// first class not yet containing its address, so the class count equals the
// maximum address multiplicity.
func ColorClasses(addrs []mem.Addr) [][]int {
	next := make(map[mem.Addr]int, len(addrs))
	var classes [][]int
	for i, a := range addrs {
		c := next[a]
		next[a] = c + 1
		for len(classes) <= c {
			classes = append(classes, nil)
		}
		classes[c] = append(classes[c], i)
	}
	return classes
}

// Colored performs a software scatter-add using a precomputed coloring:
// each color class is applied as a plain gather + combine kernel + scatter,
// which is collision-free within the class. The coloring itself is assumed
// to be computed off-line (as the paper notes it typically must be) and is
// not charged simulation time; the per-class memory traffic and kernels
// are.
func Colored(m *machine.Machine, kind mem.Kind, addrs []mem.Addr, vals []mem.Word) machine.Result {
	if !kind.IsScatterAdd() || kind.IsFetch() {
		panic(fmt.Sprintf("softscatter: Colored cannot implement %v", kind))
	}
	if len(vals) != 1 && len(vals) != len(addrs) {
		panic(fmt.Sprintf("softscatter: %d addrs, %d vals", len(addrs), len(vals)))
	}
	var total machine.Result
	for _, class := range ColorClasses(addrs) {
		ca := make([]mem.Addr, len(class))
		cv := make([]mem.Word, len(class))
		for i, idx := range class {
			ca[i] = addrs[idx]
			if len(vals) == 1 {
				cv[i] = vals[0]
			} else {
				cv[i] = vals[idx]
			}
		}
		gathered := make(map[mem.Addr]mem.Word, len(ca))
		g := machine.Gather("color-gather", ca)
		g.OnResp = func(r mem.Response) { gathered[r.Addr] = r.Val }
		total.Add(m.RunOp(g))
		addOp := machine.IntKernel(fmt.Sprintf("color-add[%d]", len(ca)), float64(len(ca)), float64(3*len(ca)))
		if kind.IsFP() {
			addOp = machine.Kernel(fmt.Sprintf("color-add[%d]", len(ca)), float64(len(ca)), float64(3*len(ca)))
		}
		total.Add(m.RunOp(addOp))
		newVals := make([]mem.Word, len(ca))
		for i, a := range ca {
			newVals[i] = mem.Combine(kind, gathered[a], cv[i])
		}
		total.Add(m.RunOp(machine.Scatter("color-scatter", ca, newVals)))
	}
	return total
}
