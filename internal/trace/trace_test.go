package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"scatteradd/internal/machine"
	"scatteradd/internal/mem"
)

func TestRecorderLimit(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Observe(uint64(i), mem.Request{Kind: mem.Read, Addr: mem.Addr(i)})
	}
	if len(r.Records()) != 3 || r.Dropped() != 2 {
		t.Fatalf("records=%d dropped=%d", len(r.Records()), r.Dropped())
	}
	r.Reset()
	if len(r.Records()) != 0 || r.Dropped() != 0 {
		t.Fatal("reset failed")
	}
}

func TestRecorderUnlimited(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < 100; i++ {
		r.Observe(uint64(i), mem.Request{Kind: mem.Write, Addr: 1})
	}
	if len(r.Records()) != 100 {
		t.Fatalf("records = %d", len(r.Records()))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	recs := []Record{
		{Cycle: 1, Kind: mem.Read, Addr: 100, Val: 0},
		{Cycle: 2, Kind: mem.AddF64, Addr: 200, Val: mem.F64(2.5)},
		{Cycle: 9, Kind: mem.FetchAddI64, Addr: 300, Val: mem.I64(-1)},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

// Property: CSV round-trip preserves arbitrary records.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(cycles []uint32, kinds []uint8) bool {
		n := len(cycles)
		if len(kinds) < n {
			n = len(kinds)
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{
				Cycle: uint64(cycles[i]),
				Kind:  mem.Kind(kinds[i] % 11),
				Addr:  mem.Addr(cycles[i]) * 3,
				Val:   uint64(kinds[i]) << 32,
			}
		}
		var buf bytes.Buffer
		if WriteCSV(&buf, recs) != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"cycle,kind,addr,val\n1,2,3\n",          // field count
		"cycle,kind,addr,val\nx,Read,1,2\n",     // bad cycle
		"cycle,kind,addr,val\n1,Bogus,1,2\n",    // bad kind
		"cycle,kind,addr,val\n1,Read,x,2\n",     // bad addr
		"cycle,kind,addr,val\n1,Read,1,blorp\n", // bad val
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSummarize(t *testing.T) {
	recs := []Record{
		{Kind: mem.AddI64, Addr: 0},
		{Kind: mem.AddI64, Addr: 0},
		{Kind: mem.AddI64, Addr: 1},
		{Kind: mem.Read, Addr: 64},
	}
	s := Summarize(recs)
	if s.Refs != 4 || s.Unique != 3 || s.UniqueLines != 2 || s.MaxPerAddr != 2 || s.ScatterAdds != 3 {
		t.Fatalf("summary: %+v", s)
	}
	if s.AvgPerAddr < 1.3 || s.AvgPerAddr > 1.4 {
		t.Fatalf("avg = %f", s.AvgPerAddr)
	}
	if !strings.Contains(s.String(), "refs=4") {
		t.Fatalf("string: %s", s)
	}
}

// TestSummarizePercentiles pins the nearest-rank per-address multiplicity
// percentiles on distributions with known shapes.
func TestSummarizePercentiles(t *testing.T) {
	// mk expands {addr: count} into a flat record slice.
	mk := func(counts map[int]int) []Record {
		var recs []Record
		for a, c := range counts {
			for i := 0; i < c; i++ {
				recs = append(recs, Record{Kind: mem.AddI64, Addr: mem.Addr(a)})
			}
		}
		return recs
	}
	uniform := func(addrs, per int) map[int]int {
		m := make(map[int]int, addrs)
		for a := 0; a < addrs; a++ {
			m[a] = per
		}
		return m
	}
	cases := []struct {
		name          string
		recs          []Record
		p50, p95, p99 int
	}{
		{"empty", nil, 0, 0, 0},
		{"single addr", mk(map[int]int{7: 5}), 5, 5, 5},
		{"flat", mk(uniform(100, 3)), 3, 3, 3},
		{"two hot addrs in 100", mk(func() map[int]int {
			m := uniform(98, 1)
			m[1000], m[1001] = 50, 50 // ranks 99 and 100 of 100
			return m
		}()), 1, 1, 50},
		{"two counts", mk(map[int]int{0: 1, 1: 9}), 1, 9, 9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Summarize(tc.recs)
			if s.P50PerAddr != tc.p50 || s.P95PerAddr != tc.p95 || s.P99PerAddr != tc.p99 {
				t.Fatalf("p50/p95/p99 = %d/%d/%d, want %d/%d/%d",
					s.P50PerAddr, s.P95PerAddr, s.P99PerAddr, tc.p50, tc.p95, tc.p99)
			}
		})
	}
	// The percentiles must render in the one-line summary.
	s := Summarize(mk(map[int]int{0: 2, 1: 4}))
	for _, want := range []string{"p50/addr=", "p95/addr=", "p99/addr="} {
		if !strings.Contains(s.String(), want) {
			t.Fatalf("summary %q missing %q", s.String(), want)
		}
	}
}

func TestMachineTracerHook(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Cache.TotalLines = 256
	cfg.MemOpStartup = 2
	cfg.KernelStartup = 2
	m := machine.New(cfg)
	rec := NewRecorder(0)
	m.SetTracer(rec.Observe)
	addrs := []mem.Addr{5, 9, 5}
	m.Run([]machine.Op{machine.ScatterAdd("t", mem.AddI64, addrs, []mem.Word{mem.I64(1)})})
	recs := rec.Records()
	if len(recs) != 3 {
		t.Fatalf("traced %d references, want 3", len(recs))
	}
	sum := Summarize(recs)
	if sum.ScatterAdds != 3 || sum.Unique != 2 {
		t.Fatalf("summary: %+v", sum)
	}
	// Cycles must be non-decreasing (issue order).
	for i := 1; i < len(recs); i++ {
		if recs[i].Cycle < recs[i-1].Cycle {
			t.Fatal("trace cycles not monotone")
		}
	}
	m.SetTracer(nil) // disabling must not panic
	m.Run([]machine.Op{machine.LoadStream("l", 0, 8)})
	if len(rec.Records()) != 3 {
		t.Fatal("tracer observed after being disabled")
	}
}
