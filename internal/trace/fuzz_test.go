package trace

import (
	"bytes"
	"strings"
	"testing"

	"scatteradd/internal/mem"
)

// FuzzReadCSV feeds arbitrary byte strings to the trace parser. The corpus
// is seeded with round-tripped WriteCSV output (the format ReadCSV promises
// to parse) plus the malformed shapes the unit tests pin. Properties:
// ReadCSV never panics, and whatever it accepts must survive a
// write-then-read round trip unchanged.
func FuzzReadCSV(f *testing.F) {
	seedRecs := [][]Record{
		nil,
		{{Cycle: 0, Kind: mem.Read, Addr: 0, Val: 0}},
		{
			{Cycle: 1, Kind: mem.Read, Addr: 100, Val: 0},
			{Cycle: 2, Kind: mem.AddF64, Addr: 200, Val: mem.F64(2.5)},
			{Cycle: 9, Kind: mem.FetchAddI64, Addr: 300, Val: mem.I64(-1)},
		},
		{{Cycle: ^uint64(0), Kind: mem.MaxI64, Addr: ^mem.Addr(0), Val: ^mem.Word(0)}},
	}
	for _, recs := range seedRecs {
		var buf bytes.Buffer
		if err := WriteCSV(&buf, recs); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("cycle,kind,addr,val\n1,2,3\n"))
	f.Add([]byte("cycle,kind,addr,val\n1,Bogus,1,2\n"))
	f.Add([]byte("cycle,kind,addr,val\n\n\n1,Read,1,2\n"))
	f.Add([]byte("no header at all"))
	f.Add([]byte{0xff, 0xfe, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must round-trip: write the parsed records and read
		// them back identically.
		var buf bytes.Buffer
		if err := WriteCSV(&buf, recs); err != nil {
			t.Fatalf("WriteCSV of parsed records: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-read of written records: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed length: %d -> %d", len(recs), len(again))
		}
		for i := range recs {
			if again[i] != recs[i] {
				t.Fatalf("record %d changed in round trip: %+v -> %+v", i, recs[i], again[i])
			}
		}
		// Summarize must tolerate anything the parser accepts.
		sum := Summarize(recs)
		if sum.Refs != len(recs) {
			t.Fatalf("summary refs %d, parsed %d", sum.Refs, len(recs))
		}
		if strings.TrimSpace(sum.String()) == "" {
			t.Fatal("empty summary string")
		}
	})
}
