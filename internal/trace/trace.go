// Package trace records memory-reference streams from the simulated
// machine: the scatter-add traces that drive the multi-node experiments
// (§4.5 uses exactly such traces — "GROMACS uses the first 590K
// references"), debugging dumps, and locality summaries. Traces round-trip
// through a simple CSV form so they can be exported, inspected, and
// replayed.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"scatteradd/internal/mem"
)

// Record is one observed memory reference.
type Record struct {
	Cycle uint64
	Kind  mem.Kind
	Addr  mem.Addr
	Val   mem.Word
}

// Recorder collects references up to an optional limit (0 = unlimited).
// Attach it to a machine with machine.SetTracer(rec.Observe).
type Recorder struct {
	limit int
	recs  []Record
	drops uint64
}

// NewRecorder returns a recorder keeping at most limit records (0 keeps
// everything).
func NewRecorder(limit int) *Recorder {
	return &Recorder{limit: limit}
}

// Observe appends one reference, honoring the limit.
func (r *Recorder) Observe(cycle uint64, req mem.Request) {
	if r.limit > 0 && len(r.recs) >= r.limit {
		r.drops++
		return
	}
	r.recs = append(r.recs, Record{Cycle: cycle, Kind: req.Kind, Addr: req.Addr, Val: req.Val})
}

// Records returns the collected references.
func (r *Recorder) Records() []Record { return r.recs }

// Dropped reports how many references exceeded the limit.
func (r *Recorder) Dropped() uint64 { return r.drops }

// Reset discards all collected state.
func (r *Recorder) Reset() {
	r.recs = r.recs[:0]
	r.drops = 0
}

// WriteCSV emits records as "cycle,kind,addr,val" lines with a header.
func WriteCSV(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "cycle,kind,addr,val"); err != nil {
		return err
	}
	for _, rec := range recs {
		if _, err := fmt.Fprintf(bw, "%d,%s,%d,%d\n", rec.Cycle, rec.Kind, rec.Addr, rec.Val); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// kindByName inverts mem.Kind.String for parsing.
var kindByName = func() map[string]mem.Kind {
	m := make(map[string]mem.Kind)
	for k := mem.Read; k <= mem.FetchAddI64; k++ {
		m[k.String()] = k
	}
	return m
}()

// ReadCSV parses the WriteCSV format.
func ReadCSV(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if line == 1 || text == "" {
			continue // header
		}
		parts := strings.Split(text, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", line, len(parts))
		}
		cycle, err := strconv.ParseUint(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad cycle %q", line, parts[0])
		}
		kind, ok := kindByName[parts[1]]
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown kind %q", line, parts[1])
		}
		addr, err := strconv.ParseUint(parts[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad addr %q", line, parts[2])
		}
		val, err := strconv.ParseUint(parts[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad val %q", line, parts[3])
		}
		out = append(out, Record{Cycle: cycle, Kind: kind, Addr: mem.Addr(addr), Val: val})
	}
	return out, sc.Err()
}

// Summary describes a trace's locality, the property that decides between
// the Figure 13 regimes (narrow vs wide).
type Summary struct {
	Refs        int
	Unique      int     // distinct addresses
	UniqueLines int     // distinct cache lines
	MaxPerAddr  int     // heaviest address multiplicity
	AvgPerAddr  float64 // Refs / Unique
	// P50/P95/P99PerAddr are nearest-rank percentiles of the per-address
	// multiplicity distribution. The mean hides skew: a trace with one hot
	// address (P99 far above P50) combines well in a small store, while a
	// flat distribution (P99 ~ P50) does not.
	P50PerAddr  int
	P95PerAddr  int
	P99PerAddr  int
	ScatterAdds int // references with RMW kinds
}

// Summarize computes a trace's locality summary.
func Summarize(recs []Record) Summary {
	s := Summary{Refs: len(recs)}
	perAddr := make(map[mem.Addr]int)
	lines := make(map[mem.Addr]struct{})
	for _, r := range recs {
		perAddr[r.Addr]++
		lines[r.Addr.Line()] = struct{}{}
		if r.Kind.IsScatterAdd() {
			s.ScatterAdds++
		}
	}
	s.Unique = len(perAddr)
	s.UniqueLines = len(lines)
	counts := make([]int, 0, len(perAddr))
	for _, c := range perAddr {
		if c > s.MaxPerAddr {
			s.MaxPerAddr = c
		}
		counts = append(counts, c)
	}
	if s.Unique > 0 {
		s.AvgPerAddr = float64(s.Refs) / float64(s.Unique)
		sort.Ints(counts)
		s.P50PerAddr = percentileInt(counts, 50)
		s.P95PerAddr = percentileInt(counts, 95)
		s.P99PerAddr = percentileInt(counts, 99)
	}
	return s
}

// percentileInt returns the nearest-rank p-th percentile of sorted values.
func percentileInt(sorted []int, p int) int {
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("refs=%d unique=%d lines=%d max/addr=%d avg/addr=%.2f p50/addr=%d p95/addr=%d p99/addr=%d scatter-adds=%d",
		s.Refs, s.Unique, s.UniqueLines, s.MaxPerAddr, s.AvgPerAddr,
		s.P50PerAddr, s.P95PerAddr, s.P99PerAddr, s.ScatterAdds)
}
