package scatteradd

// This file re-exports the stream-programming surface: the stream-operation
// constructors the machine executes and the software-pipelining helpers that
// overlap them across the two address generators.

import (
	"scatteradd/internal/machine"
	"scatteradd/internal/stream"
)

// Stream-operation constructors.
var (
	// LoadStream reads n consecutive words.
	LoadStream = machine.LoadStream
	// StoreStream writes consecutive words.
	StoreStream = machine.StoreStream
	// Gather reads an address vector (indexed load).
	Gather = machine.Gather
	// Scatter writes an address vector (indexed store).
	Scatter = machine.Scatter
	// ScatterAdd atomically combines values into memory (the paper's
	// primitive; pass a 1-element value slice to broadcast a scalar).
	ScatterAdd = machine.ScatterAdd
	// Kernel models a compute kernel by FP operations and SRF traffic.
	Kernel = machine.Kernel
	// IntKernel models a non-FP compute kernel.
	IntKernel = machine.IntKernel
	// Fence waits for all outstanding (including Async) memory streams.
	Fence = machine.Fence
)

// Stream pipelining (software pipelining over the two address generators).
var (
	// StreamPipeline processes n elements in chunks, overlapping each
	// chunk's asynchronous memory operations with later chunks' work.
	StreamPipeline = stream.Pipeline
	// GatherComputeScatterAdd builds the canonical three-phase chunk
	// (synchronous gather, kernel, asynchronous scatter-add).
	GatherComputeScatterAdd = stream.GatherComputeScatterAdd
)

// StreamChunkFunc produces the operations of one pipeline chunk.
type StreamChunkFunc = stream.ChunkFunc
