package scatteradd

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation plus the ablations, so
//
//	go test -bench=. -benchmem
//
// regenerates every result. Figures run at a reduced data scale per
// iteration to keep benchmark wall time reasonable; run
// cmd/scatteradd with -scale 1 for the full paper-scale tables.

import (
	"runtime"
	"testing"
)

// benchOpts is the per-iteration scale used by the benchmarks; figures fan
// their independent runs across one worker per CPU (Jobs). Compare
// BenchmarkReportJobs1 against BenchmarkReportJobsN for the end-to-end
// speedup of the parallel experiment runner.
var benchOpts = ExpOptions{Scale: 8, Jobs: runtime.NumCPU()}

// BenchmarkReportJobs1 regenerates the full report sequentially.
func BenchmarkReportJobs1(b *testing.B) { benchReport(b, 1) }

// BenchmarkReportJobsN regenerates the full report with one worker per CPU.
func BenchmarkReportJobsN(b *testing.B) { benchReport(b, runtime.NumCPU()) }

func benchReport(b *testing.B, jobs int) {
	b.Helper()
	o := benchOpts
	o.Jobs = jobs
	for i := 0; i < b.N; i++ {
		md, checks := Report(o)
		if len(md) == 0 || len(checks) == 0 {
			b.Fatal("empty report")
		}
	}
}

func benchFigure(b *testing.B, n int) {
	b.Helper()
	benchFigureOpts(b, n, benchOpts)
}

func benchFigureOpts(b *testing.B, n int, o ExpOptions) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := Figure(n, o)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// legacyOpts disables quiescence fast-forwarding so the engine ticks every
// cycle; comparing BenchmarkFigNLegacy against BenchmarkFigN measures the
// fast-forward speedup (internal/differ proves the outputs identical).
func legacyOpts() ExpOptions {
	o := benchOpts
	o.Legacy = true
	return o
}

// BenchmarkFig6Legacy regenerates Figure 6 with per-cycle stepping.
func BenchmarkFig6Legacy(b *testing.B) { benchFigureOpts(b, 6, legacyOpts()) }

// BenchmarkFig10Legacy regenerates Figure 10 with per-cycle stepping.
func BenchmarkFig10Legacy(b *testing.B) { benchFigureOpts(b, 10, legacyOpts()) }

// BenchmarkFig13Legacy regenerates Figure 13 with per-cycle stepping.
func BenchmarkFig13Legacy(b *testing.B) { benchFigureOpts(b, 13, legacyOpts()) }

// BenchmarkTable1 renders the machine-parameter table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(Table1().Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig6 regenerates Figure 6 (histogram vs input length).
func BenchmarkFig6(b *testing.B) { benchFigure(b, 6) }

// BenchmarkFig7 regenerates Figure 7 (histogram vs index range).
func BenchmarkFig7(b *testing.B) { benchFigure(b, 7) }

// BenchmarkFig8 regenerates Figure 8 (privatization comparison).
func BenchmarkFig8(b *testing.B) { benchFigure(b, 8) }

// BenchmarkFig9 regenerates Figure 9 (SpMV: CSR vs EBE).
func BenchmarkFig9(b *testing.B) { benchFigure(b, 9) }

// BenchmarkFig10 regenerates Figure 10 (molecular dynamics).
func BenchmarkFig10(b *testing.B) { benchFigure(b, 10) }

// BenchmarkFig11 regenerates Figure 11 (combining store vs latency).
func BenchmarkFig11(b *testing.B) { benchFigure(b, 11) }

// BenchmarkFig12 regenerates Figure 12 (combining store vs throughput).
func BenchmarkFig12(b *testing.B) { benchFigure(b, 12) }

// BenchmarkFig13 regenerates Figure 13 (multi-node scaling).
func BenchmarkFig13(b *testing.B) { benchFigure(b, 13) }

// BenchmarkAblationDRAMSched compares FR-FCFS vs FIFO DRAM scheduling.
func BenchmarkAblationDRAMSched(b *testing.B) { benchAblation(b, AblationDRAMSched) }

// BenchmarkAblationSAPlacement compares per-bank vs single-unit placement.
func BenchmarkAblationSAPlacement(b *testing.B) { benchAblation(b, AblationSAPlacement) }

// BenchmarkAblationBatchSize sweeps the sort&scan batch size.
func BenchmarkAblationBatchSize(b *testing.B) { benchAblation(b, AblationBatchSize) }

// BenchmarkAblationCSPolicy compares the paper's combining store against
// eager operand pre-combining.
func BenchmarkAblationCSPolicy(b *testing.B) { benchAblation(b, AblationEagerCombine) }

// BenchmarkAblationCombiningStore sweeps combining-store entries on the
// full machine.
func BenchmarkAblationCombiningStore(b *testing.B) { benchAblation(b, AblationCombiningStore) }

func benchAblation(b *testing.B, run func(ExpOptions) ExpTable) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if tab := run(benchOpts); len(tab.Rows) == 0 {
			b.Fatal("empty ablation")
		}
	}
}

// BenchmarkAblationOverlap compares sequential vs software-pipelined
// scatter-add scheduling.
func BenchmarkAblationOverlap(b *testing.B) { benchAblation(b, AblationOverlap) }

// BenchmarkAblationHierarchical compares linear vs logarithmic multi-node
// combining.
func BenchmarkAblationHierarchical(b *testing.B) { benchAblation(b, AblationHierarchical) }

// BenchmarkAblationWritePolicy compares the cache write policies.
func BenchmarkAblationWritePolicy(b *testing.B) { benchAblation(b, AblationWritePolicy) }

// BenchmarkScatterAddUnit measures raw simulated scatter-add throughput
// (simulator performance, not a paper figure).
func BenchmarkScatterAddUnit(b *testing.B) {
	data := make([]int, 4096)
	for i := range data {
		data[i] = (i * 2654435761) % 512
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMachine(DefaultConfig())
		if bins, _ := HistogramI64(m, data, 512); bins[0] < 0 {
			b.Fatal("impossible")
		}
	}
}
