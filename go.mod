module scatteradd

go 1.22
