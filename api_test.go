package scatteradd

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramI64QuickStart(t *testing.T) {
	m := NewMachine(DefaultConfig())
	data := []int{3, 1, 3, 7, 3, 1}
	bins, res := HistogramI64(m, data, 8)
	want := []int64{0, 2, 0, 3, 0, 0, 0, 1}
	for i := range want {
		if bins[i] != want[i] {
			t.Fatalf("bins = %v want %v", bins, want)
		}
	}
	if res.Cycles == 0 || res.MemRefs != uint64(len(data)) {
		t.Fatalf("result: %+v", res)
	}
}

func TestHistogramI64RangeCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HistogramI64(NewMachine(DefaultConfig()), []int{9}, 8)
}

func TestScatterAddF64Helper(t *testing.T) {
	m := NewMachine(DefaultConfig())
	ScatterAddF64(m, 100, []int{0, 2, 0}, []float64{1.5, 2.0, 2.5})
	m.FlushCaches()
	if got := m.Store().LoadF64(100); got != 4.0 {
		t.Fatalf("target[0] = %g", got)
	}
	if got := m.Store().LoadF64(102); got != 2.0 {
		t.Fatalf("target[2] = %g", got)
	}
}

func TestScatterAddF64LengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ScatterAddF64(NewMachine(DefaultConfig()), 0, []int{1}, nil)
}

func TestFigureDispatch(t *testing.T) {
	if _, err := Figure(5, ExpOptions{Scale: 16}); err == nil {
		t.Fatal("figure 5 should not exist")
	}
	tab, err := Figure(11, ExpOptions{Scale: 16})
	if err != nil || len(tab.Rows) == 0 {
		t.Fatalf("figure 11: %v, %d rows", err, len(tab.Rows))
	}
}

func TestTable1Public(t *testing.T) {
	if len(Table1().Rows) < 10 {
		t.Fatal("Table1 too small")
	}
}

func TestAblationsPublic(t *testing.T) {
	tabs := Ablations(ExpOptions{Scale: 16})
	if len(tabs) != 8 {
		t.Fatalf("ablations: %d tables", len(tabs))
	}
}

func TestAreaEstimatePublic(t *testing.T) {
	mm2, frac := AreaEstimate(8, 8)
	if mm2 != 1.6 || frac > 0.02 {
		t.Fatalf("area: %g mm2, %g", mm2, frac)
	}
}

func TestSoftwareMethodsPublic(t *testing.T) {
	m := NewMachine(DefaultConfig())
	addrs := []Addr{10, 11, 10}
	SortScan(m, AddI64, addrs, []Word{I64(2)}, 0)
	m.FlushCaches()
	if got := m.Store().LoadI64(10); got != 4 {
		t.Fatalf("sortscan result %d", got)
	}
}

func TestMultiNodePublic(t *testing.T) {
	cfg := DefaultMultiNodeConfig(2, 8, 128)
	cfg.Cache.TotalLines = 256
	s := NewMultiNode(cfg, AddI64)
	refs := []MultiNodeRef{{Addr: 5, Val: I64(1)}, {Addr: 200, Val: I64(2)}, {Addr: 5, Val: I64(3)}}
	res := s.RunTrace(refs)
	if res.Adds != 3 {
		t.Fatalf("adds = %d", res.Adds)
	}
	got := s.ReadResult([]Addr{5, 200})
	if AsI64(got[0]) != 4 || AsI64(got[1]) != 2 {
		t.Fatalf("results: %d %d", AsI64(got[0]), AsI64(got[1]))
	}
}

func TestPrefixSumI64(t *testing.T) {
	m := NewMachine(ScanConfig())
	vals := []int64{5, -2, 7, 0, 3}
	prefix, total, res := PrefixSumI64(m, vals)
	want := []int64{0, 5, 3, 10, 10}
	for i := range want {
		if prefix[i] != want[i] {
			t.Fatalf("prefix = %v want %v", prefix, want)
		}
	}
	if total != 13 || res.Cycles == 0 {
		t.Fatalf("total=%d res=%+v", total, res)
	}
}

func TestPrefixSumRequiresScanConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PrefixSumI64(NewMachine(DefaultConfig()), []int64{1})
}

// Property: the public helper matches a plain Go accumulation.
func TestScatterAddF64Property(t *testing.T) {
	f := func(idx []uint8, raw []int8) bool {
		n := len(idx)
		if len(raw) < n {
			n = len(raw)
		}
		if n == 0 {
			return true
		}
		m := NewMachine(DefaultConfig())
		ref := map[int]float64{}
		ii := make([]int, n)
		vv := make([]float64, n)
		for i := 0; i < n; i++ {
			ii[i] = int(idx[i] % 64)
			vv[i] = float64(raw[i]) / 8
			ref[ii[i]] += vv[i]
		}
		ScatterAddF64(m, 0, ii, vv)
		m.FlushCaches()
		for k, want := range ref {
			if math.Abs(m.Store().LoadF64(Addr(k))-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
