package scatteradd

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"scatteradd/internal/apisurface"
	"scatteradd/internal/fault"
)

// TestAPISurfaceGolden pins the package's exported symbols to API.txt: any
// addition, removal, or signature change fails until the golden is
// regenerated (go run ./cmd/apicheck -write), making API changes explicit
// in review.
func TestAPISurfaceGolden(t *testing.T) {
	decls, err := apisurface.Surface(".")
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("API.txt")
	if err != nil {
		t.Fatalf("API.txt missing: %v (regenerate with go run ./cmd/apicheck -golden API.txt -write)", err)
	}
	breaking, additions := apisurface.Compare(apisurface.Parse(string(want)), decls)
	if msgs := append(breaking, additions...); len(msgs) > 0 {
		t.Fatalf("exported API differs from API.txt:\n%s\nregenerate with: go run ./cmd/apicheck -golden API.txt -write",
			strings.Join(msgs, "\n"))
	}
}

// TestNewDefaultMatchesNewMachine: the zero-option New is the deprecated
// constructor's default exactly.
func TestNewDefaultMatchesNewMachine(t *testing.T) {
	data := []int{3, 1, 3, 7, 3, 1}
	b1, r1 := HistogramI64(New(), data, 8)
	b2, r2 := HistogramI64(NewMachine(DefaultConfig()), data, 8)
	if !reflect.DeepEqual(b1, b2) || r1 != r2 {
		t.Fatalf("New() diverges from NewMachine(DefaultConfig()): %+v vs %+v", r1, r2)
	}
}

// TestNewOptionsCompose: config, faults, stepping, tracer, and sampler
// options all take effect through one New call.
func TestNewOptionsCompose(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SA.Entries = 4
	var traced, sampled int
	m := New(
		WithConfig(cfg),
		WithFaults(DefaultChaosFaults()),
		WithLegacyStepping(),
		WithTracer(func(cycle uint64, req Request) { traced++ }),
		WithSampler(64, func(now uint64) { sampled++ }),
	)
	if got := m.Config(); got.SA.Entries != 4 || !got.LegacyStepping || !got.Faults.Enabled() {
		t.Fatalf("options not applied: %+v", got)
	}
	data := make([]int, 256)
	for i := range data {
		data[i] = i % 8
	}
	bins, _ := HistogramI64(m, data, 8)
	for _, b := range bins {
		if b != 32 {
			t.Fatalf("faulted run bins = %v, want all 32", bins)
		}
	}
	if traced != len(data) {
		t.Fatalf("tracer saw %d requests, want %d", traced, len(data))
	}
	if sampled == 0 {
		t.Fatal("sampler never fired")
	}
}

// TestWithFaultsDeterministic: two identical faulted machines produce
// identical cycle counts.
func TestWithFaultsDeterministic(t *testing.T) {
	run := func() uint64 {
		fc := fault.DefaultChaos()
		fc.DRAMStallRate = 0.05
		m := New(WithFaults(fc))
		data := make([]int, 512)
		for i := range data {
			data[i] = i % 16
		}
		_, res := HistogramI64(m, data, 16)
		return res.Cycles
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("faulted runs diverge: %d vs %d cycles", a, b)
	}
}
