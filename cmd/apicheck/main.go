// Command apicheck guards the public API of the root scatteradd package.
//
// Usage:
//
//	apicheck [-pkg DIR] -golden API.txt [-write]
//	apicheck [-pkg DIR] -against OTHER.txt
//
// With -golden, the current exported surface is compared to the golden
// file: any mismatch (removal, change, or an addition not yet recorded)
// fails, keeping the checked-in API.txt an exact inventory. -write
// regenerates the golden instead.
//
// With -against, the comparison is API-compatibility: removals and
// signature changes of symbols present in OTHER.txt fail; additions are
// allowed. CI uses this to diff a branch against the main branch's API.txt.
package main

import (
	"flag"
	"fmt"
	"os"

	"scatteradd/internal/apisurface"
)

func main() {
	pkg := flag.String("pkg", ".", "package directory to extract the surface from")
	golden := flag.String("golden", "", "golden surface file to compare against exactly")
	write := flag.Bool("write", false, "regenerate the -golden file instead of comparing")
	against := flag.String("against", "", "older surface file to check compatibility against (additions allowed)")
	flag.Parse()

	decls, err := apisurface.Surface(*pkg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apicheck: %v\n", err)
		os.Exit(1)
	}

	switch {
	case *golden != "" && *write:
		if err := os.WriteFile(*golden, []byte(apisurface.Format(decls)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "apicheck: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("apicheck: wrote %d symbols to %s\n", len(decls), *golden)
	case *golden != "":
		data, err := os.ReadFile(*golden)
		if err != nil {
			fmt.Fprintf(os.Stderr, "apicheck: %v (run with -write to create it)\n", err)
			os.Exit(1)
		}
		old := apisurface.Parse(string(data))
		breaking, additions := apisurface.Compare(old, decls)
		for _, m := range breaking {
			fmt.Fprintln(os.Stderr, m)
		}
		for _, m := range additions {
			fmt.Fprintln(os.Stderr, m)
		}
		if len(breaking)+len(additions) > 0 {
			fmt.Fprintf(os.Stderr, "apicheck: surface differs from %s in %d places (regenerate with -write if intended)\n",
				*golden, len(breaking)+len(additions))
			os.Exit(1)
		}
		fmt.Printf("apicheck: %d symbols match %s\n", len(decls), *golden)
	case *against != "":
		data, err := os.ReadFile(*against)
		if err != nil {
			fmt.Fprintf(os.Stderr, "apicheck: %v\n", err)
			os.Exit(1)
		}
		old := apisurface.Parse(string(data))
		breaking, additions := apisurface.Compare(old, decls)
		for _, m := range additions {
			fmt.Println(m) // informational
		}
		if len(breaking) > 0 {
			for _, m := range breaking {
				fmt.Fprintln(os.Stderr, m)
			}
			fmt.Fprintf(os.Stderr, "apicheck: %d breaking API change(s) vs %s\n", len(breaking), *against)
			os.Exit(1)
		}
		fmt.Printf("apicheck: compatible with %s (%d additions)\n", *against, len(additions))
	default:
		fmt.Print(apisurface.Format(decls))
	}
}
